module swsketch

go 1.22
