// Interpretable monitoring of a sensor stream with SWR — the sampling
// sketches' selling point (Section 8.3): the answer consists of actual
// (rescaled) window rows, so each can be traced back to a concrete
// moment of the stream. A PAMAP-like activity stream is tracked over a
// sequence window; at each query the norm-proportional sample exposes
// which activity currently dominates the window's energy, without the
// window ever being stored.
package main

import (
	"fmt"

	"swsketch"
)

func main() {
	ds := swsketch.PAMAP(swsketch.PAMAPConfig{N: 12000, D: 35, SkewAt: -1, SegmentLen: 1500, Seed: 5})
	const win = 1500

	spec := swsketch.Seq(win)
	swr := swsketch.NewSWR(spec, 12, ds.D(), 1)
	// An exact oracle only for reporting fidelity; not part of the app.
	oracle := swsketch.NewExactWindow(spec, ds.D())

	fmt.Printf("%-8s %-12s %-12s %-14s %s\n",
		"row", "candidates", "cova-err", "window-mass", "dominant sensors (col:energy share)")
	for i, row := range ds.Rows {
		t := ds.Times[i]
		swr.Update(row, t)
		oracle.Update(row, t)
		if i <= win || i%1500 != 0 {
			continue
		}
		b := swr.Query(t)
		// Because B ⊂ A (rescaled), the sample's column energies show
		// which sensors carry the window's activity right now.
		fmt.Printf("%-8d %-12d %-12.4f %-14.0f %s\n",
			i, swr.RowsStored(), oracle.CovaErr(b), oracle.FroSq(), dominantSensors(b, 3))
	}
}

// dominantSensors reports the top-k columns of b by energy share.
func dominantSensors(b *swsketch.Dense, k int) string {
	total := b.FrobeniusSq()
	if total == 0 || b.Rows() == 0 {
		return "(empty window)"
	}
	shares := make([]float64, b.Cols())
	for i := 0; i < b.Rows(); i++ {
		for j, v := range b.Row(i) {
			shares[j] += v * v
		}
	}
	out := ""
	for t := 0; t < k; t++ {
		bestJ := 0
		for j := range shares {
			if shares[j] > shares[bestJ] {
				bestJ = j
			}
		}
		out += fmt.Sprintf(" s%d:%.0f%%", bestJ, 100*shares[bestJ]/total)
		shares[bestJ] = -1
	}
	return out
}
