// Topic tracking over a time-based window of a tf-idf document stream
// — the paper's "analyze tweets posted in the last 24 hours" use case
// (Section 1). Documents arrive with accelerating timestamps (like the
// paper's Wikipedia corpus); an LM-FD sketch maintains the last Δ time
// units, and the top right-singular directions of its answer are the
// window's dominant topics. The stream's topic mixture shifts over
// time, and the tracked directions follow.
package main

import (
	"fmt"
	"sort"

	"swsketch"
)

func main() {
	// A Wikipedia-like corpus: 300-term vocabulary, 12k documents with
	// accelerating arrivals across a 3000-"day" horizon.
	ds := swsketch.Wiki(swsketch.WikiConfig{N: 12000, D: 300, Topics: 8, Seed: 11})
	delta := 400.0 // window: the most recent 400 days

	sketch := swsketch.NewLMFD(swsketch.TimeSpan(delta), ds.D(), 32, 8)

	fmt.Printf("%-10s %-8s %-12s %s\n", "time", "docs", "sketch-rows", "top terms of leading window topics")
	lastReport := 0.0
	seen := 0
	for i, row := range ds.Rows {
		t := ds.Times[i]
		sketch.Update(row, t)
		seen++
		if t-lastReport < 500 {
			continue
		}
		lastReport = t

		b := sketch.Query(t)
		if b.Rows() == 0 {
			continue
		}
		svd := swsketch.SVD(b)
		line := ""
		for topic := 0; topic < 2 && topic < len(svd.S); topic++ {
			line += fmt.Sprintf("  topic%d:%v", topic+1, topTerms(svd.V, topic, 4))
		}
		fmt.Printf("%-10.0f %-8d %-12d%s\n", t, seen, sketch.RowsStored(), line)
	}
}

// topTerms returns the indices of the largest-magnitude entries of
// column c of v — the terms that define the direction.
func topTerms(v *swsketch.Dense, c, k int) []int {
	type tw struct {
		term   int
		weight float64
	}
	tws := make([]tw, v.Rows())
	for j := 0; j < v.Rows(); j++ {
		w := v.At(j, c)
		if w < 0 {
			w = -w
		}
		tws[j] = tw{term: j, weight: w}
	}
	sort.Slice(tws, func(a, b int) bool { return tws[a].weight > tws[b].weight })
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = tws[i].term
	}
	return out
}
