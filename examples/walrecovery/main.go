// WAL crash recovery: the serving layer journals every mutation —
// tenant creation, row blocks (batch or streamed), snapshot restores,
// deletions — into a per-shard write-ahead log before applying it.
// After a crash, a cold server replays the log and reconstructs every
// tenant bit-identically: the deterministic LM-FD marshals to the
// same bytes the live server held.
//
// The demo drives real HTTP traffic (a v1 batch, a v2 created tenant,
// a /v2 streaming block), "crashes" by dropping the server without
// any graceful shutdown, then recovers twice from the same directory.
package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"swsketch/internal/core"
	"swsketch/internal/serve"
	"swsketch/internal/wal"
	"swsketch/internal/window"
)

const d = 3

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// boot opens (or reopens) the log in dir, replays it into a fresh
// server, and returns both plus the replay stats.
func boot(dir string) (*httptest.Server, *wal.Log, wal.Stats) {
	// Sync interval 0 = fsync every append: nothing a client saw
	// acknowledged can be lost, which is what makes the crash below
	// safe to take mid-flight.
	l, err := wal.Open(dir, wal.WithShards(2), wal.WithSyncInterval(0))
	if err != nil {
		fail(err)
	}
	sk := core.NewLMFD(window.Seq(64), d, 6, 3)
	srv := serve.NewServer(sk, d, serve.WithWAL(l))
	st, err := srv.RecoverWAL()
	if err != nil {
		fail(err)
	}
	return httptest.NewServer(srv.Handler()), l, st
}

func post(url, contentType, body string) {
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		fail(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		fail(fmt.Errorf("POST %s: status %d", url, resp.StatusCode))
	}
}

func snapshot(url string) []byte {
	resp, err := http.Get(url + "/v2/tenants/default/snapshot")
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		fail(err)
	}
	return data
}

func main() {
	dir, err := os.MkdirTemp("", "swsketch-walrecovery")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)

	ts, _, _ := boot(dir)

	// Mixed traffic, every generation of the wire: a v1 batch, a
	// created tenant, and a v2 streamed block.
	post(ts.URL+"/v1/ingest", "application/json",
		`{"updates":[{"row":[1,0,0],"t":1},{"row":[0,2,0],"t":2},{"idx":[2],"val":[3],"t":3}]}`)
	req, _ := http.NewRequest("PUT", ts.URL+"/v2/tenants/turbine",
		strings.NewReader(`{"framework":"lm-fd","window":"sequence","size":32,"d":3,"ell":6,"b":3}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fail(err)
	}
	resp.Body.Close()
	var stream strings.Builder
	for i := 4; i < 20; i++ {
		fmt.Fprintf(&stream, `{"row":[%d,1,0],"t":%d}`+"\n", i%3, i)
	}
	post(ts.URL+"/v2/tenants/default/stream", "application/x-ndjson", stream.String())
	post(ts.URL+"/v2/tenants/turbine/rows", `application/json`,
		`{"updates":[{"row":[5,0,0],"t":1}]}`)

	before := snapshot(ts.URL)
	fmt.Printf("ingested 20 rows, live snapshot %d bytes\n", len(before))

	// Crash: drop the server on the floor. No snapshot, no flush, no
	// goodbye — the fsynced log is the only survivor.
	ts.Close()

	ts2, _, st := boot(dir)
	fmt.Printf("replayed %d records (%d rows) from %d segments: damaged=%v\n",
		st.Records, st.Rows, st.Segments, st.Damaged)
	after := snapshot(ts2.URL)
	fmt.Printf("recovered snapshot bit-identical: %v\n", bytes.Equal(before, after))

	// The recovered node is a full citizen: it keeps ingesting and
	// journaling, and a second crash-recovery cycle still agrees.
	post(ts2.URL+"/v2/tenants/default/rows", "application/json",
		`{"updates":[{"row":[1,1,1],"t":30}]}`)
	want := snapshot(ts2.URL)
	ts2.Close()
	ts3, _, _ := boot(dir)
	fmt.Printf("second recovery bit-identical: %v\n", bytes.Equal(want, snapshot(ts3.URL)))
	ts3.Close()
}
