package main

// Example runs the demo end to end; the output is deterministic (the
// log fsyncs every append, timestamps are scripted, and LM-FD's
// marshal is bit-exact), so this doubles as a crash-recovery
// regression test that `go test ./...` executes in CI.
func Example() {
	main()
	// Output:
	// ingested 20 rows, live snapshot 1199 bytes
	// replayed 4 records (20 rows) from 2 segments: damaged=false
	// recovered snapshot bit-identical: true
	// second recovery bit-identical: true
}
