// PCA anomaly detection over sliding windows — the paper's motivating
// application (Section 1). A reference PCA basis is extracted from an
// early fixed window; a test window is tracked continuously with a
// sliding-window sketch; change is flagged when the energy of the test
// window outside the reference subspace spikes. Unlike the
// store-everything approaches in prior work, the test window here is
// never materialised: the sketch answers with ℓ ≪ N rows.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"swsketch"
)

const (
	d        = 24
	win      = 800
	refRows  = 800
	k        = 4 // PCA components
	stream   = 8000
	changeAt = 5000
)

// sample draws a row from a k-dimensional latent factor model plus
// noise.
func sample(rng *rand.Rand, basis [][]float64, noise float64) []float64 {
	row := make([]float64, d)
	for _, b := range basis {
		c := rng.NormFloat64()
		for j := range row {
			row[j] += c * b[j]
		}
	}
	for j := range row {
		row[j] += noise * rng.NormFloat64()
	}
	return row
}

// randomBasis returns k orthonormal directions (Gram-Schmidt).
func randomBasis(rng *rand.Rand, k int) [][]float64 {
	basis := make([][]float64, k)
	for i := range basis {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		for p := 0; p < i; p++ {
			var dot float64
			for j := range v {
				dot += v[j] * basis[p][j]
			}
			for j := range v {
				v[j] -= dot * basis[p][j]
			}
		}
		var nsq float64
		for _, x := range v {
			nsq += x * x
		}
		inv := 1 / math.Sqrt(nsq)
		for j := range v {
			v[j] *= inv
		}
		basis[i] = v
	}
	return basis
}

func main() {
	rng := rand.New(rand.NewSource(7))
	normal := randomBasis(rng, k)
	// The anomalous regime swaps in a new latent direction.
	anomalous := make([][]float64, k)
	copy(anomalous, normal)
	anomalous[0] = randomBasis(rng, 1)[0]

	// Phase 1: collect the reference window and fix its PCA basis.
	ref := make([][]float64, refRows)
	for i := range ref {
		ref[i] = sample(rng, normal, 0.2)
	}
	detector := swsketch.NewChangeDetector(swsketch.FromRows(ref), k, 0.15)

	// Phase 2: track the test window with a sliding-window sketch.
	sketch := swsketch.NewLMFD(swsketch.Seq(win), d, 24, 8)
	fmt.Printf("%-8s %-14s %-12s %s\n", "row", "residual", "sketch-rows", "status")
	var flagged int
	for i := 0; i < stream; i++ {
		basis := normal
		if i >= changeAt {
			basis = anomalous
		}
		t := float64(i)
		sketch.Update(sample(rng, basis, 0.2), t)
		if i > win && i%400 == 0 {
			stat, changed := detector.Test(sketch.Query(t))
			status := "normal"
			if changed {
				status = "CHANGE DETECTED"
				flagged++
			}
			fmt.Printf("%-8d %-14.4f %-12d %s\n", i, stat, sketch.RowsStored(), status)
		}
	}
	if flagged == 0 {
		fmt.Println("no change detected — unexpected")
	} else {
		fmt.Printf("\nchange injected at row %d; flagged %d query points after it\n", changeAt, flagged)
	}
}
