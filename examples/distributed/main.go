// Distributed window monitoring — the paper's "extend to distributed
// data" future work: four sites each observe a quarter of a sensor
// stream and ship only FrequentDirections block sketches; a
// coordinator answers sliding-window PCA queries over the union stream
// without ever seeing a raw row. The demo reports the communication
// saved and the coordinator's covariance error against an exact
// union-window oracle.
package main

import (
	"fmt"
	"math/rand"

	"swsketch"
)

const (
	d         = 20
	win       = 2000
	sites     = 4
	ell       = 24
	blockMass = 1500.0 // ≈ 75 rows per block at mass ≈ d per row
)

func main() {
	spec := swsketch.Seq(win)
	coord := swsketch.NewDistCoordinator(spec, d, 2*ell, 6, blockMass)
	nodes := make([]*swsketch.DistSite, sites)
	for i := range nodes {
		nodes[i] = swsketch.NewDistSite(i, d, ell, blockMass, coord.Receive)
	}
	oracle := swsketch.NewExactWindow(spec, d) // evaluation only

	rng := rand.New(rand.NewSource(11))
	fmt.Printf("%-8s %-14s %-16s %s\n", "row", "coord-rows", "cova-err", "rows shipped / observed")
	for i := 0; i < 16000; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		if i >= 10000 { // a regime shift all sites see
			row[3] *= 4
		}
		t := float64(i)
		nodes[i%sites].Observe(row, t)
		oracle.Update(row, t)

		if i > win && i%2500 == 0 {
			var shipped, observed int
			for _, n := range nodes {
				shipped += n.RowsShipped()
				observed += n.RowsObserved()
			}
			b := coord.Query(t)
			fmt.Printf("%-8d %-14d %-16.4f %d / %d (%.1f%%)\n",
				i, coord.RowsStored(), oracle.CovaErr(b), shipped, observed,
				100*float64(shipped)/float64(observed))
		}
	}

	// The coordinator's answer drives downstream analysis as usual.
	b := coord.Query(15999)
	p := swsketch.ComputePCA(b, 3)
	fmt.Printf("\ntop window component explains %.0f%% of energy (post-shift: direction 3 dominates: |v₃|=%.2f)\n",
		100*p.Explained[0], abs(p.Components.At(0, 3)))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
