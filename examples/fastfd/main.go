// FastFD tuning: the ingest hot path behind every FD-backed framework
// batches b·ℓ working rows and shrinks once per fill, instead of
// eigendecomposing every time the classic ℓ-row buffer refills. The
// knobs demonstrated here are exactly what the CLIs expose:
//
//	swstream -algo lm-fd -d 64 -window 1500 -fd-buffer 2
//	swserve  -algo di-fd -d 64 -R 80 -fd-buffer 4 -fd-alpha 0.5
//
// The demo streams the same deterministic rows through three FD
// configurations, showing the shrink cadence drop while the answer
// stays within the 2/ℓ covariance bound, then runs the tuned options
// through a sliding-window LM-FD — the framework the flags configure.
package main

import (
	"fmt"
	"math/rand"

	"swsketch"
)

const (
	d   = 64   // row dimension
	ell = 32   // sketch size parameter ℓ
	n   = 6000 // stream length
	win = 1500 // sliding window for the LM-FD part
)

func main() {
	// One deterministic Gaussian stream shared by every configuration.
	rng := rand.New(rand.NewSource(7))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}

	// An exact oracle over the whole stream judges each sketch against
	// the FD guarantee ‖AᵀA−BᵀB‖₂ ≤ 2‖A‖²_F/ℓ.
	oracle := swsketch.NewExactWindow(swsketch.Seq(n), d)
	for i, row := range rows {
		oracle.Update(row, float64(i))
	}

	configs := []struct {
		name string
		opts swsketch.FDOpts
	}{
		{"classic  b=1 alpha=1.0", swsketch.FDOpts{}},
		{"buffered b=2 alpha=1.0", swsketch.FDOpts{Buffer: 2}},
		{"deep     b=4 alpha=0.5", swsketch.FDOpts{Buffer: 4, Alpha: 0.5}},
	}
	fmt.Printf("%-24s %-9s %-11s %s\n", "config", "shrinks", "rows-kept", "within 2/ℓ bound")
	for _, c := range configs {
		f := swsketch.NewFDOpts(ell, d, c.opts)
		for _, row := range rows {
			f.Update(row)
		}
		err := oracle.CovaErr(f.Matrix())
		fmt.Printf("%-24s %-9d %-11d %v\n", c.name, f.Shrinks(), f.RowsStored(), err <= 2.0/float64(ell))
	}

	// The same options applied to a sliding-window framework, as the
	// -fd-buffer/-fd-alpha flags do: every block sketch inside LM-FD
	// ingests with the amortized cadence, and the space accounting
	// (rows stored) still charges ℓ rows per sketch.
	lm := swsketch.NewLMFDOpts(swsketch.Seq(win), d, 24, 8, swsketch.FDOpts{Buffer: 2})
	lmOracle := swsketch.NewExactWindow(swsketch.Seq(win), d)
	for i, row := range rows {
		lm.Update(row, float64(i))
		lmOracle.Update(row, float64(i))
	}
	b := lm.Query(float64(n - 1))
	fmt.Printf("lm-fd (b=2) window approximation: %d×%d, cova-err below 0.2: %v\n",
		b.Rows(), b.Cols(), lmOracle.CovaErr(b) < 0.2)
}
