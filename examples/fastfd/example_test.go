package main

// Example runs the demo end to end; the output is deterministic (the
// stream is seeded, the shrink cadence is purely structural, and the
// accuracy lines print bound checks rather than raw floats), so this
// doubles as a regression test that `go test ./...` executes in CI.
func Example() {
	main()
	// Output:
	// config                   shrinks   rows-kept   within 2/ℓ bound
	// classic  b=1 alpha=1.0   352       32          true
	// buffered b=2 alpha=1.0   122       32          true
	// deep     b=4 alpha=0.5   56        32          true
	// lm-fd (b=2) window approximation: 33×64, cova-err below 0.2: true
}
