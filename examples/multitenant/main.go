// Multi-tenant serving: one process hosts many independent sliding
// windows. A TenantRegistry creates sketches from declarative configs,
// ingests into them concurrently (per-tenant locks, so different
// tenants proceed in parallel), evicts idle tenants to disk, and
// restores them transparently — bit-identically, for the
// deterministic LM-FD — on their next query.
package main

import (
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"swsketch"
)

const (
	d       = 8
	tenants = 64
	rowsPer = 300
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	dir, err := os.MkdirTemp("", "swsketch-multitenant")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)

	// A controllable clock stands in for real idle time, so the demo's
	// TTL eviction is deterministic.
	var mu sync.Mutex
	now := time.Unix(0, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(by time.Duration) { mu.Lock(); now = now.Add(by); mu.Unlock() }

	reg, err := swsketch.NewTenantRegistry(
		swsketch.WithSpillDir(dir),
		swsketch.WithEvictTTL(time.Minute),
		swsketch.WithRegistryClock(clock),
	)
	if err != nil {
		fail(err)
	}

	// Each tenant is declared, not constructed: the registry builds the
	// sketch from the config (here LM-FD over a 200-row sequence
	// window; frameworks, window kinds, and sizing vary per tenant).
	cfg := swsketch.TenantConfig{
		Framework: "lm-fd", Window: "sequence", Size: 200, D: d, Ell: 8, B: 4,
	}
	for i := 0; i < tenants; i++ {
		if _, err := reg.Create(fmt.Sprintf("sensor-%02d", i), cfg); err != nil {
			fail(err)
		}
	}

	// Concurrent ingest: one goroutine per stripe of tenants. Acquire
	// serialises access per tenant; different tenants never contend.
	var wg sync.WaitGroup
	workers := 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < tenants; i += workers {
				tn, _ := reg.Get(fmt.Sprintf("sensor-%02d", i))
				for r := 0; r < rowsPer; r++ {
					row := make([]float64, d)
					for j := range row {
						row[j] = math.Sin(float64(i*31+r*7+j)) * float64(1+i%3)
					}
					if err := tn.Acquire(); err != nil {
						fail(err)
					}
					lastT, _ := tn.Clock()
					tn.Sketch().Update(row, lastT+1)
					tn.Commit(1, lastT+1)
					tn.Release()
				}
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("ingested %d rows into %d tenants\n", tenants*rowsPer, tenants)

	// Per-tenant queries: each tenant answers for its own window.
	probe, _ := reg.Get("sensor-07")
	if err := probe.Acquire(); err != nil {
		fail(err)
	}
	before := probe.Sketch().Query(float64(rowsPer))
	probe.Release()
	fmt.Printf("sensor-07 approximation: %d×%d (≤ sketch budget)\n", before.Rows(), before.Cols())

	// Idle the fleet past the TTL and sweep: every tenant spills its
	// snapshot + config + clock to disk and leaves memory.
	advance(time.Hour)
	evicted := reg.Sweep()
	fmt.Printf("swept %d idle tenants to disk\n", evicted)

	// Touching a spilled tenant restores it transparently — and for
	// LM-FD the restored answer is bit-identical.
	if err := probe.Acquire(); err != nil {
		fail(err)
	}
	after := probe.Sketch().Query(float64(rowsPer))
	probe.Release()
	identical := before.Rows() == after.Rows()
	for i := 0; identical && i < before.Rows(); i++ {
		for j := 0; j < before.Cols(); j++ {
			if math.Float64bits(before.At(i, j)) != math.Float64bits(after.At(i, j)) {
				identical = false
				break
			}
		}
	}
	fmt.Printf("restored answer bit-identical: %v\n", identical)

	total := 0
	for _, info := range reg.List() {
		total += int(info.Updates)
	}
	fmt.Printf("registry holds %d tenants, %d updates total\n", reg.Len(), total)
}
