package main

// Example runs the demo end to end; the output is deterministic (the
// demo uses a controlled clock and LM-FD's bit-exact restore), so this
// doubles as a regression test that `go test ./...` executes in CI.
func Example() {
	main()
	// Output:
	// ingested 19200 rows into 64 tenants
	// sensor-07 approximation: 8×8 (≤ sketch budget)
	// swept 64 idle tenants to disk
	// restored answer bit-identical: true
	// registry holds 64 tenants, 19200 updates total
}
