// Checkpoint/restore: a long-lived monitoring process periodically
// snapshots its sliding-window sketch; after a crash, the restored
// sketch resumes exactly where the snapshot left off — for the
// deterministic LM-FD the post-restore answers are bit-identical to an
// uninterrupted run.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"swsketch"
)

const (
	d   = 16
	win = 500
)

func main() {
	dir, err := os.MkdirTemp("", "swsketch-checkpoint")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "sketch.snap")

	// Phase 1: a process ingests a stream and checkpoints at row 3000.
	rng := rand.New(rand.NewSource(9))
	rows := make([][]float64, 5000)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}

	live := swsketch.NewLMFD(swsketch.Seq(win), d, 16, 6)
	for i := 0; i < 3000; i++ {
		live.Update(rows[i], float64(i))
	}
	snap, err := live.MarshalBinary()
	if err != nil {
		fmt.Fprintln(os.Stderr, "snapshot:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, snap, 0o600); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("checkpointed %d bytes at row 3000 (sketch holds %d rows)\n", len(snap), live.RowsStored())

	// The process keeps running past the checkpoint...
	for i := 3000; i < 5000; i++ {
		live.Update(rows[i], float64(i))
	}

	// Phase 2: "crash" — a new process restores from the file and
	// replays only the rows after the checkpoint (e.g. from a log).
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var restored swsketch.LM
	if err := restored.UnmarshalBinary(data); err != nil {
		fmt.Fprintln(os.Stderr, "restore:", err)
		os.Exit(1)
	}
	for i := 3000; i < 5000; i++ {
		restored.Update(rows[i], float64(i))
	}

	// The two paths must agree exactly.
	a := live.Query(4999)
	b := restored.Query(4999)
	diff := a.Clone().Sub(b).MaxAbs()
	fmt.Printf("post-restore answer: %d rows, max divergence from uninterrupted run: %g\n",
		b.Rows(), diff)
	if diff == 0 {
		fmt.Println("restored run is bit-identical — checkpointing is exact")
	}
}
