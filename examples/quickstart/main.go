// Quickstart: maintain an LM-FD sketch over a sliding window of a
// random row stream, query it periodically, and compare the sketch's
// covariance error against the exact window — the minimal end-to-end
// use of the library.
package main

import (
	"fmt"
	"math/rand"

	"swsketch"
)

func main() {
	const (
		d   = 32   // row dimension
		n   = 8000 // stream length
		win = 1000 // sliding window: most recent rows
	)

	// LM-FD: the paper's recommended general-purpose sliding-window
	// sketch. ell controls per-block sketch size, b the blocks per
	// level; bigger values mean more space and less error.
	spec := swsketch.Seq(win)
	sketch := swsketch.NewLMFD(spec, d, 24, 8)

	// An exact window oracle, used here only to report the true error;
	// real applications would not keep one (it stores the window).
	oracle := swsketch.NewExactWindow(spec, d)

	rng := rand.New(rand.NewSource(42))
	fmt.Printf("%-8s %-12s %-12s %s\n", "row", "sketch-rows", "cova-err", "window-rows")
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		// Drift the distribution halfway through: direction 0 triples.
		if i >= n/2 {
			row[0] *= 3
		}
		t := float64(i)
		sketch.Update(row, t)
		oracle.Update(row, t)

		if i > 0 && i%1000 == 0 {
			b := sketch.Query(t)
			fmt.Printf("%-8d %-12d %-12.5f %d\n", i, sketch.RowsStored(), oracle.CovaErr(b), oracle.Len())
		}
	}

	// The approximation B stands in for the window matrix A in any
	// computation that needs AᵀA — e.g. the energy along a direction.
	b := sketch.Query(float64(n - 1))
	var energyB float64
	for i := 0; i < b.Rows(); i++ {
		v := b.At(i, 0)
		energyB += v * v
	}
	exact := oracle.Gram().At(0, 0)
	fmt.Printf("\nenergy along e0: sketch %.1f vs exact %.1f (window holds the drifted data)\n",
		energyB, exact)
}
