package binenc

import (
	"math"
	"testing"
)

func TestRoundTripPrimitives(t *testing.T) {
	w := NewWriter()
	w.U64(42)
	w.Int(7)
	w.Bool(true)
	w.Bool(false)
	w.F64(3.25)
	w.F64(math.Inf(-1))
	w.F64s([]float64{1, 2, 3})
	w.F64s(nil)
	w.Blob([]byte("hello"))

	r := NewReader(w.Bytes())
	if r.U64() != 42 || r.Int() != 7 || !r.Bool() || r.Bool() {
		t.Fatal("primitive round trip failed")
	}
	if r.F64() != 3.25 || !math.IsInf(r.F64(), -1) {
		t.Fatal("float round trip failed")
	}
	s := r.F64s()
	if len(s) != 3 || s[2] != 3 {
		t.Fatalf("slice round trip: %v", s)
	}
	if len(r.F64s()) != 0 {
		t.Fatal("empty slice round trip failed")
	}
	if string(r.Blob()) != "hello" {
		t.Fatal("blob round trip failed")
	}
	if r.Err() != nil || r.Rest() != 0 {
		t.Fatalf("err=%v rest=%d", r.Err(), r.Rest())
	}
}

func TestReaderErrorSticks(t *testing.T) {
	r := NewReader([]byte{1, 2}) // too short for U64
	_ = r.U64()
	if r.Err() == nil {
		t.Fatal("expected truncation error")
	}
	if r.U64() != 0 || r.F64() != 0 || r.Bool() || r.Int() != 0 {
		t.Fatal("reads after error should return zero values")
	}
	if r.F64s() != nil || r.Blob() != nil {
		t.Fatal("slice reads after error should return nil")
	}
}

func TestReaderRejectsImplausibleLengths(t *testing.T) {
	w := NewWriter()
	w.U64(1 << 40) // implausible length
	r := NewReader(w.Bytes())
	_ = r.Int()
	if r.Err() == nil {
		t.Fatal("expected implausible-length error")
	}

	w2 := NewWriter()
	w2.Int(100) // claims 100 floats, provides none
	r2 := NewReader(w2.Bytes())
	if r2.F64s() != nil || r2.Err() == nil {
		t.Fatal("expected slice-overrun error")
	}

	w3 := NewWriter()
	w3.Int(100)
	r3 := NewReader(w3.Bytes())
	if r3.Blob() != nil || r3.Err() == nil {
		t.Fatal("expected blob-overrun error")
	}
}

func TestU32AndOff(t *testing.T) {
	w := NewWriter()
	w.U32(0xDEADBEEF)
	w.U64(7)
	r := NewReader(w.Bytes())
	if r.Off() != 0 {
		t.Fatalf("initial offset %d", r.Off())
	}
	if r.U32() != 0xDEADBEEF {
		t.Fatal("u32 round trip failed")
	}
	if r.Off() != 4 {
		t.Fatalf("offset after u32: %d", r.Off())
	}
	if r.U64() != 7 || r.Err() != nil {
		t.Fatalf("u64 after u32: err=%v", r.Err())
	}

	short := NewReader([]byte{1, 2})
	_ = short.U32()
	if short.Err() == nil {
		t.Fatal("expected truncation error on short u32")
	}
}

// TestHostileLengthPrefixDoesNotAllocate pins the allocation-bomb
// hardening: a length prefix far beyond the buffer must fail before
// make() runs, keeping peak allocation proportional to the input, not
// the claimed length.
func TestHostileLengthPrefixDoesNotAllocate(t *testing.T) {
	// Claims MaxInt32 floats but carries 16 bytes of payload.
	w := NewWriter()
	w.Int(math.MaxInt32)
	w.F64(1)
	w.F64(2)
	data := w.Bytes()

	allocs := testing.AllocsPerRun(10, func() {
		r := NewReader(data)
		if r.F64s() != nil || r.Err() == nil {
			t.Fatal("hostile F64s prefix must fail")
		}
	})
	if allocs > 8 { // error construction only; never the 16 GiB slice
		t.Fatalf("hostile F64s allocated %v objects per run", allocs)
	}

	allocs = testing.AllocsPerRun(10, func() {
		r := NewReader(data)
		if r.Blob() != nil || r.Err() == nil {
			t.Fatal("hostile Blob prefix must fail")
		}
	})
	if allocs > 8 {
		t.Fatalf("hostile Blob allocated %v objects per run", allocs)
	}
}

func TestBadBool(t *testing.T) {
	r := NewReader([]byte{7})
	_ = r.Bool()
	if r.Err() == nil {
		t.Fatal("expected bad-bool error")
	}
}
