// Package binenc provides the little-endian binary encoding helpers
// behind the sketches' MarshalBinary/UnmarshalBinary implementations:
// a Writer that appends primitives to a buffer and a Reader that
// consumes them with explicit error state, so codec code reads as a
// flat sequence of field writes/reads with one error check at the end.
package binenc

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer accumulates an encoded byte stream.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// U64 appends an unsigned 64-bit integer.
func (w *Writer) U64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

// U32 appends an unsigned 32-bit integer (frame magics, checksums).
func (w *Writer) U32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

// Int appends an int (as u64; negative values are rejected by reads).
func (w *Writer) Int(v int) { w.U64(uint64(v)) }

// Bool appends a boolean.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// F64 appends a float64.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// F64s appends a length-prefixed slice of float64.
func (w *Writer) F64s(v []float64) {
	w.Int(len(v))
	for _, x := range v {
		w.F64(x)
	}
}

// Blob appends a length-prefixed byte slice.
func (w *Writer) Blob(v []byte) {
	w.Int(len(v))
	w.buf = append(w.buf, v...)
}

// Reader consumes an encoded byte stream. The first decoding error
// sticks; Err reports it and all subsequent reads return zero values.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps data for reading.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// Err returns the first error encountered (nil if none).
func (r *Reader) Err() error { return r.err }

// Rest reports the number of unread bytes.
func (r *Reader) Rest() int { return len(r.buf) - r.off }

// Off reports the current read offset, so framed formats (the WAL)
// can checksum the exact byte span a record decoded from.
func (r *Reader) Off() int { return r.off }

func (r *Reader) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf("binenc: "+format, args...)
	}
}

// U32 reads an unsigned 32-bit integer.
func (r *Reader) U32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.buf) {
		r.fail("truncated at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// U64 reads an unsigned 64-bit integer.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.fail("truncated at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// Int reads an int, rejecting values that overflow.
func (r *Reader) Int() int {
	v := r.U64()
	if v > math.MaxInt32 { // sketch sizes never approach this
		r.fail("implausible length %d", v)
		return 0
	}
	return int(v)
}

// Bool reads a boolean.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.buf) {
		r.fail("truncated at offset %d", r.off)
		return false
	}
	v := r.buf[r.off]
	r.off++
	if v > 1 {
		r.fail("bad bool %d", v)
		return false
	}
	return v == 1
}

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// F64s reads a length-prefixed float64 slice. The length is capped by
// Rest before any allocation, so a hostile prefix (claiming billions
// of elements in a short buffer) fails instead of allocating — the
// same allocation-bomb hardening as the FD snapshot decoder. The
// division form keeps the comparison overflow-proof for any length
// the Int guard lets through.
func (r *Reader) F64s() []float64 {
	n := r.Int()
	if r.err != nil {
		return nil
	}
	if n > r.Rest()/8 {
		r.fail("slice length %d exceeds remaining %d bytes", n, r.Rest())
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	return out
}

// Blob reads a length-prefixed byte slice (copied). Like F64s, the
// claimed length is validated against Rest before the allocation.
func (r *Reader) Blob() []byte {
	n := r.Int()
	if r.err != nil {
		return nil
	}
	if n > r.Rest() {
		r.fail("blob length %d exceeds remaining %d bytes", n, r.Rest())
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:r.off+n])
	r.off += n
	return out
}
