// Package wal is the ingest plane's durability layer: a per-shard
// write-ahead log of binenc-framed records (ingested row blocks,
// tenant creations/deletions, snapshot restores) that lets a crashed
// node rebuild every tenant sketch bit-exactly by replay.
//
// Design:
//
//   - Striping. Tenants hash (FNV-1a, like the registry) onto a fixed
//     number of shard logs, each with its own segment files, sequence
//     counter, and mutex, so appends for different tenants mostly do
//     not contend. One tenant's records are totally ordered within its
//     shard; cross-tenant order is irrelevant to recovery.
//   - Group commit. Appends buffer into the active segment file and an
//     fsync goroutine flushes every shard on a tunable interval
//     (WithSyncInterval): the classic fsync-batching trade — at most
//     one interval of acknowledged-but-unsynced rows is at risk on
//     power loss, and the fsync cost is amortised over every append in
//     the window. A non-positive interval syncs on every append.
//   - Segments and truncation. The active segment rotates at
//     WithSegmentBytes. Each shard tracks, per tenant, the first
//     sequence number whose effect is not yet durable elsewhere; when
//     a tenant spills, is deleted, or logs a snapshot, Released (or
//     the snapshot append itself) advances that low-water mark and
//     closed segments wholly below it are unlinked.
//   - Replay. Replay walks every shard's segments in order, skipping
//     duplicate sequence numbers (idempotent re-delivery) and records
//     whose effect a spill snapshot already covers, and surfaces a
//     torn final record as a clean stop vs anything else as damage —
//     the serve layer degrades health on the latter.
//
// The log stores raw ingested blocks, not sketch state: replay feeds
// the same rows through the same deterministic UpdateBatch path, which
// is what makes recovery bit-exact for the deterministic frameworks.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"swsketch/internal/obs"
	"swsketch/internal/trace"
)

// Option configures a Log; see WithShards, WithSegmentBytes,
// WithSyncInterval, WithObs, WithTrace.
type Option func(*Log)

// WithShards sets the number of shard logs (default 4). More shards
// mean less append contention and more open files.
func WithShards(n int) Option {
	return func(l *Log) {
		if n < 1 {
			panic(fmt.Sprintf("wal: shards %d", n))
		}
		l.nshards = n
	}
}

// WithSegmentBytes sets the active-segment rotation threshold
// (default 64 MiB). Smaller segments truncate at a finer grain.
func WithSegmentBytes(n int64) Option {
	return func(l *Log) {
		if n < 1 {
			panic(fmt.Sprintf("wal: segment bytes %d", n))
		}
		l.segBytes = n
	}
}

// WithSyncInterval sets the group-commit fsync cadence (default 5ms).
// A non-positive interval fsyncs on every append — full durability at
// single-append latency cost. With a positive interval, Append returns
// once the record is written to the OS; at most one interval of
// acknowledged rows is lost on power failure.
func WithSyncInterval(d time.Duration) Option {
	return func(l *Log) { l.syncEvery = d }
}

// WithObs publishes WAL metrics into reg: append/row/byte counters,
// fsync count and latency histogram, and live segment/unsynced-bytes
// gauges.
func WithObs(reg *obs.Registry) Option {
	return func(l *Log) { l.obs = reg }
}

// WithTrace emits wal_append (hot — sample the tracer) and wal_replay
// events into tr.
func WithTrace(tr *trace.Tracer) Option {
	return func(l *Log) { l.tr = tr }
}

// Log is a sharded write-ahead log rooted at one directory. Safe for
// concurrent use. Open, then Replay exactly once, then Append.
type Log struct {
	dir       string
	nshards   int
	segBytes  int64
	syncEvery time.Duration
	obs       *obs.Registry
	tr        *trace.Tracer

	shards    []*logShard
	replayed  atomic.Bool
	closedLog bool
	replayMu  sync.Mutex // serialises Replay and Close
	stopFlush chan struct{}
	flushWG   sync.WaitGroup

	appends, rows, bytes, fsyncs, truncated *obs.Counter
	fsyncHist                               *obs.Histogram

	appendHook func(tenant string, rows, bytes int)
}

// SetAppendHook registers fn to run after every successful record
// append, carrying the tenant, the record's row count, and its
// encoded size. The serve layer feeds it to the hot-key sidecar's
// WAL plane. fn runs under the shard lock on the append hot path, so
// it must be cheap and must not call back into the log. Call before
// the log takes traffic; it is not synchronised against appends.
func (l *Log) SetAppendHook(fn func(tenant string, rows, bytes int)) { l.appendHook = fn }

// logShard is one stripe: its own segment files, sequence counter,
// and lock.
type logShard struct {
	log *Log
	idx int

	mu         sync.Mutex
	f          *os.File
	size       int64
	dirty      bool
	err        error // first sync/write failure; sticks
	seq        uint64
	activeInfo segmentInfo
	closed     []segmentInfo
	// needed maps tenant -> first seq whose effect is not durable
	// outside the WAL. min over the map bounds what truncation keeps.
	needed map[string]uint64
}

// segmentInfo describes one on-disk segment file.
type segmentInfo struct {
	path  string
	first uint64 // seq of the first record
	last  uint64 // seq of the last record (active: highest written)
}

const segExt = ".wal"

// Open prepares a log rooted at dir (created if missing) and scans
// existing segments. No record is read until Replay, which must be
// called exactly once — on an empty directory it is a cheap no-op —
// before the first Append.
func Open(dir string, opts ...Option) (*Log, error) {
	l := &Log{
		dir:       dir,
		nshards:   4,
		segBytes:  64 << 20,
		syncEvery: 5 * time.Millisecond,
		stopFlush: make(chan struct{}),
	}
	for _, o := range opts {
		o(l)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.shards = make([]*logShard, l.nshards)
	for i := range l.shards {
		l.shards[i] = &logShard{log: l, idx: i, needed: make(map[string]uint64)}
	}
	if err := l.scanSegments(); err != nil {
		return nil, err
	}
	if l.obs != nil {
		l.registerMetrics()
	}
	return l, nil
}

// registerMetrics wires the append-path counters and gauges.
func (l *Log) registerMetrics() {
	l.appends = l.obs.Counter("swsketch_wal_appends_total",
		"Records appended to the WAL.", nil)
	l.rows = l.obs.Counter("swsketch_wal_rows_total",
		"Rows carried by appended WAL records.", nil)
	l.bytes = l.obs.Counter("swsketch_wal_bytes_total",
		"Bytes appended to WAL segments.", nil)
	l.fsyncs = l.obs.Counter("swsketch_wal_fsyncs_total",
		"Group-commit fsync calls.", nil)
	l.truncated = l.obs.Counter("swsketch_wal_segments_truncated_total",
		"Closed segments unlinked because every record was released.", nil)
	l.fsyncHist = l.obs.Histogram("swsketch_wal_fsync_seconds",
		"Group-commit fsync latency.", nil, obs.LatencyBuckets)
	l.obs.GaugeFunc("swsketch_wal_segments",
		"Live segment files across shards.", nil, func() float64 {
			n := 0
			for _, sh := range l.shards {
				sh.mu.Lock()
				n += len(sh.closed)
				if sh.f != nil {
					n++
				}
				sh.mu.Unlock()
			}
			return float64(n)
		})
}

// segName builds a segment filename; the zero-padded first-seq keeps
// lexical order equal to replay order.
func (l *Log) segName(shard int, first uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("s%02d-%016x%s", shard, first, segExt))
}

// scanSegments indexes existing segment files per shard, sorted by
// first sequence number. Record contents are not read here.
func (l *Log) scanSegments() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: scan: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segExt) {
			continue
		}
		base := strings.TrimSuffix(name, segExt)
		var shard int
		var first uint64
		if n, err := fmt.Sscanf(base, "s%02d-%016x", &shard, &first); n != 2 || err != nil {
			continue // foreign file in a shared directory
		}
		if shard < 0 || shard >= l.nshards {
			return fmt.Errorf("wal: segment %s names shard %d but the log has %d shards", name, shard, l.nshards)
		}
		sh := l.shards[shard]
		sh.closed = append(sh.closed, segmentInfo{path: filepath.Join(l.dir, name), first: first})
	}
	for _, sh := range l.shards {
		sort.Slice(sh.closed, func(i, j int) bool { return sh.closed[i].first < sh.closed[j].first })
	}
	return nil
}

// shardFor stripes a tenant ID onto its shard by FNV-1a.
func (l *Log) shardFor(tenant string) *logShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(tenant); i++ {
		h ^= uint64(tenant[i])
		h *= prime64
	}
	return l.shards[h%uint64(l.nshards)]
}

// start opens fresh active segments and the flusher; called by Replay
// once recovery is done.
func (l *Log) start() error {
	for _, sh := range l.shards {
		if err := sh.openActive(); err != nil {
			return err
		}
	}
	if l.syncEvery > 0 {
		l.flushWG.Add(1)
		go l.flushLoop()
	}
	return nil
}

// openActive begins a new active segment after seq. Caller owns the
// shard (replay/rotation). A leftover segment with the same first-seq
// name contributed nothing to replay (it was empty, torn, or all
// duplicates), so it is discarded rather than collided with.
func (sh *logShard) openActive() error {
	path := sh.log.segName(sh.idx, sh.seq+1)
	for i, seg := range sh.closed {
		if seg.path == path {
			_ = os.Remove(path)
			sh.closed = append(sh.closed[:i], sh.closed[i+1:]...)
			break
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	sh.f = f
	sh.size = 0
	sh.dirty = false
	sh.activeInfo = segmentInfo{path: path, first: sh.seq + 1, last: sh.seq}
	return nil
}

// flushLoop is the group-commit goroutine: every interval it fsyncs
// each dirty shard.
func (l *Log) flushLoop() {
	defer l.flushWG.Done()
	tick := time.NewTicker(l.syncEvery)
	defer tick.Stop()
	for {
		select {
		case <-l.stopFlush:
			return
		case <-tick.C:
			for _, sh := range l.shards {
				sh.mu.Lock()
				sh.syncLocked()
				sh.mu.Unlock()
			}
		}
	}
}

// syncLocked fsyncs the active segment if it has unsynced appends.
// Caller holds sh.mu.
func (sh *logShard) syncLocked() {
	if !sh.dirty || sh.f == nil || sh.err != nil {
		return
	}
	start := time.Now()
	if err := sh.f.Sync(); err != nil {
		sh.err = fmt.Errorf("wal: fsync: %w", err)
		return
	}
	sh.dirty = false
	if l := sh.log; l.fsyncs != nil {
		l.fsyncs.Inc()
		l.fsyncHist.Observe(time.Since(start).Seconds())
	}
}

// append encodes and writes one record to the tenant's shard,
// returning its sequence number. It rotates full segments, maintains
// the truncation low-water marks, and syncs immediately when group
// commit is disabled.
func (l *Log) append(rec *record) (uint64, error) {
	if !l.Replayed() {
		return 0, fmt.Errorf("wal: append before Replay")
	}
	sh := l.shardFor(rec.tenant)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.err != nil {
		return 0, sh.err
	}
	if sh.f == nil {
		return 0, fmt.Errorf("wal: log closed")
	}
	rec.seq = sh.seq + 1
	data := rec.encodedBytes()
	if sh.size > 0 && sh.size+int64(len(data)) > l.segBytes {
		sh.rotateLocked()
		if sh.err != nil {
			return 0, sh.err
		}
	}
	if _, err := sh.f.Write(data); err != nil {
		sh.err = fmt.Errorf("wal: write: %w", err)
		return 0, sh.err
	}
	sh.seq = rec.seq
	sh.activeInfo.last = rec.seq
	sh.size += int64(len(data))
	sh.dirty = true
	switch rec.kind {
	case KindRows, KindCreate:
		if _, ok := sh.needed[rec.tenant]; !ok {
			sh.needed[rec.tenant] = rec.seq
		}
	case KindSnapshot:
		// The snapshot record supersedes everything before it.
		sh.needed[rec.tenant] = rec.seq
		sh.gcLocked()
	case KindDelete:
		delete(sh.needed, rec.tenant)
		sh.gcLocked()
	}
	if l.syncEvery <= 0 {
		sh.syncLocked()
		if sh.err != nil {
			return 0, sh.err
		}
	}
	if l.appends != nil {
		l.appends.Inc()
		l.bytes.Add(uint64(len(data)))
		if rec.kind == KindRows {
			l.rows.Add(uint64(len(rec.rows)))
		}
	}
	if l.tr.Enabled() {
		l.tr.EmitNote("wal", trace.KindWALAppend, 0,
			float64(len(rec.rows)), float64(len(data)), rec.tenant)
	}
	if l.appendHook != nil {
		l.appendHook(rec.tenant, len(rec.rows), len(data))
	}
	return rec.seq, nil
}

// rotateLocked closes the active segment into the closed list, opens
// a fresh one, and garbage-collects. Caller holds sh.mu.
func (sh *logShard) rotateLocked() {
	sh.syncLocked()
	if sh.err != nil {
		return
	}
	if err := sh.f.Close(); err != nil {
		sh.err = fmt.Errorf("wal: close segment: %w", err)
		return
	}
	sh.closed = append(sh.closed, sh.activeInfo)
	if err := sh.openActive(); err != nil {
		sh.err = err
		return
	}
	sh.gcLocked()
}

// gcLocked unlinks closed segments whose every record is below the
// lowest still-needed sequence number. Caller holds sh.mu.
func (sh *logShard) gcLocked() {
	floor := sh.seq + 1 // nothing needed → everything closed is released
	for _, first := range sh.needed {
		if first < floor {
			floor = first
		}
	}
	kept := sh.closed[:0]
	for _, seg := range sh.closed {
		if seg.last < floor {
			if err := os.Remove(seg.path); err == nil {
				if sh.log.truncated != nil {
					sh.log.truncated.Inc()
				}
				continue
			}
		}
		kept = append(kept, seg)
	}
	sh.closed = kept
}

// AppendRows logs a block of rows ingested into tenant at the given
// timestamps. start is the tenant's committed update count before the
// block — replay uses it to skip blocks a spill snapshot already
// covers. The returned sequence number is shard-local.
func (l *Log) AppendRows(tenant string, start uint64, rows [][]float64, times []float64) (uint64, error) {
	if len(rows) != len(times) {
		return 0, fmt.Errorf("wal: %d rows but %d timestamps", len(rows), len(times))
	}
	return l.append(&record{kind: KindRows, tenant: tenant, start: start, rows: rows, times: times})
}

// AppendCreate logs a tenant creation with its declarative config as
// JSON.
func (l *Log) AppendCreate(tenant string, cfgJSON []byte) (uint64, error) {
	return l.append(&record{kind: KindCreate, tenant: tenant, cfg: cfgJSON})
}

// AppendDelete logs an explicit tenant deletion and releases the
// tenant's earlier records for truncation.
func (l *Log) AppendDelete(tenant string) (uint64, error) {
	return l.append(&record{kind: KindDelete, tenant: tenant})
}

// AppendSnapshot logs a snapshot restore: blob replaces the tenant's
// sketch state and the clock fields reset replay's view of the
// tenant. Records before it become truncatable.
func (l *Log) AppendSnapshot(tenant string, updates uint64, lastT float64, seen bool, blob []byte) (uint64, error) {
	return l.append(&record{kind: KindSnapshot, tenant: tenant,
		updates: updates, lastT: lastT, seen: seen, blob: blob})
}

// Released tells the log a tenant's state became durable outside the
// WAL (spilled to disk) or ceased to matter (dropped/deleted without
// an API call): its records up to now are no longer needed for
// recovery and closed segments holding only released records are
// unlinked. Before replay has finished it is a no-op: replay's own
// bookkeeping (a Delete record clears the tenant's mark) covers the
// same ground, and segment GC must not mutate the segment list while
// replay walks it — appliers routinely trigger eviction hooks that
// land here.
func (l *Log) Released(tenant string) {
	if !l.replayed.Load() {
		return
	}
	sh := l.shardFor(tenant)
	sh.mu.Lock()
	delete(sh.needed, tenant)
	sh.gcLocked()
	sh.mu.Unlock()
}

// Sync forces a group commit on every shard and reports the first
// sticky shard error.
func (l *Log) Sync() error {
	var first error
	for _, sh := range l.shards {
		sh.mu.Lock()
		sh.syncLocked()
		if sh.err != nil && first == nil {
			first = sh.err
		}
		sh.mu.Unlock()
	}
	return first
}

// Replayed reports whether Replay has run (appends are legal).
func (l *Log) Replayed() bool { return l.replayed.Load() }

// Dir returns the log's root directory.
func (l *Log) Dir() string { return l.dir }

// Close stops the flusher, syncs, and closes every shard's active
// segment. The log cannot be reused after Close; further Closes are
// no-ops.
func (l *Log) Close() error {
	l.replayMu.Lock()
	if l.closedLog {
		l.replayMu.Unlock()
		return nil
	}
	l.closedLog = true
	replayed := l.replayed.Load()
	l.replayMu.Unlock()
	if replayed {
		close(l.stopFlush)
		l.flushWG.Wait()
	}
	var first error
	for _, sh := range l.shards {
		sh.mu.Lock()
		sh.syncLocked()
		if sh.err != nil && first == nil {
			first = sh.err
		}
		if sh.f != nil {
			if err := sh.f.Close(); err != nil && first == nil {
				first = err
			}
			sh.f = nil
		}
		sh.mu.Unlock()
	}
	return first
}
