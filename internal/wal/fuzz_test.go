package wal

// Fuzzing the record decoder. The WAL reads back bytes it wrote, but
// after a crash those bytes are arbitrary — the decoder must never
// panic or allocate proportionally to a hostile length prefix.

import (
	"errors"
	"testing"

	"swsketch/internal/binenc"
)

// hostileRowsFrame builds a rows record whose header claims a block
// vastly larger than the bytes that follow — the allocation-bomb
// shape a flipped length byte produces.
func hostileRowsFrame() []byte {
	w := binenc.NewWriter()
	w.U32(recMagic)
	w.U64(1)
	w.U32(KindRows)
	w.Blob([]byte("t"))
	w.U64(0)
	w.Int(1 << 20) // claims a million rows...
	w.Int(1 << 20) // ...of a million dims
	w.F64(1)       // ...backed by 16 bytes
	w.F64(2)
	return w.Bytes()
}

func FuzzWALRecord(f *testing.F) {
	// Well-formed records of every kind.
	for _, rec := range []*record{
		{seq: 1, kind: KindRows, tenant: "alpha", start: 3,
			rows: [][]float64{{1, 2}, {3, 4}}, times: []float64{5, 6}},
		{seq: 2, kind: KindCreate, tenant: "alpha", cfg: []byte(`{"d":2}`)},
		{seq: 3, kind: KindSnapshot, tenant: "alpha", updates: 9, lastT: 7.5,
			seen: true, blob: []byte("snapshot-bytes")},
		{seq: 4, kind: KindDelete, tenant: "alpha"},
	} {
		f.Add(rec.encodedBytes())
	}
	// The ISSUE-mandated hostile seed: a plausible frame with a length
	// prefix far beyond the payload.
	f.Add(hostileRowsFrame())
	// A torn frame and pure noise.
	f.Add(hostileRowsFrame()[:9])
	f.Add([]byte{0x53, 0x57, 0x41, 0x4C, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		for off < len(data) {
			rec, next, err := decodeRecord(data, off)
			if err != nil {
				if !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("decode error outside the taxonomy: %v", err)
				}
				return
			}
			if next <= off || next > len(data) {
				t.Fatalf("decode advanced %d -> %d of %d", off, next, len(data))
			}
			if len(rec.rows) != len(rec.times) {
				t.Fatalf("decoded %d rows with %d times", len(rec.rows), len(rec.times))
			}
			// A record that decodes must re-encode to the same bytes.
			if rec.kind == KindRows || rec.kind == KindCreate ||
				rec.kind == KindSnapshot || rec.kind == KindDelete {
				enc := rec.encodedBytes()
				if len(enc) != next-off {
					t.Fatalf("re-encode length %d, decoded span %d", len(enc), next-off)
				}
			}
			off = next
		}
	})
}

// TestHostileLengthPrefixBounded pins the allocation bound directly:
// decoding the hostile frame fails as torn without allocating the
// claimed terabyte block.
func TestHostileLengthPrefixBounded(t *testing.T) {
	data := hostileRowsFrame()
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := decodeRecord(data, 0); !errors.Is(err, ErrTorn) {
			t.Fatalf("hostile frame decoded: %v", err)
		}
	})
	if allocs > 8 { // reader, tenant, error wrapping; never the claimed block
		t.Fatalf("hostile frame cost %v allocations per decode", allocs)
	}
}
