package wal

// Record codec. Every record is a self-delimiting binenc frame:
//
//	U32  magic   "SWAL" (little-endian 0x4C415753)
//	U64  seq     per-shard, strictly increasing
//	U32  kind    rows | create | snapshot | delete
//	Blob tenant  the tenant ID
//	     payload kind-specific (see below)
//	U32  crc     IEEE CRC-32 of every preceding byte of the record
//
// Payloads:
//
//	rows      U64 start (tenant updates before the block), Int n,
//	          Int d, n timestamps, n·d row values (row-major)
//	create    Blob of the tenant's declarative config as JSON
//	snapshot  U64 updates, F64 lastT, Bool seen, Blob sketch snapshot
//	delete    empty
//
// Decoding distinguishes two failure classes: ErrTorn (the buffer ends
// mid-record — the normal shape of a crash during an append) and
// ErrCorrupt (bad magic, implausible lengths, or a CRC mismatch —
// bytes that were durably written and then damaged). Replay treats a
// torn final record as a clean stop and anything else as damage.

import (
	"errors"
	"fmt"
	"hash/crc32"

	"swsketch/internal/binenc"
)

// Record kinds. Exported for replay-stats consumers; the byte layout
// is internal.
const (
	// KindRows is a block of ingested rows for one tenant.
	KindRows = uint32(1)
	// KindCreate records a tenant creation with its config JSON.
	KindCreate = uint32(2)
	// KindDelete records an explicit tenant deletion.
	KindDelete = uint32(3)
	// KindSnapshot records a snapshot restore: the uploaded sketch
	// state replaces the tenant's, making earlier records obsolete.
	KindSnapshot = uint32(4)
)

const recMagic = uint32(0x4C415753) // "SWAL" little-endian

// Decode-time sanity caps; real blocks are orders of magnitude
// smaller, and anything beyond these is corruption, not data.
const (
	maxBlockRows = 1 << 24
	maxBlockDim  = 1 << 24
)

// ErrTorn reports a record cut short by the end of its segment — the
// expected tail state after a crash mid-append.
var ErrTorn = errors.New("wal: torn record")

// ErrCorrupt reports a structurally damaged record: wrong magic, an
// implausible length, or a CRC mismatch.
var ErrCorrupt = errors.New("wal: corrupt record")

// record is one decoded WAL entry.
type record struct {
	seq    uint64
	kind   uint32
	tenant string

	// rows payload
	start uint64
	times []float64
	rows  [][]float64

	// create payload
	cfg []byte

	// snapshot payload
	updates uint64
	lastT   float64
	seen    bool
	blob    []byte
}

// encodedBytes returns the record's frame, CRC included.
func (rec *record) encodedBytes() []byte {
	w := binenc.NewWriter()
	w.U32(recMagic)
	w.U64(rec.seq)
	w.U32(rec.kind)
	w.Blob([]byte(rec.tenant))
	switch rec.kind {
	case KindRows:
		w.U64(rec.start)
		w.Int(len(rec.rows))
		d := 0
		if len(rec.rows) > 0 {
			d = len(rec.rows[0])
		}
		w.Int(d)
		for _, t := range rec.times {
			w.F64(t)
		}
		for _, row := range rec.rows {
			for _, v := range row {
				w.F64(v)
			}
		}
	case KindCreate:
		w.Blob(rec.cfg)
	case KindSnapshot:
		w.U64(rec.updates)
		w.F64(rec.lastT)
		w.Bool(rec.seen)
		w.Blob(rec.blob)
	case KindDelete:
	default:
		panic(fmt.Sprintf("wal: encode unknown record kind %d", rec.kind))
	}
	body := w.Bytes()
	w.U32(crc32.ChecksumIEEE(body))
	return w.Bytes()
}

// decodeRecord parses one record starting at data[off], returning the
// record and the offset one past it. Errors wrap ErrTorn or
// ErrCorrupt; see the package comment for how replay maps them to
// clean-stop vs damaged.
func decodeRecord(data []byte, off int) (record, int, error) {
	var rec record
	r := binenc.NewReader(data[off:])
	if magic := r.U32(); r.Err() != nil {
		return rec, off, fmt.Errorf("%w: segment ends inside a record header", ErrTorn)
	} else if magic != recMagic {
		return rec, off, fmt.Errorf("%w: bad magic %#x at offset %d", ErrCorrupt, magic, off)
	}
	rec.seq = r.U64()
	rec.kind = r.U32()
	rec.tenant = string(r.Blob())
	switch rec.kind {
	case KindRows:
		rec.start = r.U64()
		n := r.Int()
		d := r.Int()
		if r.Err() == nil {
			if n < 0 || n > maxBlockRows || d < 0 || d > maxBlockDim {
				return rec, off, fmt.Errorf("%w: implausible block %dx%d", ErrCorrupt, n, d)
			}
			if need := n * (d + 1); need > r.Rest()/8 {
				// The lengths decoded but the payload is cut short.
				return rec, off, fmt.Errorf("%w: block %dx%d exceeds remaining bytes", ErrTorn, n, d)
			}
			rec.times = make([]float64, n)
			for i := range rec.times {
				rec.times[i] = r.F64()
			}
			flat := make([]float64, n*d)
			for i := range flat {
				flat[i] = r.F64()
			}
			rec.rows = make([][]float64, n)
			for i := range rec.rows {
				rec.rows[i] = flat[i*d : (i+1)*d : (i+1)*d]
			}
		}
	case KindCreate:
		rec.cfg = r.Blob()
	case KindSnapshot:
		rec.updates = r.U64()
		rec.lastT = r.F64()
		rec.seen = r.Bool()
		rec.blob = r.Blob()
	case KindDelete:
	default:
		if r.Err() == nil {
			return rec, off, fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, rec.kind)
		}
	}
	crcOff := r.Off()
	sum := r.U32()
	if err := r.Err(); err != nil {
		// Any read failure here means the frame could not be parsed to
		// completion with the bytes available — indistinguishable from
		// a crash mid-append, so it reads as a torn tail. Replay only
		// forgives a torn record at the very end of the last segment;
		// anywhere else it counts as damage.
		return rec, off, fmt.Errorf("%w: %v", ErrTorn, err)
	}
	if want := crc32.ChecksumIEEE(data[off : off+crcOff]); sum != want {
		return rec, off, fmt.Errorf("%w: crc %#x, want %#x (seq %d)", ErrCorrupt, sum, want, rec.seq)
	}
	return rec, off + crcOff + 4, nil
}
