package wal

// Crash-recovery property tests. The central claim of the ingest
// plane: kill the process at ANY byte offset mid-stream, replay the
// WAL, and the recovered sketch is bit-for-bit identical to one that
// ingested the surviving prefix without interruption. LM-FD is fully
// deterministic, so MarshalBinary equality is the exact oracle.

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"swsketch/internal/core"
	"swsketch/internal/window"
)

// rowsApplier feeds replayed row blocks into a sketch, skipping any
// block whose start does not match the rows already applied — the
// same idempotence rule the serve layer uses.
type rowsApplier struct {
	sk      *core.LM
	applied uint64
	blocks  int
}

func (a *rowsApplier) Create(string, []byte) (bool, error) { return false, nil }
func (a *rowsApplier) Delete(string) (bool, error)         { return false, nil }
func (a *rowsApplier) Snapshot(string, uint64, float64, bool, []byte) (bool, error) {
	return false, nil
}

func (a *rowsApplier) Rows(tenant string, start uint64, rows [][]float64, times []float64) (bool, error) {
	if start != a.applied {
		return false, nil
	}
	a.sk.UpdateBatch(rows, times)
	a.applied += uint64(len(rows))
	a.blocks++
	return true, nil
}

const (
	crashD   = 6
	crashEll = 8
	crashB   = 4
)

func newCrashSketch() *core.LM {
	return core.NewLMFD(window.Seq(64), crashD, crashEll, crashB)
}

// writeCrashLog appends nblocks deterministic row blocks to a fresh
// single-shard log in dir, returning the blocks and the active
// segment's byte offset after each append (the record boundaries).
func writeCrashLog(t *testing.T, dir string, rng *rand.Rand, nblocks int) (blocks [][][]float64, times [][]float64, bounds []int64) {
	t.Helper()
	l := openTest(t, dir, WithSegmentBytes(1<<30)) // one segment: no rotation
	if _, err := l.Replay(nil); err != nil {
		t.Fatal(err)
	}
	var start uint64
	for b := 0; b < nblocks; b++ {
		n := 1 + rng.Intn(4)
		rows := make([][]float64, n)
		ts := make([]float64, n)
		for i := range rows {
			rows[i] = make([]float64, crashD)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64()
			}
			ts[i] = float64(int(start) + i)
		}
		if _, err := l.AppendRows("t", start, rows, ts); err != nil {
			t.Fatal(err)
		}
		start += uint64(n)
		blocks = append(blocks, rows)
		times = append(times, ts)
		bounds = append(bounds, l.shards[0].size)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return blocks, times, bounds
}

// soleSegment returns the path of the directory's single segment file.
func soleSegment(t *testing.T, dir string) string {
	t.Helper()
	segs := segFiles(t, dir)
	if len(segs) != 1 {
		t.Fatalf("want one segment, got %v", segs)
	}
	return filepath.Join(dir, segs[0])
}

// cloneTruncated copies the log directory with its segment cut at
// offset — the on-disk state after a crash at that byte.
func cloneTruncated(t *testing.T, srcDir string, cut int64) string {
	t.Helper()
	dst := t.TempDir()
	src := soleSegment(t, srcDir)
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if cut > int64(len(data)) {
		cut = int64(len(data))
	}
	if err := os.WriteFile(filepath.Join(dst, filepath.Base(src)), data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	return dst
}

func TestCrashReplayBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dir := t.TempDir()
	blocks, times, bounds := writeCrashLog(t, dir, rng, 30)
	total := bounds[len(bounds)-1]

	trials := 24
	if testing.Short() {
		trials = 6
	}
	cuts := []int64{0, 1, total - 1, total} // edges always covered
	for len(cuts) < trials {
		cuts = append(cuts, rng.Int63n(total+1))
	}

	for _, cut := range cuts {
		crashed := cloneTruncated(t, dir, cut)

		l, err := Open(crashed, WithShards(1), WithSyncInterval(0))
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		ap := &rowsApplier{sk: newCrashSketch()}
		st, err := l.Replay(ap)
		if err != nil {
			t.Fatalf("cut %d: replay: %v", cut, err)
		}

		// Exactly the complete records survive: every boundary <= cut.
		wantBlocks := 0
		for _, b := range bounds {
			if b <= cut {
				wantBlocks++
			}
		}
		if ap.blocks != wantBlocks {
			t.Fatalf("cut %d: replayed %d blocks, want %d (stats %+v)", cut, ap.blocks, wantBlocks, st)
		}
		if st.Damaged {
			t.Fatalf("cut %d: clean truncation reported damage: %+v", cut, st)
		}
		midRecord := cut < total && (wantBlocks == len(bounds) || cut != 0 && (wantBlocks == 0 || bounds[wantBlocks-1] != cut))
		if midRecord && !st.Torn && cut > 0 {
			t.Fatalf("cut %d mid-record but Torn not reported: %+v", cut, st)
		}

		// The oracle: an uninterrupted run over the surviving prefix.
		ref := newCrashSketch()
		for i := 0; i < wantBlocks; i++ {
			ref.UpdateBatch(blocks[i], times[i])
		}
		got, err := ap.sk.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("cut %d: recovered sketch differs from uninterrupted run (%d vs %d bytes)",
				cut, len(got), len(want))
		}

		// Recovery is not just read-only: the log accepts new blocks
		// and a second crashless replay reproduces the extended state.
		// Timestamps continue from the recovered clock.
		more := blocks[0]
		moreTs := make([]float64, len(more))
		for i := range moreTs {
			moreTs[i] = float64(int(ap.applied) + i)
		}
		if _, err := l.AppendRows("t", ap.applied, more, moreTs); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		ref.UpdateBatch(more, moreTs)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		l2, err := Open(crashed, WithShards(1), WithSyncInterval(0))
		if err != nil {
			t.Fatal(err)
		}
		ap2 := &rowsApplier{sk: newCrashSketch()}
		if _, err := l2.Replay(ap2); err != nil {
			t.Fatal(err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		if got2, _ := ap2.sk.MarshalBinary(); !bytes.Equal(got2, mustMarshal(t, ref)) {
			t.Fatalf("cut %d: replay after post-recovery appends diverged", cut)
		}
	}
}

func mustMarshal(t *testing.T, sk *core.LM) []byte {
	t.Helper()
	b, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestReplayFaults pins the three failure shapes the ISSUE names:
// a torn final record (benign), a duplicated sequence number
// (idempotent skip), and a CRC flip (damage: stop the shard and
// surface degraded health).
func TestReplayFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(11))

	build := func(t *testing.T) (dir string, bounds []int64) {
		dir = t.TempDir()
		_, _, bounds = writeCrashLog(t, dir, rng, 5)
		return dir, bounds
	}

	tests := []struct {
		name    string
		mutate  func(t *testing.T, path string, bounds []int64)
		records int
		applied int
		skipped int
		torn    bool
		damaged bool
	}{
		{
			name: "torn final record",
			mutate: func(t *testing.T, path string, bounds []int64) {
				data, _ := os.ReadFile(path)
				if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			records: 4, applied: 4, torn: true,
		},
		{
			name: "duplicate sequence number",
			mutate: func(t *testing.T, path string, bounds []int64) {
				data, _ := os.ReadFile(path)
				// Re-append record 3's bytes verbatim: redelivery after
				// a retried ack, the idempotence case.
				dup := data[bounds[1]:bounds[2]]
				f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write(dup); err != nil {
					t.Fatal(err)
				}
				f.Close()
			},
			records: 6, applied: 5, skipped: 1,
		},
		{
			name: "crc flip mid-file",
			mutate: func(t *testing.T, path string, bounds []int64) {
				data, _ := os.ReadFile(path)
				// Flip one bit in the float payload of record 2: the
				// frame still parses, the checksum catches it.
				data[bounds[0]+60] ^= 0x10
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			records: 1, applied: 1, damaged: true,
		},
	}

	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			dir, bounds := build(t)
			tc.mutate(t, soleSegment(t, dir), bounds)

			l, err := Open(dir, WithShards(1), WithSyncInterval(0))
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			ap := &rowsApplier{sk: newCrashSketch()}
			st, err := l.Replay(ap)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if st.Records != tc.records || st.Applied != tc.applied || st.Skipped != tc.skipped {
				t.Fatalf("stats %+v, want records=%d applied=%d skipped=%d",
					st, tc.records, tc.applied, tc.skipped)
			}
			if st.Torn != tc.torn || st.Damaged != tc.damaged {
				t.Fatalf("stats %+v, want torn=%v damaged=%v", st, tc.torn, tc.damaged)
			}
		})
	}
}

// TestDamagedMidSegmentTear pins the positional rule: a tear is only
// benign at the tail of the LAST segment. The same truncation inside
// an earlier segment means records after it were acknowledged and
// lost — that is damage, not a clean stop.
func TestDamagedMidSegmentTear(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dir := t.TempDir()

	l := openTest(t, dir, WithSegmentBytes(512))
	if _, err := l.Replay(nil); err != nil {
		t.Fatal(err)
	}
	var start uint64
	for b := 0; b < 12; b++ {
		rows := make([][]float64, 2)
		ts := make([]float64, 2)
		for i := range rows {
			rows[i] = make([]float64, crashD)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64()
			}
			ts[i] = float64(int(start) + i)
		}
		if _, err := l.AppendRows("t", start, rows, ts); err != nil {
			t.Fatal(err)
		}
		start += 2
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	segs := segFiles(t, dir)
	if len(segs) < 2 {
		t.Fatalf("need several segments, got %v", segs)
	}
	// Tear the FIRST segment: chop its tail mid-record.
	first := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(first, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := openTest(t, dir, WithSegmentBytes(512))
	defer l2.Close()
	st, err := l2.Replay(&rowsApplier{sk: newCrashSketch()})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Damaged {
		t.Fatalf("mid-segment tear not reported as damage: %+v", st)
	}
}
