package wal

// Replay-to-restore. Replay walks every shard's segments in sequence
// order and hands each record to an Applier. The applier decides
// whether the record's effect is still needed (a spill snapshot may
// already cover it) — that decision also rebuilds the truncation
// low-water marks, so a restarted log garbage-collects exactly like
// the one that crashed.

import (
	"errors"
	"fmt"
	"os"

	"swsketch/internal/trace"
)

// Applier consumes replayed records. Each method reports whether the
// record's effect was applied (true) or intentionally skipped (false,
// nil) — e.g. a row block a spill snapshot already covers, or a
// creation of a tenant that already exists. An error counts the
// record as failed but does not stop replay.
type Applier interface {
	// Create handles a tenant-creation record; cfgJSON is the
	// declarative config the tenant was created from.
	Create(tenant string, cfgJSON []byte) (bool, error)
	// Rows handles a row-block record. start is the tenant's committed
	// update count before the block.
	Rows(tenant string, start uint64, rows [][]float64, times []float64) (bool, error)
	// Snapshot handles a snapshot-restore record: blob replaces the
	// tenant's sketch state and the clock fields reinstate its ingest
	// clock.
	Snapshot(tenant string, updates uint64, lastT float64, seen bool, blob []byte) (bool, error)
	// Delete handles a tenant-deletion record.
	Delete(tenant string) (bool, error)
}

// Stats summarises one replay.
type Stats struct {
	// Segments is the number of segment files read.
	Segments int `json:"segments"`
	// Records is the number of structurally valid records seen.
	Records int `json:"records"`
	// Applied counts records whose effect was applied.
	Applied int `json:"applied"`
	// Skipped counts records intentionally skipped — duplicate
	// sequence numbers and effects already covered by spill snapshots.
	Skipped int `json:"skipped"`
	// Failed counts records the applier errored on.
	Failed int `json:"failed"`
	// Rows is the total row count of applied row blocks.
	Rows int `json:"rows"`
	// Torn reports a benign torn final record (crash mid-append).
	Torn bool `json:"torn,omitempty"`
	// Damaged reports corruption that stopped a shard's replay early:
	// a CRC mismatch, bad magic, or a tear anywhere but the final
	// record. Serving layers should surface degraded health.
	Damaged bool `json:"damaged,omitempty"`
}

// Replay reads every shard's segments in order, applying records
// through ap (which may be nil to skip application — e.g. a fresh
// log), and enables appends. It must be called exactly once per
// opened Log. Corruption never returns an error — it is reported in
// Stats.Damaged so the caller can serve degraded rather than refuse
// to start; the error return covers I/O and lifecycle failures only.
func (l *Log) Replay(ap Applier) (Stats, error) {
	l.replayMu.Lock()
	defer l.replayMu.Unlock()
	if l.replayed.Load() {
		return Stats{}, fmt.Errorf("wal: already replayed")
	}
	var st Stats
	for _, sh := range l.shards {
		if err := sh.replay(ap, &st); err != nil {
			return st, err
		}
	}
	if err := l.start(); err != nil {
		return st, err
	}
	l.replayed.Store(true)
	return st, nil
}

// replay restores one shard: segments in first-seq order, records in
// byte order. Replay owns the whole log; no shard lock is needed.
func (sh *logShard) replay(ap Applier, st *Stats) error {
	for segIdx, seg := range sh.closed {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return fmt.Errorf("wal: replay %s: %w", seg.path, err)
		}
		st.Segments++
		applied, skipped := 0, 0
		off := 0
		for off < len(data) {
			rec, next, err := decodeRecord(data, off)
			if err != nil {
				atTail := segIdx == len(sh.closed)-1 && errors.Is(err, ErrTorn)
				if atTail {
					st.Torn = true
					// Chop the torn tail so the recovered log is clean on
					// disk: a later replay must not mistake these bytes for
					// mid-segment damage once newer segments exist.
					if terr := os.Truncate(seg.path, int64(off)); terr != nil {
						return fmt.Errorf("wal: truncate torn tail of %s: %w", seg.path, terr)
					}
				} else {
					st.Damaged = true
				}
				break
			}
			off = next
			st.Records++
			if rec.seq <= sh.seq {
				// Idempotent skip: a duplicate or out-of-order sequence
				// number means the record's effect is already in.
				st.Skipped++
				skipped++
				continue
			}
			sh.seq = rec.seq
			sh.activeInfo.last = rec.seq
			ok, err := sh.dispatch(ap, rec)
			switch {
			case err != nil:
				st.Failed++
			case ok:
				st.Applied++
				applied++
				if rec.kind == KindRows {
					st.Rows += len(rec.rows)
				}
				sh.trackNeeded(rec)
			default:
				st.Skipped++
				skipped++
			}
		}
		sh.closed[segIdx] = segmentInfo{path: seg.path, first: seg.first, last: sh.seq}
		if tr := sh.log.tr; tr.Enabled() {
			tr.EmitNote("wal", trace.KindWALReplay, 0,
				float64(applied), float64(skipped), seg.path)
		}
		if st.Damaged {
			// Ordering beyond the damage is unknowable; stop this shard.
			break
		}
	}
	return nil
}

// dispatch routes one replayed record to the applier.
func (sh *logShard) dispatch(ap Applier, rec record) (bool, error) {
	if ap == nil {
		return false, nil
	}
	switch rec.kind {
	case KindRows:
		return ap.Rows(rec.tenant, rec.start, rec.rows, rec.times)
	case KindCreate:
		return ap.Create(rec.tenant, rec.cfg)
	case KindSnapshot:
		return ap.Snapshot(rec.tenant, rec.updates, rec.lastT, rec.seen, rec.blob)
	case KindDelete:
		return ap.Delete(rec.tenant)
	}
	return false, fmt.Errorf("wal: unknown kind %d", rec.kind)
}

// trackNeeded rebuilds the truncation low-water marks during replay,
// mirroring the append-path bookkeeping.
func (sh *logShard) trackNeeded(rec record) {
	switch rec.kind {
	case KindRows, KindCreate:
		if _, ok := sh.needed[rec.tenant]; !ok {
			sh.needed[rec.tenant] = rec.seq
		}
	case KindSnapshot:
		sh.needed[rec.tenant] = rec.seq
	case KindDelete:
		delete(sh.needed, rec.tenant)
	}
}
