package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"swsketch/internal/obs"
)

// recApplier records everything replay delivers, in order.
type recApplier struct {
	events  []string
	rows    map[string]int // tenant -> total rows applied
	skipAll bool
}

func newRecApplier() *recApplier {
	return &recApplier{rows: make(map[string]int)}
}

func (a *recApplier) Create(tenant string, cfg []byte) (bool, error) {
	if a.skipAll {
		return false, nil
	}
	a.events = append(a.events, fmt.Sprintf("create %s %s", tenant, cfg))
	return true, nil
}

func (a *recApplier) Rows(tenant string, start uint64, rows [][]float64, times []float64) (bool, error) {
	if a.skipAll {
		return false, nil
	}
	a.events = append(a.events, fmt.Sprintf("rows %s start=%d n=%d", tenant, start, len(rows)))
	a.rows[tenant] += len(rows)
	return true, nil
}

func (a *recApplier) Snapshot(tenant string, updates uint64, lastT float64, seen bool, blob []byte) (bool, error) {
	if a.skipAll {
		return false, nil
	}
	a.events = append(a.events, fmt.Sprintf("snapshot %s updates=%d lastT=%g seen=%v blob=%d",
		tenant, updates, lastT, seen, len(blob)))
	return true, nil
}

func (a *recApplier) Delete(tenant string) (bool, error) {
	if a.skipAll {
		return false, nil
	}
	a.events = append(a.events, "delete "+tenant)
	return true, nil
}

// openTest opens a log in dir with per-append fsync (deterministic
// tests) and a single shard unless opts override.
func openTest(t *testing.T, dir string, opts ...Option) *Log {
	t.Helper()
	all := append([]Option{WithShards(1), WithSyncInterval(0)}, opts...)
	l, err := Open(dir, all...)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return l
}

func block(n, d int, base float64) ([][]float64, []float64) {
	rows := make([][]float64, n)
	times := make([]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = base + float64(i*d+j)
		}
		times[i] = base + float64(i)
	}
	return rows, times
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir)
	if _, err := l.Replay(nil); err != nil {
		t.Fatalf("replay fresh: %v", err)
	}

	if _, err := l.AppendCreate("alpha", []byte(`{"d":3}`)); err != nil {
		t.Fatalf("create: %v", err)
	}
	rows, times := block(4, 3, 10)
	if _, err := l.AppendRows("alpha", 0, rows, times); err != nil {
		t.Fatalf("rows: %v", err)
	}
	if _, err := l.AppendSnapshot("alpha", 4, 13, true, []byte("blobdata")); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if _, err := l.AppendDelete("alpha"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2 := openTest(t, dir)
	ap := newRecApplier()
	st, err := l2.Replay(ap)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	defer l2.Close()
	want := []string{
		`create alpha {"d":3}`,
		"rows alpha start=0 n=4",
		"snapshot alpha updates=4 lastT=13 seen=true blob=8",
		"delete alpha",
	}
	if len(ap.events) != len(want) {
		t.Fatalf("replayed %d events, want %d: %v", len(ap.events), len(want), ap.events)
	}
	for i, w := range want {
		if ap.events[i] != w {
			t.Fatalf("event %d = %q, want %q", i, ap.events[i], w)
		}
	}
	if st.Records != 4 || st.Applied != 4 || st.Torn || st.Damaged {
		t.Fatalf("stats: %+v", st)
	}
	// The log stays appendable after replay, continuing the sequence.
	if seq, err := l2.AppendCreate("beta", []byte(`{}`)); err != nil || seq != 5 {
		t.Fatalf("append after replay: seq=%d err=%v", seq, err)
	}
}

func TestAppendBeforeReplayFails(t *testing.T) {
	l := openTest(t, t.TempDir())
	defer l.Close()
	if _, err := l.AppendCreate("x", nil); err == nil {
		t.Fatal("append before Replay should fail")
	}
	if _, err := l.Replay(nil); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if _, err := l.Replay(nil); err == nil {
		t.Fatal("second Replay should fail")
	}
}

func TestRowsTimesMismatch(t *testing.T) {
	l := openTest(t, t.TempDir())
	defer l.Close()
	if _, err := l.Replay(nil); err != nil {
		t.Fatal(err)
	}
	rows, _ := block(3, 2, 0)
	if _, err := l.AppendRows("t", 0, rows, []float64{1}); err == nil {
		t.Fatal("mismatched rows/times should fail")
	}
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), segExt) {
			out = append(out, e.Name())
		}
	}
	return out
}

func TestRotationAndTruncation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so every block rotates.
	l := openTest(t, dir, WithSegmentBytes(256))
	if _, err := l.Replay(nil); err != nil {
		t.Fatal(err)
	}
	rows, times := block(4, 4, 1)
	for i := 0; i < 8; i++ {
		if _, err := l.AppendRows("hot", uint64(i*4), rows, times); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if n := len(segFiles(t, dir)); n < 4 {
		t.Fatalf("expected rotation to leave several segments, got %d", n)
	}

	// Spill notification releases every record; closed segments vanish.
	l.Released("hot")
	if n := len(segFiles(t, dir)); n != 1 {
		t.Fatalf("after release want only the active segment, got %d: %v", n, segFiles(t, dir))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Replay of the truncated log sees only what the active segment
	// still held — records from unlinked closed segments are gone. (In
	// the real system the applier's start check skips these: the spill
	// that triggered Released already covers them.)
	l2 := openTest(t, dir)
	ap := newRecApplier()
	st, err := l2.Replay(ap)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st.Rows > 4 {
		t.Fatalf("truncated segments replayed: %+v %v", st, ap.events)
	}
	for _, ev := range ap.events {
		if !strings.Contains(ev, "start=28") {
			t.Fatalf("non-tail record survived truncation: %v", ap.events)
		}
	}
	// But the sequence counter still advances past the unlinked records.
	seq, err := l2.AppendCreate("hot", nil)
	if err != nil || seq != 9 {
		t.Fatalf("seq after truncated reopen: %d err=%v", seq, err)
	}
}

func TestSnapshotSupersedesAndTruncates(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, WithSegmentBytes(256))
	if _, err := l.Replay(nil); err != nil {
		t.Fatal(err)
	}
	rows, times := block(4, 4, 1)
	for i := 0; i < 6; i++ {
		if _, err := l.AppendRows("t", uint64(i*4), rows, times); err != nil {
			t.Fatal(err)
		}
	}
	before := len(segFiles(t, dir))
	if _, err := l.AppendSnapshot("t", 24, 4, true, []byte("state")); err != nil {
		t.Fatal(err)
	}
	after := len(segFiles(t, dir))
	if after >= before {
		t.Fatalf("snapshot should truncate closed segments: %d -> %d", before, after)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openTest(t, dir)
	ap := newRecApplier()
	st, err := l2.Replay(ap)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	// Only records at or after the snapshot survive on disk.
	for _, ev := range ap.events {
		if strings.HasPrefix(ev, "rows") {
			t.Fatalf("pre-snapshot rows survived truncation: %v", ap.events)
		}
	}
	if st.Damaged || st.Torn {
		t.Fatalf("clean log reported damage: %+v", st)
	}
}

func TestShardingSpreadsTenants(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, WithShards(4), WithSyncInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Replay(nil); err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("tenant-%d", i)
		seen[l.shardFor(id).idx] = true
		if _, err := l.AppendCreate(id, nil); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("64 tenants landed on %d/4 shards", len(seen))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, WithShards(4), WithSyncInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	ap := newRecApplier()
	st, err := l2.Replay(ap)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st.Applied != 64 {
		t.Fatalf("replayed %d of 64 creates", st.Applied)
	}

	// Opening with fewer shards than the directory holds must refuse —
	// records would silently replay onto the wrong stripe.
	if _, err := Open(dir, WithShards(2)); err == nil {
		t.Fatal("open with fewer shards than segments should fail")
	}
}

func TestGroupCommitFlusher(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, WithShards(1), WithSyncInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Replay(nil); err != nil {
		t.Fatal(err)
	}
	rows, times := block(2, 2, 0)
	for i := 0; i < 10; i++ {
		if _, err := l.AppendRows("t", uint64(i*2), rows, times); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	l := openTest(t, t.TempDir(), WithObs(reg))
	if _, err := l.Replay(nil); err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rows, times := block(3, 2, 0)
	if _, err := l.AppendRows("t", 0, rows, times); err != nil {
		t.Fatal(err)
	}
	text := reg.Expose()
	for _, want := range []string{
		"swsketch_wal_appends_total 1",
		"swsketch_wal_rows_total 3",
		"swsketch_wal_fsyncs_total",
		"swsketch_wal_segments",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	l := openTest(t, dir)
	if _, err := l.Replay(nil); err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.AppendCreate("t", nil); err != nil {
		t.Fatal(err)
	}
}
