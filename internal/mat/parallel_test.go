package mat

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// The equivalence suite pins the blocked/parallel kernels to the
// naive scalar references on every shape class the sketches produce.
// GOMAXPROCS is raised so the worker pool genuinely fans out even on
// single-core runners (Go happily schedules more procs than CPUs),
// which also puts the pool under the race detector in `make race`.
func init() {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
}

const kernelTol = 1e-12

// tolFor scales the 1e-12 pin by the summation length: reassociating
// an n-term float sum moves the result by O(n·ε·Σ|terms|), so the
// tolerance must grow with the inner dimension to stay meaningful on
// the 10000-deep shapes without loosening the short ones.
func tolFor(inner int) float64 {
	if inner < 1 {
		inner = 1
	}
	return kernelTol * float64(inner)
}

// randSparseDense returns an r×c matrix with N(0,1) entries and a
// sprinkle of exact zeros so the zero-skip paths are exercised.
func randSparseDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.data {
		if rng.Intn(8) == 0 {
			continue
		}
		m.data[i] = rng.NormFloat64()
	}
	return m
}

// kernelShapes is the shape battery from the issue: random square,
// tall (10000×8), wide (8×10000), zero, and 1×1, plus sketch-typical
// short-and-wide shapes around the parallel threshold.
var kernelShapes = []struct{ r, c int }{
	{1, 1},
	{3, 5},
	{8, 10000},
	{10000, 8},
	{64, 64},
	{24, 256},
	{200, 300},
	{513, 129}, // odd sizes: exercises every unroll remainder
	{0, 7},
	{7, 0},
}

func TestMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, s := range kernelShapes {
		for _, n := range []int{1, 4, 63, 256} {
			a := randSparseDense(rng, s.r, s.c)
			b := randSparseDense(rng, s.c, n)
			got := Mul(a, b)
			want := mulNaive(a, b)
			if !got.Equal(want, tolFor(s.c)) {
				t.Fatalf("Mul (%d×%d)·(%d×%d) diverges from naive by %g",
					s.r, s.c, s.c, n, maxDiff(got, want))
			}
		}
	}
	// Zero matrices stay zero.
	z := Mul(NewDense(40, 30), NewDense(30, 20))
	if z.MaxAbs() != 0 {
		t.Fatal("Mul of zero matrices is non-zero")
	}
}

func TestMulToMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randSparseDense(rng, 37, 111)
	b := randSparseDense(rng, 111, 53)
	dst := NewDense(37, 53)
	for i := range dst.data {
		dst.data[i] = rng.NormFloat64() // stale garbage must be overwritten
	}
	MulTo(dst, a, b)
	if want := Mul(a, b); !dst.Equal(want, kernelTol) {
		t.Fatal("MulTo diverges from Mul")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MulTo with mismatched destination did not panic")
		}
	}()
	MulTo(NewDense(2, 2), a, b)
}

func TestGramMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// The wide case is capped at 8×1500: Gram's output is cols², and a
	// 10000²-entry reference check adds minutes under -race for no
	// extra coverage of the kernel's code paths.
	shapes := []struct{ r, c int }{
		{1, 1}, {3, 5}, {8, 1500}, {10000, 8}, {64, 64},
		{24, 256}, {200, 300}, {513, 129}, {0, 7}, {7, 0},
	}
	for _, s := range shapes {
		a := randSparseDense(rng, s.r, s.c)
		got := a.Gram()
		want := gramNaive(a)
		if !got.Equal(want, tolFor(s.r)) {
			t.Fatalf("Gram %d×%d diverges from naive by %g", s.r, s.c, maxDiff(got, want))
		}
	}
}

func TestGramTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, s := range kernelShapes {
		a := randSparseDense(rng, s.r, s.c)
		got := a.GramT()
		want := gramTNaive(a)
		if !got.Equal(want, tolFor(s.c)) {
			t.Fatalf("GramT %d×%d diverges from naive by %g", s.r, s.c, maxDiff(got, want))
		}
	}
}

func TestDotSqNormMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 100, 1001} {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		if got, want := Dot(a, b), dotNaive(a, b); abs(got-want) > tolFor(n) {
			t.Fatalf("Dot length %d: %v vs %v", n, got, want)
		}
		if got, want := SqNorm(a), dotNaive(a, a); abs(got-want) > tolFor(n) {
			t.Fatalf("SqNorm length %d: %v vs %v", n, got, want)
		}
	}
}

func TestAddOuterToMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 2, 3, 4, 5, 31, 64, 129} {
		row := make([]float64, n)
		for i := range row {
			if rng.Intn(6) != 0 {
				row[i] = rng.NormFloat64()
			}
		}
		g1 := randSparseDense(rng, n, n)
		g2 := g1.Clone()
		AddOuterTo(g1, row, -2.5)
		addOuterToNaive(g2, row, -2.5)
		if !g1.Equal(g2, kernelTol) {
			t.Fatalf("AddOuterTo length %d diverges from naive", n)
		}
	}
}

// TestKernelsDeterministic asserts repeated parallel runs — including
// concurrent ones sharing the worker pool — produce bit-identical
// results: chunks cover fixed ranges, so scheduling cannot leak into
// the floats. The golden determinism tests downstream rely on this.
func TestKernelsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randSparseDense(rng, 600, 80)
	b := randSparseDense(rng, 80, 120)
	refMul := Mul(a, b)
	refGram := a.Gram()
	refGramT := a.GramT()
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 5; it++ {
				if !Mul(a, b).Equal(refMul, 0) {
					errs <- "Mul not deterministic"
				}
				if !a.Gram().Equal(refGram, 0) {
					errs <- "Gram not deterministic"
				}
				if !a.GramT().Equal(refGramT, 0) {
					errs <- "GramT not deterministic"
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestParallelForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 1000} {
		hits := make([]int32, n)
		var mu sync.Mutex
		parallelFor(n, 7, func(lo, hi int) {
			mu.Lock()
			for i := lo; i < hi; i++ {
				hits[i]++
			}
			mu.Unlock()
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func maxDiff(a, b *Dense) float64 {
	d := a.Clone()
	d.Sub(b)
	return d.MaxAbs()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
