package mat

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the eigendecomposition of a symmetric matrix a:
// eigenvalues in descending order and the corresponding eigenvectors
// as the columns of v, so that a = v·diag(vals)·vᵀ. The input is not
// modified. It dispatches to the tridiagonal QL solver (EigenSymQL),
// the fast production path; EigenSymJacobi is the slow reference.
func EigenSym(a *Dense) (vals []float64, v *Dense) { return EigenSymQL(a) }

// EigenSymJacobi computes the same decomposition with the cyclic
// Jacobi method: ~10× more flops than QL but unconditionally stable
// and simple enough to audit by eye, which is why the test suite uses
// it to cross-validate the QL path. It panics if a is not square.
func EigenSymJacobi(a *Dense) (vals []float64, v *Dense) {
	n := a.rows
	if a.cols != n {
		panic(fmt.Sprintf("mat: EigenSym of non-square %d×%d", a.rows, a.cols))
	}
	w := a.Clone()
	v = Identity(n)
	if n <= 1 {
		vals = make([]float64, n)
		if n == 1 {
			vals[0] = w.data[0]
		}
		return vals, v
	}

	const (
		maxSweeps = 64
		tol       = 1e-14
	)
	// Scale of the matrix, for the relative off-diagonal threshold.
	scale := w.MaxAbs()
	if scale == 0 {
		return make([]float64, n), v
	}

	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off <= tol*scale {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.data[p*n+q]
				if math.Abs(apq) <= tol*scale/float64(n) {
					continue
				}
				app := w.data[p*n+p]
				aqq := w.data[q*n+q]
				// Rotation angle: tan(2θ) = 2a_pq / (a_pp − a_qq).
				theta := (aqq - app) / (2 * apq)
				var t float64
				if math.Abs(theta) > 1e18 {
					t = 1 / (2 * theta)
				} else {
					t = math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				applyJacobiRotation(w, v, p, q, c, s)
			}
		}
	}

	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.data[i*n+i]
	}
	sortEigenDesc(vals, v)
	return vals, v
}

// offDiagNorm returns the Frobenius norm of the strictly upper
// triangle of w (w is maintained symmetric).
func offDiagNorm(w *Dense) float64 {
	n := w.rows
	var s float64
	for p := 0; p < n-1; p++ {
		for q := p + 1; q < n; q++ {
			v := w.data[p*n+q]
			s += v * v
		}
	}
	return math.Sqrt(2 * s)
}

// applyJacobiRotation applies the rotation J(p,q,θ) with cos=c, sin=s
// symmetrically to w (JᵀwJ) and accumulates it into v (v·J). The row
// updates for w and v are fused into one pass over k; the mirrored
// column entries are written in the same iteration, keeping the whole
// rotation at two cache-friendly row sweeps.
func applyJacobiRotation(w, v *Dense, p, q int, c, s float64) {
	n := w.rows
	wd, vd := w.data, v.data
	app := wd[p*n+p]
	aqq := wd[q*n+q]
	apq := wd[p*n+q]

	wd[p*n+p] = c*c*app - 2*s*c*apq + s*s*aqq
	wd[q*n+q] = s*s*app + 2*s*c*apq + c*c*aqq
	wd[p*n+q] = 0
	wd[q*n+p] = 0
	wp := wd[p*n : p*n+n]
	wq := wd[q*n : q*n+n]
	for k := 0; k < n; k++ {
		if k == p || k == q {
			continue
		}
		akp := wp[k]
		akq := wq[k]
		nkp := c*akp - s*akq
		nkq := s*akp + c*akq
		wp[k] = nkp
		wq[k] = nkq
		wd[k*n+p] = nkp
		wd[k*n+q] = nkq
	}
	for k := 0; k < n; k++ {
		vkp := vd[k*n+p]
		vkq := vd[k*n+q]
		vd[k*n+p] = c*vkp - s*vkq
		vd[k*n+q] = s*vkp + c*vkq
	}
}

// sortEigenDesc sorts eigenvalues in descending order, permuting the
// columns of v to match.
func sortEigenDesc(vals []float64, v *Dense) {
	n := len(vals)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })

	sorted := make([]float64, n)
	perm := NewDense(n, n)
	for newCol, oldCol := range idx {
		sorted[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			perm.data[r*n+newCol] = v.data[r*n+oldCol]
		}
	}
	copy(vals, sorted)
	copy(v.data, perm.data)
}
