// Package mat provides the dense linear algebra substrate used by the
// sliding-window matrix sketches: a row-major dense matrix type, Gram
// products, a cyclic Jacobi symmetric eigensolver, singular value
// decomposition via the Gram trick, spectral norms by power iteration,
// and rank-k truncation.
//
// The package is self-contained (standard library only). It is tuned
// for the shapes that matrix sketching produces: short-and-wide
// sketches (ℓ ≪ d), moderate covariance matrices (d ≤ a few thousand),
// and symmetric positive semi-definite Gram matrices.
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix. The zero value is an empty (0×0)
// matrix ready for use with Reset-style constructors.
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// NewDense returns a zeroed r×c matrix. It panics if r or c is negative.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %d×%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseData wraps data (row-major, length r*c) without copying.
// It panics on length mismatch.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %d×%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// FromRows builds a matrix from row slices, copying each row. All rows
// must have equal length. An empty input yields a 0×0 matrix.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("mat: ragged rows: row 0 has %d cols, row %d has %d", c, i, len(r)))
		}
		copy(m.data[i*c:(i+1)*c], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Dims returns (rows, cols).
func (m *Dense) Dims() (int, int) { return m.rows, m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %d×%d", i, j, m.rows, m.cols))
	}
}

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// RowCopy returns a copy of row i.
func (m *Dense) RowCopy(i int) []float64 {
	r := make([]float64, m.cols)
	copy(r, m.Row(i))
	return r
}

// Data returns the backing row-major slice. Mutating it mutates m.
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns a newly allocated transpose of m.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		ri := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range ri {
			t.data[j*m.rows+i] = v
		}
	}
	return t
}

// Scale multiplies every element of m by s in place and returns m.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// Add adds b to m in place and returns m. It panics on shape mismatch.
func (m *Dense) Add(b *Dense) *Dense {
	m.checkSameShape(b)
	for i, v := range b.data {
		m.data[i] += v
	}
	return m
}

// Sub subtracts b from m in place and returns m. It panics on shape mismatch.
func (m *Dense) Sub(b *Dense) *Dense {
	m.checkSameShape(b)
	for i, v := range b.data {
		m.data[i] -= v
	}
	return m
}

func (m *Dense) checkSameShape(b *Dense) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: shape mismatch %d×%d vs %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
}

// Mul returns the product a·b as a new matrix. It panics if the inner
// dimensions disagree. Large products run cache-blocked across the
// package worker pool (see parallel.go); small ones stay on the
// calling goroutine.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: cannot multiply %d×%d by %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewDense(a.rows, b.cols)
	mulInto(out, a, b)
	return out
}

// Gram returns AᵀA (cols×cols) for A = m. Only the upper triangle is
// computed and mirrored, exploiting symmetry; large accumulations run
// in parallel over output row blocks.
func (m *Dense) Gram() *Dense {
	g := NewDense(m.cols, m.cols)
	gramInto(g, m)
	return g
}

// GramT returns AAᵀ (rows×rows) for A = m.
func (m *Dense) GramT() *Dense {
	g := NewDense(m.rows, m.rows)
	gramTInto(g, m)
	return g
}

// AddOuterTo adds s·(rowᵀ·row) to the square matrix g in place.
// g must be len(row)×len(row). Used for incremental Gram maintenance.
// The inner update is unrolled four deep to keep the g-row traffic
// pipelined.
func AddOuterTo(g *Dense, row []float64, s float64) {
	n := len(row)
	if g.rows != n || g.cols != n {
		panic(fmt.Sprintf("mat: outer product of length %d into %d×%d", n, g.rows, g.cols))
	}
	for i, vi := range row {
		if vi == 0 {
			continue
		}
		f := s * vi
		gi := g.data[i*n : (i+1)*n]
		gi = gi[:n]
		j := 0
		for ; j+3 < n; j += 4 {
			gi[j] += f * row[j]
			gi[j+1] += f * row[j+1]
			gi[j+2] += f * row[j+2]
			gi[j+3] += f * row[j+3]
		}
		for ; j < n; j++ {
			gi[j] += f * row[j]
		}
	}
}

// MulVec returns m·x as a new vector. It panics if len(x) != Cols.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("mat: MulVec length %d vs %d cols", len(x), m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = Dot(m.data[i*m.cols:(i+1)*m.cols], x)
	}
	return out
}

// Dot returns the inner product of equal-length vectors a and b. The
// loop runs four independent accumulators so the multiply-adds
// pipeline instead of serialising on one dependency chain.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: dot of lengths %d and %d", len(a), len(b)))
	}
	var s0, s1, s2, s3 float64
	b = b[:len(a)]
	i := 0
	for ; i+3 < len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of vector x.
func Norm2(x []float64) float64 { return math.Sqrt(SqNorm(x)) }

// SqNorm returns the squared Euclidean norm of vector x, with the
// same four-accumulator unrolling as Dot.
func SqNorm(x []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+3 < len(x); i += 4 {
		s0 += x[i] * x[i]
		s1 += x[i+1] * x[i+1]
		s2 += x[i+2] * x[i+2]
		s3 += x[i+3] * x[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(x); i++ {
		s += x[i] * x[i]
	}
	return s
}

// FrobeniusSq returns ‖m‖²_F, the sum of squared entries.
func (m *Dense) FrobeniusSq() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return s
}

// Frobenius returns ‖m‖_F.
func (m *Dense) Frobenius() float64 { return math.Sqrt(m.FrobeniusSq()) }

// MaxAbs returns the largest absolute entry of m (0 for empty matrices).
func (m *Dense) MaxAbs() float64 {
	var s float64
	for _, v := range m.data {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// Equal reports whether m and b have the same shape and entries within
// absolute tolerance tol.
func (m *Dense) Equal(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// Stack returns the vertical concatenation [a; b]. Either argument may
// be nil or empty; shapes must agree on the column count otherwise.
func Stack(a, b *Dense) *Dense {
	switch {
	case a == nil || a.rows == 0:
		if b == nil {
			return NewDense(0, 0)
		}
		return b.Clone()
	case b == nil || b.rows == 0:
		return a.Clone()
	}
	if a.cols != b.cols {
		panic(fmt.Sprintf("mat: stack %d cols onto %d cols", b.cols, a.cols))
	}
	out := NewDense(a.rows+b.rows, a.cols)
	copy(out.data, a.data)
	copy(out.data[a.rows*a.cols:], b.data)
	return out
}

// String renders the matrix for debugging. Large matrices are elided.
func (m *Dense) String() string {
	const maxShow = 8
	var sb strings.Builder
	fmt.Fprintf(&sb, "Dense %d×%d", m.rows, m.cols)
	if m.rows == 0 || m.cols == 0 {
		return sb.String()
	}
	sb.WriteString(" [\n")
	for i := 0; i < m.rows && i < maxShow; i++ {
		sb.WriteString("  ")
		for j := 0; j < m.cols && j < maxShow; j++ {
			fmt.Fprintf(&sb, "% .4g ", m.At(i, j))
		}
		if m.cols > maxShow {
			sb.WriteString("…")
		}
		sb.WriteString("\n")
	}
	if m.rows > maxShow {
		sb.WriteString("  …\n")
	}
	sb.WriteString("]")
	return sb.String()
}
