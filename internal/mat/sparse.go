package mat

import (
	"fmt"
	"sort"
)

// SparseRow is a sparse vector: strictly increasing column indices
// paired with (non-zero) values. It is the update-side representation
// for high-dimensional sparse streams (tf-idf documents, incidence
// rows): norms, outer products, and sketch updates cost O(nnz) instead
// of O(d).
type SparseRow struct {
	Idx []int
	Val []float64
}

// NewSparseRow builds a SparseRow from explicit indices and values,
// validating shape, ordering, and bounds (d is the row dimension;
// pass d ≤ 0 to skip the bound check). The slices are retained, not
// copied.
func NewSparseRow(idx []int, val []float64, d int) SparseRow {
	if len(idx) != len(val) {
		panic(fmt.Sprintf("mat: sparse row with %d indices and %d values", len(idx), len(val)))
	}
	prev := -1
	for i, ix := range idx {
		if ix <= prev {
			panic(fmt.Sprintf("mat: sparse row indices not strictly increasing at %d", i))
		}
		if d > 0 && ix >= d {
			panic(fmt.Sprintf("mat: sparse row index %d outside dimension %d", ix, d))
		}
		prev = ix
	}
	return SparseRow{Idx: idx, Val: val}
}

// SparseFromDense extracts the non-zero entries of a dense row.
func SparseFromDense(row []float64) SparseRow {
	var idx []int
	var val []float64
	for j, v := range row {
		if v != 0 {
			idx = append(idx, j)
			val = append(val, v)
		}
	}
	return SparseRow{Idx: idx, Val: val}
}

// Nnz reports the number of stored entries.
func (s SparseRow) Nnz() int { return len(s.Idx) }

// SqNorm returns the squared Euclidean norm in O(nnz).
func (s SparseRow) SqNorm() float64 {
	var sum float64
	for _, v := range s.Val {
		sum += v * v
	}
	return sum
}

// MaxIdx returns the largest index (-1 for an empty row).
func (s SparseRow) MaxIdx() int {
	if len(s.Idx) == 0 {
		return -1
	}
	return s.Idx[len(s.Idx)-1]
}

// Dense materialises the row at dimension d.
func (s SparseRow) Dense(d int) []float64 {
	if m := s.MaxIdx(); m >= d {
		panic(fmt.Sprintf("mat: sparse row index %d outside dimension %d", m, d))
	}
	out := make([]float64, d)
	for i, ix := range s.Idx {
		out[ix] = s.Val[i]
	}
	return out
}

// ScatterTo writes the row into dst (which must be pre-zeroed where it
// matters) without clearing other positions; use CopyTo semantics by
// zeroing dst first.
func (s SparseRow) ScatterTo(dst []float64) {
	for i, ix := range s.Idx {
		dst[ix] = s.Val[i]
	}
}

// AddScaledTo performs dst += f·row in O(nnz).
func (s SparseRow) AddScaledTo(dst []float64, f float64) {
	for i, ix := range s.Idx {
		dst[ix] += f * s.Val[i]
	}
}

// Dot returns the inner product with a dense vector in O(nnz).
func (s SparseRow) Dot(x []float64) float64 {
	var sum float64
	for i, ix := range s.Idx {
		sum += s.Val[i] * x[ix]
	}
	return sum
}

// AddSparseOuterTo adds scale·(rowᵀ·row) to the square matrix g in
// O(nnz²) — the sparse analogue of AddOuterTo.
func AddSparseOuterTo(g *Dense, s SparseRow, scale float64) {
	n := g.Rows()
	if g.Cols() != n {
		panic(fmt.Sprintf("mat: sparse outer into non-square %d×%d", g.Rows(), g.Cols()))
	}
	if m := s.MaxIdx(); m >= n {
		panic(fmt.Sprintf("mat: sparse outer index %d outside %d", m, n))
	}
	for a, ia := range s.Idx {
		f := scale * s.Val[a]
		if f == 0 {
			continue
		}
		gi := g.Row(ia)
		for b, ib := range s.Idx {
			gi[ib] += f * s.Val[b]
		}
	}
}

// SortedCopy returns a canonical copy with indices sorted and
// duplicates summed — a convenience for callers assembling entries in
// arbitrary order.
func SortedCopy(idx []int, val []float64) SparseRow {
	if len(idx) != len(val) {
		panic(fmt.Sprintf("mat: sparse row with %d indices and %d values", len(idx), len(val)))
	}
	type pair struct {
		i int
		v float64
	}
	ps := make([]pair, len(idx))
	for k := range idx {
		ps[k] = pair{idx[k], val[k]}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].i < ps[b].i })
	var outI []int
	var outV []float64
	for _, p := range ps {
		if n := len(outI); n > 0 && outI[n-1] == p.i {
			outV[n-1] += p.v
			continue
		}
		outI = append(outI, p.i)
		outV = append(outV, p.v)
	}
	return SparseRow{Idx: outI, Val: outV}
}
