package mat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randSparse(rng *rand.Rand, d int) SparseRow {
	row := make([]float64, d)
	nnz := 1 + rng.Intn(d)
	for k := 0; k < nnz; k++ {
		row[rng.Intn(d)] = rng.NormFloat64()
	}
	return SparseFromDense(row)
}

func TestNewSparseRowValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"length mismatch": func() { NewSparseRow([]int{1}, []float64{1, 2}, 5) },
		"unsorted":        func() { NewSparseRow([]int{3, 1}, []float64{1, 2}, 5) },
		"duplicate":       func() { NewSparseRow([]int{1, 1}, []float64{1, 2}, 5) },
		"out of bounds":   func() { NewSparseRow([]int{7}, []float64{1}, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
	// Valid construction with skipped bound check.
	s := NewSparseRow([]int{1000}, []float64{2}, -1)
	if s.MaxIdx() != 1000 {
		t.Fatal("bound-skip construction failed")
	}
}

func TestSparseFromDenseRoundTrip(t *testing.T) {
	dense := []float64{0, 1.5, 0, -2, 0}
	s := SparseFromDense(dense)
	if s.Nnz() != 2 {
		t.Fatalf("nnz = %d", s.Nnz())
	}
	back := s.Dense(5)
	for i := range dense {
		if back[i] != dense[i] {
			t.Fatalf("round trip differs at %d", i)
		}
	}
}

func TestSparseRowEmptyEdges(t *testing.T) {
	var s SparseRow
	if s.Nnz() != 0 || s.SqNorm() != 0 || s.MaxIdx() != -1 {
		t.Fatal("empty row behaviour wrong")
	}
	if d := s.Dense(3); len(d) != 3 {
		t.Fatal("empty Dense wrong")
	}
}

func TestSparseOpsMatchDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(20)
		s := randSparse(rng, d)
		dense := s.Dense(d)

		// SqNorm.
		if !almostEqual(s.SqNorm(), SqNorm(dense), 1e-12) {
			return false
		}
		// Dot.
		x := make([]float64, d)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		if !almostEqual(s.Dot(x), Dot(dense, x), 1e-12) {
			return false
		}
		// AddScaledTo.
		dst1 := make([]float64, d)
		dst2 := make([]float64, d)
		copy(dst1, x)
		copy(dst2, x)
		s.AddScaledTo(dst1, 2.5)
		for i := range dst2 {
			dst2[i] += 2.5 * dense[i]
		}
		for i := range dst1 {
			if !almostEqual(dst1[i], dst2[i], 1e-12) {
				return false
			}
		}
		// Outer product.
		g1 := NewDense(d, d)
		g2 := NewDense(d, d)
		AddSparseOuterTo(g1, s, 1.5)
		AddOuterTo(g2, dense, 1.5)
		return g1.Equal(g2, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestScatterTo(t *testing.T) {
	s := NewSparseRow([]int{0, 2}, []float64{5, 7}, 4)
	dst := make([]float64, 4)
	s.ScatterTo(dst)
	if dst[0] != 5 || dst[2] != 7 || dst[1] != 0 {
		t.Fatalf("scatter wrong: %v", dst)
	}
}

func TestSparseDensePanicsOnOverflow(t *testing.T) {
	s := NewSparseRow([]int{5}, []float64{1}, -1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Dense(3)
}

func TestSortedCopy(t *testing.T) {
	s := SortedCopy([]int{3, 1, 3, 0}, []float64{1, 2, 4, 8})
	if s.Nnz() != 3 {
		t.Fatalf("nnz = %d, want 3 (duplicates summed)", s.Nnz())
	}
	if s.Idx[0] != 0 || s.Idx[1] != 1 || s.Idx[2] != 3 {
		t.Fatalf("indices = %v", s.Idx)
	}
	if s.Val[2] != 5 { // 1 + 4 at index 3
		t.Fatalf("dup sum = %v", s.Val[2])
	}
}

func TestSortedCopyValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SortedCopy([]int{1}, []float64{1, 2})
}
