package mat

import (
	"math"
	"math/rand"
	"testing"
)

// withScalarKernels runs fn with the assembly kernels disabled,
// restoring the detected state afterwards.
func withScalarKernels(fn func()) {
	saved := kernelsASM
	kernelsASM = false
	defer func() { kernelsASM = saved }()
	fn()
}

func relClose(a, b, tol float64) bool {
	d := math.Abs(a - b)
	s := math.Abs(a) + math.Abs(b)
	return d <= tol*(1+s)
}

// TestKernelsMatchScalar checks that the accelerated implementations
// of the FastFD kernels agree with the scalar formulations to rounding
// across shapes that exercise both the vector body and scalar tails.
func TestKernelsMatchScalar(t *testing.T) {
	if !kernelsASM {
		t.Skip("assembly kernels not active on this host")
	}
	rng := rand.New(rand.NewSource(7))
	const tol = 1e-12

	for _, shape := range [][2]int{{2, 5}, {4, 4}, {6, 7}, {8, 16}, {13, 31}, {16, 33}, {17, 32}, {32, 256}} {
		n, d := shape[0], shape[1]
		a := NewDense(n, d)
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		fast := NewDense(n, n)
		GramTTiledInto(fast, a)
		slow := NewDense(n, n)
		withScalarKernels(func() { GramTTiledInto(slow, a) })
		for i := range fast.Data() {
			if !relClose(fast.Data()[i], slow.Data()[i], tol) {
				t.Fatalf("GramTTiledInto %dx%d idx %d: asm %v scalar %v", n, d, i, fast.Data()[i], slow.Data()[i])
			}
		}
	}

	for _, shape := range [][3]int{{1, 1, 4}, {3, 2, 7}, {4, 6, 8}, {5, 7, 9}, {32, 128, 256}, {33, 127, 255}} {
		k, n, d := shape[0], shape[1], shape[2]
		a := NewDense(k, n)
		b := NewDense(n, d)
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		for i := range b.Data() {
			b.Data()[i] = rng.NormFloat64()
		}
		fast := NewDense(k, d)
		MulTiledTo(fast, a, b)
		slow := NewDense(k, d)
		MulTo(slow, a, b)
		for i := range fast.Data() {
			if !relClose(fast.Data()[i], slow.Data()[i], tol) {
				t.Fatalf("MulTiledTo %dx%dx%d idx %d: asm %v scalar %v", k, n, d, i, fast.Data()[i], slow.Data()[i])
			}
		}
	}

	// symv2 / rank2upd2 / dot2 / axpy2 sit inside tredReduce and the
	// back-transform; comparing a full decomposition covers them with
	// realistic call shapes (including odd lengths hitting the tails).
	for _, n := range []int{3, 5, 16, 33, 64} {
		a := NewDense(n, n+7)
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		g := a.GramT()
		k := n/2 + 1
		var sf SymEigTopK
		valsF := append([]float64(nil), sf.Values(g)...)
		vecsF := sf.VectorsT(k)
		var valsS []float64
		var vecsS *Dense
		withScalarKernels(func() {
			var ss SymEigTopK
			valsS = append([]float64(nil), ss.Values(g)...)
			vecsS = ss.VectorsT(k)
		})
		for i := range valsF {
			if !relClose(valsF[i], valsS[i], 1e-9) {
				t.Fatalf("SymEigTopK n=%d val %d: asm %v scalar %v", n, i, valsF[i], valsS[i])
			}
		}
		// Eigenvectors are sign- and (within clusters) basis-ambiguous;
		// compare the projector rows |v_i·v_j| instead of raw entries.
		for i := 0; i < k; i++ {
			d := math.Abs(Dot(vecsF.Row(i), vecsS.Row(i)))
			if math.Abs(d-1) > 1e-6 {
				t.Fatalf("SymEigTopK n=%d vec %d: |asm·scalar| = %v, want 1", n, i, d)
			}
		}
	}
}
