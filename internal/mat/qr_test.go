package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][2]int{{5, 3}, {3, 5}, {4, 4}, {1, 6}, {6, 1}, {10, 7}} {
		a := randDense(rng, dims[0], dims[1])
		res := QR(a)
		if err := checkQRShapes(a, res); err != nil {
			t.Fatal(err)
		}
		if !Mul(res.Q, res.R).Equal(a, 1e-10) {
			t.Fatalf("%v: QR reconstruction failed", dims)
		}
	}
}

func TestQROrthonormalQ(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randDense(rng, 8, 5)
	res := QR(a)
	if !Mul(res.Q.T(), res.Q).Equal(Identity(5), 1e-10) {
		t.Fatal("QᵀQ != I")
	}
}

func TestQRUpperTriangular(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 6, 6)
	res := QR(a)
	for i := 0; i < 6; i++ {
		for j := 0; j < i; j++ {
			if math.Abs(res.R.At(i, j)) > 1e-12 {
				t.Fatalf("R(%d,%d) = %v below diagonal", i, j, res.R.At(i, j))
			}
		}
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Duplicate columns: QR must not blow up, reconstruction holds.
	a := FromRows([][]float64{{1, 1, 2}, {2, 2, 1}, {3, 3, 0}})
	res := QR(a)
	if !Mul(res.Q, res.R).Equal(a, 1e-10) {
		t.Fatal("rank-deficient reconstruction failed")
	}
}

func TestQRZeroMatrix(t *testing.T) {
	a := NewDense(3, 3)
	res := QR(a)
	if !Mul(res.Q, res.R).Equal(a, 1e-12) {
		t.Fatal("zero-matrix QR failed")
	}
}

func TestQRProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(8), 1+rng.Intn(8)
		a := randDense(rng, m, n)
		res := QR(a)
		if !Mul(res.Q, res.R).Equal(a, 1e-9) {
			return false
		}
		k := res.Q.Cols()
		return Mul(res.Q.T(), res.Q).Equal(Identity(k), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOrthonormalRows(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randDense(rng, 4, 10)
	q := OrthonormalRows(a, 3)
	if q.Rows() != 3 || q.Cols() != 10 {
		t.Fatalf("dims %d×%d", q.Rows(), q.Cols())
	}
	if !q.GramT().Equal(Identity(3), 1e-10) {
		t.Fatal("rows not orthonormal")
	}
	// k defaulting.
	qd := OrthonormalRows(a, 0)
	if qd.Rows() != 4 {
		t.Fatalf("default k rows = %d", qd.Rows())
	}
	// Row space preserved: each original row is in the span of q's rows
	// (projector reproduces it).
	full := OrthonormalRows(a, 4)
	for i := 0; i < 4; i++ {
		row := a.Row(i)
		proj := make([]float64, 10)
		for p := 0; p < 4; p++ {
			d := Dot(full.Row(p), row)
			for j := range proj {
				proj[j] += d * full.Row(p)[j]
			}
		}
		for j := range proj {
			if math.Abs(proj[j]-row[j]) > 1e-8 {
				t.Fatalf("row %d not in span at column %d", i, j)
			}
		}
	}
}
