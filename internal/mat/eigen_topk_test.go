package mat

import (
	"math"
	"math/rand"
	"testing"
)

// randSpectrum builds a symmetric matrix with the given eigenvalues
// under a random orthogonal basis (via QR of a Gaussian matrix).
func randSpectrum(rng *rand.Rand, spectrum []float64) *Dense {
	n := len(spectrum)
	g := NewDense(n, n)
	for i := range g.data {
		g.data[i] = rng.NormFloat64()
	}
	q := QR(g).Q
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += q.At(i, k) * spectrum[k] * q.At(j, k)
			}
			a.Set(i, j, s)
			a.Set(j, i, s)
		}
	}
	return a
}

// checkTopK validates a SymEigTopK decomposition of a against the
// Jacobi reference: eigenvalues match, the returned rows are
// orthonormal, and each satisfies the eigen-residual equation.
func checkTopK(t *testing.T, a *Dense, k int, tag string) {
	t.Helper()
	n := a.Rows()
	var s SymEigTopK
	vals := s.Values(a)
	ref, _ := EigenSymJacobi(a)
	scale := math.Max(math.Abs(ref[0]), 1)
	for i := 0; i < n; i++ {
		if math.Abs(vals[i]-ref[i]) > 1e-9*scale {
			t.Fatalf("%s: eigenvalue %d = %v, Jacobi %v", tag, i, vals[i], ref[i])
		}
	}
	vt := s.VectorsT(k)
	if vt.Rows() != k || vt.Cols() != n {
		t.Fatalf("%s: VectorsT shape %d×%d", tag, vt.Rows(), vt.Cols())
	}
	for i := 0; i < k; i++ {
		for j := 0; j <= i; j++ {
			dot := Dot(vt.Row(i), vt.Row(j))
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Fatalf("%s: rows %d,%d dot = %v, want %v", tag, i, j, dot, want)
			}
		}
	}
	for i := 0; i < k; i++ {
		// ‖A·v − λ·v‖ small relative to the spectral scale. Clustered
		// eigenvalues mix basis vectors within the cluster, which is
		// harmless and keeps residuals at cluster-width level.
		v := vt.Row(i)
		av := a.MulVec(v)
		var res float64
		for j := 0; j < n; j++ {
			r := av[j] - vals[i]*v[j]
			res += r * r
		}
		if math.Sqrt(res) > 1e-6*scale {
			t.Fatalf("%s: vector %d residual %v (scale %v)", tag, i, math.Sqrt(res), scale)
		}
	}
}

func TestSymEigTopKRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 5, 8, 17, 33} {
		spec := make([]float64, n)
		for i := range spec {
			spec[i] = math.Abs(rng.NormFloat64()) * 10
		}
		a := randSpectrum(rng, spec)
		for _, k := range []int{0, 1, n / 2, n} {
			checkTopK(t, a, k, "random")
		}
	}
}

func TestSymEigTopKGram(t *testing.T) {
	// PSD Gram matrices — the FD shrink's actual input distribution.
	rng := rand.New(rand.NewSource(2))
	for _, shape := range [][2]int{{12, 30}, {30, 12}, {24, 24}} {
		b := NewDense(shape[0], shape[1])
		for i := range b.data {
			b.data[i] = rng.NormFloat64()
		}
		checkTopK(t, b.GramT(), shape[0]/2, "gram")
	}
}

func TestSymEigTopKDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Duplicate eigenvalues (the duplicate-row stream's Gram), including
	// a cluster straddling the requested k.
	a := randSpectrum(rng, []float64{5, 5, 5, 5, 2, 2, 1, 0, 0, 0})
	for _, k := range []int{2, 4, 6, 10} {
		checkTopK(t, a, k, "duplicates")
	}
	// Rank-1: one spike, the rest numerically zero.
	a = randSpectrum(rng, []float64{100, 0, 0, 0, 0, 0})
	checkTopK(t, a, 3, "rank1")
	// Geometric decay across many orders of magnitude.
	spec := make([]float64, 16)
	for i := range spec {
		spec[i] = math.Pow(10, -float64(i))
	}
	checkTopK(t, randSpectrum(rng, spec), 8, "decay")
}

func TestSymEigTopKZeroMatrix(t *testing.T) {
	a := NewDense(7, 7)
	var s SymEigTopK
	vals := s.Values(a)
	for i, v := range vals {
		if v != 0 {
			t.Fatalf("zero matrix eigenvalue %d = %v", i, v)
		}
	}
	vt := s.VectorsT(3)
	for i := 0; i < 3; i++ {
		if n := Norm2(vt.Row(i)); math.Abs(n-1) > 1e-10 {
			t.Fatalf("zero-matrix vector %d norm %v", i, n)
		}
		for j := 0; j < i; j++ {
			if d := Dot(vt.Row(i), vt.Row(j)); math.Abs(d) > 1e-10 {
				t.Fatalf("zero-matrix vectors %d,%d dot %v", i, j, d)
			}
		}
	}
}

func TestSymEigTopKTinyAndIdentity(t *testing.T) {
	one := NewDenseData(1, 1, []float64{3})
	var s SymEigTopK
	vals := s.Values(one)
	if vals[0] != 3 {
		t.Fatalf("1×1 eigenvalue %v", vals[0])
	}
	vt := s.VectorsT(1)
	if math.Abs(math.Abs(vt.At(0, 0))-1) > 1e-12 {
		t.Fatalf("1×1 vector %v", vt.At(0, 0))
	}
	checkTopK(t, Identity(9), 4, "identity")
}

func TestSymEigTopKWorkspaceReuse(t *testing.T) {
	// Same solver across different sizes must stay correct.
	rng := rand.New(rand.NewSource(4))
	var s SymEigTopK
	for _, n := range []int{20, 6, 31} {
		spec := make([]float64, n)
		for i := range spec {
			spec[i] = rng.Float64() * 5
		}
		a := randSpectrum(rng, spec)
		vals := s.Values(a)
		ref, _ := EigenSymJacobi(a)
		for i := range ref {
			if math.Abs(vals[i]-ref[i]) > 1e-9*math.Max(ref[0], 1) {
				t.Fatalf("n=%d: reused workspace eigenvalue %d = %v, want %v", n, i, vals[i], ref[i])
			}
		}
		vt := s.VectorsT(n / 2)
		for i := 0; i < vt.Rows(); i++ {
			if math.Abs(Norm2(vt.Row(i))-1) > 1e-8 {
				t.Fatalf("n=%d: reused workspace vector %d not unit", n, i)
			}
		}
	}
}

func TestTransposeInto(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := NewDense(37, 19)
	for i := range src.data {
		src.data[i] = rng.NormFloat64()
	}
	for _, k := range []int{0, 1, 7, 19} {
		dst := NewDense(k, 37)
		TransposeInto(dst, src, k)
		for j := 0; j < k; j++ {
			for i := 0; i < 37; i++ {
				if dst.At(j, i) != src.At(i, j) {
					t.Fatalf("k=%d: dst[%d,%d] = %v, want %v", k, j, i, dst.At(j, i), src.At(i, j))
				}
			}
		}
	}
}

func TestGramIntoMatchesGram(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := NewDense(13, 7)
	for i := range a.data {
		a.data[i] = rng.NormFloat64()
	}
	g := NewDense(7, 7)
	GramInto(g, a)
	if !g.Equal(a.Gram(), 0) {
		t.Fatal("GramInto differs from Gram")
	}
	gt := NewDense(13, 13)
	GramTInto(gt, a)
	if !gt.Equal(a.GramT(), 0) {
		t.Fatal("GramTInto differs from GramT")
	}
	// Reusing the destination must overwrite, not accumulate — the FD
	// shrink holds one scratch Gram across its whole lifetime.
	GramInto(g, a)
	if !g.Equal(a.Gram(), 0) {
		t.Fatal("GramInto accumulated into reused destination")
	}
	GramTInto(gt, a)
	if !gt.Equal(a.GramT(), 0) {
		t.Fatal("GramTInto accumulated into reused destination")
	}
}

func TestGramTTiledInto(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, shape := range [][2]int{{1, 5}, {2, 7}, {3, 4}, {8, 16}, {13, 7}, {16, 33}, {17, 32}} {
		a := NewDense(shape[0], shape[1])
		for i := range a.data {
			a.data[i] = rng.NormFloat64()
		}
		g := NewDense(shape[0], shape[0])
		GramTTiledInto(g, a)
		ref := a.GramT()
		for i := 0; i < shape[0]; i++ {
			for j := 0; j < shape[0]; j++ {
				if math.Abs(g.At(i, j)-ref.At(i, j)) > 1e-12*math.Max(math.Abs(ref.At(i, j)), 1) {
					t.Fatalf("%v: tiled[%d,%d] = %v, want %v", shape, i, j, g.At(i, j), ref.At(i, j))
				}
			}
		}
		// Symmetry must be exact, not just to rounding.
		for i := 0; i < shape[0]; i++ {
			for j := 0; j < i; j++ {
				if g.At(i, j) != g.At(j, i) {
					t.Fatalf("%v: tiled not symmetric at %d,%d", shape, i, j)
				}
			}
		}
	}
}

func TestEigenSymTopKConvenience(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randSpectrum(rng, []float64{9, 4, 1, 0.5, 0.1})
	vals, vt := EigenSymTopK(a, 2)
	ref, _ := EigenSymJacobi(a)
	for i := range ref {
		if math.Abs(vals[i]-ref[i]) > 1e-9*9 {
			t.Fatalf("eigenvalue %d = %v, want %v", i, vals[i], ref[i])
		}
	}
	if vt.Rows() != 2 || vt.Cols() != 5 {
		t.Fatalf("vecsT shape %d×%d", vt.Rows(), vt.Cols())
	}
}
