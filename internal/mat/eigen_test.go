package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randSym returns a random symmetric n×n matrix.
func randSym(rng *rand.Rand, n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func reconstructEigen(vals []float64, v *Dense) *Dense {
	n := len(vals)
	d := NewDense(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, vals[i])
	}
	return Mul(Mul(v, d), v.T())
}

func TestEigenSymDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0, 0}, {0, -1, 0}, {0, 0, 2}})
	vals, v := EigenSym(a)
	want := []float64{3, 2, -1}
	for i := range want {
		if !almostEqual(vals[i], want[i], 1e-12) {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
	if !reconstructEigen(vals, v).Equal(a, 1e-10) {
		t.Fatal("reconstruction failed")
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// Eigenvalues of [[2,1],[1,2]] are 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, _ := EigenSym(a)
	if !almostEqual(vals[0], 3, 1e-12) || !almostEqual(vals[1], 1, 1e-12) {
		t.Fatalf("vals = %v, want [3 1]", vals)
	}
}

func TestEigenSymZeroMatrix(t *testing.T) {
	vals, v := EigenSym(NewDense(4, 4))
	for _, val := range vals {
		if val != 0 {
			t.Fatalf("vals = %v, want zeros", vals)
		}
	}
	if !v.Equal(Identity(4), 0) {
		t.Fatal("eigenvectors of zero matrix should be identity")
	}
}

func TestEigenSymSizeZeroAndOne(t *testing.T) {
	vals, _ := EigenSym(NewDense(0, 0))
	if len(vals) != 0 {
		t.Fatal("0×0 should give no eigenvalues")
	}
	vals, v := EigenSym(FromRows([][]float64{{-5}}))
	if vals[0] != -5 || v.At(0, 0) != 1 {
		t.Fatalf("1×1: vals=%v v=%v", vals, v)
	}
}

func TestEigenSymNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EigenSym(NewDense(2, 3))
}

func TestEigenSymReconstructionRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 3, 5, 10, 25, 60} {
		a := randSym(rng, n)
		vals, v := EigenSymJacobi(a)
		if !reconstructEigen(vals, v).Equal(a, 1e-8*float64(n)) {
			t.Fatalf("n=%d: reconstruction failed", n)
		}
		// Descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("n=%d: eigenvalues not sorted: %v", n, vals)
			}
		}
		// Orthogonality of eigenvectors: VᵀV = I.
		if !Mul(v.T(), v).Equal(Identity(n), 1e-9*float64(n)) {
			t.Fatalf("n=%d: eigenvectors not orthonormal", n)
		}
	}
}

func TestEigenSymPSDNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randDense(rng, 8, 5)
	vals, _ := EigenSym(a.Gram())
	for _, v := range vals {
		if v < -1e-9 {
			t.Fatalf("PSD Gram matrix has negative eigenvalue %v", v)
		}
	}
}

func TestEigenSymTraceInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		a := randSym(r, n)
		var traceA float64
		for i := 0; i < n; i++ {
			traceA += a.At(i, i)
		}
		vals, _ := EigenSym(a)
		var sum float64
		for _, v := range vals {
			sum += v
		}
		return almostEqual(traceA, sum, 1e-8*(1+math.Abs(traceA)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenSymRepeatedEigenvalues(t *testing.T) {
	// I scaled: all eigenvalues identical.
	a := Identity(5).Scale(4)
	vals, v := EigenSym(a)
	for _, val := range vals {
		if !almostEqual(val, 4, 1e-12) {
			t.Fatalf("vals = %v", vals)
		}
	}
	if !reconstructEigen(vals, v).Equal(a, 1e-10) {
		t.Fatal("reconstruction failed for repeated eigenvalues")
	}
}

func TestEigenSymIllConditioned(t *testing.T) {
	// Widely spread eigenvalues through a rotation.
	rng := rand.New(rand.NewSource(13))
	n := 6
	q := orthonormalize(randDense(rng, n, n))
	d := NewDense(n, n)
	want := []float64{1e8, 1e4, 1, 1e-2, 1e-5, 0}
	for i, v := range want {
		d.Set(i, i, v)
	}
	a := Mul(Mul(q, d), q.T())
	// Symmetrize against round-off before decomposing.
	at := a.T()
	a.Add(at).Scale(0.5)
	vals, _ := EigenSym(a)
	for i, w := range want {
		if math.Abs(vals[i]-w) > 1e-6*(1+w) {
			t.Fatalf("eigenvalue %d = %v, want %v", i, vals[i], w)
		}
	}
}

// orthonormalize runs modified Gram-Schmidt over the columns of m.
func orthonormalize(m *Dense) *Dense {
	n := m.Rows()
	q := m.Clone()
	for j := 0; j < n; j++ {
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = q.At(i, j)
		}
		for k := 0; k < j; k++ {
			prev := make([]float64, n)
			for i := 0; i < n; i++ {
				prev[i] = q.At(i, k)
			}
			d := Dot(col, prev)
			for i := range col {
				col[i] -= d * prev[i]
			}
		}
		nrm := Norm2(col)
		for i := 0; i < n; i++ {
			q.Set(i, j, col[i]/nrm)
		}
	}
	return q
}
