// Compute layer: cache-blocked, worker-pool-parallel kernels behind
// Mul, Gram, and GramT, plus the naive scalar references they are
// tested against.
//
// The design has three tiers:
//
//  1. A package-level worker pool, started lazily on the first large
//     kernel call and sized to GOMAXPROCS at that moment. Workers are
//     reused across calls and across concurrently running kernels, so
//     the steady-state cost of a parallel kernel is one WaitGroup and
//     a handful of channel sends — no goroutine churn.
//  2. parallelFor, a dynamic chunk scheduler: the index range is cut
//     into grain-sized chunks that workers (and the calling goroutine,
//     which always participates) claim with an atomic counter. Dynamic
//     claiming balances triangular workloads (GramT) where chunk cost
//     varies; every chunk covers a fixed index range and writes only
//     its own output, so results are bit-for-bit deterministic
//     regardless of how chunks land on workers.
//  3. Blocked serial kernels under each chunk: Mul walks k in panels
//     of kcBlock so the panel of B rows stays cache-resident across
//     the chunk's output rows, and the inner loops are unrolled four
//     deep (rank-4 updates) to cut the load/store traffic on the
//     output row by 4×. Gram accumulates upper-triangle rank-2 outer
//     products; GramT rides the unrolled Dot.
//
// Small inputs never touch the pool: below parallelFlops the kernels
// run the blocked loops on the calling goroutine, so the ℓ×ℓ Gram
// matrices of a sketch shrink do not pay scheduling overhead.
package mat

import (
	"runtime"
	"sync"
	"sync/atomic"
)

const (
	// kcBlock is the depth-panel width of the blocked multiply: the
	// kcBlock×cols panel of B touched by one k-panel is what must stay
	// cache-resident. 256 rows × 8 bytes keeps panels of up to ~2048
	// columns inside typical L2 capacity.
	kcBlock = 256

	// parallelFlops is the multiply-add count below which a kernel
	// stays on the calling goroutine. 1<<16 ≈ a 64×64 by 64×64 product
	// or a 40×40 Gram over 40 rows — the sketch-sized shapes where
	// fan-out costs more than it saves.
	parallelFlops = 1 << 16

	// minGrain is the smallest chunk of output rows a worker claims;
	// it bounds scheduling overhead on skinny outputs.
	minGrain = 4
)

// pool is the package-level worker pool. Workers block on the task
// channel; parallelFor feeds it closures. Started once, on demand.
var pool struct {
	once  sync.Once
	size  int
	tasks chan func()
}

func ensurePool() {
	pool.once.Do(func() {
		pool.size = runtime.GOMAXPROCS(0)
		if pool.size < 1 {
			pool.size = 1
		}
		pool.tasks = make(chan func(), 4*pool.size)
		for i := 0; i < pool.size; i++ {
			go func() {
				for f := range pool.tasks {
					f()
				}
			}()
		}
	})
}

// parallelFor runs body(lo, hi) over [0, n) in grain-sized chunks,
// fanning chunks out to the worker pool. The calling goroutine always
// participates, so a busy pool degrades to serial execution rather
// than deadlock. body must only write state owned by its chunk.
func parallelFor(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	ensurePool()
	if chunks <= 1 || pool.size == 1 {
		body(0, n)
		return
	}
	var next int64
	run := func() {
		for {
			c := int(atomic.AddInt64(&next, 1) - 1)
			if c >= chunks {
				return
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			body(lo, hi)
		}
	}
	helpers := pool.size - 1
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
	var wg sync.WaitGroup
	wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		task := func() {
			defer wg.Done()
			run()
		}
		select {
		case pool.tasks <- task:
		default:
			// Pool saturated by other kernels: a fresh goroutine is
			// still better than serialising behind them.
			go task()
		}
	}
	run()
	wg.Wait()
}

// grainFor picks a chunk size for n output rows so there are a few
// chunks per worker (dynamic balancing) without dropping below
// minGrain.
func grainFor(n int) int {
	g := n / (4 * pool.size)
	if g < minGrain {
		g = minGrain
	}
	return g
}

// mulRows computes rows [lo, hi) of out = a·b. It fully owns those
// output rows (they are zero on entry). The hot path is a 4×2
// register tile — four output rows advanced by a rank-2 update per
// inner iteration — which amortises the B-row loads across four
// accumulator rows and keeps eight independent multiply-add chains in
// flight. k runs in panels of kcBlock so the touched B panel stays
// cache-resident when B itself is larger than L2.
func mulRows(out, a, b *Dense, lo, hi int) {
	ac, bc := a.cols, b.cols
	for kc := 0; kc < ac; kc += kcBlock {
		kend := kc + kcBlock
		if kend > ac {
			kend = ac
		}
		i := lo
		for ; i+3 < hi; i += 4 {
			ar0 := a.data[i*ac : (i+1)*ac]
			ar1 := a.data[(i+1)*ac : (i+2)*ac]
			ar2 := a.data[(i+2)*ac : (i+3)*ac]
			ar3 := a.data[(i+3)*ac : (i+4)*ac]
			o0 := out.data[i*bc : i*bc+bc]
			o1 := out.data[(i+1)*bc : (i+1)*bc+bc]
			o2 := out.data[(i+2)*bc : (i+2)*bc+bc]
			o3 := out.data[(i+3)*bc : (i+3)*bc+bc]
			o1 = o1[:len(o0)]
			o2 = o2[:len(o0)]
			o3 = o3[:len(o0)]
			k := kc
			for ; k+1 < kend; k += 2 {
				a00, a01 := ar0[k], ar0[k+1]
				a10, a11 := ar1[k], ar1[k+1]
				a20, a21 := ar2[k], ar2[k+1]
				a30, a31 := ar3[k], ar3[k+1]
				b0 := b.data[k*bc : k*bc+bc]
				b1 := b.data[(k+1)*bc : (k+1)*bc+bc]
				b0 = b0[:len(o0)]
				b1 = b1[:len(o0)]
				for j, v0 := range b0 {
					v1 := b1[j]
					o0[j] += a00*v0 + a01*v1
					o1[j] += a10*v0 + a11*v1
					o2[j] += a20*v0 + a21*v1
					o3[j] += a30*v0 + a31*v1
				}
			}
			for ; k < kend; k++ {
				v0, v1, v2, v3 := ar0[k], ar1[k], ar2[k], ar3[k]
				brow := b.data[k*bc : k*bc+bc]
				brow = brow[:len(o0)]
				for j, bv := range brow {
					o0[j] += v0 * bv
					o1[j] += v1 * bv
					o2[j] += v2 * bv
					o3[j] += v3 * bv
				}
			}
		}
		// Remainder rows: single-row rank-4 updates.
		for ; i < hi; i++ {
			arow := a.data[i*ac : (i+1)*ac]
			orow := out.data[i*bc : i*bc+bc]
			k := kc
			for ; k+3 < kend; k += 4 {
				a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				b0 := b.data[k*bc : k*bc+bc]
				b1 := b.data[(k+1)*bc : (k+1)*bc+bc]
				b2 := b.data[(k+2)*bc : (k+2)*bc+bc]
				b3 := b.data[(k+3)*bc : (k+3)*bc+bc]
				b0 = b0[:len(orow)]
				b1 = b1[:len(orow)]
				b2 = b2[:len(orow)]
				b3 = b3[:len(orow)]
				for j, v0 := range b0 {
					orow[j] += a0*v0 + a1*b1[j] + a2*b2[j] + a3*b3[j]
				}
			}
			for ; k < kend; k++ {
				av := arow[k]
				if av == 0 {
					continue
				}
				brow := b.data[k*bc : k*bc+bc]
				brow = brow[:len(orow)]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	}
}

// mulInto fills out = a·b, parallelising over output row blocks when
// the product is large enough. out must be zero on entry.
func mulInto(out, a, b *Dense) {
	flops := a.rows * a.cols * b.cols
	if flops < parallelFlops {
		mulRows(out, a, b, 0, a.rows)
		return
	}
	ensurePool()
	parallelFor(a.rows, grainFor(a.rows), func(lo, hi int) {
		mulRows(out, a, b, lo, hi)
	})
}

// gramRows accumulates rows [lo, hi) of the upper triangle of AᵀA
// into g, streaming the rows of A once per chunk and applying rank-2
// outer-product updates restricted to columns [lo, hi).
func gramRows(g, a *Dense, lo, hi int) {
	n := a.cols
	r := 0
	for ; r+1 < a.rows; r += 2 {
		r0 := a.data[r*n : (r+1)*n]
		r1 := a.data[(r+1)*n : (r+2)*n]
		for i := lo; i < hi; i++ {
			v0, v1 := r0[i], r1[i]
			if v0 == 0 && v1 == 0 {
				continue
			}
			gt := g.data[i*n+i : (i+1)*n]
			t0 := r0[i:]
			t1 := r1[i:]
			t1 = t1[:len(t0)]
			gt = gt[:len(t0)]
			for j, w := range t0 {
				gt[j] += v0*w + v1*t1[j]
			}
		}
	}
	for ; r < a.rows; r++ {
		r0 := a.data[r*n : (r+1)*n]
		for i := lo; i < hi; i++ {
			v0 := r0[i]
			if v0 == 0 {
				continue
			}
			gt := g.data[i*n+i : (i+1)*n]
			t0 := r0[i:]
			gt = gt[:len(t0)]
			for j, w := range t0 {
				gt[j] += v0 * w
			}
		}
	}
}

// gramInto fills g = AᵀA (g zero on entry), computing the upper
// triangle in parallel over output row blocks and mirroring it.
func gramInto(g, a *Dense) {
	n := a.cols
	flops := a.rows * n * n / 2
	if flops < parallelFlops {
		gramRows(g, a, 0, n)
	} else {
		ensurePool()
		parallelFor(n, grainFor(n), func(lo, hi int) {
			gramRows(g, a, lo, hi)
		})
	}
	mirrorUpper(g)
}

// gramTRows fills rows [lo, hi) of the upper triangle of AAᵀ with
// pairwise row dot products.
func gramTRows(g, a *Dense, lo, hi int) {
	n := a.rows
	for i := lo; i < hi; i++ {
		ri := a.data[i*a.cols : (i+1)*a.cols]
		for j := i; j < n; j++ {
			g.data[i*n+j] = Dot(ri, a.data[j*a.cols:(j+1)*a.cols])
		}
	}
}

// gramTInto fills g = AAᵀ (g zero on entry) and mirrors the triangle.
func gramTInto(g, a *Dense) {
	n := a.rows
	flops := n * n * a.cols / 2
	if flops < parallelFlops {
		gramTRows(g, a, 0, n)
	} else {
		ensurePool()
		parallelFor(n, grainFor(n), func(lo, hi int) {
			gramTRows(g, a, lo, hi)
		})
	}
	mirrorUpper(g)
}

// mirrorUpper copies the strict upper triangle of the square matrix g
// onto the lower one.
func mirrorUpper(g *Dense) {
	n := g.rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.data[j*n+i] = g.data[i*n+j]
		}
	}
}

// MulTo computes dst = a·b in place, reusing dst's backing storage
// (it is zeroed first). Shapes must match exactly; it panics
// otherwise. This is the allocation-free sibling of Mul for hot loops
// that keep a scratch product buffer (e.g. the FD shrink rebuild).
func MulTo(dst, a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic("mat: MulTo inner dimension mismatch")
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic("mat: MulTo destination shape mismatch")
	}
	for i := range dst.data {
		dst.data[i] = 0
	}
	mulInto(dst, a, b)
	return dst
}

// ----- naive scalar references -----
//
// The original single-goroutine implementations, kept as the ground
// truth for the equivalence property tests and as the baseline the
// `swbench kernels` benchmark measures speedups against.

// mulNaive is the reference triple loop (i,k,j with zero skip).
func mulNaive(a, b *Dense) *Dense {
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// gramNaive is the reference full-square outer-product accumulation.
func gramNaive(m *Dense) *Dense {
	g := NewDense(m.cols, m.cols)
	for i := 0; i < m.rows; i++ {
		addOuterToNaive(g, m.Row(i), 1)
	}
	return g
}

// gramTNaive is the reference pairwise-dot upper triangle.
func gramTNaive(m *Dense) *Dense {
	g := NewDense(m.rows, m.rows)
	for i := 0; i < m.rows; i++ {
		ri := m.Row(i)
		for j := i; j < m.rows; j++ {
			v := dotNaive(ri, m.Row(j))
			g.data[i*m.rows+j] = v
			g.data[j*m.rows+i] = v
		}
	}
	return g
}

// dotNaive is the reference single-accumulator inner product.
func dotNaive(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// addOuterToNaive is the reference rank-1 update.
func addOuterToNaive(g *Dense, row []float64, s float64) {
	n := len(row)
	for i, vi := range row {
		if vi == 0 {
			continue
		}
		f := s * vi
		gi := g.data[i*n : (i+1)*n]
		for j, vj := range row {
			gi[j] += f * vj
		}
	}
}
