package mat

import (
	"fmt"
	"math"
)

// EigenSymQL computes the eigendecomposition of a symmetric matrix by
// Householder reduction to tridiagonal form followed by the implicit-
// shift QL iteration (the classic EISPACK tred2/tql2 pair). It returns
// eigenvalues in descending order with matching eigenvector columns,
// exactly like EigenSym, but runs in ~2n³ flops instead of Jacobi's
// ~10n³–30n³ — this is the production path; the Jacobi solver remains
// as the slow, unconditionally robust reference.
func EigenSymQL(a *Dense) (vals []float64, v *Dense) {
	n := a.rows
	if a.cols != n {
		panic(fmt.Sprintf("mat: EigenSymQL of non-square %d×%d", a.rows, a.cols))
	}
	v = a.Clone()
	d := make([]float64, n)
	e := make([]float64, n)
	if n == 0 {
		return d, v
	}
	tred2(v.data, n, d, e)
	tql2(d, e, v.data, n)
	sortEigenDesc(d, v)
	return d, v
}

// tred2 reduces the symmetric matrix stored in v (n×n row-major) to
// tridiagonal form with diagonal d and sub-diagonal e (e[0] unused),
// overwriting v with the accumulated orthogonal transformation Q such
// that Qᵀ·A·Q = tridiag(d, e).
func tred2(v []float64, n int, d, e []float64) {
	for i := n - 1; i > 0; i-- {
		l := i - 1
		var h, scale float64
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(v[i*n+k])
			}
			if scale == 0 {
				e[i] = v[i*n+l]
			} else {
				inv := 1 / scale
				for k := 0; k <= l; k++ {
					v[i*n+k] *= inv
					h += v[i*n+k] * v[i*n+k]
				}
				f := v[i*n+l]
				g := math.Sqrt(h)
				if f > 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				v[i*n+l] = f - g
				f = 0
				for j := 0; j <= l; j++ {
					v[j*n+i] = v[i*n+j] / h
					g = 0
					for k := 0; k <= j; k++ {
						g += v[j*n+k] * v[i*n+k]
					}
					for k := j + 1; k <= l; k++ {
						g += v[k*n+j] * v[i*n+k]
					}
					e[j] = g / h
					f += e[j] * v[i*n+j]
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = v[i*n+j]
					g = e[j] - hh*f
					e[j] = g
					vj := v[j*n : j*n+j+1]
					vi := v[i*n : i*n+j+1]
					for k := 0; k <= j; k++ {
						vj[k] -= f*e[k] + g*vi[k]
					}
				}
			}
		} else {
			e[i] = v[i*n+l]
		}
		d[i] = h
	}
	d[0] = 0
	e[0] = 0
	// Accumulate the transformations.
	for i := 0; i < n; i++ {
		l := i - 1
		if d[i] != 0 {
			for j := 0; j <= l; j++ {
				var g float64
				for k := 0; k <= l; k++ {
					g += v[i*n+k] * v[k*n+j]
				}
				for k := 0; k <= l; k++ {
					v[k*n+j] -= g * v[k*n+i]
				}
			}
		}
		d[i] = v[i*n+i]
		v[i*n+i] = 1
		for j := 0; j <= l; j++ {
			v[j*n+i] = 0
			v[i*n+j] = 0
		}
	}
}

// tql2 diagonalises the symmetric tridiagonal matrix (d, e) with the
// implicit-shift QL algorithm, accumulating rotations into v (which on
// entry holds the tred2 transformation). On exit d holds the
// eigenvalues (unsorted) and the columns of v the eigenvectors.
func tql2(d, e []float64, v []float64, n int) {
	if n <= 1 {
		return
	}
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0

	const maxIter = 60
	eps := math.Nextafter(1, 2) - 1
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			// Find a negligible sub-diagonal element.
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= eps*dd {
					break
				}
			}
			if m == l {
				break
			}
			if iter >= maxIter {
				// Convergence failure is essentially impossible for
				// the PSD Gram matrices this library feeds in; accept
				// the current (very close) values rather than panic.
				break
			}
			// Form the implicit shift.
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			underflow := false
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					// Recover from underflow: skip the rest of the
					// transformation.
					d[i+1] -= p
					e[m] = 0
					underflow = true
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				// Accumulate the rotation into the eigenvectors.
				for k := 0; k < n; k++ {
					f = v[k*n+i+1]
					v[k*n+i+1] = s*v[k*n+i] + c*f
					v[k*n+i] = c*v[k*n+i] - s*f
				}
			}
			if underflow {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
}
