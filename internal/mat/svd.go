package mat

import (
	"fmt"
	"math"
)

// SVDResult holds a thin singular value decomposition A = U·diag(S)·Vᵀ
// with r = min(rows, cols) retained components. U is rows×r, V is
// cols×r, and S holds r singular values in descending order.
type SVDResult struct {
	U *Dense
	S []float64
	V *Dense
}

// SVD computes a thin singular value decomposition of a via the Gram
// trick: it eigendecomposes the smaller of AᵀA (cols×cols) and AAᵀ
// (rows×rows) with the Jacobi solver and recovers the other factor by
// projection. This is the right trade for sketching shapes where one
// dimension is much smaller than the other.
//
// Singular vectors associated with (numerically) zero singular values
// are left as zero columns in the recovered factor; callers that only
// need Σ and Vᵀ (the FD shrink step) never touch them.
func SVD(a *Dense) SVDResult {
	r, c := a.Dims()
	if r == 0 || c == 0 {
		return SVDResult{U: NewDense(r, 0), S: nil, V: NewDense(c, 0)}
	}
	if r <= c {
		return svdViaAAT(a)
	}
	return svdViaATA(a)
}

// svdViaAAT handles rows ≤ cols: eigendecompose AAᵀ to get U and Σ,
// then V = AᵀUΣ⁻¹.
func svdViaAAT(a *Dense) SVDResult {
	r, c := a.Dims()
	vals, u := EigenSym(a.GramT()) // r×r
	s := singularValues(vals)
	v := NewDense(c, r)
	// V[:,k] = Aᵀ u_k / s_k.
	for k := 0; k < r; k++ {
		if s[k] <= 0 {
			continue
		}
		inv := 1 / s[k]
		for i := 0; i < r; i++ {
			uik := u.data[i*r+k]
			if uik == 0 {
				continue
			}
			ai := a.data[i*c : (i+1)*c]
			f := uik * inv
			for j, av := range ai {
				v.data[j*r+k] += f * av
			}
		}
	}
	return SVDResult{U: u, S: s, V: v}
}

// svdViaATA handles rows > cols: eigendecompose AᵀA to get V and Σ,
// then U = AVΣ⁻¹.
func svdViaATA(a *Dense) SVDResult {
	r, c := a.Dims()
	vals, v := EigenSym(a.Gram()) // c×c
	s := singularValues(vals)
	u := NewDense(r, c)
	for i := 0; i < r; i++ {
		ai := a.data[i*c : (i+1)*c]
		ui := u.data[i*c : (i+1)*c]
		for k := 0; k < c; k++ {
			if s[k] <= 0 {
				continue
			}
			var dot float64
			for j, av := range ai {
				dot += av * v.data[j*c+k]
			}
			ui[k] = dot / s[k]
		}
	}
	return SVDResult{U: u, S: s, V: v}
}

// singularValues converts eigenvalues of a Gram matrix to singular
// values, clamping small negative values (Jacobi round-off) to zero.
func singularValues(vals []float64) []float64 {
	s := make([]float64, len(vals))
	for i, v := range vals {
		if v > 0 {
			s[i] = math.Sqrt(v)
		}
	}
	return s
}

// SingularValues returns only the singular values of a, in descending
// order, computed via the smaller Gram matrix.
func SingularValues(a *Dense) []float64 {
	r, c := a.Dims()
	if r == 0 || c == 0 {
		return nil
	}
	var vals []float64
	if r <= c {
		vals, _ = EigenSym(a.GramT())
	} else {
		vals, _ = EigenSym(a.Gram())
	}
	return singularValues(vals)
}

// RankK returns the best rank-k approximation of a in the Frobenius
// norm, represented as the k×cols matrix Σ_k·V_kᵀ (so that
// (Σ_kV_kᵀ)ᵀ(Σ_kV_kᵀ) = (A_k)ᵀ(A_k)). If k exceeds min(rows, cols) the
// full ΣVᵀ is returned.
func RankK(a *Dense, k int) *Dense {
	if k < 0 {
		panic(fmt.Sprintf("mat: RankK with k=%d", k))
	}
	res := SVD(a)
	r := len(res.S)
	if k > r {
		k = r
	}
	out := NewDense(k, a.cols)
	for i := 0; i < k; i++ {
		si := res.S[i]
		for j := 0; j < a.cols; j++ {
			out.data[i*a.cols+j] = si * res.V.data[j*r+i]
		}
	}
	return out
}

// SpectralNorm returns ‖a‖₂ = σ₁(a), the largest singular value, using
// power iteration on the implicit Gram operator x ↦ Aᵀ(Ax). It never
// materialises AᵀA, so it is cheap for short-and-wide matrices.
func SpectralNorm(a *Dense) float64 {
	r, c := a.Dims()
	if r == 0 || c == 0 {
		return 0
	}
	lam := powerIteration(c, func(x, out []float64) {
		// out = Aᵀ(Ax)
		for i := range out {
			out[i] = 0
		}
		for i := 0; i < r; i++ {
			ai := a.data[i*c : (i+1)*c]
			d := Dot(ai, x)
			if d == 0 {
				continue
			}
			for j, av := range ai {
				out[j] += d * av
			}
		}
	})
	if lam < 0 {
		lam = 0
	}
	return math.Sqrt(lam)
}

// SymSpectralNorm returns ‖s‖₂ = max|eigenvalue| of a symmetric matrix
// s, by power iteration on s² applied implicitly (two multiplications
// by s), which converges to the squared dominant eigenvalue regardless
// of its sign.
func SymSpectralNorm(s *Dense) float64 {
	n := s.rows
	if s.cols != n {
		panic(fmt.Sprintf("mat: SymSpectralNorm of non-square %d×%d", s.rows, s.cols))
	}
	if n == 0 {
		return 0
	}
	tmp := make([]float64, n)
	lam2 := powerIteration(n, func(x, out []float64) {
		symMulVec(s, x, tmp)
		symMulVec(s, tmp, out)
	})
	if lam2 < 0 {
		lam2 = 0
	}
	return math.Sqrt(lam2)
}

func symMulVec(s *Dense, x, out []float64) {
	n := s.rows
	for i := 0; i < n; i++ {
		out[i] = Dot(s.data[i*n:(i+1)*n], x)
	}
}

// powerIteration runs power iteration with the operator op (out = M·x)
// on dimension n, returning the dominant Rayleigh quotient xᵀMx for a
// symmetric positive semi-definite M. A deterministic pseudo-random
// start vector keeps results reproducible.
func powerIteration(n int, op func(x, out []float64)) float64 {
	const (
		maxIter = 300
		tol     = 1e-10
	)
	x := make([]float64, n)
	// Deterministic, non-degenerate start: a fixed LCG keyed by index.
	seed := uint64(0x9e3779b97f4a7c15)
	for i := range x {
		seed = seed*6364136223846793005 + 1442695040888963407
		x[i] = float64(int64(seed>>11))/float64(1<<52) + 1e-3
	}
	normalize(x)

	y := make([]float64, n)
	prev := math.Inf(1)
	for it := 0; it < maxIter; it++ {
		op(x, y)
		lam := Dot(x, y)
		ny := Norm2(y)
		if ny == 0 {
			return 0
		}
		for i := range x {
			x[i] = y[i] / ny
		}
		if math.Abs(lam-prev) <= tol*math.Max(math.Abs(lam), 1) {
			return lam
		}
		prev = lam
	}
	op(x, y)
	return Dot(x, y)
}

func normalize(x []float64) {
	n := Norm2(x)
	if n == 0 {
		return
	}
	for i := range x {
		x[i] /= n
	}
}

// CovarianceError returns the paper's error measure
// ‖AᵀA − BᵀB‖₂ / ‖A‖²_F given the exact Gram matrix gramA = AᵀA, its
// squared Frobenius mass froSqA = ‖A‖²_F, and the approximation B.
// B may be nil or empty, in which case BᵀB = 0. A zero froSqA (empty
// window) yields error 0 by convention.
func CovarianceError(gramA *Dense, froSqA float64, b *Dense) float64 {
	if froSqA == 0 {
		return 0
	}
	diff := gramA.Clone()
	if b != nil && b.rows > 0 {
		if b.cols != gramA.cols {
			panic(fmt.Sprintf("mat: covariance error with B of %d cols vs %d", b.cols, gramA.cols))
		}
		for i := 0; i < b.rows; i++ {
			AddOuterTo(diff, b.Row(i), -1)
		}
	}
	return SymSpectralNorm(diff) / froSqA
}

// ProjectionError returns the relative rank-k projection error of an
// approximation b against the matrix a:
//
//	‖A − A·V_k·V_kᵀ‖²_F / ‖A − A_k‖²_F ,
//
// where V_k holds the top-k right singular vectors of B and A_k is the
// best rank-k approximation of A. This is the second standard quality
// measure in the FrequentDirections literature (and the "different
// error metrics" direction the paper leaves as future work): it asks
// whether B's top subspace captures A, rather than whether BᵀB matches
// AᵀA in every direction. Values close to 1 are optimal; the measure
// is ≥ 1 up to round-off. Returns 0 when A has rank ≤ k (the
// denominator vanishes and any subspace is exact) and +Inf when B is
// empty but A is not.
func ProjectionError(a, b *Dense, k int) float64 {
	if k < 1 {
		panic(fmt.Sprintf("mat: ProjectionError with k=%d", k))
	}
	if a.Rows() == 0 {
		return 0
	}
	// Denominator: ‖A − A_k‖²_F = Σ_{i>k} σᵢ²(A).
	sa := SingularValues(a)
	var denom float64
	for i := k; i < len(sa); i++ {
		denom += sa[i] * sa[i]
	}
	return ProjectionErrorGivenTail(a, denom, b, k)
}

// ProjectionErrorGivenTail is ProjectionError with the denominator
// ‖A − A_k‖²_F supplied by the caller — the evaluation harness computes
// A's spectrum once per query point and amortises it across sketches.
func ProjectionErrorGivenTail(a *Dense, tailMass float64, b *Dense, k int) float64 {
	if k < 1 {
		panic(fmt.Sprintf("mat: ProjectionError with k=%d", k))
	}
	if a.Rows() == 0 {
		return 0
	}
	if tailMass <= 1e-12*a.FrobeniusSq() {
		return 0
	}
	if b == nil || b.Rows() == 0 {
		return math.Inf(1)
	}
	if b.Cols() != a.Cols() {
		panic(fmt.Sprintf("mat: ProjectionError with B of %d cols vs %d", b.Cols(), a.Cols()))
	}
	// Numerator: ‖A‖²_F − ‖A·V_k‖²_F with V_k from B's SVD.
	res := SVD(b)
	kk := k
	if r := len(res.S); r < kk {
		kk = r
	}
	var captured float64
	d := a.Cols()
	col := make([]float64, d)
	for c := 0; c < kk; c++ {
		for j := 0; j < d; j++ {
			col[j] = res.V.At(j, c)
		}
		captured += SqNorm(a.MulVec(col))
	}
	num := a.FrobeniusSq() - captured
	if num < 0 {
		num = 0
	}
	return num / tailMass
}
