package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func reconstructSVD(res SVDResult) *Dense {
	r := len(res.S)
	ur, _ := res.U.Dims()
	vc, _ := res.V.Dims()
	out := NewDense(ur, vc)
	for k := 0; k < r; k++ {
		if res.S[k] == 0 {
			continue
		}
		for i := 0; i < ur; i++ {
			f := res.U.At(i, k) * res.S[k]
			for j := 0; j < vc; j++ {
				out.Set(i, j, out.At(i, j)+f*res.V.At(j, k))
			}
		}
	}
	return out
}

func TestSVDReconstructionWide(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, dims := range [][2]int{{3, 8}, {5, 20}, {10, 10}, {1, 7}} {
		a := randDense(rng, dims[0], dims[1])
		res := SVD(a)
		if !reconstructSVD(res).Equal(a, 1e-8) {
			t.Fatalf("%v: SVD reconstruction failed", dims)
		}
	}
}

func TestSVDReconstructionTall(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, dims := range [][2]int{{8, 3}, {20, 5}, {7, 1}} {
		a := randDense(rng, dims[0], dims[1])
		res := SVD(a)
		if !reconstructSVD(res).Equal(a, 1e-8) {
			t.Fatalf("%v: SVD reconstruction failed", dims)
		}
	}
}

func TestSVDSingularValuesDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randDense(rng, 6, 9)
	res := SVD(a)
	for i := 1; i < len(res.S); i++ {
		if res.S[i] > res.S[i-1]+1e-12 {
			t.Fatalf("singular values not sorted: %v", res.S)
		}
	}
	for _, s := range res.S {
		if s < 0 {
			t.Fatalf("negative singular value: %v", res.S)
		}
	}
}

func TestSVDOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := randDense(rng, 4, 9)
	res := SVD(a)
	// U is 4×4 orthogonal; V's first 4 columns orthonormal.
	if !Mul(res.U.T(), res.U).Equal(Identity(4), 1e-8) {
		t.Fatal("U not orthonormal")
	}
	vtv := Mul(res.V.T(), res.V)
	if !vtv.Equal(Identity(4), 1e-8) {
		t.Fatal("V columns not orthonormal")
	}
}

func TestSVDKnownMatrix(t *testing.T) {
	// diag(3,2) embedded: singular values must be 3, 2.
	a := FromRows([][]float64{{3, 0, 0}, {0, 2, 0}})
	s := SingularValues(a)
	if !almostEqual(s[0], 3, 1e-10) || !almostEqual(s[1], 2, 1e-10) {
		t.Fatalf("singular values = %v, want [3 2]", s)
	}
}

func TestSVDEmpty(t *testing.T) {
	res := SVD(NewDense(0, 5))
	if len(res.S) != 0 {
		t.Fatal("empty matrix should have no singular values")
	}
	if SingularValues(NewDense(3, 0)) != nil {
		t.Fatal("expected nil singular values")
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix: second singular value ~0.
	a := FromRows([][]float64{{1, 2, 3}, {2, 4, 6}})
	s := SingularValues(a)
	if s[1] > 1e-8 {
		t.Fatalf("rank-1 matrix has σ₂ = %v", s[1])
	}
	res := SVD(a)
	if !reconstructSVD(res).Equal(a, 1e-8) {
		t.Fatal("rank-deficient reconstruction failed")
	}
}

func TestSingularValuesFrobeniusProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randDense(r, 1+r.Intn(8), 1+r.Intn(8))
		s := SingularValues(a)
		var sum float64
		for _, v := range s {
			sum += v * v
		}
		return almostEqual(sum, a.FrobeniusSq(), 1e-8*(1+a.FrobeniusSq()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRankK(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	a := randDense(rng, 12, 6)
	for _, k := range []int{0, 1, 3, 6, 10} {
		bk := RankK(a, k)
		wantRows := k
		if k > 6 {
			wantRows = 6
		}
		if bk.Rows() != wantRows || bk.Cols() != 6 {
			t.Fatalf("RankK(%d) dims = %d×%d", k, bk.Rows(), bk.Cols())
		}
	}
	// Full-rank RankK must reproduce the Gram matrix.
	full := RankK(a, 6)
	if !full.Gram().Equal(a.Gram(), 1e-7) {
		t.Fatal("RankK(full) Gram mismatch")
	}
}

func TestRankKOptimality(t *testing.T) {
	// The rank-k Gram error must equal σ_{k+1}².
	rng := rand.New(rand.NewSource(26))
	a := randDense(rng, 30, 6)
	s := SingularValues(a)
	for _, k := range []int{1, 3, 5} {
		bk := RankK(a, k)
		err := CovarianceError(a.Gram(), a.FrobeniusSq(), bk)
		want := s[k] * s[k] / a.FrobeniusSq()
		if !almostEqual(err, want, 1e-6) {
			t.Fatalf("k=%d: cova-err = %v, want σ²_{k+1}/‖A‖²_F = %v", k, err, want)
		}
	}
}

func TestRankKNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RankK(NewDense(2, 2), -1)
}

func TestSpectralNormMatchesSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	for _, dims := range [][2]int{{5, 9}, {9, 5}, {1, 4}, {20, 20}} {
		a := randDense(rng, dims[0], dims[1])
		got := SpectralNorm(a)
		want := SingularValues(a)[0]
		if !almostEqual(got, want, 1e-6*(1+want)) {
			t.Fatalf("%v: SpectralNorm = %v, want %v", dims, got, want)
		}
	}
}

func TestSpectralNormEmptyAndZero(t *testing.T) {
	if SpectralNorm(NewDense(0, 3)) != 0 {
		t.Fatal("empty matrix should have zero norm")
	}
	if SpectralNorm(NewDense(3, 3)) != 0 {
		t.Fatal("zero matrix should have zero norm")
	}
}

func TestSymSpectralNormNegativeDominant(t *testing.T) {
	// Dominant eigenvalue is negative: norm must still be its magnitude.
	a := FromRows([][]float64{{-5, 0}, {0, 2}})
	if got := SymSpectralNorm(a); !almostEqual(got, 5, 1e-8) {
		t.Fatalf("SymSpectralNorm = %v, want 5", got)
	}
}

func TestSymSpectralNormMatchesEigen(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	for _, n := range []int{2, 5, 15} {
		a := randSym(rng, n)
		got := SymSpectralNorm(a)
		vals, _ := EigenSym(a)
		want := math.Max(math.Abs(vals[0]), math.Abs(vals[n-1]))
		if !almostEqual(got, want, 1e-6*(1+want)) {
			t.Fatalf("n=%d: SymSpectralNorm = %v, want %v", n, got, want)
		}
	}
}

func TestSymSpectralNormNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SymSpectralNorm(NewDense(2, 3))
}

func TestCovarianceErrorExactSketch(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	a := randDense(rng, 10, 4)
	// B = ΣVᵀ of the full SVD has the same Gram matrix: error 0.
	b := RankK(a, 4)
	if err := CovarianceError(a.Gram(), a.FrobeniusSq(), b); err > 1e-8 {
		t.Fatalf("exact sketch error = %v, want ~0", err)
	}
}

func TestCovarianceErrorNilB(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	a := randDense(rng, 10, 4)
	// With B = 0, error = ‖AᵀA‖/‖A‖²_F = σ₁²/Σσᵢ² ≤ 1.
	err := CovarianceError(a.Gram(), a.FrobeniusSq(), nil)
	s := SingularValues(a)
	want := s[0] * s[0] / a.FrobeniusSq()
	if !almostEqual(err, want, 1e-7) {
		t.Fatalf("nil-B error = %v, want %v", err, want)
	}
	if err2 := CovarianceError(a.Gram(), a.FrobeniusSq(), NewDense(0, 4)); !almostEqual(err2, want, 1e-7) {
		t.Fatalf("empty-B error = %v, want %v", err2, want)
	}
}

func TestCovarianceErrorEmptyWindow(t *testing.T) {
	if CovarianceError(NewDense(3, 3), 0, nil) != 0 {
		t.Fatal("empty window should have zero error by convention")
	}
}

func TestCovarianceErrorShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CovarianceError(NewDense(3, 3), 1, NewDense(2, 4))
}

func TestIdentitySingularValues(t *testing.T) {
	s := SingularValues(Identity(4))
	for _, v := range s {
		if !almostEqual(v, 1, 1e-10) {
			t.Fatalf("identity singular values = %v", s)
		}
	}
}

func TestProjectionErrorOptimalSketch(t *testing.T) {
	// B containing A's own top-k subspace gives error exactly 1.
	rng := rand.New(rand.NewSource(40))
	a := randDense(rng, 40, 8)
	b := RankK(a, 3)
	got := ProjectionError(a, b, 3)
	if !almostEqual(got, 1, 1e-6) {
		t.Fatalf("optimal projection error = %v, want 1", got)
	}
}

func TestProjectionErrorWorseSubspace(t *testing.T) {
	// A sketch aligned with the *bottom* directions must be worse than 1.
	rng := rand.New(rand.NewSource(41))
	a := randDense(rng, 40, 6)
	res := SVD(a)
	// Build B from the two weakest right singular vectors.
	b := NewDense(2, 6)
	for i := 0; i < 2; i++ {
		c := len(res.S) - 1 - i
		for j := 0; j < 6; j++ {
			b.Set(i, j, res.V.At(j, c))
		}
	}
	if got := ProjectionError(a, b, 2); got <= 1.05 {
		t.Fatalf("bad-subspace projection error = %v, want > 1", got)
	}
}

func TestProjectionErrorEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randDense(rng, 20, 5)
	// Empty B but non-trivial A: +Inf.
	if got := ProjectionError(a, NewDense(0, 5), 2); !math.IsInf(got, 1) {
		t.Fatalf("empty-B error = %v, want +Inf", got)
	}
	if got := ProjectionError(a, nil, 2); !math.IsInf(got, 1) {
		t.Fatalf("nil-B error = %v, want +Inf", got)
	}
	// Rank ≤ k: 0 by convention.
	low := FromRows([][]float64{{1, 2, 0}, {2, 4, 0}})
	if got := ProjectionError(low, NewDense(0, 3), 2); got != 0 {
		t.Fatalf("low-rank error = %v, want 0", got)
	}
	// Empty A.
	if got := ProjectionError(NewDense(0, 5), nil, 2); got != 0 {
		t.Fatalf("empty-A error = %v, want 0", got)
	}
}

func TestProjectionErrorValidation(t *testing.T) {
	// Full-rank a so the rank-≤-k early return does not trigger before
	// the shape checks.
	a := FromRows([][]float64{{1, 0, 0}, {0, 1, 0}})
	for _, f := range []func(){
		func() { ProjectionError(a, NewDense(1, 4), 1) },
		func() { ProjectionError(a, nil, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestProjectionErrorFDBeatsZero(t *testing.T) {
	// FD's subspace must be far better than a random one on structured
	// data.
	rng := rand.New(rand.NewSource(43))
	d, k := 12, 3
	a := NewDense(600, d)
	dirs := randDense(rng, k, d)
	for i := 0; i < 600; i++ {
		row := a.Row(i)
		for p := 0; p < k; p++ {
			c := rng.NormFloat64() * float64(k-p)
			for j := 0; j < d; j++ {
				row[j] += c * dirs.At(p, j)
			}
		}
		for j := 0; j < d; j++ {
			row[j] += 0.1 * rng.NormFloat64()
		}
	}
	fdLike := RankK(a, 6) // stand-in for a good sketch
	random := randDense(rng, 6, d)
	if pe, pr := ProjectionError(a, fdLike, k), ProjectionError(a, random, k); pe >= pr {
		t.Fatalf("good sketch %v not better than random %v", pe, pr)
	}
}
