package mat

// Vector kernels behind the FastFD shrink pipeline. On amd64 hosts
// with AVX2+FMA the hot inner loops dispatch to hand-written assembly
// (kernels_amd64.s), detected at startup via CPUID; everywhere else —
// and on amd64 without those extensions — the portable scalar
// formulations run unchanged.
//
// The assembly fuses multiplies and adds, so its rounding differs from
// the scalar code in the last bits. That is why only the FastFD
// (b>1 or α<1) pipeline and SymEigTopK reach these kernels: the
// legacy b=1, α=1 FD path and everything persisted from it must stay
// bit-stable across releases, and it keeps using the plain Go
// kernels regardless of CPU.

// kernelsASM reports whether the assembly kernels are active. It is a
// variable, not a constant, so tests can force the scalar path and
// verify both implementations agree.
var kernelsASM = false

// KernelsAccelerated reports whether the fused-multiply-add assembly
// kernels are active on this host (amd64 with AVX2+FMA). Observability
// surfaces report it so benchmark artifacts record which backend ran.
func KernelsAccelerated() bool { return kernelsASM }

// MulTiledTo computes dst = a·b like MulTo, but through the FMA tile
// kernel when it is available. Accumulation order and rounding differ
// from MulTo, so bit-stable callers (the legacy FD shrink) must keep
// using MulTo; the FastFD pipeline, which only promises the FD error
// bound, uses this.
func MulTiledTo(dst, a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic("mat: MulTiledTo inner dimension mismatch")
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic("mat: MulTiledTo destination shape mismatch")
	}
	if !kernelsASM || b.cols < 4 {
		return MulTo(dst, a, b)
	}
	for i := range dst.data {
		dst.data[i] = 0
	}
	ac, bc := a.cols, b.cols
	m := bc &^ 3
	i := 0
	for ; i+3 < a.rows; i += 4 {
		o0 := dst.data[i*bc : i*bc+bc]
		o1 := dst.data[(i+1)*bc : (i+1)*bc+bc]
		o2 := dst.data[(i+2)*bc : (i+2)*bc+bc]
		o3 := dst.data[(i+3)*bc : (i+3)*bc+bc]
		k := 0
		for ; k+1 < ac; k += 2 {
			co := [8]float64{
				a.data[i*ac+k], a.data[i*ac+k+1],
				a.data[(i+1)*ac+k], a.data[(i+1)*ac+k+1],
				a.data[(i+2)*ac+k], a.data[(i+2)*ac+k+1],
				a.data[(i+3)*ac+k], a.data[(i+3)*ac+k+1],
			}
			b0 := b.data[k*bc : k*bc+bc]
			b1 := b.data[(k+1)*bc : (k+1)*bc+bc]
			axpy4x2(&co, &b0[0], &b1[0], &o0[0], &o1[0], &o2[0], &o3[0], m)
			for j := m; j < bc; j++ {
				v0, v1 := b0[j], b1[j]
				o0[j] += co[0]*v0 + co[1]*v1
				o1[j] += co[2]*v0 + co[3]*v1
				o2[j] += co[4]*v0 + co[5]*v1
				o3[j] += co[6]*v0 + co[7]*v1
			}
		}
		if k < ac {
			b0 := b.data[k*bc : k*bc+bc]
			for r := 0; r < 4; r++ {
				av := a.data[(i+r)*ac+k]
				or := dst.data[(i+r)*bc : (i+r)*bc+bc]
				for j, bv := range b0 {
					or[j] += av * bv
				}
			}
		}
	}
	for ; i < a.rows; i++ {
		arow := a.data[i*ac : (i+1)*ac]
		orow := dst.data[i*bc : (i+1)*bc]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*bc : k*bc+bc]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return dst
}
