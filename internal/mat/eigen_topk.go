package mat

import (
	"fmt"
	"math"
	"sort"
)

// SymEigTopK is a reusable partial eigensolver for symmetric matrices:
// it produces every eigenvalue but only the leading k eigenvectors,
// which is the exact shape of FrequentDirections' shrink step — the
// shrink threshold λ needs the full spectrum, while only the ~ℓ/2
// surviving directions need vectors. Compared to EigenSymQL it skips
// both accumulation passes (the tred2 Q build-up and the per-rotation
// tql2 column updates, together the dominant and most cache-hostile
// cost of the full decomposition) and replaces them with inverse
// iteration on the tridiagonal form plus a Householder back-transform
// of just the requested vectors, so the vector cost is O(k·n²) instead
// of O(n³) with a large constant.
//
// The pipeline is tred-reduce → values-only QL → inverse iteration
// (with cluster orthogonalization for near-equal eigenvalues) →
// back-transform. If inverse iteration fails a residual or
// orthogonality sanity check — possible only on pathological spectra —
// the solver falls back to the full EigenSymQL decomposition, so the
// result is always usable; the fallback is deterministic like
// everything else here.
//
// The zero value is ready to use. A SymEigTopK retains its scratch
// buffers across calls, keeping repeated decompositions of same-sized
// matrices allocation-free; it is not safe for concurrent use.
type SymEigTopK struct {
	n int
	a *Dense // caller's matrix, referenced for the fallback path

	w    []float64 // n×n reduction workspace (Householder vectors + tridiagonal)
	hs   []float64 // per-step Householder scalars h (0 = no reflector)
	diag []float64 // tridiagonal diagonal
	sub  []float64 // tridiagonal subdiagonal; sub[i] couples i−1 and i
	vals []float64 // eigenvalues, descending
	p    []float64 // symv scratch during reduction

	// inverse-iteration scratch: factor bands, multipliers, pivot
	// flags, and the current iterate.
	bu, bv, bw, bm []float64
	flip           []bool
	rv             []float64
}

// machEps is the double-precision unit roundoff.
var machEps = math.Nextafter(1, 2) - 1

func (s *SymEigTopK) resize(n int) {
	s.n = n
	if cap(s.w) < n*n {
		s.w = make([]float64, n*n)
	}
	s.w = s.w[:n*n]
	need := func(b []float64) []float64 {
		if cap(b) < n {
			return make([]float64, n)
		}
		return b[:n]
	}
	s.hs = need(s.hs)
	s.diag = need(s.diag)
	s.sub = need(s.sub)
	s.vals = need(s.vals)
	s.p = need(s.p)
	s.bu = need(s.bu)
	s.bv = need(s.bv)
	s.bw = need(s.bw)
	s.bm = need(s.bm)
	s.rv = need(s.rv)
	if cap(s.flip) < n {
		s.flip = make([]bool, n)
	}
	s.flip = s.flip[:n]
}

// Values computes the eigenvalues of the symmetric matrix a in
// descending order. The returned slice is owned by the solver and
// valid until the next Values call. a is not modified, but must remain
// valid and unchanged until the matching VectorsT call: the fallback
// path re-decomposes it.
func (s *SymEigTopK) Values(a *Dense) []float64 {
	n := a.rows
	if a.cols != n {
		panic(fmt.Sprintf("mat: SymEigTopK of non-square %d×%d", a.rows, a.cols))
	}
	s.resize(n)
	s.a = a
	if n == 0 {
		return s.vals
	}
	copy(s.w, a.data)
	tredReduce(s.w, n, s.hs, s.sub, s.p)
	for i := 0; i < n; i++ {
		s.diag[i] = s.w[i*n+i]
	}
	copy(s.vals, s.diag)
	// Root-free PWK iteration on squared subdiagonals is the fast
	// path; it squares the couplings, so fall back to the plain QL
	// sweep when the magnitudes could overflow the squares.
	e := s.bu // destructive scratch; re-initialised by the factorizations later
	maxAbs := 0.0
	for i := 1; i < n; i++ {
		if a := math.Abs(s.sub[i]); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs < 1e150 {
		for i := 1; i < n; i++ {
			e[i-1] = s.sub[i] * s.sub[i]
		}
		e[n-1] = 0
		sterfValues(s.vals, e, n)
	} else {
		copy(e, s.sub)
		tqlValues(s.vals, e, n)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(s.vals)))
	return s.vals
}

// VectorsT returns the top k eigenvectors of the matrix last passed to
// Values as the rows of a freshly allocated k×n matrix (row j matches
// the j-th returned eigenvalue). The row-major transposed layout is
// what both FD rebuild paths consume directly. It panics if k is
// negative, exceeds n, or Values has not been called.
func (s *SymEigTopK) VectorsT(k int) *Dense {
	n := s.n
	if s.a == nil {
		panic("mat: SymEigTopK.VectorsT before Values")
	}
	if k < 0 || k > n {
		panic(fmt.Sprintf("mat: SymEigTopK.VectorsT k=%d with n=%d", k, n))
	}
	z := NewDense(k, n)
	s.VectorsTInto(z)
	return z
}

// VectorsTInto is VectorsT writing into caller-owned storage: dst must
// be k×n for the n of the matrix last passed to Values, and its row
// count selects k. Hot paths keep a dst sized for the largest k they
// request and pass a view, keeping the vector phase allocation-free.
func (s *SymEigTopK) VectorsTInto(z *Dense) {
	n := s.n
	if s.a == nil {
		panic("mat: SymEigTopK.VectorsTInto before Values")
	}
	k := z.rows
	if k > n || z.cols != n {
		panic(fmt.Sprintf("mat: SymEigTopK.VectorsTInto dst %d×%d with n=%d", z.rows, z.cols, n))
	}
	if k == 0 || n == 0 {
		return
	}
	for i := range z.data {
		z.data[i] = 0
	}

	// Tolerances scale with ‖T‖: eps3 separates shifts inside a
	// cluster, gtol groups eigenvalues whose inverse-iteration vectors
	// must be orthogonalized against each other explicitly.
	tnorm := 0.0
	for i := 0; i < n; i++ {
		t := math.Abs(s.diag[i])
		if i > 0 {
			t += math.Abs(s.sub[i])
		}
		if i+1 < n {
			t += math.Abs(s.sub[i+1])
		}
		if t > tnorm {
			tnorm = t
		}
	}
	if tnorm == 0 {
		tnorm = 1
	}
	eps3 := machEps * tnorm
	gtol := 1e-5 * tnorm

	ok := true
	prevShift := math.Inf(1)
	group := 0 // index of the current cluster's first vector
	for j := 0; j < k && ok; j++ {
		if j > 0 && s.vals[j-1]-s.vals[j] > gtol {
			group = j
		}
		x := s.vals[j]
		if x >= prevShift-eps3 {
			x = prevShift - eps3
		}
		prevShift = x
		ok = s.invIterate(z.Row(j), z, group, j, x, tnorm, eps3, 0)
		if ok {
			ok = s.checkVector(z.Row(j), s.vals[j], tnorm)
		}
	}
	if !ok {
		// Pathological spectrum: redo with the full, unconditionally
		// ordered QL decomposition and keep its leading columns. The
		// eigenvalues match the ones already returned to working
		// precision, so callers' λ decisions stay consistent.
		_, v := EigenSymQL(s.a)
		TransposeInto(z, v, k)
		return
	}

	// Back-transform all vectors from tridiagonal to original
	// coordinates by applying the stored Householder reflectors in
	// ascending step order (the reverse of the reduction). Vectors are
	// processed in pairs so each reflector is streamed once per pair.
	for i := 2; i < n; i++ {
		h := s.hs[i]
		if h == 0 {
			continue
		}
		u := s.w[i*n : i*n+i]
		hInv := 1 / h
		r := 0
		for ; r+1 < k; r += 2 {
			zr0 := z.data[r*n : r*n+i]
			zr1 := z.data[(r+1)*n : (r+1)*n+i]
			var g0, g1 float64
			t0 := 0
			if kernelsASM && i >= 4 {
				t0 = i &^ 3
				g0, g1 = dot2(&u[0], &zr0[0], &zr1[0], t0)
			}
			for t := t0; t < i; t++ {
				ut := u[t]
				g0 += ut * zr0[t]
				g1 += ut * zr1[t]
			}
			g0 *= hInv
			g1 *= hInv
			if t0 > 0 {
				axpy2(g0, g1, &u[0], &zr0[0], &zr1[0], t0)
			}
			for t := t0; t < i; t++ {
				ut := u[t]
				zr0[t] -= g0 * ut
				zr1[t] -= g1 * ut
			}
		}
		if r < k {
			zr := z.data[r*n : r*n+i]
			g := Dot(u, zr) * hInv
			for t, ut := range u {
				zr[t] -= g * ut
			}
		}
	}
}

// invIterate computes one eigenvector of the tridiagonal (diag, sub)
// for the shifted eigenvalue x into y (length n, tridiagonal
// coordinates), orthogonalizing against the cluster rows
// z[group..j-1]. depth counts shift-perturbation restarts. It reports
// whether the iteration converged to a usable vector.
func (s *SymEigTopK) invIterate(y []float64, z *Dense, group, j int, x, tnorm, eps3 float64, depth int) bool {
	n := s.n
	uzero := machEps * tnorm // stand-in for exactly-zero pivots

	// Factor T − xI = L·U with partial pivoting. Row i of U is
	// (bu[i], bv[i], bw[i]); bm[i] and flip[i] record the elimination.
	bu, bv, bw, bm := s.bu, s.bv, s.bw, s.bm
	bu[0] = s.diag[0] - x
	if n > 1 {
		bv[0] = s.sub[1]
	} else {
		bv[0] = 0
	}
	bw[0] = 0
	for i := 1; i < n; i++ {
		e := s.sub[i]
		next := 0.0
		if i+1 < n {
			next = s.sub[i+1]
		}
		if math.Abs(bu[i-1]) >= math.Abs(e) {
			piv := bu[i-1]
			if piv == 0 {
				piv = uzero
				bu[i-1] = piv
			}
			m := e / piv
			bu[i] = s.diag[i] - x - m*bv[i-1]
			bv[i] = next - m*bw[i-1]
			bw[i] = 0
			bm[i] = m
			s.flip[i] = false
		} else {
			m := bu[i-1] / e
			pv, pw := bv[i-1], bw[i-1]
			bu[i-1] = e
			bv[i-1] = s.diag[i] - x
			bw[i-1] = next
			bu[i] = pv - m*bv[i-1]
			bv[i] = pw - m*bw[i-1]
			bw[i] = 0
			bm[i] = m
			s.flip[i] = true
		}
	}
	if bu[n-1] == 0 {
		bu[n-1] = uzero
	}

	// Deterministic start vector with enough asymmetry to overlap
	// every eigenvector of structured (e.g. Toeplitz) tridiagonals.
	rv := s.rv
	for i := range rv {
		rv[i] = 1 + float64((uint32(i+1)*2654435761)>>22)/1024
	}

	const iters = 2
	for it := 0; it < iters; it++ {
		// Forward pass (skipped for the uniform first RHS would be the
		// EISPACK trick; replaying the elimination keeps it simple).
		if it > 0 {
			for i := 1; i < n; i++ {
				if s.flip[i] {
					rv[i-1], rv[i] = rv[i], rv[i-1]-bm[i]*rv[i]
				} else {
					rv[i] -= bm[i] * rv[i-1]
				}
			}
		}
		// Back substitution.
		rv[n-1] /= bu[n-1]
		if n > 1 {
			rv[n-2] = (rv[n-2] - bv[n-2]*rv[n-1]) / bu[n-2]
		}
		for i := n - 3; i >= 0; i-- {
			rv[i] = (rv[i] - bv[i]*rv[i+1] - bw[i]*rv[i+2]) / bu[i]
		}
		// Orthogonalize against the finished cluster members. When the
		// projection cancels most of the vector, what is left is
		// dominated by rounding noise from the subtraction, so run a
		// second pass over the cluster ("twice is enough"
		// reorthogonalization) before trusting the direction.
		nrm := Norm2(rv)
		for pass := 0; pass < 2 && j > group; pass++ {
			pre := nrm
			for g := group; g < j; g++ {
				zg := z.Row(g)
				c := Dot(rv, zg)
				for t := range rv {
					rv[t] -= c * zg[t]
				}
			}
			nrm = Norm2(rv)
			if nrm == 0 || nrm > 0.1*pre {
				break
			}
		}
		if nrm == 0 {
			// The iterate collapsed into the span of the cluster;
			// perturb the shift and restart a bounded number of times.
			if depth < 3 {
				return s.invIterate(y, z, group, j, x-eps3*float64(depth+1), tnorm, eps3, depth+1)
			}
			return false
		}
		inv := 1 / nrm
		for t := range rv {
			rv[t] *= inv
		}
	}
	copy(y, rv)
	return true
}

// checkVector verifies the residual ‖T·y − λ·y‖ of a computed unit
// eigenvector. The threshold is a coarse sanity net: clustered
// eigenvalues legitimately carry residuals up to the cluster width, so
// the check only rejects factorization-level failures.
func (s *SymEigTopK) checkVector(y []float64, lambda, tnorm float64) bool {
	n := s.n
	var resSq float64
	for i := 0; i < n; i++ {
		r := (s.diag[i] - lambda) * y[i]
		if i > 0 {
			r += s.sub[i] * y[i-1]
		}
		if i+1 < n {
			r += s.sub[i+1] * y[i+1]
		}
		resSq += r * r
	}
	return math.Sqrt(resSq) <= 1e-4*tnorm
}

// tredReduce reduces the symmetric matrix stored in w (n×n row-major,
// lower triangle authoritative) to tridiagonal form: diagonal left on
// w's diagonal, subdiagonal in sub (sub[0] unused), Householder
// scalars in hs with the corresponding scaled reflector vectors left
// in the rows of w (row i, elements 0..i−1). Unlike tred2 it does not
// accumulate the orthogonal transformation — back-transforms replay
// the stored reflectors — and its inner loops are arranged as
// unit-stride row sweeps (two-pass symmetric rank-2 update), which is
// what makes the reduction roughly three times cheaper in practice
// than tred2's accumulate-as-you-go formulation.
func tredReduce(w []float64, n int, hs, sub, p []float64) {
	hs[0] = 0
	sub[0] = 0
	for i := n - 1; i > 0; i-- {
		l := i - 1
		row := w[i*n : i*n+i] // elements 0..l
		if l == 0 {
			sub[i] = row[0]
			hs[i] = 0
			continue
		}
		var scale float64
		for _, v := range row {
			scale += math.Abs(v)
		}
		if scale == 0 {
			sub[i] = row[l]
			hs[i] = 0
			continue
		}
		inv := 1 / scale
		var h float64
		for t := range row {
			row[t] *= inv
			h += row[t] * row[t]
		}
		f := row[l]
		g := math.Sqrt(h)
		if f > 0 {
			g = -g
		}
		sub[i] = scale * g
		h -= f * g
		row[l] = f - g

		// p = A·u over the leading (l+1)² symmetric submatrix, using
		// only the lower triangle with unit-stride row passes.
		pp := p[:i]
		for t := range pp {
			pp[t] = 0
		}
		// Two rows per pass: the u and p streams are loaded once for
		// both, which is what lifts the sweep above the bandwidth of
		// the naive one-row formulation.
		kk := 0
		for ; kk+1 <= l; kk += 2 {
			rk0 := w[kk*n : kk*n+kk]         // row kk, cols 0..kk−1
			rk1 := w[(kk+1)*n : (kk+1)*n+kk] // row kk+1, cols 0..kk−1
			uk0, uk1 := row[kk], row[kk+1]
			ekk := w[(kk+1)*n+kk]
			var g0, g1 float64
			t0 := 0
			if kernelsASM && kk >= 4 {
				t0 = kk &^ 3
				g0, g1 = symv2(&rk0[0], &rk1[0], &row[0], &pp[0], t0, uk0, uk1)
			}
			for t := t0; t < kk; t++ {
				r0, r1, rt := rk0[t], rk1[t], row[t]
				g0 += r0 * rt
				g1 += r1 * rt
				pp[t] += r0*uk0 + r1*uk1
			}
			g1 += ekk * row[kk]
			pp[kk] += w[kk*n+kk]*uk0 + ekk*uk1 + g0
			pp[kk+1] += w[(kk+1)*n+kk+1]*uk1 + g1
		}
		if kk <= l {
			rk := w[kk*n : kk*n+kk]
			uk := row[kk]
			var g float64
			for t, wkt := range rk {
				g += wkt * row[t]
				pp[t] += wkt * uk
			}
			pp[kk] += w[kk*n+kk]*uk + g
		}
		var K float64
		hInv := 1 / h
		for t := range pp {
			pp[t] *= hInv
			K += pp[t] * row[t]
		}
		K *= 0.5 * hInv
		// q = p − K·u; rank-2 update A ← A − u·qᵀ − q·uᵀ (lower
		// triangle, unit stride).
		for t := range pp {
			pp[t] -= K * row[t]
		}
		jj := 0
		for ; jj+1 <= l; jj += 2 {
			wj0 := w[jj*n : jj*n+jj+1]
			wj1 := w[(jj+1)*n : (jj+1)*n+jj+2]
			uj0, qj0 := row[jj], pp[jj]
			uj1, qj1 := row[jj+1], pp[jj+1]
			t0 := 0
			if kernelsASM && jj >= 3 {
				t0 = (jj + 1) &^ 3
				rank2upd2(&wj0[0], &wj1[0], &row[0], &pp[0], t0, uj0, qj0, uj1, qj1)
			}
			for t := t0; t <= jj; t++ {
				pt, rt := pp[t], row[t]
				wj0[t] -= uj0*pt + qj0*rt
				wj1[t] -= uj1*pt + qj1*rt
			}
			wj1[jj+1] -= 2 * uj1 * qj1
		}
		if jj <= l {
			wj := w[jj*n : jj*n+jj+1]
			uj, qj := row[jj], pp[jj]
			for t := 0; t <= jj; t++ {
				wj[t] -= uj*pp[t] + qj*row[t]
			}
		}
		hs[i] = h
	}
}

// tqlValues diagonalises the symmetric tridiagonal (d, e) in place
// with the implicit-shift QL iteration, producing eigenvalues only —
// tql2 stripped of its rotation accumulation, with a guarded fast
// hypot on the rotation radii. On exit d holds the (unsorted)
// eigenvalues; e is destroyed. e uses tred-style indexing (e[i]
// couples rows i−1 and i; e[0] unused).
func tqlValues(d, e []float64, n int) {
	if n <= 1 {
		return
	}
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0

	const maxIter = 60
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= machEps*dd {
					break
				}
			}
			if m == l {
				break
			}
			if iter >= maxIter {
				break // accept the (very close) current values
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := fastHypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			underflow := false
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = fastHypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					underflow = true
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
			}
			if underflow {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
}

// sterfValues diagonalises a symmetric tridiagonal with the root-free
// Pal–Walker–Kahan QL variant (LAPACK's dsterf): d holds the diagonal,
// e2 the SQUARED subdiagonals in coupling order (e2[i] joins d[i] and
// d[i+1]; e2[n−1] unused). Working on squares removes the per-rotation
// hypot of the plain QL sweep — one square root per shift instead of
// one per rotation — which is what makes this the values-only fast
// path. On exit d holds the (unsorted) eigenvalues; e2 is destroyed.
func sterfValues(d, e2 []float64, n int) {
	if n <= 1 {
		return
	}
	eps2 := machEps * machEps
	const safmin = 0x1p-1022
	const maxIter = 60
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			m := l
			for ; m < n-1; m++ {
				if e2[m] <= eps2*math.Abs(d[m])*math.Abs(d[m+1])+safmin {
					break
				}
			}
			if m == l || iter >= maxIter {
				break // converged, or accept the (very close) current values
			}
			// Wilkinson shift from the 2×2 at the l end.
			rte := math.Sqrt(e2[l])
			sig := (d[l+1] - d[l]) / (2 * rte)
			r := fastHypot(sig, 1)
			sig = d[l] - rte/(sig+math.Copysign(r, sig))
			c, s := 1.0, 0.0
			gamma := d[m] - sig
			p := gamma * gamma
			for i := m - 1; i >= l; i-- {
				bb := e2[i]
				r := p + bb // > 0: bb passed the deflation test
				if i != m-1 {
					e2[i+1] = s * r
				}
				oldc := c
				rinv := 1 / r
				c = p * rinv
				s = bb * rinv
				oldgam := gamma
				alpha := d[i]
				gamma = c*(alpha-sig) - s*oldgam
				d[i+1] = oldgam + (alpha - gamma)
				if c != 0 {
					p = gamma * gamma / c
				} else {
					p = oldc * bb
				}
			}
			e2[l] = s * p
			d[l] = sig + gamma
		}
	}
}

// fastHypot is √(a²+b²) via the naive formula when both magnitudes are
// far from overflow and underflow — the QL inner loop calls it per
// rotation, and math.Hypot's generality costs several times the
// arithmetic — falling back to math.Hypot near the extremes.
func fastHypot(a, b float64) float64 {
	aa, ab := math.Abs(a), math.Abs(b)
	if aa < 1e150 && ab < 1e150 && (aa > 1e-150 || ab > 1e-150) {
		return math.Sqrt(a*a + b*b)
	}
	return math.Hypot(a, b)
}

// TransposeInto writes the first k columns of src into dst transposed:
// dst must be k×r for r×c src with k ≤ c, and row j of dst receives
// column j of src. It is the shared "columns to rows" copy of the FD
// shrink (Uᵀ extraction) and pca (Vᵀ components), tiled for cache
// friendliness on the strided source walk.
func TransposeInto(dst, src *Dense, k int) {
	if k < 0 || k > src.cols {
		panic(fmt.Sprintf("mat: TransposeInto k=%d with %d columns", k, src.cols))
	}
	if dst.rows != k || dst.cols != src.rows {
		panic(fmt.Sprintf("mat: TransposeInto dst %d×%d, want %d×%d", dst.rows, dst.cols, k, src.rows))
	}
	const tile = 32
	r, c := src.rows, src.cols
	for i0 := 0; i0 < r; i0 += tile {
		i1 := i0 + tile
		if i1 > r {
			i1 = r
		}
		for j0 := 0; j0 < k; j0 += tile {
			j1 := j0 + tile
			if j1 > k {
				j1 = k
			}
			for i := i0; i < i1; i++ {
				si := src.data[i*c:]
				for j := j0; j < j1; j++ {
					dst.data[j*dst.cols+i] = si[j]
				}
			}
		}
	}
}

// GramInto computes AᵀA of a into g (which must be square of a's
// column count), reusing g's storage — the allocation-free variant of
// Dense.Gram for hot paths that keep a scratch matrix. g is
// overwritten: the accumulating inner kernel requires a zeroed
// destination, so the wrapper clears it first.
func GramInto(g, a *Dense) {
	if g.rows != a.cols || g.cols != a.cols {
		panic(fmt.Sprintf("mat: GramInto dst %d×%d, want %d×%d", g.rows, g.cols, a.cols, a.cols))
	}
	for i := range g.data {
		g.data[i] = 0
	}
	gramInto(g, a)
}

// GramTInto computes AAᵀ of a into g (which must be square of a's row
// count), reusing g's storage — the allocation-free variant of
// Dense.GramT. Like GramInto it clears g before accumulating.
func GramTInto(g, a *Dense) {
	if g.rows != a.rows || g.cols != a.rows {
		panic(fmt.Sprintf("mat: GramTInto dst %d×%d, want %d×%d", g.rows, g.cols, a.rows, a.rows))
	}
	for i := range g.data {
		g.data[i] = 0
	}
	gramTInto(g, a)
}

// GramTTiledInto computes AAᵀ of a into g like GramTInto, but with a
// 2×2 register-tiled kernel that touches each input row half as often
// as the pairwise-dot formulation — roughly 1.7× faster at FD shrink
// shapes. Its accumulation order differs from GramTInto/Dense.GramT,
// so results agree only to rounding; callers that must reproduce the
// legacy bit pattern (the b=1, α=1 FD path) keep using GramTInto.
func GramTTiledInto(g, a *Dense) {
	if g.rows != a.rows || g.cols != a.rows {
		panic(fmt.Sprintf("mat: GramTTiledInto dst %d×%d, want %d×%d", g.rows, g.cols, a.rows, a.rows))
	}
	n, d := a.rows, a.cols
	gd := g.data
	asm := kernelsASM && d >= 4
	dm := d &^ 3
	i := 0
	for ; i+1 < n; i += 2 {
		ri0 := a.data[i*d : i*d+d]
		ri1 := a.data[(i+1)*d : (i+1)*d+d]
		j := i
		for ; j+3 < n; j += 4 {
			rj0 := a.data[j*d : j*d+d]
			rj1 := a.data[(j+1)*d : (j+1)*d+d]
			rj2 := a.data[(j+2)*d : (j+2)*d+d]
			rj3 := a.data[(j+3)*d : (j+3)*d+d]
			var c00, c01, c02, c03, c10, c11, c12, c13 float64
			t0 := 0
			if asm {
				var c [8]float64
				dotTile2x4(&ri0[0], &ri1[0], &rj0[0], &rj1[0], &rj2[0], &rj3[0], dm, &c)
				c00, c01, c02, c03 = c[0], c[1], c[2], c[3]
				c10, c11, c12, c13 = c[4], c[5], c[6], c[7]
				t0 = dm
			}
			for t := t0; t < d; t++ {
				x0, x1 := ri0[t], ri1[t]
				y0, y1 := rj0[t], rj1[t]
				c00 += x0 * y0
				c01 += x0 * y1
				c10 += x1 * y0
				c11 += x1 * y1
				y2, y3 := rj2[t], rj3[t]
				c02 += x0 * y2
				c03 += x0 * y3
				c12 += x1 * y2
				c13 += x1 * y3
			}
			gd[i*n+j] = c00
			gd[i*n+j+1] = c01
			gd[i*n+j+2] = c02
			gd[i*n+j+3] = c03
			gd[(i+1)*n+j] = c10
			gd[(i+1)*n+j+1] = c11
			gd[(i+1)*n+j+2] = c12
			gd[(i+1)*n+j+3] = c13
			gd[j*n+i] = c00
			gd[j*n+i+1] = c10
			gd[(j+1)*n+i] = c01
			gd[(j+1)*n+i+1] = c11
			gd[(j+2)*n+i] = c02
			gd[(j+2)*n+i+1] = c12
			gd[(j+3)*n+i] = c03
			gd[(j+3)*n+i+1] = c13
		}
		for ; j+1 < n; j += 2 {
			rj0 := a.data[j*d : j*d+d]
			rj1 := a.data[(j+1)*d : (j+1)*d+d]
			var c00, c01, c10, c11 float64
			for t, x0 := range ri0 {
				x1 := ri1[t]
				y0, y1 := rj0[t], rj1[t]
				c00 += x0 * y0
				c01 += x0 * y1
				c10 += x1 * y0
				c11 += x1 * y1
			}
			gd[i*n+j] = c00
			gd[i*n+j+1] = c01
			gd[(i+1)*n+j] = c10
			gd[(i+1)*n+j+1] = c11
			if j > i {
				gd[j*n+i] = c00
				gd[j*n+i+1] = c10
				gd[(j+1)*n+i] = c01
				gd[(j+1)*n+i+1] = c11
			}
		}
		if j < n { // ragged final column
			rj := a.data[j*d : j*d+d]
			var c0, c1 float64
			for t, y := range rj {
				c0 += ri0[t] * y
				c1 += ri1[t] * y
			}
			gd[i*n+j] = c0
			gd[(i+1)*n+j] = c1
			gd[j*n+i] = c0
			gd[j*n+i+1] = c1
		}
	}
	if i < n { // ragged final row: off-diagonals were mirrored above
		ri := a.data[i*d : i*d+d]
		var s float64
		for _, v := range ri {
			s += v * v
		}
		gd[i*n+i] = s
	}
}

// EigenSymTopK computes every eigenvalue (descending) of symmetric a
// but only the top k eigenvectors, returned as rows of a k×n matrix.
// It is the convenience form of SymEigTopK for one-shot callers; hot
// paths should hold a SymEigTopK to reuse its workspace.
func EigenSymTopK(a *Dense, k int) (vals []float64, vecsT *Dense) {
	var s SymEigTopK
	v := s.Values(a)
	out := make([]float64, len(v))
	copy(out, v)
	return out, s.VectorsT(k)
}
