package mat

func init() {
	kernelsASM = detectAVX2FMA()
}

// detectAVX2FMA checks, in order: CPUID leaf 7 exists; the FMA, AVX
// and OSXSAVE feature bits; that the OS has enabled YMM state saving
// (XCR0 bits 1 and 2 — without this executing an AVX instruction
// faults even on capable silicon); and finally AVX2 itself.
func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	const fmaBit, osxsaveBit, avxBit = 1 << 12, 1 << 27, 1 << 28
	_, _, c, _ := cpuidex(1, 0)
	if c&fmaBit == 0 || c&osxsaveBit == 0 || c&avxBit == 0 {
		return false
	}
	if lo, _ := xgetbv0(); lo&0x6 != 0x6 {
		return false
	}
	_, b, _, _ := cpuidex(7, 0)
	return b&(1<<5) != 0
}

//go:noescape
func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

// dotTile2x4 accumulates the eight dot products of {x0,x1}×{y0..y3}
// over the first n elements (n must be a multiple of 4) into out,
// ordered row-major: x0·y0, x0·y1, x0·y2, x0·y3, x1·y0, …
//
//go:noescape
func dotTile2x4(x0, x1, y0, y1, y2, y3 *float64, n int, out *[8]float64)

// axpy4x2 applies o_r += a[2r]·b0 + a[2r+1]·b1 for the four output
// rows over the first n elements (n must be a multiple of 4).
//
//go:noescape
func axpy4x2(a *[8]float64, b0, b1, o0, o1, o2, o3 *float64, n int)

// symv2 performs the fused two-row symmetric matrix–vector step of
// the tridiagonal reduction over the first n elements (n a multiple
// of 4): pp[t] += r0[t]·uk0 + r1[t]·uk1, and returns the running dot
// products g0 = Σ r0[t]·u[t], g1 = Σ r1[t]·u[t].
//
//go:noescape
func symv2(r0, r1, u, pp *float64, n int, uk0, uk1 float64) (g0, g1 float64)

// rank2upd2 applies the two-row symmetric rank-2 update over the
// first n elements (n a multiple of 4):
// w0[t] -= u0·q[t] + q0·u[t]; w1[t] -= u1·q[t] + q1·u[t].
//
//go:noescape
func rank2upd2(w0, w1, u, q *float64, n int, u0, q0, u1, q1 float64)

// dot2 returns the two dot products u·a and u·b over the first n
// elements (n a multiple of 4).
//
//go:noescape
func dot2(u, a, b *float64, n int) (s0, s1 float64)

// axpy2 applies a[t] -= g0·u[t]; b[t] -= g1·u[t] over the first n
// elements (n a multiple of 4).
//
//go:noescape
func axpy2(g0, g1 float64, u, a, b *float64, n int)
