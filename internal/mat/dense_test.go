package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("dims = %d×%d, want 3×4", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("entry (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewDenseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dims")
		}
	}()
	NewDense(-1, 2)
}

func TestNewDenseDataMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	NewDenseData(2, 2, []float64{1, 2, 3})
}

func TestSetAtRoundTrip(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := NewDense(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for index %v", idx)
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("dims = %d×%d", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v", m.At(2, 1))
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("dims = %d×%d, want 0×0", m.Rows(), m.Cols())
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestRowIsView(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.Row(0)[1] = 9
	if m.At(0, 1) != 9 {
		t.Fatal("Row should alias the backing store")
	}
}

func TestRowCopyIsCopy(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	r := m.RowCopy(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("RowCopy should not alias")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone should be independent")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("T dims = %d×%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randDense(rng, 5, 7)
	if !m.T().T().Equal(m, 0) {
		t.Fatal("Tᵀᵀ != identity")
	}
}

func TestMulAgainstHand(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randDense(rng, 4, 4)
	if !Mul(m, Identity(4)).Equal(m, 1e-12) {
		t.Fatal("M·I != M")
	}
	if !Mul(Identity(4), m).Equal(m, 1e-12) {
		t.Fatal("I·M != M")
	}
}

func TestGramMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 6, 4)
	want := Mul(a.T(), a)
	if !a.Gram().Equal(want, 1e-10) {
		t.Fatal("Gram != AᵀA")
	}
}

func TestGramTMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randDense(rng, 4, 6)
	want := Mul(a, a.T())
	if !a.GramT().Equal(want, 1e-10) {
		t.Fatal("GramT != AAᵀ")
	}
}

func TestAddOuterTo(t *testing.T) {
	g := NewDense(2, 2)
	AddOuterTo(g, []float64{1, 2}, 1)
	AddOuterTo(g, []float64{3, -1}, 2)
	want := FromRows([][]float64{
		{1 + 2*9, 2 + 2*(-3)},
		{2 + 2*(-3), 4 + 2*1},
	})
	if !g.Equal(want, 1e-12) {
		t.Fatalf("AddOuterTo = %v, want %v", g, want)
	}
}

func TestAddOuterToShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AddOuterTo(NewDense(2, 2), []float64{1, 2, 3}, 1)
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	got := a.MulVec([]float64{1, -1})
	if got[0] != -1 || got[1] != -1 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestDotAndNorms(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if SqNorm([]float64{3, 4}) != 25 {
		t.Fatal("SqNorm wrong")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Fatal("Norm2 wrong")
	}
}

func TestScaleAddSub(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 4}})
	a.Add(b)
	if a.At(0, 0) != 4 || a.At(0, 1) != 6 {
		t.Fatalf("Add = %v", a)
	}
	a.Sub(b)
	if a.At(0, 0) != 1 || a.At(0, 1) != 2 {
		t.Fatalf("Sub = %v", a)
	}
	a.Scale(3)
	if a.At(0, 0) != 3 || a.At(0, 1) != 6 {
		t.Fatalf("Scale = %v", a)
	}
}

func TestFrobenius(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 4}})
	if a.FrobeniusSq() != 25 {
		t.Fatalf("FrobeniusSq = %v", a.FrobeniusSq())
	}
	if a.Frobenius() != 5 {
		t.Fatalf("Frobenius = %v", a.Frobenius())
	}
}

func TestStack(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 4}, {5, 6}})
	s := Stack(a, b)
	if s.Rows() != 3 || s.At(2, 1) != 6 || s.At(0, 0) != 1 {
		t.Fatalf("Stack = %v", s)
	}
}

func TestStackNilAndEmpty(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	if s := Stack(nil, a); !s.Equal(a, 0) {
		t.Fatal("Stack(nil, a) != a")
	}
	if s := Stack(a, nil); !s.Equal(a, 0) {
		t.Fatal("Stack(a, nil) != a")
	}
	if s := Stack(nil, nil); s.Rows() != 0 {
		t.Fatal("Stack(nil, nil) not empty")
	}
	if s := Stack(NewDense(0, 5), a); !s.Equal(a, 0) {
		t.Fatal("Stack(empty, a) != a")
	}
}

func TestStackColumnMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Stack(NewDense(1, 2), NewDense(1, 3))
}

func TestMaxAbs(t *testing.T) {
	a := FromRows([][]float64{{-7, 2}, {3, 4}})
	if a.MaxAbs() != 7 {
		t.Fatalf("MaxAbs = %v", a.MaxAbs())
	}
	if NewDense(0, 0).MaxAbs() != 0 {
		t.Fatal("MaxAbs of empty should be 0")
	}
}

func TestStringDoesNotPanic(t *testing.T) {
	for _, m := range []*Dense{NewDense(0, 0), NewDense(2, 2), NewDense(20, 20)} {
		if s := m.String(); s == "" {
			t.Fatal("empty String()")
		}
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for random small matrices.
func TestMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a, b := randDense(rng, m, k), randDense(rng, k, n)
		return Mul(a, b).T().Equal(Mul(b.T(), a.T()), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: ‖A‖²_F equals the trace of AᵀA.
func TestFrobeniusTraceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randDense(r, 1+r.Intn(8), 1+r.Intn(8))
		g := a.Gram()
		var trace float64
		for i := 0; i < g.Rows(); i++ {
			trace += g.At(i, i)
		}
		return almostEqual(trace, a.FrobeniusSq(), 1e-9*(1+a.FrobeniusSq()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
