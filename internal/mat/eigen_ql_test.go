package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEigenSymQLMatchesJacobiEigenvalues(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{1, 2, 3, 5, 10, 30, 64} {
		a := randSym(rng, n)
		valsJ, _ := EigenSymJacobi(a)
		valsQ, _ := EigenSymQL(a)
		for i := range valsJ {
			if math.Abs(valsJ[i]-valsQ[i]) > 1e-8*(1+math.Abs(valsJ[i])) {
				t.Fatalf("n=%d: eigenvalue %d: Jacobi %v vs QL %v", n, i, valsJ[i], valsQ[i])
			}
		}
	}
}

func TestEigenSymQLReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, n := range []int{2, 4, 9, 25, 50} {
		a := randSym(rng, n)
		vals, v := EigenSymQL(a)
		if !reconstructEigen(vals, v).Equal(a, 1e-8*float64(n)) {
			t.Fatalf("n=%d: QL reconstruction failed", n)
		}
		if !Mul(v.T(), v).Equal(Identity(n), 1e-9*float64(n)) {
			t.Fatalf("n=%d: QL eigenvectors not orthonormal", n)
		}
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("n=%d: QL eigenvalues not sorted", n)
			}
		}
	}
}

func TestEigenSymQLEdgeCases(t *testing.T) {
	// Empty.
	vals, _ := EigenSymQL(NewDense(0, 0))
	if len(vals) != 0 {
		t.Fatal("0×0 should give no eigenvalues")
	}
	// 1×1.
	vals, v := EigenSymQL(FromRows([][]float64{{-3}}))
	if vals[0] != -3 || v.At(0, 0) != 1 {
		t.Fatalf("1×1: %v %v", vals, v)
	}
	// Zero matrix.
	vals, v = EigenSymQL(NewDense(5, 5))
	for _, val := range vals {
		if val != 0 {
			t.Fatalf("zero matrix vals = %v", vals)
		}
	}
	if !Mul(v.T(), v).Equal(Identity(5), 1e-12) {
		t.Fatal("zero matrix eigenvectors not orthonormal")
	}
	// Diagonal.
	a := FromRows([][]float64{{5, 0, 0}, {0, -2, 0}, {0, 0, 3}})
	vals, v = EigenSymQL(a)
	want := []float64{5, 3, -2}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("diagonal vals = %v", vals)
		}
	}
	if !reconstructEigen(vals, v).Equal(a, 1e-10) {
		t.Fatal("diagonal reconstruction failed")
	}
	// Repeated eigenvalues.
	a = Identity(6).Scale(2)
	vals, v = EigenSymQL(a)
	for _, val := range vals {
		if math.Abs(val-2) > 1e-12 {
			t.Fatalf("repeated vals = %v", vals)
		}
	}
	if !reconstructEigen(vals, v).Equal(a, 1e-10) {
		t.Fatal("repeated-eigenvalue reconstruction failed")
	}
}

func TestEigenSymQLNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EigenSymQL(NewDense(2, 3))
}

func TestEigenSymQLPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		a := randDense(rng, 5+rng.Intn(30), 3+rng.Intn(20))
		g := a.Gram()
		vals, v := EigenSymQL(g)
		if !reconstructEigen(vals, v).Equal(g, 1e-7*(1+g.MaxAbs())*float64(g.Rows())) {
			t.Fatalf("trial %d: PSD reconstruction failed", trial)
		}
		for _, val := range vals {
			if val < -1e-7*(1+g.MaxAbs()) {
				t.Fatalf("trial %d: PSD matrix has negative eigenvalue %v", trial, val)
			}
		}
	}
}

func TestEigenSymQLIllConditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	n := 6
	q := orthonormalize(randDense(rng, n, n))
	dm := NewDense(n, n)
	want := []float64{1e8, 1e4, 1, 1e-2, 1e-5, 0}
	for i, v := range want {
		dm.Set(i, i, v)
	}
	a := Mul(Mul(q, dm), q.T())
	at := a.T()
	a.Add(at).Scale(0.5)
	vals, _ := EigenSymQL(a)
	for i, w := range want {
		if math.Abs(vals[i]-w) > 1e-6*(1+w) {
			t.Fatalf("eigenvalue %d = %v, want %v", i, vals[i], w)
		}
	}
}

// Property: QL agrees with Jacobi on random symmetric matrices.
func TestEigenSymQLAgreementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		a := randSym(rng, n)
		valsJ, _ := EigenSymJacobi(a)
		valsQ, vq := EigenSymQL(a)
		for i := range valsJ {
			if math.Abs(valsJ[i]-valsQ[i]) > 1e-7*(1+math.Abs(valsJ[i])) {
				return false
			}
		}
		return reconstructEigen(valsQ, vq).Equal(a, 1e-7*float64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
