//go:build !amd64

package mat

// Stubs so the kernel call sites compile on non-amd64 targets.
// kernelsASM is never set there, so none of these are reachable.

func dotTile2x4(x0, x1, y0, y1, y2, y3 *float64, n int, out *[8]float64) {
	panic("mat: assembly kernel on non-amd64")
}

func axpy4x2(a *[8]float64, b0, b1, o0, o1, o2, o3 *float64, n int) {
	panic("mat: assembly kernel on non-amd64")
}

func symv2(r0, r1, u, pp *float64, n int, uk0, uk1 float64) (g0, g1 float64) {
	panic("mat: assembly kernel on non-amd64")
}

func rank2upd2(w0, w1, u, q *float64, n int, u0, q0, u1, q1 float64) {
	panic("mat: assembly kernel on non-amd64")
}

func dot2(u, a, b *float64, n int) (s0, s1 float64) {
	panic("mat: assembly kernel on non-amd64")
}

func axpy2(g0, g1 float64, u, a, b *float64, n int) {
	panic("mat: assembly kernel on non-amd64")
}
