package mat

import (
	"fmt"
	"math"
)

// QRResult holds a thin QR decomposition A = Q·R with Q (rows×k,
// orthonormal columns) and R (k×cols, upper triangular), k = min(rows,
// cols).
type QRResult struct {
	Q *Dense
	R *Dense
}

// QR computes a thin QR decomposition by Householder reflections —
// numerically stabler than Gram-Schmidt for the near-degenerate inputs
// the sketches produce (e.g. FD buffers right after a shrink).
func QR(a *Dense) QRResult {
	m, n := a.Dims()
	k := m
	if n < k {
		k = n
	}
	r := a.Clone()
	// vs stores the Householder vectors; applied later to build Q.
	vs := make([][]float64, 0, k)

	for j := 0; j < k; j++ {
		// Build the reflector for column j below the diagonal.
		v := make([]float64, m-j)
		var norm float64
		for i := j; i < m; i++ {
			v[i-j] = r.At(i, j)
			norm += v[i-j] * v[i-j]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			vs = append(vs, nil)
			continue
		}
		if v[0] >= 0 {
			v[0] += norm
		} else {
			v[0] -= norm
		}
		var vsq float64
		for _, x := range v {
			vsq += x * x
		}
		if vsq == 0 {
			vs = append(vs, nil)
			continue
		}
		// Apply (I − 2vvᵀ/vᵀv) to the trailing submatrix of R.
		for c := j; c < n; c++ {
			var dot float64
			for i := j; i < m; i++ {
				dot += v[i-j] * r.At(i, c)
			}
			f := 2 * dot / vsq
			for i := j; i < m; i++ {
				r.Set(i, c, r.At(i, c)-f*v[i-j])
			}
		}
		vs = append(vs, v)
	}

	// Zero the strictly-lower part of R (round-off residue) and trim.
	rOut := NewDense(k, n)
	for i := 0; i < k; i++ {
		for j := i; j < n; j++ {
			rOut.Set(i, j, r.At(i, j))
		}
	}

	// Build Q by applying the reflectors in reverse to the first k
	// columns of the identity.
	q := NewDense(m, k)
	for j := 0; j < k; j++ {
		q.Set(j, j, 1)
	}
	for j := len(vs) - 1; j >= 0; j-- {
		v := vs[j]
		if v == nil {
			continue
		}
		var vsq float64
		for _, x := range v {
			vsq += x * x
		}
		for c := 0; c < k; c++ {
			var dot float64
			for i := j; i < m; i++ {
				dot += v[i-j] * q.At(i, c)
			}
			f := 2 * dot / vsq
			for i := j; i < m; i++ {
				q.Set(i, c, q.At(i, c)-f*v[i-j])
			}
		}
	}
	return QRResult{Q: q, R: rOut}
}

// OrthonormalRows returns a k×d matrix with orthonormal rows spanning
// the row space of a's first k rows (k = min(rows, cols) when k ≤ 0).
// It is the library's canonical way to build orthonormal bases (used
// by the synthetic data generator and the PCA utilities).
func OrthonormalRows(a *Dense, k int) *Dense {
	m, d := a.Dims()
	lim := m
	if d < lim {
		lim = d
	}
	if k <= 0 || k > lim {
		k = lim
	}
	qr := QR(a.T())
	out := NewDense(k, d)
	for i := 0; i < k; i++ {
		for j := 0; j < d; j++ {
			out.Set(i, j, qr.Q.At(j, i))
		}
	}
	return out
}

// checkQRShapes is used by tests; exported logic stays above.
func checkQRShapes(a *Dense, res QRResult) error {
	m, n := a.Dims()
	k := m
	if n < k {
		k = n
	}
	if qr, qc := res.Q.Dims(); qr != m || qc != k {
		return fmt.Errorf("mat: Q is %d×%d, want %d×%d", qr, qc, m, k)
	}
	if rr, rc := res.R.Dims(); rr != k || rc != n {
		return fmt.Errorf("mat: R is %d×%d, want %d×%d", rr, rc, k, n)
	}
	return nil
}
