package registry

import (
	"fmt"
	"strings"

	"swsketch/internal/core"
	"swsketch/internal/stream"
	"swsketch/internal/window"
)

// Framework names accepted by Config.Framework; they match the -algo
// vocabulary of cmd/swserve and cmd/swstream.
const (
	// FrameworkSWR is the sampling-with-replacement sketch.
	FrameworkSWR = "swr"
	// FrameworkSWOR is the sampling-without-replacement sketch.
	FrameworkSWOR = "swor"
	// FrameworkSWORAll is the SWOR variant answering with every
	// candidate row.
	FrameworkSWORAll = "swor-all"
	// FrameworkLMFD is the Logarithmic Method over FrequentDirections
	// — the paper's recommended general-purpose sketch and the only
	// framework whose spill/restore is bit-exact deterministic.
	FrameworkLMFD = "lm-fd"
	// FrameworkLMHash is the Logarithmic Method over feature hashing.
	FrameworkLMHash = "lm-hash"
	// FrameworkDIFD is the Dyadic Interval framework over
	// FrequentDirections (sequence windows only).
	FrameworkDIFD = "di-fd"
	// FrameworkDSFD is the dump-snapshot FrequentDirections sketch
	// (sequence windows only): deterministic, spill/restore bit-exact,
	// with absolute covariance error within N·R/ℓ. R is optional — when
	// omitted the norm bound is tracked adaptively.
	FrameworkDSFD = "ds-fd"
	// FrameworkLMAMM is the Logarithmic Method over the COD co-sketch:
	// a paired-stream sketch answering windowed AᵀB (approximate matrix
	// multiplication) queries over stacked rows [a|b]. Requires DB (the
	// B-side suffix width); deterministic and spill/restore bit-exact.
	FrameworkLMAMM = "lm-amm"
	// FrameworkDIAMM is the Dyadic Interval framework over the COD
	// co-sketch (sequence windows only); same paired-stream contract as
	// lm-amm.
	FrameworkDIAMM = "di-amm"
)

// Frameworks returns every framework name the registry accepts, in
// documentation order. The conformance suite's coverage test asserts
// each is exercised by the shared contract battery.
func Frameworks() []string {
	return []string{
		FrameworkSWR, FrameworkSWOR, FrameworkSWORAll,
		FrameworkLMFD, FrameworkLMHash, FrameworkDIFD, FrameworkDSFD,
		FrameworkLMAMM, FrameworkDIAMM,
	}
}

// Window kind names accepted by Config.Window.
const (
	// WindowSequence selects a sequence-based window of Size rows.
	WindowSequence = "sequence"
	// WindowTime selects a time-based window of span Size.
	WindowTime = "time"
)

// Config declaratively describes one tenant's sliding-window sketch:
// the framework, the window, and the sketch-size knobs. It is the
// JSON body of PUT /v1/tenants/{id} and the header of a spill file,
// so a tenant can be rebuilt from its config plus a binary snapshot.
//
// Sizing is either explicit (Ell, and B for the LM frameworks) or
// automatic: leave Ell zero and set Eps to a target covariance error,
// and the swr/lm-fd frameworks size themselves via the harness
// calibration (core.AutoSWR / core.AutoLMFD).
type Config struct {
	// Framework selects the sketch family; one of the Framework
	// constants ("swr", "swor", "swor-all", "lm-fd", "lm-hash",
	// "di-fd", "ds-fd", "lm-amm", "di-amm").
	Framework string `json:"framework"`
	// Window is "sequence" (Size = N rows) or "time" (Size = span Δ).
	Window string `json:"window"`
	// Size is the window extent: the row count N for sequence windows
	// or the timestamp span Δ for time windows.
	Size float64 `json:"size"`
	// D is the row dimension. For the paired (AMM) frameworks it is the
	// TOTAL stacked dimension dA+dB: every ingest route moves stacked
	// rows [a|b], so the registry, WAL, and wire protocols treat paired
	// tenants exactly like single-stream ones.
	D int `json:"d"`
	// DB is the B-side suffix width for the paired (AMM) frameworks:
	// each stacked row splits as a = row[:D-DB], b = row[D-DB:].
	// Required for lm-amm/di-amm (0 < DB < D); disallowed elsewhere.
	DB int `json:"d_b,omitempty"`
	// Ell is the sketch-size parameter ℓ (rows per block for LM/DI,
	// sample budget for the samplers). Zero defers to Eps auto-sizing
	// where supported.
	Ell int `json:"ell,omitempty"`
	// B is the LM blocks-per-level knob (≈ 8/ε); ignored elsewhere.
	// Zero defaults to 8.
	B int `json:"b,omitempty"`
	// Eps is the target error used to auto-size the sketch when Ell is
	// zero (swr, lm-fd, ds-fd, and lm-amm).
	Eps float64 `json:"eps,omitempty"`
	// Seed seeds the samplers' random source and the hashing
	// frameworks' hash functions. Zero defaults to 1.
	Seed int64 `json:"seed,omitempty"`
	// L is the DI level count; required for di-fd and di-amm.
	L int `json:"levels,omitempty"`
	// R is the maximum squared row norm bound (stacked-row norm for the
	// paired frameworks); required for di-fd and di-amm, optional for
	// ds-fd (zero lets ds-fd track the bound adaptively).
	R float64 `json:"r,omitempty"`
	// FDBuffer is the FastFD working-buffer factor b applied to every
	// FrequentDirections or COD block sketch (the fd and amm
	// frameworks): the sketch buffers up to b·ℓ rows between amortized
	// shrinks. Zero and 1 both select the classic shrink-on-full
	// cadence — and the classic snapshot bytes; 2 is the benchmarked
	// recommendation.
	FDBuffer int `json:"fd_buffer,omitempty"`
	// FDAlpha is the FastFD shrink aggressiveness α ∈ (0,1] (fd and
	// amm frameworks); zero defaults to 1, the classic halving shrink.
	FDAlpha float64 `json:"fd_alpha,omitempty"`
}

// normalize fills defaulted fields and canonicalises the enum casing.
func (c Config) normalize() Config {
	c.Framework = strings.ToLower(strings.TrimSpace(c.Framework))
	c.Window = strings.ToLower(strings.TrimSpace(c.Window))
	if c.Window == "" {
		c.Window = WindowSequence
	}
	if c.B == 0 {
		c.B = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Validate checks the config without building a sketch; it reports
// the first problem found, phrased for an API error message.
func (c Config) Validate() error {
	c = c.normalize()
	switch c.Framework {
	case FrameworkSWR, FrameworkSWOR, FrameworkSWORAll, FrameworkLMFD, FrameworkLMHash,
		FrameworkDIFD, FrameworkDSFD, FrameworkLMAMM, FrameworkDIAMM:
	case "":
		return fmt.Errorf("framework is required")
	default:
		return fmt.Errorf("unknown framework %q", c.Framework)
	}
	switch c.Window {
	case WindowSequence, WindowTime:
	default:
		return fmt.Errorf("unknown window kind %q (want %q or %q)", c.Window, WindowSequence, WindowTime)
	}
	if c.Size <= 0 {
		return fmt.Errorf("window size must be positive, got %v", c.Size)
	}
	if c.Window == WindowSequence && c.Size != float64(int(c.Size)) {
		return fmt.Errorf("sequence window size must be an integer row count, got %v", c.Size)
	}
	if c.D < 1 {
		return fmt.Errorf("dimension d must be ≥ 1, got %d", c.D)
	}
	if c.Ell < 0 {
		return fmt.Errorf("ell must be ≥ 0, got %d", c.Ell)
	}
	switch c.Framework {
	case FrameworkLMAMM, FrameworkDIAMM:
		if c.DB < 1 || c.DB >= c.D {
			return fmt.Errorf("%s requires d_b in (0,d): the B-side suffix width of the stacked dimension d=%d, got %d", c.Framework, c.D, c.DB)
		}
	default:
		if c.DB != 0 {
			return fmt.Errorf("d_b applies to the paired (amm) frameworks only, not %q", c.Framework)
		}
	}
	if c.Ell == 0 {
		switch c.Framework {
		case FrameworkSWR, FrameworkLMFD, FrameworkDSFD, FrameworkLMAMM:
			if c.Eps <= 0 || c.Eps >= 1 {
				return fmt.Errorf("ell is zero, so eps must be in (0,1) to auto-size, got %v", c.Eps)
			}
		default:
			return fmt.Errorf("framework %q requires an explicit ell", c.Framework)
		}
	}
	if c.B < 0 {
		return fmt.Errorf("b must be ≥ 0, got %d", c.B)
	}
	if c.Framework == FrameworkDIFD || c.Framework == FrameworkDIAMM {
		if c.Window != WindowSequence {
			return fmt.Errorf("%s supports sequence windows only", c.Framework)
		}
		if c.L < 1 {
			return fmt.Errorf("%s requires levels ≥ 1, got %d", c.Framework, c.L)
		}
		if c.R <= 0 {
			return fmt.Errorf("%s requires a positive max squared row norm r, got %v", c.Framework, c.R)
		}
	}
	if c.Framework == FrameworkLMAMM && c.Ell != 0 && c.Ell < 2 {
		return fmt.Errorf("lm-amm requires ell ≥ 2, got %d", c.Ell)
	}
	if c.Framework == FrameworkDSFD {
		if c.Window != WindowSequence {
			return fmt.Errorf("ds-fd supports sequence windows only")
		}
		if c.Ell != 0 && c.Ell < 2 {
			return fmt.Errorf("ds-fd requires ell ≥ 2, got %d", c.Ell)
		}
		if c.R < 0 {
			return fmt.Errorf("ds-fd norm bound r must be ≥ 0 (0 = adaptive), got %v", c.R)
		}
	}
	if c.FDBuffer < 0 {
		return fmt.Errorf("fd_buffer must be ≥ 0, got %d", c.FDBuffer)
	}
	if c.FDAlpha < 0 || c.FDAlpha > 1 {
		return fmt.Errorf("fd_alpha must be in (0,1] (0 for the default), got %v", c.FDAlpha)
	}
	if c.FDBuffer != 0 || c.FDAlpha != 0 {
		switch c.Framework {
		case FrameworkLMFD, FrameworkDIFD, FrameworkDSFD, FrameworkLMAMM, FrameworkDIAMM:
		default:
			return fmt.Errorf("fd_buffer/fd_alpha apply to the FD and AMM frameworks only, not %q", c.Framework)
		}
	}
	return nil
}

// fdOpts translates the FastFD knobs into the stream-layer options;
// zero fields fall through to the classic defaults.
func (c Config) fdOpts() stream.FDOpts {
	return stream.FDOpts{Buffer: c.FDBuffer, Alpha: c.FDAlpha}
}

// algoName maps the framework to the sketch's Name() without building
// one (used when registering spilled stubs at startup).
func (c Config) algoName() string {
	switch c.normalize().Framework {
	case FrameworkSWR:
		return "SWR"
	case FrameworkSWOR:
		return "SWOR"
	case FrameworkSWORAll:
		return "SWOR-ALL"
	case FrameworkLMFD:
		return "LM-FD"
	case FrameworkLMHash:
		return "LM-HASH"
	case FrameworkDIFD:
		return "DI-FD"
	case FrameworkDSFD:
		return "DS-FD"
	case FrameworkLMAMM:
		return "LM-AMM"
	case FrameworkDIAMM:
		return "DI-AMM"
	}
	return c.Framework
}

// Spec returns the window specification the config describes.
func (c Config) Spec() window.Spec {
	c = c.normalize()
	if c.Window == WindowTime {
		return window.TimeSpan(c.Size)
	}
	return window.Seq(int(c.Size))
}

// Build validates the config and constructs the sketch it describes.
func (c Config) Build() (core.WindowSketch, error) {
	c = c.normalize()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	spec := c.Spec()
	switch c.Framework {
	case FrameworkSWR:
		if c.Ell == 0 {
			return core.AutoSWR(spec, c.D, c.Eps, c.Seed), nil
		}
		return core.NewSWR(spec, c.Ell, c.D, c.Seed), nil
	case FrameworkSWOR:
		return core.NewSWOR(spec, c.Ell, c.D, c.Seed), nil
	case FrameworkSWORAll:
		return core.NewSWORAll(spec, c.Ell, c.D, c.Seed), nil
	case FrameworkLMFD:
		if c.Ell == 0 {
			return core.AutoLMFDOpts(spec, c.D, c.Eps, c.fdOpts()), nil
		}
		return core.NewLMFDOpts(spec, c.D, c.Ell, c.B, c.fdOpts()), nil
	case FrameworkLMHash:
		return core.NewLMHash(spec, c.D, c.Ell, c.B, uint64(c.Seed)), nil
	case FrameworkDIFD:
		return core.NewDIFDOpts(core.DIConfig{
			N: int(c.Size), R: c.R, L: c.L, Ell: c.Ell, RSlack: 1.01,
		}, c.D, c.fdOpts()), nil
	case FrameworkDSFD:
		if c.Ell == 0 {
			return core.AutoDSFDOpts(int(c.Size), c.D, c.Eps, c.fdOpts()), nil
		}
		return core.NewDSFD(core.DSFDConfig{
			N: int(c.Size), Ell: c.Ell, R: c.R, RSlack: 1.01, FD: c.fdOpts(),
		}, c.D), nil
	case FrameworkLMAMM:
		if c.Ell == 0 {
			return core.AutoAMM(spec, c.D-c.DB, c.DB, c.Eps), nil
		}
		return core.NewLMAMMOpts(spec, c.D-c.DB, c.DB, c.Ell, c.B, c.fdOpts()), nil
	case FrameworkDIAMM:
		return core.NewDIAMMOpts(core.DIConfig{
			N: int(c.Size), R: c.R, L: c.L, Ell: c.Ell, RSlack: 1.01,
		}, c.D-c.DB, c.DB, c.fdOpts()), nil
	}
	return nil, fmt.Errorf("unknown framework %q", c.Framework)
}
