package registry

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"swsketch/internal/core"
	"swsketch/internal/mat"
	"swsketch/internal/obs"
	"swsketch/internal/trace"
)

// lmCfg is the deterministic workhorse config used across the tests.
func lmCfg(d int) Config {
	return Config{Framework: "lm-fd", Window: "sequence", Size: 64, D: d, Ell: 8, B: 4}
}

// fakeClock is a settable time source for TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// ingestRows pushes a deterministic stream into a tenant through the
// Acquire/Release protocol, like the serve layer does.
func ingestRows(t *testing.T, tn *Tenant, d, n int, t0 float64) {
	t.Helper()
	if err := tn.Acquire(); err != nil {
		t.Fatalf("Acquire(%s): %v", tn.ID(), err)
	}
	defer tn.Release()
	rows := make([][]float64, n)
	times := make([]float64, n)
	for i := range rows {
		r := make([]float64, d)
		for j := range r {
			r[j] = math.Sin(float64(i*d+j)) + 0.1*float64(j)
		}
		rows[i] = r
		times[i] = t0 + float64(i)
	}
	tn.Sketch().UpdateBatch(rows, times)
	tn.Commit(n, times[n-1])
}

// queryBits snapshots a tenant's approximation as raw float64 bits.
func queryBits(t *testing.T, tn *Tenant, at float64) [][]uint64 {
	t.Helper()
	if err := tn.Acquire(); err != nil {
		t.Fatalf("Acquire(%s): %v", tn.ID(), err)
	}
	defer tn.Release()
	return denseBits(tn.Sketch().Query(at))
}

func denseBits(b *mat.Dense) [][]uint64 {
	out := make([][]uint64, b.Rows())
	for i := range out {
		out[i] = make([]uint64, b.Cols())
		for j := range out[i] {
			out[i][j] = math.Float64bits(b.At(i, j))
		}
	}
	return out
}

func bitsEqual(a, b [][]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func mustNew(t *testing.T, opts ...Option) *Registry {
	t.Helper()
	r, err := New(opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error; "" = valid
	}{
		{"lm-fd ok", lmCfg(4), ""},
		{"auto lm-fd", Config{Framework: "lm-fd", Size: 100, D: 4, Eps: 0.2}, ""},
		{"auto swr", Config{Framework: "SWR", Window: "time", Size: 9.5, D: 4, Eps: 0.3}, ""},
		{"di ok", Config{Framework: "di-fd", Size: 64, D: 4, Ell: 8, L: 3, R: 1}, ""},
		{"no framework", Config{Size: 10, D: 4, Ell: 4}, "framework is required"},
		{"bad framework", Config{Framework: "fd", Size: 10, D: 4, Ell: 4}, "unknown framework"},
		{"bad window", Config{Framework: "lm-fd", Window: "hour", Size: 10, D: 4, Ell: 4}, "unknown window kind"},
		{"bad size", Config{Framework: "lm-fd", Size: 0, D: 4, Ell: 4}, "size must be positive"},
		{"frac seq size", Config{Framework: "lm-fd", Size: 10.5, D: 4, Ell: 4}, "integer row count"},
		{"bad d", Config{Framework: "lm-fd", Size: 10, Ell: 4}, "dimension d"},
		{"no ell no eps", Config{Framework: "swor", Size: 10, D: 4}, "explicit ell"},
		{"auto needs eps", Config{Framework: "lm-fd", Size: 10, D: 4}, "eps must be in (0,1)"},
		{"di time", Config{Framework: "di-fd", Window: "time", Size: 10, D: 4, Ell: 4, L: 2, R: 1}, "sequence windows only"},
		{"di no levels", Config{Framework: "di-fd", Size: 10, D: 4, Ell: 4, R: 1}, "levels"},
		{"di no r", Config{Framework: "di-fd", Size: 10, D: 4, Ell: 4, L: 2}, "squared row norm"},
		{"ds ok", Config{Framework: "ds-fd", Size: 64, D: 4, Ell: 8}, ""},
		{"ds declared r", Config{Framework: "ds-fd", Size: 64, D: 4, Ell: 8, R: 2.5}, ""},
		{"auto ds-fd", Config{Framework: "ds-fd", Size: 100, D: 4, Eps: 0.25}, ""},
		{"ds time", Config{Framework: "ds-fd", Window: "time", Size: 10, D: 4, Ell: 8}, "sequence windows only"},
		{"ds tiny ell", Config{Framework: "ds-fd", Size: 64, D: 4, Ell: 1}, "ell ≥ 2"},
		{"ds negative r", Config{Framework: "ds-fd", Size: 64, D: 4, Ell: 8, R: -1}, "norm bound"},
		{"fastfd lm-fd", Config{Framework: "lm-fd", Size: 10, D: 4, Ell: 4, FDBuffer: 2, FDAlpha: 0.5}, ""},
		{"fastfd di-fd", Config{Framework: "di-fd", Size: 64, D: 4, Ell: 8, L: 3, R: 1, FDBuffer: 2}, ""},
		{"fastfd auto lm-fd", Config{Framework: "lm-fd", Size: 100, D: 4, Eps: 0.2, FDBuffer: 4}, ""},
		{"bad fd buffer", Config{Framework: "lm-fd", Size: 10, D: 4, Ell: 4, FDBuffer: -1}, "fd_buffer"},
		{"bad fd alpha", Config{Framework: "lm-fd", Size: 10, D: 4, Ell: 4, FDAlpha: 1.5}, "fd_alpha"},
		{"fastfd ds-fd", Config{Framework: "ds-fd", Size: 64, D: 4, Ell: 8, FDBuffer: 2, FDAlpha: 0.5}, ""},
		{"fd knobs on swr", Config{Framework: "swr", Size: 10, D: 4, Ell: 4, FDBuffer: 2}, "FD and AMM frameworks only"},
		{"fd alpha on hash", Config{Framework: "lm-hash", Size: 10, D: 4, Ell: 4, FDAlpha: 0.5}, "FD and AMM frameworks only"},
		{"lm-amm ok", Config{Framework: "lm-amm", Size: 48, D: 6, DB: 2, Ell: 8, B: 4}, ""},
		{"auto lm-amm", Config{Framework: "lm-amm", Size: 100, D: 6, DB: 2, Eps: 0.2}, ""},
		{"lm-amm time", Config{Framework: "lm-amm", Window: "time", Size: 9.5, D: 6, DB: 2, Ell: 8}, ""},
		{"fastfd lm-amm", Config{Framework: "lm-amm", Size: 48, D: 6, DB: 2, Ell: 8, FDBuffer: 2, FDAlpha: 0.5}, ""},
		{"di-amm ok", Config{Framework: "di-amm", Size: 64, D: 6, DB: 3, Ell: 8, L: 3, R: 4}, ""},
		{"amm no db", Config{Framework: "lm-amm", Size: 48, D: 6, Ell: 8}, "d_b in (0,d)"},
		{"amm db too wide", Config{Framework: "lm-amm", Size: 48, D: 6, DB: 6, Ell: 8}, "d_b in (0,d)"},
		{"amm negative db", Config{Framework: "di-amm", Size: 64, D: 6, DB: -1, Ell: 8, L: 3, R: 4}, "d_b in (0,d)"},
		{"db on lm-fd", Config{Framework: "lm-fd", Size: 48, D: 6, DB: 2, Ell: 8}, "paired (amm) frameworks only"},
		{"db on swr", Config{Framework: "swr", Size: 48, D: 6, DB: 2, Ell: 8}, "paired (amm) frameworks only"},
		{"di-amm time", Config{Framework: "di-amm", Window: "time", Size: 10, D: 6, DB: 2, Ell: 8, L: 3, R: 4}, "sequence windows only"},
		{"di-amm no r", Config{Framework: "di-amm", Size: 64, D: 6, DB: 3, Ell: 8, L: 3}, "squared row norm"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestConfigDSFDFDOptsPassThrough asserts the fd_buffer/fd_alpha knobs
// reach the DS-FD frame sketches: the built sketch reports them via
// its Stats, and the default config reports the classic cadence.
func TestConfigDSFDFDOptsPassThrough(t *testing.T) {
	tuned, err := Config{Framework: "ds-fd", Size: 64, D: 4, Ell: 8, FDBuffer: 3, FDAlpha: 0.5}.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := tuned.(core.Introspector).Stats()
	if st["fd_buffer"] != 3 || st["fd_alpha"] != 0.5 {
		t.Fatalf("FastFD knobs not passed through: buffer=%v alpha=%v", st["fd_buffer"], st["fd_alpha"])
	}
	classic, err := Config{Framework: "ds-fd", Size: 64, D: 4, Ell: 8}.Build()
	if err != nil {
		t.Fatal(err)
	}
	st = classic.(core.Introspector).Stats()
	if st["fd_buffer"] != 1 || st["fd_alpha"] != 1 {
		t.Fatalf("default config is not the classic cadence: buffer=%v alpha=%v", st["fd_buffer"], st["fd_alpha"])
	}
}

func TestConfigBuildNames(t *testing.T) {
	cases := []struct {
		cfg  Config
		name string
	}{
		{Config{Framework: "swr", Size: 16, D: 3, Ell: 4}, "SWR"},
		{Config{Framework: "swor", Size: 16, D: 3, Ell: 4}, "SWOR"},
		{Config{Framework: "swor-all", Size: 16, D: 3, Ell: 4}, "SWOR-ALL"},
		{Config{Framework: "lm-fd", Size: 16, D: 3, Ell: 4}, "LM-FD"},
		{Config{Framework: "lm-hash", Size: 16, D: 3, Ell: 4}, "LM-HASH"},
		{Config{Framework: "di-fd", Size: 16, D: 3, Ell: 4, L: 2, R: 1}, "DI-FD"},
		{Config{Framework: "ds-fd", Size: 16, D: 3, Ell: 4}, "DS-FD"},
		{Config{Framework: "lm-amm", Size: 16, D: 3, DB: 1, Ell: 4}, "LM-AMM"},
		{Config{Framework: "di-amm", Size: 16, D: 3, DB: 1, Ell: 4, L: 2, R: 4}, "DI-AMM"},
	}
	for _, tc := range cases {
		sk, err := tc.cfg.Build()
		if err != nil {
			t.Fatalf("Build(%s): %v", tc.cfg.Framework, err)
		}
		if sk.Name() != tc.name {
			t.Errorf("Build(%s).Name() = %q, want %q", tc.cfg.Framework, sk.Name(), tc.name)
		}
		if got := tc.cfg.algoName(); got != tc.name {
			t.Errorf("algoName(%s) = %q, want %q", tc.cfg.Framework, got, tc.name)
		}
	}
}

func TestCreateGetDelete(t *testing.T) {
	r := mustNew(t)
	tn, err := r.Create("alpha", lmCfg(4))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if tn.ID() != "alpha" || tn.Algorithm() != "LM-FD" || tn.D() != 4 {
		t.Fatalf("tenant = %q/%q/d=%d", tn.ID(), tn.Algorithm(), tn.D())
	}
	if _, err := r.Create("alpha", lmCfg(4)); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Create error = %v, want ErrExists", err)
	}
	if _, err := r.Create("", lmCfg(4)); !errors.Is(err, ErrBadID) {
		t.Fatalf("empty-ID Create error = %v, want ErrBadID", err)
	}
	if _, err := r.Create(strings.Repeat("x", MaxIDLen+1), lmCfg(4)); !errors.Is(err, ErrBadID) {
		t.Fatalf("long-ID Create error = %v, want ErrBadID", err)
	}
	got, ok := r.Get("alpha")
	if !ok || got != tn {
		t.Fatalf("Get = %v,%v", got, ok)
	}
	if _, ok := r.Get("missing"); ok {
		t.Fatal("Get(missing) found a tenant")
	}
	ingestRows(t, tn, 4, 100, 0)
	if tn.Updates() != 100 {
		t.Fatalf("Updates = %d, want 100", tn.Updates())
	}
	if tn.Rows() == 0 {
		t.Fatal("Rows = 0 after ingest+release")
	}
	infos := r.List()
	if len(infos) != 1 || infos[0].ID != "alpha" || !infos[0].Resident || infos[0].Updates != 100 {
		t.Fatalf("List = %+v", infos)
	}
	if !r.Delete("alpha") {
		t.Fatal("Delete(alpha) = false")
	}
	if r.Delete("alpha") {
		t.Fatal("second Delete(alpha) = true")
	}
	if err := tn.Acquire(); !errors.Is(err, ErrDeleted) {
		t.Fatalf("Acquire after delete = %v, want ErrDeleted", err)
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after delete", r.Len())
	}
}

func TestTenantClock(t *testing.T) {
	r := mustNew(t)
	tn, err := r.Create("c", lmCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.Acquire(); err != nil {
		t.Fatal(err)
	}
	if lastT, seen := tn.Clock(); seen || lastT != 0 {
		t.Fatalf("fresh clock = %v,%v", lastT, seen)
	}
	tn.Sketch().Update([]float64{1, 2, 3}, 7)
	tn.Commit(1, 7)
	if lastT, seen := tn.Clock(); !seen || lastT != 7 {
		t.Fatalf("clock = %v,%v after commit", lastT, seen)
	}
	tn.ResetClock()
	if lastT, seen := tn.Clock(); seen || lastT != 0 || tn.Updates() != 0 {
		t.Fatalf("clock = %v,%v,%d after reset", lastT, seen, tn.Updates())
	}
	tn.Release()
}

func TestSweepSpillsAndRestores(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	dir := t.TempDir()
	tr := trace.New(64)
	tr.Enable()
	reg := obs.NewRegistry()
	r := mustNew(t,
		WithSpillDir(dir),
		WithEvictTTL(time.Minute),
		WithClock(clk.Now),
		WithObs(reg),
		WithTrace(tr),
	)
	tn, err := r.Create("spillme", lmCfg(6))
	if err != nil {
		t.Fatal(err)
	}
	ingestRows(t, tn, 6, 200, 0)
	before := queryBits(t, tn, 199)
	wantUpdates := tn.Updates()

	if n := r.Sweep(); n != 0 {
		t.Fatalf("Sweep before TTL evicted %d", n)
	}
	clk.Advance(2 * time.Minute)
	if n := r.Sweep(); n != 1 {
		t.Fatalf("Sweep after TTL evicted %d, want 1", n)
	}
	if tn.Resident() {
		t.Fatal("tenant still resident after spill")
	}
	res, sp := r.counts()
	if res != 0 || sp != 1 {
		t.Fatalf("counts = %d resident, %d spilled", res, sp)
	}
	// The evicted tenant restores transparently and answers
	// bit-identically to the never-evicted state.
	after := queryBits(t, tn, 199)
	if !tn.Resident() {
		t.Fatal("tenant not resident after touch")
	}
	if !bitsEqual(before, after) {
		t.Fatal("restored approximation differs from pre-evict answer")
	}
	if tn.Updates() != wantUpdates {
		t.Fatalf("Updates = %d after restore, want %d", tn.Updates(), wantUpdates)
	}
	// The clock survives the round trip: next ingest continues at the
	// pre-evict position.
	ingestRows(t, tn, 6, 10, 200)

	counts := tr.Counts()
	if counts[trace.KindTenantEvict].Count != 1 || counts[trace.KindTenantRestore].Count != 1 {
		t.Fatalf("trace counts = %+v", counts)
	}
	exp := reg.Expose()
	for _, want := range []string{
		"swsketch_registry_tenants_created_total 1",
		`swsketch_registry_tenants_evicted_total{mode="spill"} 1`,
		"swsketch_registry_tenants_restored_total 1",
		`swsketch_registry_tenant_rows{tenant="spillme"}`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestSweepDropsWithoutSpillDir(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := mustNew(t, WithEvictTTL(time.Minute), WithClock(clk.Now))
	tn, err := r.Create("dropme", lmCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	ingestRows(t, tn, 4, 50, 0)
	clk.Advance(time.Hour)
	if n := r.Sweep(); n != 1 {
		t.Fatalf("Sweep evicted %d, want 1", n)
	}
	if _, ok := r.Get("dropme"); ok {
		t.Fatal("dropped tenant still registered")
	}
	if err := tn.Acquire(); !errors.Is(err, ErrDeleted) {
		t.Fatalf("Acquire after drop = %v, want ErrDeleted", err)
	}
}

func TestSweepSkipsPinnedAndBusy(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := mustNew(t, WithEvictTTL(time.Minute), WithClock(clk.Now))
	cfg := lmCfg(4)
	sk, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Adopt("default", sk, 4); err != nil {
		t.Fatal(err)
	}
	busy, err := r.Create("busy", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := busy.Acquire(); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Hour)
	if n := r.Sweep(); n != 0 {
		t.Fatalf("Sweep evicted %d pinned/busy tenants", n)
	}
	busy.Release()
	// Release re-stamps recency, so the former holder is fresh again.
	if n := r.Sweep(); n != 0 {
		t.Fatalf("Sweep evicted %d, want 0 (release touched)", n)
	}
	clk.Advance(time.Hour)
	if n := r.Sweep(); n != 1 {
		t.Fatalf("Sweep evicted %d, want 1 (busy tenant, now idle)", n)
	}
	if def, ok := r.Get("default"); !ok || !def.Resident() {
		t.Fatal("pinned default tenant was evicted")
	}
}

func TestMaxTenantsLRU(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := mustNew(t, WithShards(1), WithMaxTenants(2), WithClock(clk.Now))
	for _, id := range []string{"a", "b"} {
		if _, err := r.Create(id, lmCfg(4)); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
	}
	// Touch "a" so "b" is the LRU victim.
	if _, ok := r.Get("a"); !ok {
		t.Fatal("Get(a)")
	}
	clk.Advance(time.Second)
	if _, err := r.Create("c", lmCfg(4)); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("b"); ok {
		t.Fatal("LRU victim b still registered (no spill dir: drop)")
	}
	for _, id := range []string{"a", "c"} {
		if _, ok := r.Get(id); !ok {
			t.Fatalf("tenant %s missing after cap eviction", id)
		}
	}
}

func TestMaxTenantsSpillsWithDir(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := mustNew(t, WithShards(1), WithMaxTenants(2), WithClock(clk.Now), WithSpillDir(t.TempDir()))
	a, err := r.Create("a", lmCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	ingestRows(t, a, 4, 30, 0)
	pre := queryBits(t, a, 29)
	clk.Advance(time.Second)
	if _, err := r.Create("b", lmCfg(4)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if _, err := r.Create("c", lmCfg(4)); err != nil {
		t.Fatal(err)
	}
	if a.Resident() {
		t.Fatal("LRU victim a still resident")
	}
	if got, ok := r.Get("a"); !ok || got != a {
		t.Fatal("spilled tenant a left the registry")
	}
	if post := queryBits(t, a, 29); !bitsEqual(pre, post) {
		t.Fatal("cap-evicted tenant restored to different state")
	}
}
