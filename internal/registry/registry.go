// Package registry is the multi-tenant serving layer over the sketch
// stack: a sharded, concurrency-safe registry of named sliding-window
// sketches, each created from a declarative Config (framework, window,
// sizing). It is what lets one process host many independent windows —
// the serve layer mounts it under /v1/tenants/{id}/...
//
// Design:
//
//   - Striped locking. Tenants hash (FNV-1a) onto a power-of-two
//     number of shards sized to GOMAXPROCS, each a small map under its
//     own RWMutex, so lookups and creations on different tenants do
//     not contend. Sketch access itself serialises on a per-tenant
//     mutex (Tenant.Acquire/Release): ingest into different tenants is
//     fully parallel, ingest into one tenant is single-writer.
//   - Idle eviction. With WithEvictTTL, Sweep evicts tenants idle
//     longer than the TTL; with WithMaxTenants, Create evicts the
//     least-recently-used tenant of a full shard (the cap is striped
//     across shards, so it is enforced approximately). Eviction
//     *spills* — snapshots the sketch plus its config and clock to the
//     WithSpillDir directory — when the sketch supports binary
//     snapshots, and drops the tenant otherwise. A spilled tenant is
//     restored transparently on its next Acquire; restore is
//     bit-exact for deterministic sketches (LM-FD).
//   - Observability. WithObs publishes aggregate counters/gauges and a
//     per-tenant row-count gauge set; WithTrace emits tenant_create /
//     tenant_evict / tenant_restore / tenant_delete events.
//
// The registry itself starts no goroutines: call Sweep from a ticker
// (cmd/swserve does) or rely on the Create-time LRU cap.
package registry

import (
	"encoding"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"swsketch/internal/core"
	"swsketch/internal/obs"
	"swsketch/internal/trace"
)

// Sentinel errors returned by Create.
var (
	// ErrExists reports a Create with an ID already in the registry
	// (including spilled tenants awaiting restore).
	ErrExists = errors.New("registry: tenant already exists")
	// ErrBadID reports an empty or over-long tenant ID.
	ErrBadID = errors.New("registry: tenant ID must be 1..128 bytes")
)

// MaxIDLen bounds tenant ID length (spill filenames and metric labels
// stay sane).
const MaxIDLen = 128

// Option configures a Registry; see WithMaxTenants, WithEvictTTL,
// WithSpillDir, WithObs, WithTrace, WithShards, WithClock.
type Option func(*Registry)

// WithMaxTenants caps resident tenants: a Create into a full shard
// first evicts that shard's least-recently-used unpinned tenant. The
// cap is striped across shards (ceil(n/shards) per shard), so it is
// enforced approximately, and a shard whose tenants are all busy or
// pinned may briefly exceed it rather than block ingest.
func WithMaxTenants(n int) Option {
	return func(r *Registry) {
		if n < 1 {
			panic(fmt.Sprintf("registry: max tenants %d", n))
		}
		r.maxTenants = n
	}
}

// WithEvictTTL marks tenants idle longer than ttl as evictable by
// Sweep. The registry does not sweep by itself; run Sweep on a ticker.
func WithEvictTTL(ttl time.Duration) Option {
	return func(r *Registry) {
		if ttl <= 0 {
			panic(fmt.Sprintf("registry: evict TTL %v", ttl))
		}
		r.ttl = ttl
	}
}

// WithSpillDir enables snapshot-to-disk eviction: evicted tenants
// whose sketch supports binary snapshots are written to dir (created
// if missing) and restored transparently on their next touch. At
// construction the directory is scanned and every valid spill file is
// registered as a spilled tenant, so a restarted process resumes its
// tenant set lazily.
func WithSpillDir(dir string) Option {
	return func(r *Registry) {
		if dir == "" {
			panic("registry: empty spill dir")
		}
		r.spillDir = dir
	}
}

// WithObs publishes registry metrics into reg: tenant lifecycle
// counters (created/evicted/restored/deleted), resident and spilled
// gauges, and a per-tenant rows gauge set (one series per tenant —
// mind the cardinality with very large fleets).
func WithObs(reg *obs.Registry) Option {
	return func(r *Registry) { r.obs = reg }
}

// WithTrace emits tenant lifecycle events (tenant_create,
// tenant_evict, tenant_restore, tenant_delete) into tr.
func WithTrace(tr *trace.Tracer) Option {
	return func(r *Registry) { r.tr = tr }
}

// WithShards overrides the shard count (rounded up to a power of two;
// the default is GOMAXPROCS rounded likewise). Mostly for tests.
func WithShards(n int) Option {
	return func(r *Registry) {
		if n < 1 {
			panic(fmt.Sprintf("registry: shards %d", n))
		}
		r.nshards = n
	}
}

// WithClock overrides the time source used for recency stamps and TTL
// decisions. For tests.
func WithClock(now func() time.Time) Option {
	return func(r *Registry) { r.now = now }
}

// WithEvictHook registers fn to run whenever a tenant's in-memory
// state leaves the registry: after a successful spill (spilled=true)
// and after a drop or explicit Delete (spilled=false). The serve
// layer uses it to release the tenant's WAL records for truncation —
// a spilled or deleted tenant no longer needs them for recovery. fn
// may run with registry locks held and must not call back into the
// registry.
func WithEvictHook(fn func(id string, spilled bool)) Option {
	return func(r *Registry) { r.evictHook = fn }
}

// SetEvictHook installs the WithEvictHook callback after construction
// — the serve layer wires its WAL into a caller-built registry this
// way. Call it before the registry takes traffic; it is not
// synchronised against concurrent evictions.
func (r *Registry) SetEvictHook(fn func(id string, spilled bool)) { r.evictHook = fn }

// WithTouchHook registers fn to run after every successful tenant
// Acquire, identifying the tenant. The serve layer feeds it to the
// hot-key sidecar as a per-request activity signal. fn runs with the
// tenant's lock held on the acquiring goroutine's hot path, so it
// must be cheap and must not call back into the registry.
func WithTouchHook(fn func(id string)) Option {
	return func(r *Registry) { r.touchHook = fn }
}

// SetTouchHook installs the WithTouchHook callback after construction
// (the serve layer wires caller-built registries this way). Call it
// before the registry takes traffic; it is not synchronised against
// concurrent acquisitions.
func (r *Registry) SetTouchHook(fn func(id string)) { r.touchHook = fn }

// shard is one lock stripe: a map of tenants under its own RWMutex.
type shard struct {
	mu      sync.RWMutex
	tenants map[string]*Tenant
}

// Registry is a sharded collection of named tenants. Safe for
// concurrent use by any number of goroutines.
type Registry struct {
	shards  []*shard
	mask    uint64
	nshards int

	maxTenants  int
	maxPerShard int
	ttl         time.Duration
	spillDir    string
	obs         *obs.Registry
	tr          *trace.Tracer
	now         func() time.Time

	evictHook func(id string, spilled bool)
	touchHook func(id string)

	created, restored, deleted *obs.Counter
	evictSpilled, evictDropped *obs.Counter
	spillErrors                *obs.Counter
}

// New builds a registry. The only fallible option is WithSpillDir
// (directory creation and the startup scan of existing spill files);
// without it New cannot fail.
func New(opts ...Option) (*Registry, error) {
	r := &Registry{now: time.Now}
	for _, o := range opts {
		o(r)
	}
	if r.nshards == 0 {
		r.nshards = runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < r.nshards {
		n <<= 1
	}
	r.nshards = n
	r.mask = uint64(n - 1)
	r.shards = make([]*shard, n)
	for i := range r.shards {
		r.shards[i] = &shard{tenants: make(map[string]*Tenant)}
	}
	if r.maxTenants > 0 {
		r.maxPerShard = (r.maxTenants + n - 1) / n
	}
	if r.obs != nil {
		r.registerMetrics()
	}
	if r.spillDir != "" {
		if err := os.MkdirAll(r.spillDir, 0o755); err != nil {
			return nil, fmt.Errorf("registry: spill dir: %w", err)
		}
		if err := r.scanSpillDir(); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// registerMetrics wires the aggregate counters/gauges and the
// per-tenant rows gauge set into the obs registry.
func (r *Registry) registerMetrics() {
	r.created = r.obs.Counter("swsketch_registry_tenants_created_total",
		"Tenants admitted to the registry.", nil)
	r.restored = r.obs.Counter("swsketch_registry_tenants_restored_total",
		"Spilled tenants restored from disk on touch.", nil)
	r.deleted = r.obs.Counter("swsketch_registry_tenants_deleted_total",
		"Tenants removed explicitly.", nil)
	r.evictSpilled = r.obs.Counter("swsketch_registry_tenants_evicted_total",
		"Tenants evicted by TTL sweep or LRU cap.", obs.Labels{"mode": "spill"})
	r.evictDropped = r.obs.Counter("swsketch_registry_tenants_evicted_total",
		"Tenants evicted by TTL sweep or LRU cap.", obs.Labels{"mode": "drop"})
	r.spillErrors = r.obs.Counter("swsketch_registry_spill_errors_total",
		"Evictions that failed to write a spill file (tenant kept resident).", nil)
	r.obs.GaugeFunc("swsketch_registry_tenants_resident",
		"Tenants whose sketch is in memory.", nil,
		func() float64 { res, _ := r.counts(); return float64(res) })
	r.obs.GaugeFunc("swsketch_registry_tenants_spilled",
		"Tenants whose state lives in the spill directory.", nil,
		func() float64 { _, sp := r.counts(); return float64(sp) })
	r.obs.GaugeSet("swsketch_registry_tenant_rows",
		"Sketch rows per tenant (as of each tenant's last release).",
		"tenant", nil, func() map[string]float64 {
			out := make(map[string]float64)
			r.each(func(t *Tenant) { out[t.id] = float64(t.Rows()) })
			return out
		})
}

// counts returns the resident and spilled tenant totals.
func (r *Registry) counts() (resident, spilled int) {
	r.each(func(t *Tenant) {
		if t.Resident() {
			resident++
		} else {
			spilled++
		}
	})
	return
}

// each visits every tenant under its shard's read lock.
func (r *Registry) each(f func(*Tenant)) {
	for _, sh := range r.shards {
		sh.mu.RLock()
		for _, t := range sh.tenants {
			f(t)
		}
		sh.mu.RUnlock()
	}
}

// shardFor stripes an ID onto its shard by FNV-1a.
func (r *Registry) shardFor(id string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return r.shards[h&r.mask]
}

// Create builds the sketch described by cfg and admits it under id.
// It fails with ErrBadID, ErrExists, or cfg's validation error. When
// the shard is at its striped WithMaxTenants cap, the shard's
// least-recently-used idle tenant is evicted first (spill or drop).
func (r *Registry) Create(id string, cfg Config) (*Tenant, error) {
	if id == "" || len(id) > MaxIDLen {
		return nil, ErrBadID
	}
	cfg = cfg.normalize()
	sk, err := cfg.Build()
	if err != nil {
		return nil, err
	}
	t := &Tenant{id: id, cfg: cfg, algo: sk.Name(), d: cfg.D, reg: r, sk: sk}
	t.touch()
	sh := r.shardFor(id)
	sh.mu.Lock()
	if _, ok := sh.tenants[id]; ok {
		sh.mu.Unlock()
		return nil, ErrExists
	}
	if r.maxPerShard > 0 {
		r.enforceCap(sh)
	}
	sh.tenants[id] = t
	sh.mu.Unlock()
	if r.created != nil {
		r.created.Inc()
	}
	if r.tr.Enabled() {
		res, _ := r.counts()
		r.tr.EmitNote("registry", trace.KindTenantCreate, 0, float64(res), 0, id)
	}
	return t, nil
}

// Adopt admits a pre-built sketch as a pinned tenant — exempt from
// eviction and (lacking a declarative config) never spilled. The
// serve layer adopts its legacy single sketch as the "default"
// tenant. It fails like Create on a duplicate or bad ID.
func (r *Registry) Adopt(id string, sk core.WindowSketch, d int) (*Tenant, error) {
	if id == "" || len(id) > MaxIDLen {
		return nil, ErrBadID
	}
	if d < 1 {
		return nil, fmt.Errorf("registry: adopt %q: dimension %d", id, d)
	}
	t := &Tenant{id: id, algo: sk.Name(), d: d, reg: r, sk: sk, pinned: true}
	t.touch()
	sh := r.shardFor(id)
	sh.mu.Lock()
	if _, ok := sh.tenants[id]; ok {
		sh.mu.Unlock()
		return nil, ErrExists
	}
	sh.tenants[id] = t
	sh.mu.Unlock()
	if r.created != nil {
		r.created.Inc()
	}
	return t, nil
}

// Get returns the tenant registered under id, stamping its recency.
// The tenant may be spilled; Acquire restores it.
func (r *Registry) Get(id string) (*Tenant, bool) {
	sh := r.shardFor(id)
	sh.mu.RLock()
	t, ok := sh.tenants[id]
	sh.mu.RUnlock()
	if ok {
		t.touch()
	}
	return t, ok
}

// Delete removes the tenant and its spill file, reporting whether it
// existed. A request already holding the tenant completes against the
// orphaned sketch; later Acquires fail with ErrDeleted.
func (r *Registry) Delete(id string) bool {
	sh := r.shardFor(id)
	sh.mu.Lock()
	t, ok := sh.tenants[id]
	if ok {
		delete(sh.tenants, id)
	}
	sh.mu.Unlock()
	if !ok {
		return false
	}
	t.mu.Lock()
	t.deleted = true
	t.sk, t.serving = nil, nil
	t.spilled.Store(false)
	t.mu.Unlock()
	if r.spillDir != "" {
		_ = os.Remove(r.spillPath(id))
	}
	if r.deleted != nil {
		r.deleted.Inc()
	}
	if r.evictHook != nil {
		r.evictHook(id, false)
	}
	if r.tr.Enabled() {
		r.tr.EmitNote("registry", trace.KindTenantDelete, 0, 0, 0, id)
	}
	return true
}

// Info is one tenant's lock-free summary, as returned by List.
type Info struct {
	// ID is the tenant's registry key.
	ID string `json:"id"`
	// Algorithm is the sketch algorithm name (e.g. "LM-FD").
	Algorithm string `json:"algorithm"`
	// Resident is false while the tenant's state lives on disk.
	Resident bool `json:"resident"`
	// Rows is the sketch's row count as of the tenant's last release.
	Rows int `json:"rows_stored"`
	// Updates counts rows committed into the tenant.
	Updates uint64 `json:"updates"`
	// Pinned tenants are exempt from eviction.
	Pinned bool `json:"pinned,omitempty"`
}

// List returns every tenant's summary, sorted by ID.
func (r *Registry) List() []Info {
	var out []Info
	r.each(func(t *Tenant) {
		out = append(out, Info{
			ID:        t.id,
			Algorithm: t.algo,
			Resident:  t.Resident(),
			Rows:      t.Rows(),
			Updates:   t.Updates(),
			Pinned:    t.pinned,
		})
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of registered tenants (resident + spilled).
func (r *Registry) Len() int {
	n := 0
	for _, sh := range r.shards {
		sh.mu.RLock()
		n += len(sh.tenants)
		sh.mu.RUnlock()
	}
	return n
}

// Sweep evicts every unpinned resident tenant idle longer than the
// WithEvictTTL deadline and returns how many it evicted (spilled or
// dropped). Without WithEvictTTL it is a no-op. Busy tenants (mid-
// request) are skipped, never blocked on.
func (r *Registry) Sweep() int {
	if r.ttl <= 0 {
		return 0
	}
	cutoff := r.now().Add(-r.ttl).UnixNano()
	evicted := 0
	for _, sh := range r.shards {
		sh.mu.RLock()
		var idle []*Tenant
		for _, t := range sh.tenants {
			if !t.pinned && t.Resident() && t.lastTouch.Load() <= cutoff {
				idle = append(idle, t)
			}
		}
		sh.mu.RUnlock()
		for _, t := range idle {
			if r.evict(sh, t, cutoff) {
				evicted++
			}
		}
	}
	return evicted
}

// evict spills (preferred) or drops one idle tenant. It re-checks
// idleness and residency under the tenant lock and skips busy tenants
// via TryLock so a sweep never stalls ingest. The shard lock is taken
// first (the registry's lock order is shard before tenant) because a
// drop removes the tenant from the shard map.
func (r *Registry) evict(sh *shard, t *Tenant, cutoff int64) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !t.mu.TryLock() {
		return false
	}
	defer t.mu.Unlock()
	if t.deleted || t.sk == nil || t.lastTouch.Load() > cutoff {
		return false
	}
	if t.canSpill() {
		return r.spill(t)
	}
	r.drop(sh, t)
	return true
}

// enforceCap evicts the least-recently-used unpinned resident tenants
// of a full shard. Caller holds sh.mu. Best effort: busy tenants are
// skipped rather than blocked on, so a shard under heavy load may
// briefly exceed its stripe of the cap.
func (r *Registry) enforceCap(sh *shard) {
	resident := 0
	for _, t := range sh.tenants {
		if t.Resident() {
			resident++
		}
	}
	for resident >= r.maxPerShard {
		var victim *Tenant
		for _, t := range sh.tenants {
			if t.pinned || !t.Resident() {
				continue
			}
			if victim == nil || t.lastTouch.Load() < victim.lastTouch.Load() {
				victim = t
			}
		}
		if victim == nil || !victim.mu.TryLock() {
			return
		}
		if victim.deleted || victim.sk == nil {
			victim.mu.Unlock()
			return
		}
		ok := false
		if victim.canSpill() {
			ok = r.spill(victim)
			victim.mu.Unlock()
		} else {
			r.drop(sh, victim)
			victim.mu.Unlock()
			ok = true
		}
		if !ok {
			return
		}
		resident--
	}
}

// canSpill reports whether eviction can preserve the tenant's state on
// disk: a spill directory is configured, the tenant has a declarative
// config to rebuild from, and the sketch snapshots itself. Caller
// holds t.mu (it reads t.sk).
func (t *Tenant) canSpill() bool {
	if t.reg.spillDir == "" || t.cfg.Framework == "" || t.sk == nil {
		return false
	}
	_, ok := t.sk.(encoding.BinaryMarshaler)
	return ok
}

// drop discards a tenant outright (no snapshot support). Caller holds
// both sh.mu and t.mu.
func (r *Registry) drop(sh *shard, t *Tenant) {
	delete(sh.tenants, t.id)
	rows := 0
	if t.sk != nil {
		rows = t.sk.RowsStored()
	}
	t.deleted = true
	t.sk, t.serving = nil, nil
	if r.evictDropped != nil {
		r.evictDropped.Inc()
	}
	if r.evictHook != nil {
		r.evictHook(t.id, false)
	}
	if r.tr.Enabled() {
		r.tr.EmitNote("registry", trace.KindTenantEvict, 0, float64(rows), 0, t.id)
	}
}
