package registry

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestConcurrentIngestManyTenants is the acceptance bar for the
// striped-lock design: ≥ 1,000 tenants ingesting concurrently from
// many goroutines — with Gets, Lists, scrapes, and TTL sweeps racing
// the ingest — must be data-race-free (run under -race) and lose no
// updates.
func TestConcurrentIngestManyTenants(t *testing.T) {
	const (
		tenants      = 1024
		rowsPer      = 24
		d            = 6
		batchPerCall = 8
	)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := mustNew(t,
		WithSpillDir(t.TempDir()),
		WithEvictTTL(time.Minute),
		WithClock(clk.Now),
	)
	cfg := lmCfg(d)
	for i := 0; i < tenants; i++ {
		if _, err := r.Create(fmt.Sprintf("tenant-%04d", i), cfg); err != nil {
			t.Fatalf("Create %d: %v", i, err)
		}
	}

	workers := runtime.GOMAXPROCS(0) * 2
	var wg sync.WaitGroup
	// Ingest workers: each owns a disjoint stripe of tenants (the
	// sketches are single-writer per tenant; cross-tenant parallelism
	// is the point).
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			row := make([]float64, d)
			for i := w; i < tenants; i += workers {
				tn, ok := r.Get(fmt.Sprintf("tenant-%04d", i))
				if !ok {
					t.Errorf("tenant %d missing", i)
					return
				}
				for b := 0; b < rowsPer/batchPerCall; b++ {
					if err := tn.Acquire(); err != nil {
						t.Errorf("Acquire: %v", err)
						return
					}
					lastT, _ := tn.Clock()
					rows := make([][]float64, batchPerCall)
					times := make([]float64, batchPerCall)
					for k := range rows {
						for j := range row {
							row[j] = math.Cos(float64(i + k + j))
						}
						rows[k] = append([]float64(nil), row...)
						times[k] = lastT + float64(k) + 1
					}
					tn.Sketch().UpdateBatch(rows, times)
					tn.Commit(batchPerCall, times[batchPerCall-1])
					tn.Release()
				}
			}
		}(w)
	}
	// Readers and a sweeper race the ingest.
	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.List()
				r.counts()
				r.Sweep()
				clk.Advance(time.Second)
			}
		}
	}()
	wg.Wait()
	close(stop)
	aux.Wait()

	if got := r.Len(); got != tenants {
		t.Fatalf("Len = %d, want %d", got, tenants)
	}
	var total uint64
	r.each(func(tn *Tenant) { total += tn.Updates() })
	if want := uint64(tenants * rowsPer); total != want {
		t.Fatalf("total updates = %d, want %d", total, want)
	}
}

// TestConcurrentCreateDeleteGet hammers the shard maps themselves.
func TestConcurrentCreateDeleteGet(t *testing.T) {
	r := mustNew(t)
	cfg := lmCfg(3)
	const ids = 64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("t%d", (i+w)%ids)
				switch i % 3 {
				case 0:
					_, _ = r.Create(id, cfg)
				case 1:
					if tn, ok := r.Get(id); ok {
						if err := tn.Acquire(); err == nil {
							tn.Sketch().RowsStored()
							tn.Release()
						}
					}
				case 2:
					r.Delete(id)
				}
			}
		}(w)
	}
	wg.Wait()
}
