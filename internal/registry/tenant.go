package registry

import (
	"errors"
	"sync"
	"sync/atomic"

	"swsketch/internal/core"
)

// ErrDeleted is returned by Tenant.Acquire when the tenant was removed
// from its registry after the caller obtained the pointer.
var ErrDeleted = errors.New("registry: tenant deleted")

// Tenant is one named sliding-window sketch inside a Registry. All
// sketch and clock access goes through Acquire/Release — the tenant's
// own mutex — so ingest into different tenants runs in parallel while
// each tenant stays single-writer (the sketches' contract).
//
// A tenant can be *resident* (sketch in memory) or *spilled* (state on
// disk under the registry's spill directory); Acquire transparently
// restores a spilled tenant before returning.
type Tenant struct {
	id     string
	cfg    Config
	algo   string
	d      int
	pinned bool
	reg    *Registry

	mu      sync.Mutex
	sk      core.WindowSketch // the built sketch; nil while spilled
	serving core.WindowSketch // optional decorated front (metrics); nil = sk
	lastT   float64
	seen    bool
	deleted bool
	spilled atomic.Bool

	updates   atomic.Uint64
	lastRows  atomic.Int64 // RowsStored at the last Release (lock-free reads)
	lastTouch atomic.Int64 // unix nanos of the last Release/Get
	pending   atomic.Int64 // stream blocks admitted but not yet committed
}

// ID returns the tenant's registry key.
func (t *Tenant) ID() string { return t.id }

// Config returns the declarative config the tenant was created from.
// Adopted tenants (Registry.Adopt) have a zero config.
func (t *Tenant) Config() Config { return t.cfg }

// Algorithm returns the sketch's algorithm name (e.g. "LM-FD").
func (t *Tenant) Algorithm() string { return t.algo }

// D returns the tenant's row dimension.
func (t *Tenant) D() int { return t.d }

// Pinned reports whether the tenant is exempt from eviction (the
// serve layer's adopted default tenant is).
func (t *Tenant) Pinned() bool { return t.pinned }

// Resident reports, lock-free, whether the sketch is in memory (true)
// or spilled to disk (false).
func (t *Tenant) Resident() bool { return !t.spilled.Load() }

// Updates returns, lock-free, the number of rows committed so far.
func (t *Tenant) Updates() uint64 { return t.updates.Load() }

// Rows returns, lock-free, the sketch's row count as of the last
// Release (the live value requires Acquire).
func (t *Tenant) Rows() int { return int(t.lastRows.Load()) }

// Acquire locks the tenant for exclusive sketch access, transparently
// restoring a spilled tenant from disk first. Every successful
// Acquire must be paired with Release. It fails when the tenant was
// deleted concurrently (ErrDeleted) or the spilled state cannot be
// read back.
func (t *Tenant) Acquire() error {
	t.mu.Lock()
	if t.deleted {
		t.mu.Unlock()
		return ErrDeleted
	}
	if t.sk == nil {
		if err := t.reg.restore(t); err != nil {
			t.mu.Unlock()
			return err
		}
	}
	if t.reg.touchHook != nil {
		t.reg.touchHook(t.id)
	}
	return nil
}

// Release unlocks the tenant, stamping its recency (for LRU/TTL
// eviction) and publishing the sketch's row count for lock-free
// observers.
func (t *Tenant) Release() {
	if t.sk != nil {
		t.lastRows.Store(int64(t.sk.RowsStored()))
	}
	t.touch()
	t.mu.Unlock()
}

// touch stamps the tenant as recently used.
func (t *Tenant) touch() { t.lastTouch.Store(t.reg.now().UnixNano()) }

// Sketch returns the serving sketch — the decorated front when one was
// installed with SetServing, the raw sketch otherwise. Callers must
// hold the tenant via Acquire.
func (t *Tenant) Sketch() core.WindowSketch {
	if t.serving != nil {
		return t.serving
	}
	return t.sk
}

// Raw returns the undecorated sketch, for capability checks (snapshot
// support, introspection) and audit-path queries. Callers must hold
// the tenant via Acquire.
func (t *Tenant) Raw() core.WindowSketch { return t.sk }

// SetServing installs a decorated front (e.g. obs.Instrumented) that
// Sketch will return in place of the raw sketch. Callers must hold
// the tenant via Acquire.
func (t *Tenant) SetServing(sk core.WindowSketch) { t.serving = sk }

// Clock returns the tenant's ingest clock: the last committed
// timestamp and whether any row has been committed. Callers must hold
// the tenant via Acquire.
func (t *Tenant) Clock() (lastT float64, seen bool) { return t.lastT, t.seen }

// Commit advances the ingest clock after n rows were applied up to
// timestamp lastT. Callers must hold the tenant via Acquire.
func (t *Tenant) Commit(n int, lastT float64) {
	t.updates.Add(uint64(n))
	t.lastT, t.seen = lastT, true
}

// TryEnqueue admits one in-flight stream block if the tenant's
// pending count is below limit, reporting whether it was admitted.
// The streaming ingest path uses this as its backpressure gate: a
// false return means the caller should shed load (429) rather than
// queue unboundedly. Lock-free; pair every true with Dequeue.
func (t *Tenant) TryEnqueue(limit int) bool {
	for {
		n := t.pending.Load()
		if n >= int64(limit) {
			return false
		}
		if t.pending.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Dequeue retires one in-flight stream block admitted by TryEnqueue.
func (t *Tenant) Dequeue() { t.pending.Add(-1) }

// Pending returns, lock-free, the tenant's in-flight stream blocks.
func (t *Tenant) Pending() int { return int(t.pending.Load()) }

// SetClock force-sets the ingest clock — WAL replay uses it to
// reinstate the clock a logged snapshot restore recorded. Callers
// must hold the tenant via Acquire.
func (t *Tenant) SetClock(updates uint64, lastT float64, seen bool) {
	t.updates.Store(updates)
	t.lastT, t.seen = lastT, seen
}

// ResetClock zeroes the ingest clock (after a snapshot restore, whose
// stream position is unrelated to the pre-restore one). Callers must
// hold the tenant via Acquire.
func (t *Tenant) ResetClock() {
	t.updates.Store(0)
	t.lastT, t.seen = 0, false
}
