package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestSpillRestoreBitIdentical is the property behind the eviction
// design: for every snapshot-capable framework, an evicted-then-
// restored tenant answers Query bit-identically to the never-evicted
// sketch, across several ingest/evict/restore cycles.
func TestSpillRestoreBitIdentical(t *testing.T) {
	frameworks := []Config{
		{Framework: "lm-fd", Size: 48, D: 5, Ell: 8, B: 4},
		{Framework: "swr", Size: 48, D: 5, Ell: 6, Seed: 3},
		{Framework: "swor", Size: 48, D: 5, Ell: 6, Seed: 3},
		{Framework: "swor-all", Size: 48, D: 5, Ell: 6, Seed: 3},
		{Framework: "lm-fd", Window: "time", Size: 32.5, D: 5, Ell: 8, B: 4},
		{Framework: "ds-fd", Size: 48, D: 5, Ell: 8},
		{Framework: "ds-fd", Size: 48, D: 8, Ell: 4, FDBuffer: 2, FDAlpha: 0.5},
		{Framework: "lm-amm", Size: 48, D: 6, DB: 2, Ell: 8, B: 4},
		{Framework: "lm-amm", Window: "time", Size: 32.5, D: 5, DB: 2, Ell: 8, B: 4, FDBuffer: 2},
		{Framework: "di-amm", Size: 48, D: 6, DB: 3, Ell: 16, L: 3, R: 16},
	}
	for _, cfg := range frameworks {
		cfg := cfg
		name := cfg.Framework + "/" + cfg.normalize().Window
		t.Run(name, func(t *testing.T) {
			clk := &fakeClock{t: time.Unix(1000, 0)}
			r := mustNew(t, WithSpillDir(t.TempDir()), WithEvictTTL(time.Minute), WithClock(clk.Now))
			tn, err := r.Create("p", cfg)
			if err != nil {
				t.Fatal(err)
			}
			t0 := 0.0
			for cycle := 0; cycle < 3; cycle++ {
				ingestRows(t, tn, cfg.D, 60, t0)
				t0 += 60
				want := queryBits(t, tn, t0-1)
				clk.Advance(2 * time.Minute)
				if n := r.Sweep(); n != 1 {
					t.Fatalf("cycle %d: Sweep evicted %d, want 1", cycle, n)
				}
				if tn.Resident() {
					t.Fatalf("cycle %d: still resident", cycle)
				}
				got := queryBits(t, tn, t0-1) // Acquire restores
				if !bitsEqual(want, got) {
					t.Fatalf("cycle %d: restored answer differs from pre-evict answer", cycle)
				}
			}
		})
	}
}

// TestSpillScanOnRestart builds a registry over a spill directory left
// by a previous registry and checks the fleet resumes lazily with
// identical answers.
func TestSpillScanOnRestart(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r1 := mustNew(t, WithSpillDir(dir), WithEvictTTL(time.Minute), WithClock(clk.Now))
	want := make(map[string][][]uint64)
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("restart-%d", i)
		tn, err := r1.Create(id, lmCfg(4))
		if err != nil {
			t.Fatal(err)
		}
		ingestRows(t, tn, 4, 40+10*i, 0)
		want[id] = queryBits(t, tn, float64(40+10*i-1))
	}
	clk.Advance(time.Hour)
	if n := r1.Sweep(); n != 5 {
		t.Fatalf("Sweep spilled %d, want 5", n)
	}

	// "Restart": a fresh registry over the same directory.
	r2 := mustNew(t, WithSpillDir(dir))
	if r2.Len() != 5 {
		t.Fatalf("restarted Len = %d, want 5", r2.Len())
	}
	for id, bits := range want {
		tn, ok := r2.Get(id)
		if !ok {
			t.Fatalf("tenant %s missing after restart", id)
		}
		if tn.Resident() {
			t.Fatalf("tenant %s eagerly resident (restore should be lazy)", id)
		}
		if tn.Algorithm() != "LM-FD" {
			t.Fatalf("tenant %s algorithm = %q", id, tn.Algorithm())
		}
		at := float64(tn.Updates() - 1)
		if got := queryBits(t, tn, at); !bitsEqual(bits, got) {
			t.Fatalf("tenant %s restarted answer differs", id)
		}
	}
	// Restore consumed the spill files; creating a colliding tenant in
	// a third registry over the same dir starts clean.
	left, _ := filepath.Glob(filepath.Join(dir, "*"+spillExt))
	if len(left) != 0 {
		t.Fatalf("%d spill files left after restores", len(left))
	}
}

// TestRestoreCorruptSpill verifies a damaged spill file surfaces as an
// Acquire error, not a panic, and leaves the tenant spilled.
func TestRestoreCorruptSpill(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := mustNew(t, WithSpillDir(dir), WithEvictTTL(time.Minute), WithClock(clk.Now))
	tn, err := r.Create("corrupt", lmCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	ingestRows(t, tn, 4, 30, 0)
	clk.Advance(time.Hour)
	if n := r.Sweep(); n != 1 {
		t.Fatalf("Sweep = %d", n)
	}
	path := r.spillPath("corrupt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := tn.Acquire(); err == nil {
		tn.Release()
		t.Fatal("Acquire succeeded on a truncated spill file")
	} else if !strings.Contains(err.Error(), "corrupt") && !strings.Contains(err.Error(), "truncated") {
		t.Logf("acquire error: %v", err)
	}
	if tn.Resident() {
		t.Fatal("tenant marked resident after failed restore")
	}
}

// TestSpillPathSanitises checks hostile IDs map to flat filenames.
func TestSpillPathSanitises(t *testing.T) {
	r := mustNew(t, WithSpillDir(t.TempDir()))
	for _, id := range []string{"../../etc/passwd", "a/b/c", strings.Repeat("z", MaxIDLen)} {
		p := r.spillPath(id)
		if filepath.Dir(p) != filepath.Clean(r.spillDir) {
			t.Fatalf("spillPath(%q) = %q escapes the spill dir", id, p)
		}
		if !strings.HasSuffix(p, spillExt) {
			t.Fatalf("spillPath(%q) = %q lacks the %s suffix", id, p, spillExt)
		}
	}
}
