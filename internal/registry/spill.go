package registry

import (
	"crypto/sha256"
	"encoding"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"swsketch/internal/binenc"
	"swsketch/internal/trace"
)

// Spill files carry everything needed to resurrect a tenant in a
// fresh process: the tenant ID, its declarative config, its ingest
// clock, and the sketch's own binary snapshot. The format is
// versioned with a magic number like the core snapshot formats; v2
// appends the paired-framework split width DB after R and is written
// only when DB is set, so every pre-existing tenant keeps its v1
// bytes.
const (
	spillMagic   = uint64(0x544E4E54_00000001) // "TNNT" v1
	spillMagicV2 = uint64(0x544E4E54_00000002) // "TNNT" v2: v1 + DB
)

// spillExt is the spill-file suffix scanned at startup.
const spillExt = ".tenant"

// spillPath maps a tenant ID to its spill file. IDs are hex-encoded
// (they may contain path separators); very long IDs fall back to a
// SHA-256 digest so filenames stay bounded. The mapping needs no
// inverse — the ID is read back from the file header.
func (r *Registry) spillPath(id string) string {
	name := hex.EncodeToString([]byte(id))
	if len(name) > 128 {
		sum := sha256.Sum256([]byte(id))
		name = "x" + hex.EncodeToString(sum[:])
	}
	return filepath.Join(r.spillDir, name+spillExt)
}

// encodeSpill serialises the tenant header plus the sketch snapshot.
// Caller holds t.mu.
func encodeSpill(t *Tenant) ([]byte, error) {
	m, ok := t.sk.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("registry: %s does not support snapshots", t.algo)
	}
	blob, err := m.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w := binenc.NewWriter()
	c := t.cfg
	if c.DB != 0 {
		w.U64(spillMagicV2)
	} else {
		w.U64(spillMagic)
	}
	w.Blob([]byte(t.id))
	w.Blob([]byte(c.Framework))
	w.Blob([]byte(c.Window))
	w.F64(c.Size)
	w.Int(c.D)
	w.Int(c.Ell)
	w.Int(c.B)
	w.F64(c.Eps)
	w.Int(int(c.Seed))
	w.Int(c.L)
	w.F64(c.R)
	if c.DB != 0 {
		w.Int(c.DB)
	}
	w.U64(t.updates.Load())
	w.F64(t.lastT)
	w.Bool(t.seen)
	w.Blob(blob)
	return w.Bytes(), nil
}

// spillHeader is the decoded prefix of a spill file.
type spillHeader struct {
	id      string
	cfg     Config
	updates uint64
	lastT   float64
	seen    bool
}

// decodeSpill parses a spill file, returning the header and the
// sketch snapshot blob.
func decodeSpill(data []byte) (spillHeader, []byte, error) {
	var h spillHeader
	r := binenc.NewReader(data)
	magic := r.U64()
	if r.Err() == nil && magic != spillMagic && magic != spillMagicV2 {
		return h, nil, fmt.Errorf("registry: not a tenant spill file (magic %#x)", magic)
	}
	h.id = string(r.Blob())
	h.cfg = Config{
		Framework: string(r.Blob()),
		Window:    string(r.Blob()),
		Size:      r.F64(),
		D:         r.Int(),
		Ell:       r.Int(),
		B:         r.Int(),
		Eps:       r.F64(),
		Seed:      int64(r.Int()),
		L:         r.Int(),
		R:         r.F64(),
	}
	if magic == spillMagicV2 {
		h.cfg.DB = r.Int()
	}
	h.updates = r.U64()
	h.lastT = r.F64()
	h.seen = r.Bool()
	blob := r.Blob()
	if err := r.Err(); err != nil {
		return h, nil, fmt.Errorf("registry: corrupt spill file: %w", err)
	}
	return h, blob, nil
}

// spill writes the tenant's state to disk and releases its in-memory
// sketch. Caller holds t.mu and has verified canSpill. On a write
// failure the tenant stays resident and the failure is counted.
func (r *Registry) spill(t *Tenant) bool {
	data, err := encodeSpill(t)
	if err == nil {
		err = writeFileAtomic(r.spillPath(t.id), data)
	}
	if err != nil {
		if r.spillErrors != nil {
			r.spillErrors.Inc()
		}
		return false
	}
	rows := t.sk.RowsStored()
	t.lastRows.Store(int64(rows))
	t.sk, t.serving = nil, nil
	t.spilled.Store(true)
	if r.evictSpilled != nil {
		r.evictSpilled.Inc()
	}
	if r.evictHook != nil {
		r.evictHook(t.id, true)
	}
	if r.tr.Enabled() {
		r.tr.EmitNote("registry", trace.KindTenantEvict, t.lastT, float64(rows), 1, t.id)
	}
	return true
}

// restore rebuilds a spilled tenant from its spill file: the sketch
// is reconstructed from the stored config and fed its binary
// snapshot, and the clock is reinstated. Caller holds t.mu. The spill
// file is removed on success (the in-memory state immediately
// diverges from it).
func (r *Registry) restore(t *Tenant) error {
	path := r.spillPath(t.id)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("registry: restore %q: %w", t.id, err)
	}
	h, blob, err := decodeSpill(data)
	if err != nil {
		return fmt.Errorf("registry: restore %q: %w", t.id, err)
	}
	if h.id != t.id {
		return fmt.Errorf("registry: restore %q: spill file belongs to %q", t.id, h.id)
	}
	sk, err := h.cfg.Build()
	if err != nil {
		return fmt.Errorf("registry: restore %q: %w", t.id, err)
	}
	u, ok := sk.(encoding.BinaryUnmarshaler)
	if !ok {
		return fmt.Errorf("registry: restore %q: %s lost snapshot support", t.id, sk.Name())
	}
	if err := u.UnmarshalBinary(blob); err != nil {
		return fmt.Errorf("registry: restore %q: %w", t.id, err)
	}
	t.sk = sk
	t.cfg = h.cfg
	t.updates.Store(h.updates)
	t.lastT, t.seen = h.lastT, h.seen
	t.lastRows.Store(int64(sk.RowsStored()))
	t.spilled.Store(false)
	_ = os.Remove(path)
	if r.restored != nil {
		r.restored.Inc()
	}
	if r.tr.Enabled() {
		r.tr.EmitNote("registry", trace.KindTenantRestore, t.lastT, float64(len(data)), 0, t.id)
	}
	return nil
}

// scanSpillDir registers every valid spill file as a spilled tenant,
// so a restarted process resumes its fleet lazily. Unreadable or
// foreign files are skipped (a shared directory may hold other
// artifacts); a corrupt file surfaces on the tenant's first Acquire
// instead of blocking startup.
func (r *Registry) scanSpillDir() error {
	entries, err := os.ReadDir(r.spillDir)
	if err != nil {
		return fmt.Errorf("registry: scan spill dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != spillExt {
			continue
		}
		data, err := os.ReadFile(filepath.Join(r.spillDir, e.Name()))
		if err != nil {
			continue
		}
		h, _, err := decodeSpill(data)
		if err != nil || h.id == "" || len(h.id) > MaxIDLen {
			continue
		}
		t := &Tenant{id: h.id, cfg: h.cfg, d: h.cfg.D, reg: r, algo: h.cfg.algoName()}
		t.updates.Store(h.updates)
		t.spilled.Store(true)
		t.touch()
		sh := r.shardFor(h.id)
		sh.mu.Lock()
		if _, ok := sh.tenants[h.id]; !ok {
			sh.tenants[h.id] = t
		}
		sh.mu.Unlock()
	}
	return nil
}

// writeFileAtomic writes data via a temp file + rename so a crashed
// spill never leaves a truncated file behind.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".spill-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}
