// Package dist extends the sliding-window sketches to the distributed
// setting the paper lists as future work (and its authors studied for
// unbounded streams in "Continuous matrix approximation on distributed
// data", VLDB 2014): m sites each observe a sub-stream of rows; a
// coordinator continuously answers window queries over the union
// stream while receiving only sketches, never raw rows.
//
// The mechanism is the same mergeability that powers the Logarithmic
// Method: each site packs its local rows into blocks of bounded mass,
// sketches each block with FrequentDirections, and ships the ℓ-row
// sketch. The coordinator keeps the received blocks in an LM-style
// mass-levelled structure — blocks from different sites may overlap in
// time and arrive slightly out of order, so the coordinator sorts by
// block end time and expires on it. Each site contributes at most one
// straddling block of bounded mass to the error, so the total error is
// the LM bound plus an O(m·blockMass/‖A_W‖²_F) expiry term — the usual
// distributed-window trade.
//
// Communication: ℓ rows per blockMass of stream mass, versus every raw
// row for the naive protocol; Site.RowsShipped tracks it.
package dist

import (
	"fmt"
	"sort"

	"swsketch/internal/mat"
	"swsketch/internal/stream"
	"swsketch/internal/window"
)

// Block is the unit shipped from a site to the coordinator: a
// FrequentDirections sketch of a contiguous span of one site's rows.
type Block struct {
	Site       int
	Start, End float64
	Mass       float64
	Sketch     *stream.FD
}

// Site buffers one sub-stream and emits blocks. Not safe for
// concurrent use; in a real deployment each site is its own process.
type Site struct {
	id        int
	d         int
	ell       int
	blockMass float64
	ship      func(Block)

	cur        *stream.FD
	curStart   float64
	curEnd     float64
	curMass    float64
	curRows    int
	shipped    int // sketch rows shipped so far
	totalRows  int // raw rows observed
	totalBlock int
}

// NewSite returns a site shipping FD sketches of ℓ rows whenever the
// accumulated squared-norm mass exceeds blockMass. For the protocol to
// save communication, blockMass must cover substantially more than ℓ
// rows of typical mass — each block ships at most ℓ rows regardless of
// how many raw rows it covers. ship is invoked synchronously with each
// completed block.
func NewSite(id, d, ell int, blockMass float64, ship func(Block)) *Site {
	if d < 1 || ell < 2 {
		panic(fmt.Sprintf("dist: site needs d ≥ 1 and ell ≥ 2, got %d, %d", d, ell))
	}
	if blockMass <= 0 {
		panic(fmt.Sprintf("dist: blockMass must be positive, got %v", blockMass))
	}
	if ship == nil {
		panic("dist: nil ship function")
	}
	return &Site{id: id, d: d, ell: ell, blockMass: blockMass, ship: ship}
}

// Observe ingests one local row at timestamp t (non-decreasing per
// site).
func (s *Site) Observe(row []float64, t float64) {
	if len(row) != s.d {
		panic(fmt.Sprintf("dist: site row length %d, want %d", len(row), s.d))
	}
	w := mat.SqNorm(row)
	if w == 0 {
		return
	}
	if s.cur == nil {
		s.cur = stream.NewFD(s.ell, s.d)
		s.curStart = t
		s.curMass = 0
		s.curRows = 0
	}
	s.cur.Update(row)
	s.curEnd = t
	s.curMass += w
	s.curRows++
	s.totalRows++
	if s.curMass > s.blockMass {
		s.Flush()
	}
}

// Flush ships the open block (no-op when empty). Call at shutdown or
// on a timer so quiet sites do not hold back data indefinitely.
func (s *Site) Flush() {
	if s.cur == nil || s.curRows == 0 {
		return
	}
	s.ship(Block{
		Site:   s.id,
		Start:  s.curStart,
		End:    s.curEnd,
		Mass:   s.curMass,
		Sketch: s.cur,
	})
	s.shipped += s.cur.Used() // occupied sketch rows actually transferred
	s.totalBlock++
	s.cur = nil
}

// RowsShipped reports the total sketch rows sent to the coordinator.
func (s *Site) RowsShipped() int { return s.shipped }

// RowsObserved reports the raw rows the site has seen (what the naive
// protocol would have shipped).
func (s *Site) RowsObserved() int { return s.totalRows }

// coordBlock wraps a received block with its level for mass-doubling
// merges.
type coordBlock struct {
	start, end float64
	mass       float64
	sk         *stream.FD
}

// Coordinator maintains the global sliding-window approximation from
// received blocks.
type Coordinator struct {
	spec window.Spec
	d    int
	ell  int
	// perLevel bounds the blocks kept per mass level before the two
	// oldest merge (the LM "b" knob).
	perLevel int
	// levels[i] holds blocks with mass in [2^i·unit, 2^{i+1}·unit),
	// each sorted by end time.
	levels [][]coordBlock
	unit   float64
	lastT  float64
	seen   bool
}

// NewCoordinator returns a coordinator for the given window over
// blocks produced with the given site ℓ and blockMass.
func NewCoordinator(spec window.Spec, d, ell, perLevel int, blockMass float64) *Coordinator {
	if d < 1 || ell < 2 {
		panic(fmt.Sprintf("dist: coordinator needs d ≥ 1 and ell ≥ 2, got %d, %d", d, ell))
	}
	if perLevel < 2 {
		panic(fmt.Sprintf("dist: perLevel must be ≥ 2, got %d", perLevel))
	}
	if blockMass <= 0 {
		panic(fmt.Sprintf("dist: blockMass must be positive, got %v", blockMass))
	}
	return &Coordinator{spec: spec, d: d, ell: ell, perLevel: perLevel, unit: blockMass}
}

// Receive ingests one block. Blocks may arrive out of order across
// sites; within the structure they are kept sorted by end time.
func (c *Coordinator) Receive(b Block) {
	if b.Sketch == nil {
		panic("dist: block without sketch")
	}
	if b.End > c.lastT || !c.seen {
		c.lastT, c.seen = b.End, true
	}
	c.insert(coordBlock{start: b.Start, end: b.End, mass: b.Mass, sk: b.Sketch}, 0)
	c.expire(c.spec.Cutoff(c.lastT))
	c.rebalance()
}

func (c *Coordinator) levelOf(mass float64) int {
	lvl := 0
	for m := c.unit * 2; m <= mass && lvl < 62; m *= 2 {
		lvl++
	}
	return lvl
}

func (c *Coordinator) insert(b coordBlock, minLevel int) {
	lvl := c.levelOf(b.mass)
	if lvl < minLevel {
		lvl = minLevel
	}
	for len(c.levels) <= lvl {
		c.levels = append(c.levels, nil)
	}
	c.levels[lvl] = append(c.levels[lvl], b)
	// Keep each level ordered by end time (cross-site skew is small, so
	// this is nearly an append).
	sort.SliceStable(c.levels[lvl], func(i, j int) bool {
		return c.levels[lvl][i].end < c.levels[lvl][j].end
	})
}

func (c *Coordinator) expire(cutoff float64) {
	for i := range c.levels {
		lv := c.levels[i]
		drop := 0
		for drop < len(lv) && lv[drop].end <= cutoff {
			drop++
		}
		if drop > 0 {
			c.levels[i] = lv[drop:]
		}
	}
}

// rebalance merges the two oldest blocks of any over-full level into
// the next level, exactly the LM discipline.
func (c *Coordinator) rebalance() {
	for i := 0; i < len(c.levels); i++ {
		for len(c.levels[i]) > c.perLevel {
			lv := c.levels[i]
			b0, b1 := lv[0], lv[1]
			b0.sk.Merge(b1.sk)
			merged := coordBlock{
				start: minF(b0.start, b1.start),
				end:   maxF(b0.end, b1.end),
				mass:  b0.mass + b1.mass,
				sk:    b0.sk,
			}
			c.levels[i] = lv[2:]
			c.insert(merged, i+1)
		}
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Query returns the approximation for the global window ending at t.
func (c *Coordinator) Query(t float64) *mat.Dense {
	if t > c.lastT {
		c.lastT, c.seen = t, true
	}
	c.expire(c.spec.Cutoff(t))
	acc := stream.NewFD(c.ell, c.d)
	for i := len(c.levels) - 1; i >= 0; i-- {
		for j := range c.levels[i] {
			acc.Merge(c.levels[i][j].sk)
		}
	}
	return acc.Matrix()
}

// RowsStored reports the coordinator's space in sketch rows.
func (c *Coordinator) RowsStored() int {
	n := 0
	for i := range c.levels {
		for j := range c.levels[i] {
			n += c.levels[i][j].sk.RowsStored()
		}
	}
	return n
}

// Blocks reports the number of live blocks (for tests).
func (c *Coordinator) Blocks() int {
	n := 0
	for i := range c.levels {
		n += len(c.levels[i])
	}
	return n
}
