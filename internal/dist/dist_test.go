package dist

import (
	"math/rand"
	"testing"

	"swsketch/internal/window"
)

func randRow(rng *rand.Rand, d int) []float64 {
	r := make([]float64, d)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	return r
}

// simulate drives a global stream of n rows through m sites
// (round-robin) into one coordinator, returning the coordinator and an
// exact global-window oracle.
func simulate(t *testing.T, m, n, d, win int, seed int64) (*Coordinator, *window.Exact, []*Site) {
	t.Helper()
	const (
		ell = 16
		// d=8 Gaussian rows carry mass ≈ 8, so each block covers ≈ 100
		// raw rows and ships at most 16 — a real communication win.
		blockMass = 800.0
	)
	spec := window.Seq(win)
	coord := NewCoordinator(spec, d, 2*ell, 6, blockMass)
	sites := make([]*Site, m)
	for i := range sites {
		sites[i] = NewSite(i, d, ell, blockMass, coord.Receive)
	}
	oracle := window.NewExact(spec, d)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		row := randRow(rng, d)
		tt := float64(i)
		sites[i%m].Observe(row, tt)
		oracle.Update(row, tt)
	}
	for _, s := range sites {
		s.Flush()
	}
	return coord, oracle, sites
}

func TestDistributedWindowApproximation(t *testing.T) {
	coord, oracle, _ := simulate(t, 4, 6000, 8, 1500, 1)
	b := coord.Query(5999)
	if e := oracle.CovaErr(b); e > 0.3 {
		t.Fatalf("distributed window error = %v", e)
	}
}

func TestDistributedCommunicationSavings(t *testing.T) {
	_, _, sites := simulate(t, 4, 6000, 8, 1500, 2)
	var shipped, observed int
	for _, s := range sites {
		shipped += s.RowsShipped()
		observed += s.RowsObserved()
	}
	if observed != 6000 {
		t.Fatalf("observed = %d", observed)
	}
	if shipped >= observed/2 {
		t.Fatalf("shipped %d rows of %d observed — no communication win", shipped, observed)
	}
}

func TestDistributedExpiry(t *testing.T) {
	coord, _, _ := simulate(t, 3, 4000, 4, 500, 3)
	// Query far in the future: everything expires.
	b := coord.Query(1e9)
	if b.FrobeniusSq() != 0 {
		t.Fatalf("expired distributed window still has mass %v", b.FrobeniusSq())
	}
}

func TestDistributedSpaceSublinear(t *testing.T) {
	coord, _, _ := simulate(t, 4, 12000, 6, 3000, 4)
	if n := coord.RowsStored(); n > 3000/2 {
		t.Fatalf("coordinator stores %d rows for a 3000-row window", n)
	}
	if coord.Blocks() == 0 {
		t.Fatal("no live blocks")
	}
}

func TestDistributedSkewedSites(t *testing.T) {
	// One hot site, others almost idle: the coordinator must still
	// track the union window.
	const d, win = 6, 1200
	spec := window.Seq(win)
	coord := NewCoordinator(spec, d, 32, 6, 480)
	hot := NewSite(0, d, 16, 480, coord.Receive)
	cold := NewSite(1, d, 16, 480, coord.Receive)
	oracle := window.NewExact(spec, d)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		row := randRow(rng, d)
		tt := float64(i)
		if i%50 == 0 {
			cold.Observe(row, tt)
		} else {
			hot.Observe(row, tt)
		}
		oracle.Update(row, tt)
	}
	hot.Flush()
	cold.Flush()
	if e := oracle.CovaErr(coord.Query(4999)); e > 0.35 {
		t.Fatalf("skewed-site error = %v", e)
	}
}

func TestSiteValidation(t *testing.T) {
	ship := func(Block) {}
	for name, f := range map[string]func(){
		"bad d":     func() { NewSite(0, 0, 4, 1, ship) },
		"bad ell":   func() { NewSite(0, 2, 1, 1, ship) },
		"bad mass":  func() { NewSite(0, 2, 4, 0, ship) },
		"nil ship":  func() { NewSite(0, 2, 4, 1, nil) },
		"bad coord": func() { NewCoordinator(window.Seq(5), 0, 4, 4, 1) },
		"bad level": func() { NewCoordinator(window.Seq(5), 2, 4, 1, 1) },
		"bad cmass": func() { NewCoordinator(window.Seq(5), 2, 4, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
	site := NewSite(0, 2, 4, 10, ship)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for wrong row length")
			}
		}()
		site.Observe([]float64{1}, 0)
	}()
	// Zero rows skipped; empty flush is a no-op.
	site.Observe([]float64{0, 0}, 0)
	site.Flush()
	if site.RowsShipped() != 0 {
		t.Fatal("zero row produced shipment")
	}
}

func TestCoordinatorRejectsNilSketch(t *testing.T) {
	coord := NewCoordinator(window.Seq(5), 2, 4, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	coord.Receive(Block{})
}

func TestDistributedOutOfOrderBlocks(t *testing.T) {
	// Sites with clock skew deliver overlapping, out-of-order blocks;
	// the coordinator must stay consistent.
	const d, win = 4, 800
	spec := window.Seq(win)
	coord := NewCoordinator(spec, d, 32, 4, 240)
	a := NewSite(0, d, 16, 240, coord.Receive)
	b := NewSite(1, d, 16, 240, coord.Receive)
	oracle := window.NewExact(spec, d)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 3000; i += 2 {
		r1, r2 := randRow(rng, d), randRow(rng, d)
		// Site b lags by 5 ticks worth of buffered rows.
		a.Observe(r1, float64(i))
		b.Observe(r2, float64(i+1))
		oracle.Update(r1, float64(i))
		oracle.Update(r2, float64(i+1))
	}
	a.Flush()
	b.Flush()
	if e := oracle.CovaErr(coord.Query(2999)); e > 0.35 {
		t.Fatalf("out-of-order error = %v", e)
	}
}
