package serve

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
)

const ammTenantCfg = `{"framework":"lm-amm","window":"sequence","size":64,"d":5,"d_b":2,"ell":8,"b":4}`

// ammIngestBody builds an ingest payload of n stacked rows [a|b] of
// total width 5 with correlated sides, timestamps 1..n.
func ammIngestBody(n int) string {
	var sb strings.Builder
	sb.WriteString(`{"updates":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		z := float64(i%7) - 3
		fmt.Fprintf(&sb, `{"row":[%g,%g,%g,%g,%g],"t":%d}`,
			z, z*0.5, 1.0, z*0.25, z, i+1)
	}
	sb.WriteString("]}")
	return sb.String()
}

func TestTenantAMMQuery(t *testing.T) {
	ts, _ := newTenantServer(t)
	resp := doReq(t, "PUT", ts.URL+"/v1/tenants/pair", ammTenantCfg)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	resp = doReq(t, "POST", ts.URL+"/v2/tenants/pair/rows", ammIngestBody(40))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	var got ammResponse
	resp = doReq(t, "GET", ts.URL+"/v2/tenants/pair/amm", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("amm status %d", resp.StatusCode)
	}
	decode(t, resp, &got)
	if got.DA != 3 || got.DB != 2 {
		t.Fatalf("dims %d×%d, want 3×2", got.DA, got.DB)
	}
	if len(got.Product) != 3 || len(got.Product[0]) != 2 {
		t.Fatalf("product shape %d×%d", len(got.Product), len(got.Product[0]))
	}
	if got.T != 40 {
		t.Fatalf("default t = %v, want the ingest clock 40", got.T)
	}

	// POST with a JSON-body timestamp answers identically to GET ?t=.
	var viaGet, viaPost ammResponse
	resp = doReq(t, "GET", ts.URL+"/v2/tenants/pair/amm?t=45", "")
	decode(t, resp, &viaGet)
	resp = doReq(t, "POST", ts.URL+"/v2/tenants/pair/amm", `{"t":45}`)
	decode(t, resp, &viaPost)
	if viaGet.T != 45 || viaPost.T != 45 {
		t.Fatalf("t = %v / %v, want 45", viaGet.T, viaPost.T)
	}
	for i := range viaGet.Product {
		for j := range viaGet.Product[i] {
			if viaGet.Product[i][j] != viaPost.Product[i][j] {
				t.Fatalf("GET and POST products differ at (%d,%d)", i, j)
			}
		}
	}

	// An empty POST body means "query now", like omitting ?t=.
	resp = doReq(t, "POST", ts.URL+"/v2/tenants/pair/amm", "")
	decode(t, resp, &viaPost)
	if viaPost.T != 40 {
		t.Fatalf("empty-body POST t = %v, want 40", viaPost.T)
	}

	// A timestamp behind the ingest clock is rejected.
	resp = doReq(t, "POST", ts.URL+"/v2/tenants/pair/amm", `{"t":5}`)
	if resp.StatusCode != http.StatusBadRequest || decodeError(t, resp).Code != CodeInvalidArgument {
		t.Fatalf("stale t: status %d", resp.StatusCode)
	}
	resp = doReq(t, "POST", ts.URL+"/v2/tenants/pair/amm", `{"t":`)
	if resp.StatusCode != http.StatusBadRequest || decodeError(t, resp).Code != CodeInvalidJSON {
		t.Fatalf("bad json: status %d", resp.StatusCode)
	}
}

func TestTenantAMMUnsupported(t *testing.T) {
	ts, _ := newTenantServer(t)
	// The default tenant is LM-FD — covariance-only, no paired plane.
	resp := doReq(t, "GET", ts.URL+"/v2/tenants/default/amm", "")
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status %d, want 501", resp.StatusCode)
	}
	eb := decodeError(t, resp)
	if eb.Code != CodeUnsupported || !strings.Contains(eb.Message, "lm-amm") {
		t.Fatalf("error %+v", eb)
	}
	resp = doReq(t, "GET", ts.URL+"/v2/tenants/ghost/amm", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant status %d", resp.StatusCode)
	}
	resp = doReq(t, "DELETE", ts.URL+"/v2/tenants/default/amm", "")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE status %d, want 405", resp.StatusCode)
	}
}

func TestTenantAMMV1Alias(t *testing.T) {
	ts, _ := newTenantServer(t)
	resp := doReq(t, "PUT", ts.URL+"/v1/tenants/pair", ammTenantCfg)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	resp = doReq(t, "POST", ts.URL+"/v1/tenants/pair/ingest", ammIngestBody(20))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	resp = doReq(t, "GET", ts.URL+"/v1/tenants/pair/amm", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 amm status %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" ||
		!strings.Contains(resp.Header.Get("Link"), "/v2/tenants/{id}/amm") {
		t.Fatalf("v1 alias lacks deprecation headers: %v", resp.Header)
	}
	var got ammResponse
	decode(t, resp, &got)
	if got.DA != 3 || got.DB != 2 || len(got.Product) != 3 {
		t.Fatalf("v1 amm response %+v", got)
	}
}
