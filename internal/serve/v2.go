package serve

// The /v2 route group: the tenant-first regrammar of the HTTP API.
// Where /v1 grew tenant routes alongside legacy single-sketch aliases,
// /v2 makes the tenant the only noun — the default tenant is addressed
// by name — and adds the streaming ingest plane:
//
//	GET    /v2/tenants                     list tenants
//	PUT    /v2/tenants/{id}                create (body: registry.Config)
//	GET    /v2/tenants/{id}                summary + config
//	DELETE /v2/tenants/{id}                remove
//	POST   /v2/tenants/{id}/rows           batch ingest (as /v1/.../ingest)
//	POST   /v2/tenants/{id}/stream         streaming ingest (NDJSON or
//	                                       binary frames; see stream.go)
//	GET    /v2/tenants/{id}/approximation  window approximation
//	GET    /v2/tenants/{id}/amm            windowed AᵀB product estimate
//	POST   /v2/tenants/{id}/amm            same, timestamp in a JSON body
//	GET    /v2/tenants/{id}/pca            top-k window PCA
//	GET    /v2/tenants/{id}/stats          sketch metadata + internals
//	GET    /v2/tenants/{id}/health         liveness + residency
//	GET    /v2/tenants/{id}/snapshot       binary snapshot
//	POST   /v2/tenants/{id}/snapshot       restore
//	POST   /v2/rows                        multi-tenant bulk ingest
//	GET    /v2/health                      server health (audit + WAL)
//
// Every /v1 response carries "Deprecation: true" plus a Link header
// naming its /v2 successor; /v1 bodies are byte-for-byte unchanged.
// The /v2 bulk results and stream acks share one per-item envelope
// (itemResult) so clients parse a single shape everywhere.

import (
	"fmt"
	"net/http"
)

// DefaultStreamQueue is the per-tenant bound on in-flight stream
// blocks before the backpressure gate sheds load; see WithStreamQueue.
const DefaultStreamQueue = 64

// WithStreamQueue bounds each tenant's in-flight streaming-ingest
// blocks: a stream open or block beyond the bound is shed with 429 +
// Retry-After (or an "overloaded" ack mid-stream) instead of queueing
// unboundedly. The default is DefaultStreamQueue.
func WithStreamQueue(n int) Option {
	return func(s *Server) {
		if n < 1 {
			panic(fmt.Sprintf("serve: stream queue %d", n))
		}
		s.streamQueue = n
	}
}

// deprecated decorates a /v1 handler with the RFC-style deprecation
// headers pointing at its /v2 successor. Bodies are untouched.
func (s *Server) deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	link := fmt.Sprintf("<%s>; rel=\"successor-version\"", successor)
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", link)
		h(w, r)
	}
}

// registerV2 mounts the /v2 route group; handle is Handler's
// method-pattern registrar.
func (s *Server) registerV2(handle func(pattern string, h http.HandlerFunc, allow ...string)) {
	handle("GET /v2/tenants", s.handleTenantList, "GET")
	handle("PUT /v2/tenants/{id}", s.handleTenantPut)  // fallback shared below
	handle("GET /v2/tenants/{id}", s.handleTenantInfo) // fallback shared below
	handle("DELETE /v2/tenants/{id}", s.handleTenantDelete, "GET", "PUT", "DELETE")
	handle("POST /v2/tenants/{id}/rows", s.handleTenantIngest, "POST")
	handle("POST /v2/tenants/{id}/stream", s.handleStream, "POST")
	handle("GET /v2/tenants/{id}/approximation", s.handleTenantApproximation, "GET")
	handle("GET /v2/tenants/{id}/amm", s.handleTenantAMM) // fallback shared below
	handle("POST /v2/tenants/{id}/amm", s.handleTenantAMM, "GET", "POST")
	handle("GET /v2/tenants/{id}/pca", s.handleTenantPCA, "GET")
	handle("GET /v2/tenants/{id}/stats", s.handleTenantStats, "GET")
	handle("GET /v2/tenants/{id}/health", s.handleTenantHealth, "GET")
	handle("GET /v2/tenants/{id}/snapshot", s.handleTenantSnapshotGet) // fallback shared below
	handle("POST /v2/tenants/{id}/snapshot", s.handleTenantSnapshotPost, "GET", "POST")
	handle("POST /v2/rows", s.handleV2Bulk, "POST")
	handle("GET /v2/health", s.handleHealth, "GET")
}

// itemResult is the unified per-item outcome envelope shared by the
// /v2 bulk-ingest results and the stream ack frames: Index orders the
// item within its request or stream, ID names the tenant where one is
// not implied by the route, and Error reuses the top-level envelope's
// {"code","message"} body.
type itemResult struct {
	Index    int        `json:"index"`
	ID       string     `json:"id,omitempty"`
	Accepted int        `json:"accepted"`
	LastT    float64    `json:"last_t,omitempty"`
	Error    *errorBody `json:"error,omitempty"`
}

type v2BulkResponse struct {
	Results []itemResult `json:"results"`
}

// handleV2Bulk is POST /v2/rows: the /v1/ingest/bulk semantics (per-
// tenant all-or-nothing batches, independent tenants, always 200) with
// the unified itemResult envelope.
func (s *Server) handleV2Bulk(w http.ResponseWriter, r *http.Request) {
	req, apiErr := s.decodeBulk(w, r)
	if apiErr != nil {
		apiErr.write(w)
		return
	}
	results := make([]itemResult, 0, len(req.Tenants))
	for i, item := range req.Tenants {
		res := itemResult{Index: i, ID: item.ID}
		t, ok := s.treg.Get(item.ID)
		if !ok {
			// Attribute the miss to the requested key: a bulk client
			// hammering a deleted tenant shows up on the events plane.
			s.hot.ObserveEvent(item.ID)
			res.Error = &errorBody{Code: CodeNotFound, Message: fmt.Sprintf("no tenant %q", item.ID)}
		} else if resp, apiErr := s.ingestTenant(t, item.Updates); apiErr != nil {
			res.Error = &errorBody{Code: apiErr.code, Message: apiErr.msg}
		} else {
			res.Accepted = resp.Accepted
			res.LastT = resp.LastT
		}
		results = append(results, res)
	}
	writeJSON(w, v2BulkResponse{Results: results})
}
