// Package serve exposes a sliding-window matrix sketch over HTTP: an
// ingest endpoint for timestamped rows, query endpoints for the window
// approximation and its PCA, and a stats endpoint. One Server guards
// one sketch; all handlers serialise on its mutex (sketch updates are
// cheap relative to request handling, so a single writer lock is the
// right simplicity/performance trade).
package serve

import (
	"encoding"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"swsketch/internal/core"
	"swsketch/internal/mat"
	"swsketch/internal/pca"
)

// Server wraps a WindowSketch for HTTP access.
type Server struct {
	mu      sync.Mutex
	sk      core.WindowSketch
	d       int
	updates uint64
	lastT   float64
	seen    bool
}

// NewServer returns a server around the given sketch and dimension.
func NewServer(sk core.WindowSketch, d int) *Server {
	if d < 1 {
		panic(fmt.Sprintf("serve: dimension %d", d))
	}
	return &Server{sk: sk, d: d}
}

// Handler returns the HTTP routes:
//
//	POST /v1/ingest        body: {"updates":[{"row":[...],"t":1.5},...]}
//	GET  /v1/approximation?t=<time>   → {"rows":[[...]]}
//	GET  /v1/pca?t=<time>&k=<k>       → {"components":[[...]],"explained":[...]}
//	GET  /v1/stats                    → sketch metadata
//	GET  /v1/snapshot                 → binary sketch snapshot
//	POST /v1/snapshot                 ← restore a snapshot
//	GET  /healthz                     → 200 ok
//
// Snapshot endpoints require the underlying sketch to support binary
// snapshots (SWR, SWOR, SWOR-ALL, LM-FD do); others get 501.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ingest", s.handleIngest)
	mux.HandleFunc("/v1/approximation", s.handleApproximation)
	mux.HandleFunc("/v1/pca", s.handlePCA)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

type ingestRequest struct {
	Updates []ingestUpdate `json:"updates"`
}

type ingestUpdate struct {
	Row []float64 `json:"row,omitempty"`
	// Sparse form: parallel indices/values; mutually exclusive with Row.
	Idx []int     `json:"idx,omitempty"`
	Val []float64 `json:"val,omitempty"`
	T   float64   `json:"t"`
}

type ingestResponse struct {
	Accepted int     `json:"accepted"`
	LastT    float64 `json:"last_t"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req ingestRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if len(req.Updates) == 0 {
		httpError(w, http.StatusBadRequest, "no updates")
		return
	}
	// Validate before touching the sketch so a bad batch is all-or-
	// nothing.
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.lastT
	seen := s.seen
	allDense := true
	for _, u := range req.Updates {
		if len(u.Idx) > 0 || len(u.Val) > 0 {
			allDense = false
			break
		}
	}
	if allDense {
		// Fast path: an all-dense batch goes through the sketch's bulk
		// ingest in one call, amortising per-row bookkeeping.
		rows := make([][]float64, 0, len(req.Updates))
		times := make([]float64, 0, len(req.Updates))
		for i, u := range req.Updates {
			if seen && u.T < prev {
				httpError(w, http.StatusBadRequest, "update %d: timestamp %v precedes %v", i, u.T, prev)
				return
			}
			if len(u.Row) != s.d {
				httpError(w, http.StatusBadRequest, "update %d: row length %d, want %d", i, len(u.Row), s.d)
				return
			}
			if err := checkFiniteVals(u.Row); err != nil {
				httpError(w, http.StatusBadRequest, "update %d: %v", i, err)
				return
			}
			rows = append(rows, u.Row)
			times = append(times, u.T)
			prev, seen = u.T, true
		}
		if err := applyBatch(s.sk, rows, times); err != nil {
			httpError(w, http.StatusConflict, "ingest rejected by sketch: %v", err)
			return
		}
		s.updates += uint64(len(req.Updates))
		s.lastT, s.seen = prev, true
		writeJSON(w, ingestResponse{Accepted: len(req.Updates), LastT: prev})
		return
	}
	rows := make([]func(), 0, len(req.Updates))
	for i, u := range req.Updates {
		if seen && u.T < prev {
			httpError(w, http.StatusBadRequest, "update %d: timestamp %v precedes %v", i, u.T, prev)
			return
		}
		apply, err := s.prepareUpdate(u)
		if err != nil {
			httpError(w, http.StatusBadRequest, "update %d: %v", i, err)
			return
		}
		rows = append(rows, apply)
		prev, seen = u.T, true
	}
	// The sketch enforces invariants the server cannot fully check —
	// e.g. after a snapshot restore the sketch's internal clock may be
	// ahead of the server's. Surface those as 409 instead of crashing
	// the connection.
	if err := applyAll(rows); err != nil {
		httpError(w, http.StatusConflict, "ingest rejected by sketch: %v", err)
		return
	}
	s.updates += uint64(len(req.Updates))
	s.lastT, s.seen = prev, true
	writeJSON(w, ingestResponse{Accepted: len(req.Updates), LastT: prev})
}

type approximationResponse struct {
	Rows [][]float64 `json:"rows"`
	T    float64     `json:"t"`
}

func (s *Server) handleApproximation(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	t, ok := s.queryTime(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	b := s.sk.Query(t)
	s.mu.Unlock()
	rows := make([][]float64, b.Rows())
	for i := range rows {
		rows[i] = b.RowCopy(i)
	}
	writeJSON(w, approximationResponse{Rows: rows, T: t})
}

type pcaResponse struct {
	Components [][]float64 `json:"components"`
	Explained  []float64   `json:"explained"`
	T          float64     `json:"t"`
}

func (s *Server) handlePCA(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	t, ok := s.queryTime(w, r)
	if !ok {
		return
	}
	k := 3
	if kq := r.URL.Query().Get("k"); kq != "" {
		var err error
		k, err = strconv.Atoi(kq)
		if err != nil || k < 1 {
			httpError(w, http.StatusBadRequest, "bad k %q", kq)
			return
		}
	}
	s.mu.Lock()
	b := s.sk.Query(t)
	s.mu.Unlock()
	if b.Rows() == 0 {
		writeJSON(w, pcaResponse{Components: [][]float64{}, Explained: []float64{}, T: t})
		return
	}
	res := pca.Compute(b, k)
	comps := make([][]float64, res.Components.Rows())
	for i := range comps {
		comps[i] = res.Components.RowCopy(i)
	}
	writeJSON(w, pcaResponse{Components: comps, Explained: res.Explained, T: t})
}

type statsResponse struct {
	Algorithm  string  `json:"algorithm"`
	Dimension  int     `json:"dimension"`
	RowsStored int     `json:"rows_stored"`
	Updates    uint64  `json:"updates"`
	LastT      float64 `json:"last_t"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.mu.Lock()
	resp := statsResponse{
		Algorithm:  s.sk.Name(),
		Dimension:  s.d,
		RowsStored: s.sk.RowsStored(),
		Updates:    s.updates,
		LastT:      s.lastT,
	}
	s.mu.Unlock()
	writeJSON(w, resp)
}

// queryTime parses ?t=; when omitted, the last ingested timestamp is
// used (query "now").
func (s *Server) queryTime(w http.ResponseWriter, r *http.Request) (float64, bool) {
	tq := r.URL.Query().Get("t")
	if tq == "" {
		s.mu.Lock()
		t := s.lastT
		s.mu.Unlock()
		return t, true
	}
	t, err := strconv.ParseFloat(tq, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad t %q", tq)
		return 0, false
	}
	s.mu.Lock()
	last, seen := s.lastT, s.seen
	s.mu.Unlock()
	if seen && t < last {
		httpError(w, http.StatusBadRequest, "t %v precedes last ingested %v", t, last)
		return 0, false
	}
	return t, true
}

type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// handleSnapshot serves GET (download the sketch state) and POST
// (replace the sketch state) when the sketch supports binary
// snapshots.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		m, ok := s.sk.(encoding.BinaryMarshaler)
		if !ok {
			httpError(w, http.StatusNotImplemented, "%s does not support snapshots", s.sk.Name())
			return
		}
		s.mu.Lock()
		data, err := m.MarshalBinary()
		s.mu.Unlock()
		if err != nil {
			httpError(w, http.StatusInternalServerError, "snapshot: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(data)
	case http.MethodPost:
		u, ok := s.sk.(encoding.BinaryUnmarshaler)
		if !ok {
			httpError(w, http.StatusNotImplemented, "%s does not support snapshots", s.sk.Name())
			return
		}
		const maxSnapshot = 1 << 30
		data, err := io.ReadAll(io.LimitReader(r.Body, maxSnapshot))
		if err != nil {
			httpError(w, http.StatusBadRequest, "read body: %v", err)
			return
		}
		s.mu.Lock()
		err = u.UnmarshalBinary(data)
		if err == nil {
			s.updates = 0
			s.seen = false
		}
		s.mu.Unlock()
		if err != nil {
			httpError(w, http.StatusBadRequest, "restore: %v", err)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "restored")
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST required")
	}
}

// checkFiniteVals rejects NaN and overflow-ish values before they
// reach a sketch.
func checkFiniteVals(vals []float64) error {
	for j, v := range vals {
		if v != v || v > 1e308 || v < -1e308 { // NaN or overflow-ish
			return fmt.Errorf("non-finite value at %d", j)
		}
	}
	return nil
}

// prepareUpdate validates one ingest update and returns a closure that
// applies it; validation and application are split so a bad batch is
// rejected atomically.
func (s *Server) prepareUpdate(u ingestUpdate) (func(), error) {
	checkVals := checkFiniteVals
	if len(u.Idx) > 0 || len(u.Val) > 0 {
		if len(u.Row) > 0 {
			return nil, fmt.Errorf("row and idx/val are mutually exclusive")
		}
		if len(u.Idx) != len(u.Val) {
			return nil, fmt.Errorf("%d indices but %d values", len(u.Idx), len(u.Val))
		}
		prev := -1
		for _, ix := range u.Idx {
			if ix <= prev || ix >= s.d {
				return nil, fmt.Errorf("sparse index %d invalid for dimension %d", ix, s.d)
			}
			prev = ix
		}
		if err := checkVals(u.Val); err != nil {
			return nil, err
		}
		sr := mat.SparseRow{Idx: u.Idx, Val: u.Val}
		if su, ok := s.sk.(core.SparseUpdater); ok {
			return func() { su.UpdateSparse(sr, u.T) }, nil
		}
		dense := sr.Dense(s.d)
		return func() { s.sk.Update(dense, u.T) }, nil
	}
	if len(u.Row) != s.d {
		return nil, fmt.Errorf("row length %d, want %d", len(u.Row), s.d)
	}
	if err := checkVals(u.Row); err != nil {
		return nil, err
	}
	return func() { s.sk.Update(u.Row, u.T) }, nil
}

// applyBatch feeds an all-dense batch through the sketch's bulk path,
// converting sketch panics into errors like applyAll.
func applyBatch(sk core.WindowSketch, rows [][]float64, times []float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	sk.UpdateBatch(rows, times)
	return nil
}

// applyAll runs the prepared updates, converting sketch panics
// (invariant violations) into errors.
func applyAll(rows []func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	for _, apply := range rows {
		apply()
	}
	return nil
}
