// Package serve exposes sliding-window matrix sketches over HTTP. A
// Server fronts a multi-tenant registry of named sketches
// (internal/registry): every tenant gets ingest and query endpoints
// under /v1/tenants/{id}/..., and the legacy single-sketch routes
// under /v1/ remain as thin aliases for the reserved "default" tenant
// — the sketch passed to NewServer. Per-tenant access serialises on
// the tenant's own mutex, so ingest into different tenants runs in
// parallel.
//
// Routes are registered with Go 1.22 method patterns:
//
//	POST /v1/ingest         body: {"updates":[{"row":[...],"t":1.5},...]}
//	POST /v1/ingest/bulk    body: {"tenants":[{"id":"a","updates":[...]},...]}
//	GET  /v1/approximation  [?t=...]      window approximation B
//	GET  /v1/pca            [?t=...&k=3]  top-k window PCA
//	GET  /v1/stats          sketch metadata + "internals" (Introspector)
//	GET  /v1/health         accuracy health: ok/degraded vs the audit threshold
//	                        (?fresh=1 forces an evaluation) (WithAudit)
//	GET  /v1/snapshot       binary sketch snapshot
//	POST /v1/snapshot       restore a snapshot
//
//	GET    /v1/tenants                       list tenants
//	PUT    /v1/tenants/{id}                  create a tenant (body: registry.Config)
//	GET    /v1/tenants/{id}                  one tenant's summary + config
//	DELETE /v1/tenants/{id}                  remove a tenant (and its spill file)
//	POST   /v1/tenants/{id}/ingest           as /v1/ingest
//	GET    /v1/tenants/{id}/approximation    as /v1/approximation
//	GET    /v1/tenants/{id}/amm              windowed AᵀB estimate (paired
//	POST   /v1/tenants/{id}/amm              frameworks only; 501 otherwise)
//	GET    /v1/tenants/{id}/pca              as /v1/pca
//	GET    /v1/tenants/{id}/stats            as /v1/stats, plus tenant fields
//	GET    /v1/tenants/{id}/health           liveness + residency (no audit)
//	GET    /v1/tenants/{id}/snapshot         as /v1/snapshot
//	POST   /v1/tenants/{id}/snapshot         restore
//
//	GET  /healthz           200 ok
//	GET  /metrics           Prometheus text exposition (WithMetrics)
//	GET  /debug/trace       event-trace JSONL dump (?format=summary for counts)
//	                        (WithTrace)
//	GET  /debug/hotkeys     hot-tenant top-K + traffic-skew telemetry
//	                        (WithHotKeys)
//	     /debug/pprof/...   runtime profiles (WithPprof)
//
// Every error response under /v1 uses the machine-readable envelope
//
//	{"error":{"code":"<code>","message":"<human-readable detail>"}}
//
// with the following codes:
//
//	invalid_json        400  request body is not valid JSON for the endpoint
//	invalid_argument    400  a field or query parameter is out of range
//	method_not_allowed  405  wrong HTTP method (Allow header lists valid ones)
//	not_found           404  unknown route or unknown tenant
//	conflict            409  the sketch's invariants rejected the operation
//	                         (e.g. a timestamp behind a restored clock), or a
//	                         tenant with that ID already exists
//	unsupported         501  the sketch lacks the capability (snapshots)
//	body_too_large      413  body exceeded the WithMaxBody limit
//	internal            500  server-side failure (e.g. a spilled tenant whose
//	                         state could not be restored from disk)
//
// Snapshot endpoints require the underlying sketch to support binary
// snapshots (SWR, SWOR, SWOR-ALL, LM-FD do); others get 501. Tenant
// IDs are restricted to [A-Za-z0-9._-], at most 128 bytes; "default"
// names the adopted legacy sketch and cannot be created or deleted.
package serve

import (
	"encoding"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"swsketch/internal/core"
	"swsketch/internal/mat"
	"swsketch/internal/obs"
	"swsketch/internal/obs/audit"
	"swsketch/internal/obs/hh"
	"swsketch/internal/registry"
	"swsketch/internal/trace"
	"swsketch/internal/wal"
)

// Error codes of the uniform error envelope; see the package comment.
const (
	CodeInvalidJSON      = "invalid_json"
	CodeInvalidArgument  = "invalid_argument"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeNotFound         = "not_found"
	CodeConflict         = "conflict"
	CodeUnsupported      = "unsupported"
	CodeBodyTooLarge     = "body_too_large"
	CodeInternal         = "internal"
)

// DefaultTenant is the reserved tenant ID aliased by the legacy
// single-sketch routes (/v1/ingest and friends): the sketch passed to
// NewServer. It cannot be created, deleted, or evicted over the API.
const DefaultTenant = "default"

// Server routes HTTP traffic onto a tenant registry. The sketch given
// to NewServer is adopted as the pinned "default" tenant; further
// tenants are created over the API or pre-registered in the registry
// passed via WithRegistry.
type Server struct {
	treg *registry.Registry
	def  *registry.Tenant
	d    int // default tenant's dimension

	reg     *obs.Registry
	pprof   bool
	maxBody int64

	tr    *trace.Tracer
	audit *audit.Auditor
	log   *slog.Logger

	wal         *wal.Log
	walDamaged  atomic.Bool
	streamQueue int

	hot *hh.Sidecar

	streamRows, streamBlocks, streamShed *obs.Counter
	streamOpen                           *obs.Gauge

	reqSeq    atomic.Uint64
	reqPrefix string
}

// Option configures a Server; see WithMetrics, WithPprof, WithMaxBody.
type Option func(*Server)

// WithMetrics wraps the default tenant's sketch in an obs.Instrumented
// recording ingest/query latencies and internals into reg, instruments
// every route with request counters and latency histograms, and mounts
// GET /metrics serving reg's Prometheus text exposition. When the
// server builds its own registry (no WithRegistry), the registry's
// tenant-lifecycle metrics land in reg too.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Server) { s.reg = reg }
}

// WithPprof mounts net/http/pprof under /debug/pprof/.
func WithPprof() Option {
	return func(s *Server) { s.pprof = true }
}

// WithMaxBody caps request body sizes (ingest and snapshot restore) at
// n bytes; larger bodies get a 413 body_too_large envelope. Zero (the
// default) keeps ingest unlimited and the snapshot restore at its
// built-in 1 GiB guard.
func WithMaxBody(n int64) Option {
	return func(s *Server) {
		if n < 1 {
			panic(fmt.Sprintf("serve: max body %d", n))
		}
		s.maxBody = n
	}
}

// WithTrace attaches an event tracer: the default sketch's structural
// transitions emit into it (when the sketch is trace.Traceable),
// completed requests emit http_request events tagged with their
// request IDs, and GET /debug/trace serves the ring as JSONL. When
// metrics are also active the tracer's per-kind counts and exemplar
// event IDs are bridged into the registry.
func WithTrace(tr *trace.Tracer) Option {
	return func(s *Server) { s.tr = tr }
}

// WithAudit attaches an online accuracy auditor to the default
// tenant: every ingested row is shadowed, cova-err is evaluated on
// the auditor's stride, and GET /v1/health reports ok/degraded
// against its threshold. The auditor's gauges live in whatever
// registry it was built with — pass the same registry to WithMetrics
// to serve them on /metrics.
func WithAudit(a *audit.Auditor) Option {
	return func(s *Server) { s.audit = a }
}

// WithLogger enables structured request logging: one slog record per
// completed request, carrying the request ID that also tags the
// request's trace events. The default is silent.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) { s.log = l }
}

// WithRegistry mounts a caller-built tenant registry (eviction TTL,
// spill directory, caps — see internal/registry's options) instead of
// the plain one the server otherwise creates. The NewServer sketch is
// still adopted into it as the pinned "default" tenant.
func WithRegistry(reg *registry.Registry) Option {
	return func(s *Server) {
		if reg == nil {
			panic("serve: nil registry")
		}
		s.treg = reg
	}
}

// NewServer returns a server around the given default sketch and
// dimension.
func NewServer(sk core.WindowSketch, d int, opts ...Option) *Server {
	if d < 1 {
		panic(fmt.Sprintf("serve: dimension %d", d))
	}
	s := &Server{d: d, streamQueue: DefaultStreamQueue}
	for _, o := range opts {
		o(s)
	}
	// Request IDs: a short per-server entropy prefix plus a counter, so
	// IDs from restarted servers don't collide in aggregated logs.
	s.reqPrefix = strconv.FormatInt(time.Now().UnixNano()&0xffffff, 36)
	if s.treg == nil {
		var ropts []registry.Option
		if s.reg != nil {
			ropts = append(ropts, registry.WithObs(s.reg))
		}
		if s.tr != nil {
			ropts = append(ropts, registry.WithTrace(s.tr))
		}
		treg, err := registry.New(ropts...)
		if err != nil {
			panic(fmt.Sprintf("serve: registry: %v", err))
		}
		s.treg = treg
	}
	def, err := s.treg.Adopt(DefaultTenant, sk, d)
	if errors.Is(err, registry.ErrExists) {
		// The name is reserved: discard any stub a spill-dir scan may
		// have registered under it and take the slot.
		s.treg.Delete(DefaultTenant)
		def, err = s.treg.Adopt(DefaultTenant, sk, d)
	}
	if err != nil {
		panic(fmt.Sprintf("serve: adopt default tenant: %v", err))
	}
	s.def = def
	if s.tr != nil {
		if t, ok := sk.(trace.Traceable); ok {
			t.SetTracer(s.tr)
		}
	}
	if s.reg != nil {
		// Scrape-time reads of the sketch (rows stored, internals) run
		// under the default tenant's lock so /metrics never races an
		// ingest.
		instrumented := obs.NewInstrumented(sk, s.reg, obs.WithSync(func(f func()) {
			if s.def.Acquire() != nil {
				return // the pinned default tenant cannot actually fail
			}
			defer s.def.Release()
			f()
		}))
		_ = s.def.Acquire()
		s.def.SetServing(instrumented)
		s.def.Release()
		obs.RegisterRuntimeMetrics(s.reg)
		obs.RegisterTracer(s.reg, s.tr)
		s.streamRows = s.reg.Counter("swsketch_stream_rows_total",
			"Rows accepted over streaming ingest connections.", nil)
		s.streamBlocks = s.reg.Counter("swsketch_stream_blocks_total",
			"Blocks acknowledged over streaming ingest connections.", nil)
		s.streamShed = s.reg.Counter("swsketch_stream_overloaded_total",
			"Stream opens and blocks shed by the per-tenant backpressure gate.", nil)
		s.streamOpen = s.reg.Gauge("swsketch_stream_open",
			"Streaming ingest connections currently open.", nil)
	}
	if s.hot != nil {
		if s.tr != nil {
			s.hot.SetTracer(s.tr)
		}
		if s.reg != nil {
			s.hot.RegisterMetrics(s.reg)
		}
		// Every successful tenant acquisition feeds the sidecar's
		// touches plane — request-level activity independent of rows.
		s.treg.SetTouchHook(s.hot.Touch)
		if s.wal != nil {
			s.wal.SetAppendHook(func(tenant string, _, bytes int) {
				s.hot.ObserveWAL(tenant, bytes)
			})
		}
	}
	if s.wal != nil || s.hot != nil {
		s.treg.SetEvictHook(func(id string, spilled bool) {
			if s.wal != nil {
				// Spilled or deleted tenants no longer need their WAL records
				// for recovery; release them so closed segments can truncate.
				s.wal.Released(id)
			}
			if s.hot != nil && !spilled {
				// A dropped or deleted tenant leaves the top-K tracker; its
				// count-min contributions decay out on their own.
				s.hot.Forget(id)
			}
		})
	}
	return s
}

// Registry returns the server's tenant registry (for sweepers and
// direct programmatic access).
func (s *Server) Registry() *registry.Registry { return s.treg }

// Handler returns the HTTP routes listed in the package comment.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc, allow ...string) {
		// Method-pattern route plus a same-path fallback answering any
		// other method with a 405 envelope (the stock ServeMux 405 is
		// plain text).
		mux.HandleFunc(pattern, s.wrap(strings.TrimSpace(pattern[strings.Index(pattern, " "):]), h))
		if len(allow) > 0 {
			mux.HandleFunc(strings.TrimSpace(pattern[strings.Index(pattern, " "):]), methodNotAllowed(allow...))
		}
	}
	// /v1 routes stay byte-compatible but every response carries
	// Deprecation and successor-version Link headers pointing at the
	// /v2 grammar (see registerV2).
	v1 := func(pattern, successor string, h http.HandlerFunc, allow ...string) {
		handle(pattern, s.deprecated(successor, h), allow...)
	}
	v1("POST /v1/ingest", "/v2/tenants/default/rows", s.handleIngest, "POST")
	v1("POST /v1/ingest/bulk", "/v2/rows", s.handleBulkIngest, "POST")
	v1("GET /v1/approximation", "/v2/tenants/default/approximation", s.handleApproximation, "GET")
	v1("GET /v1/pca", "/v2/tenants/default/pca", s.handlePCA, "GET")
	v1("GET /v1/stats", "/v2/tenants/default/stats", s.handleStats, "GET")
	v1("GET /v1/health", "/v2/health", s.handleHealth, "GET")
	v1("GET /v1/snapshot", "/v2/tenants/default/snapshot", s.handleSnapshotGet) // fallback shared below
	v1("POST /v1/snapshot", "/v2/tenants/default/snapshot", s.handleSnapshotPost, "GET", "POST")
	v1("GET /v1/tenants", "/v2/tenants", s.handleTenantList, "GET")
	v1("PUT /v1/tenants/{id}", "/v2/tenants/{id}", s.handleTenantPut)  // fallback shared below
	v1("GET /v1/tenants/{id}", "/v2/tenants/{id}", s.handleTenantInfo) // fallback shared below
	v1("DELETE /v1/tenants/{id}", "/v2/tenants/{id}", s.handleTenantDelete, "GET", "PUT", "DELETE")
	v1("POST /v1/tenants/{id}/ingest", "/v2/tenants/{id}/rows", s.handleTenantIngest, "POST")
	v1("GET /v1/tenants/{id}/approximation", "/v2/tenants/{id}/approximation", s.handleTenantApproximation, "GET")
	v1("GET /v1/tenants/{id}/amm", "/v2/tenants/{id}/amm", s.handleTenantAMM) // fallback shared below
	v1("POST /v1/tenants/{id}/amm", "/v2/tenants/{id}/amm", s.handleTenantAMM, "GET", "POST")
	v1("GET /v1/tenants/{id}/pca", "/v2/tenants/{id}/pca", s.handleTenantPCA, "GET")
	v1("GET /v1/tenants/{id}/stats", "/v2/tenants/{id}/stats", s.handleTenantStats, "GET")
	v1("GET /v1/tenants/{id}/health", "/v2/tenants/{id}/health", s.handleTenantHealth, "GET")
	v1("GET /v1/tenants/{id}/snapshot", "/v2/tenants/{id}/snapshot", s.handleTenantSnapshotGet) // fallback shared below
	v1("POST /v1/tenants/{id}/snapshot", "/v2/tenants/{id}/snapshot", s.handleTenantSnapshotPost, "GET", "POST")
	s.registerV2(handle)
	handle("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	}, "GET")
	if s.reg != nil {
		mux.Handle("GET /metrics", s.reg.Handler())
		mux.HandleFunc("/metrics", methodNotAllowed("GET"))
	}
	if s.tr != nil {
		handle("GET /debug/trace", s.handleTrace, "GET")
	}
	if s.hot != nil {
		handle("GET /debug/hotkeys", s.handleHotkeys, "GET")
	}
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	// Catch-all so unknown routes answer with the envelope too.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusNotFound, CodeNotFound, "no route %s %s", r.Method, r.URL.Path)
	})
	return mux
}

// wrap decorates a handler with the per-request observability plane:
// an X-Request-ID response header, per-route latency/count metrics
// (WithMetrics), an http_request trace event carrying the request ID
// (WithTrace), and one slog record per completed request (WithLogger).
// With none of the three active it is the identity. Route labels use
// the registered pattern ("/v1/tenants/{id}/ingest"), not the raw
// path, so metric cardinality stays bounded by the route table.
func (s *Server) wrap(route string, h http.HandlerFunc) http.HandlerFunc {
	if s.reg == nil && s.tr == nil && s.log == nil {
		return h
	}
	var hist *obs.Histogram
	if s.reg != nil {
		hist = s.reg.Histogram("swsketch_http_request_seconds",
			"HTTP request latency by route.", obs.Labels{"route": route}, nil)
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := s.reqPrefix + "-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		dur := time.Since(start)
		if hist != nil {
			hist.Observe(dur.Seconds())
			s.reg.Counter("swsketch_http_requests_total",
				"HTTP requests by route and status code.",
				obs.Labels{"route": route, "code": strconv.Itoa(sw.code)}).Inc()
		}
		if s.tr.Enabled() {
			// V1 = status code, V2 = latency in seconds; the note carries
			// the request ID so a log line or response header can be
			// joined against the trace ring.
			s.tr.EmitNote("serve", trace.KindHTTP, 0,
				float64(sw.code), dur.Seconds(), id+" "+r.Method+" "+route)
		}
		if s.log != nil {
			s.log.LogAttrs(r.Context(), slog.LevelInfo, "http request",
				slog.String("id", id),
				slog.String("method", r.Method),
				slog.String("route", route),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.code),
				slog.Duration("duration", dur),
			)
		}
	}
}

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap exposes the underlying writer so http.ResponseController
// (the stream handler's flusher) can reach it through the wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// methodNotAllowed answers with the 405 envelope and an Allow header.
func methodNotAllowed(allow ...string) http.HandlerFunc {
	allowed := strings.Join(allow, ", ")
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allowed)
		httpError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			"method %s not allowed (allow: %s)", r.Method, allowed)
	}
}

// acquire locks a tenant for the duration of a request, translating
// acquisition failures (concurrent deletion, unreadable spill file)
// into envelope errors. On true the caller must Release.
func (s *Server) acquire(w http.ResponseWriter, t *registry.Tenant) bool {
	err := t.Acquire()
	if err == nil {
		return true
	}
	if errors.Is(err, registry.ErrDeleted) {
		httpError(w, http.StatusNotFound, CodeNotFound, "tenant %q deleted", t.ID())
	} else {
		httpError(w, http.StatusInternalServerError, CodeInternal, "%v", err)
	}
	return false
}

// tenantOf resolves the {id} path segment against the registry.
func (s *Server) tenantOf(w http.ResponseWriter, r *http.Request) (*registry.Tenant, bool) {
	id := r.PathValue("id")
	t, ok := s.treg.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, CodeNotFound, "no tenant %q", id)
		return nil, false
	}
	return t, true
}

// errorBody is the payload of the uniform error envelope.
type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorResponse struct {
	Error errorBody `json:"error"`
}

func httpError(w http.ResponseWriter, status int, code, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: errorBody{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// handleTrace dumps the trace ring. The default body is JSONL (one
// event per line, oldest first); ?format=summary returns the per-kind
// counts and ring occupancy as a single JSON object.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	switch f := r.URL.Query().Get("format"); f {
	case "summary":
		writeJSON(w, s.tr.Summarize())
	case "", "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = s.tr.WriteJSONL(w)
	default:
		httpError(w, http.StatusBadRequest, CodeInvalidArgument, "bad format %q", f)
	}
}

// checkFiniteVals rejects NaN and overflow-ish values before they
// reach a sketch.
func checkFiniteVals(vals []float64) error {
	for j, v := range vals {
		if v != v || v > 1e308 || v < -1e308 { // NaN or overflow-ish
			return fmt.Errorf("non-finite value at %d", j)
		}
	}
	return nil
}

// applyBatch feeds an all-dense batch through the sketch's bulk path,
// converting sketch panics into errors like applyAll.
func applyBatch(sk core.WindowSketch, rows [][]float64, times []float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	sk.UpdateBatch(rows, times)
	return nil
}

// applyAll runs the prepared updates, converting sketch panics
// (invariant violations) into errors.
func applyAll(rows []func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	for _, apply := range rows {
		apply()
	}
	return nil
}

// snapshotGet downloads a tenant's sketch state when the sketch
// supports binary snapshots.
func (s *Server) snapshotGet(w http.ResponseWriter, t *registry.Tenant) {
	if !s.acquire(w, t) {
		return
	}
	defer t.Release()
	m, ok := t.Raw().(encoding.BinaryMarshaler)
	if !ok {
		httpError(w, http.StatusNotImplemented, CodeUnsupported,
			"%s does not support snapshots", t.Raw().Name())
		return
	}
	data, err := m.MarshalBinary()
	if err != nil {
		httpError(w, http.StatusInternalServerError, CodeInternal, "snapshot: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

// snapshotPost replaces a tenant's sketch state from an uploaded
// snapshot. On success the tenant's ingest clock (updates, lastT,
// seen) resets to zero: the restored sketch carries its own clock, and
// keeping the pre-restore lastT would make default-t queries answer at
// a timestamp unrelated to the restored state.
func (s *Server) snapshotPost(w http.ResponseWriter, r *http.Request, t *registry.Tenant) {
	limit := int64(1 << 30)
	if s.maxBody > 0 {
		limit = s.maxBody
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, CodeInvalidArgument, "read body: %v", err)
		return
	}
	if int64(len(data)) > limit {
		httpError(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
			"body exceeds %d bytes", limit)
		return
	}
	if !s.acquire(w, t) {
		return
	}
	defer t.Release()
	u, ok := t.Raw().(encoding.BinaryUnmarshaler)
	if !ok {
		httpError(w, http.StatusNotImplemented, CodeUnsupported,
			"%s does not support snapshots", t.Raw().Name())
		return
	}
	if err := u.UnmarshalBinary(data); err != nil {
		httpError(w, http.StatusBadRequest, CodeInvalidArgument, "restore: %v", err)
		return
	}
	t.ResetClock()
	if s.wal != nil {
		// The logged snapshot supersedes the tenant's earlier records —
		// replay restores the blob instead of re-running them — and its
		// append lets the WAL truncate behind it.
		if _, err := s.wal.AppendSnapshot(t.ID(), 0, 0, false, data); err != nil {
			httpError(w, http.StatusInternalServerError, CodeInternal, "wal append: %v", err)
			return
		}
	}
	if t == s.def {
		// The restored window's contents are unknowable to the shadow
		// oracle; re-arm it in the warming state.
		s.audit.Reset()
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "restored")
}

func (s *Server) handleSnapshotGet(w http.ResponseWriter, _ *http.Request) {
	s.snapshotGet(w, s.def)
}

func (s *Server) handleSnapshotPost(w http.ResponseWriter, r *http.Request) {
	s.snapshotPost(w, r, s.def)
}

func (s *Server) handleTenantSnapshotGet(w http.ResponseWriter, r *http.Request) {
	if t, ok := s.tenantOf(w, r); ok {
		s.snapshotGet(w, t)
	}
}

func (s *Server) handleTenantSnapshotPost(w http.ResponseWriter, r *http.Request) {
	if t, ok := s.tenantOf(w, r); ok {
		s.snapshotPost(w, r, t)
	}
}

// healthResponse is the GET /v1/health payload. Status is "ok" or
// "degraded"; Detail carries the auditor's full view when one is
// attached.
type healthResponse struct {
	Status string        `json:"status"`
	Audit  bool          `json:"audit"`
	Detail *audit.Status `json:"detail,omitempty"`
	// WAL reports the write-ahead log's replay outcome; present only
	// when a WAL is attached (v1 responses without one are unchanged).
	WAL *walHealth `json:"wal,omitempty"`
	// HotKeys reports the hot-key sidecar's configuration; present
	// only when one is attached (WithHotKeys).
	HotKeys *hotkeysHealth `json:"hotkeys,omitempty"`
}

// walHealth is the health endpoints' view of the write-ahead log.
type walHealth struct {
	// Replayed is false until RecoverWAL has run.
	Replayed bool `json:"replayed"`
	// Damaged reports corruption found during replay (a CRC mismatch or
	// a mid-segment tear): recovery stopped early on that shard and the
	// server is serving a possibly incomplete restore.
	Damaged bool `json:"damaged,omitempty"`
}

// handleHealth reports the default tenant's accuracy health. Without
// an auditor it is a plain liveness "ok". With one, the latest
// audited cova-err decides ok (200) vs degraded (503); ?fresh=1
// forces an evaluation first so the verdict reflects the current
// window rather than the last stride boundary.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{Status: "ok"}
	if s.wal != nil {
		resp.WAL = &walHealth{Replayed: s.wal.Replayed(), Damaged: s.walDamaged.Load()}
	}
	if s.hot != nil {
		resp.HotKeys = &hotkeysHealth{
			Enabled:       true,
			WindowSeconds: s.hot.Window().Seconds(),
			TopK:          s.hot.K(),
		}
	}
	if s.audit != nil {
		if r.URL.Query().Get("fresh") != "" {
			if !s.acquire(w, s.def) {
				return
			}
			s.audit.Evaluate(func(t float64) *mat.Dense { return s.def.Raw().Query(t) })
			s.def.Release()
		}
		st := s.audit.Status()
		resp.Audit, resp.Detail = true, &st
		if st.Degraded {
			resp.Status = "degraded"
		}
	}
	if resp.WAL != nil && resp.WAL.Damaged {
		resp.Status = "degraded"
	}
	if resp.Status == "degraded" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(resp)
		return
	}
	writeJSON(w, resp)
}
