// Package serve exposes a sliding-window matrix sketch over HTTP: an
// ingest endpoint for timestamped rows, query endpoints for the window
// approximation and its PCA, a stats endpoint with sketch internals,
// binary snapshots, and optional Prometheus metrics and pprof. One
// Server guards one sketch; all handlers serialise on its mutex
// (sketch updates are cheap relative to request handling, so a single
// writer lock is the right simplicity/performance trade).
//
// Routes are registered with Go 1.22 method patterns:
//
//	POST /v1/ingest         body: {"updates":[{"row":[...],"t":1.5},...]}
//	GET  /v1/approximation  [?t=...]      window approximation B
//	GET  /v1/pca            [?t=...&k=3]  top-k window PCA
//	GET  /v1/stats          sketch metadata + "internals" (Introspector)
//	GET  /v1/health         accuracy health: ok/degraded vs the audit threshold
//	                        (?fresh=1 forces an evaluation) (WithAudit)
//	GET  /v1/snapshot       binary sketch snapshot
//	POST /v1/snapshot       restore a snapshot
//	GET  /healthz           200 ok
//	GET  /metrics           Prometheus text exposition (WithMetrics)
//	GET  /debug/trace       event-trace JSONL dump (?format=summary for counts)
//	                        (WithTrace)
//	     /debug/pprof/...   runtime profiles (WithPprof)
//
// Every error response under /v1 uses the machine-readable envelope
//
//	{"error":{"code":"<code>","message":"<human-readable detail>"}}
//
// with the following codes:
//
//	invalid_json        400  request body is not valid JSON for the endpoint
//	invalid_argument    400  a field or query parameter is out of range
//	method_not_allowed  405  wrong HTTP method (Allow header lists valid ones)
//	not_found           404  unknown route
//	conflict            409  the sketch's invariants rejected the operation
//	                         (e.g. a timestamp behind a restored clock)
//	unsupported         501  the sketch lacks the capability (snapshots)
//	body_too_large      413  body exceeded the WithMaxBody limit
//	internal            500  server-side failure
//
// Snapshot endpoints require the underlying sketch to support binary
// snapshots (SWR, SWOR, SWOR-ALL, LM-FD do); others get 501.
package serve

import (
	"encoding"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"swsketch/internal/core"
	"swsketch/internal/mat"
	"swsketch/internal/obs"
	"swsketch/internal/obs/audit"
	"swsketch/internal/pca"
	"swsketch/internal/trace"
)

// Error codes of the uniform error envelope; see the package comment.
const (
	CodeInvalidJSON      = "invalid_json"
	CodeInvalidArgument  = "invalid_argument"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeNotFound         = "not_found"
	CodeConflict         = "conflict"
	CodeUnsupported      = "unsupported"
	CodeBodyTooLarge     = "body_too_large"
	CodeInternal         = "internal"
)

// Server wraps a WindowSketch for HTTP access.
type Server struct {
	mu      sync.Mutex
	sk      core.WindowSketch // possibly obs.Instrumented; the ingest/query path
	raw     core.WindowSketch // the undecorated sketch, for capability checks
	d       int
	updates uint64
	lastT   float64
	seen    bool

	reg     *obs.Registry
	pprof   bool
	maxBody int64

	tr    *trace.Tracer
	audit *audit.Auditor
	log   *slog.Logger

	reqSeq    atomic.Uint64
	reqPrefix string
}

// Option configures a Server; see WithMetrics, WithPprof, WithMaxBody.
type Option func(*Server)

// WithMetrics wraps the sketch in an obs.Instrumented recording
// ingest/query latencies and internals into reg, instruments every
// route with request counters and latency histograms, and mounts
// GET /metrics serving reg's Prometheus text exposition.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Server) { s.reg = reg }
}

// WithPprof mounts net/http/pprof under /debug/pprof/.
func WithPprof() Option {
	return func(s *Server) { s.pprof = true }
}

// WithMaxBody caps request body sizes (ingest and snapshot restore) at
// n bytes; larger bodies get a 413 body_too_large envelope. Zero (the
// default) keeps ingest unlimited and the snapshot restore at its
// built-in 1 GiB guard.
func WithMaxBody(n int64) Option {
	return func(s *Server) {
		if n < 1 {
			panic(fmt.Sprintf("serve: max body %d", n))
		}
		s.maxBody = n
	}
}

// WithTrace attaches an event tracer: the sketch's structural
// transitions emit into it (when the sketch is trace.Traceable),
// completed requests emit http_request events tagged with their
// request IDs, and GET /debug/trace serves the ring as JSONL. When
// metrics are also active the tracer's per-kind counts and exemplar
// event IDs are bridged into the registry.
func WithTrace(tr *trace.Tracer) Option {
	return func(s *Server) { s.tr = tr }
}

// WithAudit attaches an online accuracy auditor: every ingested row is
// shadowed, cova-err is evaluated on the auditor's stride, and GET
// /v1/health reports ok/degraded against its threshold. The auditor's
// gauges live in whatever registry it was built with — pass the same
// registry to WithMetrics to serve them on /metrics.
func WithAudit(a *audit.Auditor) Option {
	return func(s *Server) { s.audit = a }
}

// WithLogger enables structured request logging: one slog record per
// completed request, carrying the request ID that also tags the
// request's trace events. The default is silent.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) { s.log = l }
}

// NewServer returns a server around the given sketch and dimension.
func NewServer(sk core.WindowSketch, d int, opts ...Option) *Server {
	if d < 1 {
		panic(fmt.Sprintf("serve: dimension %d", d))
	}
	s := &Server{sk: sk, raw: sk, d: d}
	for _, o := range opts {
		o(s)
	}
	// Request IDs: a short per-server entropy prefix plus a counter, so
	// IDs from restarted servers don't collide in aggregated logs.
	s.reqPrefix = strconv.FormatInt(time.Now().UnixNano()&0xffffff, 36)
	if s.tr != nil {
		if t, ok := sk.(trace.Traceable); ok {
			t.SetTracer(s.tr)
		}
	}
	if s.reg != nil {
		// Scrape-time reads of the sketch (rows stored, internals) run
		// under the server mutex so /metrics never races an ingest.
		s.sk = obs.NewInstrumented(sk, s.reg, obs.WithSync(func(f func()) {
			s.mu.Lock()
			defer s.mu.Unlock()
			f()
		}))
		obs.RegisterRuntimeMetrics(s.reg)
		obs.RegisterTracer(s.reg, s.tr)
	}
	return s
}

// Handler returns the HTTP routes listed in the package comment.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc, allow ...string) {
		// Method-pattern route plus a same-path fallback answering any
		// other method with a 405 envelope (the stock ServeMux 405 is
		// plain text).
		mux.HandleFunc(pattern, s.wrap(strings.TrimSpace(pattern[strings.Index(pattern, " "):]), h))
		if len(allow) > 0 {
			mux.HandleFunc(strings.TrimSpace(pattern[strings.Index(pattern, " "):]), methodNotAllowed(allow...))
		}
	}
	handle("POST /v1/ingest", s.handleIngest, "POST")
	handle("GET /v1/approximation", s.handleApproximation, "GET")
	handle("GET /v1/pca", s.handlePCA, "GET")
	handle("GET /v1/stats", s.handleStats, "GET")
	handle("GET /v1/health", s.handleHealth, "GET")
	handle("GET /v1/snapshot", s.handleSnapshotGet) // fallback shared below
	handle("POST /v1/snapshot", s.handleSnapshotPost, "GET", "POST")
	handle("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	}, "GET")
	if s.reg != nil {
		mux.Handle("GET /metrics", s.reg.Handler())
		mux.HandleFunc("/metrics", methodNotAllowed("GET"))
	}
	if s.tr != nil {
		handle("GET /debug/trace", s.handleTrace, "GET")
	}
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	// Catch-all so unknown routes answer with the envelope too.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusNotFound, CodeNotFound, "no route %s %s", r.Method, r.URL.Path)
	})
	return mux
}

// wrap decorates a handler with the per-request observability plane:
// an X-Request-ID response header, per-route latency/count metrics
// (WithMetrics), an http_request trace event carrying the request ID
// (WithTrace), and one slog record per completed request (WithLogger).
// With none of the three active it is the identity.
func (s *Server) wrap(route string, h http.HandlerFunc) http.HandlerFunc {
	if s.reg == nil && s.tr == nil && s.log == nil {
		return h
	}
	var hist *obs.Histogram
	if s.reg != nil {
		hist = s.reg.Histogram("swsketch_http_request_seconds",
			"HTTP request latency by route.", obs.Labels{"route": route}, nil)
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := s.reqPrefix + "-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		dur := time.Since(start)
		if hist != nil {
			hist.Observe(dur.Seconds())
			s.reg.Counter("swsketch_http_requests_total",
				"HTTP requests by route and status code.",
				obs.Labels{"route": route, "code": strconv.Itoa(sw.code)}).Inc()
		}
		if s.tr.Enabled() {
			// V1 = status code, V2 = latency in seconds; the note carries
			// the request ID so a log line or response header can be
			// joined against the trace ring.
			s.tr.EmitNote("serve", trace.KindHTTP, 0,
				float64(sw.code), dur.Seconds(), id+" "+r.Method+" "+route)
		}
		if s.log != nil {
			s.log.LogAttrs(r.Context(), slog.LevelInfo, "http request",
				slog.String("id", id),
				slog.String("method", r.Method),
				slog.String("route", route),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.code),
				slog.Duration("duration", dur),
			)
		}
	}
}

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// methodNotAllowed answers with the 405 envelope and an Allow header.
func methodNotAllowed(allow ...string) http.HandlerFunc {
	allowed := strings.Join(allow, ", ")
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allowed)
		httpError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			"method %s not allowed (allow: %s)", r.Method, allowed)
	}
}

type ingestRequest struct {
	Updates []ingestUpdate `json:"updates"`
}

type ingestUpdate struct {
	Row []float64 `json:"row,omitempty"`
	// Sparse form: parallel indices/values; mutually exclusive with Row.
	Idx []int     `json:"idx,omitempty"`
	Val []float64 `json:"val,omitempty"`
	T   float64   `json:"t"`
}

type ingestResponse struct {
	Accepted int     `json:"accepted"`
	LastT    float64 `json:"last_t"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	body := r.Body
	if s.maxBody > 0 {
		body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	var req ingestRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
				"body exceeds %d bytes", tooLarge.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, CodeInvalidJSON, "bad JSON: %v", err)
		return
	}
	if len(req.Updates) == 0 {
		httpError(w, http.StatusBadRequest, CodeInvalidArgument, "no updates")
		return
	}
	// Validate before touching the sketch so a bad batch is all-or-
	// nothing.
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.lastT
	seen := s.seen
	allDense := true
	for _, u := range req.Updates {
		if len(u.Idx) > 0 || len(u.Val) > 0 {
			allDense = false
			break
		}
	}
	if allDense {
		// Fast path: an all-dense batch goes through the sketch's bulk
		// ingest in one call, amortising per-row bookkeeping.
		rows := make([][]float64, 0, len(req.Updates))
		times := make([]float64, 0, len(req.Updates))
		for i, u := range req.Updates {
			if seen && u.T < prev {
				httpError(w, http.StatusBadRequest, CodeInvalidArgument,
					"update %d: timestamp %v precedes %v", i, u.T, prev)
				return
			}
			if len(u.Row) != s.d {
				httpError(w, http.StatusBadRequest, CodeInvalidArgument,
					"update %d: row length %d, want %d", i, len(u.Row), s.d)
				return
			}
			if err := checkFiniteVals(u.Row); err != nil {
				httpError(w, http.StatusBadRequest, CodeInvalidArgument, "update %d: %v", i, err)
				return
			}
			rows = append(rows, u.Row)
			times = append(times, u.T)
			prev, seen = u.T, true
		}
		if err := applyBatch(s.sk, rows, times); err != nil {
			httpError(w, http.StatusConflict, CodeConflict, "ingest rejected by sketch: %v", err)
			return
		}
		s.updates += uint64(len(req.Updates))
		s.lastT, s.seen = prev, true
		s.observeAudit(rows, times)
		writeJSON(w, ingestResponse{Accepted: len(req.Updates), LastT: prev})
		return
	}
	rows := make([]func(), 0, len(req.Updates))
	var auditRows [][]float64
	var auditTimes []float64
	if s.audit != nil {
		auditRows = make([][]float64, 0, len(req.Updates))
		auditTimes = make([]float64, 0, len(req.Updates))
	}
	for i, u := range req.Updates {
		if seen && u.T < prev {
			httpError(w, http.StatusBadRequest, CodeInvalidArgument,
				"update %d: timestamp %v precedes %v", i, u.T, prev)
			return
		}
		apply, dense, err := s.prepareUpdate(u)
		if err != nil {
			httpError(w, http.StatusBadRequest, CodeInvalidArgument, "update %d: %v", i, err)
			return
		}
		rows = append(rows, apply)
		if s.audit != nil {
			auditRows = append(auditRows, dense)
			auditTimes = append(auditTimes, u.T)
		}
		prev, seen = u.T, true
	}
	// The sketch enforces invariants the server cannot fully check —
	// e.g. after a snapshot restore the sketch's internal clock may be
	// ahead of the server's. Surface those as 409 instead of crashing
	// the connection.
	if err := applyAll(rows); err != nil {
		httpError(w, http.StatusConflict, CodeConflict, "ingest rejected by sketch: %v", err)
		return
	}
	s.updates += uint64(len(req.Updates))
	s.lastT, s.seen = prev, true
	s.observeAudit(auditRows, auditTimes)
	writeJSON(w, ingestResponse{Accepted: len(req.Updates), LastT: prev})
}

// observeAudit feeds freshly ingested rows to the auditor. The caller
// holds s.mu, so the query closure (which the auditor may invoke for a
// stride-triggered evaluation) reads the sketch consistently. The
// closure queries the undecorated sketch so audit evaluations don't
// pollute the serving query-latency metrics.
func (s *Server) observeAudit(rows [][]float64, times []float64) {
	if s.audit == nil {
		return
	}
	s.audit.ObserveBatch(rows, times, func(t float64) *mat.Dense {
		return s.raw.Query(t)
	})
}

type approximationResponse struct {
	Rows [][]float64 `json:"rows"`
	T    float64     `json:"t"`
}

func (s *Server) handleApproximation(w http.ResponseWriter, r *http.Request) {
	t, ok := s.queryTime(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	b := s.sk.Query(t)
	s.mu.Unlock()
	rows := make([][]float64, b.Rows())
	for i := range rows {
		rows[i] = b.RowCopy(i)
	}
	writeJSON(w, approximationResponse{Rows: rows, T: t})
}

type pcaResponse struct {
	Components [][]float64 `json:"components"`
	Explained  []float64   `json:"explained"`
	T          float64     `json:"t"`
}

func (s *Server) handlePCA(w http.ResponseWriter, r *http.Request) {
	t, ok := s.queryTime(w, r)
	if !ok {
		return
	}
	k := 3
	if kq := r.URL.Query().Get("k"); kq != "" {
		var err error
		k, err = strconv.Atoi(kq)
		if err != nil || k < 1 {
			httpError(w, http.StatusBadRequest, CodeInvalidArgument, "bad k %q", kq)
			return
		}
	}
	s.mu.Lock()
	b := s.sk.Query(t)
	s.mu.Unlock()
	if b.Rows() == 0 {
		writeJSON(w, pcaResponse{Components: [][]float64{}, Explained: []float64{}, T: t})
		return
	}
	res := pca.Compute(b, k)
	comps := make([][]float64, res.Components.Rows())
	for i := range comps {
		comps[i] = res.Components.RowCopy(i)
	}
	writeJSON(w, pcaResponse{Components: comps, Explained: res.Explained, T: t})
}

type statsResponse struct {
	Algorithm  string             `json:"algorithm"`
	Dimension  int                `json:"dimension"`
	RowsStored int                `json:"rows_stored"`
	Updates    uint64             `json:"updates"`
	LastT      float64            `json:"last_t"`
	Internals  map[string]float64 `json:"internals,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := statsResponse{
		Algorithm:  s.sk.Name(),
		Dimension:  s.d,
		RowsStored: s.sk.RowsStored(),
		Updates:    s.updates,
		LastT:      s.lastT,
	}
	if in, ok := s.raw.(core.Introspector); ok {
		resp.Internals = in.Stats()
	}
	s.mu.Unlock()
	writeJSON(w, resp)
}

// queryTime parses ?t=; when omitted, the last ingested timestamp is
// used (query "now").
func (s *Server) queryTime(w http.ResponseWriter, r *http.Request) (float64, bool) {
	tq := r.URL.Query().Get("t")
	if tq == "" {
		s.mu.Lock()
		t := s.lastT
		s.mu.Unlock()
		return t, true
	}
	t, err := strconv.ParseFloat(tq, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, CodeInvalidArgument, "bad t %q", tq)
		return 0, false
	}
	s.mu.Lock()
	last, seen := s.lastT, s.seen
	s.mu.Unlock()
	if seen && t < last {
		httpError(w, http.StatusBadRequest, CodeInvalidArgument,
			"t %v precedes last ingested %v", t, last)
		return 0, false
	}
	return t, true
}

// errorBody is the payload of the uniform error envelope.
type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorResponse struct {
	Error errorBody `json:"error"`
}

func httpError(w http.ResponseWriter, status int, code, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: errorBody{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// handleSnapshotGet downloads the sketch state when the sketch
// supports binary snapshots.
func (s *Server) handleSnapshotGet(w http.ResponseWriter, _ *http.Request) {
	m, ok := s.raw.(encoding.BinaryMarshaler)
	if !ok {
		httpError(w, http.StatusNotImplemented, CodeUnsupported,
			"%s does not support snapshots", s.raw.Name())
		return
	}
	s.mu.Lock()
	data, err := m.MarshalBinary()
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, CodeInternal, "snapshot: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

// handleSnapshotPost replaces the sketch state from an uploaded
// snapshot. On success the server's own ingest clock (updates, lastT,
// seen) resets to zero: the restored sketch carries its own clock, and
// keeping the pre-restore lastT would make default-t queries answer at
// a timestamp unrelated to the restored state.
func (s *Server) handleSnapshotPost(w http.ResponseWriter, r *http.Request) {
	u, ok := s.raw.(encoding.BinaryUnmarshaler)
	if !ok {
		httpError(w, http.StatusNotImplemented, CodeUnsupported,
			"%s does not support snapshots", s.raw.Name())
		return
	}
	limit := int64(1 << 30)
	if s.maxBody > 0 {
		limit = s.maxBody
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, CodeInvalidArgument, "read body: %v", err)
		return
	}
	if int64(len(data)) > limit {
		httpError(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
			"body exceeds %d bytes", limit)
		return
	}
	s.mu.Lock()
	err = u.UnmarshalBinary(data)
	if err == nil {
		s.updates = 0
		s.seen = false
		s.lastT = 0
		// The restored window's contents are unknowable to the shadow
		// oracle; re-arm it in the warming state.
		s.audit.Reset()
	}
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusBadRequest, CodeInvalidArgument, "restore: %v", err)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "restored")
}

// healthResponse is the GET /v1/health payload. Status is "ok" or
// "degraded"; Detail carries the auditor's full view when one is
// attached.
type healthResponse struct {
	Status string        `json:"status"`
	Audit  bool          `json:"audit"`
	Detail *audit.Status `json:"detail,omitempty"`
}

// handleHealth reports accuracy health. Without an auditor it is a
// plain liveness "ok". With one, the latest audited cova-err decides
// ok (200) vs degraded (503); ?fresh=1 forces an evaluation first so
// the verdict reflects the current window rather than the last stride
// boundary.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.audit == nil {
		writeJSON(w, healthResponse{Status: "ok"})
		return
	}
	if r.URL.Query().Get("fresh") != "" {
		s.mu.Lock()
		s.audit.Evaluate(func(t float64) *mat.Dense { return s.raw.Query(t) })
		s.mu.Unlock()
	}
	st := s.audit.Status()
	resp := healthResponse{Status: "ok", Audit: true, Detail: &st}
	if st.Degraded {
		resp.Status = "degraded"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(resp)
		return
	}
	writeJSON(w, resp)
}

// handleTrace dumps the trace ring. The default body is JSONL (one
// event per line, oldest first); ?format=summary returns the per-kind
// counts and ring occupancy as a single JSON object.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	switch f := r.URL.Query().Get("format"); f {
	case "summary":
		writeJSON(w, s.tr.Summarize())
	case "", "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = s.tr.WriteJSONL(w)
	default:
		httpError(w, http.StatusBadRequest, CodeInvalidArgument, "bad format %q", f)
	}
}

// checkFiniteVals rejects NaN and overflow-ish values before they
// reach a sketch.
func checkFiniteVals(vals []float64) error {
	for j, v := range vals {
		if v != v || v > 1e308 || v < -1e308 { // NaN or overflow-ish
			return fmt.Errorf("non-finite value at %d", j)
		}
	}
	return nil
}

// prepareUpdate validates one ingest update and returns a closure that
// applies it plus the dense form of the row (for the audit shadow —
// sparse rows are only densified when an auditor is attached);
// validation and application are split so a bad batch is rejected
// atomically.
func (s *Server) prepareUpdate(u ingestUpdate) (func(), []float64, error) {
	checkVals := checkFiniteVals
	if len(u.Idx) > 0 || len(u.Val) > 0 {
		if len(u.Row) > 0 {
			return nil, nil, fmt.Errorf("row and idx/val are mutually exclusive")
		}
		if len(u.Idx) != len(u.Val) {
			return nil, nil, fmt.Errorf("%d indices but %d values", len(u.Idx), len(u.Val))
		}
		prev := -1
		for _, ix := range u.Idx {
			if ix <= prev || ix >= s.d {
				return nil, nil, fmt.Errorf("sparse index %d invalid for dimension %d", ix, s.d)
			}
			prev = ix
		}
		if err := checkVals(u.Val); err != nil {
			return nil, nil, err
		}
		sr := mat.SparseRow{Idx: u.Idx, Val: u.Val}
		// Capability lives on the undecorated sketch; the decorated one
		// (which forwards sparse updates) takes the call so the update
		// is recorded.
		if _, ok := s.raw.(core.SparseUpdater); ok {
			su := s.sk.(core.SparseUpdater)
			var row []float64
			if s.audit != nil {
				row = sr.Dense(s.d)
			}
			return func() { su.UpdateSparse(sr, u.T) }, row, nil
		}
		dense := sr.Dense(s.d)
		return func() { s.sk.Update(dense, u.T) }, dense, nil
	}
	if len(u.Row) != s.d {
		return nil, nil, fmt.Errorf("row length %d, want %d", len(u.Row), s.d)
	}
	if err := checkVals(u.Row); err != nil {
		return nil, nil, err
	}
	return func() { s.sk.Update(u.Row, u.T) }, u.Row, nil
}

// applyBatch feeds an all-dense batch through the sketch's bulk path,
// converting sketch panics into errors like applyAll.
func applyBatch(sk core.WindowSketch, rows [][]float64, times []float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	sk.UpdateBatch(rows, times)
	return nil
}

// applyAll runs the prepared updates, converting sketch panics
// (invariant violations) into errors.
func applyAll(rows []func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	for _, apply := range rows {
		apply()
	}
	return nil
}
