package serve

// Hot-key observability: WithHotKeys attaches an internal/obs/hh
// sidecar and the server feeds it from every ingest entry point —
// registry acquisitions (via the touch hook), committed ingest
// batches (v1 ingest, v2 rows, bulk items, stream blocks all funnel
// through ingestLocked), shed and failed requests, and WAL appends.
// GET /debug/hotkeys serves the sidecar's merged snapshot; the
// /v1 and /v2 health bodies gain a "hotkeys" object when the sidecar
// is enabled; topk_enter/topk_exit churn lands in the trace ring.

import (
	"net/http"

	"swsketch/internal/obs/hh"
)

// WithHotKeys attaches a hot-key sidecar (internal/obs/hh): per-
// tenant rows/bytes/events/WAL/touch telemetry over a sliding
// window, served on GET /debug/hotkeys. When combined with
// WithMetrics the sidecar's aggregate skew gauges (top-K share, Zipf
// exponent, distinct-tenant estimate) land in the same registry, and
// with WithTrace its top-K churn events land in the same ring.
func WithHotKeys(h *hh.Sidecar) Option {
	return func(s *Server) {
		if h == nil {
			panic("serve: nil hot-key sidecar")
		}
		s.hot = h
	}
}

// hotkeysHealth is the health endpoints' view of the hot-key
// sidecar; present only when one is attached.
type hotkeysHealth struct {
	// Enabled is always true when the object is present.
	Enabled bool `json:"enabled"`
	// WindowSeconds is the sidecar's sliding decay window.
	WindowSeconds float64 `json:"window_seconds"`
	// TopK is the number of hot tenants tracked and reported.
	TopK int `json:"top_k"`
}

// handleHotkeys serves GET /debug/hotkeys: the sidecar's merged
// top-K snapshot with per-plane estimates, count-min error bounds,
// and aggregate skew statistics (see internal/obs/hh.Snapshot).
func (s *Server) handleHotkeys(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.hot.Snapshot())
}
