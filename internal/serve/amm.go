package serve

// The windowed AMM query plane: tenants built from a paired framework
// (lm-amm, di-amm) answer approximate matrix products AᵀB over the row
// pairs inside the sliding window. The endpoint mirrors the
// approximation route's time handling (?t= or the ingest clock) and
// additionally accepts the timestamp in a small JSON body on POST, so
// clients that never construct query strings can stay JSON-only.

import (
	"encoding/json"
	"io"
	"net/http"

	"swsketch/internal/core"
	"swsketch/internal/registry"
)

// ammRequest is the optional POST body: {"t": 12.5}. An empty body is
// equivalent to omitting ?t= (query at the ingest clock).
type ammRequest struct {
	T *float64 `json:"t"`
}

// ammResponse is the /v2/tenants/{id}/amm payload: the windowed
// product estimate AᵀB ≈ XᵀY (a d_a×d_b matrix) for the window ending
// at T.
type ammResponse struct {
	Product [][]float64 `json:"product"`
	DA      int         `json:"d_a"`
	DB      int         `json:"d_b"`
	T       float64     `json:"t"`
}

func (s *Server) handleTenantAMM(w http.ResponseWriter, r *http.Request) {
	if t, ok := s.tenantOf(w, r); ok {
		s.amm(w, r, t)
	}
}

// ammQueryTime resolves the query timestamp like queryTime, but for
// POST requests a JSON body {"t": ...} takes the place of the ?t=
// parameter (the body wins when both are present).
func ammQueryTime(w http.ResponseWriter, r *http.Request, t *registry.Tenant) (float64, bool) {
	if r.Method == http.MethodPost && r.Body != nil {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
		if err != nil {
			httpError(w, http.StatusBadRequest, CodeInvalidArgument, "read body: %v", err)
			return 0, false
		}
		if len(body) > 0 {
			var req ammRequest
			if err := json.Unmarshal(body, &req); err != nil {
				httpError(w, http.StatusBadRequest, CodeInvalidJSON, "parse body: %v", err)
				return 0, false
			}
			if req.T != nil {
				qt := *req.T
				if qt != qt {
					httpError(w, http.StatusBadRequest, CodeInvalidArgument, "non-finite t")
					return 0, false
				}
				if last, seen := t.Clock(); seen && qt < last {
					httpError(w, http.StatusBadRequest, CodeInvalidArgument,
						"t %v precedes last ingested %v", qt, last)
					return 0, false
				}
				return qt, true
			}
		}
	}
	return queryTime(w, r, t)
}

func (s *Server) amm(w http.ResponseWriter, r *http.Request, t *registry.Tenant) {
	if !s.acquire(w, t) {
		return
	}
	// The capability lives on the raw sketch: serving decorations
	// (instrumentation) forward only the WindowSketch surface.
	p, paired := t.Raw().(core.PairedWindowSketch)
	if !paired {
		name := t.Raw().Name()
		t.Release()
		httpError(w, http.StatusNotImplemented, CodeUnsupported,
			"%s does not answer AMM queries (paired frameworks lm-amm/di-amm only)", name)
		return
	}
	qt, ok := ammQueryTime(w, r, t)
	if !ok {
		t.Release()
		return
	}
	product := p.AmmApproximation(qt)
	dA, dB := p.AmmDims()
	t.Release()
	writeJSON(w, ammResponse{Product: product, DA: dA, DB: dB, T: qt})
}
