package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"swsketch/internal/core"
	"swsketch/internal/window"
)

func newTestServer(t *testing.T) (*httptest.Server, func()) {
	t.Helper()
	sk := core.NewLMFD(window.Seq(100), 3, 8, 4)
	ts := httptest.NewServer(NewServer(sk, 3).Handler())
	return ts, ts.Close
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode(t *testing.T, resp *http.Response, v interface{}) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestIngestAndQueryRoundTrip(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()

	var b strings.Builder
	b.WriteString(`{"updates":[`)
	for i := 0; i < 50; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"row":[%d,1,0],"t":%d}`, i%3, i)
	}
	b.WriteString("]}")
	resp := postJSON(t, ts.URL+"/v1/ingest", b.String())
	if resp.StatusCode != 200 {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	var ir ingestResponse
	decode(t, resp, &ir)
	if ir.Accepted != 50 || ir.LastT != 49 {
		t.Fatalf("ingest response %+v", ir)
	}

	resp, err := http.Get(ts.URL + "/v1/approximation?t=49")
	if err != nil {
		t.Fatal(err)
	}
	var ar approximationResponse
	decode(t, resp, &ar)
	if len(ar.Rows) == 0 || len(ar.Rows[0]) != 3 {
		t.Fatalf("approximation %+v", ar)
	}
}

func TestQueryDefaultsToLastTimestamp(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	postJSON(t, ts.URL+"/v1/ingest", `{"updates":[{"row":[1,0,0],"t":7}]}`).Body.Close()
	resp, err := http.Get(ts.URL + "/v1/approximation")
	if err != nil {
		t.Fatal(err)
	}
	var ar approximationResponse
	decode(t, resp, &ar)
	if ar.T != 7 {
		t.Fatalf("default query time = %v, want 7", ar.T)
	}
}

func TestPCAEndpoint(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	var b strings.Builder
	b.WriteString(`{"updates":[`)
	for i := 0; i < 40; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"row":[0,5,0],"t":%d}`, i)
	}
	b.WriteString("]}")
	postJSON(t, ts.URL+"/v1/ingest", b.String()).Body.Close()

	resp, err := http.Get(ts.URL + "/v1/pca?k=1")
	if err != nil {
		t.Fatal(err)
	}
	var pr pcaResponse
	decode(t, resp, &pr)
	if len(pr.Components) != 1 || len(pr.Components[0]) != 3 {
		t.Fatalf("pca %+v", pr)
	}
	// Dominant direction must be ±e₁.
	c := pr.Components[0]
	if c[1]*c[1] < 0.99 {
		t.Fatalf("dominant component %v, want ±e₁", c)
	}
	if pr.Explained[0] < 0.99 {
		t.Fatalf("explained %v", pr.Explained)
	}
}

func TestPCAEmptySketch(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	resp, err := http.Get(ts.URL + "/v1/pca")
	if err != nil {
		t.Fatal(err)
	}
	var pr pcaResponse
	decode(t, resp, &pr)
	if len(pr.Components) != 0 {
		t.Fatalf("empty sketch pca %+v", pr)
	}
}

func TestStats(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	postJSON(t, ts.URL+"/v1/ingest", `{"updates":[{"row":[1,2,3],"t":1}]}`).Body.Close()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sr statsResponse
	decode(t, resp, &sr)
	if sr.Algorithm != "LM-FD" || sr.Dimension != 3 || sr.Updates != 1 {
		t.Fatalf("stats %+v", sr)
	}
}

func TestHealthz(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestIngestValidation(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	for name, body := range map[string]string{
		"bad json":      `{`,
		"empty":         `{"updates":[]}`,
		"wrong dim":     `{"updates":[{"row":[1,2],"t":0}]}`,
		"unknown field": `{"updates":[{"row":[1,2,3],"t":0,"x":1}]}`,
		"nan-like":      `{"updates":[{"row":[1,2,1e309],"t":0}]}`,
		"out of order":  `{"updates":[{"row":[1,2,3],"t":5},{"row":[1,2,3],"t":4}]}`,
	} {
		resp := postJSON(t, ts.URL+"/v1/ingest", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestBadBatchIsAtomic(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	// Second update is invalid: nothing from the batch may land.
	resp := postJSON(t, ts.URL+"/v1/ingest",
		`{"updates":[{"row":[1,2,3],"t":0},{"row":[1],"t":1}]}`)
	resp.Body.Close()
	r2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sr statsResponse
	decode(t, r2, &sr)
	if sr.Updates != 0 {
		t.Fatalf("partial batch applied: %d updates", sr.Updates)
	}
}

func TestMethodEnforcement(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	resp, err := http.Get(ts.URL + "/v1/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET ingest status %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/stats", "{}")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST stats status %d", resp.StatusCode)
	}
}

func TestQueryBeforeLastIngestRejected(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	postJSON(t, ts.URL+"/v1/ingest", `{"updates":[{"row":[1,2,3],"t":10}]}`).Body.Close()
	resp, err := http.Get(ts.URL + "/v1/approximation?t=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("stale query status %d", resp.StatusCode)
	}
}

func TestBadTimeAndK(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	for _, path := range []string{"/v1/approximation?t=abc", "/v1/pca?k=abc", "/v1/pca?k=0"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
}

func TestSnapshotRoundTripOverHTTP(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	postJSON(t, ts.URL+"/v1/ingest", `{"updates":[{"row":[1,2,3],"t":0},{"row":[4,5,6],"t":1}]}`).Body.Close()

	resp, err := http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snap := new(bytes.Buffer)
	if _, err := snap.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || snap.Len() == 0 {
		t.Fatalf("snapshot status %d, %d bytes", resp.StatusCode, snap.Len())
	}

	// Restore into a fresh server and compare answers.
	ts2, done2 := newTestServer(t)
	defer done2()
	r2, err := http.Post(ts2.URL+"/v1/snapshot", "application/octet-stream", bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != 200 {
		t.Fatalf("restore status %d", r2.StatusCode)
	}
	ra, err := http.Get(ts2.URL + "/v1/approximation?t=1")
	if err != nil {
		t.Fatal(err)
	}
	var ar approximationResponse
	decode(t, ra, &ar)
	if len(ar.Rows) != 2 {
		t.Fatalf("restored approximation rows = %d, want 2", len(ar.Rows))
	}
}

func TestSnapshotRestoreRejectsGarbage(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	resp, err := http.Post(ts.URL+"/v1/snapshot", "application/octet-stream", bytes.NewBufferString("junk"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage restore status %d", resp.StatusCode)
	}
}

func TestSnapshotUnsupportedSketch(t *testing.T) {
	sk := core.NewBest(window.Seq(10), 2, 3) // no snapshot support
	ts := httptest.NewServer(NewServer(sk, 3).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("unsupported snapshot status %d", resp.StatusCode)
	}
}

func TestIngestSparseForm(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	resp := postJSON(t, ts.URL+"/v1/ingest",
		`{"updates":[{"idx":[0,2],"val":[3,4],"t":0},{"row":[1,1,1],"t":1}]}`)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("sparse ingest status %d", resp.StatusCode)
	}
	ra, err := http.Get(ts.URL + "/v1/approximation?t=1")
	if err != nil {
		t.Fatal(err)
	}
	var ar approximationResponse
	decode(t, ra, &ar)
	if len(ar.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(ar.Rows))
	}
	// The sparse row must have materialised correctly.
	var mass float64
	for _, r := range ar.Rows {
		for _, v := range r {
			mass += v * v
		}
	}
	if mass < 27.9 || mass > 28.1 { // 9+16+3
		t.Fatalf("ingested mass = %v, want 28", mass)
	}
}

func TestIngestSparseValidation(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	for name, body := range map[string]string{
		"both forms":    `{"updates":[{"row":[1,2,3],"idx":[0],"val":[1],"t":0}]}`,
		"len mismatch":  `{"updates":[{"idx":[0,1],"val":[1],"t":0}]}`,
		"oob index":     `{"updates":[{"idx":[5],"val":[1],"t":0}]}`,
		"unsorted":      `{"updates":[{"idx":[2,1],"val":[1,1],"t":0}]}`,
		"nan-ish value": `{"updates":[{"idx":[0],"val":[1e309],"t":0}]}`,
	} {
		resp := postJSON(t, ts.URL+"/v1/ingest", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestIngestAfterRestoreWithStaleTimestamp(t *testing.T) {
	// Restore resets the server's clock but not the sketch's; a stale
	// ingest must come back as 409, not a dropped connection.
	ts, done := newTestServer(t)
	defer done()
	postJSON(t, ts.URL+"/v1/ingest", `{"updates":[{"row":[1,2,3],"t":100}]}`).Body.Close()
	snap, err := http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(snap.Body)
	snap.Body.Close()

	ts2, done2 := newTestServer(t)
	defer done2()
	r, err := http.Post(ts2.URL+"/v1/snapshot", "application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()

	resp := postJSON(t, ts2.URL+"/v1/ingest", `{"updates":[{"row":[1,2,3],"t":5}]}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale post-restore ingest status %d, want 409", resp.StatusCode)
	}
	// A forward timestamp is accepted.
	resp = postJSON(t, ts2.URL+"/v1/ingest", `{"updates":[{"row":[1,2,3],"t":200}]}`)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("forward post-restore ingest status %d", resp.StatusCode)
	}
}
