package serve

// Tests for the hot-key observability plane: the /debug/hotkeys
// endpoint, the ingest funnel feeding the sidecar from every entry
// point, shed/error event accounting, health surfacing, and top-K
// churn landing in the trace ring.

import (
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"swsketch/internal/binenc"
	"swsketch/internal/obs"
	"swsketch/internal/obs/hh"
	"swsketch/internal/trace"
)

// fetchSnapshot pulls /debug/hotkeys through the strict decoder, so
// every test doubles as a wire-schema conformance check.
func fetchSnapshot(t *testing.T, url string) *hh.Snapshot {
	t.Helper()
	resp, err := http.Get(url + "/debug/hotkeys")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/hotkeys status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := hh.DecodeSnapshot(body)
	if err != nil {
		t.Fatalf("snapshot failed its own strict decoder: %v", err)
	}
	return snap
}

// TestHotkeysIngestFunnel drives every ingest entry point — v1
// ingest, v2 rows, the bulk envelope, and a binary stream — and
// checks the sidecar saw all of it, with the hot tenant's estimate at
// least the exact count and inside its ε·N bound.
func TestHotkeysIngestFunnel(t *testing.T) {
	hot := hh.New(hh.Config{Window: time.Minute, K: 8})
	tr := trace.New(256)
	tr.Enable()
	s := NewServer(newSketch(3), 3, WithHotKeys(hot), WithTrace(tr))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// v1 single-tenant ingest: 2 rows.
	postJSON(t, ts.URL+"/v1/ingest", `{"updates":[{"row":[1,0,0],"t":1},{"row":[0,1,0],"t":2}]}`).Body.Close()
	// v2 rows: 1 row.
	postJSON(t, ts.URL+"/v2/tenants/default/rows", `{"updates":[{"row":[0,0,1],"t":3}]}`).Body.Close()
	// v2 bulk envelope: 1 row.
	postJSON(t, ts.URL+"/v2/rows",
		`{"tenants":[{"id":"default","updates":[{"row":[1,1,0],"t":4}]}]}`).Body.Close()
	// Binary stream: one 2-row frame.
	w := binenc.NewWriter()
	w.Int(2)
	w.Int(3)
	w.F64(5)
	w.F64(6)
	for i := 0; i < 6; i++ {
		w.F64(float64(i))
	}
	payload := w.Bytes()
	frame := make([]byte, 4, 4+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	resp, err := http.Post(ts.URL+"/v2/tenants/default/stream", ContentTypeFrames,
		strings.NewReader(string(frame)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	snap := fetchSnapshot(t, ts.URL)
	if len(snap.TopK) != 1 {
		t.Fatalf("topk %+v, want exactly the default tenant", snap.TopK)
	}
	e := snap.TopK[0]
	if e.Tenant != DefaultTenant {
		t.Fatalf("hot tenant %q", e.Tenant)
	}
	const exact = 6 // 2 + 1 + 1 + 2 rows across the four entry points
	if e.Rows < exact || e.Rows-exact > e.Bound {
		t.Fatalf("rows estimate %d outside [%d, %d+%d]", e.Rows, exact, exact, e.Bound)
	}
	if e.Bytes < 8*3*exact {
		t.Fatalf("bytes estimate %d below the dense-equivalent floor %d", e.Bytes, 8*3*exact)
	}
	if e.Touches < 4 {
		t.Fatalf("touches %d, want ≥ 4 (one per request)", e.Touches)
	}
	if e.Events != 0 {
		t.Fatalf("events %d on a clean run", e.Events)
	}
	if snap.WindowRows != exact {
		t.Fatalf("aggregate window rows %d, want %d", snap.WindowRows, exact)
	}

	// The tenant's first observation entered the top-K tracker, and
	// that churn event is countable in the trace summary.
	sum := tr.Summarize()
	if sum.Kinds[trace.KindTopKEnter].Count == 0 {
		t.Fatalf("no %s events in trace summary %+v", trace.KindTopKEnter, sum.Kinds)
	}
}

// TestHotkeysEvents checks the error funnels: a shed stream open, a
// bad frame on an accepted stream, and a bulk item naming an unknown
// tenant all land on the events plane under the right key.
func TestHotkeysEvents(t *testing.T) {
	hot := hh.New(hh.Config{Window: time.Minute, K: 8})
	s := NewServer(newSketch(3), 3, WithHotKeys(hot), WithStreamQueue(2))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Give the default tenant row volume first: the top-K tracker is
	// keyed on rows, and only tracked tenants report per-plane detail.
	postJSON(t, ts.URL+"/v1/ingest", `{"updates":[{"row":[1,0,0],"t":1}]}`).Body.Close()

	// Saturate the default tenant's budget, then shed a stream open.
	def, _ := s.Registry().Get(DefaultTenant)
	if !def.TryEnqueue(2) || !def.TryEnqueue(2) {
		t.Fatal("could not saturate the gate")
	}
	resp, err := http.Post(ts.URL+"/v2/tenants/default/stream", ContentTypeNDJSON,
		strings.NewReader(`{"row":[1,0,0],"t":1}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated stream open status %d", resp.StatusCode)
	}
	def.Dequeue()
	def.Dequeue()

	// A malformed NDJSON line on an accepted stream fails the block.
	resp, err = http.Post(ts.URL+"/v2/tenants/default/stream", ContentTypeNDJSON,
		strings.NewReader("{not json\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// A bulk item for a tenant that does not exist.
	postJSON(t, ts.URL+"/v2/rows",
		`{"tenants":[{"id":"ghost","updates":[{"row":[1,0,0],"t":1}]}]}`).Body.Close()

	snap := fetchSnapshot(t, ts.URL)
	events := map[string]uint64{}
	for _, e := range snap.TopK {
		events[e.Tenant] = e.Events
	}
	if events[DefaultTenant] < 2 {
		t.Fatalf("default tenant events %d, want ≥ 2 (shed open + bad line): %+v", events[DefaultTenant], snap.TopK)
	}
	// The ghost tenant has no row volume, so it cannot enter the
	// top-K — but its miss still lands on the aggregate events plane.
	if snap.WindowEvents < 3 {
		t.Fatalf("aggregate window events %d, want ≥ 3 (shed + bad line + ghost miss)", snap.WindowEvents)
	}
}

// TestHotkeysHealthSurface: both health generations carry the sidecar
// config when it is attached, and stay byte-identical to the pre-
// sidecar shape when it is not.
func TestHotkeysHealthSurface(t *testing.T) {
	hot := hh.New(hh.Config{Window: 90 * time.Second, K: 5})
	with := httptest.NewServer(NewServer(newSketch(3), 3, WithHotKeys(hot)).Handler())
	defer with.Close()
	without := httptest.NewServer(NewServer(newSketch(3), 3).Handler())
	defer without.Close()

	for _, path := range []string{"/v1/health", "/v2/health"} {
		resp, err := http.Get(with.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var hr struct {
			HotKeys *struct {
				Enabled       bool    `json:"enabled"`
				WindowSeconds float64 `json:"window_seconds"`
				TopK          int     `json:"top_k"`
			} `json:"hotkeys"`
		}
		decode(t, resp, &hr)
		if hr.HotKeys == nil || !hr.HotKeys.Enabled || hr.HotKeys.WindowSeconds != 90 || hr.HotKeys.TopK != 5 {
			t.Fatalf("%s hotkeys block %+v", path, hr.HotKeys)
		}

		resp, err = http.Get(without.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var raw map[string]json.RawMessage
		decode(t, resp, &raw)
		if _, leaked := raw["hotkeys"]; leaked {
			t.Fatalf("%s advertises hotkeys with no sidecar attached", path)
		}
	}

	// Without the sidecar, the debug route does not exist.
	resp, err := http.Get(without.URL + "/debug/hotkeys")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/hotkeys without sidecar: status %d", resp.StatusCode)
	}
}

// TestHotkeysMetricsGauges: with WithMetrics alongside, the sidecar's
// skew gauges land in the Prometheus exposition.
func TestHotkeysMetricsGauges(t *testing.T) {
	hot := hh.New(hh.Config{Window: time.Minute, K: 8})
	s := NewServer(newSketch(3), 3, WithHotKeys(hot), WithMetrics(obs.NewRegistry()))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postJSON(t, ts.URL+"/v1/ingest", `{"updates":[{"row":[1,0,0],"t":1}]}`).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{"swsketch_hotkeys", "topk_share", "window_rows"} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}
