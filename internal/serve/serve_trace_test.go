package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"log/slog"

	"swsketch/internal/core"
	"swsketch/internal/obs/audit"
	"swsketch/internal/trace"
	"swsketch/internal/window"
)

// variedRow is a deterministic pseudo-random row generator (no RNG so
// runs are reproducible byte for byte).
func variedRow(i int) []float64 {
	return []float64{
		float64(i%7) - 3,
		float64((i*5)%11) * 0.5,
		float64((i*3)%13) - 6,
	}
}

func ingestVaried(t *testing.T, url string, from, to int) {
	t.Helper()
	var b strings.Builder
	b.WriteString(`{"updates":[`)
	for i := from; i < to; i++ {
		if i > from {
			b.WriteString(",")
		}
		r := variedRow(i)
		fmt.Fprintf(&b, `{"row":[%v,%v,%v],"t":%d}`, r[0], r[1], r[2], i)
	}
	b.WriteString("]}")
	resp := postJSON(t, url+"/v1/ingest", b.String())
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("ingest [%d,%d) status %d", from, to, resp.StatusCode)
	}
}

func TestHealthWithoutAuditor(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	resp, err := http.Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	var hr healthResponse
	decode(t, resp, &hr)
	if resp.StatusCode != 200 || hr.Status != "ok" || hr.Audit || hr.Detail != nil {
		t.Fatalf("health without auditor: status %d, %+v", resp.StatusCode, hr)
	}
}

// TestHealthAuditMatchesOfflineEval is the acceptance check: the
// cova-err that /v1/health reports must equal an offline evaluation of
// the same sketch against an exact window, to FP tolerance.
func TestHealthAuditMatchesOfflineEval(t *testing.T) {
	spec := window.Seq(100)
	sk := core.NewLMFD(spec, 3, 8, 4)
	a := audit.New(audit.Config{Spec: spec, D: 3, ErrThreshold: 10}, nil)
	ts := httptest.NewServer(NewServer(sk, 3, WithAudit(a)).Handler())
	defer ts.Close()

	// Two batches of one default stride each: the second evaluation
	// lands exactly at the final row.
	n := 2 * audit.DefaultStride
	ingestVaried(t, ts.URL, 0, n/2)
	ingestVaried(t, ts.URL, n/2, n)

	resp, err := http.Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	var hr healthResponse
	decode(t, resp, &hr)
	if !hr.Audit || hr.Detail == nil {
		t.Fatalf("health %+v, want audit detail", hr)
	}
	if hr.Detail.Evaluations < 2 {
		t.Fatalf("evaluations = %d, want ≥2", hr.Detail.Evaluations)
	}

	// Offline oracle: identical sketch + exact window over the same
	// stream, evaluated at the same final timestamp.
	sk2 := core.NewLMFD(spec, 3, 8, 4)
	exact := window.NewExact(spec, 3)
	for i := 0; i < n; i++ {
		r := variedRow(i)
		sk2.Update(r, float64(i))
		exact.Update(r, float64(i))
	}
	offline := exact.CovaErr(sk2.Query(float64(n - 1)))

	if diff := hr.Detail.CovaErr - offline; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("audited cova-err %v, offline %v (diff %v)", hr.Detail.CovaErr, offline, diff)
	}
}

func TestHealthFreshForcesEvaluation(t *testing.T) {
	spec := window.Seq(100)
	sk := core.NewLMFD(spec, 3, 8, 4)
	a := audit.New(audit.Config{Spec: spec, D: 3, ErrThreshold: 10}, nil)
	ts := httptest.NewServer(NewServer(sk, 3, WithAudit(a)).Handler())
	defer ts.Close()

	// 70 rows: one stride boundary passed (64), 6 rows un-evaluated.
	ingestVaried(t, ts.URL, 0, 70)
	before := a.Status().Evaluations

	resp, err := http.Get(ts.URL + "/v1/health?fresh=1")
	if err != nil {
		t.Fatal(err)
	}
	var hr healthResponse
	decode(t, resp, &hr)
	if hr.Detail == nil || hr.Detail.Evaluations != before+1 {
		t.Fatalf("fresh health %+v, want evaluations %d", hr, before+1)
	}
	if hr.Detail.T != 69 {
		t.Fatalf("fresh evaluation at t=%v, want 69", hr.Detail.T)
	}
}

func TestHealthDegraded(t *testing.T) {
	spec := window.Seq(100)
	// ℓ=2 on varied 3-dimensional rows: the sketch cannot be accurate,
	// so any positive threshold this small must trip.
	sk := core.NewLMFD(spec, 3, 2, 2)
	a := audit.New(audit.Config{Spec: spec, D: 3, ErrThreshold: 1e-9}, nil)
	ts := httptest.NewServer(NewServer(sk, 3, WithAudit(a)).Handler())
	defer ts.Close()

	ingestVaried(t, ts.URL, 0, 2*audit.DefaultStride)

	resp, err := http.Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	var hr healthResponse
	decode(t, resp, &hr)
	if resp.StatusCode != http.StatusServiceUnavailable || hr.Status != "degraded" {
		t.Fatalf("degraded health: status %d, %+v", resp.StatusCode, hr)
	}
	if hr.Detail == nil || !hr.Detail.Degraded {
		t.Fatalf("degraded detail %+v", hr.Detail)
	}
}

func TestAuditResetOnSnapshotRestore(t *testing.T) {
	spec := window.Seq(100)
	mk := func() (*httptest.Server, *audit.Auditor) {
		sk := core.NewLMFD(spec, 3, 8, 4)
		a := audit.New(audit.Config{Spec: spec, D: 3}, nil)
		return httptest.NewServer(NewServer(sk, 3, WithAudit(a)).Handler()), a
	}
	ts, _ := mk()
	defer ts.Close()
	ingestVaried(t, ts.URL, 0, 64)
	snap, err := http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(snap.Body)
	snap.Body.Close()

	ts2, a2 := mk()
	defer ts2.Close()
	ingestVaried(t, ts2.URL, 0, 64)
	if a2.Status().Warming {
		t.Fatal("auditor warming before restore")
	}
	r, err := http.Post(ts2.URL+"/v1/snapshot", "application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != 200 {
		t.Fatalf("restore status %d", r.StatusCode)
	}
	st := a2.Status()
	if !st.Warming || st.ShadowRows != 0 {
		t.Fatalf("post-restore auditor %+v, want warming with empty shadow", st)
	}
}

func TestDebugTraceEndpoint(t *testing.T) {
	tr := trace.New(4096)
	tr.Enable()
	sk := core.NewLMFD(window.Seq(100), 3, 8, 4)
	ts := httptest.NewServer(NewServer(sk, 3, WithTrace(tr)).Handler())
	defer ts.Close()

	// Enough varied rows to force block closes, merges, expiries, and
	// FD shrinks, plus the requests themselves.
	ingestVaried(t, ts.URL, 0, 150)

	resp, err := http.Get(ts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace content type %q", ct)
	}
	kinds := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e trace.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		kinds[e.Kind]++
	}
	for _, want := range []string{trace.KindLMClose, trace.KindFDShrink, trace.KindHTTP} {
		if kinds[want] == 0 {
			t.Fatalf("trace dump missing kind %q (got %v)", want, kinds)
		}
	}

	// Summary format mirrors the ring's counters.
	r2, err := http.Get(ts.URL + "/debug/trace?format=summary")
	if err != nil {
		t.Fatal(err)
	}
	var sum trace.Summary
	decode(t, r2, &sum)
	if !sum.Enabled || sum.Total == 0 || len(sum.Kinds) == 0 {
		t.Fatalf("trace summary %+v", sum)
	}

	// Unknown format is an envelope error.
	r3, err := http.Get(ts.URL + "/debug/trace?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad format status %d", r3.StatusCode)
	}
}

func TestDebugTraceAbsentWithoutTracer(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	resp, err := http.Get(ts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace without tracer status %d, want 404", resp.StatusCode)
	}
}

// syncBuffer lets the test read log output written from server
// handler goroutines without racing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRequestLoggingAndIDs(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	tr := trace.New(256)
	tr.Enable()
	sk := core.NewLMFD(window.Seq(100), 3, 8, 4)
	ts := httptest.NewServer(NewServer(sk, 3, WithLogger(logger), WithTrace(tr)).Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/ingest", `{"updates":[{"row":[1,2,3],"t":1}]}`)
	resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Fatal("no X-Request-ID header")
	}
	r2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	id2 := r2.Header.Get("X-Request-ID")
	if id2 == "" || id2 == id {
		t.Fatalf("request IDs not unique: %q vs %q", id, id2)
	}

	out := buf.String()
	for _, want := range []string{
		"id=" + id, "route=/v1/ingest", "method=POST", "status=200",
		"id=" + id2, "route=/v1/stats",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("log output missing %q:\n%s", want, out)
		}
	}

	// The same request ID tags the http_request trace events, joining
	// the two observability planes.
	var found bool
	for _, e := range tr.Events() {
		if e.Kind == trace.KindHTTP && strings.HasPrefix(e.Note, id+" ") {
			found = true
			if e.V1 != 200 {
				t.Fatalf("http trace event status %v, want 200", e.V1)
			}
		}
	}
	if !found {
		t.Fatalf("no http_request trace event tagged %q", id)
	}
}

func TestSilentByDefault(t *testing.T) {
	// Without WithLogger the server must not write anything to the
	// default slog output; spot-check by swapping the default logger.
	var buf syncBuffer
	prev := slog.Default()
	slog.SetDefault(slog.New(slog.NewTextHandler(&buf, nil)))
	defer slog.SetDefault(prev)

	ts, done := newTestServer(t)
	defer done()
	postJSON(t, ts.URL+"/v1/ingest", `{"updates":[{"row":[1,2,3],"t":1}]}`).Body.Close()
	if out := buf.String(); out != "" {
		t.Fatalf("unexpected log output: %s", out)
	}
}
