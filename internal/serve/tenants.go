package serve

// Tenant lifecycle routes (/v1/tenants...) and the bulk multi-tenant
// ingest route. Tenant IDs accepted over HTTP are restricted to
// [A-Za-z0-9._-] and at most registry.MaxIDLen bytes; the registry
// itself allows any non-empty string (programmatic callers may use
// richer IDs), the serve layer is stricter so IDs embed cleanly in
// URLs, metric labels, and log lines.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"swsketch/internal/registry"
)

// validTenantID reports whether an ID is acceptable over the HTTP API.
func validTenantID(id string) bool {
	if id == "" || len(id) > registry.MaxIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

type tenantListResponse struct {
	Tenants []registry.Info `json:"tenants"`
}

func (s *Server) handleTenantList(w http.ResponseWriter, _ *http.Request) {
	infos := s.treg.List()
	if infos == nil {
		infos = []registry.Info{}
	}
	writeJSON(w, tenantListResponse{Tenants: infos})
}

// tenantInfoResponse is the GET /v1/tenants/{id} payload (also
// returned by PUT on creation).
type tenantInfoResponse struct {
	ID        string           `json:"id"`
	Algorithm string           `json:"algorithm"`
	Dimension int              `json:"dimension"`
	Resident  bool             `json:"resident"`
	Rows      int              `json:"rows_stored"`
	Updates   uint64           `json:"updates"`
	Pinned    bool             `json:"pinned,omitempty"`
	Config    *registry.Config `json:"config,omitempty"`
}

func tenantInfo(t *registry.Tenant) tenantInfoResponse {
	resp := tenantInfoResponse{
		ID:        t.ID(),
		Algorithm: t.Algorithm(),
		Dimension: t.D(),
		Resident:  t.Resident(),
		Rows:      t.Rows(),
		Updates:   t.Updates(),
		Pinned:    t.Pinned(),
	}
	if cfg := t.Config(); cfg.Framework != "" {
		resp.Config = &cfg
	}
	return resp
}

// handleTenantPut creates a tenant from a declarative config. The body
// is a registry.Config JSON object; unknown fields are rejected. A
// duplicate ID answers 409 conflict, a config the registry cannot
// build answers 400 invalid_argument.
func (s *Server) handleTenantPut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validTenantID(id) {
		httpError(w, http.StatusBadRequest, CodeInvalidArgument,
			"tenant ID must match [A-Za-z0-9._-]{1,%d}", registry.MaxIDLen)
		return
	}
	if id == DefaultTenant {
		httpError(w, http.StatusBadRequest, CodeInvalidArgument,
			"tenant ID %q is reserved", DefaultTenant)
		return
	}
	body := r.Body
	if s.maxBody > 0 {
		body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	var cfg registry.Config
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
				"body exceeds %d bytes", tooLarge.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, CodeInvalidJSON, "bad JSON: %v", err)
		return
	}
	t, err := s.treg.Create(id, cfg)
	switch {
	case errors.Is(err, registry.ErrExists):
		httpError(w, http.StatusConflict, CodeConflict, "tenant %q already exists", id)
		return
	case errors.Is(err, registry.ErrBadID):
		httpError(w, http.StatusBadRequest, CodeInvalidArgument, "%v", err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, CodeInvalidArgument, "%v", err)
		return
	}
	if s.wal != nil {
		// Log the normalized config (t.Config), not the request body, so
		// replay rebuilds exactly what was built. An append failure rolls
		// the creation back: an unlogged tenant would silently vanish on
		// restart.
		cfgJSON, merr := json.Marshal(t.Config())
		if merr == nil {
			_, merr = s.wal.AppendCreate(id, cfgJSON)
		}
		if merr != nil {
			s.treg.Delete(id)
			httpError(w, http.StatusInternalServerError, CodeInternal, "wal append: %v", merr)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_ = json.NewEncoder(w).Encode(tenantInfo(t))
}

func (s *Server) handleTenantInfo(w http.ResponseWriter, r *http.Request) {
	if t, ok := s.tenantOf(w, r); ok {
		writeJSON(w, tenantInfo(t))
	}
}

type tenantDeleteResponse struct {
	Deleted string `json:"deleted"`
}

func (s *Server) handleTenantDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if id == DefaultTenant {
		httpError(w, http.StatusBadRequest, CodeInvalidArgument,
			"tenant %q cannot be deleted", DefaultTenant)
		return
	}
	if !s.treg.Delete(id) {
		httpError(w, http.StatusNotFound, CodeNotFound, "no tenant %q", id)
		return
	}
	if s.wal != nil {
		// Best effort: the registry delete already released the tenant's
		// WAL records via the evict hook; the delete record only stops a
		// replay from resurrecting a tenant logged earlier.
		_, _ = s.wal.AppendDelete(id)
	}
	writeJSON(w, tenantDeleteResponse{Deleted: id})
}

// tenantHealthResponse is the GET /v1/tenants/{id}/health payload: a
// cheap liveness/residency probe that never forces a spilled tenant
// back into memory (unlike the query routes, it does not Acquire).
type tenantHealthResponse struct {
	Status   string `json:"status"`
	Tenant   string `json:"tenant"`
	Resident bool   `json:"resident"`
	Updates  uint64 `json:"updates"`
}

func (s *Server) handleTenantHealth(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	writeJSON(w, tenantHealthResponse{
		Status:   "ok",
		Tenant:   t.ID(),
		Resident: t.Resident(),
		Updates:  t.Updates(),
	})
}

type bulkIngestRequest struct {
	Tenants []bulkTenantUpdates `json:"tenants"`
}

type bulkTenantUpdates struct {
	ID      string         `json:"id"`
	Updates []ingestUpdate `json:"updates"`
}

// bulkResult is one tenant's outcome inside a bulk ingest response:
// either Accepted/LastT on success or Error on failure.
type bulkResult struct {
	ID       string     `json:"id"`
	Accepted int        `json:"accepted"`
	LastT    float64    `json:"last_t,omitempty"`
	Error    *errorBody `json:"error,omitempty"`
}

type bulkIngestResponse struct {
	Results []bulkResult `json:"results"`
}

// decodeBulk parses a bulk-ingest body, shared by /v1/ingest/bulk and
// /v2/rows.
func (s *Server) decodeBulk(w http.ResponseWriter, r *http.Request) (bulkIngestRequest, *apiError) {
	body := r.Body
	if s.maxBody > 0 {
		body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	var req bulkIngestRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return req, errf(http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
				"body exceeds %d bytes", tooLarge.Limit)
		}
		return req, errf(http.StatusBadRequest, CodeInvalidJSON, "bad JSON: %v", err)
	}
	if len(req.Tenants) == 0 {
		return req, errf(http.StatusBadRequest, CodeInvalidArgument, "no tenants")
	}
	return req, nil
}

// handleBulkIngest applies per-tenant update batches in one request.
// Each tenant's batch is all-or-nothing, but tenants are independent:
// one tenant's failure (reported in its result's error field, with the
// same codes as single-tenant ingest) does not abort the others, and
// the response is always 200 with one result per requested tenant, in
// request order.
func (s *Server) handleBulkIngest(w http.ResponseWriter, r *http.Request) {
	req, apiErr := s.decodeBulk(w, r)
	if apiErr != nil {
		apiErr.write(w)
		return
	}
	results := make([]bulkResult, 0, len(req.Tenants))
	for _, item := range req.Tenants {
		res := bulkResult{ID: item.ID}
		t, ok := s.treg.Get(item.ID)
		if !ok {
			// Attribute the miss to the requested key: a bulk client
			// hammering a deleted tenant shows up on the events plane.
			s.hot.ObserveEvent(item.ID)
			res.Error = &errorBody{Code: CodeNotFound, Message: fmt.Sprintf("no tenant %q", item.ID)}
		} else if resp, apiErr := s.ingestTenant(t, item.Updates); apiErr != nil {
			res.Error = &errorBody{Code: apiErr.code, Message: apiErr.msg}
		} else {
			res.Accepted = resp.Accepted
			res.LastT = resp.LastT
		}
		results = append(results, res)
	}
	writeJSON(w, bulkIngestResponse{Results: results})
}
