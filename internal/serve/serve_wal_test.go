package serve

// End-to-end WAL recovery over HTTP: traffic in, crash (drop the
// server without any graceful snapshotting), reopen against the same
// log directory, and the recovered tenants must marshal to the same
// bytes the live ones did.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"swsketch/internal/wal"
)

// walServer builds a server journaling into dir and recovers the log.
func walServer(t *testing.T, dir string) (*Server, *httptest.Server, wal.Stats) {
	t.Helper()
	l, err := wal.Open(dir, wal.WithShards(2), wal.WithSyncInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(newSketch(3), 3, WithWAL(l))
	st, err := s.RecoverWAL()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); l.Close() })
	return s, ts, st
}

func getBytes(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, data)
	}
	return data
}

// TestWALRecoveryBitExact drives mixed traffic — batch ingest, a
// created tenant, streaming blocks — then recovers a cold server from
// the log alone and compares binary snapshots byte for byte.
func TestWALRecoveryBitExact(t *testing.T) {
	dir := t.TempDir()
	_, ts, _ := walServer(t, dir)

	// Batch rows into the default tenant via v1 and v2.
	postJSON(t, ts.URL+"/v1/ingest", `{"updates":[{"row":[1,0,0],"t":1},{"row":[0,2,0],"t":2}]}`).Body.Close()
	postJSON(t, ts.URL+"/v2/tenants/default/rows", `{"updates":[{"row":[0,0,3],"t":3}]}`).Body.Close()
	// A sparse update (the WAL densifies it).
	postJSON(t, ts.URL+"/v1/ingest", `{"updates":[{"idx":[1],"val":[5],"t":4}]}`).Body.Close()

	// A second tenant created and fed over the API.
	req, _ := http.NewRequest("PUT", ts.URL+"/v2/tenants/alpha", strings.NewReader(lmTenantCfg))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	postJSON(t, ts.URL+"/v2/tenants/alpha/rows", `{"updates":[{"row":[7,0,0],"t":1},{"row":[0,7,0],"t":2}]}`).Body.Close()

	// Streamed blocks into the default tenant.
	var b strings.Builder
	for i := 5; i < 25; i++ {
		fmt.Fprintf(&b, `{"row":[%d,1,0],"t":%d}`+"\n", i%3, i)
	}
	resp, err = http.Post(ts.URL+"/v2/tenants/default/stream", ContentTypeNDJSON,
		strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	wantDefault := getBytes(t, ts.URL+"/v2/tenants/default/snapshot")
	wantAlpha := getBytes(t, ts.URL+"/v2/tenants/alpha/snapshot")

	// "Crash": no graceful close of the registry, just a cold start on
	// the same directory (the log was opened with per-append sync).
	_, ts2, st := walServer(t, dir)
	if st.Damaged || st.Torn {
		t.Fatalf("recovery stats %+v", st)
	}
	if got := getBytes(t, ts2.URL+"/v2/tenants/default/snapshot"); !bytes.Equal(got, wantDefault) {
		t.Fatalf("default tenant diverged after recovery: %d vs %d bytes", len(got), len(wantDefault))
	}
	if got := getBytes(t, ts2.URL+"/v2/tenants/alpha/snapshot"); !bytes.Equal(got, wantAlpha) {
		t.Fatalf("alpha tenant diverged after recovery: %d vs %d bytes", len(got), len(wantAlpha))
	}

	// The recovered node keeps serving: more rows and a third recovery
	// still agree.
	postJSON(t, ts2.URL+"/v2/tenants/default/rows", `{"updates":[{"row":[1,1,1],"t":30}]}`).Body.Close()
	want3 := getBytes(t, ts2.URL+"/v2/tenants/default/snapshot")
	_, ts3, _ := walServer(t, dir)
	if got := getBytes(t, ts3.URL+"/v2/tenants/default/snapshot"); !bytes.Equal(got, want3) {
		t.Fatalf("second recovery diverged")
	}
}

// TestWALRecoveryAfterRestoreAndDelete: a logged snapshot restore
// supersedes earlier rows, and a logged delete stays deleted.
func TestWALRecoveryAfterRestoreAndDelete(t *testing.T) {
	dir := t.TempDir()
	_, ts, _ := walServer(t, dir)

	postJSON(t, ts.URL+"/v1/ingest", `{"updates":[{"row":[1,0,0],"t":1},{"row":[0,1,0],"t":2}]}`).Body.Close()
	snap := getBytes(t, ts.URL+"/v1/snapshot")
	postJSON(t, ts.URL+"/v1/ingest", `{"updates":[{"row":[9,9,9],"t":3}]}`).Body.Close()
	// Restore the earlier snapshot: the 9,9,9 row must not survive
	// recovery either.
	resp, err := http.Post(ts.URL+"/v1/snapshot", "application/octet-stream", bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	postJSON(t, ts.URL+"/v1/ingest", `{"updates":[{"row":[4,0,0],"t":10}]}`).Body.Close()
	want := getBytes(t, ts.URL+"/v1/snapshot")

	// A tenant created then deleted must stay gone.
	req, _ := http.NewRequest("PUT", ts.URL+"/v2/tenants/doomed", strings.NewReader(lmTenantCfg))
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	req, _ = http.NewRequest("DELETE", ts.URL+"/v2/tenants/doomed", nil)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()

	_, ts2, st := walServer(t, dir)
	if st.Damaged {
		t.Fatalf("recovery stats %+v", st)
	}
	if got := getBytes(t, ts2.URL+"/v1/snapshot"); !bytes.Equal(got, want) {
		t.Fatal("restore-then-ingest state diverged after recovery")
	}
	r, err := http.Get(ts2.URL + "/v2/tenants/doomed/stats")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted tenant resurrected: status %d", r.StatusCode)
	}
}

// TestWALDamagedHealthDegraded: corruption found during replay turns
// /v2/health degraded (503) with the wal.damaged flag set.
func TestWALDamagedHealthDegraded(t *testing.T) {
	dir := t.TempDir()
	_, ts, _ := walServer(t, dir)
	postJSON(t, ts.URL+"/v1/ingest", `{"updates":[{"row":[1,0,0],"t":1}]}`).Body.Close()
	postJSON(t, ts.URL+"/v1/ingest", `{"updates":[{"row":[0,1,0],"t":2}]}`).Body.Close()

	// Flip a byte early in the shard's segment so replay hits a CRC
	// mismatch before the tail (mid-segment damage, not a torn tail).
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	corrupted := false
	for _, seg := range segs {
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > 40 {
			data[30] ^= 0xFF
			if err := os.WriteFile(seg, data, 0o644); err != nil {
				t.Fatal(err)
			}
			corrupted = true
		}
	}
	if !corrupted {
		t.Fatal("no segment large enough to corrupt")
	}

	_, ts2, st := walServer(t, dir)
	if !st.Damaged {
		t.Fatalf("recovery stats %+v, want damaged", st)
	}
	resp, err := http.Get(ts2.URL + "/v2/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("damaged health status %d", resp.StatusCode)
	}
	var hr healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "degraded" || hr.WAL == nil || !hr.WAL.Damaged || !hr.WAL.Replayed {
		t.Fatalf("damaged health %+v wal %+v", hr, hr.WAL)
	}
}

// TestWALHealthFieldAbsentWithoutWAL pins v1 byte-compatibility: no
// WAL attached, no "wal" key in the health payload.
func TestWALHealthFieldAbsentWithoutWAL(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	data := getBytes(t, ts.URL+"/v1/health")
	if bytes.Contains(data, []byte(`"wal"`)) {
		t.Fatalf("health without a WAL leaks the wal field: %s", data)
	}
}
