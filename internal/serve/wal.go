package serve

// WAL integration: the durability half of the ingest plane. With
// WithWAL attached, every state-changing request appends a record to
// the per-shard write-ahead log BEFORE it mutates the registry, and
// RecoverWAL replays the log through the registry on startup so a
// crashed node rebuilds its tenant sketches bit-exactly (modulo the
// group-commit window). Spills and deletions release a tenant's
// records for truncation via the registry's evict hook.

import (
	"encoding"
	"encoding/json"
	"fmt"
	"net/http"

	"swsketch/internal/registry"
	"swsketch/internal/wal"
)

// WithWAL attaches a write-ahead log (opened, not yet replayed): rows,
// tenant creations/deletions, and snapshot restores are logged before
// they apply, and the registry's evictions release WAL records for
// truncation. Call RecoverWAL after NewServer and before serving —
// appends fail until the log has replayed.
func WithWAL(l *wal.Log) Option {
	return func(s *Server) {
		if l == nil {
			panic("serve: nil WAL")
		}
		s.wal = l
	}
}

// WAL returns the attached write-ahead log, or nil.
func (s *Server) WAL() *wal.Log { return s.wal }

// RecoverWAL replays the attached WAL through the tenant registry and
// enables appends. It must run after NewServer (so replayed rows for
// the adopted default tenant land in its fresh sketch) and before the
// server takes traffic. Corruption does not fail recovery: it is
// reported in the returned stats and on the health endpoints as
// degraded. Without WithWAL it is a no-op.
func (s *Server) RecoverWAL() (wal.Stats, error) {
	if s.wal == nil {
		return wal.Stats{}, nil
	}
	st, err := s.wal.Replay(&registryApplier{s: s})
	if err != nil {
		return st, err
	}
	if st.Damaged {
		s.walDamaged.Store(true)
	}
	return st, nil
}

// walAppendRows logs one validated row block; the caller holds the
// tenant and has NOT yet applied the block. A nil WAL is a no-op.
func (s *Server) walAppendRows(t *registry.Tenant, rows [][]float64, times []float64) *apiError {
	if s.wal == nil {
		return nil
	}
	if _, err := s.wal.AppendRows(t.ID(), t.Updates(), rows, times); err != nil {
		return errf(http.StatusInternalServerError, CodeInternal, "wal append: %v", err)
	}
	return nil
}

// registryApplier adapts the tenant registry to wal.Applier for
// replay-to-restore.
type registryApplier struct {
	s *Server
}

// Create rebuilds a logged tenant. A tenant that already exists — the
// spill-directory scan registered it, or a later duplicate record —
// is an intentional skip.
func (a *registryApplier) Create(tenant string, cfgJSON []byte) (bool, error) {
	var cfg registry.Config
	if err := json.Unmarshal(cfgJSON, &cfg); err != nil {
		return false, fmt.Errorf("create %q: %w", tenant, err)
	}
	if _, err := a.s.treg.Create(tenant, cfg); err != nil {
		if err == registry.ErrExists {
			return false, nil
		}
		return false, fmt.Errorf("create %q: %w", tenant, err)
	}
	return true, nil
}

// Rows re-applies a logged row block when the tenant's committed
// update count matches the block's start: a spilled snapshot that
// already covers the block leaves Updates() past it (skip), and a
// gap means an intervening record was lost to truncation by design.
func (a *registryApplier) Rows(tenant string, start uint64, rows [][]float64, times []float64) (bool, error) {
	t, ok := a.s.treg.Get(tenant)
	if !ok {
		return false, nil // deleted later in the log, or released
	}
	if err := t.Acquire(); err != nil {
		return false, fmt.Errorf("rows %q: %w", tenant, err)
	}
	defer t.Release()
	if t.Updates() != start {
		return false, nil
	}
	if err := applyBatch(t.Sketch(), rows, times); err != nil {
		return false, fmt.Errorf("rows %q: %w", tenant, err)
	}
	t.Commit(len(rows), times[len(times)-1])
	return true, nil
}

// Snapshot re-applies a logged snapshot restore: the blob replaces the
// sketch state and the logged clock is reinstated.
func (a *registryApplier) Snapshot(tenant string, updates uint64, lastT float64, seen bool, blob []byte) (bool, error) {
	t, ok := a.s.treg.Get(tenant)
	if !ok {
		return false, nil
	}
	if err := t.Acquire(); err != nil {
		return false, fmt.Errorf("snapshot %q: %w", tenant, err)
	}
	defer t.Release()
	u, ok := t.Raw().(encoding.BinaryUnmarshaler)
	if !ok {
		return false, fmt.Errorf("snapshot %q: %s does not support snapshots", tenant, t.Raw().Name())
	}
	if err := u.UnmarshalBinary(blob); err != nil {
		return false, fmt.Errorf("snapshot %q: %w", tenant, err)
	}
	t.SetClock(updates, lastT, seen)
	return true, nil
}

// Delete re-applies a logged tenant deletion.
func (a *registryApplier) Delete(tenant string) (bool, error) {
	return a.s.treg.Delete(tenant), nil
}
