package serve

// Streaming ingest: POST /v2/tenants/{id}/stream holds one long-lived
// connection and applies row blocks as they arrive, acknowledging each
// block with an itemResult line so the client can pipeline without
// per-batch HTTP overhead. Two wire encodings share the handler:
//
//	application/x-ndjson (default)
//	  One ingestUpdate JSON object per line ({"row":[...],"t":1}).
//	  A blank line flushes the pending batch as one block; batches
//	  also flush at streamBatchRows rows. Sparse updates work.
//
//	application/x-swsketch-frames
//	  Length-prefixed binary frames: a little-endian uint32 payload
//	  length, then a binenc payload of Int n, Int d, n×F64 times,
//	  n·d×F64 row-major values. One frame is one block. ~8 bytes per
//	  value vs ~20 for JSON, and no float formatting on either end.
//
// Acks are NDJSON itemResult lines in both modes, flushed after every
// block: index is the block's ordinal within the stream, accepted and
// last_t mirror the batch-ingest response, and error carries the
// uniform {"code","message"} body with the same codes as /v2 bulk. A
// failed block does not close the stream — the tenant's clock is
// untouched, so the client may repair and resend.
//
// Backpressure: each tenant has a bounded in-flight block budget
// (WithStreamQueue). A stream open against an exhausted tenant is
// refused with 429 + Retry-After before any body is read; a block
// arriving while the budget is exhausted is shed with an "overloaded"
// error ack (the stream stays up). The budget bounds memory per
// tenant no matter how many connections fan in.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"swsketch/internal/binenc"
	"swsketch/internal/registry"
	"swsketch/internal/trace"
)

// CodeOverloaded is the error code shed stream blocks carry: the
// tenant's in-flight budget is exhausted; retry after a pause.
const CodeOverloaded = "overloaded"

// Stream wire-format constants.
const (
	// ContentTypeNDJSON selects (and marks) newline-delimited JSON.
	ContentTypeNDJSON = "application/x-ndjson"
	// ContentTypeFrames selects the binary block framing.
	ContentTypeFrames = "application/x-swsketch-frames"

	// streamBatchRows caps how many NDJSON updates buffer before an
	// implicit flush (a blank line flushes earlier).
	streamBatchRows = 256
	// streamMaxLine bounds one NDJSON line.
	streamMaxLine = 1 << 20
	// streamMaxFrame bounds one binary frame's payload so a hostile
	// length prefix cannot demand an arbitrary allocation.
	streamMaxFrame = 64 << 20
)

// streamConn is one open stream's state: the acknowledgement encoder
// and the running block/row counters the close event reports.
type streamConn struct {
	s     *Server
	t     *registry.Tenant
	rc    *http.ResponseController
	enc   *json.Encoder
	index int // next block ordinal
	rows  int // rows accepted so far
}

// handleStream serves POST /v2/tenants/{id}/stream; see the comment at
// the top of this file for the protocol.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	binaryMode := false
	switch ct := r.Header.Get("Content-Type"); ct {
	case "", ContentTypeNDJSON, "application/json":
	case ContentTypeFrames:
		binaryMode = true
	default:
		httpError(w, http.StatusUnsupportedMediaType, CodeInvalidArgument,
			"unsupported stream content type %q", ct)
		return
	}
	// Probe the tenant's budget before touching the body: a saturated
	// tenant sheds the whole connection attempt cheaply.
	if !t.TryEnqueue(s.streamQueue) {
		if s.streamShed != nil {
			s.streamShed.Inc()
		}
		s.hot.ObserveEvent(t.ID())
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, CodeOverloaded,
			"tenant %q has %d stream blocks in flight", t.ID(), t.Pending())
		return
	}
	t.Dequeue() // probe only; blocks re-enter the gate individually

	mode := "ndjson"
	if binaryMode {
		mode = "frames"
	}
	if s.streamOpen != nil {
		s.streamOpen.Add(1)
		defer s.streamOpen.Add(-1)
	}
	if s.tr.Enabled() {
		s.tr.EmitNote("serve", trace.KindStreamOpen, 0, 0, 0, t.ID()+" "+mode)
	}
	conn := &streamConn{s: s, t: t, rc: http.NewResponseController(w), enc: json.NewEncoder(w)}
	// Acks interleave with body reads on one HTTP/1.x connection; without
	// full-duplex the first response write would half-close the request
	// body under us.
	_ = conn.rc.EnableFullDuplex()
	w.Header().Set("Content-Type", ContentTypeNDJSON)
	w.WriteHeader(http.StatusOK)
	_ = conn.rc.Flush() // commit headers so the client starts reading acks
	if binaryMode {
		conn.runFrames(r.Body)
	} else {
		conn.runNDJSON(r.Body)
	}
	if s.tr.Enabled() {
		s.tr.EmitNote("serve", trace.KindStreamClose, 0,
			float64(conn.index), float64(conn.rows), t.ID()+" "+mode)
	}
}

// runNDJSON consumes newline-delimited JSON updates, flushing batches
// at blank lines, the size cap, and EOF.
func (c *streamConn) runNDJSON(body io.Reader) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64<<10), streamMaxLine)
	batch := make([]ingestUpdate, 0, streamBatchRows)
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		ok := c.block(batch)
		batch = batch[:0]
		return ok
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			if !flush() {
				return
			}
			continue
		}
		var u ingestUpdate
		if err := json.Unmarshal(line, &u); err != nil {
			// A malformed line poisons the pending batch (its boundary is
			// now unknowable), so fail the batch as one block and stop.
			batch = batch[:0]
			c.fail(&apiError{code: CodeInvalidJSON, msg: fmt.Sprintf("bad line: %v", err)})
			return
		}
		batch = append(batch, u)
		if len(batch) >= streamBatchRows && !flush() {
			return
		}
	}
	if err := sc.Err(); err != nil {
		// The peer vanished mid-line; nothing to ack to.
		return
	}
	flush()
}

// runFrames consumes length-prefixed binenc row blocks.
func (c *streamConn) runFrames(body io.Reader) {
	br := bufio.NewReader(body)
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				c.fail(&apiError{code: CodeInvalidArgument,
					msg: fmt.Sprintf("read frame length: %v", err)})
			}
			return // clean EOF between frames ends the stream
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n == 0 || n > streamMaxFrame {
			c.fail(&apiError{code: CodeInvalidArgument,
				msg: fmt.Sprintf("frame length %d out of range", n)})
			return
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			c.fail(&apiError{code: CodeInvalidArgument,
				msg: fmt.Sprintf("torn frame: %v", err)})
			return
		}
		updates, err := decodeFrame(payload, c.t.D())
		if err != nil {
			// A bad frame is unrecoverable: the next length prefix cannot
			// be trusted, so ack the failure and close.
			c.fail(&apiError{code: CodeInvalidArgument, msg: err.Error()})
			return
		}
		if !c.block(updates) {
			return
		}
	}
}

// decodeFrame parses one binary frame payload into dense updates.
func decodeFrame(payload []byte, wantD int) ([]ingestUpdate, error) {
	r := binenc.NewReader(payload)
	n, d := r.Int(), r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("frame header: %w", err)
	}
	if n < 1 || d != wantD {
		return nil, fmt.Errorf("frame claims %d rows of dimension %d, want dimension %d", n, d, wantD)
	}
	// Bound the claimed block by the bytes actually present before
	// allocating (d is server-known and small, so n*(d+1) cannot
	// overflow once n passes the first gate).
	if n > r.Rest()/8 || n*(d+1) > r.Rest()/8 {
		return nil, fmt.Errorf("frame claims %d×%d block, only %d bytes follow", n, d, r.Rest())
	}
	times := make([]float64, n)
	for i := range times {
		times[i] = r.F64()
	}
	updates := make([]ingestUpdate, n)
	for i := range updates {
		row := make([]float64, d)
		for j := range row {
			row[j] = r.F64()
		}
		updates[i] = ingestUpdate{Row: row, T: times[i]}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("frame body: %w", err)
	}
	if r.Rest() != 0 {
		return nil, fmt.Errorf("frame has %d trailing bytes", r.Rest())
	}
	return updates, nil
}

// block admits one batch through the backpressure gate, applies it,
// and acks the outcome. It reports whether the stream should continue
// (only an unwritable ack stops it).
func (c *streamConn) block(updates []ingestUpdate) bool {
	if !c.t.TryEnqueue(c.s.streamQueue) {
		if c.s.streamShed != nil {
			c.s.streamShed.Inc()
		}
		return c.fail(&apiError{code: CodeOverloaded,
			msg: fmt.Sprintf("tenant %q has %d stream blocks in flight", c.t.ID(), c.t.Pending())})
	}
	resp, apiErr := c.s.ingestTenant(c.t, updates)
	c.t.Dequeue()
	if apiErr != nil {
		return c.ack(apiErr, 0, 0)
	}
	c.rows += resp.Accepted
	if c.s.streamRows != nil {
		c.s.streamRows.Add(uint64(resp.Accepted))
		c.s.streamBlocks.Inc()
	}
	return c.ack(nil, resp.Accepted, resp.LastT)
}

// fail records the error on the hot-key sidecar's events plane and
// acks it. For block-level ingest failures ingestTenant already
// counted the event, so those go straight to ack.
func (c *streamConn) fail(apiErr *apiError) bool {
	c.s.hot.ObserveEvent(c.t.ID())
	return c.ack(apiErr, 0, 0)
}

// ack writes one itemResult line and flushes it to the client.
func (c *streamConn) ack(apiErr *apiError, accepted int, lastT float64) bool {
	res := itemResult{Index: c.index, Accepted: accepted, LastT: lastT}
	c.index++
	if apiErr != nil {
		res.Error = &errorBody{Code: apiErr.code, Message: apiErr.msg}
	}
	if err := c.enc.Encode(res); err != nil {
		return false
	}
	_ = c.rc.Flush()
	return true
}
