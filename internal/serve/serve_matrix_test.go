package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"swsketch/internal/core"
	"swsketch/internal/obs"
	"swsketch/internal/trace"
	"swsketch/internal/window"
)

// newMatrixServer mounts every optional route (metrics, trace, pprof)
// with a small body cap so the full route × failure matrix is
// exercisable against one server.
func newMatrixServer(t *testing.T) (*httptest.Server, func()) {
	t.Helper()
	tr := trace.New(256)
	sk := core.NewLMFD(window.Seq(100), 3, 8, 4)
	srv := NewServer(sk, 3,
		WithMetrics(obs.NewRegistry()),
		WithTrace(tr),
		WithPprof(),
		WithMaxBody(1024),
	)
	ts := httptest.NewServer(srv.Handler())
	return ts, ts.Close
}

func do(t *testing.T, method, url, body string) *http.Response {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// wantEnvelope asserts a response is the machine-readable error
// envelope with the given status and code.
func wantEnvelope(t *testing.T, resp *http.Response, status int, code string) {
	t.Helper()
	if resp.StatusCode != status {
		t.Errorf("status %d, want %d", resp.StatusCode, status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q, want application/json", ct)
	}
	var er errorResponse
	decode(t, resp, &er)
	if er.Error.Code != code {
		t.Errorf("code %q, want %q", er.Error.Code, code)
	}
	if er.Error.Message == "" {
		t.Error("empty envelope message")
	}
}

// TestErrorEnvelopeMethodMatrix hits every route with methods it does
// not allow; each must answer the 405 envelope with an Allow header
// naming the methods it does.
func TestErrorEnvelopeMethodMatrix(t *testing.T) {
	ts, done := newMatrixServer(t)
	defer done()

	routes := []struct {
		path  string
		allow []string
	}{
		{"/v1/ingest", []string{"POST"}},
		{"/v1/approximation", []string{"GET"}},
		{"/v1/pca", []string{"GET"}},
		{"/v1/stats", []string{"GET"}},
		{"/v1/health", []string{"GET"}},
		{"/v1/snapshot", []string{"GET", "POST"}},
		{"/healthz", []string{"GET"}},
		{"/metrics", []string{"GET"}},
		{"/debug/trace", []string{"GET"}},
	}
	methods := []string{"GET", "POST", "PUT", "DELETE", "PATCH"}

	allowed := func(m string, allow []string) bool {
		for _, a := range allow {
			if a == m {
				return true
			}
		}
		return false
	}

	for _, rt := range routes {
		for _, m := range methods {
			if allowed(m, rt.allow) {
				continue
			}
			t.Run(m+" "+rt.path, func(t *testing.T) {
				resp := do(t, m, ts.URL+rt.path, "")
				wantEnvelope(t, resp, http.StatusMethodNotAllowed, CodeMethodNotAllowed)
				got := resp.Header.Get("Allow")
				for _, a := range rt.allow {
					if !strings.Contains(got, a) {
						t.Errorf("Allow %q missing %s", got, a)
					}
				}
			})
		}
	}
}

// TestErrorEnvelopeOversizedBody checks the 413 envelope on every
// body-accepting route under the WithMaxBody cap.
func TestErrorEnvelopeOversizedBody(t *testing.T) {
	ts, done := newMatrixServer(t)
	defer done()

	big := strings.Repeat("x", 2048) // cap is 1024
	t.Run("ingest", func(t *testing.T) {
		resp := do(t, "POST", ts.URL+"/v1/ingest", `{"updates":[{"row":[1,2,3],"t":0,"pad":"`+big+`"}]}`)
		wantEnvelope(t, resp, http.StatusRequestEntityTooLarge, CodeBodyTooLarge)
	})
	t.Run("snapshot", func(t *testing.T) {
		resp := do(t, "POST", ts.URL+"/v1/snapshot", big)
		wantEnvelope(t, resp, http.StatusRequestEntityTooLarge, CodeBodyTooLarge)
	})
}

// TestErrorEnvelopeMalformedBody checks the 400 envelopes: JSON routes
// answer invalid_json for syntax errors and invalid_argument for
// schema violations; the binary snapshot route answers
// invalid_argument for garbage.
func TestErrorEnvelopeMalformedBody(t *testing.T) {
	ts, done := newMatrixServer(t)
	defer done()

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		code   string
	}{
		{"ingest syntax", "POST", "/v1/ingest", `{"updates":`, CodeInvalidJSON},
		{"ingest not json", "POST", "/v1/ingest", `not json at all`, CodeInvalidJSON},
		{"ingest unknown field", "POST", "/v1/ingest", `{"upd":[]}`, CodeInvalidJSON},
		{"ingest empty batch", "POST", "/v1/ingest", `{"updates":[]}`, CodeInvalidArgument},
		{"ingest bad row", "POST", "/v1/ingest", `{"updates":[{"row":[1],"t":0}]}`, CodeInvalidArgument},
		{"snapshot garbage", "POST", "/v1/snapshot", "garbage", CodeInvalidArgument},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp := do(t, c.method, ts.URL+c.path, c.body)
			wantEnvelope(t, resp, http.StatusBadRequest, c.code)
		})
	}
}

// TestErrorEnvelopeUnknownRoutes checks the catch-all 404 envelope.
func TestErrorEnvelopeUnknownRoutes(t *testing.T) {
	ts, done := newMatrixServer(t)
	defer done()
	for _, path := range []string{"/", "/v1", "/v1/nope", "/v2/ingest"} {
		t.Run(path, func(t *testing.T) {
			resp := do(t, "GET", ts.URL+path, "")
			wantEnvelope(t, resp, http.StatusNotFound, CodeNotFound)
		})
	}
}

// TestErrorEnvelopeQueryParams checks 400 envelopes on bad query
// parameters for every GET route that takes them.
func TestErrorEnvelopeQueryParams(t *testing.T) {
	ts, done := newMatrixServer(t)
	defer done()
	for _, path := range []string{
		"/v1/approximation?t=abc",
		"/v1/pca?t=abc",
		"/v1/pca?k=0",
		"/v1/pca?k=abc",
		"/debug/trace?format=xml",
	} {
		t.Run(path, func(t *testing.T) {
			resp := do(t, "GET", ts.URL+path, "")
			wantEnvelope(t, resp, http.StatusBadRequest, CodeInvalidArgument)
		})
	}
}
