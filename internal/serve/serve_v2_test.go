package serve

// Tests for the /v2 route group: deprecation headers on /v1, the
// unified bulk envelope, and cross-endpoint error-schema conformance.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"swsketch/internal/binenc"
	"swsketch/internal/core"
	"swsketch/internal/window"
)

func newSketch(d int) core.WindowSketch {
	return core.NewLMFD(window.Seq(100), d, 8, 4)
}

// TestV1DeprecationHeaders: every /v1 response must carry the RFC-style
// deprecation headers naming its /v2 successor, with the body untouched.
func TestV1DeprecationHeaders(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	cases := []struct {
		method, path, body, successor string
	}{
		{"POST", "/v1/ingest", `{"updates":[{"row":[1,0,0],"t":1}]}`, "/v2/tenants/default/rows"},
		{"GET", "/v1/approximation", "", "/v2/tenants/default/approximation"},
		{"GET", "/v1/stats", "", "/v2/tenants/default/stats"},
		{"GET", "/v1/health", "", "/v2/health"},
		{"GET", "/v1/tenants", "", "/v2/tenants"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("Deprecation"); got != "true" {
			t.Fatalf("%s %s: Deprecation header %q", c.method, c.path, got)
		}
		want := fmt.Sprintf("<%s>; rel=\"successor-version\"", c.successor)
		if got := resp.Header.Get("Link"); got != want {
			t.Fatalf("%s %s: Link header %q, want %q", c.method, c.path, got, want)
		}
	}
}

// TestV2RoutesMirrorV1 drives the core lifecycle entirely through /v2
// and checks /v2 responses do NOT carry deprecation headers.
func TestV2RoutesMirrorV1(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()

	resp := postJSON(t, ts.URL+"/v2/tenants/default/rows",
		`{"updates":[{"row":[1,0,0],"t":1},{"row":[0,1,0],"t":2}]}`)
	if resp.Header.Get("Deprecation") != "" {
		t.Fatal("/v2 response carries a Deprecation header")
	}
	var ir ingestResponse
	decode(t, resp, &ir)
	if ir.Accepted != 2 || ir.LastT != 2 {
		t.Fatalf("v2 ingest %+v", ir)
	}

	for _, path := range []string{
		"/v2/tenants/default/approximation",
		"/v2/tenants/default/pca",
		"/v2/tenants/default/stats",
		"/v2/tenants/default/health",
		"/v2/tenants/default/snapshot",
		"/v2/health",
		"/v2/tenants",
	} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, r.StatusCode)
		}
	}

	// Tenant lifecycle under /v2.
	req, _ := http.NewRequest("PUT", ts.URL+"/v2/tenants/alpha",
		strings.NewReader(`{"framework":"lm-fd","window":"sequence","size":64,"d":2,"ell":6,"b":3}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 && resp.StatusCode != 201 {
		t.Fatalf("v2 tenant create status %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v2/tenants/alpha/rows", `{"updates":[{"row":[1,2],"t":1}]}`)
	decode(t, resp, &ir)
	if ir.Accepted != 1 {
		t.Fatalf("v2 tenant ingest %+v", ir)
	}
	req, _ = http.NewRequest("DELETE", ts.URL+"/v2/tenants/alpha", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("v2 tenant delete status %d", resp.StatusCode)
	}
}

// TestV2BulkEnvelope: POST /v2/rows returns the unified itemResult
// envelope, with per-item errors using the top-level error body shape.
func TestV2BulkEnvelope(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	resp := postJSON(t, ts.URL+"/v2/rows", `{"tenants":[
		{"id":"default","updates":[{"row":[1,0,0],"t":1}]},
		{"id":"ghost","updates":[{"row":[1],"t":1}]},
		{"id":"default","updates":[{"row":[1,0],"t":2}]}
	]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("v2 bulk status %d", resp.StatusCode)
	}
	var br v2BulkResponse
	decode(t, resp, &br)
	if len(br.Results) != 3 {
		t.Fatalf("v2 bulk results %+v", br)
	}
	if r := br.Results[0]; r.Index != 0 || r.ID != "default" || r.Accepted != 1 || r.Error != nil {
		t.Fatalf("result 0: %+v", r)
	}
	if r := br.Results[1]; r.Index != 1 || r.Error == nil || r.Error.Code != CodeNotFound {
		t.Fatalf("result 1: %+v", r)
	}
	if r := br.Results[2]; r.Index != 2 || r.Error == nil || r.Error.Code != CodeInvalidArgument {
		t.Fatalf("result 2: %+v", r)
	}
}

// streamPost opens a stream request with a fixed body and returns the
// decoded ack lines.
func streamPost(t *testing.T, url, contentType string, body []byte) (*http.Response, []itemResult) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var acks []itemResult
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var res itemResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("bad ack line %q: %v", sc.Text(), err)
		}
		acks = append(acks, res)
	}
	return resp, acks
}

// TestStreamNDJSON: updates stream in as NDJSON lines; blank lines
// flush blocks; each block is acked with an itemResult line.
func TestStreamNDJSON(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	var b strings.Builder
	for i := 0; i < 5; i++ {
		fmt.Fprintf(&b, `{"row":[%d,1,0],"t":%d}`+"\n", i, i)
	}
	b.WriteString("\n") // flush block 0
	for i := 5; i < 8; i++ {
		fmt.Fprintf(&b, `{"row":[%d,1,0],"t":%d}`+"\n", i, i)
	}
	resp, acks := streamPost(t, ts.URL+"/v2/tenants/default/stream",
		ContentTypeNDJSON, []byte(b.String()))
	if resp.StatusCode != 200 {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if len(acks) != 2 {
		t.Fatalf("acks %+v", acks)
	}
	if acks[0].Index != 0 || acks[0].Accepted != 5 || acks[0].LastT != 4 || acks[0].Error != nil {
		t.Fatalf("ack 0: %+v", acks[0])
	}
	if acks[1].Index != 1 || acks[1].Accepted != 3 || acks[1].LastT != 7 {
		t.Fatalf("ack 1: %+v", acks[1])
	}
	// The stream landed in the same sketch state batch ingest would
	// produce: stats shows all 8 updates.
	r, err := http.Get(ts.URL + "/v2/tenants/default/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	decode(t, r, &st)
	if st.Updates != 8 || st.LastT != 7 {
		t.Fatalf("post-stream stats %+v", st)
	}
}

// encodeFrame builds one binary stream frame (length prefix included).
func encodeFrame(rows [][]float64, times []float64) []byte {
	w := binenc.NewWriter()
	w.Int(len(rows))
	w.Int(len(rows[0]))
	for _, tv := range times {
		w.F64(tv)
	}
	for _, row := range rows {
		for _, v := range row {
			w.F64(v)
		}
	}
	payload := w.Bytes()
	out := make([]byte, 4, 4+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(len(payload)))
	return append(out, payload...)
}

// TestStreamBinaryFrames: the binenc framing applies blocks and acks
// with the same envelope as NDJSON mode.
func TestStreamBinaryFrames(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	body := encodeFrame([][]float64{{1, 0, 0}, {0, 1, 0}}, []float64{1, 2})
	body = append(body, encodeFrame([][]float64{{0, 0, 1}}, []float64{3})...)
	resp, acks := streamPost(t, ts.URL+"/v2/tenants/default/stream",
		ContentTypeFrames, body)
	if resp.StatusCode != 200 {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if len(acks) != 2 || acks[0].Accepted != 2 || acks[1].Accepted != 1 || acks[1].Index != 1 {
		t.Fatalf("acks %+v", acks)
	}
	r, err := http.Get(ts.URL + "/v2/tenants/default/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	decode(t, r, &st)
	if st.Updates != 3 || st.LastT != 3 {
		t.Fatalf("post-stream stats %+v", st)
	}
}

// TestStreamBadFrame: a frame whose length prefix exceeds the payload
// fails with an error ack and closes the stream without touching state.
func TestStreamBadFrame(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	// Claims a million-row block backed by a few bytes.
	w := binenc.NewWriter()
	w.Int(1 << 20)
	w.Int(3)
	w.F64(1)
	payload := w.Bytes()
	body := make([]byte, 4, 4+len(payload))
	binary.LittleEndian.PutUint32(body, uint32(len(payload)))
	body = append(body, payload...)
	_, acks := streamPost(t, ts.URL+"/v2/tenants/default/stream", ContentTypeFrames, body)
	if len(acks) != 1 || acks[0].Error == nil || acks[0].Error.Code != CodeInvalidArgument {
		t.Fatalf("acks %+v", acks)
	}
}

// TestStreamErrorAckMatchesBulkEnvelope is the cross-endpoint
// conformance check: the same bad update produces structurally
// identical per-item errors from /v2/rows and the stream ack.
func TestStreamErrorAckMatchesBulkEnvelope(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()

	// Wrong row dimension via bulk.
	resp := postJSON(t, ts.URL+"/v2/rows",
		`{"tenants":[{"id":"default","updates":[{"row":[1],"t":1}]}]}`)
	var br v2BulkResponse
	decode(t, resp, &br)

	// The same bad update via the stream.
	_, acks := streamPost(t, ts.URL+"/v2/tenants/default/stream",
		ContentTypeNDJSON, []byte(`{"row":[1],"t":1}`+"\n"))

	if len(br.Results) != 1 || len(acks) != 1 {
		t.Fatalf("bulk %+v stream %+v", br.Results, acks)
	}
	be, se := br.Results[0].Error, acks[0].Error
	if be == nil || se == nil {
		t.Fatalf("missing errors: bulk %+v stream %+v", br.Results[0], acks[0])
	}
	if be.Code != se.Code {
		t.Fatalf("code mismatch: bulk %q stream %q", be.Code, se.Code)
	}
	if be.Message != se.Message {
		t.Fatalf("message mismatch: bulk %q stream %q", be.Message, se.Message)
	}
	// Both marshal to the identical JSON shape.
	bj, _ := json.Marshal(be)
	sj, _ := json.Marshal(se)
	if !bytes.Equal(bj, sj) {
		t.Fatalf("envelope mismatch: %s vs %s", bj, sj)
	}
}

// TestStreamBackpressure: a tenant with an exhausted in-flight budget
// refuses a stream open with 429 + Retry-After.
func TestStreamBackpressure(t *testing.T) {
	sk := newSketch(3)
	s := NewServer(sk, 3, WithStreamQueue(2))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Exhaust the default tenant's budget out-of-band.
	def, _ := s.Registry().Get(DefaultTenant)
	if !def.TryEnqueue(2) || !def.TryEnqueue(2) {
		t.Fatal("could not saturate the gate")
	}
	defer func() { def.Dequeue(); def.Dequeue() }()

	resp, err := http.Post(ts.URL+"/v2/tenants/default/stream", ContentTypeNDJSON,
		strings.NewReader(`{"row":[1,0,0],"t":1}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated stream open status %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("no Retry-After header on shed stream")
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != CodeOverloaded {
		t.Fatalf("shed code %q", er.Error.Code)
	}
}

// TestStreamUnsupportedContentType rejects unknown stream encodings up
// front.
func TestStreamUnsupportedContentType(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	resp, err := http.Post(ts.URL+"/v2/tenants/default/stream", "text/csv",
		strings.NewReader("1,2,3\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("csv stream status %d", resp.StatusCode)
	}
}
