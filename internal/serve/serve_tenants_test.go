package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"swsketch/internal/core"
	"swsketch/internal/registry"
	"swsketch/internal/window"
)

// newTenantServer builds a server whose registry evicts to dir with a
// controllable clock, for evict/restore-over-HTTP tests.
func newTenantServer(t *testing.T, ropts ...registry.Option) (*httptest.Server, *Server) {
	t.Helper()
	treg, err := registry.New(ropts...)
	if err != nil {
		t.Fatal(err)
	}
	sk := core.NewLMFD(window.Seq(100), 3, 8, 4)
	s := NewServer(sk, 3, WithRegistry(treg))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

func doReq(t *testing.T, method, url, body string) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = bytes.NewBufferString(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

const lmTenantCfg = `{"framework":"lm-fd","window":"sequence","size":64,"d":3,"ell":8,"b":4}`

func TestTenantCRUD(t *testing.T) {
	ts, _ := newTenantServer(t)

	// Create.
	resp := doReq(t, "PUT", ts.URL+"/v1/tenants/alpha", lmTenantCfg)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	var info tenantInfoResponse
	decode(t, resp, &info)
	if info.ID != "alpha" || info.Algorithm != "LM-FD" || info.Dimension != 3 || !info.Resident {
		t.Fatalf("create response %+v", info)
	}
	if info.Config == nil || info.Config.Framework != "lm-fd" {
		t.Fatalf("create response lacks config: %+v", info)
	}

	// Duplicate → 409 conflict.
	resp = doReq(t, "PUT", ts.URL+"/v1/tenants/alpha", lmTenantCfg)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create status %d", resp.StatusCode)
	}
	var er errorResponse
	decode(t, resp, &er)
	if er.Error.Code != CodeConflict {
		t.Fatalf("duplicate create code %q", er.Error.Code)
	}

	// Bad config → 400 invalid_argument.
	resp = doReq(t, "PUT", ts.URL+"/v1/tenants/bad", `{"framework":"nope","size":10,"d":3}`)
	decode(t, resp, &er)
	if resp.StatusCode != 400 || er.Error.Code != CodeInvalidArgument {
		t.Fatalf("bad config: status %d code %q", resp.StatusCode, er.Error.Code)
	}

	// Bad ID charset → 400.
	resp = doReq(t, "PUT", ts.URL+"/v1/tenants/sp%20ace", lmTenantCfg)
	decode(t, resp, &er)
	if resp.StatusCode != 400 || er.Error.Code != CodeInvalidArgument {
		t.Fatalf("bad id: status %d code %q", resp.StatusCode, er.Error.Code)
	}

	// Reserved ID → 400.
	resp = doReq(t, "PUT", ts.URL+"/v1/tenants/default", lmTenantCfg)
	decode(t, resp, &er)
	if resp.StatusCode != 400 || !strings.Contains(er.Error.Message, "reserved") {
		t.Fatalf("reserved id: status %d message %q", resp.StatusCode, er.Error.Message)
	}

	// List: default + alpha, sorted.
	resp = doReq(t, "GET", ts.URL+"/v1/tenants", "")
	var list tenantListResponse
	decode(t, resp, &list)
	if len(list.Tenants) != 2 || list.Tenants[0].ID != "alpha" || list.Tenants[1].ID != "default" {
		t.Fatalf("list %+v", list)
	}
	if !list.Tenants[1].Pinned {
		t.Fatal("default tenant not pinned in list")
	}

	// Info.
	resp = doReq(t, "GET", ts.URL+"/v1/tenants/alpha", "")
	decode(t, resp, &info)
	if info.ID != "alpha" || info.Updates != 0 {
		t.Fatalf("info %+v", info)
	}

	// Unknown tenant → 404.
	resp = doReq(t, "GET", ts.URL+"/v1/tenants/ghost", "")
	decode(t, resp, &er)
	if resp.StatusCode != 404 || er.Error.Code != CodeNotFound {
		t.Fatalf("unknown info: status %d code %q", resp.StatusCode, er.Error.Code)
	}

	// Delete.
	resp = doReq(t, "DELETE", ts.URL+"/v1/tenants/alpha", "")
	if resp.StatusCode != 200 {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = doReq(t, "DELETE", ts.URL+"/v1/tenants/alpha", "")
	decode(t, resp, &er)
	if resp.StatusCode != 404 {
		t.Fatalf("re-delete status %d", resp.StatusCode)
	}

	// The default tenant cannot be deleted.
	resp = doReq(t, "DELETE", ts.URL+"/v1/tenants/default", "")
	decode(t, resp, &er)
	if resp.StatusCode != 400 || er.Error.Code != CodeInvalidArgument {
		t.Fatalf("delete default: status %d code %q", resp.StatusCode, er.Error.Code)
	}
}

func TestTenantIngestAndQuery(t *testing.T) {
	ts, _ := newTenantServer(t)
	doReq(t, "PUT", ts.URL+"/v1/tenants/a", lmTenantCfg).Body.Close()
	doReq(t, "PUT", ts.URL+"/v1/tenants/b", lmTenantCfg).Body.Close()

	// Ingest different streams into a and b.
	for i := 0; i < 30; i++ {
		body := fmt.Sprintf(`{"updates":[{"row":[%d,1,0],"t":%d}]}`, i%3, i)
		resp := postJSON(t, ts.URL+"/v1/tenants/a/ingest", body)
		if resp.StatusCode != 200 {
			t.Fatalf("ingest a status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp := postJSON(t, ts.URL+"/v1/tenants/b/ingest", `{"updates":[{"row":[5,5,5],"t":0}]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("ingest b status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Tenant clocks are independent: a's clock is at 29, b's at 0.
	var ar approximationResponse
	resp = doReq(t, "GET", ts.URL+"/v1/tenants/a/approximation", "")
	decode(t, resp, &ar)
	if ar.T != 29 || len(ar.Rows) == 0 {
		t.Fatalf("a approximation t=%v rows=%d", ar.T, len(ar.Rows))
	}
	resp = doReq(t, "GET", ts.URL+"/v1/tenants/b/approximation", "")
	decode(t, resp, &ar)
	if ar.T != 0 {
		t.Fatalf("b approximation t=%v", ar.T)
	}

	// Per-tenant stats carry the tenant fields.
	var st tenantStatsResponse
	resp = doReq(t, "GET", ts.URL+"/v1/tenants/a/stats", "")
	decode(t, resp, &st)
	if st.Tenant != "a" || st.Updates != 30 || st.Algorithm != "LM-FD" || !st.Resident {
		t.Fatalf("a stats %+v", st)
	}

	// PCA works per tenant.
	resp = doReq(t, "GET", ts.URL+"/v1/tenants/a/pca?k=2", "")
	var pr pcaResponse
	decode(t, resp, &pr)
	if len(pr.Components) == 0 {
		t.Fatalf("a pca %+v", pr)
	}

	// Tenant health does not require residency.
	var th tenantHealthResponse
	resp = doReq(t, "GET", ts.URL+"/v1/tenants/a/health", "")
	decode(t, resp, &th)
	if th.Status != "ok" || th.Tenant != "a" || th.Updates != 30 {
		t.Fatalf("a health %+v", th)
	}

	// Ingest into an unknown tenant → 404.
	resp = postJSON(t, ts.URL+"/v1/tenants/ghost/ingest", `{"updates":[{"row":[1,2,3],"t":0}]}`)
	var er errorResponse
	decode(t, resp, &er)
	if resp.StatusCode != 404 || er.Error.Code != CodeNotFound {
		t.Fatalf("ghost ingest: status %d code %q", resp.StatusCode, er.Error.Code)
	}

	// Regressing timestamps rejected with the tenant's own clock.
	resp = postJSON(t, ts.URL+"/v1/tenants/a/ingest", `{"updates":[{"row":[1,2,3],"t":5}]}`)
	decode(t, resp, &er)
	if resp.StatusCode != 400 || !strings.Contains(er.Error.Message, "precedes") {
		t.Fatalf("regressing ingest: status %d message %q", resp.StatusCode, er.Error.Message)
	}
}

// TestDefaultTenantAlias verifies the legacy routes and the
// /v1/tenants/default routes address the same sketch.
func TestDefaultTenantAlias(t *testing.T) {
	ts, _ := newTenantServer(t)
	postJSON(t, ts.URL+"/v1/ingest", `{"updates":[{"row":[1,2,3],"t":4}]}`).Body.Close()

	var legacy, alias approximationResponse
	resp := doReq(t, "GET", ts.URL+"/v1/approximation", "")
	decode(t, resp, &legacy)
	resp = doReq(t, "GET", ts.URL+"/v1/tenants/default/approximation", "")
	decode(t, resp, &alias)
	if legacy.T != alias.T || len(legacy.Rows) != len(alias.Rows) {
		t.Fatalf("alias mismatch: legacy %+v alias %+v", legacy, alias)
	}

	// Ingest through the alias advances the legacy clock too.
	postJSON(t, ts.URL+"/v1/tenants/default/ingest", `{"updates":[{"row":[0,1,0],"t":9}]}`).Body.Close()
	var st statsResponse
	resp = doReq(t, "GET", ts.URL+"/v1/stats", "")
	decode(t, resp, &st)
	if st.Updates != 2 || st.LastT != 9 {
		t.Fatalf("stats after alias ingest %+v", st)
	}
}

func TestBulkIngest(t *testing.T) {
	ts, _ := newTenantServer(t)
	doReq(t, "PUT", ts.URL+"/v1/tenants/a", lmTenantCfg).Body.Close()
	doReq(t, "PUT", ts.URL+"/v1/tenants/b", lmTenantCfg).Body.Close()

	body := `{"tenants":[
		{"id":"a","updates":[{"row":[1,0,0],"t":1},{"row":[0,1,0],"t":2}]},
		{"id":"b","updates":[{"row":[2,2,2],"t":7}]},
		{"id":"ghost","updates":[{"row":[1,1,1],"t":1}]},
		{"id":"a","updates":[{"row":[9,9,9],"t":0}]}
	]}`
	resp := postJSON(t, ts.URL+"/v1/ingest/bulk", body)
	if resp.StatusCode != 200 {
		t.Fatalf("bulk status %d", resp.StatusCode)
	}
	var br bulkIngestResponse
	decode(t, resp, &br)
	if len(br.Results) != 4 {
		t.Fatalf("bulk results %+v", br)
	}
	if br.Results[0].Accepted != 2 || br.Results[0].LastT != 2 || br.Results[0].Error != nil {
		t.Fatalf("bulk a %+v", br.Results[0])
	}
	if br.Results[1].Accepted != 1 || br.Results[1].LastT != 7 {
		t.Fatalf("bulk b %+v", br.Results[1])
	}
	if br.Results[2].Error == nil || br.Results[2].Error.Code != CodeNotFound {
		t.Fatalf("bulk ghost %+v", br.Results[2])
	}
	// The regressing batch fails without undoing the first one.
	if br.Results[3].Error == nil || br.Results[3].Error.Code != CodeInvalidArgument {
		t.Fatalf("bulk regress %+v", br.Results[3])
	}

	// Empty bulk → 400.
	resp = postJSON(t, ts.URL+"/v1/ingest/bulk", `{"tenants":[]}`)
	var er errorResponse
	decode(t, resp, &er)
	if resp.StatusCode != 400 || er.Error.Code != CodeInvalidArgument {
		t.Fatalf("empty bulk: status %d code %q", resp.StatusCode, er.Error.Code)
	}
}

// TestTenantEvictRestoreOverHTTP drives the eviction cycle through the
// public API: a tenant evicted to disk must answer its next query
// bit-identically to its pre-eviction answer, and its health endpoint
// must report the residency transition without forcing a restore.
func TestTenantEvictRestoreOverHTTP(t *testing.T) {
	now := time.Unix(1000, 0)
	var s *Server
	ts, s := newTenantServer(t,
		registry.WithSpillDir(t.TempDir()),
		registry.WithEvictTTL(time.Minute),
		registry.WithClock(func() time.Time { return now }),
	)
	doReq(t, "PUT", ts.URL+"/v1/tenants/cold", lmTenantCfg).Body.Close()
	var b strings.Builder
	b.WriteString(`{"updates":[`)
	for i := 0; i < 40; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"row":[%d,1,0],"t":%d}`, i%3, i)
	}
	b.WriteString("]}")
	postJSON(t, ts.URL+"/v1/tenants/cold/ingest", b.String()).Body.Close()

	before, err := io.ReadAll(doReq(t, "GET", ts.URL+"/v1/tenants/cold/approximation?t=39", "").Body)
	if err != nil {
		t.Fatal(err)
	}

	// Idle past the TTL, then sweep.
	now = now.Add(time.Hour)
	if n := s.Registry().Sweep(); n != 1 {
		t.Fatalf("Sweep evicted %d, want 1", n)
	}
	var th tenantHealthResponse
	resp := doReq(t, "GET", ts.URL+"/v1/tenants/cold/health", "")
	decode(t, resp, &th)
	if th.Resident {
		t.Fatal("health reports resident after eviction")
	}

	// The next query transparently restores and answers identically.
	after, err := io.ReadAll(doReq(t, "GET", ts.URL+"/v1/tenants/cold/approximation?t=39", "").Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("restored tenant's approximation differs from pre-eviction answer")
	}
	resp = doReq(t, "GET", ts.URL+"/v1/tenants/cold/health", "")
	decode(t, resp, &th)
	if !th.Resident || th.Updates != 40 {
		t.Fatalf("health after restore %+v", th)
	}

	// The pinned default tenant never went anywhere.
	var list tenantListResponse
	resp = doReq(t, "GET", ts.URL+"/v1/tenants", "")
	decode(t, resp, &list)
	for _, info := range list.Tenants {
		if info.ID == DefaultTenant && !info.Resident {
			t.Fatal("default tenant evicted")
		}
	}
}

// TestTenantSnapshotRoutes exercises per-tenant snapshot download and
// restore: state moves from one tenant to a fresh one via the API.
func TestTenantSnapshotRoutes(t *testing.T) {
	ts, _ := newTenantServer(t)
	doReq(t, "PUT", ts.URL+"/v1/tenants/src", lmTenantCfg).Body.Close()
	doReq(t, "PUT", ts.URL+"/v1/tenants/dst", lmTenantCfg).Body.Close()
	postJSON(t, ts.URL+"/v1/tenants/src/ingest",
		`{"updates":[{"row":[1,2,3],"t":1},{"row":[4,5,6],"t":2}]}`).Body.Close()

	snap, err := io.ReadAll(doReq(t, "GET", ts.URL+"/v1/tenants/src/snapshot", "").Body)
	if err != nil || len(snap) == 0 {
		t.Fatalf("snapshot download: %v (%d bytes)", err, len(snap))
	}
	resp, err := http.Post(ts.URL+"/v1/tenants/dst/snapshot", "application/octet-stream",
		bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("snapshot restore status %d", resp.StatusCode)
	}
	resp.Body.Close()

	srcB, _ := io.ReadAll(doReq(t, "GET", ts.URL+"/v1/tenants/src/approximation?t=2", "").Body)
	dstB, _ := io.ReadAll(doReq(t, "GET", ts.URL+"/v1/tenants/dst/approximation?t=2", "").Body)
	if !bytes.Equal(srcB, dstB) {
		t.Fatal("restored tenant answers differently from the source")
	}
}

func TestTenantRouteMethodNotAllowed(t *testing.T) {
	ts, _ := newTenantServer(t)
	resp := doReq(t, "PATCH", ts.URL+"/v1/tenants/x", "")
	var er errorResponse
	decode(t, resp, &er)
	if resp.StatusCode != http.StatusMethodNotAllowed || er.Error.Code != CodeMethodNotAllowed {
		t.Fatalf("PATCH tenant: status %d code %q", resp.StatusCode, er.Error.Code)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "PUT") || !strings.Contains(allow, "DELETE") {
		t.Fatalf("Allow = %q", allow)
	}
}
