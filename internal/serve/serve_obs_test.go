package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"swsketch/internal/core"
	"swsketch/internal/obs"
	"swsketch/internal/window"
)

// decodeError reads the uniform error envelope off a response.
func decodeError(t *testing.T, resp *http.Response) errorBody {
	t.Helper()
	var er errorResponse
	decode(t, resp, &er)
	if er.Error.Code == "" {
		t.Fatalf("response carried no error envelope")
	}
	return er.Error
}

func TestErrorEnvelopeOnWrongMethod(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	resp, err := http.Get(ts.URL + "/v1/ingest")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "POST" {
		t.Fatalf("Allow = %q, want POST", allow)
	}
	if e := decodeError(t, resp); e.Code != CodeMethodNotAllowed {
		t.Fatalf("code = %q", e.Code)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/snapshot", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE snapshot status %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET, POST" {
		t.Fatalf("snapshot Allow = %q", allow)
	}
	resp.Body.Close()
}

func TestErrorEnvelopeCodes(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	cases := []struct {
		name, body, code string
	}{
		{"bad json", `{`, CodeInvalidJSON},
		{"empty batch", `{"updates":[]}`, CodeInvalidArgument},
		{"wrong dim", `{"updates":[{"row":[1],"t":0}]}`, CodeInvalidArgument},
		{"out of order", `{"updates":[{"row":[1,2,3],"t":5},{"row":[1,2,3],"t":4}]}`, CodeInvalidArgument},
		{"both forms", `{"updates":[{"row":[1,2,3],"idx":[0],"val":[1],"t":0}]}`, CodeInvalidArgument},
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+"/v1/ingest", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d", c.name, resp.StatusCode)
		}
		if e := decodeError(t, resp); e.Code != c.code {
			t.Fatalf("%s: code %q, want %q", c.name, e.Code, c.code)
		}
	}
}

func TestNotFoundEnvelope(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	resp, err := http.Get(ts.URL + "/v1/nonsense")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != CodeNotFound {
		t.Fatalf("code = %q", e.Code)
	}
}

func TestConflictEnvelopeAfterRestore(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	postJSON(t, ts.URL+"/v1/ingest", `{"updates":[{"row":[1,2,3],"t":100}]}`).Body.Close()
	snap, err := http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(snap.Body)
	snap.Body.Close()

	ts2, done2 := newTestServer(t)
	defer done2()
	r, err := http.Post(ts2.URL+"/v1/snapshot", "application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()

	resp := postJSON(t, ts2.URL+"/v1/ingest", `{"updates":[{"row":[1,2,3],"t":5}]}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != CodeConflict {
		t.Fatalf("code = %q", e.Code)
	}
}

// TestSnapshotRestoreResetsClock is the regression test for the stale
// lastT bug: a server that had ingested up to t=500 and then restores
// a snapshot taken at t=100 must not keep answering default-t queries
// at the dead pre-restore clock.
func TestSnapshotRestoreResetsClock(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	postJSON(t, ts.URL+"/v1/ingest",
		`{"updates":[{"row":[1,2,3],"t":50},{"row":[4,5,6],"t":100}]}`).Body.Close()
	snap, err := http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(snap.Body)
	snap.Body.Close()

	// Advance the server's clock well past the snapshot...
	postJSON(t, ts.URL+"/v1/ingest", `{"updates":[{"row":[7,8,9],"t":500}]}`).Body.Close()
	// ...then restore the old snapshot on the same server.
	r, err := http.Post(ts.URL+"/v1/snapshot", "application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != 200 {
		t.Fatalf("restore status %d", r.StatusCode)
	}

	var sr statsResponse
	stats, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, stats, &sr)
	if sr.LastT != 0 || sr.Updates != 0 {
		t.Fatalf("post-restore clock not reset: last_t=%v updates=%d", sr.LastT, sr.Updates)
	}

	// A default-t query must not be answered at the stale t=500 clock;
	// with the reset it queries t=0 (sketch-internal clock governs), and
	// before the fix it answered t=500 against a sketch restored at 100.
	ra, err := http.Get(ts.URL + "/v1/approximation")
	if err != nil {
		t.Fatal(err)
	}
	var ar approximationResponse
	decode(t, ra, &ar)
	if ar.T != 0 {
		t.Fatalf("default query time after restore = %v, want 0", ar.T)
	}
}

func TestStatsInternals(t *testing.T) {
	ts, done := newTestServer(t)
	defer done()
	var b strings.Builder
	b.WriteString(`{"updates":[`)
	for i := 0; i < 60; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"row":[%d,1,0],"t":%d}`, i%3, i)
	}
	b.WriteString("]}")
	postJSON(t, ts.URL+"/v1/ingest", b.String()).Body.Close()

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sr statsResponse
	decode(t, resp, &sr)
	if sr.Internals == nil {
		t.Fatal("stats carried no internals")
	}
	for _, k := range []string{"levels", "blocks", "active_rows", "merges"} {
		if _, ok := sr.Internals[k]; !ok {
			t.Fatalf("internals missing %q: %v", k, sr.Internals)
		}
	}
	if sr.RowsStored == 0 {
		t.Fatalf("stats %+v", sr)
	}
}

func TestWithMaxBody(t *testing.T) {
	sk := core.NewLMFD(window.Seq(100), 3, 8, 4)
	ts := httptest.NewServer(NewServer(sk, 3, WithMaxBody(64)).Handler())
	defer ts.Close()

	small := `{"updates":[{"row":[1,2,3],"t":0}]}`
	resp := postJSON(t, ts.URL+"/v1/ingest", small)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("small body status %d", resp.StatusCode)
	}

	var b strings.Builder
	b.WriteString(`{"updates":[`)
	for i := 0; i < 20; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"row":[1,2,3],"t":%d}`, i+1)
	}
	b.WriteString("]}")
	resp = postJSON(t, ts.URL+"/v1/ingest", b.String())
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("big body status %d, want 413", resp.StatusCode)
	}
	if e := decodeError(t, resp); e.Code != CodeBodyTooLarge {
		t.Fatalf("code = %q", e.Code)
	}

	// The cap also bounds snapshot restores.
	r2, err := http.Post(ts.URL+"/v1/snapshot", "application/octet-stream",
		bytes.NewReader(make([]byte, 128)))
	if err != nil {
		t.Fatal(err)
	}
	if r2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("big snapshot status %d, want 413", r2.StatusCode)
	}
	r2.Body.Close()
}

func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	sk := core.NewSWR(window.Seq(50), 4, 3, 1)
	ts := httptest.NewServer(NewServer(sk, 3, WithMetrics(reg)).Handler())
	defer ts.Close()

	var b strings.Builder
	b.WriteString(`{"updates":[`)
	for i := 0; i < 30; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"row":[%d,1,0],"t":%d}`, i%3, i)
	}
	b.WriteString("]}")
	postJSON(t, ts.URL+"/v1/ingest", b.String()).Body.Close()
	http.Get(ts.URL + "/v1/approximation?t=29")

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	for _, want := range []string{
		`swsketch_ingest_rows_total{algo="SWR"} 30`,
		`swsketch_ingest_batches_total{algo="SWR"} 1`,
		`swsketch_update_seconds_count{algo="SWR"} 1`,
		`swsketch_query_seconds_count{algo="SWR"} 1`,
		`swsketch_rows_stored{algo="SWR"}`,
		`swsketch_internal{algo="SWR",stat="candidates"}`,
		`swsketch_internal{algo="SWR",stat="queues"} 4`,
		`swsketch_http_requests_total{code="200",route="/v1/ingest"} 1`,
		`swsketch_http_request_seconds_count{route="/v1/ingest"} 1`,
		"# TYPE swsketch_update_seconds histogram",
		`swsketch_update_seconds_bucket{algo="SWR",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}

	// Wrong method on /metrics gets the envelope too.
	r2 := postJSON(t, ts.URL+"/metrics", "{}")
	if r2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics status %d", r2.StatusCode)
	}
	if e := decodeError(t, r2); e.Code != CodeMethodNotAllowed {
		t.Fatalf("code = %q", e.Code)
	}
}

// TestMetricsInstrumentationIsTransparent checks the instrumented
// server answers queries exactly like a bare one over the same stream.
func TestMetricsInstrumentationIsTransparent(t *testing.T) {
	mk := func(opts ...Option) *httptest.Server {
		return httptest.NewServer(NewServer(core.NewSWOR(window.Seq(40), 4, 3, 9), 3, opts...).Handler())
	}
	bare := mk()
	defer bare.Close()
	inst := mk(WithMetrics(obs.NewRegistry()))
	defer inst.Close()

	var b strings.Builder
	b.WriteString(`{"updates":[`)
	for i := 0; i < 80; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"row":[%d,%d,1],"t":%d}`, i%5, i%2, i)
	}
	b.WriteString("]}")
	for _, ts := range []*httptest.Server{bare, inst} {
		postJSON(t, ts.URL+"/v1/ingest", b.String()).Body.Close()
	}

	get := func(ts *httptest.Server) approximationResponse {
		resp, err := http.Get(ts.URL + "/v1/approximation?t=79")
		if err != nil {
			t.Fatal(err)
		}
		var ar approximationResponse
		decode(t, resp, &ar)
		return ar
	}
	a, bb := get(bare), get(inst)
	if len(a.Rows) != len(bb.Rows) {
		t.Fatalf("rows %d vs %d", len(a.Rows), len(bb.Rows))
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != bb.Rows[i][j] {
				t.Fatalf("row %d differs: %v vs %v", i, a.Rows[i], bb.Rows[i])
			}
		}
	}
}

func TestInstrumentedSnapshotStillWorks(t *testing.T) {
	// The obs wrapper must not hide the snapshot capability of the
	// underlying sketch.
	reg := obs.NewRegistry()
	sk := core.NewLMFD(window.Seq(100), 3, 8, 4)
	ts := httptest.NewServer(NewServer(sk, 3, WithMetrics(reg)).Handler())
	defer ts.Close()
	postJSON(t, ts.URL+"/v1/ingest", `{"updates":[{"row":[1,2,3],"t":0}]}`).Body.Close()
	resp, err := http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("instrumented snapshot status %d", resp.StatusCode)
	}
}

func TestWithPprofMountsProfiles(t *testing.T) {
	sk := core.NewLMFD(window.Seq(100), 3, 8, 4)
	srv := NewServer(sk, 3, WithPprof())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof cmdline status %d", resp.StatusCode)
	}

	// Without the option the route 404s with the envelope.
	ts2 := httptest.NewServer(NewServer(core.NewLMFD(window.Seq(100), 3, 8, 4), 3).Handler())
	defer ts2.Close()
	r2, err := http.Get(ts2.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("unmounted pprof status %d", r2.StatusCode)
	}
	r2.Body.Close()
}
