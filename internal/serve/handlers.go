package serve

// Ingest and query handlers. Every handler is tenant-generic: the
// legacy /v1/... routes bind to the adopted "default" tenant and the
// /v1/tenants/{id}/... routes resolve {id} through the registry, but
// both run the same code path below.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"swsketch/internal/core"
	"swsketch/internal/mat"
	"swsketch/internal/pca"
	"swsketch/internal/registry"
)

// apiError is a deferred error envelope: handlers that serve multiple
// tenants per request (bulk ingest) need error values they can embed
// per item instead of writing the response immediately.
type apiError struct {
	status int
	code   string
	msg    string
}

func errf(status int, code, format string, args ...interface{}) *apiError {
	return &apiError{status: status, code: code, msg: fmt.Sprintf(format, args...)}
}

func (e *apiError) write(w http.ResponseWriter) {
	httpError(w, e.status, e.code, "%s", e.msg)
}

type ingestRequest struct {
	Updates []ingestUpdate `json:"updates"`
}

type ingestUpdate struct {
	Row []float64 `json:"row,omitempty"`
	// Sparse form: parallel indices/values; mutually exclusive with Row.
	Idx []int     `json:"idx,omitempty"`
	Val []float64 `json:"val,omitempty"`
	T   float64   `json:"t"`
}

type ingestResponse struct {
	Accepted int     `json:"accepted"`
	LastT    float64 `json:"last_t"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.ingestInto(w, r, s.def)
}

func (s *Server) handleTenantIngest(w http.ResponseWriter, r *http.Request) {
	if t, ok := s.tenantOf(w, r); ok {
		s.ingestInto(w, r, t)
	}
}

// ingestInto decodes an ingest body and applies it to one tenant.
func (s *Server) ingestInto(w http.ResponseWriter, r *http.Request, t *registry.Tenant) {
	body := r.Body
	if s.maxBody > 0 {
		body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	var req ingestRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
				"body exceeds %d bytes", tooLarge.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, CodeInvalidJSON, "bad JSON: %v", err)
		return
	}
	resp, apiErr := s.ingestTenant(t, req.Updates)
	if apiErr != nil {
		apiErr.write(w)
		return
	}
	writeJSON(w, resp)
}

// ingestTenant validates and applies a batch of updates to a tenant,
// acquiring it for the duration. The batch is all-or-nothing: it is
// validated against the tenant's clock and dimension before any row
// touches the sketch.
func (s *Server) ingestTenant(t *registry.Tenant, updates []ingestUpdate) (ingestResponse, *apiError) {
	if len(updates) == 0 {
		return ingestResponse{}, errf(http.StatusBadRequest, CodeInvalidArgument, "no updates")
	}
	if err := t.Acquire(); err != nil {
		s.hot.ObserveEvent(t.ID())
		return ingestResponse{}, acquireError(t, err)
	}
	defer t.Release()
	resp, apiErr := s.ingestLocked(t, updates)
	if apiErr != nil {
		// Rejected batches (clock regressions, bad rows, sketch
		// conflicts) land on the sidecar's events plane.
		s.hot.ObserveEvent(t.ID())
	}
	return resp, apiErr
}

// ingestLocked is the ingest core; the caller holds the tenant.
func (s *Server) ingestLocked(t *registry.Tenant, updates []ingestUpdate) (ingestResponse, *apiError) {
	d := t.D()
	sk := t.Sketch()
	prev, seen := t.Clock()
	auditing := t == s.def && s.audit != nil
	allDense := true
	for _, u := range updates {
		if len(u.Idx) > 0 || len(u.Val) > 0 {
			allDense = false
			break
		}
	}
	if allDense {
		// Fast path: an all-dense batch goes through the sketch's bulk
		// ingest in one call, amortising per-row bookkeeping.
		rows := make([][]float64, 0, len(updates))
		times := make([]float64, 0, len(updates))
		for i, u := range updates {
			if seen && u.T < prev {
				return ingestResponse{}, errf(http.StatusBadRequest, CodeInvalidArgument,
					"update %d: timestamp %v precedes %v", i, u.T, prev)
			}
			if len(u.Row) != d {
				return ingestResponse{}, errf(http.StatusBadRequest, CodeInvalidArgument,
					"update %d: row length %d, want %d", i, len(u.Row), d)
			}
			if err := checkFiniteVals(u.Row); err != nil {
				return ingestResponse{}, errf(http.StatusBadRequest, CodeInvalidArgument,
					"update %d: %v", i, err)
			}
			rows = append(rows, u.Row)
			times = append(times, u.T)
			prev, seen = u.T, true
		}
		if apiErr := s.walAppendRows(t, rows, times); apiErr != nil {
			return ingestResponse{}, apiErr
		}
		if err := applyBatch(sk, rows, times); err != nil {
			return ingestResponse{}, errf(http.StatusConflict, CodeConflict,
				"ingest rejected by sketch: %v", err)
		}
		t.Commit(len(updates), prev)
		s.hot.ObserveIngest(t.ID(), len(updates), 8*d*len(updates))
		if auditing {
			s.observeAudit(rows, times)
		}
		return ingestResponse{Accepted: len(updates), LastT: prev}, nil
	}
	rows := make([]func(), 0, len(updates))
	// The WAL logs dense row blocks (replay has no sparse path), so a
	// sparse batch densifies when either the auditor or the WAL needs
	// the dense form.
	wantDense := auditing || s.wal != nil
	var denseRows [][]float64
	var denseTimes []float64
	if wantDense {
		denseRows = make([][]float64, 0, len(updates))
		denseTimes = make([]float64, 0, len(updates))
	}
	for i, u := range updates {
		if seen && u.T < prev {
			return ingestResponse{}, errf(http.StatusBadRequest, CodeInvalidArgument,
				"update %d: timestamp %v precedes %v", i, u.T, prev)
		}
		apply, dense, err := prepareUpdate(t, u, wantDense)
		if err != nil {
			return ingestResponse{}, errf(http.StatusBadRequest, CodeInvalidArgument,
				"update %d: %v", i, err)
		}
		rows = append(rows, apply)
		if wantDense {
			denseRows = append(denseRows, dense)
			denseTimes = append(denseTimes, u.T)
		}
		prev, seen = u.T, true
	}
	if apiErr := s.walAppendRows(t, denseRows, denseTimes); apiErr != nil {
		return ingestResponse{}, apiErr
	}
	// The sketch enforces invariants the server cannot fully check —
	// e.g. after a snapshot restore the sketch's internal clock may be
	// ahead of the server's. Surface those as 409 instead of crashing
	// the connection.
	if err := applyAll(rows); err != nil {
		return ingestResponse{}, errf(http.StatusConflict, CodeConflict,
			"ingest rejected by sketch: %v", err)
	}
	t.Commit(len(updates), prev)
	// Committed rows feed the sidecar's rows plane; the bytes plane
	// gets the dense-equivalent payload size (8 bytes × d per row).
	s.hot.ObserveIngest(t.ID(), len(updates), 8*d*len(updates))
	if auditing {
		s.observeAudit(denseRows, denseTimes)
	}
	return ingestResponse{Accepted: len(updates), LastT: prev}, nil
}

// observeAudit feeds freshly ingested default-tenant rows to the
// auditor. The caller holds the default tenant, so the query closure
// (which the auditor may invoke for a stride-triggered evaluation)
// reads the sketch consistently. The closure queries the undecorated
// sketch so audit evaluations don't pollute the serving query-latency
// metrics.
func (s *Server) observeAudit(rows [][]float64, times []float64) {
	if s.audit == nil {
		return
	}
	s.audit.ObserveBatch(rows, times, func(t float64) *mat.Dense {
		return s.def.Raw().Query(t)
	})
}

// prepareUpdate validates one ingest update and returns a closure that
// applies it plus the dense form of the row (for the audit shadow —
// sparse rows are only densified when wantDense is set); validation
// and application are split so a bad batch is rejected atomically.
// The caller holds the tenant.
func prepareUpdate(t *registry.Tenant, u ingestUpdate, wantDense bool) (func(), []float64, error) {
	d := t.D()
	sk := t.Sketch()
	if len(u.Idx) > 0 || len(u.Val) > 0 {
		if len(u.Row) > 0 {
			return nil, nil, fmt.Errorf("row and idx/val are mutually exclusive")
		}
		if len(u.Idx) != len(u.Val) {
			return nil, nil, fmt.Errorf("%d indices but %d values", len(u.Idx), len(u.Val))
		}
		prev := -1
		for _, ix := range u.Idx {
			if ix <= prev || ix >= d {
				return nil, nil, fmt.Errorf("sparse index %d invalid for dimension %d", ix, d)
			}
			prev = ix
		}
		if err := checkFiniteVals(u.Val); err != nil {
			return nil, nil, err
		}
		sr := mat.SparseRow{Idx: u.Idx, Val: u.Val}
		// Capability lives on the undecorated sketch; the decorated one
		// (which forwards sparse updates) takes the call so the update
		// is recorded.
		if _, ok := t.Raw().(core.SparseUpdater); ok {
			su := sk.(core.SparseUpdater)
			var row []float64
			if wantDense {
				row = sr.Dense(d)
			}
			return func() { su.UpdateSparse(sr, u.T) }, row, nil
		}
		dense := sr.Dense(d)
		return func() { sk.Update(dense, u.T) }, dense, nil
	}
	if len(u.Row) != d {
		return nil, nil, fmt.Errorf("row length %d, want %d", len(u.Row), d)
	}
	if err := checkFiniteVals(u.Row); err != nil {
		return nil, nil, err
	}
	return func() { sk.Update(u.Row, u.T) }, u.Row, nil
}

// acquireError maps a Tenant.Acquire failure onto the envelope:
// concurrent deletion is a 404, an unreadable spill file a 500.
func acquireError(t *registry.Tenant, err error) *apiError {
	if errors.Is(err, registry.ErrDeleted) {
		return errf(http.StatusNotFound, CodeNotFound, "tenant %q deleted", t.ID())
	}
	return errf(http.StatusInternalServerError, CodeInternal, "%v", err)
}

// queryTime parses ?t= against an acquired tenant's clock; when
// omitted, the last ingested timestamp is used (query "now").
func queryTime(w http.ResponseWriter, r *http.Request, t *registry.Tenant) (float64, bool) {
	last, seen := t.Clock()
	tq := r.URL.Query().Get("t")
	if tq == "" {
		return last, true
	}
	qt, err := strconv.ParseFloat(tq, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, CodeInvalidArgument, "bad t %q", tq)
		return 0, false
	}
	if seen && qt < last {
		httpError(w, http.StatusBadRequest, CodeInvalidArgument,
			"t %v precedes last ingested %v", qt, last)
		return 0, false
	}
	return qt, true
}

type approximationResponse struct {
	Rows [][]float64 `json:"rows"`
	T    float64     `json:"t"`
}

func (s *Server) handleApproximation(w http.ResponseWriter, r *http.Request) {
	s.approximation(w, r, s.def)
}

func (s *Server) handleTenantApproximation(w http.ResponseWriter, r *http.Request) {
	if t, ok := s.tenantOf(w, r); ok {
		s.approximation(w, r, t)
	}
}

func (s *Server) approximation(w http.ResponseWriter, r *http.Request, t *registry.Tenant) {
	if !s.acquire(w, t) {
		return
	}
	qt, ok := queryTime(w, r, t)
	if !ok {
		t.Release()
		return
	}
	b := t.Sketch().Query(qt)
	t.Release()
	rows := make([][]float64, b.Rows())
	for i := range rows {
		rows[i] = b.RowCopy(i)
	}
	writeJSON(w, approximationResponse{Rows: rows, T: qt})
}

type pcaResponse struct {
	Components [][]float64 `json:"components"`
	Explained  []float64   `json:"explained"`
	T          float64     `json:"t"`
}

func (s *Server) handlePCA(w http.ResponseWriter, r *http.Request) {
	s.pca(w, r, s.def)
}

func (s *Server) handleTenantPCA(w http.ResponseWriter, r *http.Request) {
	if t, ok := s.tenantOf(w, r); ok {
		s.pca(w, r, t)
	}
}

func (s *Server) pca(w http.ResponseWriter, r *http.Request, t *registry.Tenant) {
	k := 3
	if kq := r.URL.Query().Get("k"); kq != "" {
		var err error
		k, err = strconv.Atoi(kq)
		if err != nil || k < 1 {
			httpError(w, http.StatusBadRequest, CodeInvalidArgument, "bad k %q", kq)
			return
		}
	}
	if !s.acquire(w, t) {
		return
	}
	qt, ok := queryTime(w, r, t)
	if !ok {
		t.Release()
		return
	}
	b := t.Sketch().Query(qt)
	t.Release()
	if b.Rows() == 0 {
		writeJSON(w, pcaResponse{Components: [][]float64{}, Explained: []float64{}, T: qt})
		return
	}
	res := pca.Compute(b, k)
	comps := make([][]float64, res.Components.Rows())
	for i := range comps {
		comps[i] = res.Components.RowCopy(i)
	}
	writeJSON(w, pcaResponse{Components: comps, Explained: res.Explained, T: qt})
}

type statsResponse struct {
	Algorithm  string             `json:"algorithm"`
	Dimension  int                `json:"dimension"`
	RowsStored int                `json:"rows_stored"`
	Updates    uint64             `json:"updates"`
	LastT      float64            `json:"last_t"`
	Internals  map[string]float64 `json:"internals,omitempty"`
}

// tenantStatsResponse extends the stats payload with tenant identity
// and residency for the /v1/tenants/{id}/stats route.
type tenantStatsResponse struct {
	Tenant string `json:"tenant"`
	statsResponse
	Resident bool `json:"resident"`
	Pinned   bool `json:"pinned,omitempty"`
}

func (s *Server) statsOf(w http.ResponseWriter, t *registry.Tenant) (statsResponse, bool) {
	if !s.acquire(w, t) {
		return statsResponse{}, false
	}
	defer t.Release()
	lastT, _ := t.Clock()
	resp := statsResponse{
		Algorithm:  t.Sketch().Name(),
		Dimension:  t.D(),
		RowsStored: t.Sketch().RowsStored(),
		Updates:    t.Updates(),
		LastT:      lastT,
	}
	if in, ok := t.Raw().(core.Introspector); ok {
		resp.Internals = in.Stats()
	}
	return resp, true
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	if resp, ok := s.statsOf(w, s.def); ok {
		writeJSON(w, resp)
	}
}

func (s *Server) handleTenantStats(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenantOf(w, r)
	if !ok {
		return
	}
	resp, ok := s.statsOf(w, t)
	if !ok {
		return
	}
	writeJSON(w, tenantStatsResponse{
		Tenant:        t.ID(),
		statsResponse: resp,
		Resident:      t.Resident(),
		Pinned:        t.Pinned(),
	})
}
