// Package adversary provides deterministic adversarial stream
// generators shared by the property-test suites. Each generator
// returns an n×d matrix chosen to stress a different part of a
// sketch's shrink/expiry discipline: spectral mass concentrated in a
// few directions, mass decaying so early rows dominate, and
// near-rank-one repetition. Both the FastFD (b, α) grid tests and the
// windowed DS-FD error-budget tests drive their sketches with these
// streams, so a regression in either layer shows up against the same
// inputs.
package adversary

import (
	"math/rand"

	"swsketch/internal/mat"
)

// Generator produces an n×d adversarial stream from a seeded rng.
type Generator func(rng *rand.Rand, n, d int) *mat.Dense

// Named pairs a generator with a stable name for subtest labels.
type Named struct {
	Name string
	Gen  Generator
}

// Streams lists every shipped generator; property tests range over it
// so a new adversary is picked up by all suites at once.
func Streams() []Named {
	return []Named{
		{"spiked", Spiked},
		{"decaying", Decaying},
		{"duplicate-row", DuplicateRow},
	}
}

// Spiked hides a handful of heavy directions in low-amplitude noise:
// every 7th row is a large spike along one of three axes, so a few
// singular values carry almost all the energy and a sketch that
// over-shrinks loses exactly the mass that matters.
func Spiked(rng *rand.Rand, n, d int) *mat.Dense {
	a := mat.NewDense(n, d)
	for i := 0; i < n; i++ {
		row := a.Row(i)
		for j := range row {
			row[j] = 0.05 * rng.NormFloat64()
		}
		if i%7 == 0 {
			row[i%3] += 40
		}
	}
	return a
}

// Decaying shrinks the row scale geometrically so early rows dominate
// ‖A‖²_F — the worst case for windowed sketches, whose heavy prefix
// expires while the error budget was spent on it.
func Decaying(rng *rand.Rand, n, d int) *mat.Dense {
	a := mat.NewDense(n, d)
	scale := 1.0
	for i := 0; i < n; i++ {
		row := a.Row(i)
		for j := range row {
			row[j] = scale * rng.NormFloat64()
		}
		scale *= 0.99
	}
	return a
}

// DuplicateRow repeats one base row with occasional fresh directions:
// a near-rank-one bulk that starves shrink steps of removable mass.
func DuplicateRow(rng *rand.Rand, n, d int) *mat.Dense {
	a := mat.NewDense(n, d)
	base := gaussRow(rng, d)
	for i := 0; i < n; i++ {
		row := a.Row(i)
		if i%11 == 10 {
			copy(row, gaussRow(rng, d))
			continue
		}
		copy(row, base)
	}
	return a
}

func gaussRow(rng *rand.Rand, d int) []float64 {
	row := make([]float64, d)
	for j := range row {
		row[j] = rng.NormFloat64()
	}
	return row
}
