// Package conformance is the cross-framework contract suite: a single
// table of every shipped WindowSketch implementation, and one Run
// entry point that drives each through the same behavioural battery —
// covariance-error bounds on sequence and time windows, window-expiry
// exactness, empty/zero/single-row edge cases, batch-vs-row
// bit-equality, snapshot round-trip bit-equality, and concurrent
// access (put under `go test -race` by CI). A new framework gets the
// whole battery by adding one Case; the registry-coverage test in
// this package's tests keeps the table honest against the HTTP-facing
// framework list.
package conformance

import (
	"encoding"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"swsketch/internal/core"
	"swsketch/internal/mat"
	"swsketch/internal/window"
)

// Case describes one sketch implementation to be run through the
// suite. Capability flags widen or narrow individual checks; the
// snapshot checks self-select on the encoding.BinaryMarshaler /
// BinaryUnmarshaler interfaces.
type Case struct {
	// Name labels the subtests.
	Name string
	// Frameworks lists the registry framework names this case covers;
	// empty for sketches not exposed through the tenant API. The
	// coverage test asserts the union spans the registry's list.
	Frameworks []string
	// Make builds a sketch for the given window spec, dimension, and
	// seed.
	Make func(spec window.Spec, d int, seed int64) core.WindowSketch
	// MaxErr is the acceptable average covariance error on the benign
	// random stream (loose: the contract is behavioural, the tight
	// error checks live in the per-algorithm tests).
	MaxErr float64
	// SeqOnly marks sequence-window-only sketches (the DI and DS
	// families); they skip the time-window check.
	SeqOnly bool
	// LooseSingleRow marks randomised projections, which preserve a
	// single row only in expectation.
	LooseSingleRow bool
	// BatchExact asserts UpdateBatch is bit-identical to row-at-a-time
	// Update (deterministic sketches, and samplers that consume their
	// rng in ingestion order).
	BatchExact bool
	// Deterministic asserts a restored snapshot continues bit-exactly
	// under identical further updates (beyond the answer-at-snapshot
	// equality every marshaler must satisfy).
	Deterministic bool
	// StrictQueryOrder marks sketches whose Query panics on a
	// timestamp older than the last update (BEST's exact window); they
	// skip the concurrent check, where a reader inevitably holds a
	// stale timestamp.
	StrictQueryOrder bool
	// Paired marks paired-stream (AMM) sketches: each d-wide row is
	// the stacked pair [a|b] split by pairedSplit, the guarantee is on
	// the product AᵀB rather than the Gram matrix AᵀA, and the error
	// checks measure the oracle's correlation error ‖AᵀB − XᵀY‖₂ /
	// (‖A‖_F·‖B‖_F) against MaxErr instead of the covariance error.
	Paired bool
}

// pairedSplit is the suite's stacked-row convention for Paired cases:
// the A side takes the first ⌈d/2⌉ columns.
func pairedSplit(d int) (dA, dB int) {
	dA = (d + 1) / 2
	return dA, d - dA
}

// caseErr measures a query answer with the case's metric: covariance
// error, or the windowed-AMM correlation error for Paired cases.
func caseErr(tc Case, oracle *window.Exact, d int, b *mat.Dense) float64 {
	if !tc.Paired {
		return oracle.CovaErr(b)
	}
	dA, dB := pairedSplit(d)
	return oracle.AmmErr(dA, core.StackedProduct(b, dA, dB))
}

// Cases returns the registration table for every shipped framework.
// This is the suite's single source of truth: core's contract test
// and the registry coverage test both consume it.
func Cases() []Case {
	return []Case{
		{Name: "SWR", Frameworks: []string{"swr"}, MaxErr: 0.5, BatchExact: true,
			Make: func(spec window.Spec, d int, seed int64) core.WindowSketch {
				return core.NewSWR(spec, 40, d, seed)
			}},
		{Name: "SWOR", Frameworks: []string{"swor"}, MaxErr: 0.5, BatchExact: true,
			Make: func(spec window.Spec, d int, seed int64) core.WindowSketch {
				return core.NewSWOR(spec, 40, d, seed)
			}},
		{Name: "SWOR-ALL", Frameworks: []string{"swor-all"}, MaxErr: 0.5, BatchExact: true,
			Make: func(spec window.Spec, d int, seed int64) core.WindowSketch {
				return core.NewSWORAll(spec, 40, d, seed)
			}},
		{Name: "LM-FD", Frameworks: []string{"lm-fd"}, MaxErr: 0.35, BatchExact: true, Deterministic: true,
			Make: func(spec window.Spec, d int, seed int64) core.WindowSketch {
				return core.NewLMFD(spec, d, 24, 8)
			}},
		{Name: "LM-HASH", Frameworks: []string{"lm-hash"}, MaxErr: 0.8, LooseSingleRow: true, BatchExact: true,
			Make: func(spec window.Spec, d int, seed int64) core.WindowSketch {
				return core.NewLMHash(spec, d, 256, 8, uint64(seed))
			}},
		{Name: "LM-RP", MaxErr: 0.8, LooseSingleRow: true, BatchExact: true,
			Make: func(spec window.Spec, d int, seed int64) core.WindowSketch {
				return core.NewLMRP(spec, d, 128, 8, seed)
			}},
		{Name: "DI-FD", Frameworks: []string{"di-fd"}, MaxErr: 0.6, SeqOnly: true, BatchExact: true,
			Make: func(spec window.Spec, d int, seed int64) core.WindowSketch {
				return core.NewDIFD(core.DIConfig{N: int(spec.Size), R: 4 * float64(d), L: 5, Ell: 48, RSlack: 2}, d)
			}},
		{Name: "DI-RP", MaxErr: 0.9, SeqOnly: true, LooseSingleRow: true, BatchExact: true,
			Make: func(spec window.Spec, d int, seed int64) core.WindowSketch {
				return core.NewDIRP(core.DIConfig{N: int(spec.Size), R: 4 * float64(d), L: 4, Ell: 512, MinEll: 64, RSlack: 2}, d, seed)
			}},
		{Name: "DI-HASH", MaxErr: 0.9, SeqOnly: true, LooseSingleRow: true, BatchExact: true,
			Make: func(spec window.Spec, d int, seed int64) core.WindowSketch {
				return core.NewDIHash(core.DIConfig{N: int(spec.Size), R: 4 * float64(d), L: 4, Ell: 512, MinEll: 64, RSlack: 2}, d, uint64(seed))
			}},
		{Name: "DS-FD", Frameworks: []string{"ds-fd"}, MaxErr: 0.35, SeqOnly: true, BatchExact: true, Deterministic: true,
			Make: func(spec window.Spec, d int, seed int64) core.WindowSketch {
				// Adaptive R (R=0): the error threshold θ = N·R/ℓ tracks
				// the observed max squared row norm.
				return core.NewDSFD(core.DSFDConfig{N: int(spec.Size), Ell: 24}, d)
			}},
		{Name: "LM-AMM", Frameworks: []string{"lm-amm"}, MaxErr: 0.35, Paired: true, BatchExact: true, Deterministic: true,
			Make: func(spec window.Spec, d int, seed int64) core.WindowSketch {
				dA, dB := pairedSplit(d)
				return core.NewLMAMM(spec, dA, dB, 24, 8)
			}},
		{Name: "DI-AMM", Frameworks: []string{"di-amm"}, MaxErr: 0.6, Paired: true, SeqOnly: true, BatchExact: true,
			Make: func(spec window.Spec, d int, seed int64) core.WindowSketch {
				dA, dB := pairedSplit(d)
				return core.NewDIAMM(core.DIConfig{N: int(spec.Size), R: 4 * float64(d), L: 5, Ell: 48, RSlack: 2}, dA, dB)
			}},
		{Name: "BEST", MaxErr: 0.2, BatchExact: true, StrictQueryOrder: true,
			Make: func(spec window.Spec, d int, seed int64) core.WindowSketch {
				return core.NewBest(spec, 12, d)
			}},
		{Name: "Concurrent(LM-FD)", MaxErr: 0.35, BatchExact: true,
			Make: func(spec window.Spec, d int, seed int64) core.WindowSketch {
				return core.NewConcurrent(core.NewLMFD(spec, d, 24, 8))
			}},
	}
}

func randRow(rng *rand.Rand, d int) []float64 {
	r := make([]float64, d)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	return r
}

// Run drives every case through the full battery as nested subtests.
func Run(t *testing.T, cases []Case) {
	t.Run("SequenceWindow", func(t *testing.T) { sequenceWindow(t, cases) })
	t.Run("TimeWindow", func(t *testing.T) { timeWindow(t, cases) })
	t.Run("EmptyQuery", func(t *testing.T) { emptyQuery(t, cases) })
	t.Run("FullExpiry", func(t *testing.T) { fullExpiry(t, cases) })
	t.Run("SingleRow", func(t *testing.T) { singleRow(t, cases) })
	t.Run("ZeroRow", func(t *testing.T) { zeroRow(t, cases) })
	t.Run("BatchBitEqual", func(t *testing.T) { batchBitEqual(t, cases) })
	t.Run("SnapshotRoundTrip", func(t *testing.T) { snapshotRoundTrip(t, cases) })
	t.Run("Concurrent", func(t *testing.T) { concurrent(t, cases) })
}

// sequenceWindow checks answer shape, query idempotence, and a loose
// average covariance-error bound on a benign random sequence stream.
func sequenceWindow(t *testing.T, cases []Case) {
	const d, win, n = 8, 300, 1800
	for _, tc := range cases {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			spec := window.Seq(win)
			sk := tc.Make(spec, d, 1)
			if sk.Name() == "" {
				t.Fatal("empty Name()")
			}
			oracle := window.NewExact(spec, d)
			rng := rand.New(rand.NewSource(99))
			var errSum float64
			queries := 0
			for i := 0; i < n; i++ {
				row := randRow(rng, d)
				tt := float64(i)
				sk.Update(row, tt)
				oracle.Update(row, tt)
				if i > win && i%300 == 0 {
					b := sk.Query(tt)
					if b.Cols() != d && b.Rows() != 0 {
						t.Fatalf("query cols = %d, want %d", b.Cols(), d)
					}
					// Idempotence: querying twice changes nothing.
					b2 := sk.Query(tt)
					if b.Rows() != b2.Rows() {
						t.Fatalf("query not idempotent: %d then %d rows", b.Rows(), b2.Rows())
					}
					errSum += caseErr(tc, oracle, d, b)
					queries++
					if sk.RowsStored() < 0 {
						t.Fatal("negative RowsStored")
					}
				}
			}
			if avg := errSum / float64(queries); avg > tc.MaxErr {
				t.Fatalf("avg error %v exceeds contract bound %v", avg, tc.MaxErr)
			}
		})
	}
}

// timeWindow repeats the error-bound check on a time-span window with
// exponentially spaced timestamps; sequence-only sketches skip it.
func timeWindow(t *testing.T, cases []Case) {
	const d = 6
	for _, tc := range cases {
		if tc.SeqOnly {
			continue
		}
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			spec := window.TimeSpan(25)
			sk := tc.Make(spec, d, 2)
			oracle := window.NewExact(spec, d)
			rng := rand.New(rand.NewSource(7))
			tt := 0.0
			var errSum float64
			queries := 0
			for i := 0; i < 1500; i++ {
				tt += rng.ExpFloat64() * 0.1
				row := randRow(rng, d)
				sk.Update(row, tt)
				oracle.Update(row, tt)
				if i > 400 && i%250 == 0 {
					errSum += caseErr(tc, oracle, d, sk.Query(tt))
					queries++
				}
			}
			if avg := errSum / float64(queries); avg > tc.MaxErr {
				t.Fatalf("avg error %v exceeds contract bound %v", avg, tc.MaxErr)
			}
		})
	}
}

// emptyQuery: querying before any update must not panic and must
// return a zero-mass answer.
func emptyQuery(t *testing.T, cases []Case) {
	const d = 4
	for _, tc := range cases {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			sk := tc.Make(window.Seq(50), d, 3)
			b := sk.Query(0)
			if b.FrobeniusSq() != 0 {
				t.Fatalf("empty sketch returned mass %v", b.FrobeniusSq())
			}
		})
	}
}

// fullExpiry: after the window slides entirely past the data, answers
// must carry (near-)zero mass relative to what was ingested.
func fullExpiry(t *testing.T, cases []Case) {
	const d = 4
	for _, tc := range cases {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			sk := tc.Make(window.Seq(20), d, 4)
			rng := rand.New(rand.NewSource(5))
			for i := 0; i < 100; i++ {
				sk.Update(randRow(rng, d), float64(i))
			}
			b := sk.Query(1e9)
			if b.FrobeniusSq() > 1e-9 {
				t.Fatalf("fully expired window still has mass %v (%d rows)", b.FrobeniusSq(), b.Rows())
			}
		})
	}
}

// singleRow: one row in, one window — the answer must reproduce that
// row's Gram matrix near-exactly, except for randomised projections
// which only preserve it in expectation.
func singleRow(t *testing.T, cases []Case) {
	const d = 3
	for _, tc := range cases {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			spec := window.Seq(10)
			sk := tc.Make(spec, d, 6)
			oracle := window.NewExact(spec, d)
			row := []float64{1, 2, 2}
			sk.Update(row, 0)
			oracle.Update(row, 0)
			e := caseErr(tc, oracle, d, sk.Query(0))
			if !tc.LooseSingleRow && e > 1e-6 {
				t.Fatalf("single-row error = %v", e)
			}
			if tc.LooseSingleRow && math.IsNaN(e) {
				t.Fatal("NaN error")
			}
		})
	}
}

// zeroRow: all-zero rows carry no spectral mass; ingesting them mid-
// stream must neither panic nor corrupt the answer.
func zeroRow(t *testing.T, cases []Case) {
	const d = 4
	for _, tc := range cases {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			sk := tc.Make(window.Seq(50), d, 8)
			rng := rand.New(rand.NewSource(6))
			for i := 0; i < 30; i++ {
				sk.Update(randRow(rng, d), float64(i))
			}
			sk.Update(make([]float64, d), 30)
			for i := 31; i < 60; i++ {
				sk.Update(randRow(rng, d), float64(i))
			}
			if v := sk.Query(59).FrobeniusSq(); math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite mass %v after zero-row ingest", v)
			}
		})
	}
}

// batchBitEqual: for BatchExact cases, UpdateBatch over arbitrary
// chunk sizes must be bit-identical to row-at-a-time ingest
// (deterministic sketches compute the same numbers; samplers consume
// their rng in the same order on both paths).
func batchBitEqual(t *testing.T, cases []Case) {
	const d, win, n = 5, 100, 400
	for _, tc := range cases {
		if !tc.BatchExact {
			continue
		}
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			spec := window.Seq(win)
			byRow := tc.Make(spec, d, 9)
			byBatch := tc.Make(spec, d, 9)
			rng := rand.New(rand.NewSource(13))
			rows := make([][]float64, n)
			times := make([]float64, n)
			for i := range rows {
				rows[i] = randRow(rng, d)
				times[i] = float64(i)
			}
			for i := range rows {
				byRow.Update(rows[i], times[i])
			}
			for i, size := 0, 1; i < n; i += size {
				size = size%7 + 1 // cycle chunk sizes 1..7
				j := i + size
				if j > n {
					j = n
				}
				byBatch.UpdateBatch(rows[i:j], times[i:j])
			}
			a, b := byRow.Query(times[n-1]), byBatch.Query(times[n-1])
			if a.Rows() != b.Rows() || !a.Equal(b, 0) {
				t.Fatalf("batch ingest diverges from row-at-a-time: %d vs %d rows", a.Rows(), b.Rows())
			}
		})
	}
}

// snapshotRoundTrip: every sketch exposing the binary snapshot
// interface must restore to bit-identical answers, re-marshal as a
// byte-level fixed point (the registry spill layer relies on both),
// and — for deterministic sketches — continue bit-exactly under
// identical further updates. Sketches without the interface (or whose
// variant refuses to marshal, like the hashed LM) are skipped.
func snapshotRoundTrip(t *testing.T, cases []Case) {
	const d, win, n = 6, 120, 700
	for _, tc := range cases {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			spec := window.Seq(win)
			sk := tc.Make(spec, d, 11)
			m, ok := sk.(encoding.BinaryMarshaler)
			if !ok {
				t.Skipf("%s does not implement BinaryMarshaler", tc.Name)
			}
			rng := rand.New(rand.NewSource(17))
			for i := 0; i < n; i++ {
				sk.Update(randRow(rng, d), float64(i))
			}
			blob, err := m.MarshalBinary()
			if err != nil {
				t.Skipf("%s refuses to marshal: %v", tc.Name, err)
			}
			fresh := tc.Make(spec, d, 11)
			u, ok := fresh.(encoding.BinaryUnmarshaler)
			if !ok {
				t.Fatalf("%s marshals but cannot unmarshal", tc.Name)
			}
			if err := u.UnmarshalBinary(blob); err != nil {
				t.Fatalf("restore failed: %v", err)
			}
			if !sk.Query(n-1).Equal(fresh.Query(n-1), 0) {
				t.Fatal("restored sketch answers differently at the snapshot time")
			}
			if fresh.RowsStored() != sk.RowsStored() {
				t.Fatalf("rows stored differ after restore: %d vs %d", fresh.RowsStored(), sk.RowsStored())
			}
			// Re-marshal of an untouched decode must be a byte-level
			// fixed point.
			again := tc.Make(spec, d, 11)
			if err := again.(encoding.BinaryUnmarshaler).UnmarshalBinary(blob); err != nil {
				t.Fatal(err)
			}
			re, err := again.(encoding.BinaryMarshaler).MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if string(re) != string(blob) {
				t.Fatal("snapshot is not re-marshal stable")
			}
			if !tc.Deterministic {
				return
			}
			for i := n; i < n+400; i++ {
				row := randRow(rng, d)
				sk.Update(row, float64(i))
				fresh.Update(row, float64(i))
			}
			if !sk.Query(n+399).Equal(fresh.Query(n+399), 0) {
				t.Fatal("restored sketch diverged under continued ingest")
			}
		})
	}
}

// concurrent wraps each case in core.NewConcurrent and hammers it with
// one ingest goroutine and two query goroutines. It asserts nothing
// beyond finite, well-shaped answers — its job is to put every
// framework's lock discipline under `go test -race`.
func concurrent(t *testing.T, cases []Case) {
	const d, total = 4, 600
	for _, tc := range cases {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			if tc.StrictQueryOrder {
				t.Skipf("%s requires non-decreasing query timestamps", tc.Name)
			}
			ck := core.NewConcurrent(tc.Make(window.Seq(64), d, 21))
			var latest atomic.Int64
			done := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer close(done)
				rng := rand.New(rand.NewSource(1))
				for i := 0; i < total; i++ {
					if i%5 == 4 {
						ck.UpdateBatch([][]float64{randRow(rng, d)}, []float64{float64(i)})
					} else {
						ck.Update(randRow(rng, d), float64(i))
					}
					latest.Store(int64(i))
				}
			}()
			for g := 0; g < 2; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-done:
							return
						default:
						}
						if ck.RowsStored() < 0 {
							t.Error("negative rows stored")
							return
						}
						b := ck.Query(float64(latest.Load()))
						if b.Rows() > 0 && b.Cols() != d {
							t.Errorf("query returned %d columns, want %d", b.Cols(), d)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}
