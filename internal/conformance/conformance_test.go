package conformance_test

import (
	"testing"

	"swsketch/internal/conformance"
	"swsketch/internal/registry"
)

// TestRegistryCoverage keeps the conformance table honest against the
// tenant API: every framework name the registry accepts must be
// claimed by exactly one conformance case, so a framework added to
// the HTTP surface without a contract entry fails here.
func TestRegistryCoverage(t *testing.T) {
	covered := map[string]string{}
	for _, c := range conformance.Cases() {
		for _, fw := range c.Frameworks {
			if prev, dup := covered[fw]; dup {
				t.Errorf("framework %q claimed by both %s and %s", fw, prev, c.Name)
			}
			covered[fw] = c.Name
		}
	}
	for _, fw := range registry.Frameworks() {
		if _, ok := covered[fw]; !ok {
			t.Errorf("registry framework %q has no conformance case", fw)
		}
		delete(covered, fw)
	}
	for fw, name := range covered {
		t.Errorf("conformance case %s claims unknown framework %q", name, fw)
	}
}
