package core

import (
	"math"
	"math/rand"
	"testing"

	"swsketch/internal/window"
)

func randRow(rng *rand.Rand, d int) []float64 {
	r := make([]float64, d)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	return r
}

// driveSeq feeds n random rows through sk and a parallel exact window,
// returning the oracle.
func driveSeq(t *testing.T, sk WindowSketch, spec window.Spec, rng *rand.Rand, n, d int) *window.Exact {
	t.Helper()
	ex := window.NewExact(spec, d)
	for i := 0; i < n; i++ {
		row := randRow(rng, d)
		sk.Update(row, float64(i))
		ex.Update(row, float64(i))
	}
	return ex
}

func TestNewSWRValidation(t *testing.T) {
	for _, c := range [][2]int{{0, 5}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for ell=%d d=%d", c[0], c[1])
				}
			}()
			NewSWR(window.Seq(10), c[0], c[1], 1)
		}()
	}
}

func TestSWRRowLengthPanics(t *testing.T) {
	s := NewSWR(window.Seq(10), 2, 3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Update([]float64{1}, 0)
}

func TestSWRQueryShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewSWR(window.Seq(50), 8, 4, 2)
	driveSeq(t, s, window.Seq(50), rng, 200, 4)
	b := s.Query(199)
	if b.Rows() != 8 || b.Cols() != 4 {
		t.Fatalf("Query dims = %d×%d, want 8×4", b.Rows(), b.Cols())
	}
}

func TestSWREmptyQuery(t *testing.T) {
	s := NewSWR(window.Seq(10), 4, 3, 3)
	if b := s.Query(0); b.Rows() != 0 {
		t.Fatalf("empty sketch query rows = %d", b.Rows())
	}
}

func TestSWRZeroRowsAdvanceClock(t *testing.T) {
	s := NewSWR(window.Seq(2), 1, 2, 4)
	s.Update([]float64{1, 0}, 0)
	s.Update([]float64{0, 0}, 1)
	s.Update([]float64{0, 0}, 2) // row at t=0 expires (cutoff = 0)
	if b := s.Query(2); b.Rows() != 0 {
		t.Fatalf("expired sample still returned: %d rows", b.Rows())
	}
}

func TestSWRSampleAlwaysInWindow(t *testing.T) {
	// Each sampled row must carry the timestamp of a live row. We mark
	// rows with their index to detect expired samples.
	rng := rand.New(rand.NewSource(5))
	n, d, win := 500, 3, 40
	s := NewSWR(window.Seq(win), 6, d, 6)
	for i := 0; i < n; i++ {
		row := []float64{float64(i + 1), rng.Float64(), rng.Float64()}
		s.Update(row, float64(i))
		b := s.Query(float64(i))
		for r := 0; r < b.Rows(); r++ {
			// Undo the rescale via the marker ratio: column 0 over the
			// row's norm identifies the original index monotonically —
			// instead just bound: rescaled row keeps the sign/order of
			// the marker; recover index bounds via the queue directly.
			_ = r
		}
		// Structural check: every candidate in every deque is live.
		cutoff := float64(i - win)
		for q := range s.queues {
			for _, c := range s.queues[q].items {
				if c.t <= cutoff {
					t.Fatalf("at t=%d: expired candidate with t=%v", i, c.t)
				}
			}
		}
	}
}

func TestSWRDequeMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := NewSWR(window.Seq(100), 4, 3, 7)
	for i := 0; i < 400; i++ {
		s.Update(randRow(rng, 3), float64(i))
		for q := range s.queues {
			items := s.queues[q].items
			for j := 1; j < len(items); j++ {
				if items[j].key >= items[j-1].key {
					t.Fatalf("deque %d not strictly decreasing at %d", q, j)
				}
			}
		}
	}
}

func TestSWRCandidateCountLogarithmic(t *testing.T) {
	// Lemma 5.1: E[candidates per deque] = O(log NR). With N=1000 and
	// unit-ish norms, each deque should hold ≈ ln(1000) ≈ 7 rows, far
	// below the window size.
	rng := rand.New(rand.NewSource(7))
	ell := 10
	s := NewSWR(window.Seq(1000), ell, 4, 8)
	var peak int
	for i := 0; i < 5000; i++ {
		s.Update(randRow(rng, 4), float64(i))
		if i > 1000 {
			if n := s.RowsStored(); n > peak {
				peak = n
			}
		}
	}
	if peak > ell*40 { // 40 ≫ log(NR) ≈ 10; catches linear blowups
		t.Fatalf("peak candidates %d suggests linear growth (ell=%d)", peak, ell)
	}
	if peak < ell { // must at least keep one sample per deque
		t.Fatalf("peak candidates %d below ell=%d", peak, ell)
	}
}

func TestSWRErrorDecreasesWithEll(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d, n, win := 8, 1500, 300
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = randRow(rng, d)
	}
	errAt := func(ell int) float64 {
		var sum float64
		const seeds = 3
		for sd := int64(0); sd < seeds; sd++ {
			s := NewSWR(window.Seq(win), ell, d, 80+sd)
			ex := window.NewExact(window.Seq(win), d)
			var e float64
			cnt := 0
			for i := 0; i < n; i++ {
				s.Update(rows[i], float64(i))
				ex.Update(rows[i], float64(i))
				if i >= win && i%100 == 0 {
					e += ex.CovaErr(s.Query(float64(i)))
					cnt++
				}
			}
			sum += e / float64(cnt)
		}
		return sum / seeds
	}
	small, large := errAt(10), errAt(150)
	if large >= small {
		t.Fatalf("SWR error did not decrease with ell: ℓ=10→%v, ℓ=150→%v", small, large)
	}
}

func TestSWRApproximatesWindowNotStream(t *testing.T) {
	// Two-phase stream: early rows along e₀, window rows along e₁. The
	// sketch must reflect only the window's direction.
	s := NewSWR(window.Seq(100), 20, 2, 9)
	for i := 0; i < 500; i++ {
		s.Update([]float64{1, 0}, float64(i))
	}
	for i := 500; i < 1000; i++ {
		s.Update([]float64{0, 1}, float64(i))
	}
	b := s.Query(999)
	var col0, col1 float64
	for i := 0; i < b.Rows(); i++ {
		col0 += b.At(i, 0) * b.At(i, 0)
		col1 += b.At(i, 1) * b.At(i, 1)
	}
	if col0 != 0 {
		t.Fatalf("sketch retains expired direction: ‖Be₀‖²=%v", col0)
	}
	if math.Abs(col1-100) > 1e-6 { // window mass = 100
		t.Fatalf("window mass = %v, want 100", col1)
	}
}

func TestSWRTimeWindow(t *testing.T) {
	// Time-based window with irregular arrivals.
	rng := rand.New(rand.NewSource(10))
	spec := window.TimeSpan(10.0)
	s := NewSWR(spec, 30, 4, 11)
	ex := window.NewExact(spec, 4)
	tt := 0.0
	var errSum float64
	cnt := 0
	for i := 0; i < 2000; i++ {
		tt += rng.ExpFloat64() * 0.1
		row := randRow(rng, 4)
		s.Update(row, tt)
		ex.Update(row, tt)
		if i > 300 && i%200 == 0 {
			errSum += ex.CovaErr(s.Query(tt))
			cnt++
		}
	}
	if avg := errSum / float64(cnt); avg > 0.6 {
		t.Fatalf("time-window SWR avg error = %v", avg)
	}
}

func TestSWRWithEHNormTracker(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	spec := window.Seq(200)
	s := NewSWR(spec, 40, 4, 13)
	s.SetNormTracker(window.NewEHNorms(spec, 0.05))
	ex := window.NewExact(spec, 4)
	var errSum float64
	cnt := 0
	for i := 0; i < 1500; i++ {
		row := randRow(rng, 4)
		s.Update(row, float64(i))
		ex.Update(row, float64(i))
		if i > 300 && i%150 == 0 {
			errSum += ex.CovaErr(s.Query(float64(i)))
			cnt++
		}
	}
	if avg := errSum / float64(cnt); avg > 0.6 {
		t.Fatalf("EH-tracked SWR avg error = %v", avg)
	}
}

func TestSWRName(t *testing.T) {
	if NewSWR(window.Seq(5), 1, 1, 0).Name() != "SWR" {
		t.Fatal("Name wrong")
	}
}
