package core

import (
	"fmt"
	"time"

	"swsketch/internal/binenc"
	"swsketch/internal/mat"
	"swsketch/internal/stream"
	"swsketch/internal/trace"
	"swsketch/internal/window"
)

// Snapshot/restore support for the sketches a long-lived process would
// run: SWR, SWOR (and SWOR-ALL), and LM-FD. Snapshots capture the full
// deterministic state; the samplers' random source is reseeded on
// restore (future priority draws only need independence from each
// other, not continuity with the pre-snapshot stream, so the sampling
// guarantees are unaffected).
//
// Formats are versioned with magic numbers; restoring rejects foreign
// or truncated data.

const (
	swrMagic  = uint64(0x53575253_00000001) // "SWRS" v1
	sworMagic = uint64(0x53574F52_00000001) // "SWOR" v1
	lmfdMagic = uint64(0x4C4D4644_00000001) // "LMFD" v1
	// lmfdMagicV2 adds the FastFD factory tuning (buffer factor, alpha)
	// after the b field; classic-tuned LMs keep writing v1 so their
	// snapshot bytes stay identical across versions.
	lmfdMagicV2 = uint64(0x4C4D4644_00000002) // "LMFD" v2
)

func writeSpec(w *binenc.Writer, spec window.Spec) {
	w.Int(int(spec.Kind))
	w.F64(spec.Size)
}

func readSpec(r *binenc.Reader) (window.Spec, error) {
	kind := window.Kind(r.Int())
	size := r.F64()
	if r.Err() != nil {
		return window.Spec{}, r.Err()
	}
	if kind != window.Sequence && kind != window.Time {
		return window.Spec{}, fmt.Errorf("core: snapshot has bad window kind %d", int(kind))
	}
	if size <= 0 {
		return window.Spec{}, fmt.Errorf("core: snapshot has bad window size %v", size)
	}
	return window.Spec{Kind: kind, Size: size}, nil
}

func writeCandidate(w *binenc.Writer, c candidate) {
	w.F64s(c.row)
	w.F64(c.t)
	w.F64(c.w)
	w.F64(c.key)
}

func readCandidate(r *binenc.Reader, d int) (candidate, error) {
	c := candidate{row: r.F64s(), t: r.F64(), w: r.F64(), key: r.F64()}
	if r.Err() != nil {
		return c, r.Err()
	}
	if len(c.row) != d {
		return c, fmt.Errorf("core: snapshot candidate row length %d, want %d", len(c.row), d)
	}
	return c, nil
}

// exactNormsOrErr extracts the ExactNorms tracker; snapshots do not
// cover custom trackers (the EH tracker is cheap to rebuild and
// approximate anyway).
func exactNormsOrErr(nt window.NormTracker, algo string) (*window.ExactNorms, error) {
	x, ok := nt.(*window.ExactNorms)
	if !ok {
		return nil, fmt.Errorf("core: %s snapshot requires the exact norm tracker, have %T", algo, nt)
	}
	return x, nil
}

// MarshalBinary snapshots the SWR sampler.
func (s *SWR) MarshalBinary() ([]byte, error) {
	norms, err := exactNormsOrErr(s.norms, "SWR")
	if err != nil {
		return nil, err
	}
	w := binenc.NewWriter()
	w.U64(swrMagic)
	writeSpec(w, s.spec)
	w.Int(s.d)
	w.Int(s.ell)
	w.F64(s.lastT)
	w.Bool(s.seen)
	for q := range s.queues {
		w.Int(len(s.queues[q].items))
		for _, c := range s.queues[q].items {
			writeCandidate(w, c)
		}
	}
	nb, err := norms.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w.Blob(nb)
	out := w.Bytes()
	s.tr.Emit("SWR", trace.KindSnapshot, s.lastT, float64(len(out)), 0)
	return out, nil
}

// UnmarshalBinary restores an SWR snapshot into the receiver.
func (s *SWR) UnmarshalBinary(data []byte) error {
	r := binenc.NewReader(data)
	if magic := r.U64(); magic != swrMagic && r.Err() == nil {
		return fmt.Errorf("core: SWR snapshot magic %#x unrecognised", magic)
	}
	spec, err := readSpec(r)
	if err != nil {
		return fmt.Errorf("core: SWR snapshot: %w", err)
	}
	d := r.Int()
	ell := r.Int()
	lastT := r.F64()
	seen := r.Bool()
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: SWR snapshot: %w", err)
	}
	if d < 1 || ell < 1 {
		return fmt.Errorf("core: SWR snapshot shape ell=%d d=%d", ell, d)
	}
	restored := NewSWR(spec, ell, d, time.Now().UnixNano())
	restored.lastT, restored.seen = lastT, seen
	for q := 0; q < ell; q++ {
		n := r.Int()
		if r.Err() != nil {
			return fmt.Errorf("core: SWR snapshot: %w", r.Err())
		}
		items := make([]candidate, 0, n)
		for i := 0; i < n; i++ {
			c, err := readCandidate(r, d)
			if err != nil {
				return fmt.Errorf("core: SWR snapshot: %w", err)
			}
			items = append(items, c)
		}
		restored.queues[q].items = items
	}
	norms := window.NewExactNorms(spec)
	if err := norms.UnmarshalBinary(r.Blob()); err != nil {
		return fmt.Errorf("core: SWR snapshot: %w", err)
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: SWR snapshot: %w", err)
	}
	if r.Rest() != 0 {
		return fmt.Errorf("core: SWR snapshot has %d trailing bytes", r.Rest())
	}
	restored.norms = norms
	restored.tr = s.tr // the tracer survives restore
	*s = *restored
	s.tr.Emit("SWR", trace.KindRestore, s.lastT, float64(len(data)), 0)
	return nil
}

// MarshalBinary snapshots the SWOR sampler (including the SWOR-ALL and
// uniform-scale flags).
func (s *SWOR) MarshalBinary() ([]byte, error) {
	norms, err := exactNormsOrErr(s.norms, "SWOR")
	if err != nil {
		return nil, err
	}
	w := binenc.NewWriter()
	w.U64(sworMagic)
	writeSpec(w, s.spec)
	w.Int(s.d)
	w.Int(s.ell)
	w.Bool(s.UniformScale)
	w.Bool(s.All)
	w.F64(s.lastT)
	w.Bool(s.seen)
	w.Int(len(s.queue))
	for _, c := range s.queue {
		writeCandidate(w, c.candidate)
		w.Int(c.rank)
	}
	nb, err := norms.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w.Blob(nb)
	out := w.Bytes()
	s.tr.Emit(s.Name(), trace.KindSnapshot, s.lastT, float64(len(out)), 0)
	return out, nil
}

// UnmarshalBinary restores a SWOR snapshot into the receiver.
func (s *SWOR) UnmarshalBinary(data []byte) error {
	r := binenc.NewReader(data)
	if magic := r.U64(); magic != sworMagic && r.Err() == nil {
		return fmt.Errorf("core: SWOR snapshot magic %#x unrecognised", magic)
	}
	spec, err := readSpec(r)
	if err != nil {
		return fmt.Errorf("core: SWOR snapshot: %w", err)
	}
	d := r.Int()
	ell := r.Int()
	uniform := r.Bool()
	all := r.Bool()
	lastT := r.F64()
	seen := r.Bool()
	n := r.Int()
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: SWOR snapshot: %w", err)
	}
	if d < 1 || ell < 1 {
		return fmt.Errorf("core: SWOR snapshot shape ell=%d d=%d", ell, d)
	}
	restored := NewSWOR(spec, ell, d, time.Now().UnixNano())
	restored.UniformScale, restored.All = uniform, all
	restored.lastT, restored.seen = lastT, seen
	for i := 0; i < n; i++ {
		c, err := readCandidate(r, d)
		if err != nil {
			return fmt.Errorf("core: SWOR snapshot: %w", err)
		}
		rank := r.Int()
		if rank < 1 || rank > ell {
			return fmt.Errorf("core: SWOR snapshot rank %d outside [1,%d]", rank, ell)
		}
		restored.queue = append(restored.queue, sworCandidate{candidate: c, rank: rank})
	}
	norms := window.NewExactNorms(spec)
	if err := norms.UnmarshalBinary(r.Blob()); err != nil {
		return fmt.Errorf("core: SWOR snapshot: %w", err)
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: SWOR snapshot: %w", err)
	}
	if r.Rest() != 0 {
		return fmt.Errorf("core: SWOR snapshot has %d trailing bytes", r.Rest())
	}
	restored.norms = norms
	restored.tr = s.tr // the tracer survives restore
	*s = *restored
	s.tr.Emit(s.Name(), trace.KindRestore, s.lastT, float64(len(data)), 0)
	return nil
}

// MarshalBinary snapshots an LM-FD sketch. Only the FrequentDirections
// backing is supported: restoring must rebuild the block factory, and
// FD's is fully determined by (ℓ, d).
func (l *LM) MarshalBinary() ([]byte, error) {
	if l.name != "LM-FD" {
		return nil, fmt.Errorf("core: LM snapshots support LM-FD only, have %s", l.name)
	}
	l.snapshots++
	w := binenc.NewWriter()
	classic := l.fdOpts.Buffer <= 1 && (l.fdOpts.Alpha == 0 || l.fdOpts.Alpha == 1)
	if classic {
		w.U64(lmfdMagic)
	} else {
		w.U64(lmfdMagicV2)
	}
	writeSpec(w, l.spec)
	w.Int(l.d)
	w.F64(l.ell)
	w.Int(l.b)
	if !classic {
		w.Int(l.fdOpts.Buffer)
		w.F64(l.fdOpts.Alpha)
	}
	w.F64(l.lastT)
	w.Bool(l.seen)
	w.Int(len(l.levels))
	for _, lv := range l.levels {
		w.Int(len(lv))
		for i := range lv {
			if err := writeLMBlock(w, &lv[i]); err != nil {
				return nil, err
			}
		}
	}
	if err := writeLMBlock(w, &l.active); err != nil {
		return nil, err
	}
	out := w.Bytes()
	l.tr.Emit(l.name, trace.KindSnapshot, l.lastT, float64(len(out)), 0)
	return out, nil
}

func writeLMBlock(w *binenc.Writer, blk *lmBlock) error {
	w.F64(blk.start)
	w.F64(blk.end)
	w.F64(blk.size)
	w.F64(blk.singletonCap)
	if blk.sk == nil {
		w.Bool(false)
		w.Int(len(blk.raw))
		for i, row := range blk.raw {
			w.Int(len(row.Idx))
			for _, ix := range row.Idx {
				w.Int(ix)
			}
			w.F64s(row.Val)
			w.F64(blk.rawTimes[i])
		}
		return nil
	}
	w.Bool(true)
	fd, ok := blk.sk.(*stream.FD)
	if !ok {
		return fmt.Errorf("core: LM snapshot found non-FD block sketch %T", blk.sk)
	}
	b, err := fd.MarshalBinary()
	if err != nil {
		return err
	}
	w.Blob(b)
	return nil
}

func readLMBlock(r *binenc.Reader, d int) (lmBlock, error) {
	blk := lmBlock{
		start:        r.F64(),
		end:          r.F64(),
		size:         r.F64(),
		singletonCap: r.F64(),
	}
	sketched := r.Bool()
	if r.Err() != nil {
		return blk, r.Err()
	}
	if !sketched {
		n := r.Int()
		for i := 0; i < n; i++ {
			nnz := r.Int()
			if r.Err() != nil {
				return blk, r.Err()
			}
			idx := make([]int, nnz)
			prev := -1
			for k := range idx {
				idx[k] = r.Int()
				if r.Err() == nil && (idx[k] <= prev || idx[k] >= d) {
					return blk, fmt.Errorf("core: LM snapshot sparse index %d invalid for d=%d", idx[k], d)
				}
				prev = idx[k]
			}
			val := r.F64s()
			t := r.F64()
			if r.Err() != nil {
				return blk, r.Err()
			}
			if len(val) != nnz {
				return blk, fmt.Errorf("core: LM snapshot row has %d indices, %d values", nnz, len(val))
			}
			blk.raw = append(blk.raw, mat.SparseRow{Idx: idx, Val: val})
			blk.rawTimes = append(blk.rawTimes, t)
		}
		return blk, r.Err()
	}
	fd := stream.NewFD(2, d) // shape overwritten by the snapshot
	if err := fd.UnmarshalBinary(r.Blob()); err != nil {
		return blk, err
	}
	blk.sk = fd
	return blk, nil
}

// UnmarshalBinary restores an LM-FD snapshot into the receiver.
func (l *LM) UnmarshalBinary(data []byte) error {
	r := binenc.NewReader(data)
	magic := r.U64()
	if magic != lmfdMagic && magic != lmfdMagicV2 && r.Err() == nil {
		return fmt.Errorf("core: LM snapshot magic %#x unrecognised", magic)
	}
	spec, err := readSpec(r)
	if err != nil {
		return fmt.Errorf("core: LM snapshot: %w", err)
	}
	d := r.Int()
	ell := r.F64()
	b := r.Int()
	fdo := stream.FDOpts{}
	if magic == lmfdMagicV2 {
		fdo.Buffer = r.Int()
		fdo.Alpha = r.F64()
		if r.Err() == nil && (fdo.Buffer < 1 || !(fdo.Alpha > 0 && fdo.Alpha <= 1)) {
			return fmt.Errorf("core: LM snapshot has invalid FD tuning buffer=%d alpha=%v", fdo.Buffer, fdo.Alpha)
		}
	}
	lastT := r.F64()
	seen := r.Bool()
	nLevels := r.Int()
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: LM snapshot: %w", err)
	}
	if d < 1 || ell < 1 || b < 2 || nLevels < 0 {
		return fmt.Errorf("core: LM snapshot shape d=%d ell=%v b=%d levels=%d", d, ell, b, nLevels)
	}
	restored := NewLMFDOpts(spec, d, int(ell), b, fdo)
	restored.lastT, restored.seen = lastT, seen
	for i := 0; i < nLevels; i++ {
		n := r.Int()
		if r.Err() != nil {
			return fmt.Errorf("core: LM snapshot: %w", r.Err())
		}
		var lv []lmBlock
		for j := 0; j < n; j++ {
			blk, err := readLMBlock(r, d)
			if err != nil {
				return fmt.Errorf("core: LM snapshot: %w", err)
			}
			lv = append(lv, blk)
		}
		restored.levels = append(restored.levels, lv)
	}
	active, err := readLMBlock(r, d)
	if err != nil {
		return fmt.Errorf("core: LM snapshot: %w", err)
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: LM snapshot: %w", err)
	}
	if r.Rest() != 0 {
		return fmt.Errorf("core: LM snapshot has %d trailing bytes", r.Rest())
	}
	restored.active = active
	restored.tr = l.tr // the tracer survives restore
	for i := range restored.levels {
		for j := range restored.levels[i] {
			if t, ok := restored.levels[i][j].sk.(trace.Traceable); ok {
				t.SetTracer(l.tr)
			}
		}
	}
	*l = *restored
	l.tr.Emit(l.name, trace.KindRestore, l.lastT, float64(len(data)), 0)
	return nil
}
