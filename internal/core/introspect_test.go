package core

import (
	"testing"

	"swsketch/internal/window"
)

// feedSeq drives n unit-ish rows through sk on a sequence clock.
func feedSeq(sk WindowSketch, n, d int) {
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = float64((i+j)%7) + 1
		}
		sk.Update(row, float64(i))
	}
}

func requireKeys(t *testing.T, m map[string]float64, keys ...string) {
	t.Helper()
	for _, k := range keys {
		if _, ok := m[k]; !ok {
			t.Fatalf("stats missing %q: %v", k, m)
		}
	}
}

func TestSWRStats(t *testing.T) {
	s := NewSWR(window.Seq(64), 4, 3, 1)
	feedSeq(s, 200, 3)
	m := s.Stats()
	requireKeys(t, m, "queues", "candidates", "candidates_min", "candidates_max", "norm_tracker_items")
	if m["queues"] != 4 {
		t.Fatalf("queues = %v", m["queues"])
	}
	if m["candidates"] != float64(s.RowsStored()) {
		t.Fatalf("candidates %v != RowsStored %d", m["candidates"], s.RowsStored())
	}
	if m["candidates_min"] > m["candidates_max"] {
		t.Fatalf("min %v > max %v", m["candidates_min"], m["candidates_max"])
	}
}

func TestSWRStatsWithEHTracker(t *testing.T) {
	s := NewSWR(window.Seq(64), 2, 3, 1)
	s.SetNormTracker(window.NewEHNorms(window.Seq(64), 0.1))
	feedSeq(s, 100, 3)
	m := s.Stats()
	// The EH tracker's internals must surface under the prefix.
	requireKeys(t, m, "norm_tracker_items", "norm_tracker_buckets", "norm_tracker_classes", "norm_tracker_total")
	if m["norm_tracker_buckets"] < 1 {
		t.Fatalf("eh buckets = %v", m["norm_tracker_buckets"])
	}
}

func TestSWORStats(t *testing.T) {
	s := NewSWOR(window.Seq(64), 4, 3, 1)
	feedSeq(s, 200, 3)
	m := s.Stats()
	requireKeys(t, m, "ell", "candidates", "rank_max", "norm_tracker_items")
	if m["candidates"] != float64(s.RowsStored()) {
		t.Fatalf("candidates %v != RowsStored %d", m["candidates"], s.RowsStored())
	}
	if m["rank_max"] < 1 || m["rank_max"] > 4 {
		t.Fatalf("rank_max = %v", m["rank_max"])
	}
}

func TestLMStats(t *testing.T) {
	l := NewLMFD(window.Seq(512), 3, 8, 4)
	feedSeq(l, 600, 3)
	m := l.Stats()
	requireKeys(t, m, "levels", "blocks", "blocks_raw", "blocks_sketched",
		"active_rows", "active_mass", "merges", "snapshots", "blocks_per_level")
	if m["levels"] < 1 || m["levels"] != float64(l.Levels()) {
		t.Fatalf("levels = %v (Levels() = %d)", m["levels"], l.Levels())
	}
	if m["merges"] < 1 {
		t.Fatalf("merges = %v after 600 rows", m["merges"])
	}
	if m["blocks"] != m["blocks_raw"]+m["blocks_sketched"] {
		t.Fatalf("block split inconsistent: %v", m)
	}
	// Per-level occupancy entries exist for every live level and sum to
	// the block total.
	var sum float64
	for i := 1; i <= l.Levels(); i++ {
		v, ok := m[lvKey(i)]
		if !ok {
			t.Fatalf("missing %s: %v", lvKey(i), m)
		}
		sum += v
	}
	if sum != m["blocks"] {
		t.Fatalf("per-level sum %v != blocks %v", sum, m["blocks"])
	}
	// Sketched FD blocks surface their cumulative shrink count.
	if m["blocks_sketched"] > 0 {
		if _, ok := m["fd_shrinks"]; !ok {
			t.Fatalf("no fd_shrinks with %v sketched blocks", m["blocks_sketched"])
		}
	}

	if _, err := l.MarshalBinary(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats()["snapshots"]; got != 1 {
		t.Fatalf("snapshots = %v after one MarshalBinary", got)
	}
}

func lvKey(i int) string {
	return map[int]string{1: "level1_blocks", 2: "level2_blocks", 3: "level3_blocks",
		4: "level4_blocks", 5: "level5_blocks", 6: "level6_blocks", 7: "level7_blocks",
		8: "level8_blocks", 9: "level9_blocks", 10: "level10_blocks"}[i]
}

func TestDIStats(t *testing.T) {
	di := NewDIFD(DIConfig{N: 256, R: 160, L: 4, Ell: 16}, 3)
	feedSeq(di, 400, 3)
	m := di.Stats()
	requireKeys(t, m, "levels", "l1_blocks_closed", "completed_blocks",
		"open_rows", "open_mass", "raw_overflow", "declared_r",
		"norm_sq_min", "norm_sq_max", "norm_ratio")
	if m["levels"] != 4 {
		t.Fatalf("levels = %v", m["levels"])
	}
	if m["l1_blocks_closed"] != float64(di.CompletedBlocks()) {
		t.Fatalf("l1 blocks %v != CompletedBlocks %d", m["l1_blocks_closed"], di.CompletedBlocks())
	}
	if m["norm_ratio"] < 1 {
		t.Fatalf("norm ratio = %v", m["norm_ratio"])
	}
	if m["norm_sq_max"] > m["declared_r"]*1.01 {
		t.Fatalf("observed max %v exceeds declared R %v", m["norm_sq_max"], m["declared_r"])
	}
	if m["completed_blocks"] > 0 {
		if _, ok := m["fd_shrinks"]; !ok {
			// Active sketches also report; with 400 rows through small
			// FDs at least one shrink must have happened somewhere.
			t.Fatalf("no fd_shrinks: %v", m)
		}
	}
}

func TestConcurrentAndWrapperStats(t *testing.T) {
	c := NewConcurrent(NewSWOR(window.Seq(32), 2, 3, 1))
	feedSeq(c, 50, 3)
	requireKeys(t, c.Stats(), "candidates")

	// A wrapped non-introspector yields an empty, non-nil map.
	z := NewConcurrent(NewZero(3))
	if m := z.Stats(); m == nil || len(m) != 0 {
		t.Fatalf("zero stats = %v", m)
	}

	u := NewUnboundedFD(8, 3)
	feedSeq(u, 50, 3)
	requireKeys(t, u.Stats(), "ell", "used", "headroom", "shrinks")

	b := NewBest(window.Seq(16), 2, 3)
	feedSeq(b, 20, 3)
	m := b.Stats()
	if m["window_rows"] != 16 || m["k"] != 2 {
		t.Fatalf("best stats = %v", m)
	}
}
