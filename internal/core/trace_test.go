package core

import (
	"math/rand"
	"testing"

	"swsketch/internal/trace"
	"swsketch/internal/window"
)

// traceRows generates a deterministic mixed-magnitude stream.
func traceRows(n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		r := make([]float64, d)
		for j := range r {
			r[j] = rng.NormFloat64()
		}
		rows[i] = r
	}
	return rows
}

// TestTraceLMEmitsStructuralEvents drives LM-FD hard enough to force
// active-block closes, merge cascades, FD shrinks inside block merges,
// and window expiry — and checks each kind shows up in the trace.
func TestTraceLMEmitsStructuralEvents(t *testing.T) {
	tr := trace.New(1 << 12)
	tr.Enable()
	lm := NewLMFD(window.Seq(200), 8, 16, 2)
	lm.SetTracer(tr)
	for i, r := range traceRows(1200, 8, 1) {
		lm.Update(r, float64(i))
	}
	lm.Query(1199)

	counts := tr.Counts()
	for _, kind := range []string{trace.KindLMClose, trace.KindLMMerge, trace.KindLMExpire, trace.KindFDShrink} {
		if counts[kind].Count == 0 {
			t.Errorf("LM-FD workload emitted no %s events (counts %v)", kind, counts)
		}
	}
	if counts[trace.KindLMMerge].LastSeq == 0 {
		t.Error("lm_merge exemplar seq missing")
	}
}

// TestTraceLMSingletonPromotion forces the Section 6.2 oversized-row
// path and checks lm_promote fires.
func TestTraceLMSingletonPromotion(t *testing.T) {
	tr := trace.New(1 << 12)
	tr.Enable()
	lm := NewLMFD(window.Seq(500), 4, 4, 2)
	lm.SetTracer(tr)
	big := []float64{40, 0, 0, 0} // mass 1600 ≫ ℓ=4
	small := []float64{0.5, 0.5, 0, 0}
	ti := 0.0
	for i := 0; i < 200; i++ {
		lm.Update(small, ti)
		ti++
		if i%3 == 0 {
			lm.Update(big, ti)
			ti++
		}
	}
	if tr.Counts()[trace.KindLMPromote].Count == 0 {
		t.Errorf("singleton workload emitted no lm_promote events (counts %v)", tr.Counts())
	}
}

// TestTraceDIEmitsStructuralEvents drives DI-FD through block closes
// and retires.
func TestTraceDIEmitsStructuralEvents(t *testing.T) {
	tr := trace.New(1 << 12)
	tr.Enable()
	di := NewDIFD(DIConfig{N: 128, R: 100, L: 4, Ell: 16}, 8)
	di.SetTracer(tr)
	rows := traceRows(800, 8, 2)
	for i, r := range rows {
		di.Update(r, float64(i))
	}
	di.Query(float64(len(rows) - 1))

	counts := tr.Counts()
	for _, kind := range []string{trace.KindDIClose, trace.KindDIRetire, trace.KindFDShrink} {
		if counts[kind].Count == 0 {
			t.Errorf("DI-FD workload emitted no %s events (counts %v)", kind, counts)
		}
	}
}

// TestTraceSamplersEmitEvictions checks SWR (with an EH norm tracker,
// so eh_merge rides along) and SWOR both emit sampler_evict.
func TestTraceSamplersEmitEvictions(t *testing.T) {
	tr := trace.New(1 << 12)
	tr.Enable()

	swr := NewSWR(window.Seq(100), 4, 8, 7)
	swr.SetNormTracker(window.NewEHNorms(window.Seq(100), 0.1))
	swr.SetTracer(tr)
	for i, r := range traceRows(600, 8, 3) {
		swr.Update(r, float64(i))
	}
	counts := tr.Counts()
	if counts[trace.KindSamplerEvict].Count == 0 {
		t.Errorf("SWR emitted no sampler_evict events (counts %v)", counts)
	}
	if counts[trace.KindEHMerge].Count == 0 {
		t.Errorf("SWR's EH tracker emitted no eh_merge events (counts %v)", counts)
	}

	tr2 := trace.New(1 << 12)
	tr2.Enable()
	swor := NewSWOR(window.Seq(100), 4, 8, 11)
	swor.SetTracer(tr2)
	for i, r := range traceRows(600, 8, 4) {
		swor.Update(r, float64(i))
	}
	if tr2.Counts()[trace.KindSamplerEvict].Count == 0 {
		t.Errorf("SWOR emitted no sampler_evict events (counts %v)", tr2.Counts())
	}
}

// TestTraceSnapshotRestore checks snapshot/restore events fire and the
// tracer survives UnmarshalBinary's wholesale state replacement.
func TestTraceSnapshotRestore(t *testing.T) {
	tr := trace.New(1 << 10)
	tr.Enable()
	lm := NewLMFD(window.Seq(100), 4, 8, 2)
	lm.SetTracer(tr)
	for i, r := range traceRows(150, 4, 5) {
		lm.Update(r, float64(i))
	}
	blob, err := lm.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := lm.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	counts := tr.Counts()
	if counts[trace.KindSnapshot].Count == 0 || counts[trace.KindRestore].Count == 0 {
		t.Fatalf("snapshot/restore events missing (counts %v)", counts)
	}
	// The tracer must keep working after restore.
	before := tr.Total()
	for i := 150; i < 400; i++ {
		lm.Update(traceRows(1, 4, int64(i))[0], float64(i))
	}
	if tr.Total() == before {
		t.Fatal("tracer lost after restore: no events from post-restore ingest")
	}
}

// TestTraceDisabledSketchesMatch verifies tracing does not perturb
// sketch behaviour: with a nil tracer and a disabled tracer, identical
// streams produce identical query answers.
func TestTraceDisabledSketchesMatch(t *testing.T) {
	rows := traceRows(500, 6, 9)
	a := NewLMFD(window.Seq(120), 6, 12, 3)
	b := NewLMFD(window.Seq(120), 6, 12, 3)
	b.SetTracer(trace.New(64)) // attached but disabled
	for i, r := range rows {
		a.Update(r, float64(i))
		b.Update(r, float64(i))
	}
	qa, qb := a.Query(499), b.Query(499)
	if qa.Rows() != qb.Rows() || qa.Cols() != qb.Cols() {
		t.Fatalf("shape diverged: %dx%d vs %dx%d", qa.Rows(), qa.Cols(), qb.Rows(), qb.Cols())
	}
	da, db := qa.Data(), qb.Data()
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("answer diverged at %d: %v vs %v", i, da[i], db[i])
		}
	}
}
