package core

import (
	"math"
	"math/rand"
	"testing"

	"swsketch/internal/window"
)

// unitRow returns a random unit-norm row (R = 1 regime, like BIBD).
func unitRow(rng *rand.Rand, d int) []float64 {
	r := randRow(rng, d)
	n := math.Sqrt(sqNorm(r))
	for i := range r {
		r[i] /= n
	}
	return r
}

func TestDIConfigValidation(t *testing.T) {
	base := DIConfig{N: 100, R: 1, L: 4, Ell: 32}
	for _, mut := range []func(DIConfig) DIConfig{
		func(c DIConfig) DIConfig { c.N = 0; return c },
		func(c DIConfig) DIConfig { c.R = 0.5; return c },
		func(c DIConfig) DIConfig { c.L = 0; return c },
		func(c DIConfig) DIConfig { c.L = 31; return c },
		func(c DIConfig) DIConfig { c.Ell = 1; return c },
	} {
		cfg := mut(base)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %+v", cfg)
				}
			}()
			NewDIFD(cfg, 4)
		}()
	}
}

func TestDILevelEll(t *testing.T) {
	c := DIConfig{N: 100, R: 1, L: 4, Ell: 64, MinEll: 4}
	if got := c.levelEll(4); got != 32 {
		t.Fatalf("levelEll(L) = %d, want Ell/2 = 32", got)
	}
	if got := c.levelEll(3); got != 16 {
		t.Fatalf("levelEll(L-1) = %d, want 16", got)
	}
	if got := c.levelEll(1); got != 4 {
		t.Fatalf("levelEll(1) = %d, want floor 4", got)
	}
}

func TestDIRowNormExceedsRPanics(t *testing.T) {
	di := NewDIFD(DIConfig{N: 100, R: 1, L: 3, Ell: 16}, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for norm > R")
		}
	}()
	di.Update([]float64{2, 0}, 0) // ‖a‖² = 4 > R = 1
}

func TestDIRSlackAllowsTolerance(t *testing.T) {
	di := NewDIFD(DIConfig{N: 100, R: 1, L: 3, Ell: 16, RSlack: 4.5}, 2)
	di.Update([]float64{2, 0}, 0) // allowed under slack
}

func TestDIOutOfOrderPanics(t *testing.T) {
	di := NewDIFD(DIConfig{N: 100, R: 1, L: 3, Ell: 16}, 2)
	di.Update([]float64{1, 0}, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	di.Update([]float64{1, 0}, 4)
}

func TestDIZeroRowIgnored(t *testing.T) {
	di := NewDIFD(DIConfig{N: 100, R: 1, L: 3, Ell: 16}, 2)
	di.Update([]float64{0, 0}, 0)
	if di.RowsStored() != 0 {
		t.Fatal("zero row should be ignored")
	}
}

func TestDIExactForTinyStream(t *testing.T) {
	// Before the first block closes, the raw open rows answer exactly.
	di := NewDIFD(DIConfig{N: 1000, R: 1, L: 4, Ell: 32}, 3)
	ex := window.NewExact(window.Seq(1000), 3)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		row := unitRow(rng, 3)
		di.Update(row, float64(i))
		ex.Update(row, float64(i))
	}
	if e := ex.CovaErr(di.Query(19)); e > 1e-9 {
		t.Fatalf("tiny stream error = %v", e)
	}
}

func TestDIBinaryCounterStructure(t *testing.T) {
	// After m completed level-1 blocks, level i must hold completed
	// blocks covering exactly the aligned ranges, newest last.
	di := NewDIFD(DIConfig{N: 64, R: 1, L: 4, Ell: 32}, 2)
	rng := rand.New(rand.NewSource(2))
	// cap1 = 64·1/16 = 4: each level-1 block closes after mass > 4.
	for i := 0; i < 60; i++ {
		di.Update(unitRow(rng, 2), float64(i))
	}
	if di.CompletedBlocks() == 0 {
		t.Fatal("no level-1 blocks completed")
	}
	for li := range di.levels {
		span := 1 << uint(li)
		for _, b := range di.levels[li] {
			if b.endIdx-b.startIdx+1 != span {
				t.Fatalf("level %d block spans [%d,%d], want span %d", li+1, b.startIdx, b.endIdx, span)
			}
			if (b.startIdx-1)%span != 0 {
				t.Fatalf("level %d block [%d,%d] misaligned", li+1, b.startIdx, b.endIdx)
			}
		}
	}
}

func TestDIFDErrorReasonableUnitNorms(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, d, win := 4000, 8, 500
	cfg := DIConfig{N: win, R: 1, L: 5, Ell: 64}
	di := NewDIFD(cfg, d)
	ex := window.NewExact(window.Seq(win), d)
	var errSum float64
	cnt := 0
	for i := 0; i < n; i++ {
		row := unitRow(rng, d)
		di.Update(row, float64(i))
		ex.Update(row, float64(i))
		if i > win && i%250 == 0 {
			errSum += ex.CovaErr(di.Query(float64(i)))
			cnt++
		}
	}
	if avg := errSum / float64(cnt); avg > 0.3 {
		t.Fatalf("DI-FD avg error = %v", avg)
	}
}

func TestDIFDErrorDecreasesWithSize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, d, win := 3000, 6, 400
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = unitRow(rng, d)
	}
	errAt := func(ell int) float64 {
		di := NewDIFD(DIConfig{N: win, R: 1, L: 5, Ell: ell, MinEll: 2}, d)
		ex := window.NewExact(window.Seq(win), d)
		var e float64
		cnt := 0
		for i := 0; i < n; i++ {
			di.Update(rows[i], float64(i))
			ex.Update(rows[i], float64(i))
			if i >= win && i%200 == 0 {
				e += ex.CovaErr(di.Query(float64(i)))
				cnt++
			}
		}
		return e / float64(cnt)
	}
	coarse, fine := errAt(8), errAt(96)
	if fine >= coarse {
		t.Fatalf("DI-FD error did not decrease with Ell: %v → %v", coarse, fine)
	}
}

func TestDIApproximatesWindowNotStream(t *testing.T) {
	win := 64
	di := NewDIFD(DIConfig{N: win, R: 1, L: 3, Ell: 32}, 2)
	for i := 0; i < 500; i++ {
		di.Update([]float64{1, 0}, float64(i))
	}
	for i := 500; i < 1000; i++ {
		di.Update([]float64{0, 1}, float64(i))
	}
	b := di.Query(999)
	var col0, col1 float64
	for i := 0; i < b.Rows(); i++ {
		col0 += b.At(i, 0) * b.At(i, 0)
		col1 += b.At(i, 1) * b.At(i, 1)
	}
	if col0 > float64(win)/4 {
		t.Fatalf("stale mass %v too large for window %d", col0, win)
	}
	if math.Abs(col1-float64(win)) > float64(win)/2 {
		t.Fatalf("window mass ≈ %v, want ≈ %d", col1, win)
	}
}

func TestDISpaceSublinear(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	win := 4096
	di := NewDIFD(DIConfig{N: win, R: 1, L: 6, Ell: 64}, 4)
	var peak int
	for i := 0; i < 3*win; i++ {
		di.Update(unitRow(rng, 4), float64(i))
		if n := di.RowsStored(); n > peak {
			peak = n
		}
	}
	if peak > win {
		t.Fatalf("DI-FD peak rows %d not sublinear in window %d", peak, win)
	}
}

func TestDIQueryCoverNoOverlapNoGapInCompleted(t *testing.T) {
	// Structural: re-run the query's cover logic and verify the chosen
	// blocks tile [startIdx..m] without overlaps or gaps (except
	// expired prefix positions).
	rng := rand.New(rand.NewSource(6))
	win := 128
	di := NewDIFD(DIConfig{N: win, R: 1, L: 4, Ell: 32}, 3)
	for i := 0; i < 700; i++ {
		di.Update(unitRow(rng, 3), float64(i))
	}
	tQ := 699.0
	cutoff := tQ - float64(win)
	di.expire(cutoff)
	startIdx := di.m + 1
	for _, b := range di.levels[0] {
		if b.startT > cutoff {
			startIdx = b.startIdx
			break
		}
	}
	covered := map[int]bool{}
	pos := startIdx
	for pos <= di.m {
		span := 1
		for span*2 <= di.m-pos+1 && (pos-1)%(span*2) == 0 {
			span *= 2
		}
		blk := di.findBlock(pos, pos+span-1)
		for blk == nil && span > 1 {
			span /= 2
			blk = di.findBlock(pos, pos+span-1)
		}
		if blk == nil {
			pos++
			continue
		}
		for j := blk.startIdx; j <= blk.endIdx; j++ {
			if covered[j] {
				t.Fatalf("block index %d covered twice", j)
			}
			covered[j] = true
		}
		pos += span
	}
	for j := startIdx; j <= di.m; j++ {
		if !covered[j] {
			t.Fatalf("completed level-1 block %d inside window not covered", j)
		}
	}
}

func TestDIRPAndDIHashRun(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	win, d := 256, 5
	cfg := DIConfig{N: win, R: 1, L: 4, Ell: 256, MinEll: 16}
	rp := NewDIRP(cfg, d, 99)
	hs := NewDIHash(cfg, d, 99)
	ex := window.NewExact(window.Seq(win), d)
	for i := 0; i < 1500; i++ {
		row := unitRow(rng, d)
		rp.Update(row, float64(i))
		hs.Update(row, float64(i))
		ex.Update(row, float64(i))
	}
	if e := ex.CovaErr(rp.Query(1499)); e > 0.8 {
		t.Fatalf("DI-RP error = %v", e)
	}
	if e := ex.CovaErr(hs.Query(1499)); e > 0.8 {
		t.Fatalf("DI-HASH error = %v", e)
	}
	if rp.Name() != "DI-RP" || hs.Name() != "DI-HASH" {
		t.Fatal("names wrong")
	}
}

func TestDIName(t *testing.T) {
	if NewDIFD(DIConfig{N: 10, R: 1, L: 2, Ell: 8}, 2).Name() != "DI-FD" {
		t.Fatal("Name wrong")
	}
}

func TestDIRawOverflowFallsBackToActiveSketch(t *testing.T) {
	// Rows with squared norms far below 1 violate the paper's norm
	// assumption; the open block then holds many more rows than the
	// answer budget. The raw buffer must cap at Ell and the query fall
	// back to the level-1 active sketch, keeping space bounded.
	rng := rand.New(rand.NewSource(42))
	win := 512
	cfg := DIConfig{N: win, R: 100, L: 4, Ell: 16, RSlack: 2}
	di := NewDIFD(cfg, 3)
	ex := window.NewExact(window.Seq(win), 3)
	for i := 0; i < 2000; i++ {
		row := randRow(rng, 3)
		for j := range row {
			row[j] *= 0.02 // squared norm ~1e-3: thousands of rows per block
		}
		di.Update(row, float64(i))
		ex.Update(row, float64(i))
		if n := di.RowsStored(); n > win {
			t.Fatalf("at %d: DI stores %d rows, window is %d", i, n, win)
		}
	}
	b := di.Query(1999)
	if b.Rows() == 0 {
		t.Fatal("query returned nothing despite live data")
	}
	if e := ex.CovaErr(b); e > 1.0 {
		t.Fatalf("fallback query error = %v", e)
	}
}

func TestDIISVDRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	win, d := 256, 6
	di := NewDIISVD(DIConfig{N: win, R: 1, L: 4, Ell: 64, MinEll: 8}, d)
	ex := window.NewExact(window.Seq(win), d)
	for i := 0; i < 1200; i++ {
		row := unitRow(rng, d)
		di.Update(row, float64(i))
		ex.Update(row, float64(i))
	}
	if e := ex.CovaErr(di.Query(1199)); e > 0.8 {
		t.Fatalf("DI-ISVD error = %v", e)
	}
	if di.Name() != "DI-ISVD" {
		t.Fatal("name wrong")
	}
}

func TestDIQueryRange(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	win, d := 256, 4
	di := NewDIFD(DIConfig{N: win, R: 1, L: 5, Ell: 64}, d)
	ex := window.NewExact(window.Seq(win), d)
	rows := make([][]float64, 800)
	for i := range rows {
		rows[i] = unitRow(rng, d)
		di.Update(rows[i], float64(i))
		ex.Update(rows[i], float64(i))
	}
	// Sub-range: the middle half of the window.
	from, to := 799.0-192, 799.0-64
	b := di.QueryRange(from, to)
	if b.Rows() == 0 {
		t.Fatal("range query returned nothing")
	}
	// Exact reference for that range.
	sub := window.NewExact(window.Seq(win), d)
	for i := int(from) + 1; i <= int(to); i++ {
		sub.Update(rows[i], float64(i))
	}
	if e := sub.CovaErr(b); e > 0.5 {
		t.Fatalf("range query error = %v", e)
	}
	// The mass must be in the right ballpark (range has 128 unit rows).
	if m := b.FrobeniusSq(); m < 64 || m > 192 {
		t.Fatalf("range mass = %v, want ≈ 128", m)
	}
}

func TestDIQueryRangeFullWindowMatchesQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	win, d := 128, 3
	di := NewDIFD(DIConfig{N: win, R: 1, L: 4, Ell: 32}, d)
	for i := 0; i < 500; i++ {
		di.Update(unitRow(rng, d), float64(i))
	}
	full := di.Query(499)
	ranged := di.QueryRange(499-float64(win), 499)
	if !full.Equal(ranged, 1e-12) {
		t.Fatalf("full-window range (%d rows) differs from Query (%d rows)",
			ranged.Rows(), full.Rows())
	}
}

func TestDIQueryRangeValidation(t *testing.T) {
	di := NewDIFD(DIConfig{N: 64, R: 1, L: 3, Ell: 16}, 2)
	di.Update([]float64{1, 0}, 100)
	for _, f := range []func(){
		func() { di.QueryRange(5, 5) },   // empty
		func() { di.QueryRange(10, 50) }, // before the window
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDIQueryRangeOpenRowsOnly(t *testing.T) {
	di := NewDIFD(DIConfig{N: 64, R: 1, L: 3, Ell: 16}, 2)
	for i := 0; i < 5; i++ {
		di.Update([]float64{1, 0}, float64(i))
	}
	b := di.QueryRange(1, 4) // rows 2, 3, 4 (all still raw)
	if b.Rows() != 3 {
		t.Fatalf("open-rows range = %d rows, want 3", b.Rows())
	}
}
