package core

import (
	"fmt"
	"math"

	"swsketch/internal/mat"
	"swsketch/internal/stream"
	"swsketch/internal/trace"
	"swsketch/internal/window"
)

// PairedWindowSketch generalises WindowSketch to two correlated row
// streams A and B observed in lockstep: row pairs (aᵢ, bᵢ) arrive
// together, and the sketch answers approximate matrix multiplication
// (AMM) queries — an estimate of AᵀB restricted to the sliding window
// — next to the ordinary stacked-row contract.
//
// The embedding that makes the window machinery reusable: a paired
// sketch is also a plain WindowSketch over STACKED rows [a|b] of
// dimension dA+dB, so every existing ingest route (batch, sparse,
// WAL replay, the /v2 stream protocol) moves paired data without
// change, and the frameworks' level/interval structures never learn
// the row is split. Query returns the stacked co-sketch rows [X|Y];
// AmmApproximation derives the AᵀB estimate XᵀY from them.
//
// Implementations must be judged by the AMM metric
// ‖AᵀB − XᵀY‖₂/(‖A‖F·‖B‖F): the stacked output deliberately does NOT
// satisfy the single-stream covariance guarantee (a co-sketch spends
// its rows on the product spectrum, not the stacked spectrum).
type PairedWindowSketch interface {
	WindowSketch
	// UpdatePaired feeds one row pair arriving at timestamp t;
	// equivalent to Update([a|b], t).
	UpdatePaired(t float64, rowA, rowB []float64)
	// AmmApproximation returns the windowed AᵀB estimate (dA×dB rows)
	// for the window ending at time t.
	AmmApproximation(t float64) [][]float64
	// AmmDims reports the two side dimensions (dA, dB).
	AmmDims() (int, int)
}

// AMM kinds for the snapshot codec.
const (
	ammKindLM = 1
	ammKindDI = 2
)

// AMM lifts the COD co-sketch (stream.COD) to sliding windows through
// the existing LM or DI framework — the construction of "Optimal
// Approximate Matrix Multiplication over Sliding Window" (arXiv
// 2502.17940): COD is deterministic and mergeable exactly like FD, so
// the frameworks' block-level machinery (LM's logarithmic levels, DI's
// dyadic intervals) lifts it unchanged; only the per-block sketch
// factory differs. The stacked dimension d = dA+dB is what the inner
// framework sees; block mass is ‖a‖²+‖b‖², so the frameworks' mass
// thresholds charge both sides — the norm regime the paper's analysis
// assumes.
type AMM struct {
	inner WindowSketch // *LM or *DI over stacked rows
	dA    int
	dB    int
	kind  int
	opts  stream.FDOpts // COD buffer tuning, recorded for snapshots

	// Rebuild parameters for the snapshot codec.
	spec  window.Spec // LM kind
	ell   int         // LM kind: block mass threshold and COD size
	b     int         // LM kind: blocks per level
	dicfg DIConfig    // DI kind (validated)

	tr *trace.Tracer
}

func checkAmmDims(dA, dB int) {
	if dA < 1 || dB < 1 {
		panic(fmt.Sprintf("core: AMM needs dA ≥ 1 and dB ≥ 1, got %d and %d", dA, dB))
	}
}

// NewLMAMM builds the LM-lifted co-sketch: COD blocks of ℓ row pairs
// under the Logarithmic Method, for sequence- or time-based windows.
// ell is both the block mass threshold and the per-block co-sketch
// size; b is blocks per level, as in NewLMFD.
func NewLMAMM(spec window.Spec, dA, dB, ell, b int) *AMM {
	return NewLMAMMOpts(spec, dA, dB, ell, b, stream.FDOpts{})
}

// NewLMAMMOpts is NewLMAMM with the FastFD-style buffer discipline
// applied to every block co-sketch (see stream.FDOpts; COD shares
// FD's buffer/α semantics). The zero FDOpts reproduces NewLMAMM
// exactly, snapshot bytes included.
func NewLMAMMOpts(spec window.Spec, dA, dB, ell, b int, o stream.FDOpts) *AMM {
	checkAmmDims(dA, dB)
	if ell < 2 {
		panic(fmt.Sprintf("core: LM-AMM needs ell ≥ 2, got %d", ell))
	}
	o = o.Normalize()
	lm := NewLM(spec, dA+dB, float64(ell), b, "LM-AMM", func(int) stream.Mergeable {
		return stream.NewCODOpts(ell, dA, dB, o)
	})
	return &AMM{inner: lm, dA: dA, dB: dB, kind: ammKindLM, opts: o, spec: spec, ell: ell, b: b}
}

// NewDIAMM builds the DI-lifted co-sketch: per-level COD sketches
// under the Dyadic Interval framework, for sequence windows with a
// known stacked-norm bound R (every pair must satisfy ‖a‖²+‖b‖² ≤ R).
// The per-level co-sketch sizes follow cfg exactly as in NewDIFD.
func NewDIAMM(cfg DIConfig, dA, dB int) *AMM {
	return NewDIAMMOpts(cfg, dA, dB, stream.FDOpts{})
}

// NewDIAMMOpts is NewDIAMM with COD buffer tuning (see NewLMAMMOpts).
func NewDIAMMOpts(cfg DIConfig, dA, dB int, o stream.FDOpts) *AMM {
	checkAmmDims(dA, dB)
	c := cfg.validate()
	o = o.Normalize()
	di := NewDI(cfg, dA+dB, "DI-AMM", func(level, _ int) stream.Sketch {
		ell := c.levelEll(level)
		if ell < 2 {
			ell = 2
		}
		return stream.NewCODOpts(ell, dA, dB, o)
	})
	return &AMM{inner: di, dA: dA, dB: dB, kind: ammKindDI, opts: o, dicfg: c}
}

// AutoAMM returns an LM-lifted co-sketch sized for target relative AMM
// error eps. Calibration mirrors AutoLMFD: COD's product error scales
// as c/ℓ just like FD's covariance error (the σ-vs-σ² charge cancels
// against the ‖A‖F‖B‖F normalisation), so ℓ ≈ 1/ε with b ≈ 1/(3ε)
// blocks per level for the expiring-block term.
func AutoAMM(spec window.Spec, dA, dB int, eps float64) *AMM {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("core: AutoAMM target eps %v outside (0,1)", eps))
	}
	ell := clampInt(int(math.Ceil(1/eps)), 8, 512)
	b := clampInt(int(math.Ceil(1/(3*eps))), 4, 64)
	return NewLMAMM(spec, dA, dB, ell, b)
}

// SetTracer attaches a tracer to the inner framework (block closes,
// merges, and COD shrink spans flow from there).
func (a *AMM) SetTracer(tr *trace.Tracer) {
	a.tr = tr
	if t, ok := a.inner.(trace.Traceable); ok {
		t.SetTracer(tr)
	}
}

// Update feeds one stacked row [a|b] (the WindowSketch contract).
func (a *AMM) Update(row []float64, t float64) { a.inner.Update(row, t) }

// UpdateBatch feeds stacked rows in order (the WindowSketch contract).
func (a *AMM) UpdateBatch(rows [][]float64, times []float64) { a.inner.UpdateBatch(rows, times) }

// UpdateSparse feeds one sparse stacked row; both inner frameworks
// exploit sparsity end-to-end.
func (a *AMM) UpdateSparse(row mat.SparseRow, t float64) {
	a.inner.(SparseUpdater).UpdateSparse(row, t)
}

// UpdatePaired feeds one row pair arriving at timestamp t. The pair is
// validated against (dA, dB) — the mismatched-dimension failure mode
// the stacked route cannot distinguish — then stacked and ingested.
func (a *AMM) UpdatePaired(t float64, rowA, rowB []float64) {
	if len(rowA) != a.dA || len(rowB) != a.dB {
		panic(fmt.Sprintf("core: %s pair lengths (%d,%d), want (%d,%d)", a.Name(), len(rowA), len(rowB), a.dA, a.dB))
	}
	row := make([]float64, a.dA+a.dB)
	copy(row[:a.dA], rowA)
	copy(row[a.dA:], rowB)
	a.inner.Update(row, t)
}

// Query returns the stacked co-sketch rows [X|Y] for the window ending
// at t — the raw material AmmApproximation derives the product from,
// kept as the WindowSketch answer so generic harness checks (batch
// bit-equality, snapshot continuation, expiry) apply unchanged.
func (a *AMM) Query(t float64) *mat.Dense { return a.inner.Query(t) }

// AmmProduct returns the windowed AᵀB estimate XᵀY as a dA×dB matrix.
func (a *AMM) AmmProduct(t float64) *mat.Dense {
	return StackedProduct(a.Query(t), a.dA, a.dB)
}

// AmmApproximation implements PairedWindowSketch: the AᵀB estimate as
// dA rows of length dB.
func (a *AMM) AmmApproximation(t float64) [][]float64 {
	p := a.AmmProduct(t)
	out := make([][]float64, a.dA)
	for i := range out {
		out[i] = p.Row(i)
	}
	return out
}

// AmmDims implements PairedWindowSketch.
func (a *AMM) AmmDims() (int, int) { return a.dA, a.dB }

// RowsStored reports the inner framework's space usage in row pairs.
func (a *AMM) RowsStored() int { return a.inner.RowsStored() }

// Name implements WindowSketch ("LM-AMM" or "DI-AMM").
func (a *AMM) Name() string { return a.inner.Name() }

// Stats implements Introspector: the inner framework's stats plus the
// side dimensions.
func (a *AMM) Stats() map[string]float64 {
	m := map[string]float64{}
	if in, ok := a.inner.(Introspector); ok {
		m = in.Stats()
	}
	m["d_a"] = float64(a.dA)
	m["d_b"] = float64(a.dB)
	return m
}

// StackedProduct derives the AᵀB estimate XᵀY from stacked co-sketch
// rows [X|Y] (n×(dA+dB)) — the inverse of the stacked embedding,
// shared by the AMM query path, the conformance suite, and the bench
// oracle comparisons.
func StackedProduct(q *mat.Dense, dA, dB int) *mat.Dense {
	if q.Cols() != dA+dB {
		panic(fmt.Sprintf("core: stacked rows have %d columns, want %d+%d", q.Cols(), dA, dB))
	}
	n := q.Rows()
	p := mat.NewDense(dA, dB)
	if n == 0 {
		return p
	}
	x := mat.NewDense(n, dA)
	y := mat.NewDense(n, dB)
	for i := 0; i < n; i++ {
		row := q.Row(i)
		copy(x.Row(i), row[:dA])
		copy(y.Row(i), row[dA:])
	}
	mat.MulTo(p, x.T(), y)
	return p
}

var (
	_ WindowSketch       = (*AMM)(nil)
	_ PairedWindowSketch = (*AMM)(nil)
	_ SparseUpdater      = (*AMM)(nil)
	_ Introspector       = (*AMM)(nil)
)
