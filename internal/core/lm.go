package core

import (
	"fmt"

	"swsketch/internal/mat"
	"swsketch/internal/stream"
	"swsketch/internal/trace"
	"swsketch/internal/window"
)

// lmBlock is one block of the Logarithmic Method. A block covers a
// contiguous span of rows; its "size" is the total squared norm it
// covers. Fresh blocks (the active block and large-norm singleton
// blocks) hold their rows raw; the first merge converts them into a
// streaming sketch — the fast path that gives LM-FD its O(d·log εNR)
// amortised update cost.
type lmBlock struct {
	sk           stream.Mergeable // nil while the block is raw
	raw          []mat.SparseRow  // raw rows when sk == nil (sparse storage)
	rawTimes     []float64        // arrival times of the raw rows
	start, end   float64
	size         float64
	singletonCap float64 // > 0 marks a single oversized row of that mass
}

// sketch materialises the block's mergeable sketch, converting raw
// rows on first use.
func (b *lmBlock) sketch(factory stream.MergeableFactory, d int) stream.Mergeable {
	if b.sk == nil {
		b.sk = factory(d)
		feedRows(b.sk, b.raw, d)
		b.raw, b.rawTimes = nil, nil
	}
	return b.sk
}

// feedRows streams sparse rows into a sketch, using its sparse ingest
// path when available.
func feedRows(sk stream.Sketch, rows []mat.SparseRow, d int) {
	if su, ok := sk.(stream.SparseUpdatable); ok {
		for _, r := range rows {
			su.UpdateSparse(r)
		}
		return
	}
	for _, r := range rows {
		sk.Update(r.Dense(d))
	}
}

// rows reports the block's space usage in rows.
func (b *lmBlock) rows() int {
	if b.sk != nil {
		return b.sk.RowsStored()
	}
	return len(b.raw)
}

// mergeFrom absorbs o into b, combining spans, sizes, and sketches.
func (b *lmBlock) mergeFrom(o *lmBlock, factory stream.MergeableFactory, d int) {
	b.sketch(factory, d).Merge(o.sketch(factory, d))
	if o.start < b.start {
		b.start = o.start
	}
	if o.end > b.end {
		b.end = o.end
	}
	b.size += o.size
	b.singletonCap = 0
}

// LM is the Logarithmic Method of Section 6: it maintains levels of
// exponentially growing blocks, each holding a mergeable streaming
// sketch of size ℓ, with b blocks per level. Level-i blocks have mass
// in [2^{i-1}ℓ, 2^i ℓ]; when a level exceeds b blocks its two oldest
// blocks merge into the next level. A query merges every live block
// into one sketch of size ℓ. LM works for both sequence- and
// time-based windows; its error guarantee is ε with b = Θ(1/ε) blocks
// per level and per-block sketches of error ε/8 (Theorem 6.1).
//
// Rows with squared norm ≥ ℓ ride as singleton blocks: they stay
// unmerged (and exact) until promoted to a level whose block capacity
// 2^i·ℓ covers their mass, after which they merge like regular blocks
// (the "Remark" of Section 6.2).
type LM struct {
	spec    window.Spec
	d       int
	ell     float64 // block mass threshold (= per-block sketch rows for FD)
	b       int     // blocks per level
	factory stream.MergeableFactory
	// fdOpts is the FastFD tuning baked into the factory — recorded so
	// snapshots can rebuild an identically-tuned factory on restore.
	// Meaningful for LM-FD only; zero elsewhere.
	fdOpts stream.FDOpts

	// levels[0] is level 1 (most recent); each level holds blocks
	// oldest-first. The active block is separate.
	levels [][]lmBlock
	active lmBlock
	name   string
	lastT  float64
	seen   bool

	// merges counts block merges performed by rebalance and snapshots
	// the MarshalBinary calls — structural churn counters surfaced by
	// Stats for operational monitoring.
	merges    uint64
	snapshots uint64

	tr *trace.Tracer
}

// SetTracer attaches a tracer: structural transitions (active-block
// closes, merges, singleton promotions, expiry) emit events, and block
// sketches created afterwards inherit the tracer (FD blocks then emit
// fd_shrink spans). Attach before the first Update — blocks sketched
// earlier keep emitting nowhere.
func (l *LM) SetTracer(tr *trace.Tracer) { l.tr = tr }

// mkSketch builds a block sketch via the factory and attaches the
// tracer when the sketch supports it. All block-sketch creation goes
// through here (or through mergeFrom, which receives it bound).
func (l *LM) mkSketch(d int) stream.Mergeable {
	sk := l.factory(d)
	if t, ok := sk.(trace.Traceable); ok {
		t.SetTracer(l.tr)
	}
	return sk
}

// NewLM builds a Logarithmic Method sketch from any mergeable
// streaming-sketch factory. ell is both the active block's mass
// threshold and the nominal per-block sketch size; b is the number of
// blocks per level (≈ 8/ε in the analysis).
func NewLM(spec window.Spec, d int, ell float64, b int, name string, factory stream.MergeableFactory) *LM {
	if d < 1 {
		panic(fmt.Sprintf("core: LM needs d ≥ 1, got %d", d))
	}
	if ell < 1 {
		panic(fmt.Sprintf("core: LM needs ell ≥ 1, got %v", ell))
	}
	if b < 2 {
		panic(fmt.Sprintf("core: LM needs b ≥ 2 blocks per level, got %d", b))
	}
	return &LM{spec: spec, d: d, ell: ell, b: b, factory: factory, name: name}
}

// NewLMFD builds LM over FrequentDirections blocks of ℓ rows: the
// paper's LM-FD (Corollary 6.1), its recommended general-purpose
// sliding-window sketch.
func NewLMFD(spec window.Spec, d, ell, b int) *LM {
	return NewLMFDOpts(spec, d, ell, b, stream.FDOpts{})
}

// NewLMFDOpts builds LM-FD with FastFD ingest tuning applied to every
// block sketch: o.Buffer widens each block's working buffer for
// amortized shrinks and o.Alpha tunes the shrink cadence. The zero
// FDOpts reproduces NewLMFD exactly (including snapshot bytes); the
// covariance guarantee holds for any valid (b, α).
func NewLMFDOpts(spec window.Spec, d, ell, b int, o stream.FDOpts) *LM {
	o = o.Normalize()
	l := NewLM(spec, d, float64(ell), b, "LM-FD", func(dim int) stream.Mergeable {
		return stream.NewFDOpts(ell, dim, o)
	})
	l.fdOpts = o
	return l
}

// NewLMHash builds LM over feature-hashing blocks of ℓ buckets: the
// appendix's LM-HASH (Corollary A.1). All blocks share one hash
// family, which is what makes their merges exact additions.
func NewLMHash(spec window.Spec, d, ell, b int, seed uint64) *LM {
	fam := stream.NewHashFamily(seed)
	return NewLM(spec, d, float64(ell), b, "LM-HASH", func(dim int) stream.Mergeable {
		return fam.NewSketch(ell, dim)
	})
}

// Update implements Algorithm 6.1.
func (l *LM) Update(row []float64, t float64) {
	if len(row) != l.d {
		panic(fmt.Sprintf("core: LM row length %d, want %d", len(row), l.d))
	}
	checkRowFinite("LM", row)
	l.ingest(mat.SparseFromDense(row), t)
}

// UpdateBatch ingests rows in order with one up-front validation pass.
// Expiry and level rebalancing run per row exactly as under Update, so
// the resulting block structure (and hence every query answer) is
// identical to row-at-a-time ingestion.
func (l *LM) UpdateBatch(rows [][]float64, times []float64) {
	validateBatch("LM", rows, times, l.d)
	for i, r := range rows {
		l.ingest(mat.SparseFromDense(r), times[i])
	}
}

// UpdateSparse ingests a sparse row, equivalent to Update on its dense
// form but storing the raw-block copy sparsely — the memory and
// sketch-feed win for high-dimensional sparse streams. The row's
// slices are copied.
func (l *LM) UpdateSparse(row mat.SparseRow, t float64) {
	if m := row.MaxIdx(); m >= l.d {
		panic(fmt.Sprintf("core: LM sparse row index %d, dimension %d", m, l.d))
	}
	checkRowFinite("LM", row.Val)
	idx := make([]int, len(row.Idx))
	val := make([]float64, len(row.Val))
	copy(idx, row.Idx)
	copy(val, row.Val)
	l.ingest(mat.SparseRow{Idx: idx, Val: val}, t)
}

// ingest owns r (already copied).
func (l *LM) ingest(r mat.SparseRow, t float64) {
	if l.seen && t < l.lastT {
		panic(fmt.Sprintf("core: LM timestamp %v precedes %v", t, l.lastT))
	}
	l.lastT, l.seen = t, true
	l.expire(l.spec.Cutoff(t))

	w := r.SqNorm()
	if w == 0 {
		return
	}

	if w >= l.ell {
		// Oversized row: close the active block first (to preserve
		// arrival order across blocks), then push a singleton block.
		l.closeActive(t)
		l.pushLevel1(lmBlock{raw: []mat.SparseRow{r}, rawTimes: []float64{t}, start: t, end: t, size: w, singletonCap: w})
		l.rebalance()
		return
	}

	if len(l.active.raw) == 0 {
		l.active.start = t
	}
	l.active.raw = append(l.active.raw, r)
	l.active.rawTimes = append(l.active.rawTimes, t)
	l.active.end = t
	l.active.size += w
	if l.active.size > l.ell {
		l.closeActive(t)
		l.rebalance()
	}
}

// closeActive moves a non-empty active block to level 1.
func (l *LM) closeActive(t float64) {
	if len(l.active.raw) == 0 {
		return
	}
	blk := l.active
	l.active = lmBlock{start: t, end: t}
	l.tr.Emit(l.name, trace.KindLMClose, t, float64(len(blk.raw)), blk.size)
	l.pushLevel1(blk)
}

func (l *LM) pushLevel1(blk lmBlock) {
	if len(l.levels) == 0 {
		l.levels = append(l.levels, nil)
	}
	l.levels[0] = append(l.levels[0], blk)
}

// rebalance restores the ≤ b blocks-per-level invariant bottom-up:
// while a level overflows, its two oldest blocks merge into a block of
// the next level (levels[i] is paper level i+1, with block mass
// capacity 2^{i+1}·ℓ). A singleton block whose mass exceeds the next
// level's capacity is promoted alone — the Section 6.2 remark — until
// a level large enough to absorb it is reached.
func (l *LM) rebalance() {
	for i := 0; i < len(l.levels); i++ {
		for len(l.levels[i]) > l.b {
			capacity := l.ell * float64(uint64(1)<<uint(i+1))
			lv := l.levels[i]
			if lv[0].singletonCap > capacity || lv[1].singletonCap > capacity {
				// One of the two oldest cannot merge at this level:
				// promote the oldest alone, preserving arrival order.
				promoted := lv[0]
				l.levels[i] = lv[1:]
				l.tr.Emit(l.name, trace.KindLMPromote, promoted.end, float64(i+1), promoted.size)
				l.appendLevel(i+1, promoted)
				continue
			}
			lv[0].mergeFrom(&lv[1], l.mkSketch, l.d)
			l.merges++
			merged := lv[0]
			l.levels[i] = lv[2:]
			l.tr.Emit(l.name, trace.KindLMMerge, merged.end, float64(i+1), merged.size)
			l.appendLevel(i+1, merged)
		}
	}
}

func (l *LM) appendLevel(i int, blk lmBlock) {
	for len(l.levels) <= i {
		l.levels = append(l.levels, nil)
	}
	l.levels[i] = append(l.levels[i], blk)
}

// expire removes blocks that lie entirely outside the window and
// trims expired rows out of the (raw, timestamped) active block.
// Levels hold blocks oldest-first, so expiry pops from each level's
// front; a sketched block that merely straddles the cutoff is kept
// whole — its stale rows are the algorithm's budgeted expiring-block
// error. Emptied trailing levels are dropped.
func (l *LM) expire(cutoff float64) {
	dropped := 0
	for i := range l.levels {
		lv := l.levels[i]
		drop := 0
		for drop < len(lv) && lv[drop].end <= cutoff {
			drop++
		}
		if drop > 0 {
			l.levels[i] = lv[drop:]
			dropped += drop
		}
	}
	for n := len(l.levels); n > 0 && len(l.levels[n-1]) == 0; n = len(l.levels) {
		l.levels = l.levels[:n-1]
	}
	// The active block is raw, so it can be trimmed exactly.
	a := &l.active
	drop := 0
	for drop < len(a.raw) && a.rawTimes[drop] <= cutoff {
		a.size -= a.raw[drop].SqNorm()
		drop++
	}
	if drop > 0 {
		a.raw = a.raw[drop:]
		a.rawTimes = a.rawTimes[drop:]
		if len(a.raw) == 0 {
			a.size = 0
		} else {
			a.start = a.rawTimes[0]
			if a.size < 0 {
				a.size = 0
			}
		}
	}
	if dropped > 0 || drop > 0 {
		l.tr.Emit(l.name, trace.KindLMExpire, cutoff, float64(dropped), float64(drop))
	}
}

// Query implements Algorithm 6.2: merge every live block sketch (plus
// the active block's raw rows) into a fresh sketch of size ℓ.
func (l *LM) Query(t float64) *mat.Dense {
	l.expire(l.spec.Cutoff(t))
	acc := l.mkSketch(l.d)
	// Merge oldest (highest level) first so FD's shrinking treats the
	// window as a stream in arrival order.
	for i := len(l.levels) - 1; i >= 0; i-- {
		for j := range l.levels[i] {
			blk := &l.levels[i][j]
			if blk.sk == nil {
				// Raw block: feed rows directly; cheaper than building
				// a throwaway sketch.
				feedRows(acc, blk.raw, l.d)
				continue
			}
			acc.Merge(blk.sk)
		}
	}
	feedRows(acc, l.active.raw, l.d)
	return acc.Matrix()
}

// RowsStored reports the total rows across all block sketches, raw
// blocks, and the active block.
func (l *LM) RowsStored() int {
	n := len(l.active.raw)
	for i := range l.levels {
		for j := range l.levels[i] {
			n += l.levels[i][j].rows()
		}
	}
	return n
}

// Levels reports the current number of levels (for tests and
// instrumentation).
func (l *LM) Levels() int { return len(l.levels) }

// blocksAt returns the block count of 1-based level i (0 if absent).
func (l *LM) blocksAt(i int) int {
	if i < 1 || i > len(l.levels) {
		return 0
	}
	return len(l.levels[i-1])
}

// Name implements WindowSketch.
func (l *LM) Name() string { return l.name }

// Stats implements Introspector: level occupancy (total plus one
// level<i>_blocks entry per live level), raw-vs-sketched block split,
// active-block fill, merge and snapshot counters, and — when the block
// sketches expose a shrink count (FD does) — the total shrinks across
// live blocks.
func (l *LM) Stats() map[string]float64 {
	m := map[string]float64{
		"levels":           float64(len(l.levels)),
		"blocks_per_level": float64(l.b),
		"active_rows":      float64(len(l.active.raw)),
		"active_mass":      l.active.size,
		"merges":           float64(l.merges),
		"snapshots":        float64(l.snapshots),
	}
	blocks, rawBlocks, shrinks := 0, 0, uint64(0)
	haveShrinks := false
	amort := 0.0
	for i := range l.levels {
		m[fmt.Sprintf("level%d_blocks", i+1)] = float64(len(l.levels[i]))
		for j := range l.levels[i] {
			blk := &l.levels[i][j]
			blocks++
			if blk.sk == nil {
				rawBlocks++
				continue
			}
			if sc, ok := blk.sk.(interface{ Shrinks() uint64 }); ok {
				shrinks += sc.Shrinks()
				haveShrinks = true
			}
			if am, ok := blk.sk.(interface{ Amortization() float64 }); ok {
				if a := am.Amortization(); a > amort {
					amort = a
				}
			}
		}
	}
	m["blocks"] = float64(blocks)
	m["blocks_raw"] = float64(rawBlocks)
	m["blocks_sketched"] = float64(blocks - rawBlocks)
	if haveShrinks {
		m["fd_shrinks"] = float64(shrinks)
		m["fd_amortization"] = amort
	}
	return m
}

var (
	_ WindowSketch = (*LM)(nil)
	_ Introspector = (*LM)(nil)
)

// NewLMRP builds LM over random-projection blocks. The paper's
// appendix only pairs RP with the DI framework, but RP is mergeable
// too (the sum of projections built from independent random columns is
// a projection of the concatenated stream), so LM-RP is provided as a
// natural extension; it trades LM-FD's determinism for O(ℓd) updates
// with no SVD in the merge path.
func NewLMRP(spec window.Spec, d, ell, b int, seed int64) *LM {
	next := seed
	return NewLM(spec, d, float64(ell), b, "LM-RP", func(dim int) stream.Mergeable {
		next++
		return stream.NewRP(ell, dim, next)
	})
}
