package core

import (
	"fmt"
	"math"
	"math/rand"

	"swsketch/internal/mat"
	"swsketch/internal/stream"
	"swsketch/internal/trace"
	"swsketch/internal/window"
)

// candidate is a row retained by a sampler queue: the row, its arrival
// timestamp, its squared norm, and its priority key (log-space, larger
// is higher priority).
type candidate struct {
	row []float64
	t   float64
	w   float64
	key float64
}

// swrQueue is the monotone candidate deque of Algorithm 5.1 for one
// independent sample: keys are strictly decreasing from front to back,
// so the front is the current top-priority row of the window and every
// later element is the top-priority row of some suffix.
type swrQueue struct {
	items []candidate
}

// push inserts a new candidate, evicting trailing candidates whose
// priority it dominates (they can never become the window maximum).
// It returns the number evicted.
func (q *swrQueue) push(c candidate) int {
	evicted := 0
	for n := len(q.items); n > 0 && q.items[n-1].key < c.key; n = len(q.items) {
		q.items = q.items[:n-1]
		evicted++
	}
	q.items = append(q.items, c)
	return evicted
}

// expire drops candidates with timestamps at or before the cutoff,
// returning the number dropped.
func (q *swrQueue) expire(cutoff float64) int {
	drop := 0
	for drop < len(q.items) && q.items[drop].t <= cutoff {
		drop++
	}
	if drop > 0 {
		q.items = q.items[drop:]
	}
	return drop
}

// top returns the current sample (the highest-priority live row).
func (q *swrQueue) top() (candidate, bool) {
	if len(q.items) == 0 {
		return candidate{}, false
	}
	return q.items[0], true
}

// SWR samples ℓ rows with replacement, with probability proportional
// to squared norms, over a sliding window (Algorithm 5.1). It keeps ℓ
// independent candidate deques; the expected total number of
// candidates is O(ℓ·log NR) (Lemma 5.1). SWR works for both window
// types and its output rows are (rescaled) rows of A — the sketch is
// interpretable.
type SWR struct {
	spec   window.Spec
	d      int
	ell    int
	rng    *rand.Rand
	queues []swrQueue
	norms  window.NormTracker
	lastT  float64
	seen   bool
	tr     *trace.Tracer
}

// SetTracer attaches a tracer: ingests that evict candidates emit
// sampler_evict events, and an EH-backed norm tracker (if attached
// first) emits eh_merge events.
func (s *SWR) SetTracer(tr *trace.Tracer) {
	s.tr = tr
	if t, ok := s.norms.(trace.Traceable); ok {
		t.SetTracer(tr)
	}
}

// NewSWR returns an SWR sampler of ℓ rows over dimension d. The
// Frobenius mass used for rescaling is tracked exactly (one scalar per
// live row); use SetNormTracker to switch to the EH approximation.
func NewSWR(spec window.Spec, ell, d int, seed int64) *SWR {
	if ell < 1 || d < 1 {
		panic(fmt.Sprintf("core: SWR needs ell ≥ 1 and d ≥ 1, got %d, %d", ell, d))
	}
	return &SWR{
		spec:   spec,
		d:      d,
		ell:    ell,
		rng:    rand.New(rand.NewSource(seed)),
		queues: make([]swrQueue, ell),
		norms:  window.NewExactNorms(spec),
	}
}

// SetNormTracker replaces the Frobenius-mass tracker (e.g. with the
// exponential-histogram approximation). Call before the first Update.
func (s *SWR) SetNormTracker(nt window.NormTracker) { s.norms = nt }

// Update feeds one row. Zero rows carry no sampling mass and are only
// used to advance the expiry clock.
func (s *SWR) Update(row []float64, t float64) {
	if len(row) != s.d {
		panic(fmt.Sprintf("core: SWR row length %d, want %d", len(row), s.d))
	}
	checkRowFinite("SWR", row)
	if w := s.ingestRow(row, t); w > 0 {
		s.norms.Add(t, w)
	}
}

// UpdateBatch feeds rows in order, validating once and folding the
// whole batch's masses into the norm tracker in one call (one EH
// canonicalization instead of len(rows)). Priority keys are drawn in
// the same order as repeated Update calls, so the candidate queues —
// and with the exact tracker, every query answer — are identical.
func (s *SWR) UpdateBatch(rows [][]float64, times []float64) {
	validateBatch("SWR", rows, times, s.d)
	ts := make([]float64, 0, len(rows))
	ws := make([]float64, 0, len(rows))
	for i, r := range rows {
		if w := s.ingestRow(r, times[i]); w > 0 {
			ts = append(ts, times[i])
			ws = append(ws, w)
		}
	}
	s.norms.AddBatch(ts, ws)
}

// ingestRow advances the clock, expires, and pushes the row into every
// queue. It returns the row's squared norm (0 when it carried no mass)
// and leaves the norm-tracker accounting to the caller.
func (s *SWR) ingestRow(row []float64, t float64) float64 {
	if s.seen && t < s.lastT {
		panic(fmt.Sprintf("core: SWR timestamp %v precedes %v", t, s.lastT))
	}
	s.lastT, s.seen = t, true
	cutoff := s.spec.Cutoff(t)
	w := mat.SqNorm(row)
	if w == 0 {
		expired := 0
		for i := range s.queues {
			expired += s.queues[i].expire(cutoff)
		}
		if expired > 0 {
			s.tr.Emit("SWR", trace.KindSamplerEvict, t, 0, float64(expired))
		}
		return 0
	}
	dominated, expired := 0, 0
	var shared []float64 // lazily copied, shared across queues (read-only)
	for i := range s.queues {
		q := &s.queues[i]
		expired += q.expire(cutoff)
		key := stream.PriorityKey(s.rng, w)
		// Fast path: if the new key does not beat the back of a
		// non-empty queue it still must be appended (it is the max of
		// its own suffix), so a copy is always needed once.
		if shared == nil {
			shared = make([]float64, s.d)
			copy(shared, row)
		}
		dominated += q.push(candidate{row: shared, t: t, w: w, key: key})
	}
	if dominated > 0 || expired > 0 {
		s.tr.Emit("SWR", trace.KindSamplerEvict, t, float64(dominated), float64(expired))
	}
	return w
}

// Query returns the rescaled ℓ-row sample for the window ending at t:
// each sampled row a is scaled by ‖Â‖_F/(√ℓ‖a‖), the unbiased
// with-replacement factor, with ‖Â‖_F from the norm tracker.
func (s *SWR) Query(t float64) *mat.Dense {
	cutoff := s.spec.Cutoff(t)
	froSq := s.norms.FroSq(t)
	if froSq <= 0 {
		return mat.NewDense(0, s.d)
	}
	fro := math.Sqrt(froSq)
	sqrtEll := math.Sqrt(float64(s.ell))
	rows := make([][]float64, 0, s.ell)
	for i := range s.queues {
		s.queues[i].expire(cutoff)
		c, ok := s.queues[i].top()
		if !ok {
			continue
		}
		f := fro / (sqrtEll * math.Sqrt(c.w))
		r := make([]float64, s.d)
		for j, v := range c.row {
			r[j] = f * v
		}
		rows = append(rows, r)
	}
	if len(rows) == 0 {
		return mat.NewDense(0, s.d)
	}
	return mat.FromRows(rows)
}

// RowsStored reports the total number of candidate rows across all ℓ
// deques (rows shared between deques are counted once per deque, the
// paper's space accounting: it bounds E[candidates] per deque).
func (s *SWR) RowsStored() int {
	n := 0
	for i := range s.queues {
		n += len(s.queues[i].items)
	}
	return n
}

// Name implements WindowSketch.
func (s *SWR) Name() string { return "SWR" }

// Stats implements Introspector: per-queue candidate occupancy (total,
// min, max across the ℓ independent deques) plus the norm tracker's
// size — the quantities Lemma 5.1 bounds in expectation, exported so
// an operator can see the actual space profile.
func (s *SWR) Stats() map[string]float64 {
	minQ, maxQ, total := 0, 0, 0
	for i := range s.queues {
		n := len(s.queues[i].items)
		total += n
		if i == 0 || n < minQ {
			minQ = n
		}
		if n > maxQ {
			maxQ = n
		}
	}
	m := map[string]float64{
		"queues":         float64(s.ell),
		"candidates":     float64(total),
		"candidates_min": float64(minQ),
		"candidates_max": float64(maxQ),
	}
	trackerStats(m, s.norms)
	return m
}

var (
	_ WindowSketch = (*SWR)(nil)
	_ Introspector = (*SWR)(nil)
)

// UpdateSparse ingests a sparse row; the candidate copy is stored
// dense (sampler answers are rows of A), but norm computation and
// admission use the sparse form.
func (s *SWR) UpdateSparse(row mat.SparseRow, t float64) {
	if m := row.MaxIdx(); m >= s.d {
		panic(fmt.Sprintf("core: SWR sparse row index %d, dimension %d", m, s.d))
	}
	checkRowFinite("SWR", row.Val)
	s.Update(row.Dense(s.d), t)
}

var _ SparseUpdater = (*SWR)(nil)
