package core

import (
	"math"
	"math/rand"
	"testing"

	"swsketch/internal/window"
)

func TestZeroBaseline(t *testing.T) {
	z := NewZero(3)
	z.Update([]float64{1, 2, 3}, 0)
	if z.RowsStored() != 0 || z.Name() != "ZERO" {
		t.Fatal("metadata wrong")
	}
	b := z.Query(0)
	if b.Rows() != 0 || b.Cols() != 3 {
		t.Fatalf("Query dims = %d×%d", b.Rows(), b.Cols())
	}
	ex := window.NewExact(window.Seq(10), 3)
	ex.Update([]float64{1, 0, 0}, 0)
	ex.Update([]float64{0, 1, 0}, 1)
	// Two orthogonal unit rows: ‖AᵀA‖ = 1, ‖A‖²_F = 2 ⇒ error 0.5.
	if e := ex.CovaErr(z.Query(1)); e < 0.49 || e > 0.51 {
		t.Fatalf("zero-baseline error = %v, want 0.5", e)
	}
}

func TestZeroValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZero(0)
}

func TestMonotoneTimestampsEnforced(t *testing.T) {
	for _, tc := range []struct {
		name string
		sk   WindowSketch
	}{
		{"SWR", NewSWR(window.Seq(5), 2, 2, 1)},
		{"SWOR", NewSWOR(window.Seq(5), 2, 2, 1)},
		{"LM-FD", NewLMFD(window.Seq(5), 2, 4, 3)},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tc.sk.Update([]float64{1, 1}, 5)
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for decreasing timestamp")
				}
			}()
			tc.sk.Update([]float64{1, 1}, 4)
		})
	}
}

func TestNonFiniteRowsRejected(t *testing.T) {
	nan := []float64{1, math.NaN()}
	inf := []float64{math.Inf(1), 0}
	for _, tc := range []struct {
		name string
		sk   WindowSketch
	}{
		{"SWR", NewSWR(window.Seq(5), 2, 2, 1)},
		{"SWOR", NewSWOR(window.Seq(5), 2, 2, 1)},
		{"LM-FD", NewLMFD(window.Seq(5), 2, 4, 3)},
		{"DI-FD", NewDIFD(DIConfig{N: 5, R: 100, L: 3, Ell: 4, RSlack: 2}, 2)},
	} {
		for _, row := range [][]float64{nan, inf} {
			tc := tc
			row := row
			func() {
				defer func() {
					if recover() == nil {
						t.Fatalf("%s: expected panic for row %v", tc.name, row)
					}
				}()
				tc.sk.Update(row, 0)
			}()
		}
	}
}

func TestUnboundedFDTracksWholeStream(t *testing.T) {
	// The adaptor must behave exactly like the wrapped streaming FD.
	rng := rand.New(rand.NewSource(8))
	u := NewUnboundedFD(16, 4)
	ex := window.NewExact(window.Seq(1000000), 4) // effectively unbounded
	for i := 0; i < 500; i++ {
		row := randRow(rng, 4)
		u.Update(row, float64(i))
		ex.Update(row, float64(i))
	}
	if e := ex.CovaErr(u.Query(499)); e > 0.3 {
		t.Fatalf("unbounded FD error vs whole stream = %v", e)
	}
	if u.Name() != "STREAM-FD" || u.RowsStored() != 16 {
		t.Fatal("metadata wrong")
	}
}

func TestUnboundedIgnoresWindow(t *testing.T) {
	u := NewUnboundedFD(8, 2)
	u.Update([]float64{1, 0}, 0)
	// Query far in the future: the whole-history sketch must NOT expire.
	b := u.Query(1e12)
	if b.FrobeniusSq() == 0 {
		t.Fatal("unbounded sketch expired data")
	}
}

func TestUnboundedValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewUnboundedFD(8, 0)
}
