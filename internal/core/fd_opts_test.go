package core

import (
	"bytes"
	"math/rand"
	"testing"

	"swsketch/internal/stream"
	"swsketch/internal/window"
)

// TestLMFDOptsZeroBitIdentical pins the compatibility contract at the
// framework layer: LM-FD built through the opts constructor with the
// zero configuration must produce byte-for-byte the same snapshot as
// the legacy constructor — the property PR-5 era spill files rely on.
func TestLMFDOptsZeroBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	legacy := NewLMFD(window.Seq(64), 5, 8, 4)
	opts := NewLMFDOpts(window.Seq(64), 5, 8, 4, stream.FDOpts{})
	for i := 0; i < 300; i++ {
		row := randRow(rng, 5)
		legacy.Update(row, float64(i))
		opts.Update(row, float64(i))
	}
	lb, err := legacy.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ob, err := opts.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lb, ob) {
		t.Fatal("zero-opts LM-FD snapshot differs from legacy constructor")
	}
}

// TestLMFDOptsTunedRoundTrip checks that a FastFD-tuned LM survives a
// snapshot round trip (the block blobs carry their own (b, α) in the v2
// format) and continues the stream identically.
func TestLMFDOptsTunedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	o := stream.FDOpts{Buffer: 2, Alpha: 0.5}
	l := NewLMFDOpts(window.Seq(64), 5, 8, 4, o)
	for i := 0; i < 300; i++ {
		l.Update(randRow(rng, 5), float64(i))
	}
	data, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewLMFDOpts(window.Seq(64), 5, 8, 4, o)
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for i := 300; i < 400; i++ {
		row := randRow(rng, 5)
		l.Update(row, float64(i))
		restored.Update(row, float64(i))
	}
	a, b := l.Query(399), restored.Query(399)
	if !a.Equal(b, 0) {
		t.Fatal("restored tuned LM-FD diverged from original")
	}
}

// TestTunedConstructorsReasonable feeds each FastFD-tuned constructor
// a windowed stream and checks the answers stay close to the exact
// window — the tuning must not change what the sketch approximates.
func TestTunedConstructorsReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const d, n = 6, 512
	o := stream.FDOpts{Buffer: 2, Alpha: 0.5}
	sketches := map[string]WindowSketch{
		"lm-fd":  NewLMFDOpts(window.Seq(128), d, 16, 4, o),
		"di-fd":  NewDIFDOpts(DIConfig{N: 128, R: 8 * d, L: 4, Ell: 16, RSlack: 1.01}, d, o),
		"stream": NewUnboundedFDOpts(16, d, o),
		"auto":   AutoLMFDOpts(window.Seq(128), d, 0.25, o),
	}
	exact := window.NewExact(window.Seq(128), d)
	for i := 0; i < n; i++ {
		row := randRow(rng, d)
		for _, sk := range sketches {
			sk.Update(row, float64(i))
		}
		exact.Update(row, float64(i))
	}
	for name, sk := range sketches {
		b := sk.Query(float64(n - 1))
		if b == nil || b.Cols() != d {
			t.Fatalf("%s: bad answer shape", name)
		}
		// Loose sanity bound: unbounded FD sees the whole stream (a
		// stationary source, so its window answer is still close);
		// everything windowed must be well under 1.
		if err := exact.CovaErr(b); err > 0.75 {
			t.Errorf("%s: covariance error %v unreasonably large", name, err)
		}
	}
}

// TestLMFDStatsCarryAmortization pins the observability contract: once
// a tuned LM-FD has shrunk blocks, its Stats — and therefore the
// swsketch_internal gauge set — report the FastFD shrink count and the
// working buffer's amortization factor.
func TestLMFDStatsCarryAmortization(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	lm := NewLMFDOpts(window.Seq(256), 6, 8, 4, stream.FDOpts{Buffer: 2})
	for i := 0; i < 2000; i++ {
		lm.Update(randRow(rng, 6), float64(i))
	}
	st := lm.Stats()
	if st["fd_shrinks"] <= 0 {
		t.Fatalf("fd_shrinks = %v after 2000 rows", st["fd_shrinks"])
	}
	amort, ok := st["fd_amortization"]
	if !ok {
		t.Fatal("fd_amortization missing from LM-FD stats")
	}
	if amort <= 1 {
		t.Fatalf("fd_amortization = %v with b=2, want > 1", amort)
	}
}
