package core

import (
	"math/rand"
	"testing"

	"swsketch/internal/window"
)

// snapshotRoundTrip marshals, unmarshals into a fresh value, and
// verifies the restored sketch answers identically (for deterministic
// sketches) or structurally consistently (for samplers).
func TestSWRSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	spec := window.Seq(100)
	s := NewSWR(spec, 10, 4, 2)
	for i := 0; i < 400; i++ {
		s.Update(randRow(rng, 4), float64(i))
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored SWR
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	// The retained sample is part of the snapshot: answers at the
	// snapshot time must be identical.
	b1, b2 := s.Query(399), restored.Query(399)
	if !b1.Equal(b2, 0) {
		t.Fatal("restored SWR answers differently at the snapshot time")
	}
	if restored.RowsStored() != s.RowsStored() {
		t.Fatalf("candidate counts differ: %d vs %d", restored.RowsStored(), s.RowsStored())
	}
	// The restored sketch must keep working.
	for i := 400; i < 600; i++ {
		restored.Update(randRow(rng, 4), float64(i))
	}
	if restored.Query(599).Rows() == 0 {
		t.Fatal("restored SWR stopped answering")
	}
}

func TestSWORSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	spec := window.TimeSpan(50)
	s := NewSWORAll(spec, 8, 3, 3)
	tt := 0.0
	for i := 0; i < 300; i++ {
		tt += rng.ExpFloat64()
		s.Update(randRow(rng, 3), tt)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored SWOR
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if restored.Name() != "SWOR-ALL" {
		t.Fatalf("flags lost: name = %s", restored.Name())
	}
	if !s.Query(tt).Equal(restored.Query(tt), 0) {
		t.Fatal("restored SWOR answers differently at the snapshot time")
	}
	for i := 0; i < 100; i++ {
		tt += rng.ExpFloat64()
		restored.Update(randRow(rng, 3), tt)
	}
}

func TestLMFDSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	spec := window.Seq(300)
	l := NewLMFD(spec, 5, 16, 4)
	rows := make([][]float64, 1500)
	for i := range rows {
		rows[i] = randRow(rng, 5)
		l.Update(rows[i], float64(i))
	}
	data, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored LM
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	// LM-FD is deterministic: answers must match exactly, now and after
	// identical further updates.
	if !l.Query(1499).Equal(restored.Query(1499), 1e-12) {
		t.Fatal("restored LM-FD answers differently at the snapshot time")
	}
	for i := 1500; i < 2200; i++ {
		row := randRow(rng, 5)
		l.Update(row, float64(i))
		restored.Update(row, float64(i))
	}
	if !l.Query(2199).Equal(restored.Query(2199), 1e-9) {
		t.Fatal("restored LM-FD diverged after further identical updates")
	}
	if restored.RowsStored() != l.RowsStored() {
		t.Fatalf("rows stored diverged: %d vs %d", restored.RowsStored(), l.RowsStored())
	}
}

func TestLMSnapshotRejectsNonFD(t *testing.T) {
	l := NewLMHash(window.Seq(10), 2, 16, 4, 1)
	if _, err := l.MarshalBinary(); err == nil {
		t.Fatal("expected error for LM-HASH snapshot")
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	garbage := [][]byte{
		nil,
		{1, 2, 3},
		make([]byte, 64), // zero magic
	}
	for _, g := range garbage {
		var swr SWR
		if err := swr.UnmarshalBinary(g); err == nil {
			t.Fatalf("SWR accepted garbage %v", g)
		}
		var swor SWOR
		if err := swor.UnmarshalBinary(g); err == nil {
			t.Fatalf("SWOR accepted garbage %v", g)
		}
		var lm LM
		if err := lm.UnmarshalBinary(g); err == nil {
			t.Fatalf("LM accepted garbage %v", g)
		}
	}
}

func TestSnapshotRejectsCrossTypeData(t *testing.T) {
	s := NewSWR(window.Seq(10), 2, 2, 1)
	s.Update([]float64{1, 1}, 0)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var lm LM
	if err := lm.UnmarshalBinary(data); err == nil {
		t.Fatal("LM accepted an SWR snapshot")
	}
	var swor SWOR
	if err := swor.UnmarshalBinary(data); err == nil {
		t.Fatal("SWOR accepted an SWR snapshot")
	}
}

func TestSnapshotRejectsTruncation(t *testing.T) {
	l := NewLMFD(window.Seq(50), 3, 8, 4)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		l.Update(randRow(rng, 3), float64(i))
	}
	data, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, len(data) / 2, len(data) - 1} {
		var restored LM
		if err := restored.UnmarshalBinary(data[:cut]); err == nil {
			t.Fatalf("accepted snapshot truncated to %d bytes", cut)
		}
	}
	// Trailing garbage must also be rejected.
	var restored LM
	if err := restored.UnmarshalBinary(append(append([]byte{}, data...), 0xFF)); err == nil {
		t.Fatal("accepted snapshot with trailing bytes")
	}
}

func TestSWRSnapshotRequiresExactNorms(t *testing.T) {
	s := NewSWR(window.Seq(10), 2, 2, 1)
	s.SetNormTracker(window.NewEHNorms(window.Seq(10), 0.1))
	if _, err := s.MarshalBinary(); err == nil {
		t.Fatal("expected error for EH-tracked SWR snapshot")
	}
}
