package core_test

import (
	"testing"

	"swsketch/internal/conformance"
)

// TestContract runs every registered WindowSketch implementation —
// samplers, LM, DI, DS-FD, and the concurrent wrapper — through the
// shared conformance battery. The case table and the checks live in
// internal/conformance; adding a framework there gives it the whole
// suite (and the registry-coverage test enforces that HTTP-facing
// frameworks are in the table).
func TestContract(t *testing.T) {
	conformance.Run(t, conformance.Cases())
}
