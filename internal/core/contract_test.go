package core

import (
	"math"
	"math/rand"
	"testing"

	"swsketch/internal/window"
)

// The contract suite runs every WindowSketch implementation through
// the same behavioural checks: shape and sanity of answers, expiry of
// old data, query idempotence, tolerance of empty/edge states, and a
// loose error bound on benign data. New implementations get the whole
// battery by adding one constructor entry.

type contractCase struct {
	name string
	// make builds a sketch for the given spec and dimension; nil means
	// the combination is unsupported (e.g. DI on time windows).
	make func(spec window.Spec, d int, seed int64) WindowSketch
	// maxErr is the acceptable average covariance error on the benign
	// random stream (loose: the contract is behavioural, the tight
	// error checks live in the per-algorithm tests).
	maxErr float64
	// seqOnly marks sequence-window-only sketches.
	seqOnly bool
}

func contractCases() []contractCase {
	return []contractCase{
		{name: "SWR", maxErr: 0.5, make: func(spec window.Spec, d int, seed int64) WindowSketch {
			return NewSWR(spec, 40, d, seed)
		}},
		{name: "SWOR", maxErr: 0.5, make: func(spec window.Spec, d int, seed int64) WindowSketch {
			return NewSWOR(spec, 40, d, seed)
		}},
		{name: "SWOR-ALL", maxErr: 0.5, make: func(spec window.Spec, d int, seed int64) WindowSketch {
			return NewSWORAll(spec, 40, d, seed)
		}},
		{name: "LM-FD", maxErr: 0.35, make: func(spec window.Spec, d int, seed int64) WindowSketch {
			return NewLMFD(spec, d, 24, 8)
		}},
		{name: "LM-HASH", maxErr: 0.8, make: func(spec window.Spec, d int, seed int64) WindowSketch {
			return NewLMHash(spec, d, 256, 8, uint64(seed))
		}},
		{name: "LM-RP", maxErr: 0.8, make: func(spec window.Spec, d int, seed int64) WindowSketch {
			return NewLMRP(spec, d, 128, 8, seed)
		}},
		{name: "DI-FD", maxErr: 0.6, seqOnly: true, make: func(spec window.Spec, d int, seed int64) WindowSketch {
			return NewDIFD(DIConfig{N: int(spec.Size), R: 4 * float64(d), L: 5, Ell: 48, RSlack: 2}, d)
		}},
		{name: "DI-RP", maxErr: 0.9, seqOnly: true, make: func(spec window.Spec, d int, seed int64) WindowSketch {
			return NewDIRP(DIConfig{N: int(spec.Size), R: 4 * float64(d), L: 4, Ell: 512, MinEll: 64, RSlack: 2}, d, seed)
		}},
		{name: "DI-HASH", maxErr: 0.9, seqOnly: true, make: func(spec window.Spec, d int, seed int64) WindowSketch {
			return NewDIHash(DIConfig{N: int(spec.Size), R: 4 * float64(d), L: 4, Ell: 512, MinEll: 64, RSlack: 2}, d, uint64(seed))
		}},
		{name: "BEST", maxErr: 0.2, make: func(spec window.Spec, d int, seed int64) WindowSketch {
			return NewBest(spec, 12, d)
		}},
		{name: "Concurrent(LM-FD)", maxErr: 0.35, make: func(spec window.Spec, d int, seed int64) WindowSketch {
			return NewConcurrent(NewLMFD(spec, d, 24, 8))
		}},
	}
}

func TestContractSequenceWindow(t *testing.T) {
	const d, win, n = 8, 300, 1800
	for _, tc := range contractCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			spec := window.Seq(win)
			sk := tc.make(spec, d, 1)
			if sk.Name() == "" {
				t.Fatal("empty Name()")
			}
			oracle := window.NewExact(spec, d)
			rng := rand.New(rand.NewSource(99))
			var errSum float64
			queries := 0
			for i := 0; i < n; i++ {
				row := randRow(rng, d)
				tt := float64(i)
				sk.Update(row, tt)
				oracle.Update(row, tt)
				if i > win && i%300 == 0 {
					b := sk.Query(tt)
					if b.Cols() != d && b.Rows() != 0 {
						t.Fatalf("query cols = %d, want %d", b.Cols(), d)
					}
					// Idempotence: querying twice changes nothing.
					b2 := sk.Query(tt)
					if b.Rows() != b2.Rows() {
						t.Fatalf("query not idempotent: %d then %d rows", b.Rows(), b2.Rows())
					}
					errSum += oracle.CovaErr(b)
					queries++
					if sk.RowsStored() < 0 {
						t.Fatal("negative RowsStored")
					}
				}
			}
			if avg := errSum / float64(queries); avg > tc.maxErr {
				t.Fatalf("avg error %v exceeds contract bound %v", avg, tc.maxErr)
			}
		})
	}
}

func TestContractTimeWindow(t *testing.T) {
	const d = 6
	for _, tc := range contractCases() {
		if tc.seqOnly {
			continue
		}
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			spec := window.TimeSpan(25)
			sk := tc.make(spec, d, 2)
			oracle := window.NewExact(spec, d)
			rng := rand.New(rand.NewSource(7))
			tt := 0.0
			var errSum float64
			queries := 0
			for i := 0; i < 1500; i++ {
				tt += rng.ExpFloat64() * 0.1
				row := randRow(rng, d)
				sk.Update(row, tt)
				oracle.Update(row, tt)
				if i > 400 && i%250 == 0 {
					errSum += oracle.CovaErr(sk.Query(tt))
					queries++
				}
			}
			if avg := errSum / float64(queries); avg > tc.maxErr {
				t.Fatalf("avg error %v exceeds contract bound %v", avg, tc.maxErr)
			}
		})
	}
}

func TestContractEmptyQuery(t *testing.T) {
	// Querying before any update must not panic and must return an
	// empty or zero-mass answer.
	const d = 4
	for _, tc := range contractCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sk := tc.make(window.Seq(50), d, 3)
			b := sk.Query(0)
			if b.FrobeniusSq() != 0 {
				t.Fatalf("empty sketch returned mass %v", b.FrobeniusSq())
			}
		})
	}
}

func TestContractFullExpiry(t *testing.T) {
	// After the window slides entirely past the data, answers must
	// carry (near-)zero mass relative to what was ingested.
	const d = 4
	for _, tc := range contractCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sk := tc.make(window.Seq(20), d, 4)
			rng := rand.New(rand.NewSource(5))
			for i := 0; i < 100; i++ {
				sk.Update(randRow(rng, d), float64(i))
			}
			// Jump far into the future with zero-mass updates is not
			// part of the interface; instead query at a time where the
			// whole stream is expired.
			b := sk.Query(1e9)
			if b.FrobeniusSq() > 1e-9 {
				t.Fatalf("fully expired window still has mass %v (%d rows)", b.FrobeniusSq(), b.Rows())
			}
		})
	}
}

func TestContractSingleRow(t *testing.T) {
	// One row in, one window: the answer must reproduce that row's
	// Gram matrix well (most sketches: exactly).
	const d = 3
	for _, tc := range contractCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			spec := window.Seq(10)
			sk := tc.make(spec, d, 6)
			oracle := window.NewExact(spec, d)
			row := []float64{1, 2, 2}
			sk.Update(row, 0)
			oracle.Update(row, 0)
			e := oracle.CovaErr(sk.Query(0))
			// Randomised projections (HASH/RP) only preserve a single
			// row in expectation; everything else must be near-exact.
			loose := tc.name == "LM-HASH" || tc.name == "LM-RP" || tc.name == "DI-RP" || tc.name == "DI-HASH"
			if !loose && e > 1e-6 {
				t.Fatalf("single-row error = %v", e)
			}
			if loose && math.IsNaN(e) {
				t.Fatal("NaN error")
			}
		})
	}
}
