package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"swsketch/internal/window"
)

// TestConcurrentIngestQueryRace hammers a Concurrent-wrapped LM-FD with
// one ingest goroutine (mixing Update and UpdateBatch) and two query
// goroutines reading Query/RowsStored the whole time. It asserts
// nothing beyond finite answers — its job is to put the lock discipline
// and the parallel kernels underneath Query under `go test -race`.
func TestConcurrentIngestQueryRace(t *testing.T) {
	const (
		d     = 4
		total = 1500
	)
	ck := NewConcurrent(NewLMFD(window.Seq(64), d, 8, 4))

	var latest atomic.Int64 // highest ingested timestamp, for queries
	done := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		rng := rand.New(rand.NewSource(1))
		batch := make([][]float64, 0, 16)
		times := make([]float64, 0, 16)
		for i := 0; i < total; i++ {
			row := make([]float64, d)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			if i%3 == 0 {
				// Flush pending batched rows first: timestamps must
				// reach the sketch in non-decreasing order.
				if len(batch) > 0 {
					ck.UpdateBatch(batch, times)
					batch, times = batch[:0], times[:0]
				}
				ck.Update(row, float64(i))
				latest.Store(int64(i))
				continue
			}
			batch = append(batch, row)
			times = append(times, float64(i))
			if len(batch) == cap(batch) {
				ck.UpdateBatch(batch, times)
				latest.Store(int64(i))
				batch, times = batch[:0], times[:0]
			}
		}
		if len(batch) > 0 {
			ck.UpdateBatch(batch, times)
			latest.Store(total - 1)
		}
	}()

	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if ck.RowsStored() < 0 {
					t.Error("negative rows stored")
					return
				}
				b := ck.Query(float64(latest.Load()))
				if b.Rows() > 0 && b.Cols() != d {
					t.Errorf("query returned %d columns, want %d", b.Cols(), d)
					return
				}
			}
		}()
	}
	wg.Wait()
}
