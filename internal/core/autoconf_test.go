package core

import (
	"math/rand"
	"testing"

	"swsketch/internal/window"
)

func TestAutoConfigValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"lm eps 0": func() { AutoLMFD(window.Seq(10), 2, 0) },
		"lm eps 1": func() { AutoLMFD(window.Seq(10), 2, 1) },
		"di eps":   func() { AutoDIFD(10, 2, 0, 1, 1) },
		"swr eps":  func() { AutoSWR(window.Seq(10), 2, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// TestAutoConfigHitsTarget drives each auto-configured sketch over a
// benign stream and checks the observed error lands within a small
// factor of the requested target (the calibration's contract).
func TestAutoConfigHitsTarget(t *testing.T) {
	const (
		d      = 16
		win    = 1200
		n      = 5000
		target = 0.08
		slack  = 1.6 // calibration promise: within ~1.6× on benign data
	)
	rng := rand.New(rand.NewSource(9))
	rows := make([][]float64, n)
	var maxSq float64
	for i := range rows {
		rows[i] = randRow(rng, d)
		if w := sqNorm(rows[i]); w > maxSq {
			maxSq = w
		}
	}
	spec := window.Seq(win)
	sketches := []WindowSketch{
		AutoLMFD(spec, d, target),
		AutoSWR(spec, d, target, 3),
		AutoDIFD(win, d, target, maxSq, 60),
	}
	oracle := window.NewExact(spec, d)
	errSum := make([]float64, len(sketches))
	queries := 0
	for i, row := range rows {
		tt := float64(i)
		oracle.Update(row, tt)
		for _, sk := range sketches {
			sk.Update(row, tt)
		}
		if i > win && i%800 == 0 {
			queries++
			for j, sk := range sketches {
				errSum[j] += oracle.CovaErr(sk.Query(tt))
			}
		}
	}
	for j, sk := range sketches {
		avg := errSum[j] / float64(queries)
		if avg > target*slack {
			t.Fatalf("%s: avg error %v exceeds target %v × slack", sk.Name(), avg, target)
		}
	}
}

func TestClampInt(t *testing.T) {
	if clampInt(5, 1, 10) != 5 || clampInt(-3, 1, 10) != 1 || clampInt(50, 1, 10) != 10 {
		t.Fatal("clampInt broken")
	}
}
