package core

import (
	"math/rand"
	"testing"

	"swsketch/internal/mat"
	"swsketch/internal/window"
)

func sparseStream(rng *rand.Rand, n, d int) ([][]float64, []mat.SparseRow) {
	dense := make([][]float64, n)
	sparse := make([]mat.SparseRow, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for k := 0; k < 1+rng.Intn(5); k++ {
			row[rng.Intn(d)] = rng.NormFloat64()
		}
		dense[i] = row
		sparse[i] = mat.SparseFromDense(row)
	}
	return dense, sparse
}

func TestLMSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := 16
	dense, sparse := sparseStream(rng, 1200, d)
	spec := window.Seq(300)
	l1, l2 := NewLMFD(spec, d, 16, 4), NewLMFD(spec, d, 16, 4)
	for i := range dense {
		l1.Update(dense[i], float64(i))
		l2.UpdateSparse(sparse[i], float64(i))
	}
	// LM-FD is deterministic: the two ingest paths must agree exactly.
	if !l1.Query(1199).Equal(l2.Query(1199), 1e-12) {
		t.Fatal("LM sparse path diverges from dense path")
	}
	if l1.RowsStored() != l2.RowsStored() {
		t.Fatalf("rows stored differ: %d vs %d", l1.RowsStored(), l2.RowsStored())
	}
}

func TestDISparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := 12
	dense, sparse := sparseStream(rng, 900, d)
	cfg := DIConfig{N: 200, R: 50, L: 4, Ell: 32, RSlack: 2}
	d1, d2 := NewDIFD(cfg, d), NewDIFD(cfg, d)
	for i := range dense {
		d1.Update(dense[i], float64(i))
		d2.UpdateSparse(sparse[i], float64(i))
	}
	if !d1.Query(899).Equal(d2.Query(899), 1e-12) {
		t.Fatal("DI sparse path diverges from dense path")
	}
}

func TestSamplerSparseEquivalence(t *testing.T) {
	// Samplers are randomised; with identical seeds and identical
	// admitted rows the resulting candidate sets match.
	rng := rand.New(rand.NewSource(3))
	d := 10
	dense, sparse := sparseStream(rng, 500, d)
	spec := window.Seq(100)
	s1, s2 := NewSWR(spec, 5, d, 7), NewSWR(spec, 5, d, 7)
	w1, w2 := NewSWOR(spec, 5, d, 8), NewSWOR(spec, 5, d, 8)
	for i := range dense {
		tt := float64(i)
		s1.Update(dense[i], tt)
		s2.UpdateSparse(sparse[i], tt)
		w1.Update(dense[i], tt)
		w2.UpdateSparse(sparse[i], tt)
	}
	if !s1.Query(499).Equal(s2.Query(499), 1e-12) {
		t.Fatal("SWR sparse path diverges")
	}
	if !w1.Query(499).Equal(w2.Query(499), 1e-12) {
		t.Fatal("SWOR sparse path diverges")
	}
}

func TestSparseUpdaterValidation(t *testing.T) {
	row := mat.NewSparseRow([]int{99}, []float64{1}, -1)
	for name, sk := range map[string]SparseUpdater{
		"SWR":   NewSWR(window.Seq(5), 2, 4, 1),
		"SWOR":  NewSWOR(window.Seq(5), 2, 4, 1),
		"LM-FD": NewLMFD(window.Seq(5), 4, 4, 3),
		"DI-FD": NewDIFD(DIConfig{N: 5, R: 100, L: 3, Ell: 4, RSlack: 2}, 4),
	} {
		sk := sk
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic for out-of-range index", name)
				}
			}()
			sk.UpdateSparse(row, 0)
		}()
	}
}

func TestLMSparseSnapshotRoundTrip(t *testing.T) {
	// Sparse-stored raw blocks must survive persistence.
	rng := rand.New(rand.NewSource(4))
	_, sparse := sparseStream(rng, 300, 8)
	l := NewLMFD(window.Seq(100), 8, 8, 4)
	for i, r := range sparse {
		l.UpdateSparse(r, float64(i))
	}
	data, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored LM
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !l.Query(299).Equal(restored.Query(299), 1e-12) {
		t.Fatal("sparse snapshot round trip diverges")
	}
}

func TestConcurrentSparsePassthrough(t *testing.T) {
	c := NewConcurrent(NewLMFD(window.Seq(10), 3, 4, 3))
	c.UpdateSparse(mat.NewSparseRow([]int{1}, []float64{2}, 3), 0)
	if b := c.Query(0); b.FrobeniusSq() != 4 {
		t.Fatalf("sparse update lost: mass %v", b.FrobeniusSq())
	}
	// Wrapping a non-sparse sketch panics on sparse use.
	bad := NewConcurrent(NewBest(window.Seq(10), 2, 3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bad.UpdateSparse(mat.NewSparseRow([]int{0}, []float64{1}, 3), 0)
}
