package core

import (
	"fmt"

	"swsketch/internal/mat"
	"swsketch/internal/stream"
)

// Unbounded adapts a streaming (whole-history) matrix sketch to the
// WindowSketch interface, ignoring the window entirely. It is the
// "what if we just used FrequentDirections" baseline for the paper's
// motivating argument: on drifting streams its answers keep averaging
// over stale regimes, while the true sliding-window sketches track the
// recent distribution. Used by `swbench drift`.
type Unbounded struct {
	sk   stream.Sketch
	d    int
	name string
}

// NewUnbounded wraps sk (of dimension d) under the given display name.
func NewUnbounded(name string, d int, sk stream.Sketch) *Unbounded {
	if d < 1 {
		panic(fmt.Sprintf("core: Unbounded needs d ≥ 1, got %d", d))
	}
	return &Unbounded{sk: sk, d: d, name: name}
}

// NewUnboundedFD wraps a FrequentDirections sketch of ℓ rows.
func NewUnboundedFD(ell, d int) *Unbounded {
	return NewUnboundedFDOpts(ell, d, stream.FDOpts{})
}

// NewUnboundedFDOpts wraps a FrequentDirections sketch with FastFD
// ingest tuning (see stream.FDOpts); the zero FDOpts reproduces
// NewUnboundedFD exactly.
func NewUnboundedFDOpts(ell, d int, o stream.FDOpts) *Unbounded {
	return NewUnbounded("STREAM-FD", d, stream.NewFDOpts(ell, d, o))
}

// Update feeds the row to the streaming sketch; the timestamp is
// ignored.
func (u *Unbounded) Update(row []float64, _ float64) {
	if len(row) != u.d {
		panic(fmt.Sprintf("core: Unbounded row length %d, want %d", len(row), u.d))
	}
	checkRowFinite("Unbounded", row)
	u.sk.Update(row)
}

// UpdateBatch feeds the rows to the streaming sketch's bulk path; the
// timestamps are ignored.
func (u *Unbounded) UpdateBatch(rows [][]float64, times []float64) {
	validateBatch("Unbounded", rows, times, u.d)
	u.sk.UpdateBatch(rows)
}

// Query returns the whole-history approximation.
func (u *Unbounded) Query(_ float64) *mat.Dense { return u.sk.Matrix() }

// RowsStored reports the streaming sketch's size.
func (u *Unbounded) RowsStored() int { return u.sk.RowsStored() }

// Name implements WindowSketch.
func (u *Unbounded) Name() string { return u.name }

// Stats implements Introspector, forwarding the streaming sketch's own
// stats (FD exposes shrink count and headroom) when it has any.
func (u *Unbounded) Stats() map[string]float64 {
	if in, ok := u.sk.(Introspector); ok {
		return in.Stats()
	}
	return map[string]float64{"rows_stored": float64(u.sk.RowsStored())}
}

var (
	_ WindowSketch = (*Unbounded)(nil)
	_ Introspector = (*Unbounded)(nil)
)
