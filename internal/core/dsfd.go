package core

import (
	"fmt"
	"math"

	"swsketch/internal/mat"
	"swsketch/internal/stream"
	"swsketch/internal/trace"
)

// DS-FD is the dump-snapshot FrequentDirections framework from
// "Optimal Matrix Sketching over Sliding Windows" (the successor to
// the SIGMOD-2016 LM/DI frameworks this package reproduces). Where LM
// keeps Θ(log εNR) levels of ℓ-row block sketches and DI keeps L
// dyadic levels, DS-FD keeps O(1) *frames*, each a single FD sketch,
// and pays for expiry with small truncated prefix *snapshots* instead
// of whole parallel sketches — the structural change that removes the
// logarithmic factor from the space bound.
//
// The error budget is θ = N·R/ℓ (the reference harness's
// error_threshold), with N the window length, R the squared-row-norm
// bound, and ℓ the sketch size. Three mechanisms partition it:
//
//   - Dump: each frame accumulates the λ its FD shrinks charge
//     (stream.FD.Delta, a certified covariance-error bound). When a
//     frame's Σλ crosses θ/2 it is frozen — its final state is kept
//     verbatim — and a fresh frame opens. Because every charged λ
//     removes ≥ ℓ/2·λ of squared Frobenius mass, a frozen frame covers
//     ≥ θℓ/4 = N·R/4 of stream mass, so at most O(1) frames intersect
//     any window.
//   - Snapshot: every θ/2 of ingested mass the active frame records a
//     truncated copy of its current state — only the directions with
//     squared singular value above θ/4 survive, so a snapshot holds
//     O(‖frame‖²_F/θ) ≤ O(ℓ) rows and usually far fewer. Snapshots are
//     the subtraction points expiry needs.
//   - Subtract: at query time only the oldest live frame can straddle
//     the window boundary. Its expired prefix is removed by forming
//     the indefinite difference FᵀF − BᵀB between the frame state F
//     and the newest snapshot B taken before the cutoff, via an
//     eigendecomposition on the small (rows(F)+rows(B))² signed Gram —
//     never the d×d side. Younger frames lie entirely inside the
//     window and contribute their states whole; everything merges
//     oldest-first into a fresh ℓ-row FD.
//
// Per query the error decomposes as: the straddler's shrink charge
// (≤ θ/2 by the dump rule), the unsnapshotted over-count (≤ θ/2 of
// mass by the snapshot cadence), the snapshot truncation (≤ θ/4,
// spectral norm of an orthogonal tail), and the final merge's own FD
// guarantee — each a constant fraction of θ.
//
// DS-FD supports sequence windows only (like DI) but does not need R
// a priori: with R unset it tracks the running maximum squared row
// norm, growing θ monotonically, which keeps every decision already
// made valid. It is fully deterministic, so batch ingest and
// snapshot/restore are bit-exact.

// Budget split: fractions of θ spent by each mechanism. They are
// implementation constants rather than config — the guarantee shape is
// the same for any constant split, and a fixed split keeps snapshot
// bytes comparable across deployments.
const (
	dsfdDumpFrac  = 0.5  // freeze a frame when its Σλ ≥ θ/2
	dsfdSnapFrac  = 0.5  // snapshot every θ/2 of ingested mass
	dsfdTruncFrac = 0.25 // snapshots keep directions with σ² > θ/4
)

// DSFDConfig parameterises the dump-snapshot FD framework.
type DSFDConfig struct {
	// N is the sequence window size (rows).
	N int
	// Ell is the sketch size ℓ: the query answer has at most ℓ rows
	// and the error threshold is θ = N·R/ℓ.
	Ell int
	// R bounds the squared norm of every row. 0 means adaptive: the
	// sketch tracks the running maximum, and θ grows with it. When
	// set, rows violating the bound (beyond RSlack) panic, as in DI.
	R float64
	// RSlack is the multiplicative tolerance on a declared R before
	// Update panics (default 1+1e-9). Ignored when R is adaptive.
	RSlack float64
	// FD is the FastFD tuning applied to every frame sketch.
	FD stream.FDOpts
}

func (c DSFDConfig) validate() DSFDConfig {
	if c.N < 1 {
		panic(fmt.Sprintf("core: DSFD needs N ≥ 1, got %d", c.N))
	}
	if c.Ell < 2 {
		panic(fmt.Sprintf("core: DSFD needs Ell ≥ 2, got %d", c.Ell))
	}
	if c.R < 0 {
		panic(fmt.Sprintf("core: DSFD needs R ≥ 0, got %v", c.R))
	}
	if c.RSlack == 0 {
		c.RSlack = 1 + 1e-9
	}
	c.FD = c.FD.Normalize()
	return c
}

// dsSnap is one truncated prefix snapshot: rows holds the directions
// of the frame state at time t whose squared singular values exceeded
// the truncation threshold (nil when none did).
type dsSnap struct {
	t    float64
	rows *mat.Dense
}

// dsFrame is one frame of the hierarchy. The active frame's live
// sketch lives on the DSFD struct; final is set when the frame is
// frozen by a dump.
type dsFrame struct {
	start, end float64
	mass       float64 // squared Frobenius mass ingested
	delta      float64 // Σλ charged by the frame's FD shrinks
	snaps      []dsSnap
	final      *mat.Dense // frozen state; nil while active
}

func (f *dsFrame) snapRows() int {
	n := 0
	for _, sn := range f.snaps {
		if sn.rows != nil {
			n += sn.rows.Rows()
		}
	}
	return n
}

// DSFD implements WindowSketch with the dump-snapshot hierarchy.
type DSFD struct {
	cfg DSFDConfig
	d   int

	frames []dsFrame // frozen frames, oldest first
	cur    dsFrame   // the active frame (final == nil)
	fd     *stream.FD

	// deltaMark is the active FD's Delta() at the last ingest, so the
	// frame's own Σλ survives sketch replacement and restore (Delta is
	// not persisted and resets to 0 on both).
	deltaMark float64
	sinceSnap float64 // mass ingested since the last snapshot (or dump)

	rSeen float64 // running max squared row norm (adaptive R)
	lastT float64
	seen  bool

	dumps         uint64
	snapsTaken    uint64
	shrinksFrozen uint64 // shrink count accumulated from dumped frames

	tr *trace.Tracer
}

// NewDSFD builds a dump-snapshot FD sketch over a sequence window of
// cfg.N rows in dimension d.
func NewDSFD(cfg DSFDConfig, d int) *DSFD {
	cfg = cfg.validate()
	if d < 1 {
		panic(fmt.Sprintf("core: DSFD needs d ≥ 1, got %d", d))
	}
	s := &DSFD{cfg: cfg, d: d}
	s.fd = s.mkFD()
	return s
}

// SetTracer attaches a tracer: dumps, snapshots, and expiry emit
// events, and the active frame sketch emits fd_shrink spans.
func (s *DSFD) SetTracer(tr *trace.Tracer) {
	s.tr = tr
	s.fd.SetTracer(tr)
}

func (s *DSFD) mkFD() *stream.FD {
	fd := stream.NewFDOpts(s.cfg.Ell, s.d, s.cfg.FD)
	fd.SetTracer(s.tr)
	return fd
}

// rEff is the effective squared-row-norm bound: the declared R, or the
// running maximum when adaptive.
func (s *DSFD) rEff() float64 {
	if s.cfg.R > 0 {
		return s.cfg.R
	}
	return s.rSeen
}

// theta is the error threshold θ = N·R/ℓ the budget is split over.
func (s *DSFD) theta() float64 {
	return float64(s.cfg.N) * s.rEff() / float64(s.cfg.Ell)
}

// Update feeds one row; t must be the row's stream index (sequence
// windows only, like DI).
func (s *DSFD) Update(row []float64, t float64) {
	if len(row) != s.d {
		panic(fmt.Sprintf("core: DSFD row length %d, want %d", len(row), s.d))
	}
	checkRowFinite("DSFD", row)
	s.ingest(row, rowSqNorm(row), t)
}

// UpdateBatch ingests rows in order with one up-front validation pass;
// dump and snapshot decisions fall exactly as under row-at-a-time
// Update, so the resulting state is bit-identical.
func (s *DSFD) UpdateBatch(rows [][]float64, times []float64) {
	validateBatch("DSFD", rows, times, s.d)
	for i, r := range rows {
		s.ingest(r, rowSqNorm(r), times[i])
	}
}

// UpdateSparse ingests a sparse row, equivalent to Update on its dense
// form (the frame sketch stores rows dense, so the row is scattered).
func (s *DSFD) UpdateSparse(row mat.SparseRow, t float64) {
	if m := row.MaxIdx(); m >= s.d {
		panic(fmt.Sprintf("core: DSFD sparse row index %d, dimension %d", m, s.d))
	}
	checkRowFinite("DSFD", row.Val)
	dense := row.Dense(s.d)
	s.ingest(dense, row.SqNorm(), t)
}

func rowSqNorm(row []float64) float64 {
	w := 0.0
	for _, v := range row {
		w += v * v
	}
	return w
}

// ingest does not retain row.
func (s *DSFD) ingest(row []float64, w, t float64) {
	if s.seen && t < s.lastT {
		panic(fmt.Sprintf("core: DSFD timestamp %v precedes %v", t, s.lastT))
	}
	if w == 0 {
		return // zero rows carry no mass (sequence windows, as in DI)
	}
	if s.cfg.R > 0 && w > s.cfg.R*s.cfg.RSlack {
		panic(fmt.Sprintf("core: DSFD row squared norm %v exceeds declared R=%v", w, s.cfg.R))
	}
	if w > s.rSeen {
		s.rSeen = w
	}
	s.expire(t - float64(s.cfg.N))
	if s.cur.mass == 0 {
		s.cur.start = t
	}
	s.lastT, s.seen = t, true

	s.fd.Update(row)
	s.cur.end = t
	s.cur.mass += w
	s.sinceSnap += w
	if d := s.fd.Delta(); d != s.deltaMark {
		s.cur.delta += d - s.deltaMark
		s.deltaMark = d
	}

	th := s.theta()
	if s.cur.delta >= dsfdDumpFrac*th {
		s.dump(t)
	} else if s.sinceSnap >= dsfdSnapFrac*th {
		s.snapshot(t)
	}
}

// dump freezes the active frame — its current sketch state becomes the
// frame's final — and opens a fresh frame with an empty sketch.
func (s *DSFD) dump(t float64) {
	fr := s.cur
	fr.final = s.fd.Matrix()
	s.frames = append(s.frames, fr)
	s.shrinksFrozen += s.fd.Shrinks()
	s.dumps++
	s.tr.Emit("DS-FD", trace.KindDSFDDump, t, float64(fr.final.Rows()), fr.delta)
	s.fd = s.mkFD()
	s.deltaMark = 0
	s.sinceSnap = 0
	s.cur = dsFrame{}
}

// snapshot records a truncated copy of the active frame's state: only
// directions with squared singular value above the truncation
// threshold survive, bounding snapshot rows by the frame mass over
// θ/4. The dropped tail is orthogonal to the kept part, so truncation
// adds at most θ/4 to the spectral error of any later subtraction.
func (s *DSFD) snapshot(t float64) {
	rows := truncateTop(s.fd.Matrix(), dsfdTruncFrac*s.theta())
	s.cur.snaps = append(s.cur.snaps, dsSnap{t: t, rows: rows})
	s.snapsTaken++
	kept := 0
	if rows != nil {
		kept = rows.Rows()
	}
	s.tr.Emit("DS-FD", trace.KindDSFDSnapshot, t, float64(kept), s.sinceSnap)
	s.sinceSnap = 0
}

// truncateTop returns the rows of m's top directions with squared
// singular value strictly above tau (nil when none qualify), via an
// eigendecomposition of the small m·mᵀ Gram side. Row i of the result
// is σᵢ·vᵢᵀ, so the result's Gram is the spectral truncation of mᵀm.
func truncateTop(m *mat.Dense, tau float64) *mat.Dense {
	n := m.Rows()
	if n == 0 {
		return nil
	}
	vals, u := mat.EigenSym(m.GramT())
	kept := 0
	for kept < len(vals) && vals[kept] > tau && vals[kept] > 0 {
		kept++
	}
	if kept == 0 {
		return nil
	}
	ut := mat.NewDense(kept, n)
	mat.TransposeInto(ut, u, kept)
	out := mat.NewDense(kept, m.Cols())
	mat.MulTo(out, ut, m)
	return out
}

// trimSnaps drops the snapshots of fr that precede the newest one
// taken at or before cutoff — that one stays: it is the frame's
// subtraction point until the cutoff passes the next snapshot.
func trimSnaps(fr *dsFrame, cutoff float64) int {
	j := -1
	for k := range fr.snaps {
		if fr.snaps[k].t <= cutoff {
			j = k
		} else {
			break
		}
	}
	if j < 1 {
		return 0
	}
	fr.snaps = append([]dsSnap(nil), fr.snaps[j:]...)
	return j
}

// expire drops frozen frames that lie entirely outside the window,
// trims superseded snapshots, and resets the active frame when every
// row it holds has expired.
func (s *DSFD) expire(cutoff float64) {
	framesDropped, snapsDropped := 0, 0
	drop := 0
	for drop < len(s.frames) && s.frames[drop].end <= cutoff {
		snapsDropped += len(s.frames[drop].snaps)
		drop++
	}
	if drop > 0 {
		s.frames = s.frames[drop:]
		framesDropped = drop
	}
	for i := range s.frames {
		snapsDropped += trimSnaps(&s.frames[i], cutoff)
	}
	if s.cur.mass > 0 && s.lastT <= cutoff {
		framesDropped++
		snapsDropped += len(s.cur.snaps)
		s.fd = s.mkFD()
		s.deltaMark = 0
		s.sinceSnap = 0
		s.cur = dsFrame{}
	} else {
		snapsDropped += trimSnaps(&s.cur, cutoff)
	}
	if framesDropped > 0 || snapsDropped > 0 {
		s.tr.Emit("DS-FD", trace.KindDSFDExpire, cutoff, float64(framesDropped), float64(snapsDropped))
	}
}

// subtractPoint returns the newest snapshot of fr taken at or before
// cutoff, or nil.
func subtractPoint(fr *dsFrame, cutoff float64) *mat.Dense {
	var b *mat.Dense
	for k := range fr.snaps {
		if fr.snaps[k].t > cutoff {
			break
		}
		b = fr.snaps[k].rows
	}
	return b
}

// Query merges the live frames — the oldest with its expired prefix
// subtracted off — into a fresh ℓ-row FD and returns its state.
func (s *DSFD) Query(t float64) *mat.Dense {
	cutoff := t - float64(s.cfg.N)
	s.expire(cutoff)

	curStraddles := s.cur.mass > 0 && s.cur.start <= cutoff
	if len(s.frames) == 0 && !curStraddles {
		// Single non-straddling frame: its sketch is the whole answer,
		// no merge pass needed (and exact while the frame is raw).
		return s.fd.Matrix()
	}

	acc := s.mkFD()
	for i := range s.frames {
		state := s.frames[i].final
		if i == 0 && s.frames[i].start <= cutoff {
			if b := subtractPoint(&s.frames[i], cutoff); b != nil && b.Rows() > 0 {
				state = subtractSketch(state, b)
			}
		}
		if state.Rows() > 0 {
			acc.UpdateDense(state)
		}
	}
	if s.cur.mass > 0 {
		state := s.fd.Matrix()
		if curStraddles {
			// Only possible when no frozen frame survives (frames are
			// time-ordered, so any earlier frame would straddle first).
			if b := subtractPoint(&s.cur, cutoff); b != nil && b.Rows() > 0 {
				state = subtractSketch(state, b)
			}
		}
		if state.Rows() > 0 {
			acc.UpdateDense(state)
		}
	}
	return acc.Matrix()
}

// subtractSketch returns rows Y with YᵀY equal to the positive part of
// FᵀF − BᵀB. Both Grams live in the row space of Z = [F; B], so the
// difference is Zᵀ·S·Z with S = diag(+1…,−1…); factoring Z through the
// eigenbasis of the small k×k Gram Z·Zᵀ (k = rows(F)+rows(B)) reduces
// the problem to a k×k indefinite eigendecomposition — the d×d side is
// never formed. Negative eigenvalues (B exceeding F along a direction,
// possible only through floating-point round-off here) are clamped.
func subtractSketch(f, b *mat.Dense) *mat.Dense {
	d := f.Cols()
	if f.Rows() == 0 {
		return mat.NewDense(0, d)
	}
	k1 := f.Rows()
	z := mat.Stack(f, b)
	k := z.Rows()

	vals, u := mat.EigenSym(z.GramT())
	if len(vals) == 0 || vals[0] <= 0 {
		return mat.NewDense(0, d)
	}
	tol := vals[0] * 1e-12
	r := 0
	for r < len(vals) && vals[r] > tol {
		r++
	}

	// Q = Λ_r^{-1/2}·U_rᵀ·Z has orthonormal rows spanning Z's row space.
	ut := mat.NewDense(r, k)
	mat.TransposeInto(ut, u, r)
	q := mat.NewDense(r, d)
	mat.MulTo(q, ut, z)
	for i := 0; i < r; i++ {
		inv := 1 / math.Sqrt(vals[i])
		qi := q.Row(i)
		for j := range qi {
			qi[j] *= inv
		}
	}

	// M = Λ^{1/2}·U_rᵀ·S·U_r·Λ^{1/2}, so that Zᵀ·S·Z = Qᵀ·M·Q.
	m := mat.NewDense(r, r)
	md := m.Data()
	for t := 0; t < k; t++ {
		sign := 1.0
		if t >= k1 {
			sign = -1
		}
		urow := u.Row(t)
		for i := 0; i < r; i++ {
			si := sign * urow[i]
			mi := md[i*r:]
			for j := 0; j < r; j++ {
				mi[j] += si * urow[j]
			}
		}
	}
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			md[i*r+j] *= math.Sqrt(vals[i] * vals[j])
		}
	}

	vals2, w := mat.EigenSym(m)
	if len(vals2) == 0 || vals2[0] <= 0 {
		return mat.NewDense(0, d)
	}
	tol2 := vals2[0] * 1e-12
	kept := 0
	for kept < len(vals2) && vals2[kept] > tol2 {
		kept++
	}
	// Y rows: √μ_j · (W's column j)ᵀ·Q for the positive eigenpairs.
	y := mat.NewDense(kept, d)
	for j := 0; j < kept; j++ {
		scale := math.Sqrt(vals2[j])
		yr := y.Row(j)
		for i := 0; i < r; i++ {
			c := scale * w.Row(i)[j]
			if c == 0 {
				continue
			}
			qi := q.Row(i)
			for x := range yr {
				yr[x] += c * qi[x]
			}
		}
	}
	return y
}

// RowsStored reports the ℓ rows of the active sketch (when occupied)
// plus the rows of every frozen frame state and live snapshot — the
// framework's whole footprint in the paper's space measure.
func (s *DSFD) RowsStored() int {
	n := 0
	if s.cur.mass > 0 {
		n = s.fd.RowsStored()
	}
	n += s.cur.snapRows()
	for i := range s.frames {
		n += s.frames[i].final.Rows()
		n += s.frames[i].snapRows()
	}
	return n
}

// Frames reports the number of live frames including the active one
// (for tests and instrumentation).
func (s *DSFD) Frames() int {
	n := len(s.frames)
	if s.cur.mass > 0 {
		n++
	}
	return n
}

// Name implements WindowSketch.
func (s *DSFD) Name() string { return "DS-FD" }

// Stats implements Introspector: the frame/snapshot hierarchy shape,
// the live error budget (θ and the active frame's spent Σλ), dump and
// snapshot counters, the effective norm bound, and the active sketch's
// shrink instrumentation.
func (s *DSFD) Stats() map[string]float64 {
	snaps, snapRows := len(s.cur.snaps), s.cur.snapRows()
	frozenRows := 0
	for i := range s.frames {
		snaps += len(s.frames[i].snaps)
		snapRows += s.frames[i].snapRows()
		frozenRows += s.frames[i].final.Rows()
	}
	m := map[string]float64{
		"ell":             float64(s.cfg.Ell),
		"window_n":        float64(s.cfg.N),
		"theta":           s.theta(),
		"r_effective":     s.rEff(),
		"r_adaptive":      b2f(s.cfg.R == 0),
		"frames":          float64(s.Frames()),
		"frames_frozen":   float64(len(s.frames)),
		"frozen_rows":     float64(frozenRows),
		"snapshots_live":  float64(snaps),
		"snapshot_rows":   float64(snapRows),
		"frame_mass":      s.cur.mass,
		"frame_delta":     s.cur.delta,
		"since_snap":      s.sinceSnap,
		"dumps":           float64(s.dumps),
		"snapshots_taken": float64(s.snapsTaken),
		"fd_shrinks":      float64(s.shrinksFrozen + s.fd.Shrinks()),
		"fd_amortization": s.fd.Amortization(),
		"fd_buffer":       float64(s.fd.BufferFactor()),
		"fd_alpha":        s.fd.Alpha(),
	}
	return m
}

var (
	_ WindowSketch  = (*DSFD)(nil)
	_ Introspector  = (*DSFD)(nil)
	_ SparseUpdater = (*DSFD)(nil)
)
