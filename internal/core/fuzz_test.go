package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"swsketch/internal/stream"
	"swsketch/internal/window"
)

// rowsFromBytes decodes a fuzz payload into a row stream with values
// in a sane range (no NaN/Inf) and dimension 3.
func rowsFromBytes(data []byte) [][]float64 {
	var rows [][]float64
	for i := 0; i+2 < len(data); i += 3 {
		rows = append(rows, []float64{
			float64(int(data[i])-128) / 16,
			float64(int(data[i+1])-128) / 16,
			float64(int(data[i+2])-128) / 16,
		})
	}
	return rows
}

// FuzzLMFD feeds arbitrary streams through LM-FD and cross-checks the
// Query answer against the exact window: never panic, never NaN, and
// never wildly exceed the window's energy.
func FuzzLMFD(f *testing.F) {
	f.Add([]byte{1, 2, 3, 100, 200, 50, 0, 0, 0, 9, 9, 9})
	f.Add([]byte{255, 255, 255, 128, 128, 128})
	f.Fuzz(func(t *testing.T, data []byte) {
		rows := rowsFromBytes(data)
		if len(rows) == 0 {
			return
		}
		spec := window.Seq(8)
		lm := NewLMFD(spec, 3, 6, 3)
		ex := window.NewExact(spec, 3)
		for i, r := range rows {
			lm.Update(r, float64(i))
			ex.Update(r, float64(i))
		}
		b := lm.Query(float64(len(rows) - 1))
		mass := b.FrobeniusSq()
		if math.IsNaN(mass) || math.IsInf(mass, 0) {
			t.Fatalf("non-finite sketch mass %v", mass)
		}
		// FD only shrinks mass; LM can retain one straddling block, so
		// allow slack over the window mass but not runaway growth.
		if mass > 4*ex.FroSq()+1e-9 {
			t.Fatalf("sketch mass %v far exceeds window mass %v", mass, ex.FroSq())
		}
	})
}

// FuzzUpdateBatch splits arbitrary streams into arbitrary-sized
// batches and asserts the bulk ingest path is bit-identical to
// row-at-a-time feeding: LM-FD is deterministic, and the samplers
// consume their rng in the same order on both paths, so the query
// answers must match exactly (tolerance 0).
func FuzzUpdateBatch(f *testing.F) {
	f.Add([]byte{1, 2, 3, 100, 200, 50, 0, 0, 0, 9, 9, 9}, uint8(3))
	f.Add([]byte{255, 255, 255, 128, 128, 128, 7, 7, 7}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		rows := rowsFromBytes(data)
		if len(rows) == 0 {
			return
		}
		size := int(chunk%7) + 1
		times := make([]float64, len(rows))
		for i := range times {
			times[i] = float64(i)
		}
		spec := window.Seq(8)
		byRow := []WindowSketch{NewLMFD(spec, 3, 6, 3), NewSWR(spec, 3, 3, 7), NewSWOR(spec, 3, 3, 7)}
		byBatch := []WindowSketch{NewLMFD(spec, 3, 6, 3), NewSWR(spec, 3, 3, 7), NewSWOR(spec, 3, 3, 7)}
		for i, r := range rows {
			for _, sk := range byRow {
				sk.Update(r, times[i])
			}
		}
		for i := 0; i < len(rows); i += size {
			j := i + size
			if j > len(rows) {
				j = len(rows)
			}
			for _, sk := range byBatch {
				sk.UpdateBatch(rows[i:j], times[i:j])
			}
		}
		tEnd := times[len(times)-1]
		for k := range byRow {
			a, b := byRow[k].Query(tEnd), byBatch[k].Query(tEnd)
			if !a.Equal(b, 0) {
				t.Fatalf("%s: batch ingest (chunk %d) diverges from row-at-a-time", byRow[k].Name(), size)
			}
		}
	})
}

// dsfdHeader builds a DSFD snapshot prefix: the magic followed by
// little-endian int64 fields, for hostile-shape seeds.
func dsfdHeader(magic uint64, fields ...int) []byte {
	var b bytes.Buffer
	binary.Write(&b, binary.LittleEndian, magic)
	for _, f := range fields {
		binary.Write(&b, binary.LittleEndian, int64(f))
	}
	return b.Bytes()
}

// FuzzDSFDUnmarshal hardens the DS-FD snapshot decoder, mirroring
// stream.FuzzFDUnmarshal: the seed corpus carries real snapshots
// (empty, single-frame, and multi-frame states with live prefix
// snapshots), torn and truncated mutants, and an allocation-bomb
// header claiming astronomically large shapes. Decoding must never
// panic, and any accepted blob must re-marshal as a byte-level fixed
// point.
func FuzzDSFDUnmarshal(f *testing.F) {
	rng := rand.New(rand.NewSource(17))
	snap := func(cfg DSFDConfig, d, rows int) []byte {
		s := NewDSFD(cfg, d)
		for i := 0; i < rows; i++ {
			s.Update(randRow(rng, d), float64(i))
		}
		b, err := s.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	empty := snap(DSFDConfig{N: 20, Ell: 4}, 3, 0)
	single := snap(DSFDConfig{N: 20, Ell: 4}, 3, 15)
	// ℓ < d with several windows of data: frozen frames, prefix
	// snapshots, and a tuned FastFD buffer all appear in the blob.
	deep := snap(DSFDConfig{N: 60, Ell: 4, FD: stream.FDOpts{Buffer: 2, Alpha: 0.5}}, 8, 400)
	for _, seed := range [][]byte{empty, single, deep} {
		f.Add(seed)
		f.Add(seed[:len(seed)/2]) // torn mid-payload
		f.Add(seed[:9])           // truncated just past the magic
	}
	corrupt := append([]byte(nil), single...)
	corrupt[0] ^= 0xFF // unrecognised magic
	f.Add(corrupt)
	f.Add([]byte{})
	// Allocation bomb: a header claiming a ~8e8-dimensional sketch;
	// the decoder must reject the shape before allocating for it (see
	// also testdata/fuzz/FuzzDSFDUnmarshal).
	f.Add(dsfdHeader(dsfdMagic, 808464432, 808464432, 808464432))

	f.Fuzz(func(t *testing.T, data []byte) {
		var s DSFD
		if err := s.UnmarshalBinary(data); err != nil {
			return // rejected blobs only need to fail cleanly
		}
		re, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted blob failed: %v", err)
		}
		var s2 DSFD
		if err := s2.UnmarshalBinary(re); err != nil {
			t.Fatalf("decode of re-marshal failed: %v", err)
		}
		re2, err := s2.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("marshal is not stable across a decode cycle")
		}
		// An accepted sketch must remain usable.
		row := make([]float64, s2.d)
		for i := range row {
			row[i] = 1
		}
		s2.Update(row, s2.lastT+1)
	})
}

// FuzzSWOR drives the without-replacement sampler with arbitrary
// streams, asserting the structural invariants hold at every step.
func FuzzSWOR(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{0, 0, 0, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		rows := rowsFromBytes(data)
		s := NewSWOR(window.Seq(5), 3, 3, 42)
		for i, r := range rows {
			s.Update(r, float64(i))
			for j, c := range s.queue {
				if c.rank > 3 {
					t.Fatalf("candidate %d rank %d > ℓ", j, c.rank)
				}
				if c.t <= float64(i)-5 {
					t.Fatalf("expired candidate retained: t=%v now=%d", c.t, i)
				}
			}
			b := s.Query(float64(i))
			if v := b.FrobeniusSq(); math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite query mass")
			}
		}
	})
}
