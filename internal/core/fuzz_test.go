package core

import (
	"math"
	"testing"

	"swsketch/internal/window"
)

// rowsFromBytes decodes a fuzz payload into a row stream with values
// in a sane range (no NaN/Inf) and dimension 3.
func rowsFromBytes(data []byte) [][]float64 {
	var rows [][]float64
	for i := 0; i+2 < len(data); i += 3 {
		rows = append(rows, []float64{
			float64(int(data[i])-128) / 16,
			float64(int(data[i+1])-128) / 16,
			float64(int(data[i+2])-128) / 16,
		})
	}
	return rows
}

// FuzzLMFD feeds arbitrary streams through LM-FD and cross-checks the
// Query answer against the exact window: never panic, never NaN, and
// never wildly exceed the window's energy.
func FuzzLMFD(f *testing.F) {
	f.Add([]byte{1, 2, 3, 100, 200, 50, 0, 0, 0, 9, 9, 9})
	f.Add([]byte{255, 255, 255, 128, 128, 128})
	f.Fuzz(func(t *testing.T, data []byte) {
		rows := rowsFromBytes(data)
		if len(rows) == 0 {
			return
		}
		spec := window.Seq(8)
		lm := NewLMFD(spec, 3, 6, 3)
		ex := window.NewExact(spec, 3)
		for i, r := range rows {
			lm.Update(r, float64(i))
			ex.Update(r, float64(i))
		}
		b := lm.Query(float64(len(rows) - 1))
		mass := b.FrobeniusSq()
		if math.IsNaN(mass) || math.IsInf(mass, 0) {
			t.Fatalf("non-finite sketch mass %v", mass)
		}
		// FD only shrinks mass; LM can retain one straddling block, so
		// allow slack over the window mass but not runaway growth.
		if mass > 4*ex.FroSq()+1e-9 {
			t.Fatalf("sketch mass %v far exceeds window mass %v", mass, ex.FroSq())
		}
	})
}

// FuzzUpdateBatch splits arbitrary streams into arbitrary-sized
// batches and asserts the bulk ingest path is bit-identical to
// row-at-a-time feeding: LM-FD is deterministic, and the samplers
// consume their rng in the same order on both paths, so the query
// answers must match exactly (tolerance 0).
func FuzzUpdateBatch(f *testing.F) {
	f.Add([]byte{1, 2, 3, 100, 200, 50, 0, 0, 0, 9, 9, 9}, uint8(3))
	f.Add([]byte{255, 255, 255, 128, 128, 128, 7, 7, 7}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		rows := rowsFromBytes(data)
		if len(rows) == 0 {
			return
		}
		size := int(chunk%7) + 1
		times := make([]float64, len(rows))
		for i := range times {
			times[i] = float64(i)
		}
		spec := window.Seq(8)
		byRow := []WindowSketch{NewLMFD(spec, 3, 6, 3), NewSWR(spec, 3, 3, 7), NewSWOR(spec, 3, 3, 7)}
		byBatch := []WindowSketch{NewLMFD(spec, 3, 6, 3), NewSWR(spec, 3, 3, 7), NewSWOR(spec, 3, 3, 7)}
		for i, r := range rows {
			for _, sk := range byRow {
				sk.Update(r, times[i])
			}
		}
		for i := 0; i < len(rows); i += size {
			j := i + size
			if j > len(rows) {
				j = len(rows)
			}
			for _, sk := range byBatch {
				sk.UpdateBatch(rows[i:j], times[i:j])
			}
		}
		tEnd := times[len(times)-1]
		for k := range byRow {
			a, b := byRow[k].Query(tEnd), byBatch[k].Query(tEnd)
			if !a.Equal(b, 0) {
				t.Fatalf("%s: batch ingest (chunk %d) diverges from row-at-a-time", byRow[k].Name(), size)
			}
		}
	})
}

// FuzzSWOR drives the without-replacement sampler with arbitrary
// streams, asserting the structural invariants hold at every step.
func FuzzSWOR(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{0, 0, 0, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		rows := rowsFromBytes(data)
		s := NewSWOR(window.Seq(5), 3, 3, 42)
		for i, r := range rows {
			s.Update(r, float64(i))
			for j, c := range s.queue {
				if c.rank > 3 {
					t.Fatalf("candidate %d rank %d > ℓ", j, c.rank)
				}
				if c.t <= float64(i)-5 {
					t.Fatalf("expired candidate retained: t=%v now=%d", c.t, i)
				}
			}
			b := s.Query(float64(i))
			if v := b.FrobeniusSq(); math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite query mass")
			}
		}
	})
}
