package core

import (
	"math/rand"
	"sync"
	"testing"

	"swsketch/internal/mat"
	"swsketch/internal/window"
)

func TestNewBestValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	NewBest(window.Seq(10), 0, 3)
}

func TestBestIsOptimalEnvelope(t *testing.T) {
	// BEST's error must never exceed a same-k FD-derived approximation.
	rng := rand.New(rand.NewSource(1))
	spec := window.Seq(200)
	k := 6
	best := NewBest(spec, k, 8)
	ex := window.NewExact(spec, 8)
	for i := 0; i < 600; i++ {
		row := randRow(rng, 8)
		best.Update(row, float64(i))
		ex.Update(row, float64(i))
	}
	bBest := best.Query(599)
	if bBest.Rows() != k {
		t.Fatalf("BEST rows = %d, want %d", bBest.Rows(), k)
	}
	errBest := ex.CovaErr(bBest)
	// Any other rank-k matrix has at least this error; check against a
	// k-row truncation of a larger SVD at k+2 singular values.
	worse := mat.RankK(ex.Matrix(), k-2)
	if errWorse := ex.CovaErr(worse); errBest > errWorse+1e-9 {
		t.Fatalf("BEST(k=%d) err %v worse than rank-%d err %v", k, errBest, k-2, errWorse)
	}
}

func TestBestTracksWindow(t *testing.T) {
	best := NewBest(window.Seq(50), 2, 2)
	for i := 0; i < 200; i++ {
		best.Update([]float64{1, 0}, float64(i))
	}
	if best.WindowLen() != 50 {
		t.Fatalf("WindowLen = %d, want 50", best.WindowLen())
	}
	if best.RowsStored() != 2 || best.Name() != "BEST" {
		t.Fatal("metadata wrong")
	}
}

func TestBestQueryAdvancesExpiry(t *testing.T) {
	best := NewBest(window.TimeSpan(1.0), 2, 2)
	best.Update([]float64{1, 0}, 0)
	b := best.Query(100) // everything expired
	if b.FrobeniusSq() != 0 {
		t.Fatalf("expired window should give zero approximation, got %v", b)
	}
}

func TestConcurrentSafety(t *testing.T) {
	sk := NewConcurrent(NewLMFD(window.Seq(100), 4, 16, 4))
	if sk.Name() != "LM-FD" {
		t.Fatal("Name not forwarded")
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 2000; i++ {
			sk.Update(randRow(rng, 4), float64(i))
		}
		close(stop)
	}()
	wg.Add(2)
	for g := 0; g < 2; g++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = sk.RowsStored()
					_ = sk.Query(1e9)
				}
			}
		}()
	}
	wg.Wait()
}
