package core

import (
	"fmt"
	"math"

	"swsketch/internal/stream"
	"swsketch/internal/window"
)

// Auto-configuration: translate a target covariance error ε into the
// sketch knobs. The theoretical constants (Table 1) are loose by an
// order of magnitude on real data — the paper says as much ("the bad
// bases that actually meet those loose upper bounds almost never
// happen") — so these use the practical calibration observed across
// the reproduction harness's datasets (EXPERIMENTS.md): they hit the
// target within a small factor on benign data and err toward more
// space. They are starting points, not guarantees; adversarial streams
// revert to the theory.

// AutoLMFD returns an LM-FD sketch sized for target error eps.
// Calibration: per-block FD size ℓ ≈ 1/ε dominates accuracy; blocks
// per level b ≈ 1/(3ε) controls the expiring-block term, which only
// binds on drifting data.
func AutoLMFD(spec window.Spec, d int, eps float64) *LM {
	return AutoLMFDOpts(spec, d, eps, stream.FDOpts{})
}

// AutoLMFDOpts is AutoLMFD with FastFD ingest tuning applied to the
// auto-sized block sketches; sizing is unchanged (the error bound is
// (b, α)-independent), so the zero FDOpts reproduces AutoLMFD exactly.
func AutoLMFDOpts(spec window.Spec, d int, eps float64, o stream.FDOpts) *LM {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("core: AutoLMFD target eps %v outside (0,1)", eps))
	}
	ell := clampInt(int(math.Ceil(1/eps)), 8, 512)
	b := clampInt(int(math.Ceil(1/(3*eps))), 4, 64)
	return NewLMFDOpts(spec, d, ell, b, o)
}

// AutoDIFD returns a DI-FD sketch sized for target error eps over a
// sequence window of n rows whose squared norms lie in
// [maxSqNorm/ratio, maxSqNorm]. Levels follow the paper's
// L = ⌈log₂(ratio/ε)⌉ with the practical blocks-per-window clamp
// (see cmd/swbench); the answer budget is ℓ ≈ 4/ε rows.
func AutoDIFD(n int, d int, eps, maxSqNorm, ratio float64) *DI {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("core: AutoDIFD target eps %v outside (0,1)", eps))
	}
	if ratio < 1 {
		ratio = 1
	}
	l := clampInt(int(math.Ceil(math.Log2(ratio/eps))), 3, 22)
	ell := clampInt(int(math.Ceil(4/eps)), 8, 2048)
	return NewDIFD(DIConfig{N: n, R: maxSqNorm, L: l, Ell: ell, RSlack: 1.01}, d)
}

// AutoDSFD returns a DS-FD sketch sized for target error eps over a
// sequence window of n rows, with the norm bound R tracked adaptively.
// Calibration: DS-FD's absolute error is within θ = N·R/ℓ, so on a
// window whose rows sit near the norm bound the relative error is
// ≈ 1/ℓ; skewed norm profiles lose up to the window's norm ratio, so
// the practical sizing ℓ ≈ 2/ε leaves headroom without the DI
// framework's explicit ratio parameter.
func AutoDSFD(n, d int, eps float64) *DSFD {
	return AutoDSFDOpts(n, d, eps, stream.FDOpts{})
}

// AutoDSFDOpts is AutoDSFD with FastFD ingest tuning applied to the
// frame sketches; sizing is unchanged (the error threshold is
// (b, α)-independent), so the zero FDOpts reproduces AutoDSFD exactly.
func AutoDSFDOpts(n, d int, eps float64, o stream.FDOpts) *DSFD {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("core: AutoDSFD target eps %v outside (0,1)", eps))
	}
	ell := clampInt(int(math.Ceil(2/eps)), 8, 1024)
	return NewDSFD(DSFDConfig{N: n, Ell: ell, FD: o}, d)
}

// AutoSWR returns an SWR sampler sized for target error eps.
// Calibration: sampling error scales as c/√ℓ with c ≈ 0.4 on the
// harness datasets, so ℓ ≈ (0.4/ε)² — well below the d/ε² theory.
func AutoSWR(spec window.Spec, d int, eps float64, seed int64) *SWR {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("core: AutoSWR target eps %v outside (0,1)", eps))
	}
	ell := clampInt(int(math.Ceil(0.16/(eps*eps))), 8, 4096)
	return NewSWR(spec, ell, d, seed)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
