// Package core implements the paper's sliding-window matrix sketches:
//
//   - SWR and SWOR (Section 5): norm-proportional row sampling with and
//     without replacement via priority-sampling candidate queues, plus
//     the SWOR-ALL variant that answers with every candidate row.
//   - LM (Section 6): the Logarithmic Method, which converts any
//     mergeable streaming sketch (FrequentDirections, Hashing) into a
//     sketch for both time- and sequence-based sliding windows.
//   - DI (Section 7): the Dyadic Interval framework, which converts an
//     arbitrary streaming sketch (FD, random projection, Hashing) into
//     a sequence-window sketch with a better space profile when the
//     norm ratio R is small.
//   - Best (Section 8): the offline best rank-k baseline.
//
// Every sketch implements WindowSketch: feed timestamped rows with
// Update and materialise an approximation B for the current window
// with Query. For sequence-based windows, use the row's stream index
// as its timestamp.
package core

import (
	"fmt"
	"math"

	"swsketch/internal/mat"
)

// WindowSketch is a continuously maintained matrix sketch over a
// sliding window. Implementations are not safe for concurrent use;
// wrap them in Concurrent for a one-writer/many-reader regime.
type WindowSketch interface {
	// Update feeds one row arriving at timestamp t. Timestamps must be
	// non-decreasing; for sequence windows use the stream index. The
	// row is copied, never retained.
	Update(row []float64, t float64)
	// UpdateBatch feeds rows arriving at the corresponding timestamps,
	// in order. The visible state afterwards matches calling Update on
	// each row in turn (including any internal randomness), but the
	// sketch validates once and amortises per-row bookkeeping across
	// the batch. Rows and times must have equal length; neither slice
	// is retained.
	UpdateBatch(rows [][]float64, times []float64)
	// Query returns the approximation B ∈ R^{ℓ×d} for the window
	// ending at time t (which must be ≥ the latest Update timestamp).
	Query(t float64) *mat.Dense
	// RowsStored reports the sketch's current space usage in rows, the
	// measure used throughout the paper's evaluation.
	RowsStored() int
	// Name identifies the algorithm (e.g. "SWR", "LM-FD") in harness
	// output.
	Name() string
}

// checkRowFinite panics when a row contains NaN or ±Inf. Every sketch
// calls it on ingest: a single non-finite value would otherwise poison
// Gram accumulations, FD shrinks, and priority draws silently, and the
// corruption only surfaces queries later — fail loudly at the source
// instead.
func checkRowFinite(algo string, row []float64) {
	for i, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			panic(fmt.Sprintf("core: %s row has non-finite value %v at index %d", algo, v, i))
		}
	}
}

// validateBatch performs the up-front batch checks shared by every
// UpdateBatch implementation: matching slice lengths, row dimension,
// and finiteness. Timestamp monotonicity stays with each sketch's
// per-row ingest, which already enforces it against its own clock.
func validateBatch(algo string, rows [][]float64, times []float64, d int) {
	if len(rows) != len(times) {
		panic(fmt.Sprintf("core: %s batch has %d rows but %d timestamps", algo, len(rows), len(times)))
	}
	for i, r := range rows {
		if len(r) != d {
			panic(fmt.Sprintf("core: %s batch row %d length %d, want %d", algo, i, len(r), d))
		}
		checkRowFinite(algo, r)
	}
}

// Introspector is implemented by sketches that expose their internal
// state as a flat name → value map for operational monitoring: queue
// depths, level occupancy, shrink counts, tracker sizes. Keys are
// stable lower_snake_case identifiers; values are gauges sampled at
// call time. Stats must return a fresh map (callers may mutate it) and
// must not modify sketch state beyond what a read does. All of the
// paper's sketches (SWR, SWOR, LM, DI) implement it, as do the
// Concurrent wrapper and obs.Instrumented by delegation.
type Introspector interface {
	Stats() map[string]float64
}

// trackerStats merges a norm tracker's own Stats() (when it has one,
// e.g. the EH-backed tracker) into dst under "norm_tracker_<key>".
func trackerStats(dst map[string]float64, nt interface{ Size() int }) {
	dst["norm_tracker_items"] = float64(nt.Size())
	if in, ok := nt.(Introspector); ok {
		for k, v := range in.Stats() {
			dst["norm_tracker_"+k] = v
		}
	}
}

// SparseUpdater is implemented by window sketches with a sparse ingest
// path; UpdateSparse(row, t) is equivalent to Update(row.Dense(d), t).
// LM and DI exploit sparsity end-to-end; the samplers densify on
// candidate admission (their answers are rows of A, stored dense) but
// still skip the O(d) norm scan.
type SparseUpdater interface {
	WindowSketch
	UpdateSparse(row mat.SparseRow, t float64)
}
