package core

import (
	"math"
	"math/rand"
	"testing"

	"swsketch/internal/adversary"
	"swsketch/internal/mat"
	"swsketch/internal/stream"
	"swsketch/internal/window"
)

// gramErr returns ‖XᵀX − YᵀY‖₂ via the shared covariance-error
// helper, unnormalised.
func gramErr(x, y *mat.Dense) float64 {
	return mat.CovarianceError(x.Gram(), 1, y)
}

func TestDSFDSubtractSketch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const d = 6
	f := mat.NewDense(14, d)
	for i := 0; i < f.Rows(); i++ {
		copy(f.Row(i), randRow(rng, d))
	}
	// B = the first 5 rows of F, so FᵀF − BᵀB is exactly the Gram of
	// the remaining rows.
	b := mat.NewDense(5, d)
	copy(b.Data(), f.Data()[:5*d])
	rest := mat.NewDense(f.Rows()-5, d)
	copy(rest.Data(), f.Data()[5*d:])

	y := subtractSketch(f, b)
	if got := gramErr(rest, y); got > 1e-9*f.FrobeniusSq() {
		t.Fatalf("subtractSketch residual %v", got)
	}
}

func TestDSFDSubtractSketchEmptyDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const d = 4
	f := mat.NewDense(3, d)
	for i := 0; i < f.Rows(); i++ {
		copy(f.Row(i), randRow(rng, d))
	}
	y := subtractSketch(f, f)
	if y.Rows() > 0 && y.FrobeniusSq() > 1e-9*f.FrobeniusSq() {
		t.Fatalf("subtracting a sketch from itself left mass %v in %d rows", y.FrobeniusSq(), y.Rows())
	}
}

func TestDSFDTruncateTop(t *testing.T) {
	// Two orthogonal directions with squared singular values 9 and 1:
	// tau between them keeps exactly the large one.
	m := mat.FromRows([][]float64{{3, 0, 0}, {0, 1, 0}})
	out := truncateTop(m, 4)
	if out == nil || out.Rows() != 1 {
		t.Fatalf("kept %v rows, want 1", out)
	}
	if got := math.Abs(out.FrobeniusSq() - 9); got > 1e-9 {
		t.Fatalf("kept direction has mass %v, want 9", out.FrobeniusSq())
	}
	if truncateTop(m, 10) != nil {
		t.Fatal("tau above the whole spectrum must keep nothing")
	}
	if out := truncateTop(m, 0.5); out.Rows() != 2 {
		t.Fatalf("tau below the spectrum kept %d rows, want 2", out.Rows())
	}
}

func TestDSFDAccuracyAndSpace(t *testing.T) {
	// ℓ < d so the frame sketches actually compress (λ > 0) and the
	// dump machinery engages; with ℓ ≥ rank the FD is lossless and a
	// single frame correctly lives forever.
	const d, win, n = 16, 300, 2400
	spec := window.Seq(win)
	sk := NewDSFD(DSFDConfig{N: win, Ell: 8}, d)
	oracle := window.NewExact(spec, d)
	rng := rand.New(rand.NewSource(99))
	var errSum float64
	queries := 0
	for i := 0; i < n; i++ {
		row := randRow(rng, d)
		tt := float64(i)
		sk.Update(row, tt)
		oracle.Update(row, tt)
		if i > win && i%150 == 0 {
			errSum += oracle.CovaErr(sk.Query(tt))
			queries++
			// O(1) frames is the framework's space claim.
			if fr := sk.Frames(); fr > 8 {
				t.Fatalf("at row %d: %d live frames, want O(1)", i, fr)
			}
			if rows := sk.RowsStored(); rows > 200 {
				t.Fatalf("at row %d: %d rows stored", i, rows)
			}
		}
	}
	if avg := errSum / float64(queries); avg > 0.5 {
		t.Fatalf("avg covariance error %v", avg)
	}
	st := sk.Stats()
	if st["dumps"] == 0 {
		t.Fatal("no dumps over 8 windows of compressive data")
	}
	if st["theta"] <= 0 {
		t.Fatalf("theta = %v", st["theta"])
	}
}

func TestDSFDErrorWithinTheta(t *testing.T) {
	// The framework's contract: absolute covariance error within
	// θ = N·R/ℓ at every query.
	const d, win, n = 8, 300, 2400
	spec := window.Seq(win)
	sk := NewDSFD(DSFDConfig{N: win, Ell: 24}, d)
	oracle := window.NewExact(spec, d)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		row := randRow(rng, d)
		tt := float64(i)
		sk.Update(row, tt)
		oracle.Update(row, tt)
		if i > win && i%100 == 0 {
			theta := sk.Stats()["theta"]
			abs := oracle.CovaErr(sk.Query(tt)) * oracle.FroSq()
			if abs > theta {
				t.Fatalf("row %d: absolute error %v exceeds theta %v", i, abs, theta)
			}
		}
	}
}

func TestDSFDFullExpiry(t *testing.T) {
	sk := NewDSFD(DSFDConfig{N: 20, Ell: 8}, 4)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		sk.Update(randRow(rng, 4), float64(i))
	}
	b := sk.Query(1e9)
	if b.FrobeniusSq() != 0 {
		t.Fatalf("expired window has mass %v", b.FrobeniusSq())
	}
	if sk.Frames() != 0 || sk.RowsStored() != 0 {
		t.Fatalf("expired sketch holds %d frames, %d rows", sk.Frames(), sk.RowsStored())
	}
}

func TestDSFDAdaptiveR(t *testing.T) {
	sk := NewDSFD(DSFDConfig{N: 50, Ell: 8}, 3)
	sk.Update([]float64{1, 0, 0}, 0)
	if r := sk.Stats()["r_effective"]; r != 1 {
		t.Fatalf("r_effective = %v, want 1", r)
	}
	sk.Update([]float64{0, 3, 0}, 1)
	if r := sk.Stats()["r_effective"]; r != 9 {
		t.Fatalf("r_effective = %v, want 9", r)
	}
	if sk.Stats()["r_adaptive"] != 1 {
		t.Fatal("adaptive flag not set")
	}
}

func TestDSFDDeclaredRViolationPanics(t *testing.T) {
	sk := NewDSFD(DSFDConfig{N: 50, Ell: 8, R: 4}, 3)
	sk.Update([]float64{2, 0, 0}, 0) // exactly R, fine
	defer func() {
		if recover() == nil {
			t.Fatal("row exceeding declared R did not panic")
		}
	}()
	sk.Update([]float64{3, 0, 0}, 1)
}

func TestDSFDBatchMatchesRowIngest(t *testing.T) {
	const d, win, n = 5, 120, 900
	one := NewDSFD(DSFDConfig{N: win, Ell: 12, FD: stream.FDOpts{Buffer: 2}}, d)
	two := NewDSFD(DSFDConfig{N: win, Ell: 12, FD: stream.FDOpts{Buffer: 2}}, d)
	rng := rand.New(rand.NewSource(31))
	rows := make([][]float64, n)
	times := make([]float64, n)
	for i := range rows {
		rows[i] = randRow(rng, d)
		times[i] = float64(i)
	}
	for i := range rows {
		one.Update(rows[i], times[i])
	}
	two.UpdateBatch(rows, times)
	qa, qb := one.Query(times[n-1]), two.Query(times[n-1])
	if qa.Rows() != qb.Rows() || !qa.Equal(qb, 0) {
		t.Fatalf("batch ingest diverged: %d vs %d rows", qa.Rows(), qb.Rows())
	}
}

func TestDSFDSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const d, win, n = 12, 200, 1100
	s := NewDSFD(DSFDConfig{N: win, Ell: 8, FD: stream.FDOpts{Buffer: 2, Alpha: 0.5}}, d)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = randRow(rng, d)
		s.Update(rows[i], float64(i))
	}
	if s.Stats()["dumps"] == 0 || s.Stats()["snapshots_taken"] == 0 {
		t.Fatal("round-trip stream too tame: no dumps or snapshots to persist")
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored DSFD
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !s.Query(n-1).Equal(restored.Query(n-1), 0) {
		t.Fatal("restored DSFD answers differently at the snapshot time")
	}
	if restored.RowsStored() != s.RowsStored() || restored.Frames() != s.Frames() {
		t.Fatalf("structure differs after restore: rows %d vs %d, frames %d vs %d",
			restored.RowsStored(), s.RowsStored(), restored.Frames(), s.Frames())
	}
	// Continuation must stay bit-exact: DS-FD is deterministic, so the
	// original and the restored copy must agree forever.
	for i := n; i < n+700; i++ {
		row := randRow(rng, d)
		s.Update(row, float64(i))
		restored.Update(row, float64(i))
	}
	if !s.Query(n+699).Equal(restored.Query(n+699), 0) {
		t.Fatal("restored DSFD diverged under continued ingest")
	}
	// Re-marshal of an untouched decode must be a byte-level fixed
	// point (the spill/restore layers rely on it).
	var again DSFD
	if err := again.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	re, err := again.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(re) != string(data) {
		t.Fatal("DSFD snapshot is not re-marshal stable")
	}
}

func TestDSFDSnapshotRejectsHostileShapes(t *testing.T) {
	s := NewDSFD(DSFDConfig{N: 50, Ell: 8}, 4)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 120; i++ {
		s.Update(randRow(rng, 4), float64(i))
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var v DSFD
	if err := v.UnmarshalBinary(nil); err == nil {
		t.Fatal("empty blob accepted")
	}
	for cut := 1; cut < len(data); cut += 13 {
		if err := v.UnmarshalBinary(data[:cut]); err == nil {
			t.Fatalf("torn blob of %d/%d bytes accepted", cut, len(data))
		}
	}
	corrupt := append([]byte(nil), data...)
	corrupt[0] ^= 0xFF
	if err := v.UnmarshalBinary(corrupt); err == nil {
		t.Fatal("foreign magic accepted")
	}
	if err := v.UnmarshalBinary(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestDSFDAdversarialWithinTheta drives DS-FD with the shared
// adversarial generators — spiked, decaying, duplicate-row — and
// asserts the windowed guarantee holds on each: at every query the
// absolute covariance error stays within θ = N·R/ℓ, where R is the
// observed max squared row norm. These are the streams built to break
// the underlying FastFD cadence, so passing here means the dump /
// snapshot / subtraction machinery doesn't amplify the per-frame
// error.
func TestDSFDAdversarialWithinTheta(t *testing.T) {
	const d, win, n = 12, 200, 700
	for _, adv := range adversary.Streams() {
		t.Run(adv.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(23))
			a := adv.Gen(rng, n, d)
			spec := window.Seq(win)
			// ℓ < d so frames compress and the dump machinery engages.
			sk := NewDSFD(DSFDConfig{N: win, Ell: 8}, d)
			oracle := window.NewExact(spec, d)
			for i := 0; i < n; i++ {
				row := a.Row(i)
				tt := float64(i)
				sk.Update(row, tt)
				oracle.Update(row, tt)
				if i > win && i%50 == 0 {
					theta := sk.Stats()["theta"]
					abs := oracle.CovaErr(sk.Query(tt)) * oracle.FroSq()
					if abs > theta {
						t.Fatalf("row %d: absolute error %v exceeds theta %v", i, abs, theta)
					}
				}
			}
		})
	}
}

func TestDSFDStraddlingSubtraction(t *testing.T) {
	// Force the straddling path: a window short enough that queries
	// land mid-frame, with snapshots available as subtraction points.
	const d, win, n = 6, 150, 1200
	spec := window.Seq(win)
	sk := NewDSFD(DSFDConfig{N: win, Ell: 16}, d)
	oracle := window.NewExact(spec, d)
	rng := rand.New(rand.NewSource(77))
	worst := 0.0
	for i := 0; i < n; i++ {
		row := randRow(rng, d)
		tt := float64(i)
		sk.Update(row, tt)
		oracle.Update(row, tt)
		if i > win && i%37 == 0 {
			if e := oracle.CovaErr(sk.Query(tt)); e > worst {
				worst = e
			}
		}
	}
	if sk.Stats()["snapshots_taken"] == 0 {
		t.Fatal("no snapshots taken; straddling path untested")
	}
	if worst > 0.6 {
		t.Fatalf("worst relative covariance error %v", worst)
	}
}
