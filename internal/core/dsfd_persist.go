package core

import (
	"fmt"
	"math"

	"swsketch/internal/binenc"
	"swsketch/internal/mat"
	"swsketch/internal/stream"
	"swsketch/internal/trace"
)

// dsfdMagic versions the DS-FD snapshot format.
const dsfdMagic = uint64(0x44534644_00000001) // "DSFD" v1

// Decode limits for the DS-FD snapshot, mirroring the FD decoder's
// hostile-shape hardening: every count is bounded before the data it
// describes is read, and every matrix payload is validated row-by-row
// with allocation capped by the reader's remaining bytes.
const (
	dsfdMaxFrames = 1 << 16
	dsfdMaxSnaps  = 1 << 20
	dsfdMaxDim    = 1 << 24
	dsfdMaxElems  = 1 << 26
)

func writeDSDense(w *binenc.Writer, m *mat.Dense) {
	if m == nil {
		w.Int(0)
		return
	}
	w.Int(m.Rows())
	if m.Rows() > 0 {
		w.F64s(m.Data())
	}
}

func readDSDense(r *binenc.Reader, d int) (*mat.Dense, error) {
	rows := r.Int()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if rows == 0 {
		return nil, nil
	}
	if rows < 0 || rows > dsfdMaxDim || rows > dsfdMaxElems/d {
		return nil, fmt.Errorf("matrix with %d rows exceeds decode limits", rows)
	}
	data := r.F64s()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if len(data) != rows*d {
		return nil, fmt.Errorf("matrix payload has %d values, want %d×%d", len(data), rows, d)
	}
	return mat.NewDenseData(rows, d, data), nil
}

func writeDSFrame(w *binenc.Writer, fr *dsFrame) {
	w.F64(fr.start)
	w.F64(fr.end)
	w.F64(fr.mass)
	w.F64(fr.delta)
	w.Int(len(fr.snaps))
	for _, sn := range fr.snaps {
		w.F64(sn.t)
		writeDSDense(w, sn.rows)
	}
}

func readDSFrame(r *binenc.Reader, d int) (dsFrame, error) {
	fr := dsFrame{
		start: r.F64(),
		end:   r.F64(),
		mass:  r.F64(),
		delta: r.F64(),
	}
	nSnaps := r.Int()
	if r.Err() != nil {
		return fr, r.Err()
	}
	if nSnaps < 0 || nSnaps > dsfdMaxSnaps {
		return fr, fmt.Errorf("frame with %d snapshots exceeds decode limits", nSnaps)
	}
	if !(fr.mass >= 0) || !(fr.delta >= 0) || math.IsInf(fr.mass, 0) || math.IsInf(fr.delta, 0) {
		return fr, fmt.Errorf("frame has invalid mass %v or delta %v", fr.mass, fr.delta)
	}
	for i := 0; i < nSnaps; i++ {
		t := r.F64()
		rows, err := readDSDense(r, d)
		if err != nil {
			return fr, err
		}
		fr.snaps = append(fr.snaps, dsSnap{t: t, rows: rows})
	}
	return fr, r.Err()
}

// MarshalBinary snapshots the full DS-FD state: configuration, the
// frozen frames with their final states and prefix snapshots, the
// active frame, and the active FD sketch (as a nested FD snapshot).
// DS-FD is deterministic, so a restored sketch continues bit-exactly.
func (s *DSFD) MarshalBinary() ([]byte, error) {
	w := binenc.NewWriter()
	w.U64(dsfdMagic)
	w.Int(s.d)
	w.Int(s.cfg.N)
	w.Int(s.cfg.Ell)
	w.F64(s.cfg.R)
	w.F64(s.cfg.RSlack)
	w.Int(s.cfg.FD.Buffer)
	w.F64(s.cfg.FD.Alpha)
	w.F64(s.rSeen)
	w.F64(s.lastT)
	w.Bool(s.seen)
	w.F64(s.sinceSnap)
	w.U64(s.dumps)
	w.U64(s.snapsTaken)
	w.U64(s.shrinksFrozen)
	w.Int(len(s.frames))
	for i := range s.frames {
		writeDSFrame(w, &s.frames[i])
		writeDSDense(w, s.frames[i].final)
	}
	writeDSFrame(w, &s.cur)
	fb, err := s.fd.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w.Blob(fb)
	out := w.Bytes()
	s.tr.Emit("DS-FD", trace.KindSnapshot, s.lastT, float64(len(out)), 0)
	return out, nil
}

// UnmarshalBinary restores a DS-FD snapshot into the receiver.
func (s *DSFD) UnmarshalBinary(data []byte) error {
	r := binenc.NewReader(data)
	if magic := r.U64(); magic != dsfdMagic && r.Err() == nil {
		return fmt.Errorf("core: DSFD snapshot magic %#x unrecognised", magic)
	}
	d := r.Int()
	n := r.Int()
	ell := r.Int()
	rBound := r.F64()
	rSlack := r.F64()
	fdBuffer := r.Int()
	fdAlpha := r.F64()
	rSeen := r.F64()
	lastT := r.F64()
	seen := r.Bool()
	sinceSnap := r.F64()
	dumps := r.U64()
	snapsTaken := r.U64()
	shrinksFrozen := r.U64()
	nFrames := r.Int()
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: DSFD snapshot: %w", err)
	}
	if d < 1 || d > dsfdMaxDim || n < 1 || ell < 2 || ell > dsfdMaxDim {
		return fmt.Errorf("core: DSFD snapshot shape d=%d N=%d ell=%d", d, n, ell)
	}
	if !(rBound >= 0) || !(rSeen >= 0) || !(sinceSnap >= 0) || !(rSlack >= 1) ||
		math.IsInf(rBound, 0) || math.IsInf(rSeen, 0) || math.IsInf(sinceSnap, 0) ||
		math.IsNaN(lastT) || math.IsInf(lastT, 0) {
		return fmt.Errorf("core: DSFD snapshot has invalid bounds r=%v r_seen=%v since_snap=%v slack=%v last_t=%v", rBound, rSeen, sinceSnap, rSlack, lastT)
	}
	if fdBuffer < 1 || fdBuffer > dsfdMaxDim || !(fdAlpha > 0 && fdAlpha <= 1) {
		return fmt.Errorf("core: DSFD snapshot has invalid FD tuning buffer=%d alpha=%v", fdBuffer, fdAlpha)
	}
	// Guard the active sketch's ℓ·buffer·d allocation before NewDSFD
	// materialises it: individually-sane counts can still multiply into
	// an allocation bomb.
	if ell*fdBuffer > dsfdMaxElems/d {
		return fmt.Errorf("core: DSFD snapshot shape ell=%d buffer=%d d=%d exceeds decode limits", ell, fdBuffer, d)
	}
	if nFrames < 0 || nFrames > dsfdMaxFrames {
		return fmt.Errorf("core: DSFD snapshot has %d frozen frames", nFrames)
	}
	restored := NewDSFD(DSFDConfig{
		N: n, Ell: ell, R: rBound, RSlack: rSlack,
		FD: stream.FDOpts{Buffer: fdBuffer, Alpha: fdAlpha},
	}, d)
	restored.rSeen = rSeen
	restored.lastT, restored.seen = lastT, seen
	restored.sinceSnap = sinceSnap
	restored.dumps, restored.snapsTaken, restored.shrinksFrozen = dumps, snapsTaken, shrinksFrozen
	for i := 0; i < nFrames; i++ {
		fr, err := readDSFrame(r, d)
		if err != nil {
			return fmt.Errorf("core: DSFD snapshot frame %d: %w", i, err)
		}
		final, err := readDSDense(r, d)
		if err != nil {
			return fmt.Errorf("core: DSFD snapshot frame %d: %w", i, err)
		}
		if final == nil {
			return fmt.Errorf("core: DSFD snapshot frame %d has no final state", i)
		}
		fr.final = final
		restored.frames = append(restored.frames, fr)
	}
	cur, err := readDSFrame(r, d)
	if err != nil {
		return fmt.Errorf("core: DSFD snapshot active frame: %w", err)
	}
	restored.cur = cur
	fd := stream.NewFD(2, d) // shape overwritten by the nested snapshot
	if err := fd.UnmarshalBinary(r.Blob()); err != nil {
		return fmt.Errorf("core: DSFD snapshot: %w", err)
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: DSFD snapshot: %w", err)
	}
	if r.Rest() != 0 {
		return fmt.Errorf("core: DSFD snapshot has %d trailing bytes", r.Rest())
	}
	if fd.Ell() != ell {
		return fmt.Errorf("core: DSFD snapshot active sketch has ell=%d, want %d", fd.Ell(), ell)
	}
	if cols := fd.Matrix().Cols(); cols != d {
		return fmt.Errorf("core: DSFD snapshot active sketch has d=%d, want %d", cols, d)
	}
	restored.fd = fd
	// The nested FD's Delta accumulator restarts at zero; the frame's
	// own Σλ was persisted, so re-anchor the watermark.
	restored.deltaMark = fd.Delta()
	restored.tr = s.tr // the tracer survives restore
	restored.fd.SetTracer(s.tr)
	*s = *restored
	s.tr.Emit("DS-FD", trace.KindRestore, s.lastT, float64(len(data)), 0)
	return nil
}
