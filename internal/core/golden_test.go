package core

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand"
	"testing"

	"swsketch/internal/mat"
	"swsketch/internal/window"
)

// hashMatrix produces a stable fingerprint of a matrix's contents
// (rounded to 12 significant bits of mantissa slack to absorb
// platform-independent float noise — none is expected, but golden
// tests should not be flaky by construction).
func hashMatrix(m *mat.Dense) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(m.Rows())<<32|uint64(m.Cols()))
	h.Write(buf[:])
	for _, v := range m.Data() {
		r := math.Round(v*1e9) / 1e9
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(r))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// TestLMFDGoldenDeterminism pins LM-FD's output for a fixed stream:
// any change to the FD shrink, the merge order, the level invariants,
// or the expiry logic shows up as a changed fingerprint. Update the
// expected value deliberately when the algorithm is deliberately
// changed.
func TestLMFDGoldenDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	l := NewLMFD(window.Seq(200), 6, 12, 4)
	for i := 0; i < 1000; i++ {
		l.Update(randRow(rng, 6), float64(i))
	}
	b := l.Query(999)

	// Re-run: identical stream, identical output.
	rng2 := rand.New(rand.NewSource(12345))
	l2 := NewLMFD(window.Seq(200), 6, 12, 4)
	for i := 0; i < 1000; i++ {
		l2.Update(randRow(rng2, 6), float64(i))
	}
	if hashMatrix(b) != hashMatrix(l2.Query(999)) {
		t.Fatal("LM-FD not reproducible across runs")
	}

	// And across the sparse ingest path.
	rng3 := rand.New(rand.NewSource(12345))
	l3 := NewLMFD(window.Seq(200), 6, 12, 4)
	for i := 0; i < 1000; i++ {
		l3.UpdateSparse(mat.SparseFromDense(randRow(rng3, 6)), float64(i))
	}
	if hashMatrix(b) != hashMatrix(l3.Query(999)) {
		t.Fatal("LM-FD sparse path not bit-identical to dense path")
	}
}

// TestSamplerSeededDeterminism pins the samplers' behaviour for a
// fixed seed: restarts of a seeded pipeline must reproduce results.
func TestSamplerSeededDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		rng := rand.New(rand.NewSource(777))
		swr := NewSWR(window.Seq(150), 8, 5, 42)
		swor := NewSWOR(window.Seq(150), 8, 5, 43)
		for i := 0; i < 800; i++ {
			row := randRow(rng, 5)
			swr.Update(row, float64(i))
			swor.Update(row, float64(i))
		}
		return hashMatrix(swr.Query(799)), hashMatrix(swor.Query(799))
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatal("seeded samplers not reproducible")
	}
}
