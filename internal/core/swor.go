package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"swsketch/internal/mat"
	"swsketch/internal/stream"
	"swsketch/internal/trace"
	"swsketch/internal/window"
)

// sworCandidate extends candidate with the rank counter of Algorithm
// 5.2: rank is 1 plus the number of higher-priority rows that arrived
// after this one. A row stays a candidate exactly while rank ≤ ℓ.
type sworCandidate struct {
	candidate
	rank int
}

// SWOR samples ℓ rows without replacement, with probability
// proportional to squared norms, over a sliding window (Algorithm
// 5.2). A single candidate queue holds every row that is currently
// among the top-ℓ priorities of some window suffix; the expected queue
// length is O(ℓ·log NR) (Lemma 5.2). SWOR works for both window types.
//
// Scaling: the paper's implementation (the query step of Section 5.1)
// rescales each sampled row individually by ‖A‖_F/(√ℓ‖a‖) — the same
// factor as SWR. That choice is what produces the Figure 6 behaviour
// on skew-normed windows. Setting UniformScale switches to the
// theoretically clean Section 3 estimator that scales the whole sample
// by ‖A‖_F/‖A_S‖_F.
type SWOR struct {
	spec window.Spec
	d    int
	ell  int
	rng  *rand.Rand
	// queue holds candidates oldest-first.
	queue []sworCandidate
	norms window.NormTracker

	// UniformScale selects the Section 3 WOR estimator instead of the
	// paper's per-row rescaling.
	UniformScale bool
	// All makes Query answer with every candidate row (the paper's
	// SWOR-ALL variant) instead of only the top-ℓ sample.
	All bool

	lastT float64
	seen  bool
	tr    *trace.Tracer
}

// SetTracer attaches a tracer: ingests that evict candidates emit
// sampler_evict events, and an EH-backed norm tracker (if attached
// first) emits eh_merge events.
func (s *SWOR) SetTracer(tr *trace.Tracer) {
	s.tr = tr
	if t, ok := s.norms.(trace.Traceable); ok {
		t.SetTracer(tr)
	}
}

// NewSWOR returns a without-replacement sampler of ℓ rows over
// dimension d.
func NewSWOR(spec window.Spec, ell, d int, seed int64) *SWOR {
	if ell < 1 || d < 1 {
		panic(fmt.Sprintf("core: SWOR needs ell ≥ 1 and d ≥ 1, got %d, %d", ell, d))
	}
	return &SWOR{
		spec:  spec,
		d:     d,
		ell:   ell,
		rng:   rand.New(rand.NewSource(seed)),
		norms: window.NewExactNorms(spec),
	}
}

// NewSWORAll returns the SWOR-ALL variant, which uses every candidate
// row (uniformly rescaled) as the approximation.
func NewSWORAll(spec window.Spec, ell, d int, seed int64) *SWOR {
	s := NewSWOR(spec, ell, d, seed)
	s.All = true
	s.UniformScale = true
	return s
}

// SetNormTracker replaces the Frobenius-mass tracker. Call before the
// first Update.
func (s *SWOR) SetNormTracker(nt window.NormTracker) { s.norms = nt }

// Update feeds one row (Algorithm 5.2): expire, bump the rank of every
// candidate the new priority beats, evict ranks beyond ℓ, append.
func (s *SWOR) Update(row []float64, t float64) {
	if len(row) != s.d {
		panic(fmt.Sprintf("core: SWOR row length %d, want %d", len(row), s.d))
	}
	checkRowFinite("SWOR", row)
	if w := s.ingestRow(row, t); w > 0 {
		s.norms.Add(t, w)
	}
}

// UpdateBatch feeds rows in order, validating once and folding the
// batch's masses into the norm tracker in one call; priority keys are
// drawn in the same order as repeated Update calls, so the candidate
// queue is identical.
func (s *SWOR) UpdateBatch(rows [][]float64, times []float64) {
	validateBatch("SWOR", rows, times, s.d)
	ts := make([]float64, 0, len(rows))
	ws := make([]float64, 0, len(rows))
	for i, r := range rows {
		if w := s.ingestRow(r, times[i]); w > 0 {
			ts = append(ts, times[i])
			ws = append(ws, w)
		}
	}
	s.norms.AddBatch(ts, ws)
}

// ingestRow runs one Algorithm 5.2 step, returning the row's squared
// norm (0 when it carried no mass); norm-tracker accounting is the
// caller's.
func (s *SWOR) ingestRow(row []float64, t float64) float64 {
	if s.seen && t < s.lastT {
		panic(fmt.Sprintf("core: SWOR timestamp %v precedes %v", t, s.lastT))
	}
	s.lastT, s.seen = t, true
	expired := s.expire(s.spec.Cutoff(t))
	w := mat.SqNorm(row)
	if w == 0 {
		if expired > 0 {
			s.tr.Emit(s.Name(), trace.KindSamplerEvict, t, 0, float64(expired))
		}
		return 0
	}
	key := stream.PriorityKey(s.rng, w)

	before := len(s.queue)
	kept := s.queue[:0]
	for _, c := range s.queue {
		if key > c.key {
			c.rank++
		}
		if c.rank <= s.ell {
			kept = append(kept, c)
		}
	}
	s.queue = kept
	if bumped := before - len(kept); bumped > 0 || expired > 0 {
		s.tr.Emit(s.Name(), trace.KindSamplerEvict, t, float64(bumped), float64(expired))
	}
	r := make([]float64, s.d)
	copy(r, row)
	s.queue = append(s.queue, sworCandidate{candidate: candidate{row: r, t: t, w: w, key: key}, rank: 1})
	return w
}

func (s *SWOR) expire(cutoff float64) int {
	drop := 0
	for drop < len(s.queue) && s.queue[drop].t <= cutoff {
		drop++
	}
	if drop > 0 {
		s.queue = s.queue[drop:]
	}
	return drop
}

// Query returns the rescaled sample for the window ending at t.
func (s *SWOR) Query(t float64) *mat.Dense {
	s.expire(s.spec.Cutoff(t))
	froSq := s.norms.FroSq(t)
	if froSq <= 0 || len(s.queue) == 0 {
		return mat.NewDense(0, s.d)
	}

	chosen := make([]candidate, 0, s.ell)
	if s.All {
		for _, c := range s.queue {
			chosen = append(chosen, c.candidate)
		}
	} else {
		// The WOR sample is the top-ℓ priorities among live candidates.
		byKey := make([]sworCandidate, len(s.queue))
		copy(byKey, s.queue)
		sort.Slice(byKey, func(i, j int) bool { return byKey[i].key > byKey[j].key })
		take := s.ell
		if take > len(byKey) {
			take = len(byKey)
		}
		for _, c := range byKey[:take] {
			chosen = append(chosen, c.candidate)
		}
	}

	out := mat.NewDense(len(chosen), s.d)
	if s.UniformScale {
		var sampleSq float64
		for _, c := range chosen {
			sampleSq += c.w
		}
		f := math.Sqrt(froSq / sampleSq)
		for i, c := range chosen {
			dst := out.Row(i)
			for j, v := range c.row {
				dst[j] = f * v
			}
		}
		return out
	}
	fro := math.Sqrt(froSq)
	sqrtEll := math.Sqrt(float64(len(chosen)))
	for i, c := range chosen {
		f := fro / (sqrtEll * math.Sqrt(c.w))
		dst := out.Row(i)
		for j, v := range c.row {
			dst[j] = f * v
		}
	}
	return out
}

// RowsStored reports the candidate-queue length.
func (s *SWOR) RowsStored() int { return len(s.queue) }

// Stats implements Introspector: candidate-queue depth (the quantity
// Lemma 5.2 bounds), the rank distribution's extremes, and the norm
// tracker's size.
func (s *SWOR) Stats() map[string]float64 {
	maxRank := 0
	for _, c := range s.queue {
		if c.rank > maxRank {
			maxRank = c.rank
		}
	}
	m := map[string]float64{
		"ell":        float64(s.ell),
		"candidates": float64(len(s.queue)),
		"rank_max":   float64(maxRank),
	}
	trackerStats(m, s.norms)
	return m
}

var _ Introspector = (*SWOR)(nil)

// Name implements WindowSketch.
func (s *SWOR) Name() string {
	if s.All {
		return "SWOR-ALL"
	}
	return "SWOR"
}

var _ WindowSketch = (*SWOR)(nil)

// UpdateSparse ingests a sparse row (densified on admission; see
// SWR.UpdateSparse).
func (s *SWOR) UpdateSparse(row mat.SparseRow, t float64) {
	if m := row.MaxIdx(); m >= s.d {
		panic(fmt.Sprintf("core: SWOR sparse row index %d, dimension %d", m, s.d))
	}
	checkRowFinite("SWOR", row.Val)
	s.Update(row.Dense(s.d), t)
}

var _ SparseUpdater = (*SWOR)(nil)
