package core

import (
	"math"
	"math/rand"
	"testing"

	"swsketch/internal/mat"
	"swsketch/internal/window"
)

func TestNewLMValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewLMFD(window.Seq(10), 0, 8, 4) },
		func() { NewLM(window.Seq(10), 3, 0, 4, "x", nil) },
		func() { NewLM(window.Seq(10), 3, 8, 1, "x", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestLMRowLengthPanics(t *testing.T) {
	l := NewLMFD(window.Seq(10), 3, 8, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Update([]float64{1}, 0)
}

func TestLMFDExactForTinyStream(t *testing.T) {
	// Fewer rows than one block: everything stays raw and exact.
	l := NewLMFD(window.Seq(100), 3, 16, 4)
	ex := window.NewExact(window.Seq(100), 3)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		row := randRow(rng, 3)
		l.Update(row, float64(i))
		ex.Update(row, float64(i))
	}
	if e := ex.CovaErr(l.Query(9)); e > 1e-9 {
		t.Fatalf("tiny stream error = %v, want ~0", e)
	}
}

func TestLMLevelInvariant(t *testing.T) {
	// No level may exceed b blocks after an update.
	rng := rand.New(rand.NewSource(2))
	b := 4
	l := NewLMFD(window.Seq(2000), 4, 8, b)
	for i := 0; i < 3000; i++ {
		l.Update(randRow(rng, 4), float64(i))
		for lv := 1; lv <= l.Levels(); lv++ {
			if n := l.blocksAt(lv); n > b {
				t.Fatalf("at t=%d: level %d has %d blocks > b=%d", i, lv, n, b)
			}
		}
	}
	if l.Levels() < 2 {
		t.Fatalf("expected multiple levels, got %d", l.Levels())
	}
}

func TestLMFDErrorReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	spec := window.Seq(500)
	l := NewLMFD(spec, 8, 32, 8)
	ex := window.NewExact(spec, 8)
	var errSum float64
	cnt := 0
	for i := 0; i < 3000; i++ {
		row := randRow(rng, 8)
		l.Update(row, float64(i))
		ex.Update(row, float64(i))
		if i > 500 && i%250 == 0 {
			errSum += ex.CovaErr(l.Query(float64(i)))
			cnt++
		}
	}
	if avg := errSum / float64(cnt); avg > 0.25 {
		t.Fatalf("LM-FD avg error = %v", avg)
	}
}

func TestLMFDErrorDecreasesWithSize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d, n, win := 8, 2500, 400
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = randRow(rng, d)
	}
	errAt := func(ell, b int) float64 {
		l := NewLMFD(window.Seq(win), d, ell, b)
		ex := window.NewExact(window.Seq(win), d)
		var e float64
		cnt := 0
		for i := 0; i < n; i++ {
			l.Update(rows[i], float64(i))
			ex.Update(rows[i], float64(i))
			if i >= win && i%200 == 0 {
				e += ex.CovaErr(l.Query(float64(i)))
				cnt++
			}
		}
		return e / float64(cnt)
	}
	coarse, fine := errAt(8, 3), errAt(48, 12)
	if fine >= coarse {
		t.Fatalf("LM-FD error did not decrease with size: %v → %v", coarse, fine)
	}
}

func TestLMApproximatesWindowNotStream(t *testing.T) {
	l := NewLMFD(window.Seq(100), 2, 8, 4)
	for i := 0; i < 600; i++ {
		l.Update([]float64{1, 0}, float64(i))
	}
	for i := 600; i < 1200; i++ {
		l.Update([]float64{0, 1}, float64(i))
	}
	b := l.Query(1199)
	var col0, col1 float64
	for i := 0; i < b.Rows(); i++ {
		col0 += b.At(i, 0) * b.At(i, 0)
		col1 += b.At(i, 1) * b.At(i, 1)
	}
	// The expiring block may retain a little stale mass (that is the
	// ε/2 budget); it must be a small fraction of the window mass.
	if col0 > 20 {
		t.Fatalf("stale mass %v too large (window mass 100)", col0)
	}
	if math.Abs(col1-100) > 35 {
		t.Fatalf("window mass ≈ %v, want ≈ 100", col1)
	}
}

func TestLMTimeWindowIrregularArrivals(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	spec := window.TimeSpan(20.0)
	l := NewLMFD(spec, 6, 24, 8)
	ex := window.NewExact(spec, 6)
	tt := 0.0
	var errSum float64
	cnt := 0
	for i := 0; i < 3000; i++ {
		tt += rng.ExpFloat64() * 0.05
		row := randRow(rng, 6)
		l.Update(row, tt)
		ex.Update(row, tt)
		if i > 500 && i%250 == 0 {
			errSum += ex.CovaErr(l.Query(tt))
			cnt++
		}
	}
	if avg := errSum / float64(cnt); avg > 0.3 {
		t.Fatalf("time-window LM-FD avg error = %v", avg)
	}
}

func TestLMOversizedRowsSingleton(t *testing.T) {
	// Rows with ‖a‖² ≥ ℓ must be kept exactly until high levels; feed a
	// mix and verify error stays sane and no panic occurs.
	rng := rand.New(rand.NewSource(6))
	spec := window.Seq(300)
	ell := 16
	l := NewLMFD(spec, 4, ell, 6)
	ex := window.NewExact(spec, 4)
	for i := 0; i < 1500; i++ {
		row := randRow(rng, 4)
		if i%50 == 0 { // oversized spike: ‖a‖² ≈ 25·ℓ
			f := math.Sqrt(25 * float64(ell) / sqNorm(row))
			for j := range row {
				row[j] *= f
			}
		}
		l.Update(row, float64(i))
		ex.Update(row, float64(i))
	}
	if e := ex.CovaErr(l.Query(1499)); e > 0.3 {
		t.Fatalf("error with oversized rows = %v", e)
	}
}

func sqNorm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

func TestLMZeroRowIgnored(t *testing.T) {
	l := NewLMFD(window.Seq(10), 2, 4, 3)
	l.Update([]float64{0, 0}, 0)
	if l.RowsStored() != 0 {
		t.Fatal("zero row should be ignored")
	}
}

func TestLMRowsStoredBounded(t *testing.T) {
	// Space must stay polylogarithmic in the window, not linear.
	rng := rand.New(rand.NewSource(7))
	win := 4000
	l := NewLMFD(window.Seq(win), 4, 16, 6)
	var peak int
	for i := 0; i < 12000; i++ {
		l.Update(randRow(rng, 4), float64(i))
		if n := l.RowsStored(); n > peak {
			peak = n
		}
	}
	if peak > win/2 {
		t.Fatalf("LM-FD peak rows %d is not sublinear in window %d", peak, win)
	}
}

func TestLMHashErrorReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	spec := window.Seq(500)
	l := NewLMHash(spec, 6, 256, 8, 42)
	ex := window.NewExact(spec, 6)
	var errSum float64
	cnt := 0
	for i := 0; i < 2500; i++ {
		row := randRow(rng, 6)
		l.Update(row, float64(i))
		ex.Update(row, float64(i))
		if i > 500 && i%250 == 0 {
			errSum += ex.CovaErr(l.Query(float64(i)))
			cnt++
		}
	}
	if avg := errSum / float64(cnt); avg > 0.5 {
		t.Fatalf("LM-HASH avg error = %v", avg)
	}
	if l.Name() != "LM-HASH" {
		t.Fatal("Name wrong")
	}
}

func TestLMQueryDoesNotMutate(t *testing.T) {
	// Querying twice at the same time must give the same answer and
	// leave update behaviour intact.
	rng := rand.New(rand.NewSource(9))
	l := NewLMFD(window.Seq(200), 4, 16, 4)
	for i := 0; i < 800; i++ {
		l.Update(randRow(rng, 4), float64(i))
	}
	b1 := l.Query(799)
	b2 := l.Query(799)
	if !b1.Equal(b2, 1e-12) {
		t.Fatal("repeated queries disagree")
	}
}

func TestLMName(t *testing.T) {
	if NewLMFD(window.Seq(5), 1, 4, 3).Name() != "LM-FD" {
		t.Fatal("Name wrong")
	}
}

func TestLMMassConservation(t *testing.T) {
	// The sum of live block sizes plus the active block must track the
	// window's true mass: within it from below (whole blocks expire
	// only once fully out) and bounded above by window mass plus one
	// straddling block per level.
	rng := rand.New(rand.NewSource(10))
	spec := window.Seq(400)
	ell, b := 16, 4
	l := NewLMFD(spec, 4, ell, b)
	ex := window.NewExact(spec, 4)
	for i := 0; i < 3000; i++ {
		row := randRow(rng, 4)
		l.Update(row, float64(i))
		ex.Update(row, float64(i))
		if i > 400 && i%100 == 0 {
			var tracked float64
			for lv := range l.levels {
				for j := range l.levels[lv] {
					tracked += l.levels[lv][j].size
				}
			}
			tracked += l.active.size
			win := ex.FroSq()
			// One straddling block per level can extend past the window;
			// each is bounded by its level capacity.
			var slack float64
			for lv := range l.levels {
				slack += l.ell * float64(uint64(1)<<uint(lv+1))
			}
			if tracked < win-1e-6 {
				t.Fatalf("at %d: tracked mass %v below window mass %v", i, tracked, win)
			}
			if tracked > win+slack+1e-6 {
				t.Fatalf("at %d: tracked mass %v exceeds window %v + slack %v", i, tracked, win, slack)
			}
		}
	}
}

func TestLMFDAdversarialAccumulatingDirection(t *testing.T) {
	// The stream that destroys truncation-only sketches (one direction
	// accumulating mass below the retained spectrum, see
	// stream.TestISVDNoGuaranteeVsFD) must NOT destroy LM-FD: every
	// block sketch is FD, whose shrinkage accounts for deleted mass, and
	// merges preserve the bound.
	d := 10
	spec := window.Seq(600)
	l := NewLMFD(spec, d, 16, 6)
	ex := window.NewExact(spec, d)
	tt := 0.0
	push := func(row []float64) {
		l.Update(row, tt)
		ex.Update(row, tt)
		tt++
	}
	for i := 0; i < 4; i++ {
		row := make([]float64, d)
		row[i] = 3.9 // strong but below the singleton threshold ℓ=16
		push(row)
	}
	for rep := 0; rep < 596; rep++ {
		row := make([]float64, d)
		row[4] = 1
		push(row)
	}
	// The window now holds mostly the accumulating direction; LM-FD
	// must track it.
	b := l.Query(tt - 1)
	if e := ex.CovaErr(b); e > 0.25 {
		t.Fatalf("LM-FD adversarial error = %v", e)
	}
	unit := make([]float64, d)
	unit[4] = 1
	got := mat.SqNorm(b.MulVec(unit))
	want := ex.Gram().At(4, 4)
	if got < want/2 {
		t.Fatalf("accumulated direction lost: sketch %v vs window %v", got, want)
	}
}
