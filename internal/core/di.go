package core

import (
	"fmt"
	"math"

	"swsketch/internal/mat"
	"swsketch/internal/stream"
	"swsketch/internal/trace"
)

// diBlock is a completed block of the Dyadic Interval framework. A
// level-i block covers exactly 2^{i-1} consecutive level-1 blocks;
// startIdx/endIdx are the (1-based) level-1 block indices it spans and
// startT/endT the timestamps of its first and last row.
type diBlock struct {
	startIdx, endIdx int
	startT, endT     float64
	sk               stream.Sketch
}

// DIConfig parameterises the Dyadic Interval framework.
type DIConfig struct {
	// N is the sequence window size (rows).
	N int
	// R bounds the squared norm of every row (rows must satisfy
	// 1 ≤ ‖a‖² ≤ R up to RSlack).
	R float64
	// L is the number of levels; the paper sets L = ⌈log₂(R/ε)⌉. The
	// level-1 block mass capacity is N·R/2^L.
	L int
	// Ell is the target row count of the query answer; the level-i
	// sketch gets ≈ Ell/2^{L-i+1} rows (level L gets Ell/2), matching
	// the paper's experimental setup.
	Ell int
	// MinEll floors the per-level sketch size (default 4).
	MinEll int
	// RSlack is the multiplicative tolerance on R before Update
	// panics (default 1+1e-9, absorbing float round-off on rows
	// normalised to exactly R).
	RSlack float64
}

func (c DIConfig) validate() DIConfig {
	if c.N < 1 {
		panic(fmt.Sprintf("core: DI needs N ≥ 1, got %d", c.N))
	}
	if c.R < 1 {
		panic(fmt.Sprintf("core: DI needs R ≥ 1, got %v", c.R))
	}
	if c.L < 1 || c.L > 26 {
		panic(fmt.Sprintf("core: DI needs 1 ≤ L ≤ 26, got %d", c.L))
	}
	if c.Ell < 2 {
		panic(fmt.Sprintf("core: DI needs Ell ≥ 2, got %d", c.Ell))
	}
	if c.MinEll == 0 {
		c.MinEll = 4
	}
	if c.RSlack == 0 {
		c.RSlack = 1 + 1e-9
	}
	return c
}

// levelEll returns the sketch size for (1-based) level i.
func (c DIConfig) levelEll(i int) int {
	ell := c.Ell >> uint(c.L-i+1)
	if ell < c.MinEll {
		ell = c.MinEll
	}
	return ell
}

// DI is the Dyadic Interval framework of Section 7: it converts an
// arbitrary streaming sketch into a sequence-window sketch. The stream
// is cut into level-1 blocks of mass ≈ N·R/2^L; level-i blocks are
// aligned unions of 2^{i-1} level-1 blocks, built by feeding every row
// into one active sketch per level and closing active blocks on the
// dyadic boundaries of a binary counter. A query covers the window
// with at most 2 completed blocks per level plus the level-1 active
// rows and concatenates their sketches (decomposability, Lemma 7.1).
//
// DI only supports sequence-based windows (the dyadic structure cannot
// shrink or grow) and must know the norm bound R a priori.
type DI struct {
	cfg     DIConfig
	d       int
	factory func(level int, d int) stream.Sketch
	name    string

	cap1 float64 // level-1 block mass capacity

	// levels[i] holds completed blocks of level i+1, oldest first.
	levels [][]diBlock
	// actives[i] is the open sketch of level i+1; activeStartT[i]
	// records the timestamp of its first row.
	actives      []stream.Sketch
	activeStartT []float64
	activeRows   []int // rows fed into each active since it opened

	m        int     // completed level-1 blocks so far
	curSize  float64 // mass of the open level-1 block
	curStart float64 // timestamp of the open level-1 block's first row
	lastT    float64
	seen     bool
	// raw holds the open level-1 block's rows while they fit in the
	// level-1 sketch budget, so small open blocks are answered exactly;
	// once the block outgrows the budget (possible when row masses are
	// far below cap1) rawOverflow is set and queries fall back to the
	// level-1 active sketch, keeping space bounded.
	raw         []mat.SparseRow
	rawTimes    []float64
	rawOverflow bool
	rawCap      int

	// normMin/normMax track the smallest and largest nonzero squared
	// row norms seen, giving the observed norm ratio R̂ that Stats
	// reports next to the declared bound (Section 7's space profile
	// depends on R; operators want to see how tight the declaration
	// is).
	normMin, normMax float64

	tr *trace.Tracer
}

// SetTracer attaches a tracer: block closes, retires, and raw-buffer
// overflows emit events. The per-level active sketches (created at
// construction) pick up the tracer too, so FD-backed levels emit
// fd_shrink spans from here on.
func (s *DI) SetTracer(tr *trace.Tracer) {
	s.tr = tr
	for _, a := range s.actives {
		if t, ok := a.(trace.Traceable); ok {
			t.SetTracer(tr)
		}
	}
}

// mkSketch builds a per-level sketch via the factory and attaches the
// tracer when the sketch supports it.
func (s *DI) mkSketch(level int) stream.Sketch {
	sk := s.factory(level, s.d)
	if t, ok := sk.(trace.Traceable); ok {
		t.SetTracer(s.tr)
	}
	return sk
}

// NewDI builds a Dyadic Interval sketch from a per-level streaming
// sketch factory.
func NewDI(cfg DIConfig, d int, name string, factory func(level, d int) stream.Sketch) *DI {
	cfg = cfg.validate()
	if d < 1 {
		panic(fmt.Sprintf("core: DI needs d ≥ 1, got %d", d))
	}
	di := &DI{
		cfg:     cfg,
		d:       d,
		factory: factory,
		name:    name,
		cap1:    float64(cfg.N) * cfg.R / math.Pow(2, float64(cfg.L)),
		levels:  make([][]diBlock, cfg.L),
	}
	di.actives = make([]stream.Sketch, cfg.L)
	di.activeStartT = make([]float64, cfg.L)
	di.activeRows = make([]int, cfg.L)
	for i := 0; i < cfg.L; i++ {
		di.actives[i] = factory(i+1, d)
	}
	// Keep open-block rows raw while they fit within one full answer's
	// budget; beyond that the level-1 active sketch stands in.
	di.rawCap = cfg.Ell
	return di
}

// NewDIFD builds DI over FrequentDirections: the paper's DI-FD
// (Corollary 7.1), the most space-efficient choice when R is small.
func NewDIFD(cfg DIConfig, d int) *DI {
	return NewDIFDOpts(cfg, d, stream.FDOpts{})
}

// NewDIFDOpts builds DI-FD with FastFD ingest tuning applied to every
// per-level sketch (see stream.FDOpts). The zero FDOpts reproduces
// NewDIFD exactly.
func NewDIFDOpts(cfg DIConfig, d int, o stream.FDOpts) *DI {
	c := cfg.validate()
	o = o.Normalize()
	return NewDI(cfg, d, "DI-FD", func(level, dim int) stream.Sketch {
		ell := c.levelEll(level)
		if ell < 2 {
			ell = 2
		}
		return stream.NewFDOpts(ell, dim, o)
	})
}

// NewDIRP builds DI over random projections: the appendix's DI-RP
// (Corollary A.2).
func NewDIRP(cfg DIConfig, d int, seed int64) *DI {
	c := cfg.validate()
	next := seed
	return NewDI(cfg, d, "DI-RP", func(level, dim int) stream.Sketch {
		next++
		return stream.NewRP(c.levelEll(level), dim, next)
	})
}

// NewDIHash builds DI over feature hashing: the appendix's DI-HASH
// (Corollary A.3).
func NewDIHash(cfg DIConfig, d int, seed uint64) *DI {
	c := cfg.validate()
	fam := stream.NewHashFamily(seed)
	return NewDI(cfg, d, "DI-HASH", func(level, dim int) stream.Sketch {
		return fam.NewSketch(c.levelEll(level), dim)
	})
}

// Update implements Algorithm 7.1: expire, feed the row into every
// level's active sketch, and close active blocks on dyadic boundaries
// when the level-1 block fills up.
func (s *DI) Update(row []float64, t float64) {
	if len(row) != s.d {
		panic(fmt.Sprintf("core: DI row length %d, want %d", len(row), s.d))
	}
	checkRowFinite("DI", row)
	s.ingest(mat.SparseFromDense(row), t)
}

// UpdateBatch ingests rows in order with one up-front validation pass;
// the dyadic counter advances exactly as under row-at-a-time Update.
func (s *DI) UpdateBatch(rows [][]float64, times []float64) {
	validateBatch("DI", rows, times, s.d)
	for i, r := range rows {
		s.ingest(mat.SparseFromDense(r), times[i])
	}
}

// UpdateSparse ingests a sparse row, equivalent to Update on its dense
// form; the open block stores it sparsely and the per-level active
// sketches use their O(nnz) paths. The row's slices are copied.
func (s *DI) UpdateSparse(row mat.SparseRow, t float64) {
	if m := row.MaxIdx(); m >= s.d {
		panic(fmt.Sprintf("core: DI sparse row index %d, dimension %d", m, s.d))
	}
	checkRowFinite("DI", row.Val)
	idx := make([]int, len(row.Idx))
	val := make([]float64, len(row.Val))
	copy(idx, row.Idx)
	copy(val, row.Val)
	s.ingest(mat.SparseRow{Idx: idx, Val: val}, t)
}

// ingest owns r (already copied).
func (s *DI) ingest(r mat.SparseRow, t float64) {
	if s.seen && t < s.lastT {
		panic(fmt.Sprintf("core: DI timestamp %v precedes %v", t, s.lastT))
	}
	w := r.SqNorm()
	if w == 0 {
		return // zero rows are disallowed on sequence windows; carry no mass
	}
	if w > s.cfg.R*s.cfg.RSlack {
		panic(fmt.Sprintf("core: DI row squared norm %v exceeds declared R=%v", w, s.cfg.R))
	}
	if s.normMin == 0 || w < s.normMin {
		s.normMin = w
	}
	if w > s.normMax {
		s.normMax = w
	}
	s.expire(t - float64(s.cfg.N))
	if len(s.raw) == 0 {
		s.curStart = t
	}
	s.lastT, s.seen = t, true

	if !s.rawOverflow {
		if len(s.raw) < s.rawCap {
			s.raw = append(s.raw, r)
			s.rawTimes = append(s.rawTimes, t)
		} else {
			s.tr.Emit(s.name, trace.KindDIRawOverflow, t, float64(len(s.raw)), 0)
			s.raw, s.rawTimes, s.rawOverflow = nil, nil, true
		}
	}
	for i := range s.actives {
		if s.activeRows[i] == 0 {
			s.activeStartT[i] = t
		}
		feedOne(s.actives[i], r, s.d)
		s.activeRows[i]++
	}
	s.curSize += w

	if s.curSize > s.cap1 {
		s.closeBlocks(t)
	}
}

// feedOne streams one sparse row into a sketch via its sparse path
// when available.
func feedOne(sk stream.Sketch, r mat.SparseRow, d int) {
	if su, ok := sk.(stream.SparseUpdatable); ok {
		su.UpdateSparse(r)
		return
	}
	sk.Update(r.Dense(d))
}

// closeBlocks runs the binary counter: the level-1 block just
// completed is block m+1; level i closes whenever (m+1) is a multiple
// of 2^{i-1}.
func (s *DI) closeBlocks(endT float64) {
	s.m++
	for i := 0; i < s.cfg.L; i++ {
		span := 1 << uint(i) // 2^{(i+1)-1} level-1 blocks per level-(i+1) block
		if s.m%span != 0 {
			continue
		}
		blk := diBlock{
			startIdx: s.m - span + 1,
			endIdx:   s.m,
			startT:   s.activeStartT[i],
			endT:     endT,
			sk:       s.actives[i],
		}
		s.levels[i] = append(s.levels[i], blk)
		s.tr.Emit(s.name, trace.KindDIClose, endT, float64(i+1), float64(s.m))
		s.actives[i] = s.mkSketch(i + 1)
		s.activeRows[i] = 0
	}
	// Open a fresh level-1 block.
	s.curSize = 0
	s.raw, s.rawTimes, s.rawOverflow = nil, nil, false
}

// expire removes completed blocks that lie entirely outside (cutoff, t].
func (s *DI) expire(cutoff float64) {
	dropped := 0
	for i := range s.levels {
		lv := s.levels[i]
		drop := 0
		for drop < len(lv) && lv[drop].endT <= cutoff {
			drop++
		}
		if drop > 0 {
			s.levels[i] = lv[drop:]
			dropped += drop
		}
	}
	if dropped > 0 && s.tr.Enabled() {
		oldest := s.m + 1
		if lv1 := s.levels[0]; len(lv1) > 0 {
			oldest = lv1[0].startIdx
		}
		s.tr.Emit(s.name, trace.KindDIRetire, cutoff, float64(dropped), float64(oldest))
	}
}

// Query implements Algorithm 7.2: cover the window's completed
// level-1 block range with the largest aligned dyadic blocks, then add
// the open level-1 rows; concatenate all selected sketches.
func (s *DI) Query(t float64) *mat.Dense {
	cutoff := t - float64(s.cfg.N)
	s.expire(cutoff)

	// Smallest completed level-1 block index fully inside the window.
	startIdx := s.m + 1
	if lv1 := s.levels[0]; len(lv1) > 0 {
		for _, b := range lv1 {
			if b.startT > cutoff {
				startIdx = b.startIdx
				break
			}
		}
	}

	var parts []*mat.Dense
	pos := startIdx
	for pos <= s.m {
		// Largest aligned span starting at pos that fits within m.
		span := 1
		for span*2 <= s.m-pos+1 && (pos-1)%(span*2) == 0 {
			span *= 2
		}
		blk := s.findBlock(pos, pos+span-1)
		for blk == nil && span > 1 {
			// The aligned block may have been expired at a high level
			// while its halves survive, or never formed; fall back.
			span /= 2
			blk = s.findBlock(pos, pos+span-1)
		}
		if blk == nil {
			// No completed block covers pos (expired): skip it. Its
			// rows are the expiring-block error the analysis budgets.
			pos++
			continue
		}
		parts = append(parts, blk.sk.Matrix())
		pos += span
	}
	// The open level-1 block: exact raw rows (filtered by the cutoff)
	// while they fit the level-1 budget, otherwise the level-1 active
	// sketch — skipped entirely once the whole open block has expired.
	if s.rawOverflow {
		if s.activeRows[0] > 0 && s.lastT > cutoff {
			parts = append(parts, s.actives[0].Matrix())
		}
	} else {
		live := 0
		for live < len(s.raw) && s.rawTimes[live] <= cutoff {
			live++
		}
		if live < len(s.raw) {
			rows := s.raw[live:]
			openRows := mat.NewDense(len(rows), s.d)
			for i, r := range rows {
				r.ScatterTo(openRows.Row(i))
			}
			parts = append(parts, openRows)
		}
	}

	out := mat.NewDense(0, s.d)
	for _, p := range parts {
		out = mat.Stack(out, p)
	}
	if out.Rows() == 0 {
		return mat.NewDense(0, s.d)
	}
	return out
}

// findBlock returns the completed block spanning exactly level-1
// blocks [lo, hi], or nil.
func (s *DI) findBlock(lo, hi int) *diBlock {
	span := hi - lo + 1
	level := 0
	for 1<<uint(level) < span {
		level++
	}
	if 1<<uint(level) != span || level >= s.cfg.L {
		return nil
	}
	for j := range s.levels[level] {
		b := &s.levels[level][j]
		if b.startIdx == lo && b.endIdx == hi {
			return b
		}
	}
	return nil
}

// RowsStored reports rows across all completed block sketches, the
// active sketches, and the open raw rows.
func (s *DI) RowsStored() int {
	n := len(s.raw)
	if s.rawOverflow {
		n = 0 // the level-1 active sketch (counted below) answers instead
	}
	for i := range s.levels {
		for j := range s.levels[i] {
			n += s.levels[i][j].sk.RowsStored()
		}
	}
	for i := range s.actives {
		if s.activeRows[i] > 0 {
			n += s.actives[i].RowsStored()
		}
	}
	return n
}

// CompletedBlocks reports the number of completed level-1 blocks (for
// tests).
func (s *DI) CompletedBlocks() int { return s.m }

// Name implements WindowSketch.
func (s *DI) Name() string { return s.name }

// Stats implements Introspector: dyadic-tree occupancy (completed
// blocks per level, closed level-1 blocks), open-block fill, the
// declared norm bound R next to the observed norm-ratio estimate
// R̂ = max‖a‖²/min‖a‖², and — when the per-level sketches expose a
// shrink count (FD does) — the total shrinks across live sketches.
func (s *DI) Stats() map[string]float64 {
	m := map[string]float64{
		"levels":           float64(s.cfg.L),
		"l1_blocks_closed": float64(s.m),
		"open_rows":        float64(len(s.raw)),
		"open_mass":        s.curSize,
		"raw_overflow":     b2f(s.rawOverflow),
		"declared_r":       s.cfg.R,
	}
	if s.normMin > 0 {
		m["norm_sq_min"] = s.normMin
		m["norm_sq_max"] = s.normMax
		m["norm_ratio"] = s.normMax / s.normMin
	}
	blocks, shrinks := 0, uint64(0)
	haveShrinks := false
	amort := 0.0
	addShrinks := func(sk stream.Sketch) {
		if sc, ok := sk.(interface{ Shrinks() uint64 }); ok {
			shrinks += sc.Shrinks()
			haveShrinks = true
		}
		if am, ok := sk.(interface{ Amortization() float64 }); ok {
			if a := am.Amortization(); a > amort {
				amort = a
			}
		}
	}
	for i := range s.levels {
		m[fmt.Sprintf("level%d_blocks", i+1)] = float64(len(s.levels[i]))
		blocks += len(s.levels[i])
		for j := range s.levels[i] {
			addShrinks(s.levels[i][j].sk)
		}
	}
	m["completed_blocks"] = float64(blocks)
	for i := range s.actives {
		if s.activeRows[i] > 0 {
			addShrinks(s.actives[i])
		}
	}
	if haveShrinks {
		m["fd_shrinks"] = float64(shrinks)
		m["fd_amortization"] = amort
	}
	return m
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

var (
	_ WindowSketch = (*DI)(nil)
	_ Introspector = (*DI)(nil)
)

// NewDIISVD builds DI over the truncated incremental-SVD heuristic —
// a demonstration that the framework hosts *arbitrary* streaming
// sketches, guarantees or not (Section 7's claim). The resulting
// window sketch inherits iSVD's lack of worst-case bounds.
func NewDIISVD(cfg DIConfig, d int) *DI {
	c := cfg.validate()
	return NewDI(cfg, d, "DI-ISVD", func(level, dim int) stream.Sketch {
		ell := c.levelEll(level) / 2
		if ell < 2 {
			ell = 2
		}
		return stream.NewISVD(ell, dim)
	})
}

// QueryRange returns an approximation for the rows with timestamps in
// (from, to], where the interval must lie inside the current window
// (to ≤ last update time, from ≥ to−N). This is a capability unique to
// the dyadic structure among the paper's sketches: the same completed
// blocks that answer the full window also tile any sub-range, with the
// resolution of a level-1 block at the edges. LM cannot answer this
// (its blocks telescope toward the past); the samplers cannot either
// (their candidate sets are tuned to suffixes).
func (s *DI) QueryRange(from, to float64) *mat.Dense {
	if from >= to {
		panic(fmt.Sprintf("core: DI range (%v, %v] is empty", from, to))
	}
	if s.seen && to > s.lastT {
		to = s.lastT
	}
	if lo := s.lastT - float64(s.cfg.N); s.seen && from < lo {
		panic(fmt.Sprintf("core: DI range start %v outside the window (≥ %v)", from, lo))
	}
	s.expire(s.lastT - float64(s.cfg.N))

	// Completed level-1 blocks fully inside (from, to].
	startIdx, endIdx := s.m+1, 0
	for _, b := range s.levels[0] {
		if b.startT > from && b.endT <= to {
			if b.startIdx < startIdx {
				startIdx = b.startIdx
			}
			if b.endIdx > endIdx {
				endIdx = b.endIdx
			}
		}
	}

	var parts []*mat.Dense
	pos := startIdx
	for pos <= endIdx {
		span := 1
		for span*2 <= endIdx-pos+1 && (pos-1)%(span*2) == 0 {
			span *= 2
		}
		blk := s.findBlock(pos, pos+span-1)
		for blk == nil && span > 1 {
			span /= 2
			blk = s.findBlock(pos, pos+span-1)
		}
		if blk == nil {
			pos++
			continue
		}
		parts = append(parts, blk.sk.Matrix())
		pos += span
	}
	// Open raw rows inside the range (only relevant when `to` reaches
	// into the open block).
	if !s.rawOverflow {
		var rows []mat.SparseRow
		for i, r := range s.raw {
			if s.rawTimes[i] > from && s.rawTimes[i] <= to {
				rows = append(rows, r)
			}
		}
		if len(rows) > 0 {
			open := mat.NewDense(len(rows), s.d)
			for i, r := range rows {
				r.ScatterTo(open.Row(i))
			}
			parts = append(parts, open)
		}
	} else if s.activeRows[0] > 0 && to >= s.lastT && from < s.curStart {
		// The whole open block falls inside the range; use its sketch.
		parts = append(parts, s.actives[0].Matrix())
	}

	out := mat.NewDense(0, s.d)
	for _, p := range parts {
		out = mat.Stack(out, p)
	}
	return out
}
