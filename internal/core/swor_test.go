package core

import (
	"math"
	"math/rand"
	"testing"

	"swsketch/internal/window"
)

func TestNewSWORValidation(t *testing.T) {
	for _, c := range [][2]int{{0, 5}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for ell=%d d=%d", c[0], c[1])
				}
			}()
			NewSWOR(window.Seq(10), c[0], c[1], 1)
		}()
	}
}

func TestSWORRowLengthPanics(t *testing.T) {
	s := NewSWOR(window.Seq(10), 2, 3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Update([]float64{1}, 0)
}

func TestSWORRankInvariant(t *testing.T) {
	// Every candidate's rank must be ≤ ℓ, and ranks count exactly the
	// higher-priority candidates that arrived later.
	rng := rand.New(rand.NewSource(1))
	ell := 5
	s := NewSWOR(window.Seq(100), ell, 3, 2)
	for i := 0; i < 500; i++ {
		s.Update(randRow(rng, 3), float64(i))
		for j, c := range s.queue {
			if c.rank > ell {
				t.Fatalf("candidate %d has rank %d > ℓ=%d", j, c.rank, ell)
			}
			// Recount: candidates after j with larger key, plus one.
			cnt := 1
			for k := j + 1; k < len(s.queue); k++ {
				if s.queue[k].key > c.key {
					cnt++
				}
			}
			if cnt != c.rank {
				t.Fatalf("candidate %d rank %d but recount %d", j, c.rank, cnt)
			}
		}
	}
}

func TestSWORQueryTopEll(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewSWOR(window.Seq(200), 7, 4, 3)
	for i := 0; i < 300; i++ {
		s.Update(randRow(rng, 4), float64(i))
	}
	b := s.Query(299)
	if b.Rows() != 7 {
		t.Fatalf("Query rows = %d, want 7", b.Rows())
	}
}

func TestSWORAllUsesAllCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSWORAll(window.Seq(200), 7, 4, 4)
	for i := 0; i < 300; i++ {
		s.Update(randRow(rng, 4), float64(i))
	}
	b := s.Query(299)
	if b.Rows() != s.RowsStored() {
		t.Fatalf("SWOR-ALL rows %d != candidates %d", b.Rows(), s.RowsStored())
	}
	if b.Rows() <= 7 {
		t.Fatalf("SWOR-ALL should have more than ℓ rows, got %d", b.Rows())
	}
	if s.Name() != "SWOR-ALL" {
		t.Fatal("Name wrong")
	}
}

func TestSWORCandidateCountLogarithmic(t *testing.T) {
	// Lemma 5.2: E[candidates] = O(ℓ·log NR).
	rng := rand.New(rand.NewSource(4))
	ell := 10
	s := NewSWOR(window.Seq(1000), ell, 4, 5)
	var peak int
	for i := 0; i < 5000; i++ {
		s.Update(randRow(rng, 4), float64(i))
		if i > 1000 {
			if n := s.RowsStored(); n > peak {
				peak = n
			}
		}
	}
	if peak > ell*40 {
		t.Fatalf("peak candidates %d suggests linear growth", peak)
	}
	if peak < ell {
		t.Fatalf("peak candidates %d below ℓ", peak)
	}
}

func TestSWORExpiry(t *testing.T) {
	s := NewSWOR(window.Seq(10), 3, 2, 6)
	for i := 0; i < 50; i++ {
		s.Update([]float64{1, 1}, float64(i))
	}
	for _, c := range s.queue {
		if c.t <= 39 {
			t.Fatalf("expired candidate at t=%v survives", c.t)
		}
	}
}

func TestSWORApproximatesWindowNotStream(t *testing.T) {
	s := NewSWOR(window.Seq(100), 20, 2, 7)
	for i := 0; i < 500; i++ {
		s.Update([]float64{1, 0}, float64(i))
	}
	for i := 500; i < 1000; i++ {
		s.Update([]float64{0, 1}, float64(i))
	}
	b := s.Query(999)
	for i := 0; i < b.Rows(); i++ {
		if b.At(i, 0) != 0 {
			t.Fatal("sketch retains expired direction")
		}
	}
}

func TestSWORUniformScaleExactOnUniformNorms(t *testing.T) {
	// With all norms equal and ℓ ≥ window, both scalings agree and the
	// estimate is exact.
	spec := window.Seq(20)
	per := NewSWOR(spec, 30, 2, 8)
	uni := NewSWOR(spec, 30, 2, 8)
	uni.UniformScale = true
	ex := window.NewExact(spec, 2)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		theta := rng.Float64() * 2 * math.Pi
		row := []float64{math.Cos(theta), math.Sin(theta)}
		per.Update(row, float64(i))
		uni.Update(row, float64(i))
		ex.Update(row, float64(i))
	}
	if e := ex.CovaErr(per.Query(99)); e > 1e-8 {
		t.Fatalf("per-row SWOR with full coverage err = %v", e)
	}
	if e := ex.CovaErr(uni.Query(99)); e > 1e-8 {
		t.Fatalf("uniform SWOR with full coverage err = %v", e)
	}
}

func TestSWORErrorDecreasesWithEll(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d, n, win := 8, 1500, 300
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = randRow(rng, d)
	}
	errAt := func(ell int) float64 {
		var sum float64
		const seeds = 3
		for sd := int64(0); sd < seeds; sd++ {
			s := NewSWOR(window.Seq(win), ell, d, 100+sd)
			ex := window.NewExact(window.Seq(win), d)
			var e float64
			cnt := 0
			for i := 0; i < n; i++ {
				s.Update(rows[i], float64(i))
				ex.Update(rows[i], float64(i))
				if i >= win && i%100 == 0 {
					e += ex.CovaErr(s.Query(float64(i)))
					cnt++
				}
			}
			sum += e / float64(cnt)
		}
		return sum / seeds
	}
	small, large := errAt(10), errAt(150)
	if large >= small {
		t.Fatalf("SWOR error did not decrease with ell: ℓ=10→%v, ℓ=150→%v", small, large)
	}
}

func TestSWORSkewedWindowDegradesWithEll(t *testing.T) {
	// The Figure 6 phenomenon end-to-end: per-row-scaled SWOR error
	// grows with ℓ when the window has few huge and many tiny rows.
	d := 4
	build := func(ell int, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		spec := window.Seq(400)
		s := NewSWOR(spec, ell, d, seed)
		ex := window.NewExact(spec, d)
		for i := 0; i < 400; i++ {
			row := randRow(rng, d)
			scale := 0.05
			if i >= 380 { // 20 huge rows at the end
				scale = 30
			}
			for j := range row {
				row[j] *= scale
			}
			s.Update(row, float64(i))
			ex.Update(row, float64(i))
		}
		return ex.CovaErr(s.Query(399))
	}
	var small, large float64
	const seeds = 6
	for sd := int64(0); sd < seeds; sd++ {
		small += build(20, 200+sd)
		large += build(120, 300+sd)
	}
	if large <= small {
		t.Fatalf("per-row SWOR error did not grow with ℓ on skewed window: ℓ=20→%v, ℓ=120→%v",
			small/seeds, large/seeds)
	}
}

func TestSWORTimeWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	spec := window.TimeSpan(10.0)
	s := NewSWOR(spec, 30, 4, 12)
	ex := window.NewExact(spec, 4)
	tt := 0.0
	var errSum float64
	cnt := 0
	for i := 0; i < 2000; i++ {
		tt += rng.ExpFloat64() * 0.1
		row := randRow(rng, 4)
		s.Update(row, tt)
		ex.Update(row, tt)
		if i > 300 && i%200 == 0 {
			errSum += ex.CovaErr(s.Query(tt))
			cnt++
		}
	}
	if avg := errSum / float64(cnt); avg > 0.6 {
		t.Fatalf("time-window SWOR avg error = %v", avg)
	}
}

func TestSWOREmptyQuery(t *testing.T) {
	s := NewSWOR(window.Seq(10), 4, 3, 13)
	if b := s.Query(0); b.Rows() != 0 {
		t.Fatalf("empty sketch query rows = %d", b.Rows())
	}
}

func TestSWORZeroRowSkipped(t *testing.T) {
	s := NewSWOR(window.Seq(10), 4, 2, 14)
	s.Update([]float64{0, 0}, 0)
	if s.RowsStored() != 0 {
		t.Fatal("zero row should not become a candidate")
	}
}
