package core

import (
	"fmt"

	"swsketch/internal/mat"
)

// Zero is the degenerate baseline the paper's observation (5) calls
// out: it always answers B = 0, achieving covariance error
// ‖AᵀA‖₂/‖A‖²_F = σ₁²/Σσᵢ² — already small on data whose energy is
// spread across many directions (0.0338 on the paper's SYNTHETIC).
// Any sketch worth its space must beat this number; the harness prints
// it alongside the figures to anchor the error axes.
type Zero struct {
	d int
}

// NewZero returns the zero-answer baseline for dimension d.
func NewZero(d int) *Zero {
	if d < 1 {
		panic(fmt.Sprintf("core: Zero needs d ≥ 1, got %d", d))
	}
	return &Zero{d: d}
}

// Update discards the row.
func (z *Zero) Update(row []float64, t float64) {
	if len(row) != z.d {
		panic(fmt.Sprintf("core: Zero row length %d, want %d", len(row), z.d))
	}
}

// UpdateBatch discards the rows after the same length check as Update.
func (z *Zero) UpdateBatch(rows [][]float64, times []float64) {
	if len(rows) != len(times) {
		panic(fmt.Sprintf("core: Zero batch has %d rows but %d timestamps", len(rows), len(times)))
	}
	for i, r := range rows {
		if len(r) != z.d {
			panic(fmt.Sprintf("core: Zero batch row %d length %d, want %d", i, len(r), z.d))
		}
	}
}

// Query returns the empty approximation.
func (z *Zero) Query(t float64) *mat.Dense { return mat.NewDense(0, z.d) }

// RowsStored reports zero.
func (z *Zero) RowsStored() int { return 0 }

// Name implements WindowSketch.
func (z *Zero) Name() string { return "ZERO" }

var _ WindowSketch = (*Zero)(nil)
