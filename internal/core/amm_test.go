package core

import (
	"bytes"
	"math/rand"
	"testing"

	"swsketch/internal/mat"
	"swsketch/internal/stream"
	"swsketch/internal/window"
)

// pairedRows draws n correlated row pairs sharing a k-dim latent
// factor, returned as stacked rows [a|b] plus the split point.
func pairedRows(rng *rand.Rand, n, dA, dB, k int) [][]float64 {
	ga := make([][]float64, k)
	gb := make([][]float64, k)
	for l := 0; l < k; l++ {
		ga[l] = make([]float64, dA)
		gb[l] = make([]float64, dB)
		for j := range ga[l] {
			ga[l][j] = rng.NormFloat64()
		}
		for j := range gb[l] {
			gb[l][j] = rng.NormFloat64()
		}
	}
	rows := make([][]float64, n)
	z := make([]float64, k)
	for i := range rows {
		for l := range z {
			z[l] = rng.NormFloat64()
		}
		row := make([]float64, dA+dB)
		for j := 0; j < dA; j++ {
			s := 0.25 * rng.NormFloat64()
			for l := 0; l < k; l++ {
				s += z[l] * ga[l][j]
			}
			row[j] = s
		}
		for j := 0; j < dB; j++ {
			s := 0.25 * rng.NormFloat64()
			for l := 0; l < k; l++ {
				s += z[l] * gb[l][j]
			}
			row[dA+j] = s
		}
		rows[i] = row
	}
	return rows
}

func maxStackedSqNorm(rows [][]float64) float64 {
	m := 0.0
	for _, r := range rows {
		if w := mat.SqNorm(r); w > m {
			m = w
		}
	}
	return m
}

func TestNewAMMValidation(t *testing.T) {
	spec := window.Spec{Kind: window.Sequence, Size: 100}
	for _, c := range []func(){
		func() { NewLMAMM(spec, 0, 3, 8, 4) },
		func() { NewLMAMM(spec, 3, 0, 8, 4) },
		func() { NewLMAMM(spec, 3, 3, 1, 4) },
		func() { NewDIAMM(DIConfig{N: 100, R: 4, L: 3, Ell: 16}, 0, 3) },
		func() { AutoAMM(spec, 3, 3, 0) },
		func() { AutoAMM(spec, 3, 3, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected constructor panic")
				}
			}()
			c()
		}()
	}
}

func TestAMMPairedMismatchPanics(t *testing.T) {
	a := NewLMAMM(window.Spec{Kind: window.Sequence, Size: 100}, 3, 2, 8, 4)
	for _, pair := range [][2][]float64{
		{{1, 2}, {1, 2}},       // A side short
		{{1, 2, 3}, {1, 2, 3}}, // B side long
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for pair lengths (%d,%d)", len(pair[0]), len(pair[1]))
				}
			}()
			a.UpdatePaired(1, pair[0], pair[1])
		}()
	}
}

func TestLMAMMTracksExactProduct(t *testing.T) {
	const (
		dA, dB = 5, 4
		win    = 300
		n      = 1500
	)
	rng := rand.New(rand.NewSource(1))
	rows := pairedRows(rng, n, dA, dB, 3)
	spec := window.Spec{Kind: window.Sequence, Size: win}
	sk := NewLMAMM(spec, dA, dB, 24, 8)
	oracle := window.NewExact(spec, dA+dB)
	worst := 0.0
	for i, row := range rows {
		ts := float64(i + 1)
		sk.UpdatePaired(ts, row[:dA], row[dA:])
		oracle.Update(row, ts)
		if i >= win && (i+1)%win == 0 {
			if e := oracle.AmmErr(dA, sk.AmmProduct(ts)); e > worst {
				worst = e
			}
		}
	}
	if worst > 0.2 {
		t.Fatalf("LM-AMM worst relative product error %g, want ≤ 0.2", worst)
	}
}

func TestDIAMMTracksExactProduct(t *testing.T) {
	const (
		dA, dB = 4, 4
		win    = 300
		n      = 1500
	)
	rng := rand.New(rand.NewSource(2))
	rows := pairedRows(rng, n, dA, dB, 3)
	spec := window.Spec{Kind: window.Sequence, Size: win}
	sk := NewDIAMM(DIConfig{N: win, R: maxStackedSqNorm(rows) * 1.01, L: 5, Ell: 48, RSlack: 2}, dA, dB)
	oracle := window.NewExact(spec, dA+dB)
	worst := 0.0
	for i, row := range rows {
		ts := float64(i + 1)
		sk.Update(row, ts)
		oracle.Update(row, ts)
		if i >= win && (i+1)%win == 0 {
			if e := oracle.AmmErr(dA, sk.AmmProduct(ts)); e > worst {
				worst = e
			}
		}
	}
	if worst > 0.35 {
		t.Fatalf("DI-AMM worst relative product error %g, want ≤ 0.35", worst)
	}
}

func TestAMMPairedMatchesStacked(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := pairedRows(rng, 500, 4, 3, 2)
	spec := window.Spec{Kind: window.Sequence, Size: 150}
	paired := NewLMAMM(spec, 4, 3, 12, 4)
	stacked := NewLMAMM(spec, 4, 3, 12, 4)
	for i, row := range rows {
		ts := float64(i + 1)
		paired.UpdatePaired(ts, row[:4], row[4:])
		stacked.Update(row, ts)
	}
	q := float64(len(rows))
	if !paired.Query(q).Equal(stacked.Query(q), 0) {
		t.Fatal("UpdatePaired diverged from stacked Update")
	}
}

func TestAMMApproximationShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows := pairedRows(rng, 200, 5, 3, 2)
	a := NewLMAMM(window.Spec{Kind: window.Sequence, Size: 100}, 5, 3, 10, 4)
	for i, row := range rows {
		a.Update(row, float64(i+1))
	}
	est := a.AmmApproximation(float64(len(rows)))
	if len(est) != 5 {
		t.Fatalf("estimate has %d rows, want 5", len(est))
	}
	for _, r := range est {
		if len(r) != 3 {
			t.Fatalf("estimate row has %d cols, want 3", len(r))
		}
	}
	if dA, dB := a.AmmDims(); dA != 5 || dB != 3 {
		t.Fatalf("AmmDims = (%d,%d), want (5,3)", dA, dB)
	}
}

func TestAMMEmptyWindowProduct(t *testing.T) {
	a := NewLMAMM(window.Spec{Kind: window.Time, Size: 10}, 3, 2, 8, 4)
	p := a.AmmProduct(0)
	if p.Rows() != 3 || p.Cols() != 2 {
		t.Fatalf("empty product is %dx%d, want 3x2", p.Rows(), p.Cols())
	}
	for _, v := range p.Data() {
		if v != 0 {
			t.Fatal("empty-window product not zero")
		}
	}
}

func TestAMMZeroOneSide(t *testing.T) {
	// Rows that are zero on exactly one side carry stacked mass, flow
	// through the frameworks, and contribute zero to the product.
	spec := window.Spec{Kind: window.Sequence, Size: 200}
	sk := NewLMAMM(spec, 3, 2, 8, 4)
	oracle := window.NewExact(spec, 5)
	rng := rand.New(rand.NewSource(5))
	rows := pairedRows(rng, 300, 3, 2, 2)
	for i, row := range rows {
		ts := float64(3*i + 1)
		sk.UpdatePaired(ts, row[:3], row[3:])
		oracle.Update(row, ts)
		onlyA := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), 0, 0}
		sk.UpdatePaired(float64(3*i+2), onlyA[:3], onlyA[3:])
		oracle.Update(onlyA, float64(3*i+2))
		onlyB := []float64{0, 0, 0, rng.NormFloat64(), rng.NormFloat64()}
		sk.UpdatePaired(float64(3*i+3), onlyB[:3], onlyB[3:])
		oracle.Update(onlyB, float64(3*i+3))
	}
	ts := float64(3 * len(rows))
	if e := oracle.AmmErr(3, sk.AmmProduct(ts)); e > 0.25 {
		t.Fatalf("one-sided zero rows degraded the estimate: err=%g", e)
	}
}

func TestAMMSparsePath(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rows := pairedRows(rng, 300, 4, 3, 2)
	spec := window.Spec{Kind: window.Sequence, Size: 100}
	dense := NewLMAMM(spec, 4, 3, 10, 4)
	sparse := NewLMAMM(spec, 4, 3, 10, 4)
	for i, row := range rows {
		ts := float64(i + 1)
		dense.Update(row, ts)
		sparse.UpdateSparse(mat.SparseFromDense(row), ts)
	}
	q := float64(len(rows))
	if !dense.Query(q).Equal(sparse.Query(q), 0) {
		t.Fatal("sparse ingest diverged from dense")
	}
}

func TestAMMStats(t *testing.T) {
	a := NewLMAMM(window.Spec{Kind: window.Sequence, Size: 100}, 4, 3, 8, 4)
	rng := rand.New(rand.NewSource(7))
	for i, row := range pairedRows(rng, 200, 4, 3, 2) {
		a.Update(row, float64(i+1))
	}
	st := a.Stats()
	if st["d_a"] != 4 || st["d_b"] != 3 {
		t.Fatalf("Stats dims wrong: %+v", st)
	}
	if st["levels"] < 1 {
		t.Fatalf("Stats missing inner LM state: %+v", st)
	}
	if a.Name() != "LM-AMM" {
		t.Fatalf("Name = %q", a.Name())
	}
	d := NewDIAMM(DIConfig{N: 100, R: 64, L: 4, Ell: 24}, 4, 3)
	if d.Name() != "DI-AMM" {
		t.Fatalf("Name = %q", d.Name())
	}
}

func TestAutoAMM(t *testing.T) {
	a := AutoAMM(window.Spec{Kind: window.Sequence, Size: 500}, 6, 4, 0.05)
	if a.Name() != "LM-AMM" {
		t.Fatalf("AutoAMM built %q", a.Name())
	}
	rng := rand.New(rand.NewSource(8))
	spec := window.Spec{Kind: window.Sequence, Size: 500}
	oracle := window.NewExact(spec, 10)
	rows := pairedRows(rng, 1200, 6, 4, 3)
	for i, row := range rows {
		ts := float64(i + 1)
		a.Update(row, ts)
		oracle.Update(row, ts)
	}
	if e := oracle.AmmErr(6, a.AmmProduct(float64(len(rows)))); e > 0.1 {
		t.Fatalf("AutoAMM(0.05) error %g, want well under target neighbourhood", e)
	}
}

func ammRoundTrip(t *testing.T, mk func() *AMM) {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	fresh := mk()
	dA, dB := fresh.AmmDims()
	rows := pairedRows(rng, 700, dA, dB, 3)
	for i, row := range rows[:500] {
		fresh.Update(row, float64(i+1))
	}
	blob, err := fresh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := mk()
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !fresh.Query(500).Equal(restored.Query(500), 0) {
		t.Fatal("restored query differs")
	}
	// Re-marshal fixed point.
	blob2, err := restored.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-marshal is not a fixed point")
	}
	// Deterministic continuation: identical suffixes keep both
	// bit-identical (what the registry's spill/restore relies on).
	for i, row := range rows[500:] {
		ts := float64(501 + i)
		fresh.Update(row, ts)
		restored.Update(row, ts)
	}
	if !fresh.Query(700).Equal(restored.Query(700), 0) {
		t.Fatal("restored sketch diverged under continuation")
	}
	if !fresh.AmmProduct(700).Equal(restored.AmmProduct(700), 0) {
		t.Fatal("restored product diverged under continuation")
	}
}

func TestLMAMMMarshalRoundTrip(t *testing.T) {
	ammRoundTrip(t, func() *AMM {
		return NewLMAMM(window.Spec{Kind: window.Sequence, Size: 200}, 5, 4, 12, 4)
	})
}

func TestLMAMMMarshalRoundTripTimeTuned(t *testing.T) {
	ammRoundTrip(t, func() *AMM {
		return NewLMAMMOpts(window.Spec{Kind: window.Time, Size: 200}, 4, 4, 10, 4,
			stream.FDOpts{Buffer: 2, Alpha: 0.5})
	})
}

func TestDIAMMMarshalRoundTrip(t *testing.T) {
	ammRoundTrip(t, func() *AMM {
		return NewDIAMM(DIConfig{N: 200, R: 80, L: 4, Ell: 32, RSlack: 2}, 5, 4)
	})
}

func TestAMMUnmarshalRejectsCorrupt(t *testing.T) {
	a := NewLMAMM(window.Spec{Kind: window.Sequence, Size: 50}, 3, 2, 8, 4)
	rng := rand.New(rand.NewSource(10))
	for i, row := range pairedRows(rng, 120, 3, 2, 2) {
		a.Update(row, float64(i+1))
	}
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"magic":     append([]byte{1, 2, 3, 4, 5, 6, 7, 8}, blob[8:]...),
		"truncated": blob[:len(blob)/2],
		"trailing":  append(append([]byte{}, blob...), 0xff),
	}
	for name, data := range cases {
		fresh := NewLMAMM(window.Spec{Kind: window.Sequence, Size: 50}, 3, 2, 8, 4)
		if err := fresh.UnmarshalBinary(data); err == nil {
			t.Errorf("%s snapshot unexpectedly accepted", name)
		}
	}
	// Cross-kind restore must work: the snapshot rebuilds the inner
	// framework from its own header regardless of the receiver's.
	other := NewDIAMM(DIConfig{N: 10, R: 4, L: 2, Ell: 8}, 2, 2)
	if err := other.UnmarshalBinary(blob); err != nil {
		t.Fatalf("cross-kind restore failed: %v", err)
	}
	if other.Name() != "LM-AMM" {
		t.Fatalf("cross-kind restore produced %q", other.Name())
	}
}

func TestAMMBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows := pairedRows(rng, 400, 4, 3, 2)
	times := make([]float64, len(rows))
	for i := range times {
		times[i] = float64(i + 1)
	}
	spec := window.Spec{Kind: window.Sequence, Size: 120}
	single := NewLMAMM(spec, 4, 3, 10, 4)
	batch := NewLMAMM(spec, 4, 3, 10, 4)
	for i, row := range rows {
		single.Update(row, times[i])
	}
	for lo := 0; lo < len(rows); lo += 53 {
		hi := lo + 53
		if hi > len(rows) {
			hi = len(rows)
		}
		batch.UpdateBatch(rows[lo:hi], times[lo:hi])
	}
	q := float64(len(rows))
	if !single.Query(q).Equal(batch.Query(q), 0) {
		t.Fatal("UpdateBatch diverged from Update")
	}
}
