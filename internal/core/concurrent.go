package core

import (
	"sync"

	"swsketch/internal/mat"
	"swsketch/internal/trace"
)

// Concurrent wraps a WindowSketch for a one-writer/many-reader regime:
// Update takes the write lock, Query and RowsStored take it too
// (queries mutate internal expiry state in every implementation), so
// all methods serialise. It exists so a monitoring goroutine can query
// the sketch while an ingest goroutine feeds it.
type Concurrent struct {
	mu sync.Mutex
	sk WindowSketch
}

// NewConcurrent wraps sk. The wrapped sketch must not be used directly
// afterwards.
func NewConcurrent(sk WindowSketch) *Concurrent { return &Concurrent{sk: sk} }

// Update implements WindowSketch.
func (c *Concurrent) Update(row []float64, t float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sk.Update(row, t)
}

// UpdateBatch implements WindowSketch, admitting the whole batch under
// a single lock acquisition — the point of batching in the one-writer/
// many-reader regime: readers see either none or all of the batch.
func (c *Concurrent) UpdateBatch(rows [][]float64, times []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sk.UpdateBatch(rows, times)
}

// Query implements WindowSketch.
func (c *Concurrent) Query(t float64) *mat.Dense {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sk.Query(t)
}

// RowsStored implements WindowSketch.
func (c *Concurrent) RowsStored() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sk.RowsStored()
}

// Name implements WindowSketch.
func (c *Concurrent) Name() string { return c.sk.Name() }

// SetTracer forwards the tracer to the wrapped sketch under the lock.
func (c *Concurrent) SetTracer(tr *trace.Tracer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.sk.(trace.Traceable); ok {
		t.SetTracer(tr)
	}
}

// Stats implements Introspector by delegation under the lock; wrapping
// a sketch without internals yields an empty map.
func (c *Concurrent) Stats() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if in, ok := c.sk.(Introspector); ok {
		return in.Stats()
	}
	return map[string]float64{}
}

var (
	_ WindowSketch = (*Concurrent)(nil)
	_ Introspector = (*Concurrent)(nil)
)

// UpdateSparse forwards a sparse update under the lock. When the
// wrapped sketch lacks a sparse path the row is densified, which needs
// the sketch's dimension — unavailable here — so that case panics;
// wrap a SparseUpdater if you need sparse ingest.
func (c *Concurrent) UpdateSparse(row mat.SparseRow, t float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	su, ok := c.sk.(SparseUpdater)
	if !ok {
		panic("core: wrapped sketch does not support sparse updates")
	}
	su.UpdateSparse(row, t)
}
