package core

import (
	"fmt"

	"swsketch/internal/binenc"
	"swsketch/internal/mat"
	"swsketch/internal/stream"
	"swsketch/internal/trace"
)

// AMM snapshot format: one outer header (kind, side dimensions, COD
// buffer tuning) followed by a kind-specific body that serialises the
// inner framework's full deterministic state with COD blobs per block.
// The LM body mirrors the LM-FD codec; the DI body is the first
// persisted DI state — deliberately scoped to AMM (a MarshalBinary on
// *DI itself would silently flip di-fd tenants from "snapshot
// unsupported" to supported, changing the serving API's behaviour).
const ammMagic = uint64(0x414D4D53_00000001) // "AMMS" v1

// ammMaxCount bounds every count field the decoder allocates for; far
// above sane configurations, low enough that short corrupt input
// cannot demand a giant allocation before its payload is validated.
const ammMaxCount = 1 << 24

// MarshalBinary snapshots the co-sketch: outer geometry plus the full
// inner-framework state. AMM is deterministic end to end (COD shrinks
// are QR/SVD of fixed inputs), so a restored sketch continues
// bit-exactly — the property the registry's spill/restore and the
// conformance suite's continuation check rely on.
func (a *AMM) MarshalBinary() ([]byte, error) {
	w := binenc.NewWriter()
	w.U64(ammMagic)
	w.Int(a.kind)
	w.Int(a.dA)
	w.Int(a.dB)
	w.Int(a.opts.Buffer)
	w.F64(a.opts.Alpha)
	switch a.kind {
	case ammKindLM:
		if err := a.marshalLM(w); err != nil {
			return nil, err
		}
	case ammKindDI:
		if err := a.marshalDI(w); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: AMM snapshot of unknown kind %d", a.kind)
	}
	out := w.Bytes()
	a.tr.Emit(a.Name(), trace.KindSnapshot, 0, float64(len(out)), 0)
	return out, nil
}

func (a *AMM) marshalLM(w *binenc.Writer) error {
	l, ok := a.inner.(*LM)
	if !ok {
		return fmt.Errorf("core: AMM kind LM wraps %T", a.inner)
	}
	l.snapshots++
	writeSpec(w, a.spec)
	w.Int(a.ell)
	w.Int(a.b)
	w.F64(l.lastT)
	w.Bool(l.seen)
	w.Int(len(l.levels))
	for _, lv := range l.levels {
		w.Int(len(lv))
		for i := range lv {
			if err := writeAMMBlock(w, &lv[i]); err != nil {
				return err
			}
		}
	}
	return writeAMMBlock(w, &l.active)
}

func (a *AMM) marshalDI(w *binenc.Writer) error {
	s, ok := a.inner.(*DI)
	if !ok {
		return fmt.Errorf("core: AMM kind DI wraps %T", a.inner)
	}
	c := s.cfg
	w.Int(c.N)
	w.F64(c.R)
	w.Int(c.L)
	w.Int(c.Ell)
	w.Int(c.MinEll)
	w.F64(c.RSlack)

	w.Int(s.m)
	w.F64(s.curSize)
	w.F64(s.curStart)
	w.F64(s.lastT)
	w.Bool(s.seen)
	w.F64(s.normMin)
	w.F64(s.normMax)
	w.Bool(s.rawOverflow)
	for _, lv := range s.levels {
		w.Int(len(lv))
		for i := range lv {
			blk := &lv[i]
			w.Int(blk.startIdx)
			w.Int(blk.endIdx)
			w.F64(blk.startT)
			w.F64(blk.endT)
			if err := writeCODBlob(w, blk.sk); err != nil {
				return err
			}
		}
	}
	for i := range s.actives {
		if err := writeCODBlob(w, s.actives[i]); err != nil {
			return err
		}
		w.F64(s.activeStartT[i])
		w.Int(s.activeRows[i])
	}
	w.Int(len(s.raw))
	for i, row := range s.raw {
		writeSparseRow(w, row, s.rawTimes[i])
	}
	return nil
}

func writeCODBlob(w *binenc.Writer, sk stream.Sketch) error {
	cod, ok := sk.(*stream.COD)
	if !ok {
		return fmt.Errorf("core: AMM snapshot found non-COD sketch %T", sk)
	}
	b, err := cod.MarshalBinary()
	if err != nil {
		return err
	}
	w.Blob(b)
	return nil
}

func readCODBlob(r *binenc.Reader, dA, dB int) (*stream.COD, error) {
	cod := stream.NewCOD(2, 1, 1) // shape overwritten by the snapshot
	if err := cod.UnmarshalBinary(r.Blob()); err != nil {
		return nil, err
	}
	if cod.DimA() != dA || cod.DimB() != dB {
		return nil, fmt.Errorf("core: AMM snapshot COD dims (%d,%d), want (%d,%d)", cod.DimA(), cod.DimB(), dA, dB)
	}
	return cod, nil
}

func writeSparseRow(w *binenc.Writer, row mat.SparseRow, t float64) {
	w.Int(len(row.Idx))
	for _, ix := range row.Idx {
		w.Int(ix)
	}
	w.F64s(row.Val)
	w.F64(t)
}

func readSparseRow(r *binenc.Reader, d int) (mat.SparseRow, float64, error) {
	nnz := r.Int()
	if r.Err() != nil {
		return mat.SparseRow{}, 0, r.Err()
	}
	if nnz < 0 || nnz > d {
		return mat.SparseRow{}, 0, fmt.Errorf("core: AMM snapshot sparse row has %d indices for d=%d", nnz, d)
	}
	idx := make([]int, nnz)
	prev := -1
	for k := range idx {
		idx[k] = r.Int()
		if r.Err() == nil && (idx[k] <= prev || idx[k] >= d) {
			return mat.SparseRow{}, 0, fmt.Errorf("core: AMM snapshot sparse index %d invalid for d=%d", idx[k], d)
		}
		prev = idx[k]
	}
	val := r.F64s()
	t := r.F64()
	if r.Err() != nil {
		return mat.SparseRow{}, 0, r.Err()
	}
	if len(val) != nnz {
		return mat.SparseRow{}, 0, fmt.Errorf("core: AMM snapshot row has %d indices, %d values", nnz, len(val))
	}
	return mat.SparseRow{Idx: idx, Val: val}, t, nil
}

// writeAMMBlock mirrors writeLMBlock with COD block sketches.
func writeAMMBlock(w *binenc.Writer, blk *lmBlock) error {
	w.F64(blk.start)
	w.F64(blk.end)
	w.F64(blk.size)
	w.F64(blk.singletonCap)
	if blk.sk == nil {
		w.Bool(false)
		w.Int(len(blk.raw))
		for i, row := range blk.raw {
			writeSparseRow(w, row, blk.rawTimes[i])
		}
		return nil
	}
	w.Bool(true)
	return writeCODBlob(w, blk.sk)
}

func readAMMBlock(r *binenc.Reader, dA, dB int) (lmBlock, error) {
	blk := lmBlock{
		start:        r.F64(),
		end:          r.F64(),
		size:         r.F64(),
		singletonCap: r.F64(),
	}
	sketched := r.Bool()
	if r.Err() != nil {
		return blk, r.Err()
	}
	if !sketched {
		n := r.Int()
		if r.Err() != nil {
			return blk, r.Err()
		}
		if n < 0 || n > ammMaxCount || n > r.Rest()/8 {
			return blk, fmt.Errorf("core: AMM snapshot block declares %d raw rows", n)
		}
		for i := 0; i < n; i++ {
			row, t, err := readSparseRow(r, dA+dB)
			if err != nil {
				return blk, err
			}
			blk.raw = append(blk.raw, row)
			blk.rawTimes = append(blk.rawTimes, t)
		}
		return blk, r.Err()
	}
	cod, err := readCODBlob(r, dA, dB)
	if err != nil {
		return blk, err
	}
	blk.sk = cod
	return blk, nil
}

// UnmarshalBinary restores an AMM snapshot into the receiver,
// rebuilding the inner framework (factory closures included) from the
// snapshot's geometry. The tracer survives restore.
func (a *AMM) UnmarshalBinary(data []byte) error {
	r := binenc.NewReader(data)
	if magic := r.U64(); magic != ammMagic && r.Err() == nil {
		return fmt.Errorf("core: AMM snapshot magic %#x unrecognised", magic)
	}
	kind := r.Int()
	dA := r.Int()
	dB := r.Int()
	opts := stream.FDOpts{Buffer: r.Int(), Alpha: r.F64()}
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: AMM snapshot: %w", err)
	}
	if dA < 1 || dB < 1 || dA > ammMaxCount || dB > ammMaxCount {
		return fmt.Errorf("core: AMM snapshot has invalid dims dA=%d dB=%d", dA, dB)
	}
	if opts.Buffer < 1 || !(opts.Alpha > 0 && opts.Alpha <= 1) {
		return fmt.Errorf("core: AMM snapshot has invalid COD tuning buffer=%d alpha=%v", opts.Buffer, opts.Alpha)
	}
	var restored *AMM
	var err error
	switch kind {
	case ammKindLM:
		restored, err = unmarshalLMAMM(r, dA, dB, opts)
	case ammKindDI:
		restored, err = unmarshalDIAMM(r, dA, dB, opts)
	default:
		return fmt.Errorf("core: AMM snapshot kind %d unrecognised", kind)
	}
	if err != nil {
		return fmt.Errorf("core: AMM snapshot: %w", err)
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: AMM snapshot: %w", err)
	}
	if r.Rest() != 0 {
		return fmt.Errorf("core: AMM snapshot has %d trailing bytes", r.Rest())
	}
	tr := a.tr
	*a = *restored
	a.SetTracer(tr)
	a.tr.Emit(a.Name(), trace.KindRestore, 0, float64(len(data)), 0)
	return nil
}

func unmarshalLMAMM(r *binenc.Reader, dA, dB int, opts stream.FDOpts) (*AMM, error) {
	spec, err := readSpec(r)
	if err != nil {
		return nil, err
	}
	ell := r.Int()
	b := r.Int()
	lastT := r.F64()
	seen := r.Bool()
	nLevels := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if ell < 2 || b < 2 || nLevels < 0 || nLevels > ammMaxCount {
		return nil, fmt.Errorf("shape ell=%d b=%d levels=%d", ell, b, nLevels)
	}
	restored := NewLMAMMOpts(spec, dA, dB, ell, b, opts)
	l := restored.inner.(*LM)
	l.lastT, l.seen = lastT, seen
	for i := 0; i < nLevels; i++ {
		n := r.Int()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if n < 0 || n > ammMaxCount || n > r.Rest()/8 {
			return nil, fmt.Errorf("level %d declares %d blocks", i, n)
		}
		var lv []lmBlock
		for j := 0; j < n; j++ {
			blk, err := readAMMBlock(r, dA, dB)
			if err != nil {
				return nil, err
			}
			lv = append(lv, blk)
		}
		l.levels = append(l.levels, lv)
	}
	active, err := readAMMBlock(r, dA, dB)
	if err != nil {
		return nil, err
	}
	l.active = active
	return restored, nil
}

func unmarshalDIAMM(r *binenc.Reader, dA, dB int, opts stream.FDOpts) (*AMM, error) {
	cfg := DIConfig{N: r.Int(), R: r.F64(), L: r.Int(), Ell: r.Int(), MinEll: r.Int(), RSlack: r.F64()}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if cfg.N < 1 || cfg.R < 1 || cfg.L < 1 || cfg.L > 26 || cfg.Ell < 2 || cfg.MinEll < 1 || cfg.RSlack < 1 {
		return nil, fmt.Errorf("invalid DI config %+v", cfg)
	}
	restored := NewDIAMMOpts(cfg, dA, dB, opts)
	s := restored.inner.(*DI)
	s.m = r.Int()
	s.curSize = r.F64()
	s.curStart = r.F64()
	s.lastT = r.F64()
	s.seen = r.Bool()
	s.normMin = r.F64()
	s.normMax = r.F64()
	s.rawOverflow = r.Bool()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if s.m < 0 {
		return nil, fmt.Errorf("negative block counter %d", s.m)
	}
	for i := 0; i < cfg.L; i++ {
		n := r.Int()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if n < 0 || n > ammMaxCount || n > r.Rest()/8 {
			return nil, fmt.Errorf("level %d declares %d blocks", i+1, n)
		}
		for j := 0; j < n; j++ {
			blk := diBlock{startIdx: r.Int(), endIdx: r.Int(), startT: r.F64(), endT: r.F64()}
			if r.Err() != nil {
				return nil, r.Err()
			}
			if blk.startIdx < 1 || blk.endIdx < blk.startIdx {
				return nil, fmt.Errorf("level %d block spans [%d,%d]", i+1, blk.startIdx, blk.endIdx)
			}
			cod, err := readCODBlob(r, dA, dB)
			if err != nil {
				return nil, err
			}
			blk.sk = cod
			s.levels[i] = append(s.levels[i], blk)
		}
	}
	for i := 0; i < cfg.L; i++ {
		cod, err := readCODBlob(r, dA, dB)
		if err != nil {
			return nil, err
		}
		s.actives[i] = cod
		s.activeStartT[i] = r.F64()
		s.activeRows[i] = r.Int()
		if r.Err() == nil && s.activeRows[i] < 0 {
			return nil, fmt.Errorf("active %d has %d rows", i+1, s.activeRows[i])
		}
	}
	n := r.Int()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n < 0 || n > ammMaxCount || n > r.Rest()/8 {
		return nil, fmt.Errorf("open block declares %d raw rows", n)
	}
	for i := 0; i < n; i++ {
		row, t, err := readSparseRow(r, dA+dB)
		if err != nil {
			return nil, err
		}
		s.raw = append(s.raw, row)
		s.rawTimes = append(s.rawTimes, t)
	}
	return restored, nil
}
