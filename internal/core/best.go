package core

import (
	"fmt"

	"swsketch/internal/mat"
	"swsketch/internal/window"
)

// Best is the BEST(offline) baseline of Section 8: it stores the
// window exactly and answers queries with the best rank-k
// approximation Σ_k·V_kᵀ computed by a full SVD. Its error is the
// information-theoretic optimum for any k-row approximation
// (σ²_{k+1}/‖A‖²_F), which the experiments use as the lower envelope.
// It is not a sketch — space is linear in the window — and exists only
// as a comparison point.
type Best struct {
	k   int
	win *window.Exact
}

// NewBest returns the offline rank-k baseline for the given window.
func NewBest(spec window.Spec, k, d int) *Best {
	if k < 1 {
		panic(fmt.Sprintf("core: Best needs k ≥ 1, got %d", k))
	}
	return &Best{k: k, win: window.NewExact(spec, d)}
}

// Update buffers the row.
func (b *Best) Update(row []float64, t float64) { b.win.Update(row, t) }

// UpdateBatch buffers the rows through the window's bulk path (one
// expiry scan per batch).
func (b *Best) UpdateBatch(rows [][]float64, times []float64) { b.win.UpdateBatch(rows, times) }

// Query computes the best rank-k approximation of the current window.
func (b *Best) Query(t float64) *mat.Dense {
	b.win.Advance(t)
	return mat.RankK(b.win.Matrix(), b.k)
}

// RowsStored reports k, the size of the produced approximation (the
// paper plots BEST at its output size, not its linear storage).
func (b *Best) RowsStored() int { return b.k }

// WindowLen reports the true number of buffered rows.
func (b *Best) WindowLen() int { return b.win.Len() }

// Name implements WindowSketch.
func (b *Best) Name() string { return "BEST" }

// Stats implements Introspector: the baseline's linear storage, made
// visible so nobody mistakes it for a sketch in a dashboard.
func (b *Best) Stats() map[string]float64 {
	return map[string]float64{
		"k":           float64(b.k),
		"window_rows": float64(b.win.Len()),
	}
}

var (
	_ WindowSketch = (*Best)(nil)
	_ Introspector = (*Best)(nil)
)
