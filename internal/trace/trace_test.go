package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit("X", KindLMMerge, 1, 2, 3)
	tr.EmitNote("X", KindLMMerge, 1, 2, 3, "note")
	tr.Enable()
	tr.Disable()
	tr.SetSampleEvery(4)
	tr.Reset()
	sp := tr.Start("X", KindFDShrink, 0)
	sp.End(1, 2)
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Total() != 0 || tr.Events() != nil || tr.Counts() != nil {
		t.Fatal("nil tracer holds state")
	}
	if s := tr.Summarize(); s.Total != 0 {
		t.Fatalf("nil tracer summary %+v", s)
	}
}

func TestDisabledTracerRecordsNothing(t *testing.T) {
	tr := New(32)
	tr.Emit("X", KindEHMerge, 1, 2, 3)
	tr.Start("X", KindFDShrink, 0).End(1, 2)
	if tr.Total() != 0 || len(tr.Events()) != 0 {
		t.Fatalf("disabled tracer recorded: total=%d events=%d", tr.Total(), len(tr.Events()))
	}
}

func TestEmitAndOrder(t *testing.T) {
	tr := New(32)
	tr.Enable()
	tr.Emit("LM-FD", KindLMClose, 10, 5, 2.5)
	tr.Emit("LM-FD", KindLMMerge, 11, 1, 3.5)
	tr.EmitNote("serve", KindHTTP, 0, 200, 0.001, "req-1 /v1/ingest")

	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events, want 3", len(ev))
	}
	for i, e := range ev {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if e.Wall == 0 {
			t.Fatalf("event %d has zero wall clock", i)
		}
	}
	if ev[0].Kind != KindLMClose || ev[0].V1 != 5 || ev[0].V2 != 2.5 || ev[0].T != 10 {
		t.Fatalf("first event %+v", ev[0])
	}
	if ev[2].Note != "req-1 /v1/ingest" {
		t.Fatalf("note %q", ev[2].Note)
	}

	counts := tr.Counts()
	if counts[KindLMClose].Count != 1 || counts[KindLMClose].LastSeq != 1 {
		t.Fatalf("lm_close stats %+v", counts[KindLMClose])
	}
	if counts[KindHTTP].LastSeq != 3 {
		t.Fatalf("http stats %+v", counts[KindHTTP])
	}
}

func TestRingWraps(t *testing.T) {
	tr := New(16)
	tr.Enable()
	for i := 0; i < 40; i++ {
		tr.Emit("X", KindSamplerEvict, float64(i), 0, 0)
	}
	ev := tr.Events()
	if len(ev) != 16 {
		t.Fatalf("ring holds %d, want 16", len(ev))
	}
	// Oldest-first: seqs 25..40.
	for i, e := range ev {
		if want := uint64(25 + i); e.Seq != want {
			t.Fatalf("ring[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
	s := tr.Summarize()
	if s.Total != 40 || s.Recorded != 40 || s.Dropped != 24 || s.Capacity != 16 {
		t.Fatalf("summary %+v", s)
	}
	if s.Kinds[KindSamplerEvict].Count != 40 {
		t.Fatalf("kind count %+v", s.Kinds[KindSamplerEvict])
	}
}

func TestSamplingKeepsExactCounts(t *testing.T) {
	tr := New(64)
	tr.Enable()
	tr.SetSampleEvery(4)
	for i := 0; i < 20; i++ {
		tr.Emit("X", KindEHMerge, float64(i), 0, 0)
	}
	ev := tr.Events()
	if len(ev) != 5 { // seqs 4, 8, 12, 16, 20
		t.Fatalf("sampled ring holds %d, want 5", len(ev))
	}
	for i, e := range ev {
		if want := uint64(4 * (i + 1)); e.Seq != want {
			t.Fatalf("sampled[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
	if c := tr.Counts()[KindEHMerge]; c.Count != 20 || c.LastSeq != 20 {
		t.Fatalf("counts under sampling %+v", c)
	}
}

func TestSpanSetsDuration(t *testing.T) {
	tr := New(16)
	tr.Enable()
	sp := tr.Start("FD", KindFDShrink, 7)
	sp.End(100, 50)
	ev := tr.Events()
	if len(ev) != 1 {
		t.Fatalf("got %d events", len(ev))
	}
	e := ev[0]
	if e.Kind != KindFDShrink || e.V1 != 100 || e.V2 != 50 || e.T != 7 {
		t.Fatalf("span event %+v", e)
	}
	if e.Dur <= 0 {
		t.Fatalf("span duration %d", e.Dur)
	}
}

func TestSpanStartedBeforeDisableStillEmits(t *testing.T) {
	tr := New(16)
	tr.Enable()
	sp := tr.Start("FD", KindFDShrink, 0)
	tr.Disable()
	sp.End(1, 1)
	if tr.Total() != 1 {
		t.Fatalf("open span dropped on disable: total=%d", tr.Total())
	}
}

func TestReset(t *testing.T) {
	tr := New(16)
	tr.Enable()
	tr.Emit("X", KindSnapshot, 0, 128, 0)
	tr.Reset()
	if tr.Total() != 0 || len(tr.Events()) != 0 || len(tr.Counts()) != 0 {
		t.Fatal("reset left state behind")
	}
	if !tr.Enabled() {
		t.Fatal("reset disabled the tracer")
	}
	tr.Emit("X", KindSnapshot, 0, 1, 0)
	if ev := tr.Events(); len(ev) != 1 || ev[0].Seq != 1 {
		t.Fatalf("post-reset events %+v", ev)
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := New(16)
	tr.Enable()
	tr.Emit("EH", KindEHMerge, 3, 1, 2)
	tr.EmitNote("serve", KindHTTP, 0, 404, 0.002, "req-9 /nope")

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, e)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0].Kind != KindEHMerge || lines[1].Note != "req-9 /nope" {
		t.Fatalf("lines %+v", lines)
	}
	// Point events omit dur_ns.
	var raw bytes.Buffer
	_ = tr.WriteJSONL(&raw)
	if strings.Contains(strings.SplitN(raw.String(), "\n", 2)[0], "dur_ns") {
		t.Fatal("point event serialised dur_ns")
	}
}

func TestConcurrentEmit(t *testing.T) {
	tr := New(128)
	tr.Enable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				tr.Emit("X", KindSamplerEvict, float64(i), 0, 0)
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 2000 {
		t.Fatalf("total %d, want 2000", tr.Total())
	}
	if c := tr.Counts()[KindSamplerEvict]; c.Count != 2000 {
		t.Fatalf("count %d, want 2000", c.Count)
	}
	seen := make(map[uint64]bool)
	for _, e := range tr.Events() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d in ring", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	tr := New(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit("X", KindSamplerEvict, 1, 2, 3)
	}
}

func BenchmarkEmitNil(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit("X", KindSamplerEvict, 1, 2, 3)
	}
}

func BenchmarkEmitEnabled(b *testing.B) {
	tr := New(4096)
	tr.Enable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit("X", KindSamplerEvict, 1, 2, 3)
	}
}
