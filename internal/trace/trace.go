// Package trace is a stdlib-only structured event tracer for the
// sketch machinery: a fixed-size ring buffer of typed events emitted
// from the hot structural transitions the metrics counters cannot
// explain — LM level promotions and merge cascades, DI block closures
// and retirements, FD shrink invocations, sampler candidate-queue
// evictions, EH bucket merges, and snapshot/restore. Where a counter
// says "37 merges happened", the trace says *which* merges, in what
// order, triggered by which row — sequence and causality.
//
// The tracer is designed to sit inside per-row ingest paths:
//
//   - Every emission site calls through a possibly-nil *Tracer; a nil
//     tracer is a single pointer test, and a disabled tracer a single
//     atomic load — zero allocations either way.
//   - Events are fixed-size structs stored by value in a ring; an
//     enabled emission is one short mutex-protected ring write (the
//     sketches are single-writer, so the lock is uncontended in
//     practice and exists only so scrapes and dumps are race-free).
//   - Sampling (SetSampleEvery) thins the ring for very hot kinds
//     while per-kind counts and last-assigned event IDs stay exact,
//     which is what the obs registry exports as exemplars.
//
// Sketches accept a tracer via the Traceable interface; the serve
// layer exposes the ring as JSONL on GET /debug/trace.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Event kinds emitted by the instrumented frameworks. V1/V2 carry the
// kind-specific quantities documented next to each constant.
const (
	// KindLMMerge: two LM blocks merged during a rebalance cascade.
	// V1 = 1-based level the pair lived on, V2 = merged block mass.
	KindLMMerge = "lm_merge"
	// KindLMPromote: an oversized singleton block promoted a level
	// without merging. V1 = level promoted from, V2 = singleton mass.
	KindLMPromote = "lm_promote"
	// KindLMClose: the LM active block closed into level 1.
	// V1 = raw rows in the block, V2 = block mass.
	KindLMClose = "lm_close"
	// KindLMExpire: expiry dropped whole LM blocks. V1 = blocks
	// dropped, V2 = raw rows trimmed from the active block.
	KindLMExpire = "lm_expire"
	// KindDIClose: a DI level closed its active block on a dyadic
	// boundary. V1 = 1-based level, V2 = the block's end index.
	KindDIClose = "di_close"
	// KindDIRetire: expiry retired completed DI blocks. V1 = blocks
	// dropped across levels, V2 = oldest surviving level-1 index.
	KindDIRetire = "di_retire"
	// KindDIRawOverflow: a DI open block outgrew the raw-row budget
	// and fell back to the level-1 active sketch. V1 = rows dropped.
	KindDIRawOverflow = "di_raw_overflow"
	// KindDSFDDump: a DS-FD frame crossed its shrink-error budget and
	// was frozen; a fresh frame opened. V1 = rows in the frozen frame's
	// final state, V2 = the frame's accumulated shrink charge Σλ.
	KindDSFDDump = "dsfd_dump"
	// KindDSFDSnapshot: DS-FD captured a truncated prefix snapshot of
	// the active frame. V1 = rows kept after truncation, V2 = squared
	// Frobenius mass ingested since the previous snapshot.
	KindDSFDSnapshot = "dsfd_snapshot"
	// KindDSFDExpire: DS-FD expiry dropped state that slid out of the
	// window. V1 = frames dropped, V2 = snapshots dropped.
	KindDSFDExpire = "dsfd_expire"
	// KindFDShrink: one FrequentDirections SVD-and-shrink step.
	// V1 = occupied rows before, V2 = surviving rows; Dur is set. Note
	// carries the buffer occupancy and amortization factor
	// ("occ=<used>/<cap> amort=<x> b=<buffer> alpha=<α>").
	KindFDShrink = "fd_shrink"
	// KindSamplerEvict: a sampler ingest evicted candidates.
	// V1 = candidates evicted by priority domination (SWR) or rank
	// overflow (SWOR), V2 = candidates dropped by expiry.
	KindSamplerEvict = "sampler_evict"
	// KindEHMerge: an exponential-histogram bucket merge. V1 = size
	// class of the over-full bucket pair, V2 = merged bucket sum.
	KindEHMerge = "eh_merge"
	// KindSnapshot: a sketch serialised itself. V1 = snapshot bytes.
	KindSnapshot = "snapshot"
	// KindRestore: a sketch restored from a snapshot. V1 = bytes read.
	KindRestore = "restore"
	// KindHTTP: one HTTP request completed (emitted by the serve
	// layer). V1 = status code, V2 = duration in seconds; Note holds
	// the request ID and route, correlating surrounding sketch events
	// to the request that caused them.
	KindHTTP = "http_request"
	// KindTenantCreate: the registry admitted a new tenant. V1 = the
	// registry's resident tenant count afterwards; Note = tenant ID.
	KindTenantCreate = "tenant_create"
	// KindTenantEvict: the registry evicted an idle tenant. V1 = rows
	// the tenant's sketch held, V2 = 1 when the state was spilled to
	// disk and 0 when it was dropped; Note = tenant ID.
	KindTenantEvict = "tenant_evict"
	// KindTenantRestore: a spilled tenant was restored on touch.
	// V1 = spill-file bytes read; Note = tenant ID.
	KindTenantRestore = "tenant_restore"
	// KindTenantDelete: a tenant was removed explicitly. Note = the
	// tenant ID.
	KindTenantDelete = "tenant_delete"
	// KindWALAppend: one record appended to a write-ahead-log shard.
	// V1 = rows in the record (0 for create/delete records), V2 =
	// encoded bytes; Note = tenant ID. Hot — sample it.
	KindWALAppend = "wal_append"
	// KindWALReplay: one WAL segment replayed at startup. V1 = records
	// applied, V2 = records skipped (idempotent duplicates or blocks
	// already covered by a spill snapshot); Note = segment filename.
	KindWALReplay = "wal_replay"
	// KindStreamOpen: a streaming ingest connection opened. V1 = the
	// tenant's queued block count at open; Note = tenant ID.
	KindStreamOpen = "stream_open"
	// KindStreamClose: a streaming ingest connection closed. V1 = rows
	// accepted over the connection, V2 = blocks; Note = tenant ID.
	KindStreamClose = "stream_close"
	// KindTopKEnter: a tenant entered the hot-key top-K tracker.
	// V1 = its estimated windowed row count at entry; Note = tenant ID.
	KindTopKEnter = "topk_enter"
	// KindTopKExit: a tenant left the hot-key top-K tracker (displaced
	// by a hotter key, decayed to zero, or forgotten on delete).
	// V1 = the displaced estimate; Note = tenant ID.
	KindTopKExit = "topk_exit"
)

// Event is one traced occurrence. Events are fixed-size values (two
// interned strings, no slices) so the ring stores them without
// allocation; V1/V2 are kind-specific (see the Kind constants) and
// Note is optional free text (request IDs, filenames).
type Event struct {
	// Seq is the event's ID: a process-unique, strictly increasing
	// sequence number assigned to every emission, sampled or not, so
	// gaps in a sampled dump are visible and exemplar IDs exported to
	// the metrics registry can be matched against dumped events.
	Seq  uint64  `json:"seq"`
	Wall int64   `json:"wall_ns"` // unix nanoseconds at emission
	Algo string  `json:"algo"`    // emitting component ("LM-FD", "FD", "EH", "serve")
	Kind string  `json:"kind"`    // one of the Kind constants
	T    float64 `json:"t"`       // stream timestamp, 0 when not applicable
	V1   float64 `json:"v1"`
	V2   float64 `json:"v2"`
	Dur  int64   `json:"dur_ns,omitempty"` // span duration, 0 for point events
	Note string  `json:"note,omitempty"`
}

// KindStats summarises one event kind for the trace summary and the
// registry bridge.
type KindStats struct {
	Count   uint64 `json:"count"`    // emissions, exact even under sampling
	LastSeq uint64 `json:"last_seq"` // ID of the most recent emission (exemplar)
}

// Summary is the aggregate view served next to the JSONL dump.
type Summary struct {
	Enabled     bool                 `json:"enabled"`
	SampleEvery int                  `json:"sample_every"`
	Total       uint64               `json:"total"`    // events emitted since Reset
	Recorded    uint64               `json:"recorded"` // events written to the ring
	Dropped     uint64               `json:"dropped"`  // recorded events overwritten by ring wrap
	Capacity    int                  `json:"capacity"`
	Kinds       map[string]KindStats `json:"kinds"`
}

// Tracer collects events into a fixed-size ring. The zero value is
// unusable; call New. A nil *Tracer is valid at every method and does
// nothing, so emission sites need no guards.
type Tracer struct {
	enabled atomic.Bool
	seq     atomic.Uint64

	mu       sync.Mutex
	ring     []Event
	head     int    // next write position
	recorded uint64 // total ring writes
	every    uint64 // record 1-in-every emissions (1 = always)
	counts   map[string]*KindStats
}

// New returns a disabled tracer with a ring of the given capacity
// (clamped to at least 16). Call Enable to start recording.
func New(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{
		ring:   make([]Event, 0, capacity),
		every:  1,
		counts: make(map[string]*KindStats),
	}
}

// Enable turns emission on.
func (t *Tracer) Enable() {
	if t != nil {
		t.enabled.Store(true)
	}
}

// Disable turns emission off; Emit becomes a single atomic load.
func (t *Tracer) Disable() {
	if t != nil {
		t.enabled.Store(false)
	}
}

// Enabled reports whether the tracer is recording.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetSampleEvery records one in every k emissions into the ring
// (counts stay exact). k < 1 panics.
func (t *Tracer) SetSampleEvery(k int) {
	if t == nil {
		return
	}
	if k < 1 {
		panic(fmt.Sprintf("trace: sample interval %d", k))
	}
	t.mu.Lock()
	t.every = uint64(k)
	t.mu.Unlock()
}

// Emit records a point event. Safe on a nil or disabled tracer (a
// pointer test / one atomic load, no allocation).
func (t *Tracer) Emit(algo, kind string, ts, v1, v2 float64) {
	if t == nil || !t.enabled.Load() {
		return
	}
	t.emit(Event{Algo: algo, Kind: kind, T: ts, V1: v1, V2: v2})
}

// EmitNote records a point event carrying a free-text note.
func (t *Tracer) EmitNote(algo, kind string, ts, v1, v2 float64, note string) {
	if t == nil || !t.enabled.Load() {
		return
	}
	t.emit(Event{Algo: algo, Kind: kind, T: ts, V1: v1, V2: v2, Note: note})
}

func (t *Tracer) emit(e Event) {
	e.Seq = t.seq.Add(1)
	e.Wall = time.Now().UnixNano()
	t.mu.Lock()
	ks := t.counts[e.Kind]
	if ks == nil {
		ks = &KindStats{}
		t.counts[e.Kind] = ks
	}
	ks.Count++
	ks.LastSeq = e.Seq
	if t.every <= 1 || e.Seq%t.every == 0 {
		if len(t.ring) < cap(t.ring) {
			t.ring = append(t.ring, e)
		} else {
			t.ring[t.head] = e
		}
		t.head = (t.head + 1) % cap(t.ring)
		t.recorded++
	}
	t.mu.Unlock()
}

// Span measures a duration; obtain one with Start and finish it with
// End. The zero Span (returned by a nil or disabled tracer) is a
// no-op, so callers never branch.
type Span struct {
	t     *Tracer
	algo  string
	kind  string
	ts    float64
	start time.Time
}

// Start opens a span. On a nil or disabled tracer it costs one atomic
// load and returns the no-op zero Span — in particular no clock read.
func (t *Tracer) Start(algo, kind string, ts float64) Span {
	if t == nil || !t.enabled.Load() {
		return Span{}
	}
	return Span{t: t, algo: algo, kind: kind, ts: ts, start: time.Now()}
}

// End closes the span, emitting its event with Dur set.
func (s Span) End(v1, v2 float64) {
	if s.t == nil {
		return
	}
	s.t.emit(Event{
		Algo: s.algo, Kind: s.kind, T: s.ts, V1: v1, V2: v2,
		Dur: time.Since(s.start).Nanoseconds(),
	})
}

// EndNote closes the span like End, attaching a free-text note to the
// emitted event.
func (s Span) EndNote(v1, v2 float64, note string) {
	if s.t == nil {
		return
	}
	s.t.emit(Event{
		Algo: s.algo, Kind: s.kind, T: s.ts, V1: v1, V2: v2, Note: note,
		Dur: time.Since(s.start).Nanoseconds(),
	})
}

// Active reports whether the span will emit on End — false for the
// zero Span handed out by a nil or disabled tracer. Callers use it to
// skip building note strings that would be thrown away.
func (s Span) Active() bool { return s.t != nil }

// Events returns the recorded events, oldest first. The slice is a
// snapshot; the tracer keeps recording.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	if len(t.ring) < cap(t.ring) {
		return append(out, t.ring...)
	}
	out = append(out, t.ring[t.head:]...)
	return append(out, t.ring[:t.head]...)
}

// Total reports the number of events emitted since the last Reset
// (including emissions thinned out of the ring by sampling).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.seq.Load()
}

// Counts returns a copy of the per-kind statistics.
func (t *Tracer) Counts() map[string]KindStats {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]KindStats, len(t.counts))
	for k, v := range t.counts {
		out[k] = *v
	}
	return out
}

// Summarize returns the aggregate view of the tracer's state.
func (t *Tracer) Summarize() Summary {
	if t == nil {
		return Summary{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Summary{
		Enabled:     t.enabled.Load(),
		SampleEvery: int(t.every),
		Total:       t.seq.Load(),
		Recorded:    t.recorded,
		Capacity:    cap(t.ring),
		Kinds:       make(map[string]KindStats, len(t.counts)),
	}
	if held := uint64(len(t.ring)); t.recorded > held {
		s.Dropped = t.recorded - held
	}
	for k, v := range t.counts {
		s.Kinds[k] = *v
	}
	return s
}

// Reset clears the ring and every counter; the sequence numbering
// restarts from 1 (enabled/sampling state is preserved).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring = t.ring[:0]
	t.head = 0
	t.recorded = 0
	t.counts = make(map[string]*KindStats)
	t.mu.Unlock()
	t.seq.Store(0)
}

// WriteJSONL writes the recorded events, oldest first, one JSON object
// per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range t.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// Traceable is implemented by components that can emit into a tracer.
// Implementations store the pointer and use it for all future
// emissions; call SetTracer before the first Update (tracers attached
// mid-stream may miss sub-components created earlier).
type Traceable interface {
	SetTracer(*Tracer)
}
