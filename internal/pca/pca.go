// Package pca layers the paper's motivating application (Section 1)
// on top of the sliding-window sketches: approximate principal
// component analysis of the window from the sketch's ℓ×d answer, and
// the reference-vs-test-window change detection scheme the paper
// describes (compare the PCA basis of a fixed reference window with a
// continuously tracked test window).
package pca

import (
	"fmt"
	"math"

	"swsketch/internal/mat"
)

// Result holds the principal component analysis of a (sketched)
// window approximation B: the top-k right singular directions of B,
// their singular values, and the fraction of total energy each
// explains. Because cova-err(A, B) ≤ ε guarantees ‖Bx‖² tracks ‖Ax‖²
// in every direction x, these components approximate the window's PCA.
type Result struct {
	// Components is k×d; row i is the i-th principal direction.
	Components *mat.Dense
	// SingularValues holds the corresponding singular values of B.
	SingularValues []float64
	// Explained[i] is σᵢ²/Σσ², the energy fraction along component i.
	Explained []float64
}

// Compute returns the top-k principal components of the approximation
// b. It panics if k < 1; fewer than k components are returned when b
// has lower rank.
func Compute(b *mat.Dense, k int) Result {
	if k < 1 {
		panic(fmt.Sprintf("pca: k must be ≥ 1, got %d", k))
	}
	svd := mat.SVD(b)
	r := len(svd.S)
	if k > r {
		k = r
	}
	var total float64
	for _, s := range svd.S {
		total += s * s
	}
	comp := mat.NewDense(k, b.Cols())
	mat.TransposeInto(comp, svd.V, k)
	explained := make([]float64, k)
	vals := make([]float64, k)
	for i := 0; i < k; i++ {
		vals[i] = svd.S[i]
		if total > 0 {
			explained[i] = svd.S[i] * svd.S[i] / total
		}
	}
	return Result{Components: comp, SingularValues: vals, Explained: explained}
}

// Project returns the coordinates of row x in the component basis.
func (r Result) Project(x []float64) []float64 {
	out := make([]float64, r.Components.Rows())
	for i := range out {
		out[i] = mat.Dot(r.Components.Row(i), x)
	}
	return out
}

// ResidualEnergy returns the fraction of b's total energy lying
// outside the subspace spanned by the components of r — the change
// statistic of the paper's PCA-based anomaly detection: a spike means
// the window's distribution has left the reference subspace.
func ResidualEnergy(b *mat.Dense, r Result) float64 {
	total := b.FrobeniusSq()
	if total == 0 {
		return 0
	}
	var inside float64
	for i := 0; i < b.Rows(); i++ {
		row := b.Row(i)
		for p := 0; p < r.Components.Rows(); p++ {
			d := mat.Dot(row, r.Components.Row(p))
			inside += d * d
		}
	}
	out := (total - inside) / total
	if out < 0 {
		return 0
	}
	if out > 1 {
		return 1
	}
	return out
}

// SubspaceDistance returns sin θ_max, the sine of the largest
// principal angle between the subspaces spanned by the components of
// a and b (rows orthonormal). 0 means identical subspaces, 1 means
// some direction of a is orthogonal to all of b. This is the basis-
// comparison metric for reference-vs-test change detection.
func SubspaceDistance(a, b Result) float64 {
	ka, kb := a.Components.Rows(), b.Components.Rows()
	if ka == 0 || kb == 0 {
		if ka == kb {
			return 0
		}
		return 1
	}
	// Principal angles: cos θᵢ are the singular values of A·Bᵀ.
	m := mat.Mul(a.Components, b.Components.T())
	s := mat.SingularValues(m)
	// The smallest cosine across min(ka, kb) angles gives θ_max; if
	// ka > kb, some direction of a is necessarily outside b's span.
	k := ka
	if kb < k {
		k = kb
	}
	minCos := 1.0
	if ka > kb {
		minCos = 0
	} else {
		for i := 0; i < k; i++ {
			c := s[i]
			if c > 1 {
				c = 1
			}
			if c < minCos {
				minCos = c
			}
		}
	}
	return math.Sqrt(math.Max(0, 1-minCos*minCos))
}

// Detector implements the paper's window-based change detection: fix
// a reference PCA basis, then repeatedly test the sliding window's
// sketched approximation against it.
type Detector struct {
	ref       Result
	threshold float64
}

// NewDetector builds a detector from the reference window's
// approximation (or exact matrix), keeping k components. threshold is
// the residual-energy fraction above which Test reports a change;
// values around 2–3× the reference window's own residual work well.
func NewDetector(reference *mat.Dense, k int, threshold float64) *Detector {
	if threshold <= 0 || threshold >= 1 {
		panic(fmt.Sprintf("pca: threshold must be in (0,1), got %v", threshold))
	}
	return &Detector{ref: Compute(reference, k), threshold: threshold}
}

// Reference exposes the reference-basis PCA.
func (d *Detector) Reference() Result { return d.ref }

// Test evaluates the test window's approximation, returning the
// residual-energy statistic and whether it crosses the threshold.
func (d *Detector) Test(b *mat.Dense) (stat float64, changed bool) {
	stat = ResidualEnergy(b, d.ref)
	return stat, stat > d.threshold
}
