package pca

import (
	"math"
	"math/rand"
	"testing"

	"swsketch/internal/mat"
)

func randRows(rng *rand.Rand, n, d int) *mat.Dense {
	m := mat.NewDense(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func TestComputeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	Compute(mat.NewDense(2, 2), 0)
}

func TestComputeAxisAligned(t *testing.T) {
	// Data along e₁ with a little e₀: first component must be ±e₁.
	rows := [][]float64{}
	for i := 0; i < 50; i++ {
		rows = append(rows, []float64{0.01 * float64(i%3), float64(i + 1)})
	}
	res := Compute(mat.FromRows(rows), 2)
	if math.Abs(math.Abs(res.Components.At(0, 1))-1) > 1e-3 {
		t.Fatalf("first component = %v, want ±e₁", res.Components.Row(0))
	}
	if res.Explained[0] < 0.99 {
		t.Fatalf("explained[0] = %v, want ≈ 1", res.Explained[0])
	}
	var sum float64
	for _, e := range res.Explained {
		sum += e
	}
	if sum > 1+1e-9 {
		t.Fatalf("explained fractions sum to %v > 1", sum)
	}
}

func TestComputeTruncatesAtRank(t *testing.T) {
	// Rank-1 input with k=3 must return 1 component.
	rows := mat.FromRows([][]float64{{1, 2, 3}, {2, 4, 6}})
	res := Compute(rows, 3)
	if res.Components.Rows() > 2 {
		t.Fatalf("components = %d for rank-1 data", res.Components.Rows())
	}
}

func TestProject(t *testing.T) {
	res := Result{Components: mat.FromRows([][]float64{{1, 0}, {0, 1}})}
	p := res.Project([]float64{3, 4})
	if p[0] != 3 || p[1] != 4 {
		t.Fatalf("Project = %v", p)
	}
}

func TestResidualEnergyExtremes(t *testing.T) {
	basis := Result{Components: mat.FromRows([][]float64{{1, 0}})}
	inside := mat.FromRows([][]float64{{5, 0}, {-2, 0}})
	if r := ResidualEnergy(inside, basis); r > 1e-12 {
		t.Fatalf("in-subspace residual = %v", r)
	}
	outside := mat.FromRows([][]float64{{0, 3}})
	if r := ResidualEnergy(outside, basis); math.Abs(r-1) > 1e-12 {
		t.Fatalf("orthogonal residual = %v, want 1", r)
	}
	if r := ResidualEnergy(mat.NewDense(0, 2), basis); r != 0 {
		t.Fatalf("empty residual = %v", r)
	}
}

func TestSubspaceDistanceIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := randRows(rng, 40, 6)
	r1 := Compute(b, 3)
	r2 := Compute(b.Clone(), 3)
	if d := SubspaceDistance(r1, r2); d > 1e-6 {
		t.Fatalf("distance between identical subspaces = %v", d)
	}
}

func TestSubspaceDistanceOrthogonal(t *testing.T) {
	a := Result{Components: mat.FromRows([][]float64{{1, 0, 0, 0}})}
	b := Result{Components: mat.FromRows([][]float64{{0, 1, 0, 0}})}
	if d := SubspaceDistance(a, b); math.Abs(d-1) > 1e-12 {
		t.Fatalf("orthogonal distance = %v, want 1", d)
	}
}

func TestSubspaceDistanceRotation(t *testing.T) {
	// Plane spanned by e₀ rotated by θ: distance = sin θ.
	theta := 0.3
	a := Result{Components: mat.FromRows([][]float64{{1, 0}})}
	b := Result{Components: mat.FromRows([][]float64{{math.Cos(theta), math.Sin(theta)}})}
	if d := SubspaceDistance(a, b); math.Abs(d-math.Sin(theta)) > 1e-9 {
		t.Fatalf("distance = %v, want sin θ = %v", d, math.Sin(theta))
	}
}

func TestSubspaceDistanceDimensionMismatch(t *testing.T) {
	// 2-dim a vs 1-dim b: some direction of a escapes b.
	a := Result{Components: mat.FromRows([][]float64{{1, 0, 0}, {0, 1, 0}})}
	b := Result{Components: mat.FromRows([][]float64{{1, 0, 0}})}
	if d := SubspaceDistance(a, b); math.Abs(d-1) > 1e-12 {
		t.Fatalf("distance = %v, want 1", d)
	}
	// Contained the other way: b inside a.
	if d := SubspaceDistance(b, a); d > 1e-9 {
		t.Fatalf("contained distance = %v, want 0", d)
	}
}

func TestSubspaceDistanceEmpty(t *testing.T) {
	empty := Result{Components: mat.NewDense(0, 3)}
	if d := SubspaceDistance(empty, empty); d != 0 {
		t.Fatalf("empty-vs-empty = %v", d)
	}
	full := Result{Components: mat.FromRows([][]float64{{1, 0, 0}})}
	if d := SubspaceDistance(full, empty); d != 1 {
		t.Fatalf("full-vs-empty = %v", d)
	}
}

func TestDetectorEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := 8
	// Reference: strong direction e₀ plus noise.
	ref := mat.NewDense(200, d)
	for i := 0; i < 200; i++ {
		ref.Set(i, 0, 5+rng.NormFloat64())
		for j := 1; j < d; j++ {
			ref.Set(i, j, 0.2*rng.NormFloat64())
		}
	}
	det := NewDetector(ref, 1, 0.3)

	// Same distribution: no change.
	same := mat.NewDense(100, d)
	for i := 0; i < 100; i++ {
		same.Set(i, 0, 5+rng.NormFloat64())
		for j := 1; j < d; j++ {
			same.Set(i, j, 0.2*rng.NormFloat64())
		}
	}
	if stat, changed := det.Test(same); changed {
		t.Fatalf("false positive: stat = %v", stat)
	}

	// Shifted energy to e₃: change.
	diff := mat.NewDense(100, d)
	for i := 0; i < 100; i++ {
		diff.Set(i, 3, 5+rng.NormFloat64())
	}
	if stat, changed := det.Test(diff); !changed {
		t.Fatalf("missed change: stat = %v", stat)
	}
	if det.Reference().Components.Rows() != 1 {
		t.Fatal("reference basis wrong")
	}
}

func TestDetectorThresholdValidation(t *testing.T) {
	for _, th := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for threshold %v", th)
				}
			}()
			NewDetector(mat.FromRows([][]float64{{1}}), 1, th)
		}()
	}
}
