package window

import (
	"math"
	"math/rand"
	"testing"

	"swsketch/internal/mat"
)

func TestSpecConstructors(t *testing.T) {
	s := Seq(100)
	if s.Kind != Sequence || s.Size != 100 {
		t.Fatalf("Seq = %+v", s)
	}
	w := TimeSpan(2.5)
	if w.Kind != Time || w.Size != 2.5 {
		t.Fatalf("TimeSpan = %+v", w)
	}
	if s.String() == "" || w.String() == "" || s.Kind.String() != "sequence" || w.Kind.String() != "time" {
		t.Fatal("String methods broken")
	}
}

func TestSpecValidation(t *testing.T) {
	for _, f := range []func(){
		func() { Seq(0) },
		func() { TimeSpan(0) },
		func() { TimeSpan(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCutoff(t *testing.T) {
	if Seq(10).Cutoff(25) != 15 {
		t.Fatal("sequence cutoff wrong")
	}
	if TimeSpan(3).Cutoff(10) != 7 {
		t.Fatal("time cutoff wrong")
	}
}

func TestExactSequenceWindowEviction(t *testing.T) {
	e := NewExact(Seq(3), 2)
	for i := 0; i < 5; i++ {
		e.Update([]float64{float64(i + 1), 0}, float64(i))
	}
	// Window should hold rows with value 3, 4, 5.
	if e.Len() != 3 {
		t.Fatalf("Len = %d, want 3", e.Len())
	}
	wantFro := 9.0 + 16 + 25
	if math.Abs(e.FroSq()-wantFro) > 1e-9 {
		t.Fatalf("FroSq = %v, want %v", e.FroSq(), wantFro)
	}
	if g := e.Gram().At(0, 0); math.Abs(g-wantFro) > 1e-9 {
		t.Fatalf("Gram[0][0] = %v, want %v", g, wantFro)
	}
}

func TestExactTimeWindowEviction(t *testing.T) {
	e := NewExact(TimeSpan(1.0), 1)
	e.Update([]float64{1}, 0.0)
	e.Update([]float64{2}, 0.5)
	e.Update([]float64{3}, 1.2) // expels t=0.0 (0.0 ≤ 1.2−1.0)
	if e.Len() != 2 {
		t.Fatalf("Len = %d, want 2", e.Len())
	}
	if math.Abs(e.FroSq()-13) > 1e-9 {
		t.Fatalf("FroSq = %v, want 13", e.FroSq())
	}
}

func TestExactAdvance(t *testing.T) {
	e := NewExact(TimeSpan(1.0), 1)
	e.Update([]float64{1}, 0.0)
	e.Advance(5.0)
	if e.Len() != 0 || e.FroSq() != 0 {
		t.Fatalf("Advance did not expire: len=%d fro=%v", e.Len(), e.FroSq())
	}
}

func TestExactOutOfOrderPanics(t *testing.T) {
	e := NewExact(Seq(3), 1)
	e.Update([]float64{1}, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Update([]float64{1}, 4)
}

func TestExactRowLengthPanics(t *testing.T) {
	e := NewExact(Seq(3), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Update([]float64{1}, 0)
}

func TestExactDimensionValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewExact(Seq(3), 0)
}

func TestExactGramMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := NewExact(Seq(50), 4)
	for i := 0; i < 200; i++ {
		row := make([]float64, 4)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		e.Update(row, float64(i))
	}
	a := e.Matrix()
	if a.Rows() != 50 {
		t.Fatalf("Matrix rows = %d, want 50", a.Rows())
	}
	if !e.Gram().Equal(a.Gram(), 1e-8) {
		t.Fatal("incremental Gram drifted from recomputed Gram")
	}
	if math.Abs(e.FroSq()-a.FrobeniusSq()) > 1e-8 {
		t.Fatalf("FroSq drifted: %v vs %v", e.FroSq(), a.FrobeniusSq())
	}
}

func TestExactCovaErrZeroForSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := NewExact(Seq(20), 3)
	for i := 0; i < 60; i++ {
		row := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		e.Update(row, float64(i))
	}
	if err := e.CovaErr(e.Matrix()); err > 1e-10 {
		t.Fatalf("CovaErr against the window itself = %v", err)
	}
}

func TestExactCovaErrNilB(t *testing.T) {
	e := NewExact(Seq(5), 2)
	e.Update([]float64{1, 0}, 0)
	got := e.CovaErr(nil)
	if math.Abs(got-1.0) > 1e-12 { // single row: ‖AᵀA‖/‖A‖²_F = 1
		t.Fatalf("CovaErr(nil) = %v, want 1", got)
	}
}

func TestExactEmptyWindow(t *testing.T) {
	e := NewExact(Seq(5), 2)
	if e.CovaErr(nil) != 0 || e.Len() != 0 || e.FroSq() != 0 {
		t.Fatal("empty window should be all-zero")
	}
	if m := e.Matrix(); m.Rows() != 0 {
		t.Fatal("empty window matrix should have no rows")
	}
}

func TestExactNormsMatchesWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	spec := Seq(100)
	e := NewExact(spec, 3)
	n := NewExactNorms(spec)
	for i := 0; i < 500; i++ {
		row := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		tt := float64(i)
		e.Update(row, tt)
		n.Add(tt, mat.SqNorm(row))
		if math.Abs(n.FroSq(tt)-e.FroSq()) > 1e-6 {
			t.Fatalf("at %d: tracker %v vs window %v", i, n.FroSq(tt), e.FroSq())
		}
	}
	if n.Size() > 100 {
		t.Fatalf("ExactNorms retains %d items, window is 100", n.Size())
	}
}

func TestEHNormsApproximates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	spec := Seq(1000)
	e := NewExact(spec, 2)
	n := NewEHNorms(spec, 0.05)
	for i := 0; i < 10000; i++ {
		row := []float64{1 + rng.Float64(), rng.Float64()}
		tt := float64(i)
		e.Update(row, tt)
		n.Add(tt, mat.SqNorm(row))
		if i > 2000 && i%131 == 0 {
			got, want := n.FroSq(tt), e.FroSq()
			if math.Abs(got-want)/want > 0.2 {
				t.Fatalf("at %d: EH %v vs exact %v", i, got, want)
			}
		}
	}
	if n.Size() > 2000 {
		t.Fatalf("EHNorms uses %d buckets; should be ≪ window", n.Size())
	}
}

func TestEHNormsSmallerThanExact(t *testing.T) {
	spec := Seq(5000)
	exact := NewExactNorms(spec)
	approx := NewEHNorms(spec, 0.1)
	for i := 0; i < 20000; i++ {
		exact.Add(float64(i), 1)
		approx.Add(float64(i), 1)
	}
	exact.FroSq(19999)
	approx.FroSq(19999)
	if approx.Size() >= exact.Size() {
		t.Fatalf("EH size %d not smaller than exact %d", approx.Size(), exact.Size())
	}
}

func TestExactDimAndAdvanceOrder(t *testing.T) {
	e := NewExact(Seq(5), 3)
	if e.Dim() != 3 {
		t.Fatalf("Dim = %d", e.Dim())
	}
	e.Update([]float64{1, 0, 0}, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Advance backwards")
		}
	}()
	e.Advance(4)
}

func TestExactNormsSnapshotRoundTrip(t *testing.T) {
	spec := TimeSpan(7)
	x := NewExactNorms(spec)
	for i := 0; i < 50; i++ {
		x.Add(float64(i), 1+float64(i%3))
	}
	data, err := x.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored ExactNorms
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if restored.FroSq(49) != x.FroSq(49) {
		t.Fatalf("restored mass %v vs %v", restored.FroSq(49), x.FroSq(49))
	}
	if restored.Size() != x.Size() {
		t.Fatalf("restored size %d vs %d", restored.Size(), x.Size())
	}
	// Restored tracker keeps working.
	restored.Add(50, 2)
	if restored.FroSq(50) <= 0 {
		t.Fatal("restored tracker dead")
	}
}

func TestExactNormsSnapshotRejectsBadData(t *testing.T) {
	var x ExactNorms
	for name, data := range map[string][]byte{
		"empty":     nil,
		"truncated": {1, 2, 3},
	} {
		if err := x.UnmarshalBinary(data); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
	// Bad kind.
	good := NewExactNorms(Seq(5))
	good.Add(0, 1)
	b, _ := good.MarshalBinary()
	b[0] = 99 // kind byte (little-endian first byte of the kind u64)
	if err := x.UnmarshalBinary(b); err == nil {
		t.Fatal("expected bad-kind error")
	}
	// Trailing bytes.
	b2, _ := good.MarshalBinary()
	if err := x.UnmarshalBinary(append(b2, 1)); err == nil {
		t.Fatal("expected trailing-bytes error")
	}
}

func TestKindStringUnknown(t *testing.T) {
	if Kind(42).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}
