package window

import (
	"math/rand"
	"testing"
)

// TestIndexReductionDecodesAllBits executes the communication-
// complexity reduction behind the paper's Theorem 4.1: any structure
// that maintains AᵀA exactly over a sequence window of N rows can be
// made to reveal every one of the N·d bits that passed through it —
// Alice encodes a bit string as rows, Bob slides the window forward
// with probe rows confined to an extra column and reads each expelled
// row back off the Gram diagonal. Since the bits are recovered
// exactly, the structure must retain Ω(Nd) bits: exact tracking over
// sliding windows is as expensive as storing the window. (The sketches
// in package core exist precisely because of this.)
func TestIndexReductionDecodesAllBits(t *testing.T) {
	const (
		n    = 64 // window rows (Alice's chunks)
		d    = 17 // bits per chunk
		cols = d + 1
	)
	rng := rand.New(rand.NewSource(1))

	// Alice: encode a random bit string x as N rows of d bits, using an
	// exact AᵀA tracker over a window of exactly N rows.
	bits := make([][]float64, n)
	tracker := NewExact(Seq(n), cols)
	tt := 0.0
	for i := range bits {
		row := make([]float64, cols)
		for j := 0; j < d; j++ {
			if rng.Intn(2) == 1 {
				row[j] = 1
			}
		}
		bits[i] = row
		tracker.Update(row, tt)
		tt++
	}

	// Bob: the j-th probe row (a unit vector in the spare column)
	// expels Alice's j-th row from the window. The drop in the Gram
	// diagonal entry (c, c) across the expulsion is exactly the bit
	// A_{j,c}² = A_{j,c}.
	decoded := make([][]float64, n)
	probe := make([]float64, cols)
	probe[d] = 1
	for j := 0; j < n; j++ {
		before := tracker.Gram()
		tracker.Update(probe, tt)
		tt++
		after := tracker.Gram()
		row := make([]float64, cols)
		for c := 0; c < d; c++ {
			diff := before.At(c, c) - after.At(c, c)
			if diff > 0.5 {
				row[c] = 1
			}
		}
		decoded[j] = row
	}

	for j := 0; j < n; j++ {
		for c := 0; c < d; c++ {
			if decoded[j][c] != bits[j][c] {
				t.Fatalf("bit (%d,%d) decoded as %v, want %v — the reduction must recover every bit",
					j, c, decoded[j][c], bits[j][c])
			}
		}
	}
}
