// Package window provides the sliding-window substrate shared by the
// sketching algorithms and the evaluation harness: window
// specifications (sequence-based and time-based), an exact window
// buffer with incremental Gram maintenance (the ground truth against
// which covariance error is measured), and Frobenius-mass trackers
// (exact and exponential-histogram approximate) used by the samplers
// for rescaling.
package window

import (
	"fmt"
	"math"

	"swsketch/internal/binenc"
	"swsketch/internal/eh"
	"swsketch/internal/mat"
	"swsketch/internal/trace"
)

// Kind distinguishes the two window models of the paper.
type Kind int

const (
	// Sequence windows contain the N most recent rows; the "timestamp"
	// of row i is its stream index.
	Sequence Kind = iota
	// Time windows contain all rows with timestamps in (t−Δ, t].
	Time
)

// String returns the canonical lowercase name of the window kind.
func (k Kind) String() string {
	switch k {
	case Sequence:
		return "sequence"
	case Time:
		return "time"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec describes a sliding window. For Sequence windows Size is the
// row count N; for Time windows Size is the span Δ in timestamp units.
type Spec struct {
	Kind Kind
	Size float64
}

// Seq returns a sequence-based window of the most recent n rows.
func Seq(n int) Spec {
	if n < 1 {
		panic(fmt.Sprintf("window: sequence window size %d", n))
	}
	return Spec{Kind: Sequence, Size: float64(n)}
}

// TimeSpan returns a time-based window of span delta.
func TimeSpan(delta float64) Spec {
	if delta <= 0 {
		panic(fmt.Sprintf("window: time window span %v", delta))
	}
	return Spec{Kind: Time, Size: delta}
}

// Cutoff returns the expiry threshold at current time t: rows with
// timestamp ≤ cutoff are outside the window (t−Δ, t]. For sequence
// windows, t is the index of the most recent row (0-based) and rows
// with index ≤ t−N expire.
func (s Spec) Cutoff(t float64) float64 { return t - s.Size }

// String renders the spec.
func (s Spec) String() string { return fmt.Sprintf("%v(%g)", s.Kind, s.Size) }

// timedRow is a buffered row with its timestamp.
type timedRow struct {
	t   float64
	row []float64
}

// Exact maintains the window contents exactly: the rows, the Gram
// matrix AᵀA (updated incrementally on arrival and expiry), and
// ‖A‖²_F. It is the reference oracle used to compute covariance error
// in tests and the evaluation harness, and the backing store of the
// BEST(offline) baseline.
type Exact struct {
	spec  Spec
	d     int
	rows  []timedRow // FIFO, oldest first
	gram  *mat.Dense
	froSq float64
	lastT float64
	seen  bool
}

// NewExact returns an exact window tracker for dimension d.
func NewExact(spec Spec, d int) *Exact {
	if d < 1 {
		panic(fmt.Sprintf("window: dimension %d", d))
	}
	return &Exact{spec: spec, d: d, gram: mat.NewDense(d, d)}
}

// Update inserts a row at timestamp t and expires old rows. Timestamps
// must be non-decreasing. The row is copied.
func (e *Exact) Update(row []float64, t float64) {
	if len(row) != e.d {
		panic(fmt.Sprintf("window: row length %d, want %d", len(row), e.d))
	}
	if e.seen && t < e.lastT {
		panic(fmt.Sprintf("window: timestamp %v precedes %v", t, e.lastT))
	}
	e.lastT, e.seen = t, true

	r := make([]float64, e.d)
	copy(r, row)
	e.rows = append(e.rows, timedRow{t: t, row: r})
	mat.AddOuterTo(e.gram, r, 1)
	e.froSq += mat.SqNorm(r)
	e.expire(t)
}

// UpdateBatch inserts rows arriving at the corresponding timestamps,
// in order, running the expiry scan once at the end of the batch
// instead of once per row. The final state is identical to repeated
// Update calls (expiry is a monotone FIFO trim), but a batch costs one
// pass over the expired prefix rather than len(rows).
func (e *Exact) UpdateBatch(rows [][]float64, times []float64) {
	if len(rows) != len(times) {
		panic(fmt.Sprintf("window: batch of %d rows but %d timestamps", len(rows), len(times)))
	}
	for i, row := range rows {
		if len(row) != e.d {
			panic(fmt.Sprintf("window: batch row %d length %d, want %d", i, len(row), e.d))
		}
		t := times[i]
		if e.seen && t < e.lastT {
			panic(fmt.Sprintf("window: timestamp %v precedes %v", t, e.lastT))
		}
		e.lastT, e.seen = t, true
		r := make([]float64, e.d)
		copy(r, row)
		e.rows = append(e.rows, timedRow{t: t, row: r})
		mat.AddOuterTo(e.gram, r, 1)
		e.froSq += mat.SqNorm(r)
	}
	if len(rows) > 0 {
		e.expire(e.lastT)
	}
}

// Advance expires rows without inserting (time moved forward with no
// arrival). Only meaningful for time-based windows.
func (e *Exact) Advance(t float64) {
	if e.seen && t < e.lastT {
		panic(fmt.Sprintf("window: timestamp %v precedes %v", t, e.lastT))
	}
	e.lastT, e.seen = t, true
	e.expire(t)
}

func (e *Exact) expire(t float64) {
	cutoff := e.spec.Cutoff(t)
	drop := 0
	for drop < len(e.rows) && e.rows[drop].t <= cutoff {
		mat.AddOuterTo(e.gram, e.rows[drop].row, -1)
		e.froSq -= mat.SqNorm(e.rows[drop].row)
		drop++
	}
	if drop > 0 {
		e.rows = e.rows[drop:]
		if e.froSq < 0 {
			e.froSq = 0 // guard against round-off drift
		}
	}
}

// Len reports the number of rows currently in the window.
func (e *Exact) Len() int { return len(e.rows) }

// Dim reports the row dimension d.
func (e *Exact) Dim() int { return e.d }

// Gram returns a copy of the exact AᵀA of the window.
func (e *Exact) Gram() *mat.Dense { return e.gram.Clone() }

// FroSq returns the exact ‖A‖²_F of the window.
func (e *Exact) FroSq() float64 { return e.froSq }

// Matrix materialises the window contents as a matrix (oldest row
// first). The result is a copy.
func (e *Exact) Matrix() *mat.Dense {
	out := mat.NewDense(len(e.rows), e.d)
	for i, tr := range e.rows {
		copy(out.Row(i), tr.row)
	}
	return out
}

// CovaErr computes the paper's covariance error of an approximation b
// against the current window, using a freshly recomputed Gram matrix
// to avoid accumulation drift in long runs.
func (e *Exact) CovaErr(b *mat.Dense) float64 {
	g := mat.NewDense(e.d, e.d)
	var fro float64
	for _, tr := range e.rows {
		mat.AddOuterTo(g, tr.row, 1)
		fro += mat.SqNorm(tr.row)
	}
	return mat.CovarianceError(g, fro, b)
}

// CrossGram returns the exact cross product AᵀB of the window under
// the stacked-row convention used by the paired (AMM) sketches: each
// stored row is [a|b] with a = row[:dA] and b = row[dA:]. The result
// is dA×(d−dA), recomputed fresh from the stored rows (like CovaErr)
// to avoid accumulation drift. Panics unless 0 < dA < d.
func (e *Exact) CrossGram(dA int) *mat.Dense {
	if dA < 1 || dA >= e.d {
		panic(fmt.Sprintf("window: CrossGram split %d outside (0,%d)", dA, e.d))
	}
	dB := e.d - dA
	p := mat.NewDense(dA, dB)
	for _, tr := range e.rows {
		a, b := tr.row[:dA], tr.row[dA:]
		for i, av := range a {
			if av == 0 {
				continue
			}
			pr := p.Row(i)
			for j, bv := range b {
				pr[j] += av * bv
			}
		}
	}
	return p
}

// SplitFroSq returns the exact squared Frobenius norms (‖A‖²_F, ‖B‖²_F)
// of the window's two sides under the stacked-row convention.
func (e *Exact) SplitFroSq(dA int) (float64, float64) {
	if dA < 1 || dA >= e.d {
		panic(fmt.Sprintf("window: SplitFroSq split %d outside (0,%d)", dA, e.d))
	}
	var froA, froB float64
	for _, tr := range e.rows {
		froA += mat.SqNorm(tr.row[:dA])
		froB += mat.SqNorm(tr.row[dA:])
	}
	return froA, froB
}

// AmmErr computes the paired-stream correlation error of an AᵀB
// estimate p against the current window:
//
//	‖AᵀB − p‖₂ / (‖A‖_F·‖B‖_F)
//
// — the AMM analogue of the covariance error, and the metric the
// paper's AMM bound is stated in. When either side of the window is
// all-zero (denominator 0) the error is 0 for an (exactly correct)
// zero estimate and +Inf otherwise.
func (e *Exact) AmmErr(dA int, p *mat.Dense) float64 {
	exact := e.CrossGram(dA)
	if p.Rows() != exact.Rows() || p.Cols() != exact.Cols() {
		panic(fmt.Sprintf("window: AmmErr estimate is %dx%d, want %dx%d",
			p.Rows(), p.Cols(), exact.Rows(), exact.Cols()))
	}
	ed, pd := exact.Data(), p.Data()
	for i := range ed {
		ed[i] -= pd[i]
	}
	num := mat.SpectralNorm(exact)
	froA, froB := e.SplitFroSq(dA)
	denom := math.Sqrt(froA) * math.Sqrt(froB)
	if denom == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return num / denom
}

// NormTracker approximates ‖A‖²_F over the sliding window. The
// samplers use it for rescaling; it abstracts over the exact
// per-row-norm ring buffer (the paper's practical remark) and the
// exponential histogram (the paper's sub-linear option).
type NormTracker interface {
	// Add records a row's squared norm at timestamp t.
	Add(t, sqNorm float64)
	// AddBatch records a run of squared norms at non-decreasing
	// timestamps, letting the tracker amortise per-item maintenance
	// (the EH tracker canonicalizes once per batch). The estimate
	// guarantee matches repeated Add calls.
	AddBatch(ts, sqNorms []float64)
	// FroSq estimates ‖A‖²_F for the window ending at time t.
	FroSq(t float64) float64
	// Size reports the tracker's space usage in stored scalars.
	Size() int
}

// ExactNorms stores one float per live row: exact, O(window) scalars
// (but not O(window·d), which is the point).
type ExactNorms struct {
	spec  Spec
	items []struct{ t, w float64 }
	sum   float64
}

// NewExactNorms returns an exact Frobenius-mass tracker.
func NewExactNorms(spec Spec) *ExactNorms { return &ExactNorms{spec: spec} }

// Add records a squared norm.
func (x *ExactNorms) Add(t, sqNorm float64) {
	x.items = append(x.items, struct{ t, w float64 }{t, sqNorm})
	x.sum += sqNorm
}

// AddBatch records a run of squared norms.
func (x *ExactNorms) AddBatch(ts, sqNorms []float64) {
	if len(ts) != len(sqNorms) {
		panic(fmt.Sprintf("window: norm batch of %d timestamps but %d norms", len(ts), len(sqNorms)))
	}
	for i, w := range sqNorms {
		x.items = append(x.items, struct{ t, w float64 }{ts[i], w})
		x.sum += w
	}
}

// FroSq returns the exact windowed mass.
func (x *ExactNorms) FroSq(t float64) float64 {
	cutoff := x.spec.Cutoff(t)
	drop := 0
	for drop < len(x.items) && x.items[drop].t <= cutoff {
		x.sum -= x.items[drop].w
		drop++
	}
	if drop > 0 {
		x.items = x.items[drop:]
		if x.sum < 0 {
			x.sum = 0
		}
	}
	return x.sum
}

// Size reports the number of stored norms.
func (x *ExactNorms) Size() int { return len(x.items) }

// EHNorms tracks ‖A‖²_F with an exponential histogram in O(k·log NR)
// space and relative error ≈ 1/k.
type EHNorms struct {
	spec Spec
	h    *eh.Histogram
}

// NewEHNorms returns an EH-backed tracker with relative error ≈ eps.
func NewEHNorms(spec Spec, eps float64) *EHNorms {
	return &EHNorms{spec: spec, h: eh.NewForError(eps)}
}

// Add records a squared norm.
func (x *EHNorms) Add(t, sqNorm float64) { x.h.Add(t, sqNorm) }

// AddBatch records a run of squared norms with one histogram
// canonicalization for the whole run.
func (x *EHNorms) AddBatch(ts, sqNorms []float64) { x.h.AddBatch(ts, sqNorms) }

// FroSq estimates the windowed mass.
func (x *EHNorms) FroSq(t float64) float64 { return x.h.Estimate(x.spec.Cutoff(t)) }

// Size reports the bucket count.
func (x *EHNorms) Size() int { return x.h.Buckets() }

// Stats exposes the underlying exponential histogram's internals
// (bucket count, size classes, items, running total) so sketches using
// the EH tracker can surface them via core.Introspector.
func (x *EHNorms) Stats() map[string]float64 { return x.h.Stats() }

// SetTracer attaches a tracer to the underlying histogram, whose
// bucket merges then emit eh_merge events.
func (x *EHNorms) SetTracer(tr *trace.Tracer) { x.h.SetTracer(tr) }

var (
	_ NormTracker = (*ExactNorms)(nil)
	_ NormTracker = (*EHNorms)(nil)
)

// MarshalBinary snapshots the tracker (spec plus live items).
func (x *ExactNorms) MarshalBinary() ([]byte, error) {
	w := binenc.NewWriter()
	w.Int(int(x.spec.Kind))
	w.F64(x.spec.Size)
	w.Int(len(x.items))
	for _, it := range x.items {
		w.F64(it.t)
		w.F64(it.w)
	}
	return w.Bytes(), nil
}

// UnmarshalBinary restores a MarshalBinary snapshot into the receiver.
func (x *ExactNorms) UnmarshalBinary(data []byte) error {
	r := binenc.NewReader(data)
	kind := Kind(r.Int())
	size := r.F64()
	n := r.Int()
	if err := r.Err(); err != nil {
		return fmt.Errorf("window: norms snapshot: %w", err)
	}
	if kind != Sequence && kind != Time {
		return fmt.Errorf("window: norms snapshot has bad kind %d", int(kind))
	}
	if size <= 0 {
		return fmt.Errorf("window: norms snapshot has bad size %v", size)
	}
	restored := ExactNorms{spec: Spec{Kind: kind, Size: size}}
	for i := 0; i < n; i++ {
		t := r.F64()
		w := r.F64()
		restored.items = append(restored.items, struct{ t, w float64 }{t, w})
		restored.sum += w
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("window: norms snapshot: %w", err)
	}
	if r.Rest() != 0 {
		return fmt.Errorf("window: norms snapshot has %d trailing bytes", r.Rest())
	}
	*x = restored
	return nil
}
