package load

import (
	"net/http/httptest"
	"testing"

	"swsketch/internal/core"
	"swsketch/internal/serve"
	"swsketch/internal/window"
)

// testTarget stands up an in-process server for the driver to hit.
func testTarget(t *testing.T) string {
	t.Helper()
	sk := core.NewLMFD(window.Seq(256), 4, 8, 4)
	ts := httptest.NewServer(serve.NewServer(sk, 4).Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func runMode(t *testing.T, url, mode string, zipf float64) Result {
	t.Helper()
	res, err := Run(Config{
		BaseURL: url, Mode: mode,
		Tenants: 8, D: 4, Rows: 512, Batch: 32, Workers: 4,
		ZipfS: zipf, Seed: 7,
	})
	if err != nil {
		t.Fatalf("%s: %v", mode, err)
	}
	return res
}

// TestRunAllModes drives every wire mode against a live server and
// checks all rows arrive without errors.
func TestRunAllModes(t *testing.T) {
	url := testTarget(t)
	for _, mode := range []string{ModeV1, ModeNDJSON, ModeFrames} {
		res := runMode(t, url, mode, 0)
		if res.Errors != 0 {
			t.Fatalf("%s: %d errors", mode, res.Errors)
		}
		if res.Rows != 512 {
			t.Fatalf("%s: sent %d rows, want 512", mode, res.Rows)
		}
		if res.Blocks != 512/32 {
			t.Fatalf("%s: %d blocks", mode, res.Blocks)
		}
		if res.RowsPerSec <= 0 || res.P50Ms <= 0 || res.P99Ms < res.P50Ms {
			t.Fatalf("%s: implausible measurement %+v", mode, res)
		}
	}
}

// TestZipfSkew just exercises the skewed picker end to end.
func TestZipfSkew(t *testing.T) {
	url := testTarget(t)
	res := runMode(t, url, ModeFrames, 1.3)
	if res.Errors != 0 || res.Rows != 512 {
		t.Fatalf("zipf run %+v", res)
	}
}

// TestPercentiles pins the estimator.
func TestPercentiles(t *testing.T) {
	lat := make([]float64, 100)
	for i := range lat {
		lat[i] = float64(i + 1)
	}
	p50, p99 := percentiles(lat)
	if p50 != 51 || p99 != 99 {
		t.Fatalf("p50=%v p99=%v", p50, p99)
	}
	if a, b := percentiles(nil); a != 0 || b != 0 {
		t.Fatal("empty sample")
	}
}

// TestBadConfig rejects nonsense.
func TestBadConfig(t *testing.T) {
	if _, err := Run(Config{Mode: "carrier-pigeon", Tenants: 1, Rows: 1, D: 1}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := Run(Config{Mode: ModeV1}); err == nil {
		t.Fatal("zero config accepted")
	}
}
