// Package load drives synthetic multi-tenant ingest traffic against a
// running swsketch server and measures it. One driver serves both the
// swload CLI and the swbench "load" experiment: it provisions a tenant
// fleet over the API, fans blocks of rows out from concurrent workers
// with Zipf-skewed tenant selection (a few hot tenants, a long cold
// tail — the shape real multi-tenant ingest has), and reports rows/s
// plus p50/p99 per-block latency.
//
// Three wire modes cover the ingest plane's generations:
//
//	v1      one JSON POST per block (/v1/tenants/{id}/ingest) — the
//	        request-per-batch baseline
//	ndjson  the /v2 stream in NDJSON framing, blocks separated by
//	        blank lines, one connection per worker-tenant lease
//	frames  the /v2 stream in binenc binary framing
//
// Latency is measured per block: POST round trip in v1, write-to-ack
// in the stream modes.
package load

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"swsketch/internal/binenc"
)

// Modes recognised by Config.Mode.
const (
	ModeV1     = "v1"
	ModeNDJSON = "ndjson"
	ModeFrames = "frames"
)

// Config describes one load run.
type Config struct {
	// BaseURL is the target server's root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Mode is one of ModeV1, ModeNDJSON, ModeFrames.
	Mode string
	// Tenants is the fleet size; tenants are created as load-0000...
	// before traffic starts (already-existing ones are reused).
	Tenants int
	// D is the row dimension of the provisioned tenants.
	D int
	// Window is the provisioned tenants' sequence-window size.
	Window int
	// Rows is the total row budget across all workers.
	Rows int
	// Batch is the rows per block (one ack / one request per block).
	Batch int
	// Workers is the number of concurrent connections.
	Workers int
	// ZipfS is the tenant-selection skew (>1; e.g. 1.2); 0 or values
	// ≤ 1 select uniformly.
	ZipfS float64
	// Seed seeds row data and tenant selection.
	Seed int64
	// StreamBlocks is how many blocks a stream mode sends per
	// connection before re-leasing a tenant (default 8).
	StreamBlocks int
	// Client overrides the HTTP client (defaults to one with sane
	// connection pooling for Workers connections).
	Client *http.Client
	// TrackTenants records exact accepted-row counts per tenant in
	// Result.TenantRows — the ground truth the hot-key observability
	// experiment compares the server's count-min estimates against.
	TrackTenants bool
}

// Result is one load run's measurement, JSON-shaped for BENCH_load.json.
type Result struct {
	Mode       string  `json:"mode"`
	Tenants    int     `json:"tenants"`
	Workers    int     `json:"workers"`
	Batch      int     `json:"batch"`
	Rows       int     `json:"rows"`
	Blocks     int     `json:"blocks"`
	Errors     int     `json:"errors"`
	Seconds    float64 `json:"seconds"`
	RowsPerSec float64 `json:"rows_per_sec"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	// SpeedupVsV1 is filled by callers comparing runs; zero otherwise.
	SpeedupVsV1 float64 `json:"speedup_vs_v1,omitempty"`
	// TenantRows is the exact accepted-row count per tenant ID, filled
	// only when Config.TrackTenants is set.
	TenantRows map[string]int `json:"tenant_rows,omitempty"`
}

// driver is the shared run state.
type driver struct {
	cfg    Config
	client *http.Client
	ids    []string
	// Per-tenant serialisation: ingest timestamps must be monotonic per
	// tenant, so a worker leases a tenant exclusively while writing to
	// it (hot Zipf tenants serialise — the contention is the point).
	locks  []sync.Mutex
	clocks []int64 // next timestamp per tenant; guarded by locks
	rows   [][]float64

	mu         sync.Mutex
	lat        []float64 // per-block latency, ms
	errs       int
	sent       int
	tenantRows map[string]int // accepted rows per tenant; nil unless tracking
}

// Run provisions the fleet and drives one measured load run.
func Run(cfg Config) (Result, error) {
	if cfg.Tenants < 1 || cfg.Rows < 1 || cfg.D < 1 {
		return Result{}, fmt.Errorf("load: tenants=%d rows=%d d=%d", cfg.Tenants, cfg.Rows, cfg.D)
	}
	if cfg.Batch < 1 {
		cfg.Batch = 64
	}
	if cfg.Workers < 1 {
		cfg.Workers = 4
	}
	if cfg.Window < 1 {
		cfg.Window = 4 * cfg.Batch
	}
	if cfg.StreamBlocks < 1 {
		cfg.StreamBlocks = 8
	}
	switch cfg.Mode {
	case ModeV1, ModeNDJSON, ModeFrames:
	default:
		return Result{}, fmt.Errorf("load: unknown mode %q", cfg.Mode)
	}
	dr := &driver{cfg: cfg, client: cfg.Client}
	if cfg.TrackTenants {
		dr.tenantRows = make(map[string]int, cfg.Tenants)
	}
	if dr.client == nil {
		dr.client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cfg.Workers * 2,
			MaxIdleConnsPerHost: cfg.Workers * 2,
		}}
	}
	if err := dr.provision(); err != nil {
		return Result{}, err
	}
	dr.genRows()

	blocks := cfg.Rows / cfg.Batch
	if blocks < 1 {
		blocks = 1
	}
	work := make(chan int, blocks)
	for i := 0; i < blocks; i++ {
		work <- i
	}
	close(work)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dr.worker(w, work)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	res := Result{
		Mode: cfg.Mode, Tenants: cfg.Tenants, Workers: cfg.Workers,
		Batch: cfg.Batch, Rows: dr.sent, Blocks: len(dr.lat), Errors: dr.errs,
		Seconds: elapsed, RowsPerSec: float64(dr.sent) / elapsed,
	}
	res.P50Ms, res.P99Ms = percentiles(dr.lat)
	res.TenantRows = dr.tenantRows
	return res, nil
}

// tenantID names fleet member i.
func tenantID(i int) string { return fmt.Sprintf("load-%04d", i) }

// provision creates the fleet over PUT /v2/tenants/{id}; an existing
// tenant (409) is reused.
func (d *driver) provision() error {
	d.ids = make([]string, d.cfg.Tenants)
	d.locks = make([]sync.Mutex, d.cfg.Tenants)
	d.clocks = make([]int64, d.cfg.Tenants)
	cfgJSON := fmt.Sprintf(
		`{"framework":"lm-fd","window":"sequence","size":%d,"d":%d,"ell":8,"b":4}`,
		d.cfg.Window, d.cfg.D)
	type job struct{ i int }
	jobs := make(chan job, d.cfg.Tenants)
	for i := range d.ids {
		d.ids[i] = tenantID(i)
		jobs <- job{i}
	}
	close(jobs)
	workers := d.cfg.Workers
	if workers > 16 {
		workers = 16
	}
	errc := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				req, err := http.NewRequest("PUT",
					d.cfg.BaseURL+"/v2/tenants/"+d.ids[j.i], strings.NewReader(cfgJSON))
				if err != nil {
					errc <- err
					return
				}
				resp, err := d.client.Do(req)
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated &&
					resp.StatusCode != http.StatusConflict {
					errc <- fmt.Errorf("load: create %s: status %d", d.ids[j.i], resp.StatusCode)
					return
				}
				// A reused tenant (from an earlier run against the same
				// server) has an advanced ingest clock; start past it so
				// fresh timestamps stay monotonic.
				sresp, err := d.client.Get(d.cfg.BaseURL + "/v2/tenants/" + d.ids[j.i] + "/stats")
				if err != nil {
					errc <- err
					return
				}
				var st struct {
					LastT float64 `json:"last_t"`
				}
				jerr := json.NewDecoder(sresp.Body).Decode(&st)
				sresp.Body.Close()
				if jerr != nil {
					errc <- fmt.Errorf("load: stats %s: %w", d.ids[j.i], jerr)
					return
				}
				d.clocks[j.i] = int64(st.LastT)
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// genRows builds a reusable pool of random rows.
func (d *driver) genRows() {
	rng := rand.New(rand.NewSource(d.cfg.Seed))
	pool := 1024
	if pool < d.cfg.Batch {
		pool = d.cfg.Batch
	}
	d.rows = make([][]float64, pool)
	for i := range d.rows {
		r := make([]float64, d.cfg.D)
		for j := range r {
			r[j] = rng.NormFloat64()
		}
		d.rows[i] = r
	}
}

// picker returns a per-worker tenant selector: Zipf-skewed when the
// config asks for it, uniform otherwise.
func (d *driver) picker(worker int) func() int {
	rng := rand.New(rand.NewSource(d.cfg.Seed + int64(worker)*7919))
	if d.cfg.ZipfS > 1 && d.cfg.Tenants > 1 {
		z := rand.NewZipf(rng, d.cfg.ZipfS, 1, uint64(d.cfg.Tenants-1))
		return func() int { return int(z.Uint64()) }
	}
	return func() int { return rng.Intn(d.cfg.Tenants) }
}

// worker drains the block queue. Stream modes lease a tenant for up to
// StreamBlocks consecutive blocks on one connection; v1 re-picks per
// request.
func (d *driver) worker(w int, work chan int) {
	pick := d.picker(w)
	switch d.cfg.Mode {
	case ModeV1:
		for range work {
			d.v1Block(pick())
		}
	default:
		for {
			// Claim up to StreamBlocks blocks for one stream lease.
			claimed := 0
			for claimed < d.cfg.StreamBlocks {
				if _, ok := <-work; !ok {
					break
				}
				claimed++
			}
			if claimed == 0 {
				return
			}
			d.streamLease(pick(), claimed)
		}
	}
}

// batchFor carves a batch view out of the row pool and advances the
// tenant's clock. The caller holds the tenant's lock.
func (d *driver) batchFor(tn, blockIdx int) ([][]float64, []float64) {
	n := d.cfg.Batch
	off := (blockIdx * 131) % (len(d.rows) - n + 1)
	rows := d.rows[off : off+n]
	times := make([]float64, n)
	base := d.clocks[tn]
	for i := range times {
		times[i] = float64(base + int64(i) + 1)
	}
	d.clocks[tn] = base + int64(n)
	return rows, times
}

// record books one block's outcome against tenant tn.
func (d *driver) record(tn int, ms float64, rows int, failed bool) {
	d.mu.Lock()
	d.lat = append(d.lat, ms)
	if failed {
		d.errs++
	} else {
		d.sent += rows
		if d.tenantRows != nil && rows > 0 {
			d.tenantRows[d.ids[tn]] += rows
		}
	}
	d.mu.Unlock()
}

// v1Block sends one JSON batch request — the baseline path.
func (d *driver) v1Block(tn int) {
	d.locks[tn].Lock()
	rows, times := d.batchFor(tn, int(d.clocks[tn]))
	var b bytes.Buffer
	b.WriteString(`{"updates":[`)
	for i, row := range rows {
		if i > 0 {
			b.WriteByte(',')
		}
		u := struct {
			Row []float64 `json:"row"`
			T   float64   `json:"t"`
		}{row, times[i]}
		enc, _ := json.Marshal(u)
		b.Write(enc)
	}
	b.WriteString(`]}`)
	start := time.Now()
	resp, err := d.client.Post(
		d.cfg.BaseURL+"/v1/tenants/"+d.ids[tn]+"/ingest", "application/json", &b)
	failed := err != nil
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		failed = resp.StatusCode != http.StatusOK
	}
	d.locks[tn].Unlock()
	d.record(tn, float64(time.Since(start).Microseconds())/1000, len(rows), failed)
}

// streamLease opens one stream to a tenant and pushes blocks through
// it, reading the ack after each block.
func (d *driver) streamLease(tn int, blocks int) {
	d.locks[tn].Lock()
	defer d.locks[tn].Unlock()

	ct := "application/x-ndjson"
	if d.cfg.Mode == ModeFrames {
		ct = "application/x-swsketch-frames"
	}
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST",
		d.cfg.BaseURL+"/v2/tenants/"+d.ids[tn]+"/stream", pr)
	if err != nil {
		d.failBlocks(blocks)
		return
	}
	req.Header.Set("Content-Type", ct)
	resp, err := d.client.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		pw.Close()
		d.failBlocks(blocks)
		return
	}
	// Pipeline: keep a few blocks in flight and read acks concurrently —
	// the point of the streaming plane is not paying a round trip per
	// block. The bounded channel is the in-flight window; latency is
	// still measured per block (send to ack).
	inflight := make(chan time.Time, 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		acks := bufio.NewReader(resp.Body)
		for start := range inflight {
			line, err := acks.ReadBytes('\n')
			ms := float64(time.Since(start).Microseconds()) / 1000
			if err != nil {
				d.record(tn, ms, 0, true)
				continue
			}
			var ack struct {
				Accepted int              `json:"accepted"`
				Error    *json.RawMessage `json:"error"`
			}
			if jerr := json.Unmarshal(line, &ack); jerr != nil || ack.Error != nil {
				d.record(tn, ms, 0, true)
				continue
			}
			d.record(tn, ms, ack.Accepted, false)
		}
	}()
	for i := 0; i < blocks; i++ {
		rows, times := d.batchFor(tn, int(d.clocks[tn]))
		var payload []byte
		if d.cfg.Mode == ModeFrames {
			payload = encodeFrame(rows, times)
		} else {
			payload = encodeNDJSON(rows, times)
		}
		start := time.Now()
		if _, err := pw.Write(payload); err != nil {
			d.record(tn, 0, 0, true)
			break
		}
		inflight <- start
	}
	close(inflight)
	pw.Close()
	<-done
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// failBlocks books blocks that never reached the wire.
func (d *driver) failBlocks(n int) {
	d.mu.Lock()
	d.errs += n
	d.mu.Unlock()
}

// encodeNDJSON renders one block as update lines plus the blank-line
// flush marker.
func encodeNDJSON(rows [][]float64, times []float64) []byte {
	var b bytes.Buffer
	for i, row := range rows {
		u := struct {
			Row []float64 `json:"row"`
			T   float64   `json:"t"`
		}{row, times[i]}
		enc, _ := json.Marshal(u)
		b.Write(enc)
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	return b.Bytes()
}

// encodeFrame renders one block in the binary stream framing: a U32
// length prefix, then Int n, Int d, n×F64 times, n·d×F64 values.
func encodeFrame(rows [][]float64, times []float64) []byte {
	w := binenc.NewWriter()
	w.Int(len(rows))
	w.Int(len(rows[0]))
	for _, t := range times {
		w.F64(t)
	}
	for _, row := range rows {
		for _, v := range row {
			w.F64(v)
		}
	}
	payload := w.Bytes()
	out := make([]byte, 4, 4+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(len(payload)))
	return append(out, payload...)
}

// percentiles returns (p50, p99) of the sample in ms.
func percentiles(lat []float64) (p50, p99 float64) {
	if len(lat) == 0 {
		return 0, 0
	}
	s := append([]float64(nil), lat...)
	sort.Float64s(s)
	return s[len(s)/2], s[int(float64(len(s)-1)*0.99)]
}
