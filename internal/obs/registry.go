// Package obs is the stdlib-only observability layer: a low-overhead
// metrics registry (atomic counters, gauges, and fixed-bucket latency
// histograms) with Prometheus text exposition, plus an Instrumented
// decorator that wraps any core.WindowSketch to record ingest and
// query latencies and surface the sketch's Introspector internals.
//
// The registry is deliberately tiny compared to a real Prometheus
// client: metric families are identified by name, each family carries
// one TYPE and HELP line, and label sets are rendered in sorted key
// order. Registration is idempotent — asking for an existing
// name+label combination returns the existing instrument — so hot
// paths can cache instruments at construction time while request
// handlers may look them up lazily.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is an immutable-by-convention label set attached to one
// instrument. A nil map means no labels.
type Labels map[string]string

// render returns the {k="v",...} suffix in sorted key order, or "".
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes backslash, double quote, and newline as required
// by the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes HELP text per the text format (version 0.0.4):
// backslash and newline only — double quotes stay literal.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// Counter is a monotonically increasing integer counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Observations are
// two atomic adds plus a CAS on the sum — cheap enough to sit on the
// per-update hot path.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf bucket is implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Buckets are few (≤ ~20): linear scan beats binary search.
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// LatencyBuckets is the default bucket layout for operation latencies
// in seconds: 500ns up to 1s, roughly 2.5× apart.
var LatencyBuckets = []float64{
	5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4,
	5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1,
}

// metricKind tags a family for the TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// series is one registered instrument within a family.
type series struct {
	labels string // rendered label suffix
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
	// set produces a dynamic gauge group: each returned key becomes a
	// sample with setKey="<key>" appended to the series labels.
	set    func() map[string]float64
	setKey string
	rawLbl Labels
}

// family groups the series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup finds or creates a family, enforcing kind and name validity.
func (r *Registry) lookup(name, help string, kind metricKind) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, f.kind))
	}
	return f
}

// find returns the existing series with the given label suffix, or nil.
func (f *family) find(lbl string) *series {
	for _, s := range f.series {
		if s.labels == lbl {
			return s
		}
	}
	return nil
}

// Counter returns the counter registered under name+labels, creating
// it on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindCounter)
	lbl := labels.render()
	if s := f.find(lbl); s != nil {
		return s.c
	}
	s := &series{labels: lbl, c: &Counter{}, rawLbl: labels}
	f.series = append(f.series, s)
	return s.c
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindGauge)
	lbl := labels.render()
	if s := f.find(lbl); s != nil {
		return s.g
	}
	s := &series{labels: lbl, g: &Gauge{}, rawLbl: labels}
	f.series = append(f.series, s)
	return s.g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time. Re-registering the same name+labels replaces the callback.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindGauge)
	lbl := labels.render()
	if s := f.find(lbl); s != nil {
		s.gf = fn
		return
	}
	f.series = append(f.series, &series{labels: lbl, gf: fn, rawLbl: labels})
}

// GaugeSet registers a dynamic gauge group: at scrape time fn is
// called and every (key, value) pair becomes one sample with the extra
// label key=<map key> appended to labels. It is the bridge from
// core.Introspector's map[string]float64 to the exposition format.
// Re-registering the same name+labels replaces the callback.
func (r *Registry) GaugeSet(name, help, key string, labels Labels, fn func() map[string]float64) {
	if !validName(key) {
		panic(fmt.Sprintf("obs: invalid label key %q", key))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindGauge)
	lbl := labels.render()
	if s := f.find(lbl); s != nil {
		s.set, s.setKey = fn, key
		return
	}
	f.series = append(f.series, &series{labels: lbl, set: fn, setKey: key, rawLbl: labels})
}

// Histogram returns the histogram registered under name+labels with
// the given ascending bucket upper bounds (LatencyBuckets when nil),
// creating it on first use.
func (r *Registry) Histogram(name, help string, labels Labels, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindHistogram)
	lbl := labels.render()
	if s := f.find(lbl); s != nil {
		return s.h
	}
	if buckets == nil {
		buckets = LatencyBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending at %d", name, i))
		}
	}
	h := &Histogram{bounds: buckets, counts: make([]atomic.Uint64, len(buckets))}
	f.series = append(f.series, &series{labels: lbl, h: h, rawLbl: labels})
	return h
}

// WritePrometheus renders every family in registration order using the
// text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w *strings.Builder) {
	r.mu.Lock()
	// Snapshot the family list so scrape-time callbacks run outside
	// the registry lock (they may grab the caller's own locks).
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch {
			case s.c != nil:
				fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, strconv.FormatUint(s.c.Value(), 10))
			case s.g != nil:
				fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, fmtFloat(s.g.Value()))
			case s.gf != nil:
				fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, fmtFloat(s.gf()))
			case s.set != nil:
				writeSet(w, f.name, s)
			case s.h != nil:
				writeHistogram(w, f.name, s)
			}
		}
	}
}

// writeSet renders a dynamic gauge group in sorted key order so the
// output is deterministic.
func writeSet(w *strings.Builder, name string, s *series) {
	vals := s.set()
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		lbl := Labels{s.setKey: k}
		for lk, lv := range s.rawLbl {
			lbl[lk] = lv
		}
		fmt.Fprintf(w, "%s%s %s\n", name, lbl.render(), fmtFloat(vals[k]))
	}
}

// writeHistogram renders the cumulative _bucket series plus _sum and
// _count.
func writeHistogram(w *strings.Builder, name string, s *series) {
	h := s.h
	cum := uint64(0)
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		lbl := Labels{"le": fmtFloat(ub)}
		for lk, lv := range s.rawLbl {
			lbl[lk] = lv
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, lbl.render(), cum)
	}
	lbl := Labels{"le": "+Inf"}
	for lk, lv := range s.rawLbl {
		lbl[lk] = lv
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, lbl.render(), h.Count())
	fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, fmtFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, h.Count())
}

// Expose returns the full exposition as a string (for tests and CLI
// summaries).
func (r *Registry) Expose() string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

// Handler returns the GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.Expose()))
	})
}

// fmtFloat renders a float the way Prometheus clients do: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// validName reports whether s is a legal metric or label name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
