// Package audit is the online accuracy auditor: it keeps a budgeted
// shadow oracle (window.Exact) next to a serving sketch and
// periodically measures the paper's covariance error
//
//	cova-err = ‖AᵀA − BᵀB‖₂ / ‖A‖²_F
//
// against the sketch's own answers — turning the accuracy contract
// from an offline evaluation artifact into live, alertable telemetry.
// It also tracks the observed norm ratio R̂ = max‖a‖²/min‖a‖² (the
// quantity the DI framework's space bound assumes a declared bound
// for) and the drift of the error between evaluations.
//
// The shadow oracle is exact, so it costs O(window·d) memory and one
// O(window·d²) Gram recomputation per evaluation. The auditor is
// therefore budgeted: evaluations run once every Stride rows, and if
// the window grows past MaxShadowRows the auditor disarms itself
// (drops the shadow, reports capped) rather than take down the
// serving process. Results publish as gauges and histograms in an
// obs.Registry and drive the serve layer's GET /v1/health verdict.
package audit

import (
	"fmt"
	"math"
	"sync"
	"time"

	"swsketch/internal/mat"
	"swsketch/internal/obs"
	"swsketch/internal/window"
)

// Defaults used when the corresponding Config field is zero.
const (
	DefaultStride        = 64
	DefaultMaxShadowRows = 100000
	DefaultErrThreshold  = 0.5
)

// Config parameterises an Auditor.
type Config struct {
	// Spec is the sliding-window specification, which must match the
	// audited sketch's window.
	Spec window.Spec
	// D is the row dimension.
	D int
	// Stride is the evaluation cadence in ingested rows: the auditor
	// recomputes cova-err after every Stride-th observed row (at batch
	// boundaries). 0 means DefaultStride; negative disables periodic
	// evaluation (Evaluate still works on demand).
	Stride int
	// MaxShadowRows caps the shadow window's row count. When the live
	// window exceeds it, the auditor disarms: the shadow is dropped
	// and Status reports Capped. 0 means DefaultMaxShadowRows;
	// negative means no cap.
	MaxShadowRows int
	// ErrThreshold is the cova-err level at which Status reports
	// degraded. 0 means DefaultErrThreshold.
	ErrThreshold float64
}

func (c Config) withDefaults() Config {
	if c.D < 1 {
		panic(fmt.Sprintf("audit: dimension %d", c.D))
	}
	if c.Stride == 0 {
		c.Stride = DefaultStride
	}
	if c.MaxShadowRows == 0 {
		c.MaxShadowRows = DefaultMaxShadowRows
	}
	if c.ErrThreshold == 0 {
		c.ErrThreshold = DefaultErrThreshold
	}
	return c
}

// CovaErrBuckets is the histogram layout for observed covariance
// errors: the interesting range spans "excellent" (≤0.01) through
// "contract violated" (≥1).
var CovaErrBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 0.75, 1, 1.5, 2,
}

// Result is one evaluation's outcome.
type Result struct {
	T          float64 `json:"t"`           // stream time of the evaluation
	CovaErr    float64 `json:"cova_err"`    // ‖AᵀA − BᵀB‖₂/‖A‖²_F
	NormRatio  float64 `json:"norm_ratio"`  // observed R̂ (0 until two norms seen)
	Drift      float64 `json:"drift"`       // cova-err change since previous evaluation
	ShadowRows int     `json:"shadow_rows"` // rows in the shadow window
}

// Status is the health view served by GET /v1/health.
type Status struct {
	// Active is true while the auditor is armed (not capped).
	Active bool `json:"active"`
	// Capped reports that the live window exceeded MaxShadowRows and
	// auditing disarmed itself.
	Capped bool `json:"capped"`
	// Warming reports that evaluations are suspended until the shadow
	// has re-covered a full window after Reset.
	Warming bool `json:"warming"`
	// Degraded is Active && the latest cova-err exceeds Threshold.
	Degraded  bool    `json:"degraded"`
	Threshold float64 `json:"threshold"`
	// Evaluations counts completed evaluations; the embedded Result is
	// the latest one (zero until the first evaluation).
	Evaluations uint64 `json:"evaluations"`
	Result
}

// Auditor maintains the shadow oracle and evaluation state. All
// methods are safe for concurrent use; a nil *Auditor is inert (every
// method is a no-op), so call sites need no guards.
type Auditor struct {
	mu  sync.Mutex
	cfg Config

	shadow    *window.Exact
	rowsSince int // rows observed since the last evaluation
	capped    bool

	// Warmup after Reset: evaluations stay suspended until the shadow
	// covers a full window again (otherwise the shadow is a suffix of
	// the true window and cova-err would compare against the wrong A).
	warming   bool
	warmRows  int     // sequence windows: rows ingested since Reset
	warmStart float64 // time windows: first timestamp after Reset
	warmSeen  bool

	lastT            float64
	seen             bool
	normMin, normMax float64

	evals   uint64
	last    Result
	haveRes bool

	covaGauge   *obs.Gauge
	ratioGauge  *obs.Gauge
	driftGauge  *obs.Gauge
	shadowGauge *obs.Gauge
	evalsTotal  *obs.Counter
	evalSecs    *obs.Histogram
	errHist     *obs.Histogram
}

// New returns an armed auditor publishing into reg (a throwaway
// registry is used when reg is nil, for registry-less embedders like
// the CLI tools).
func New(cfg Config, reg *obs.Registry) *Auditor {
	cfg = cfg.withDefaults()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	a := &Auditor{
		cfg:    cfg,
		shadow: window.NewExact(cfg.Spec, cfg.D),
		covaGauge: reg.Gauge("swsketch_audit_cova_err",
			"Latest audited covariance error ‖AᵀA−BᵀB‖₂/‖A‖²_F.", nil),
		ratioGauge: reg.Gauge("swsketch_audit_norm_ratio",
			"Observed squared-norm ratio R̂ = max‖a‖²/min‖a‖².", nil),
		driftGauge: reg.Gauge("swsketch_audit_err_drift",
			"Change in cova-err since the previous evaluation.", nil),
		shadowGauge: reg.Gauge("swsketch_audit_shadow_rows",
			"Rows held by the audit shadow window.", nil),
		evalsTotal: reg.Counter("swsketch_audit_evaluations_total",
			"Completed audit evaluations.", nil),
		evalSecs: reg.Histogram("swsketch_audit_eval_seconds",
			"Latency of one audit evaluation (shadow Gram + spectral norm).", nil, nil),
		errHist: reg.Histogram("swsketch_audit_cova_err_hist",
			"Distribution of audited covariance errors.", nil, CovaErrBuckets),
	}
	return a
}

// Config returns the effective (defaulted) configuration.
func (a *Auditor) Config() Config {
	if a == nil {
		return Config{}
	}
	return a.cfg
}

// ObserveBatch feeds the rows the serving sketch just ingested into
// the shadow window and, when the stride elapses, evaluates the sketch
// via query (called with the latest stream time while the auditor's
// lock is held — pass a closure over the sketch, locked by the caller
// as usual). No-op on a nil or capped auditor.
func (a *Auditor) ObserveBatch(rows [][]float64, times []float64, query func(t float64) *mat.Dense) {
	if a == nil || len(rows) == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.capped {
		return
	}
	a.shadow.UpdateBatch(rows, times)
	for _, r := range rows {
		w := mat.SqNorm(r)
		if w == 0 {
			continue
		}
		if a.normMin == 0 || w < a.normMin {
			a.normMin = w
		}
		if w > a.normMax {
			a.normMax = w
		}
	}
	t := times[len(times)-1]
	a.lastT, a.seen = t, true
	a.shadowGauge.Set(float64(a.shadow.Len()))

	if a.cfg.MaxShadowRows > 0 && a.shadow.Len() > a.cfg.MaxShadowRows {
		// Disarm rather than let the exact shadow eat the process.
		a.capped = true
		a.shadow = nil
		a.shadowGauge.Set(0)
		return
	}

	if a.warming {
		if !a.warmSeen {
			a.warmStart, a.warmSeen = times[0], true
		}
		a.warmRows += len(rows)
		if a.warmed(t) {
			a.warming = false
		} else {
			return
		}
	}
	if a.cfg.Stride < 0 || query == nil {
		return
	}
	a.rowsSince += len(rows)
	if a.rowsSince >= a.cfg.Stride {
		a.rowsSince = 0
		a.evaluateLocked(t, query)
	}
}

// warmed reports whether the shadow covers a full window again.
func (a *Auditor) warmed(t float64) bool {
	if a.cfg.Spec.Kind == window.Sequence {
		return float64(a.warmRows) >= a.cfg.Spec.Size
	}
	return a.warmSeen && t-a.warmStart >= a.cfg.Spec.Size
}

// Evaluate forces an evaluation at the latest observed stream time,
// returning the result. ok is false when the auditor is nil, capped,
// warming, or has observed no rows.
func (a *Auditor) Evaluate(query func(t float64) *mat.Dense) (res Result, ok bool) {
	if a == nil {
		return Result{}, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.capped || a.warming || !a.seen {
		return Result{}, false
	}
	a.evaluateLocked(a.lastT, query)
	return a.last, true
}

// evaluateLocked runs one evaluation; the caller holds a.mu.
func (a *Auditor) evaluateLocked(t float64, query func(t float64) *mat.Dense) {
	start := time.Now()
	b := query(t)
	err := a.shadow.CovaErr(b)
	a.evalSecs.Observe(time.Since(start).Seconds())

	drift := 0.0
	if a.haveRes {
		drift = err - a.last.CovaErr
	}
	ratio := 0.0
	if a.normMin > 0 {
		ratio = a.normMax / a.normMin
	}
	a.last = Result{T: t, CovaErr: err, NormRatio: ratio, Drift: drift, ShadowRows: a.shadow.Len()}
	a.haveRes = true
	a.evals++

	a.covaGauge.Set(err)
	a.ratioGauge.Set(ratio)
	a.driftGauge.Set(drift)
	a.evalsTotal.Inc()
	if !math.IsNaN(err) && !math.IsInf(err, 0) {
		a.errHist.Observe(err)
	}
}

// Status returns the current health view.
func (a *Auditor) Status() Status {
	if a == nil {
		return Status{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	s := Status{
		Active:      !a.capped,
		Capped:      a.capped,
		Warming:     a.warming && !a.capped,
		Threshold:   a.cfg.ErrThreshold,
		Evaluations: a.evals,
	}
	if a.haveRes {
		s.Result = a.last
		s.Degraded = s.Active && a.last.CovaErr > a.cfg.ErrThreshold
	}
	return s
}

// Reset discards the shadow window (after a snapshot restore, say,
// when the true window contents are unknowable) and re-arms the
// auditor in the warming state: evaluations stay suspended until the
// shadow has re-covered one full window.
func (a *Auditor) Reset() {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.shadow = window.NewExact(a.cfg.Spec, a.cfg.D)
	a.capped = false
	a.warming = true
	a.warmRows = 0
	a.warmSeen = false
	a.rowsSince = 0
	a.normMin, a.normMax = 0, 0
	a.seen = false
	a.haveRes = false
	a.last = Result{}
	a.shadowGauge.Set(0)
	a.covaGauge.Set(0)
	a.ratioGauge.Set(0)
	a.driftGauge.Set(0)
}

// ShadowRows reports the shadow window's current row count (0 when
// capped).
func (a *Auditor) ShadowRows() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.shadow == nil {
		return 0
	}
	return a.shadow.Len()
}
