package audit

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"swsketch/internal/core"
	"swsketch/internal/mat"
	"swsketch/internal/obs"
	"swsketch/internal/window"
)

func gaussRows(n, d int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	times := make([]float64, n)
	for i := range rows {
		r := make([]float64, d)
		for j := range r {
			r[j] = rng.NormFloat64()
		}
		rows[i] = r
		times[i] = float64(i)
	}
	return rows, times
}

func TestNilAuditorIsSafe(t *testing.T) {
	var a *Auditor
	a.ObserveBatch([][]float64{{1}}, []float64{0}, nil)
	a.Reset()
	if _, ok := a.Evaluate(nil); ok {
		t.Fatal("nil auditor evaluated")
	}
	if s := a.Status(); s.Active {
		t.Fatal("nil auditor active")
	}
	if a.ShadowRows() != 0 {
		t.Fatal("nil auditor holds rows")
	}
}

// TestAuditMatchesOfflineOracle is the core contract: the audited
// cova-err must equal an independent offline window.Exact evaluation
// of the same sketch answer at the same time, to floating-point
// tolerance.
func TestAuditMatchesOfflineOracle(t *testing.T) {
	const d, n, win = 8, 600, 200
	spec := window.Seq(win)
	sk := core.NewLMFD(spec, d, 24, 4)
	reg := obs.NewRegistry()
	a := New(Config{Spec: spec, D: d, Stride: 50}, reg)

	offline := window.NewExact(spec, d)
	rows, times := gaussRows(n, d, 42)
	query := func(tt float64) *mat.Dense { return sk.Query(tt) }
	for i := range rows {
		sk.Update(rows[i], times[i])
		offline.Update(rows[i], times[i])
		a.ObserveBatch(rows[i:i+1], times[i:i+1], query)
	}

	st := a.Status()
	if st.Evaluations == 0 {
		t.Fatal("no evaluations ran")
	}
	if want := uint64(n / 50); st.Evaluations != want {
		t.Fatalf("evaluations %d, want %d", st.Evaluations, want)
	}
	// Recompute offline at the same stream time with the same query.
	wantErr := offline.CovaErr(sk.Query(times[n-1]))
	res, ok := a.Evaluate(query)
	if !ok {
		t.Fatal("forced evaluation refused")
	}
	if math.Abs(res.CovaErr-wantErr) > 1e-12 {
		t.Fatalf("audited cova-err %v, offline oracle %v", res.CovaErr, wantErr)
	}
	if res.ShadowRows != win {
		t.Fatalf("shadow rows %d, want %d", res.ShadowRows, win)
	}
	if res.NormRatio < 1 {
		t.Fatalf("norm ratio %v", res.NormRatio)
	}
	if res.CovaErr > 1 {
		t.Fatalf("LM-FD cova-err implausibly high: %v", res.CovaErr)
	}
}

func TestAuditRegistersMetrics(t *testing.T) {
	spec := window.Seq(50)
	reg := obs.NewRegistry()
	a := New(Config{Spec: spec, D: 4, Stride: 10}, reg)
	sk := core.NewSWR(spec, 8, 4, 1)
	rows, times := gaussRows(120, 4, 7)
	sk.UpdateBatch(rows, times)
	a.ObserveBatch(rows, times, func(tt float64) *mat.Dense { return sk.Query(tt) })

	out := reg.Expose()
	for _, want := range []string{
		"swsketch_audit_cova_err ",
		"swsketch_audit_norm_ratio ",
		"swsketch_audit_err_drift ",
		"swsketch_audit_shadow_rows 50",
		"swsketch_audit_evaluations_total 1",
		"swsketch_audit_eval_seconds_count 1",
		`swsketch_audit_cova_err_hist_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestAuditCapsAndDisarms(t *testing.T) {
	spec := window.Seq(1000)
	a := New(Config{Spec: spec, D: 2, Stride: 10, MaxShadowRows: 30}, nil)
	rows, times := gaussRows(100, 2, 3)
	evals := 0
	a.ObserveBatch(rows, times, func(tt float64) *mat.Dense { evals++; return mat.NewDense(0, 2) })
	st := a.Status()
	if !st.Capped || st.Active {
		t.Fatalf("status %+v, want capped+inactive", st)
	}
	if a.ShadowRows() != 0 {
		t.Fatalf("capped auditor retains %d shadow rows", a.ShadowRows())
	}
	if _, ok := a.Evaluate(nil); ok {
		t.Fatal("capped auditor evaluated")
	}
	// Further observes are no-ops, not panics.
	a.ObserveBatch(rows, times, nil)
}

func TestAuditWarmupAfterReset(t *testing.T) {
	const win = 40
	spec := window.Seq(win)
	a := New(Config{Spec: spec, D: 2, Stride: 5}, nil)
	sk := core.NewSWOR(spec, 8, 2, 5)
	query := func(tt float64) *mat.Dense { return sk.Query(tt) }

	rows, times := gaussRows(60, 2, 11)
	sk.UpdateBatch(rows, times)
	a.ObserveBatch(rows, times, query)
	preReset := a.Status().Evaluations
	if preReset == 0 {
		t.Fatal("no evaluations before reset")
	}

	a.Reset()
	if st := a.Status(); !st.Warming {
		t.Fatalf("post-reset status %+v", st)
	}
	// Fewer rows than the window: still warming, no new evaluations.
	rows2, times2 := gaussRows(win-1, 2, 12)
	for i := range times2 {
		times2[i] += 60
	}
	sk.UpdateBatch(rows2, times2)
	a.ObserveBatch(rows2, times2, query)
	if st := a.Status(); !st.Warming || st.Evaluations != preReset {
		t.Fatalf("evaluated while warming: %+v", st)
	}
	// Completing the window resumes evaluations.
	last, lt := gaussRows(6, 2, 13)
	for i := range lt {
		lt[i] += 60 + float64(win)
	}
	sk.UpdateBatch(last, lt)
	a.ObserveBatch(last, lt, query)
	if st := a.Status(); st.Warming || st.Evaluations <= preReset {
		t.Fatalf("did not resume after warmup: %+v", st)
	}
}

func TestAuditDegradedThreshold(t *testing.T) {
	spec := window.Seq(30)
	a := New(Config{Spec: spec, D: 2, Stride: 10, ErrThreshold: 1e-9}, nil)
	sk := core.NewSWOR(spec, 2, 2, 9) // tiny sample: error well above 1e-9
	rows, times := gaussRows(50, 2, 17)
	sk.UpdateBatch(rows, times)
	a.ObserveBatch(rows, times, func(tt float64) *mat.Dense { return sk.Query(tt) })
	st := a.Status()
	if !st.Degraded {
		t.Fatalf("expected degraded at threshold 1e-9, status %+v", st)
	}
	if st.CovaErr <= st.Threshold {
		t.Fatalf("cova-err %v not above threshold %v", st.CovaErr, st.Threshold)
	}
}

func TestAuditTimeWindowWarmup(t *testing.T) {
	spec := window.TimeSpan(10)
	a := New(Config{Spec: spec, D: 2, Stride: 3}, nil)
	sk := core.NewSWR(spec, 4, 2, 21)
	query := func(tt float64) *mat.Dense { return sk.Query(tt) }
	rows, _ := gaussRows(30, 2, 23)
	times := make([]float64, 30)
	for i := range times {
		times[i] = float64(i) * 0.5 // 30 rows over 15 time units
	}
	sk.UpdateBatch(rows, times)
	a.ObserveBatch(rows, times, query)
	a.Reset()

	// 8 time units of data: still inside the warming span of 10.
	rows2, _ := gaussRows(16, 2, 24)
	t2 := make([]float64, 16)
	for i := range t2 {
		t2[i] = 15 + float64(i)*0.5
	}
	sk.UpdateBatch(rows2, t2)
	a.ObserveBatch(rows2, t2, query)
	if st := a.Status(); !st.Warming {
		t.Fatalf("warming ended after 7.5/10 time units: %+v", st)
	}
	// Push past the span.
	rows3, _ := gaussRows(8, 2, 25)
	t3 := make([]float64, 8)
	for i := range t3 {
		t3[i] = 23 + float64(i)
	}
	sk.UpdateBatch(rows3, t3)
	a.ObserveBatch(rows3, t3, query)
	if st := a.Status(); st.Warming || st.Evaluations == 0 {
		t.Fatalf("warmup never completed: %+v", st)
	}
}
