package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests served.", Labels{"route": "/v1/ingest"})
	c.Add(3)
	g := r.Gauge("rows_stored", "Rows.", nil)
	g.Set(42.5)
	r.GaugeFunc("temperature", "", nil, func() float64 { return -1.5 })

	out := r.Expose()
	for _, want := range []string{
		"# HELP requests_total Requests served.",
		"# TYPE requests_total counter",
		`requests_total{route="/v1/ingest"} 3`,
		"# TYPE rows_stored gauge",
		"rows_stored 42.5",
		"temperature -1.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "", nil)
	b := r.Counter("c_total", "", nil)
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	if h1, h2 := r.Histogram("h", "", nil, nil), r.Histogram("h", "", nil, nil); h1 != h2 {
		t.Fatal("same name+labels returned distinct histograms")
	}
	// Distinct labels get distinct instruments under one family.
	c2 := r.Counter("c_total", "", Labels{"algo": "SWR"})
	if a == c2 {
		t.Fatal("distinct labels shared a counter")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "", nil)
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q accepted", bad)
				}
			}()
			r.Counter(bad, "", nil)
		}()
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", nil, []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got < 5.55 || got > 5.56 {
		t.Fatalf("sum = %v", got)
	}
	out := r.Expose()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		"lat_seconds_sum 5.555",
		"lat_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeSetRendersSortedWithLabels(t *testing.T) {
	r := NewRegistry()
	r.GaugeSet("internal", "Sketch internals.", "stat", Labels{"algo": "LM-FD"},
		func() map[string]float64 { return map[string]float64{"levels": 3, "blocks": 7} })
	out := r.Expose()
	bi := strings.Index(out, `internal{algo="LM-FD",stat="blocks"} 7`)
	li := strings.Index(out, `internal{algo="LM-FD",stat="levels"} 3`)
	if bi < 0 || li < 0 || bi > li {
		t.Fatalf("gauge set not rendered sorted:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", Labels{"v": "a\"b\\c\nd"}).Inc()
	out := r.Expose()
	if !strings.Contains(out, `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
}

func TestHandlerServesText(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "", nil).Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(rec.Body)
	if !strings.Contains(string(body), "hits_total 1") {
		t.Fatalf("body:\n%s", body)
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "", nil)
	h := r.Histogram("lat", "", nil, nil)
	g := r.Gauge("lvl", "", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(1e-5)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 || g.Value() != 8000 {
		t.Fatalf("lost updates: c=%d h=%d g=%v", c.Value(), h.Count(), g.Value())
	}
}
