package obs

import "swsketch/internal/trace"

// RegisterTracer bridges a tracer into the metrics registry: per-kind
// event counts and the last-assigned event IDs become scrape-time
// gauge sets, so dashboards can alert on structural churn (merge
// cascades, shrink storms) and a spike's exemplar event ID can be
// looked up in the GET /debug/trace dump — the correlation between
// the two observability planes.
func RegisterTracer(reg *Registry, tr *trace.Tracer) {
	if tr == nil {
		return
	}
	reg.GaugeFunc("swsketch_trace_enabled",
		"Whether the event tracer is recording (1) or not (0).", nil,
		func() float64 {
			if tr.Enabled() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("swsketch_trace_events_total",
		"Events emitted since the tracer was reset (all kinds, including sampled-out).", nil,
		func() float64 { return float64(tr.Total()) })
	reg.GaugeSet("swsketch_trace_events",
		"Events emitted per kind.", "kind", nil,
		func() map[string]float64 {
			counts := tr.Counts()
			out := make(map[string]float64, len(counts))
			for k, v := range counts {
				out[k] = float64(v.Count)
			}
			return out
		})
	reg.GaugeSet("swsketch_trace_last_seq",
		"Exemplar: sequence ID of the most recent event per kind (look it up in /debug/trace).", "kind", nil,
		func() map[string]float64 {
			counts := tr.Counts()
			out := make(map[string]float64, len(counts))
			for k, v := range counts {
				out[k] = float64(v.LastSeq)
			}
			return out
		})
}
