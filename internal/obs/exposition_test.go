package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"swsketch/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the exposition golden file")

// buildGoldenRegistry assembles a registry covering every exposition
// shape: counters, static and callback gauges, gauge sets, histograms
// (custom and empty), label escaping, and HELP escaping. Every value
// is deterministic.
func buildGoldenRegistry() *Registry {
	reg := NewRegistry()

	c := reg.Counter("golden_rows_total", "Rows ingested.", Labels{"algo": "LM-FD"})
	c.Add(1234)
	reg.Counter("golden_rows_total", "Rows ingested.", Labels{"algo": "SWR"}).Add(7)

	g := reg.Gauge("golden_temperature", "A plain gauge.", nil)
	g.Set(36.5)

	reg.GaugeFunc("golden_computed", "A callback gauge.", Labels{"src": "fn"},
		func() float64 { return 2.5 })

	reg.GaugeSet("golden_internal", "A dynamic gauge group.", "stat",
		Labels{"algo": "DI-FD"}, func() map[string]float64 {
			return map[string]float64{"levels": 4, "blocks": 9}
		})

	h := reg.Histogram("golden_latency_seconds", "A histogram with custom buckets.",
		Labels{"route": "/v1/query"}, []float64{0.01, 0.1, 1})
	// Binary-exact values so the rendered _sum is stable.
	for _, v := range []float64{0.0078125, 0.0078125, 0.0625, 0.5, 4} {
		h.Observe(v)
	}
	reg.Histogram("golden_empty_seconds", "A histogram with no observations.",
		nil, []float64{1, 2})

	// Escaping: label values with quotes, backslashes, newlines; HELP
	// with backslash and newline.
	reg.Counter("golden_escapes_total",
		"Help with a \\ backslash\nand a newline.",
		Labels{"path": `C:\tmp`, "quote": `say "hi"`, "nl": "a\nb"}).Add(1)

	return reg
}

// TestExpositionGolden pins the full Prometheus text-format output.
// Regenerate with: go test ./internal/obs -run TestExpositionGolden -update-golden
func TestExpositionGolden(t *testing.T) {
	got := buildGoldenRegistry().Expose()
	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExpositionConformance checks the text-format invariants the
// golden file relies on, so a future regeneration cannot silently
// lock in a regression.
func TestExpositionConformance(t *testing.T) {
	out := buildGoldenRegistry().Expose()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")

	// Histograms must expose a +Inf bucket equal to _count, plus _sum.
	checks := []string{
		`golden_latency_seconds_bucket{le="+Inf",route="/v1/query"} 5`,
		`golden_latency_seconds_sum{route="/v1/query"} 4.578125`,
		`golden_latency_seconds_count{route="/v1/query"} 5`,
		`golden_empty_seconds_bucket{le="+Inf"} 0`,
		`golden_empty_seconds_sum 0`,
		`golden_empty_seconds_count 0`,
		// Cumulative buckets.
		`golden_latency_seconds_bucket{le="0.01",route="/v1/query"} 2`,
		`golden_latency_seconds_bucket{le="0.1",route="/v1/query"} 3`,
		`golden_latency_seconds_bucket{le="1",route="/v1/query"} 4`,
		// Label escaping.
		`golden_escapes_total{nl="a\nb",path="C:\\tmp",quote="say \"hi\""} 1`,
		// HELP escaping: backslash doubled, newline as \n.
		`# HELP golden_escapes_total Help with a \\ backslash\nand a newline.`,
	}
	for _, want := range checks {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing line %q", want)
		}
	}

	// No raw newlines inside any rendered line (escaping worked), and
	// every sample line parses as name{...} value.
	for _, ln := range lines {
		if strings.HasPrefix(ln, "#") {
			continue
		}
		if !strings.Contains(ln, " ") {
			t.Errorf("malformed sample line %q", ln)
		}
	}
}

// TestRuntimeMetricsRegister smoke-tests the self-metrics: they must
// register, render, and carry plausible values.
func TestRuntimeMetricsRegister(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	out := reg.Expose()
	for _, want := range []string{
		"swsketch_go_goroutines ",
		"swsketch_go_heap_inuse_bytes ",
		"swsketch_go_heap_objects ",
		"swsketch_go_alloc_bytes_total ",
		"swsketch_go_gc_runs_total ",
		"swsketch_go_gc_pause_seconds_total ",
		"swsketch_process_uptime_seconds ",
		`swsketch_build_info{go_version="go`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime metrics missing %q", want)
		}
	}
}

// TestRegisterTracerBridge checks the trace→registry correlation:
// per-kind counts and exemplar IDs appear as gauge sets.
func TestRegisterTracerBridge(t *testing.T) {
	tr := trace.New(64)
	tr.Enable()
	reg := NewRegistry()
	RegisterTracer(reg, tr)

	tr.Emit("LM-FD", trace.KindLMMerge, 1, 1, 2)
	tr.Emit("LM-FD", trace.KindLMMerge, 2, 2, 4)
	tr.Emit("FD", trace.KindFDShrink, 2, 10, 5)

	out := reg.Expose()
	for _, want := range []string{
		"swsketch_trace_enabled 1",
		"swsketch_trace_events_total 3",
		`swsketch_trace_events{kind="lm_merge"} 2`,
		`swsketch_trace_events{kind="fd_shrink"} 1`,
		`swsketch_trace_last_seq{kind="lm_merge"} 2`,
		`swsketch_trace_last_seq{kind="fd_shrink"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace bridge missing %q in:\n%s", want, out)
		}
	}
	// RegisterTracer with nil must be a no-op, not a panic.
	RegisterTracer(NewRegistry(), nil)
}
