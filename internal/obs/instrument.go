package obs

import (
	"sync/atomic"
	"time"

	"swsketch/internal/core"
	"swsketch/internal/mat"
	"swsketch/internal/trace"
)

// Instrumented decorates a core.WindowSketch with metrics: ingest and
// query latency histograms, row counters, a rows-stored gauge, and —
// when the sketch implements core.Introspector — a dynamic gauge set
// exposing its internals. Counters count every row, but per-row update
// timings are sampled (every 16th row by default; see WithSampleEvery)
// because a clock read pair costs a meaningful fraction of a cheap
// sampler update. Batch and query calls are always timed — their cost
// amortises the clock reads. Scrape-time callbacks (rows stored,
// internals) go through the Sync option so a /metrics scrape can
// serialise against the writer.
type Instrumented struct {
	sk   core.WindowSketch
	sync func(func())

	n    atomic.Uint64
	mask uint64 // per-row timing sampled when (n-1)&mask == 0

	ingestRows    *Counter
	ingestBatches *Counter
	updateSeconds *Histogram
	querySeconds  *Histogram
}

// InstrumentOption configures an Instrumented wrapper.
type InstrumentOption func(*Instrumented)

// WithSync sets the callback wrapper used for scrape-time reads of the
// wrapped sketch (RowsStored, Stats). Pass a function that runs its
// argument under the lock that guards the sketch; the default runs it
// directly, which is only safe for single-threaded use.
func WithSync(sync func(func())) InstrumentOption {
	return func(i *Instrumented) { i.sync = sync }
}

// WithSampleEvery times one in every k per-row updates (k rounds up to
// a power of two; k=1 times every row). The default is 16, which keeps
// the decorator's overhead under a few percent even for sub-µs sampler
// updates while still populating the latency histogram.
func WithSampleEvery(k int) InstrumentOption {
	if k < 1 {
		panic("obs: sample interval must be >= 1")
	}
	m := uint64(1)
	for m < uint64(k) {
		m <<= 1
	}
	return func(i *Instrumented) { i.mask = m - 1 }
}

// NewInstrumented wraps sk, registering its instruments in reg under
// the label algo=<sk.Name()>. The wrapped sketch must not be updated
// directly afterwards, or the metrics go stale.
func NewInstrumented(sk core.WindowSketch, reg *Registry, opts ...InstrumentOption) *Instrumented {
	algo := Labels{"algo": sk.Name()}
	i := &Instrumented{
		sk:   sk,
		sync: func(f func()) { f() },
		mask: 15,
		ingestRows: reg.Counter("swsketch_ingest_rows_total",
			"Rows ingested into the sketch.", algo),
		ingestBatches: reg.Counter("swsketch_ingest_batches_total",
			"Bulk ingest calls (UpdateBatch).", algo),
		updateSeconds: reg.Histogram("swsketch_update_seconds",
			"Latency of one Update or UpdateBatch call.", algo, nil),
		querySeconds: reg.Histogram("swsketch_query_seconds",
			"Latency of one Query call.", algo, nil),
	}
	for _, o := range opts {
		o(i)
	}
	reg.GaugeFunc("swsketch_rows_stored",
		"Current sketch space usage in rows.", algo, func() float64 {
			var n int
			i.sync(func() { n = i.sk.RowsStored() })
			return float64(n)
		})
	if intro, ok := sk.(core.Introspector); ok {
		reg.GaugeSet("swsketch_internal",
			"Sketch internals from core.Introspector.", "stat", algo,
			func() map[string]float64 {
				var m map[string]float64
				i.sync(func() { m = intro.Stats() })
				return m
			})
	}
	return i
}

// Unwrap returns the underlying sketch (for capability checks like
// snapshot support that must not see the decorator).
func (i *Instrumented) Unwrap() core.WindowSketch { return i.sk }

// SetTracer forwards the tracer to the wrapped sketch.
func (i *Instrumented) SetTracer(tr *trace.Tracer) {
	if t, ok := i.sk.(trace.Traceable); ok {
		t.SetTracer(tr)
	}
}

// Update implements core.WindowSketch. The timing is sampled; the row
// counter is exact.
func (i *Instrumented) Update(row []float64, t float64) {
	i.ingestRows.Inc()
	if (i.n.Add(1)-1)&i.mask == 0 {
		start := time.Now()
		i.sk.Update(row, t)
		i.updateSeconds.Observe(time.Since(start).Seconds())
		return
	}
	i.sk.Update(row, t)
}

// UpdateBatch implements core.WindowSketch; the whole batch is one
// latency observation, so per-row overhead amortises to a few
// nanoseconds at serving batch sizes.
func (i *Instrumented) UpdateBatch(rows [][]float64, times []float64) {
	start := time.Now()
	i.sk.UpdateBatch(rows, times)
	i.updateSeconds.Observe(time.Since(start).Seconds())
	i.ingestRows.Add(uint64(len(rows)))
	i.ingestBatches.Inc()
}

// UpdateSparse forwards a sparse update, panicking like
// core.Concurrent when the underlying sketch has no sparse path.
func (i *Instrumented) UpdateSparse(row mat.SparseRow, t float64) {
	su, ok := i.sk.(core.SparseUpdater)
	if !ok {
		panic("obs: wrapped sketch does not support sparse updates")
	}
	i.ingestRows.Inc()
	if (i.n.Add(1)-1)&i.mask == 0 {
		start := time.Now()
		su.UpdateSparse(row, t)
		i.updateSeconds.Observe(time.Since(start).Seconds())
		return
	}
	su.UpdateSparse(row, t)
}

// Query implements core.WindowSketch.
func (i *Instrumented) Query(t float64) *mat.Dense {
	start := time.Now()
	b := i.sk.Query(t)
	i.querySeconds.Observe(time.Since(start).Seconds())
	return b
}

// RowsStored implements core.WindowSketch.
func (i *Instrumented) RowsStored() int { return i.sk.RowsStored() }

// Name implements core.WindowSketch.
func (i *Instrumented) Name() string { return i.sk.Name() }

// Stats implements core.Introspector by delegation; wrapping a sketch
// without internals yields an empty map.
func (i *Instrumented) Stats() map[string]float64 {
	if intro, ok := i.sk.(core.Introspector); ok {
		return intro.Stats()
	}
	return map[string]float64{}
}

var (
	_ core.WindowSketch = (*Instrumented)(nil)
	_ core.Introspector = (*Instrumented)(nil)
)
