package obs

import (
	"runtime"
	"sync"
	"time"
)

// memSampler caches runtime.ReadMemStats results so a burst of scrape
// callbacks (one per registered heap metric) costs one stop-the-world
// sample instead of five.
type memSampler struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func (m *memSampler) get() runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now := time.Now(); now.Sub(m.at) > time.Second {
		runtime.ReadMemStats(&m.stat)
		m.at = now
	}
	return m.stat
}

// RegisterRuntimeMetrics adds Go runtime and process self-metrics to
// reg, making /metrics self-describing for dashboards: goroutine
// count, heap in use, total allocations, GC runs and cumulative pause
// time, process uptime, and a build-info gauge carrying the Go
// version as a label (value constant 1, the Prometheus idiom for
// info-style metrics).
func RegisterRuntimeMetrics(reg *Registry) {
	start := time.Now()
	ms := &memSampler{}

	reg.GaugeFunc("swsketch_go_goroutines",
		"Current number of goroutines.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("swsketch_go_heap_inuse_bytes",
		"Heap bytes in in-use spans.", nil,
		func() float64 { return float64(ms.get().HeapInuse) })
	reg.GaugeFunc("swsketch_go_heap_objects",
		"Live heap objects.", nil,
		func() float64 { return float64(ms.get().HeapObjects) })
	reg.GaugeFunc("swsketch_go_alloc_bytes_total",
		"Cumulative bytes allocated on the heap.", nil,
		func() float64 { return float64(ms.get().TotalAlloc) })
	reg.GaugeFunc("swsketch_go_gc_runs_total",
		"Completed garbage-collection cycles.", nil,
		func() float64 { return float64(ms.get().NumGC) })
	reg.GaugeFunc("swsketch_go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time.", nil,
		func() float64 { return float64(ms.get().PauseTotalNs) / 1e9 })
	reg.GaugeFunc("swsketch_process_uptime_seconds",
		"Seconds since the process registered its metrics.", nil,
		func() float64 { return time.Since(start).Seconds() })
	reg.GaugeFunc("swsketch_build_info",
		"Build information; the value is constant 1.",
		Labels{"go_version": runtime.Version()},
		func() float64 { return 1 })
}
