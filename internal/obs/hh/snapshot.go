package hh

// This file is the snapshot wire format: the JSON document served on
// GET /debug/hotkeys, plus the strict decoder the harness (swload,
// swbench hh) uses to consume it. The decoder validates shape hard —
// unknown fields, non-finite floats, out-of-range geometry, unsorted
// or duplicated entries are all rejected — so a hostile or corrupted
// body can neither allocate absurd amounts nor smuggle inconsistent
// statistics into the accuracy gates.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"unicode/utf8"
)

// maxTenantLen bounds tenant IDs accepted by the decoder.
const maxTenantLen = 256

// Entry is one hot tenant in a Snapshot: count-min estimates for
// every plane, plus the shard-local error bound its rows estimate is
// subject to.
type Entry struct {
	// Tenant is the tenant ID.
	Tenant string `json:"tenant"`
	// Rows estimates rows committed over the window. The true count
	// over the last window is ≤ Rows ≤ true count over the last two
	// windows + Bound (w.p. ≥ 1−e^−depth).
	Rows uint64 `json:"rows"`
	// Bound is the count-min overcount bound ε·N for this tenant's
	// shard: ε = e/width, N = the shard's windowed row weight.
	Bound uint64 `json:"bound"`
	// Bytes estimates ingested payload bytes over the window.
	Bytes uint64 `json:"bytes"`
	// Events estimates shed/error events over the window.
	Events uint64 `json:"events"`
	// WALBytes estimates write-ahead-log bytes over the window.
	WALBytes uint64 `json:"wal_bytes"`
	// Touches estimates tenant acquisitions over the window.
	Touches uint64 `json:"touches"`
}

// Snapshot is the merged global view of the sidecar at one instant.
type Snapshot struct {
	// WindowSeconds is the configured sliding window.
	WindowSeconds float64 `json:"window_seconds"`
	// K is the configured top-K size.
	K int `json:"k"`
	// Width is counters per hash row per shard.
	Width int `json:"width"`
	// Depth is the number of hash rows.
	Depth int `json:"depth"`
	// Shards is the number of concurrency stripes.
	Shards int `json:"shards"`
	// Epsilon is the relative count-min error e/Width; an estimate
	// overcounts its shard by at most Epsilon × that shard's windowed
	// weight (per plane) with probability ≥ 1−e^−Depth.
	Epsilon float64 `json:"epsilon"`
	// CoverageMinSeconds and CoverageMaxSeconds bracket the span of
	// traffic the counts cover: at least the last window and at most
	// the last two, clipped to the sidecar's uptime.
	CoverageMinSeconds float64 `json:"coverage_min_seconds"`
	// CoverageMaxSeconds — see CoverageMinSeconds.
	CoverageMaxSeconds float64 `json:"coverage_max_seconds"`
	// WindowRows is the exact total row weight in the window across
	// shards (totals, unlike per-key estimates, carry no hash error).
	WindowRows uint64 `json:"window_rows"`
	// WindowBytes is the exact total payload-byte weight in the window.
	WindowBytes uint64 `json:"window_bytes"`
	// WindowEvents is the exact total shed/error events in the window.
	WindowEvents uint64 `json:"window_events"`
	// WindowWALBytes is the exact total WAL bytes in the window.
	WindowWALBytes uint64 `json:"window_wal_bytes"`
	// WindowTouches is the exact total tenant acquisitions in the window.
	WindowTouches uint64 `json:"window_touches"`
	// TopKShare is the fraction of WindowRows attributed to the
	// reported top-K (clamped to [0,1]).
	TopKShare float64 `json:"topk_share"`
	// ZipfS is the least-squares Zipf exponent fitted over the ranked
	// top-K counts; 0 when fewer than three ranks are available.
	ZipfS float64 `json:"zipf_s"`
	// DistinctTenants is a linear-counting estimate of tenants active
	// in the window.
	DistinctTenants float64 `json:"distinct_tenants"`
	// TopK lists the hot tenants, rows-descending (ties broken by
	// tenant ID ascending).
	TopK []Entry `json:"topk"`
}

// Encode renders the snapshot as canonical JSON (the /debug/hotkeys
// body). Decode∘Encode is the identity, and Encode∘Decode is a fixed
// point on any accepted document.
func (s Snapshot) Encode() ([]byte, error) { return json.Marshal(s) }

// DecodeSnapshot parses and validates a snapshot document, rejecting
// unknown fields, non-finite or out-of-range statistics, and
// malformed top-K lists (empty, oversized, or over-long tenant IDs;
// zero-row, duplicate, or mis-sorted entries).
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Snapshot
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("hh: decode snapshot: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil {
		return nil, errors.New("hh: decode snapshot: trailing data")
	}
	if err := s.validate(); err != nil {
		return nil, fmt.Errorf("hh: invalid snapshot: %w", err)
	}
	return &s, nil
}

// validate enforces the invariants Encode guarantees.
func (s *Snapshot) validate() error {
	if !finiteIn(s.WindowSeconds, minWindow.Seconds(), maxWindow.Seconds()) {
		return fmt.Errorf("window_seconds %v out of range", s.WindowSeconds)
	}
	if s.K < 1 || s.K > maxK {
		return fmt.Errorf("k %d out of range", s.K)
	}
	if s.Width < 1 || s.Width > maxWidth {
		return fmt.Errorf("width %d out of range", s.Width)
	}
	if s.Depth < 1 || s.Depth > maxDepth {
		return fmt.Errorf("depth %d out of range", s.Depth)
	}
	if s.Shards < 1 || s.Shards > maxShards {
		return fmt.Errorf("shards %d out of range", s.Shards)
	}
	if !finiteIn(s.Epsilon, 0, 1) {
		return fmt.Errorf("epsilon %v out of range", s.Epsilon)
	}
	if !finiteIn(s.CoverageMinSeconds, 0, 2*maxWindow.Seconds()) ||
		!finiteIn(s.CoverageMaxSeconds, 0, 2*maxWindow.Seconds()) ||
		s.CoverageMinSeconds > s.CoverageMaxSeconds {
		return fmt.Errorf("coverage [%v, %v] invalid", s.CoverageMinSeconds, s.CoverageMaxSeconds)
	}
	if !finiteIn(s.TopKShare, 0, 1) {
		return fmt.Errorf("topk_share %v out of range", s.TopKShare)
	}
	if !finiteIn(s.ZipfS, 0, 100) {
		return fmt.Errorf("zipf_s %v out of range", s.ZipfS)
	}
	if !finiteIn(s.DistinctTenants, 0, math.MaxUint32) {
		return fmt.Errorf("distinct_tenants %v out of range", s.DistinctTenants)
	}
	if len(s.TopK) > s.K {
		return fmt.Errorf("topk has %d entries for k=%d", len(s.TopK), s.K)
	}
	seen := make(map[string]bool, len(s.TopK))
	for i, e := range s.TopK {
		if e.Tenant == "" || len(e.Tenant) > maxTenantLen || !utf8.ValidString(e.Tenant) {
			return fmt.Errorf("topk[%d]: bad tenant id", i)
		}
		if seen[e.Tenant] {
			return fmt.Errorf("topk[%d]: duplicate tenant %q", i, e.Tenant)
		}
		seen[e.Tenant] = true
		if e.Rows == 0 {
			return fmt.Errorf("topk[%d]: zero rows", i)
		}
		if i > 0 {
			prev := s.TopK[i-1]
			if e.Rows > prev.Rows || (e.Rows == prev.Rows && e.Tenant <= prev.Tenant) {
				return fmt.Errorf("topk[%d]: not sorted rows-descending", i)
			}
		}
	}
	return nil
}

// finiteIn reports whether v is finite and within [lo, hi].
func finiteIn(v, lo, hi float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= lo && v <= hi
}
