package hh

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// FuzzSnapshotDecode hammers the /debug/hotkeys document decoder:
// arbitrary bytes must either be rejected or decode into a snapshot
// whose re-encoding is a fixed point (encode∘decode is the identity
// on accepted documents, so consumers can round-trip snapshots
// losslessly). Seeds cover live documents, truncations, and hostile
// shapes; the checked-in corpus under testdata/fuzz keeps past
// findings as regressions.
func FuzzSnapshotDecode(f *testing.F) {
	// Live documents at three fill levels.
	clk := time.Unix(1_700_000_000, 0)
	h := New(Config{Window: time.Minute, K: 8, Width: 256, Depth: 4, Shards: 2,
		Now: func() time.Time { return clk }})
	seed := func() {
		data, err := h.Snapshot().Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	seed() // empty
	r := rand.New(rand.NewSource(11))
	z := rand.NewZipf(r, 1.2, 1, 99)
	for i := 0; i < 1000; i++ {
		h.ObserveIngest(fmt.Sprintf("load-%04d", z.Uint64()), 1+r.Intn(8), 64)
		h.ObserveEvent("load-0000")
	}
	seed() // populated
	live, err := h.Snapshot().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(live[:len(live)/2]) // torn
	f.Add(live[1:])           // decapitated

	// Hostile shapes the decoder must reject.
	f.Add([]byte(`{"window_seconds":60,"k":100000000,"width":256,"depth":4,"shards":1}`))
	f.Add([]byte(`{"window_seconds":1e308,"k":8,"width":256,"depth":4,"shards":1}`))
	f.Add([]byte(`{"window_seconds":60,"k":8,"width":256,"depth":4,"shards":1,` +
		`"topk":[{"tenant":"a","rows":1},{"tenant":"b","rows":2}]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		enc, err := s.Encode()
		if err != nil {
			t.Fatalf("accepted snapshot failed to encode: %v", err)
		}
		s2, err := DecodeSnapshot(enc)
		if err != nil {
			t.Fatalf("re-encoding rejected: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip changed value:\n was %+v\n now %+v", s, s2)
		}
		enc2, err := s2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding not a fixed point:\n%s\n%s", enc, enc2)
		}
	})
}
