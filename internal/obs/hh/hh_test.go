package hh

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"swsketch/internal/obs"
	"swsketch/internal/trace"
)

// fakeClock is a mutex-guarded manual clock for deterministic decay
// tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// feed describes one adversarial key distribution for the bound test.
type feed struct {
	name string
	keys int
	next func(r *rand.Rand) int
}

// TestCountMinBoundAdversarial checks the ε·N overcount bound with a
// frozen clock (no decay, so estimates are classic count-min and must
// dominate the exact counts) across adversarial key distributions.
// The run is fully deterministic (fixed seeds, FNV hashing), so the
// probabilistic bound either holds for this instance forever or not
// at all.
func TestCountMinBoundAdversarial(t *testing.T) {
	feeds := []feed{
		{name: "uniform", keys: 256, next: func(r *rand.Rand) int { return r.Intn(256) }},
	}
	for _, s := range []float64{1.1, 1.5} {
		r := rand.New(rand.NewSource(int64(s * 100)))
		z := rand.NewZipf(r, s, 1, 999)
		feeds = append(feeds, feed{
			name: fmt.Sprintf("zipf-%.1f", s),
			keys: 1000,
			next: func(*rand.Rand) int { return int(z.Uint64()) },
		})
	}
	feeds = append(feeds, feed{name: "flood", keys: 1, next: func(*rand.Rand) int { return 0 }})

	for _, fd := range feeds {
		t.Run(fd.name, func(t *testing.T) {
			clk := newFakeClock()
			h := New(Config{Window: time.Minute, K: 8, Width: 512, Depth: 4, Shards: 1, Now: clk.now})
			r := rand.New(rand.NewSource(42))
			exact := make(map[string]uint64, fd.keys)
			const n = 50_000
			for i := 0; i < n; i++ {
				key := fmt.Sprintf("tenant-%04d", fd.next(r))
				h.ObserveIngest(key, 1, 8)
				exact[key]++
			}
			bound := uint64(math.Ceil(math.E / 512 * n))
			for key, want := range exact {
				got := h.EstimateRows(key)
				if got < want {
					t.Fatalf("%s: estimate %d below exact %d (no decay occurred)", key, got, want)
				}
				if got-want > bound {
					t.Errorf("%s: overcount %d exceeds ε·N bound %d", key, got-want, bound)
				}
			}
			snap := h.Snapshot()
			if snap.WindowRows != n {
				t.Fatalf("window rows = %d, want exact %d", snap.WindowRows, n)
			}
			if len(snap.TopK) == 0 || snap.TopK[0].Bound != bound {
				t.Fatalf("top entry bound = %v, want %d", snap.TopK, bound)
			}
		})
	}
}

// TestSlidingDecay drives the clock manually and checks the coverage
// contract: an estimate includes at least the last window and at most
// the last two, and a gap of two windows clears everything.
func TestSlidingDecay(t *testing.T) {
	const win = time.Minute
	clk := newFakeClock()
	h := New(Config{Window: win, K: 8, Width: 256, Depth: 4, Shards: 1, Now: clk.now})

	h.ObserveIngest("a", 1000, 0)
	if got := h.EstimateRows("a"); got != 1000 {
		t.Fatalf("fresh estimate = %d, want 1000", got)
	}

	// Half a window later the count is still fully covered.
	clk.advance(win / 2)
	h.ObserveIngest("b", 1, 0)
	if got := h.EstimateRows("a"); got < 1000 {
		t.Fatalf("estimate after w/2 = %d, want ≥ 1000 (within a window)", got)
	}

	// 1.9 windows after the burst it may or may not have been swept,
	// but it can never exceed the exact total plus the bound.
	clk.advance(win*7/5 - time.Millisecond)
	if got := h.EstimateRows("a"); got > 1000 {
		t.Fatalf("estimate at 1.9w = %d, exceeds lifetime exact 1000", got)
	}

	// A ≥2-window quiet gap clears the shard entirely.
	clk.advance(2 * win)
	if got := h.EstimateRows("a"); got != 0 {
		t.Fatalf("estimate after 2w gap = %d, want 0", got)
	}
	if snap := h.Snapshot(); len(snap.TopK) != 0 || snap.WindowRows != 0 {
		t.Fatalf("snapshot after gap = %+v, want empty", snap)
	}

	// Continuous traffic under a stepping clock: the windowed count
	// never undercounts the last window and never exceeds the last
	// two windows plus the bound.
	exactAt := make([]uint64, 0, 400) // rows per step for key "c"
	step := win / 100
	for i := 0; i < 400; i++ {
		h.ObserveIngest("c", 10, 0)
		exactAt = append(exactAt, 10)
		clk.advance(step)
		// Strictly-inside-window items only (99 steps) for the lower
		// bound; two windows plus one boundary step (201) for the
		// upper, since sweep-credit rounding can lag by < 1 slot-time.
		var lastWin, lastTwo uint64
		for j := max(0, len(exactAt)-99); j < len(exactAt); j++ {
			lastWin += exactAt[j]
		}
		for j := max(0, len(exactAt)-201); j < len(exactAt); j++ {
			lastTwo += exactAt[j]
		}
		got := h.EstimateRows("c")
		if got < lastWin {
			t.Fatalf("step %d: estimate %d below last-window exact %d", i, got, lastWin)
		}
		if slack := uint64(math.Ceil(math.E / 256 * float64(lastTwo))); got > lastTwo+slack {
			t.Fatalf("step %d: estimate %d above two-window exact %d + %d", i, got, lastTwo, slack)
		}
	}
}

// TestTopKTrackingAndChurn checks admission, displacement, Forget,
// and the topk_enter/topk_exit trace events.
func TestTopKTrackingAndChurn(t *testing.T) {
	clk := newFakeClock()
	h := New(Config{Window: time.Minute, K: 4, Width: 512, Depth: 4, Shards: 1, Now: clk.now})
	tr := trace.New(256)
	tr.Enable()
	h.SetTracer(tr)

	// Eight keys with strictly separated rates.
	for i := 0; i < 8; i++ {
		h.ObserveIngest(fmt.Sprintf("t%d", i), 100*(i+1), 0)
	}
	snap := h.Snapshot()
	if len(snap.TopK) != 4 {
		t.Fatalf("topk size = %d, want 4", len(snap.TopK))
	}
	want := []string{"t7", "t6", "t5", "t4"}
	for i, e := range snap.TopK {
		if e.Tenant != want[i] {
			t.Fatalf("topk[%d] = %s (rows %d), want %s", i, e.Tenant, e.Rows, want[i])
		}
	}
	if snap.TopKShare <= 0.7 || snap.TopKShare > 1 {
		t.Fatalf("topk share = %v, want ≈ 2600/3600", snap.TopKShare)
	}

	counts := tr.Counts()
	if counts[trace.KindTopKEnter].Count == 0 || counts[trace.KindTopKExit].Count == 0 {
		t.Fatalf("expected topk churn events, got %+v", counts)
	}

	h.Forget("t7")
	snap = h.Snapshot()
	for _, e := range snap.TopK {
		if e.Tenant == "t7" {
			t.Fatal("t7 still tracked after Forget")
		}
	}
}

// TestSnapshotAggregates sanity-checks the fitted Zipf exponent and
// the linear-counting distinct estimate on a synthetic power law.
func TestSnapshotAggregates(t *testing.T) {
	clk := newFakeClock()
	h := New(Config{Window: time.Minute, K: 16, Width: 1024, Depth: 4, Shards: 1, Now: clk.now})
	const keys = 300
	for i := 1; i <= keys; i++ {
		rows := int(20000 / math.Pow(float64(i), 1.2))
		if rows == 0 {
			rows = 1
		}
		h.ObserveIngest(fmt.Sprintf("key-%03d", i), rows, 16*rows)
	}
	snap := h.Snapshot()
	if snap.ZipfS < 0.9 || snap.ZipfS > 1.5 {
		t.Errorf("fitted zipf s = %v, want ≈ 1.2", snap.ZipfS)
	}
	if snap.DistinctTenants < keys*0.7 || snap.DistinctTenants > keys*1.3 {
		t.Errorf("distinct estimate = %v, want ≈ %d", snap.DistinctTenants, keys)
	}
	if snap.WindowBytes != 16*snap.WindowRows {
		t.Errorf("window bytes = %d, want 16×%d", snap.WindowBytes, snap.WindowRows)
	}
}

// TestPlanesIndependent checks that events, WAL bytes, and touches
// land on their own planes and surface in snapshot entries.
func TestPlanesIndependent(t *testing.T) {
	clk := newFakeClock()
	h := New(Config{Window: time.Minute, Width: 256, Depth: 4, Shards: 1, Now: clk.now})
	h.ObserveIngest("a", 50, 400)
	for i := 0; i < 7; i++ {
		h.ObserveEvent("a")
	}
	h.ObserveWAL("a", 1234)
	h.Touch("a")
	h.Touch("a")

	snap := h.Snapshot()
	if len(snap.TopK) != 1 {
		t.Fatalf("topk = %+v, want one entry", snap.TopK)
	}
	e := snap.TopK[0]
	if e.Rows != 50 || e.Bytes != 400 || e.Events != 7 || e.WALBytes != 1234 || e.Touches != 2 {
		t.Fatalf("entry = %+v, want rows=50 bytes=400 events=7 wal=1234 touches=2", e)
	}
	if snap.WindowEvents != 7 || snap.WindowWALBytes != 1234 || snap.WindowTouches != 2 {
		t.Fatalf("window totals = %+v", snap)
	}
}

// TestNilSidecar checks every method is a no-op on a nil receiver.
func TestNilSidecar(t *testing.T) {
	var h *Sidecar
	h.ObserveIngest("a", 1, 1)
	h.ObserveEvent("a")
	h.ObserveWAL("a", 1)
	h.Touch("a")
	h.Forget("a")
	h.SetTracer(nil)
	h.RegisterMetrics(nil)
	if h.EstimateRows("a") != 0 || h.K() != 0 || h.Window() != 0 {
		t.Fatal("nil sidecar returned non-zero")
	}
	if snap := h.Snapshot(); len(snap.TopK) != 0 {
		t.Fatal("nil sidecar returned entries")
	}
}

// TestSnapshotEncodeRoundTrip checks Encode → DecodeSnapshot is the
// identity on a live snapshot.
func TestSnapshotEncodeRoundTrip(t *testing.T) {
	clk := newFakeClock()
	h := New(Config{Window: time.Minute, K: 8, Width: 256, Depth: 4, Shards: 2, Now: clk.now})
	r := rand.New(rand.NewSource(7))
	z := rand.NewZipf(r, 1.2, 1, 99)
	for i := 0; i < 20_000; i++ {
		h.ObserveIngest(fmt.Sprintf("load-%04d", z.Uint64()), 1, 8)
	}
	snap := h.Snapshot()
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("decode own encoding: %v\n%s", err, data)
	}
	if !reflect.DeepEqual(*got, snap) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", *got, snap)
	}
}

// TestDecodeSnapshotRejectsHostile table-tests the decoder's
// hostile-shape rejections.
func TestDecodeSnapshotRejectsHostile(t *testing.T) {
	valid := `{"window_seconds":60,"k":8,"width":256,"depth":4,"shards":1,` +
		`"epsilon":0.0106,"coverage_min_seconds":0,"coverage_max_seconds":0,` +
		`"window_rows":10,"window_bytes":0,"window_events":0,"window_wal_bytes":0,` +
		`"window_touches":0,"topk_share":1,"zipf_s":0,"distinct_tenants":1,` +
		`"topk":[{"tenant":"a","rows":10,"bound":1,"bytes":0,"events":0,"wal_bytes":0,"touches":0}]}`
	if _, err := DecodeSnapshot([]byte(valid)); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	cases := map[string]string{
		"trailing data":  valid + `{}`,
		"unknown field":  `{"window_seconds":60,"k":8,"width":256,"depth":4,"shards":1,"bogus":1}`,
		"huge k":         `{"window_seconds":60,"k":1000000,"width":256,"depth":4,"shards":1}`,
		"zero width":     `{"window_seconds":60,"k":8,"width":0,"depth":4,"shards":1}`,
		"huge depth":     `{"window_seconds":60,"k":8,"width":256,"depth":400,"shards":1}`,
		"negative rows":  `{"window_seconds":60,"k":8,"width":256,"depth":4,"shards":1,"window_rows":-1}`,
		"share above 1":  `{"window_seconds":60,"k":8,"width":256,"depth":4,"shards":1,"topk_share":1.5}`,
		"empty tenant":   `{"window_seconds":60,"k":8,"width":256,"depth":4,"shards":1,"topk":[{"tenant":"","rows":1}]}`,
		"zero-row entry": `{"window_seconds":60,"k":8,"width":256,"depth":4,"shards":1,"topk":[{"tenant":"a","rows":0}]}`,
		"duplicate tenant": `{"window_seconds":60,"k":8,"width":256,"depth":4,"shards":1,` +
			`"topk":[{"tenant":"a","rows":2},{"tenant":"a","rows":1}]}`,
		"unsorted topk": `{"window_seconds":60,"k":8,"width":256,"depth":4,"shards":1,` +
			`"topk":[{"tenant":"a","rows":1},{"tenant":"b","rows":2}]}`,
		"overfull topk": `{"window_seconds":60,"k":1,"width":256,"depth":4,"shards":1,` +
			`"topk":[{"tenant":"a","rows":2},{"tenant":"b","rows":1}]}`,
	}
	for name, doc := range cases {
		if _, err := DecodeSnapshot([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestConcurrentStress hammers one sidecar from ingest, scrape,
// estimate, and forget goroutines simultaneously; run with -race.
func TestConcurrentStress(t *testing.T) {
	h := New(Config{Window: 50 * time.Millisecond, K: 8, Width: 256, Depth: 4, Shards: 4})
	tr := trace.New(128)
	tr.Enable()
	h.SetTracer(tr)
	reg := obs.NewRegistry()
	h.RegisterMetrics(reg)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			z := rand.NewZipf(r, 1.3, 1, 63)
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("load-%04d", z.Uint64())
				h.ObserveIngest(id, 1+r.Intn(16), 128)
				h.Touch(id)
				if r.Intn(50) == 0 {
					h.ObserveEvent(id)
				}
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := h.Snapshot()
			data, err := snap.Encode()
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := DecodeSnapshot(data); err != nil {
				t.Errorf("live snapshot failed validation: %v\n%s", err, data)
				return
			}
			_ = reg.Expose()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			id := fmt.Sprintf("load-%04d", r.Intn(64))
			_ = h.EstimateRows(id)
			if r.Intn(20) == 0 {
				h.Forget(id)
			}
		}
	}()
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
}
