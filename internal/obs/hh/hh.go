// Package hh is the hot-key observability sidecar: a sliding
// count-min sketch fused with a per-shard top-K tracker, keyed by
// tenant ID. It answers "which tenants are hot right now, and how
// hot" in O(width·depth) space per shard — no per-tenant metric
// labels, no unbounded maps — in the same sub-linear-space-over-
// recent-data regime as the window sketches it observes.
//
// The counter design follows the sliding count-min discipline
// (SNIPPETS.md snippet 2): every counter slot holds an active and a
// backup field. A scan pointer sweeps all width×depth slots exactly
// once per window; scanning a slot copies active→backup and zeroes
// active. A point estimate is the count-min minimum of active+backup
// over the depth rows, so at any instant an estimate covers at least
// the last window and at most the last two windows of traffic.
// Unlike the reference, the sweep here is clock-driven (slots owed =
// elapsed/window × slots, settled lazily on the next touch) instead
// of arrival-driven, so estimates decay even when a key goes quiet.
//
// Five planes share the same hash positions and scan pointer: rows,
// bytes, shed/error events, WAL bytes, and registry touches. The
// top-K tracker is space-saving-shaped but uses the count-min rows
// estimate (already computed during the add) as its scores, so entry
// and eviction cost no extra hashing; Snapshot refreshes every
// tracked score so decayed keys drop out.
//
// Concurrency: tenants are striped over power-of-two shards (same
// FNV-1a family as internal/registry); every observation takes one
// short shard mutex. All methods are nil-receiver safe so call sites
// need no guards.
package hh

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"swsketch/internal/obs"
	"swsketch/internal/trace"
)

// Counter planes tracked per tenant. Every plane shares hash
// positions, so an add touches depth slots regardless of plane.
const (
	planeRows = iota
	planeBytes
	planeEvents
	planeWAL
	planeTouches
	numPlanes
)

// Limits clamped at construction time.
const (
	minWindow = 10 * time.Millisecond
	maxWindow = 24 * time.Hour
	maxK      = 512
	maxWidth  = 1 << 20
	maxDepth  = 16
	maxShards = 1 << 10
)

// Config sizes a Sidecar. The zero value selects the documented
// defaults; out-of-range fields are clamped.
type Config struct {
	// Window is the sliding decay window. Estimates cover between one
	// and two windows of traffic. Default 60s, clamped to [10ms, 24h].
	Window time.Duration
	// K is the number of hot tenants tracked per shard and reported
	// globally. Default 16, clamped to [1, 512].
	K int
	// Width is the number of counters per hash row in each shard,
	// rounded up to a power of two. The count-min error bound is
	// ε·N with ε = e/Width and N the shard's windowed weight.
	// Default 1024, clamped to [16, 1<<20].
	Width int
	// Depth is the number of hash rows; estimates fail their ε·N
	// bound with probability at most e^−Depth. Default 4, clamped to
	// [1, 16].
	Depth int
	// Shards is the number of concurrency shards, rounded up to a
	// power of two. Default min(GOMAXPROCS, 8).
	Shards int
	// Now overrides the clock for tests; nil means time.Now.
	Now func() time.Time
}

// entry is one tracked hot key inside a shard.
type entry struct {
	key   string
	score uint64 // count-min rows estimate at last refresh
}

// shard is one stripe of the sketch. All fields are guarded by mu.
type shard struct {
	mu sync.Mutex
	// counters is, per plane, a flat [depth×width] table of {active,
	// backup} pairs: slot s lives at counters[plane][2s] (active) and
	// counters[plane][2s+1] (backup).
	counters [numPlanes][]uint64
	// totals holds, per plane, the summed weight currently in the
	// active and backup fields across the whole table. Each add
	// contributes depth× its delta, so the shard's windowed stream
	// weight is (totals[0]+totals[1])/depth, maintained exactly.
	totals [numPlanes][2]uint64
	scan   int   // next slot the sweep will visit, in [0, width·depth)
	scanT  int64 // unix nanos the sweep has been settled up to
	top    []entry
	idx    map[string]int // key → index into top
}

// Sidecar is the sliding count-min + top-K hot-key tracker. Create
// one with New; the zero value is unusable. A nil *Sidecar is valid
// at every method and does nothing.
type Sidecar struct {
	window int64 // nanos
	k      int
	width  int
	depth  int
	wmask  uint64
	slots  int // width × depth
	now    func() time.Time
	start  int64 // unix nanos at construction (coverage floor)
	tr     atomic.Pointer[trace.Tracer]

	shards    []*shard
	shardMask uint64
}

// New builds a sidecar from cfg (zero value = defaults).
func New(cfg Config) *Sidecar {
	if cfg.Window <= 0 {
		cfg.Window = time.Minute
	}
	cfg.Window = min(max(cfg.Window, minWindow), maxWindow)
	if cfg.K == 0 {
		cfg.K = 16
	}
	cfg.K = min(max(cfg.K, 1), maxK)
	if cfg.Width == 0 {
		cfg.Width = 1024
	}
	cfg.Width = ceilPow2(min(max(cfg.Width, 16), maxWidth))
	if cfg.Depth == 0 {
		cfg.Depth = 4
	}
	cfg.Depth = min(max(cfg.Depth, 1), maxDepth)
	if cfg.Shards == 0 {
		cfg.Shards = min(runtime.GOMAXPROCS(0), 8)
	}
	cfg.Shards = ceilPow2(min(max(cfg.Shards, 1), maxShards))
	if cfg.Now == nil {
		cfg.Now = time.Now
	}

	h := &Sidecar{
		window:    cfg.Window.Nanoseconds(),
		k:         cfg.K,
		width:     cfg.Width,
		depth:     cfg.Depth,
		wmask:     uint64(cfg.Width - 1),
		slots:     cfg.Width * cfg.Depth,
		now:       cfg.Now,
		shardMask: uint64(cfg.Shards - 1),
	}
	h.start = h.now().UnixNano()
	h.shards = make([]*shard, cfg.Shards)
	for i := range h.shards {
		sh := &shard{scanT: h.start, idx: make(map[string]int, cfg.K)}
		for p := range sh.counters {
			sh.counters[p] = make([]uint64, 2*h.slots)
		}
		h.shards[i] = sh
	}
	return h
}

// SetTracer attaches a tracer for topk_enter/topk_exit churn events.
// Safe to call concurrently with observations.
func (h *Sidecar) SetTracer(tr *trace.Tracer) {
	if h == nil {
		return
	}
	h.tr.Store(tr)
}

// Window returns the configured sliding window.
func (h *Sidecar) Window() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.window)
}

// K returns the configured top-K size.
func (h *Sidecar) K() int {
	if h == nil {
		return 0
	}
	return h.k
}

// ObserveIngest records rows committed (and their approximate payload
// bytes) for a tenant, and refreshes the tenant's standing in the
// top-K tracker.
func (h *Sidecar) ObserveIngest(tenant string, rows, bytes int) {
	if h == nil || tenant == "" || rows <= 0 {
		return
	}
	hv := hash64(tenant)
	sh := h.shardOf(hv)
	now := h.now().UnixNano()
	sh.mu.Lock()
	h.advanceLocked(sh, now)
	est := h.addLocked(sh, hv, planeRows, uint64(rows))
	if bytes > 0 {
		h.addLocked(sh, hv, planeBytes, uint64(bytes))
	}
	h.trackLocked(sh, tenant, est)
	sh.mu.Unlock()
}

// ObserveEvent records one shed or error event attributed to a
// tenant (stream 429s, rejected blocks, per-item ingest errors).
func (h *Sidecar) ObserveEvent(tenant string) { h.observe(tenant, planeEvents, 1) }

// ObserveWAL records bytes appended to the write-ahead log for a
// tenant.
func (h *Sidecar) ObserveWAL(tenant string, bytes int) {
	if bytes > 0 {
		h.observe(tenant, planeWAL, uint64(bytes))
	}
}

// Touch records one tenant acquisition (request-level activity,
// independent of row volume).
func (h *Sidecar) Touch(tenant string) { h.observe(tenant, planeTouches, 1) }

// observe adds delta to one plane without top-K tracking.
func (h *Sidecar) observe(key string, plane int, delta uint64) {
	if h == nil || key == "" || delta == 0 {
		return
	}
	hv := hash64(key)
	sh := h.shardOf(hv)
	now := h.now().UnixNano()
	sh.mu.Lock()
	h.advanceLocked(sh, now)
	h.addLocked(sh, hv, plane, delta)
	sh.mu.Unlock()
}

// Forget drops a tenant from the top-K tracker (its count-min
// contributions decay out on their own). Called on tenant delete and
// non-spill eviction.
func (h *Sidecar) Forget(tenant string) {
	if h == nil || tenant == "" {
		return
	}
	sh := h.shardOf(hash64(tenant))
	sh.mu.Lock()
	if i, ok := sh.idx[tenant]; ok {
		score := sh.top[i].score
		h.removeLocked(sh, i)
		h.emitTopK(trace.KindTopKExit, tenant, score)
	}
	sh.mu.Unlock()
}

// EstimateRows returns the count-min estimate of rows the tenant
// committed over the sliding window (covering between one and two
// windows). The estimate never undercounts the last window; it
// overcounts by at most ε·N with probability ≥ 1−e^−depth, where N
// is the tenant's shard's windowed row weight.
func (h *Sidecar) EstimateRows(tenant string) uint64 {
	if h == nil || tenant == "" {
		return 0
	}
	hv := hash64(tenant)
	sh := h.shardOf(hv)
	now := h.now().UnixNano()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	h.advanceLocked(sh, now)
	return h.estLocked(sh, hv, planeRows)
}

// shardOf picks the stripe for a key hash, remixing so the shard
// bits stay independent of the in-shard counter positions.
func (h *Sidecar) shardOf(hv uint64) *shard {
	return h.shards[(hv*0x9e3779b97f4a7c15)>>33&h.shardMask]
}

// advanceLocked settles the clock-driven sweep: it owes
// elapsed/window × slots scan steps since scanT. A gap of two or
// more windows means every slot is owed two visits — everything is
// stale — so it short-circuits to a full reset.
func (h *Sidecar) advanceLocked(sh *shard, now int64) {
	elapsed := now - sh.scanT
	if elapsed <= 0 {
		return
	}
	if elapsed >= 2*h.window {
		for p := range sh.counters {
			clear(sh.counters[p])
			sh.totals[p] = [2]uint64{}
		}
		sh.scan = 0
		sh.scanT = now
		for len(sh.top) > 0 {
			e := sh.top[len(sh.top)-1]
			h.removeLocked(sh, len(sh.top)-1)
			h.emitTopK(trace.KindTopKExit, e.key, e.score)
		}
		return
	}
	slots := int64(h.slots)
	need := elapsed * slots / h.window
	if need <= 0 {
		return
	}
	// Credit only whole-slot quanta of time so the fractional
	// remainder carries into the next settle instead of drifting.
	sh.scanT += need * h.window / slots
	for ; need > 0; need-- {
		base := 2 * sh.scan
		for p := 0; p < numPlanes; p++ {
			c := sh.counters[p]
			act, back := c[base], c[base+1]
			sh.totals[p][1] += act - back // modular: new backup total
			sh.totals[p][0] -= act
			c[base+1] = act
			c[base] = 0
		}
		sh.scan++
		if sh.scan == h.slots {
			sh.scan = 0
		}
	}
}

// rowPos derives the key's counter position in hash row i. Each row
// gets an independently mixed hash (splitmix64 finalizer over the
// FNV value plus a per-row odd constant) rather than Kirsch-
// Mitzenmacher double hashing: with small widths, K-M lets key pairs
// that collide in both base hashes mod width collide in *every* row,
// defeating the min.
func (h *Sidecar) rowPos(hv uint64, i int) int {
	x := hv + uint64(i+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x & h.wmask)
}

// addLocked adds delta to one plane at the key's depth positions and
// returns the post-add count-min estimate for that plane.
func (h *Sidecar) addLocked(sh *shard, hv uint64, plane int, delta uint64) uint64 {
	c := sh.counters[plane]
	est := ^uint64(0)
	for i := 0; i < h.depth; i++ {
		base := 2 * (i*h.width + h.rowPos(hv, i))
		c[base] += delta
		if v := c[base] + c[base+1]; v < est {
			est = v
		}
	}
	sh.totals[plane][0] += delta * uint64(h.depth)
	return est
}

// estLocked returns the count-min estimate (min over depth rows of
// active+backup) without mutating anything.
func (h *Sidecar) estLocked(sh *shard, hv uint64, plane int) uint64 {
	c := sh.counters[plane]
	est := ^uint64(0)
	for i := 0; i < h.depth; i++ {
		base := 2 * (i*h.width + h.rowPos(hv, i))
		if v := c[base] + c[base+1]; v < est {
			est = v
		}
	}
	return est
}

// trackLocked refreshes (or admits) a key in the shard's top-K using
// its fresh rows estimate as the space-saving score. Tracked scores
// go stale between touches; Snapshot re-scores them.
func (h *Sidecar) trackLocked(sh *shard, key string, est uint64) {
	if i, ok := sh.idx[key]; ok {
		sh.top[i].score = est
		return
	}
	if len(sh.top) < h.k {
		sh.idx[key] = len(sh.top)
		sh.top = append(sh.top, entry{key: key, score: est})
		h.emitTopK(trace.KindTopKEnter, key, est)
		return
	}
	mi := 0
	for i := 1; i < len(sh.top); i++ {
		if sh.top[i].score < sh.top[mi].score {
			mi = i
		}
	}
	if est <= sh.top[mi].score {
		return
	}
	old := sh.top[mi]
	delete(sh.idx, old.key)
	sh.top[mi] = entry{key: key, score: est}
	sh.idx[key] = mi
	h.emitTopK(trace.KindTopKExit, old.key, old.score)
	h.emitTopK(trace.KindTopKEnter, key, est)
}

// removeLocked deletes top[i], keeping idx consistent.
func (h *Sidecar) removeLocked(sh *shard, i int) {
	delete(sh.idx, sh.top[i].key)
	last := len(sh.top) - 1
	if i != last {
		sh.top[i] = sh.top[last]
		sh.idx[sh.top[i].key] = i
	}
	sh.top = sh.top[:last]
}

// emitTopK emits a top-K churn trace event.
func (h *Sidecar) emitTopK(kind, tenant string, est uint64) {
	h.tr.Load().EmitNote("hh", kind, 0, float64(est), 0, tenant)
}

// Snapshot settles every shard's sweep, re-scores the tracked keys
// (dropping ones that decayed to zero), and returns the merged
// global view. Cost is O(shards × (K·depth + width·depth)).
func (h *Sidecar) Snapshot() Snapshot {
	if h == nil {
		return Snapshot{}
	}
	now := h.now().UnixNano()
	snap := Snapshot{
		WindowSeconds: float64(h.window) / 1e9,
		K:             h.k,
		Width:         h.width,
		Depth:         h.depth,
		Shards:        len(h.shards),
		Epsilon:       math.E / float64(h.width),
	}
	up := float64(now-h.start) / 1e9
	snap.CoverageMinSeconds = math.Min(up, snap.WindowSeconds)
	snap.CoverageMaxSeconds = math.Min(up, 2*snap.WindowSeconds)

	var cands []Entry
	var distinct float64
	for _, sh := range h.shards {
		sh.mu.Lock()
		h.advanceLocked(sh, now)
		shardN := h.windowWeightLocked(sh, planeRows)
		bound := uint64(math.Ceil(snap.Epsilon * float64(shardN)))
		for i := 0; i < len(sh.top); {
			key := sh.top[i].key
			hv := hash64(key)
			rows := h.estLocked(sh, hv, planeRows)
			if rows == 0 {
				score := sh.top[i].score
				h.removeLocked(sh, i)
				h.emitTopK(trace.KindTopKExit, key, score)
				continue
			}
			sh.top[i].score = rows
			cands = append(cands, Entry{
				Tenant:   key,
				Rows:     rows,
				Bound:    bound,
				Bytes:    h.estLocked(sh, hv, planeBytes),
				Events:   h.estLocked(sh, hv, planeEvents),
				WALBytes: h.estLocked(sh, hv, planeWAL),
				Touches:  h.estLocked(sh, hv, planeTouches),
			})
			i++
		}
		snap.WindowRows += shardN
		snap.WindowBytes += h.windowWeightLocked(sh, planeBytes)
		snap.WindowEvents += h.windowWeightLocked(sh, planeEvents)
		snap.WindowWALBytes += h.windowWeightLocked(sh, planeWAL)
		snap.WindowTouches += h.windowWeightLocked(sh, planeTouches)
		distinct += h.linearCountLocked(sh)
		sh.mu.Unlock()
	}

	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Rows != cands[j].Rows {
			return cands[i].Rows > cands[j].Rows
		}
		return cands[i].Tenant < cands[j].Tenant
	})
	if len(cands) > h.k {
		cands = cands[:h.k]
	}
	snap.TopK = cands
	snap.DistinctTenants = distinct

	if snap.WindowRows > 0 {
		var topSum uint64
		for _, e := range cands {
			topSum += e.Rows
		}
		snap.TopKShare = math.Min(float64(topSum)/float64(snap.WindowRows), 1)
	}
	snap.ZipfS = zipfFit(cands)
	return snap
}

// windowWeightLocked returns the shard's exact windowed stream
// weight for one plane (totals are kept in slot units: depth× the
// stream weight).
func (h *Sidecar) windowWeightLocked(sh *shard, plane int) uint64 {
	return (sh.totals[plane][0] + sh.totals[plane][1]) / uint64(h.depth)
}

// linearCountLocked estimates the shard's distinct active tenants by
// linear counting on the rows plane: each depth row is an
// independent width-bucket occupancy sketch of the same key set, so
// the estimates are averaged. A fully occupied row saturates at
// width·ln(width).
func (h *Sidecar) linearCountLocked(sh *shard) float64 {
	c := sh.counters[planeRows]
	m := float64(h.width)
	var sum float64
	for i := 0; i < h.depth; i++ {
		zero := 0
		base := 2 * i * h.width
		for j := 0; j < h.width; j++ {
			if c[base+2*j]+c[base+2*j+1] == 0 {
				zero++
			}
		}
		if zero == 0 {
			sum += m * math.Log(m)
		} else {
			sum += -m * math.Log(float64(zero)/m)
		}
	}
	return sum / float64(h.depth)
}

// zipfFit estimates the skew exponent s of a Zipf law from the
// ranked top-K counts via least-squares on (ln rank, ln count);
// under Zipf, ln c_r ≈ ln c_1 − s·ln r. Returns 0 when fewer than
// three ranks are available.
func zipfFit(top []Entry) float64 {
	n := len(top)
	if n < 3 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i, e := range top {
		x := math.Log(float64(i + 1))
		y := math.Log(float64(e.Rows))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den <= 0 {
		return 0
	}
	slope := (fn*sxy - sx*sy) / den
	return math.Max(-slope, 0)
}

// RegisterMetrics publishes the sidecar's aggregate skew statistics
// as a dynamic gauge group on reg; each scrape takes one Snapshot.
func (h *Sidecar) RegisterMetrics(reg *obs.Registry) {
	if h == nil || reg == nil {
		return
	}
	reg.GaugeSet("swsketch_hotkeys",
		"Hot-key sidecar aggregate skew statistics over the sliding window.",
		"stat", nil, func() map[string]float64 {
			s := h.Snapshot()
			return map[string]float64{
				"topk_share":       s.TopKShare,
				"zipf_s":           s.ZipfS,
				"distinct_tenants": s.DistinctTenants,
				"window_rows":      float64(s.WindowRows),
				"window_events":    float64(s.WindowEvents),
			}
		})
}

// FNV-1a 64-bit, matching the registry's tenant striping family.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hash64 is FNV-1a over the key bytes.
func hash64(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// ceilPow2 rounds n up to the next power of two.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
