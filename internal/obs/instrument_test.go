package obs

import (
	"math"
	"strings"
	"testing"

	"swsketch/internal/core"
	"swsketch/internal/mat"
	"swsketch/internal/window"
)

// TestInstrumentedIsTransparent drives an instrumented and a bare
// sketch with the same stream and requires bit-identical answers.
func TestInstrumentedIsTransparent(t *testing.T) {
	bare := core.NewSWR(window.Seq(50), 4, 3, 7)
	wrapped := NewInstrumented(core.NewSWR(window.Seq(50), 4, 3, 7), NewRegistry())

	for i := 0; i < 120; i++ {
		row := []float64{float64(i % 5), 1, float64(i % 3)}
		bare.Update(row, float64(i))
		wrapped.Update(row, float64(i))
	}
	a, b := bare.Query(119), wrapped.Query(119)
	if a.Rows() != b.Rows() {
		t.Fatalf("rows %d vs %d", a.Rows(), b.Rows())
	}
	for i := 0; i < a.Rows(); i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if math.Abs(ra[j]-rb[j]) > 0 {
				t.Fatalf("row %d differs: %v vs %v", i, ra, rb)
			}
		}
	}
	if bare.RowsStored() != wrapped.RowsStored() {
		t.Fatalf("rows stored %d vs %d", bare.RowsStored(), wrapped.RowsStored())
	}
}

func TestInstrumentedRecordsMetrics(t *testing.T) {
	reg := NewRegistry()
	sk := NewInstrumented(core.NewLMFD(window.Seq(100), 3, 8, 4), reg, WithSampleEvery(1))

	rows := make([][]float64, 32)
	times := make([]float64, 32)
	for i := range rows {
		rows[i] = []float64{1, float64(i), 0}
		times[i] = float64(i)
	}
	sk.UpdateBatch(rows, times)
	sk.Update([]float64{1, 2, 3}, 32)
	sk.UpdateSparse(mat.SparseRow{Idx: []int{0}, Val: []float64{2}}, 33)
	sk.Query(33)

	out := reg.Expose()
	for _, want := range []string{
		`swsketch_ingest_rows_total{algo="LM-FD"} 34`,
		`swsketch_ingest_batches_total{algo="LM-FD"} 1`,
		`swsketch_update_seconds_count{algo="LM-FD"} 3`,
		`swsketch_query_seconds_count{algo="LM-FD"} 1`,
		`swsketch_rows_stored{algo="LM-FD"}`,
		`swsketch_internal{algo="LM-FD",stat="levels"}`,
		`swsketch_internal{algo="LM-FD",stat="active_rows"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestInstrumentedSyncWrapsScrapeReads(t *testing.T) {
	reg := NewRegistry()
	calls := 0
	NewInstrumented(core.NewSWOR(window.Seq(10), 2, 2, 1), reg,
		WithSync(func(f func()) { calls++; f() }))
	_ = reg.Expose()
	// rows_stored gauge + internals set = two synced reads per scrape.
	if calls != 2 {
		t.Fatalf("sync called %d times, want 2", calls)
	}
}

func TestPerRowTimingIsSampled(t *testing.T) {
	reg := NewRegistry()
	sk := NewInstrumented(core.NewSWR(window.Seq(100), 4, 3, 1), reg) // default: every 16th
	for i := 0; i < 33; i++ {
		sk.Update([]float64{1, 2, 3}, float64(i))
	}
	out := reg.Expose()
	// Rows are counted exactly; timings hit rows 0, 16 and 32 only.
	for _, want := range []string{
		`swsketch_ingest_rows_total{algo="SWR"} 33`,
		`swsketch_update_seconds_count{algo="SWR"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestInstrumentedStatsDelegates(t *testing.T) {
	sk := NewInstrumented(core.NewZero(2), NewRegistry())
	if got := sk.Stats(); len(got) != 0 {
		t.Fatalf("stats of non-introspector = %v", got)
	}
	var _ core.Introspector = sk
}
