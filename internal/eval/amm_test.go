package eval

import (
	"testing"

	"swsketch/internal/core"
	"swsketch/internal/data"
	"swsketch/internal/window"
)

func ammSpecs(spec window.Spec, dA, dB int) []SketchSpec {
	return []SketchSpec{
		{Label: "LM-AMM", Param: "ell=16", New: func() core.WindowSketch {
			return core.NewLMAMM(spec, dA, dB, 16, 6)
		}},
	}
}

func TestEvaluateAMMProducesSaneMetrics(t *testing.T) {
	ds := smallDataset() // D=12, split 8|4
	spec := window.Seq(300)
	ms := EvaluateAMM(ds, ammSpecs(spec, 8, 4), Config{
		Spec:        spec,
		QueryStride: 200,
		Warmup:      300,
		SkipTiming:  true,
	}, 8)
	if len(ms) != 1 {
		t.Fatalf("got %d metrics", len(ms))
	}
	m := ms[0]
	if m.Queries == 0 {
		t.Fatalf("no queries evaluated")
	}
	if m.MaxRows <= 0 {
		t.Fatalf("MaxRows = %d", m.MaxRows)
	}
	if m.AvgErr < 0 || m.MaxErr < m.AvgErr {
		t.Fatalf("inconsistent errors avg=%v max=%v", m.AvgErr, m.MaxErr)
	}
	// Correlation error of a working sketch stays far below the trivial
	// zero-answer level (which scores 1 on perfectly correlated sides).
	if m.MaxErr > 1 {
		t.Fatalf("MaxErr = %v, sketch not tracking the product", m.MaxErr)
	}
}

// TestEvaluateAMMExactBaseline pins the oracle plumbing: the exact BEST
// sketch at full rank reproduces the window exactly, so its stacked
// answer must factor into the exact AᵀB and score ~0 correlation error.
func TestEvaluateAMMExactBaseline(t *testing.T) {
	ds := data.Synthetic(data.SyntheticConfig{N: 600, D: 6, SignalDim: 6, Seed: 7})
	spec := window.Seq(100)
	ms := EvaluateAMM(ds, []SketchSpec{{
		Label: "BEST", Param: "k=6",
		New: func() core.WindowSketch { return core.NewBest(spec, 6, ds.D()) },
	}}, Config{Spec: spec, QueryStride: 150, Warmup: 100, SkipTiming: true}, 4)
	if ms[0].Queries == 0 {
		t.Fatal("no queries evaluated")
	}
	if ms[0].MaxErr > 1e-8 {
		t.Fatalf("exact baseline AMM error = %v, want ~0", ms[0].MaxErr)
	}
}

func TestEvaluateAMMValidation(t *testing.T) {
	ds := smallDataset()
	for _, dA := range []int{0, ds.D(), -3} {
		dA := dA
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for dA=%d", dA)
				}
			}()
			EvaluateAMM(ds, nil, Config{Spec: window.Seq(10), QueryStride: 1}, dA)
		}()
	}
}
