package eval

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Series groups the metrics of one algorithm across a size sweep, the
// unit the paper plots: one line per algorithm per figure panel.
type Series struct {
	Label  string
	Points []Metrics
}

// GroupSeries splits a flat metrics list into per-algorithm series,
// ordered by measured max sketch size within each series and by label
// across series.
func GroupSeries(ms []Metrics) []Series {
	byLabel := map[string][]Metrics{}
	var labels []string
	for _, m := range ms {
		if _, ok := byLabel[m.Label]; !ok {
			labels = append(labels, m.Label)
		}
		byLabel[m.Label] = append(byLabel[m.Label], m)
	}
	sort.Strings(labels)
	out := make([]Series, 0, len(labels))
	for _, l := range labels {
		pts := byLabel[l]
		sort.Slice(pts, func(i, j int) bool { return pts[i].MaxRows < pts[j].MaxRows })
		out = append(out, Series{Label: l, Points: pts})
	}
	return out
}

// Metric selects which quantity a rendered figure reports.
type Metric int

const (
	// AvgErr is the mean covariance error (Figures 3, 7).
	AvgErr Metric = iota
	// MaxErr is the maximum covariance error (Figures 4, 8).
	MaxErr
	// UpdateNs is the update cost in ns/row (Figures 5, 9).
	UpdateNs
)

// String names the metric as it appears in the paper's figure
// captions.
func (m Metric) String() string {
	switch m {
	case AvgErr:
		return "avg cova-err"
	case MaxErr:
		return "max cova-err"
	case UpdateNs:
		return "update ns/row"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

func (m Metric) value(p Metrics) float64 {
	switch m {
	case AvgErr:
		return p.AvgErr
	case MaxErr:
		return p.MaxErr
	case UpdateNs:
		return p.NsPerUpdate
	default:
		panic(fmt.Sprintf("eval: unknown metric %d", int(m)))
	}
}

// WriteFigure renders one figure panel — metric versus measured max
// sketch size, one block per algorithm — in an aligned text format
// that mirrors the paper's plots.
func WriteFigure(w io.Writer, title string, ms []Metrics, metric Metric) {
	fmt.Fprintf(w, "== %s — %s vs max sketch size ==\n", title, metric)
	for _, s := range GroupSeries(ms) {
		fmt.Fprintf(w, "%s:\n", s.Label)
		fmt.Fprintf(w, "  %-12s %-14s %s\n", "max-rows", metric.short(), "param")
		for _, p := range s.Points {
			fmt.Fprintf(w, "  %-12d %-14.6g %s\n", p.MaxRows, metric.value(p), p.Param)
		}
	}
	fmt.Fprintln(w)
}

func (m Metric) short() string {
	switch m {
	case AvgErr:
		return "avg-err"
	case MaxErr:
		return "max-err"
	case UpdateNs:
		return "ns/update"
	default:
		return "value"
	}
}

// WriteCSVSeries renders metrics as CSV rows:
// figure,algorithm,param,max_rows,avg_err,max_err,ns_per_update.
func WriteCSVSeries(w io.Writer, figure string, ms []Metrics) {
	for _, s := range GroupSeries(ms) {
		for _, p := range s.Points {
			fmt.Fprintf(w, "%s,%s,%s,%d,%.8g,%.8g,%.8g\n",
				figure, s.Label, csvEscape(p.Param), p.MaxRows, p.AvgErr, p.MaxErr, p.NsPerUpdate)
		}
	}
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// WriteOffline renders the Figure 6 points.
func WriteOffline(w io.Writer, title string, pts []OfflinePoint) {
	fmt.Fprintf(w, "== %s — offline sampling error vs ℓ ==\n", title)
	fmt.Fprintf(w, "  %-8s %-14s %-16s %s\n", "ell", "SWR", "SWOR(per-row)", "SWOR(uniform)")
	for _, p := range pts {
		fmt.Fprintf(w, "  %-8d %-14.6g %-16.6g %.6g\n", p.Ell, p.SWR, p.SWORPerRow, p.SWORUni)
	}
	fmt.Fprintln(w)
}
