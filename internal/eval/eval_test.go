package eval

import (
	"bytes"
	"strings"
	"testing"

	"swsketch/internal/core"
	"swsketch/internal/data"
	"swsketch/internal/window"
)

func smallDataset() *data.Dataset {
	return data.Synthetic(data.SyntheticConfig{N: 1200, D: 12, SignalDim: 6, Seed: 1})
}

func specsFor(spec window.Spec, d int) []SketchSpec {
	return []SketchSpec{
		{Label: "SWR", Param: "ell=20", New: func() core.WindowSketch {
			return core.NewSWR(spec, 20, d, 1)
		}},
		{Label: "LM-FD", Param: "ell=16,b=6", New: func() core.WindowSketch {
			return core.NewLMFD(spec, d, 16, 6)
		}},
	}
}

func TestEvaluateProducesSaneMetrics(t *testing.T) {
	ds := smallDataset()
	spec := window.Seq(300)
	ms := Evaluate(ds, specsFor(spec, ds.D()), Config{
		Spec:        spec,
		QueryStride: 200,
		Warmup:      300,
	})
	if len(ms) != 2 {
		t.Fatalf("got %d metrics", len(ms))
	}
	for _, m := range ms {
		if m.Queries == 0 {
			t.Fatalf("%s: no queries evaluated", m.Label)
		}
		if m.MaxRows <= 0 {
			t.Fatalf("%s: MaxRows = %d", m.Label, m.MaxRows)
		}
		if m.AvgErr < 0 || m.MaxErr < m.AvgErr {
			t.Fatalf("%s: inconsistent errors avg=%v max=%v", m.Label, m.AvgErr, m.MaxErr)
		}
		if m.NsPerUpdate <= 0 {
			t.Fatalf("%s: NsPerUpdate = %v", m.Label, m.NsPerUpdate)
		}
	}
}

func TestEvaluateMaxQueriesCap(t *testing.T) {
	ds := smallDataset()
	spec := window.Seq(300)
	ms := Evaluate(ds, specsFor(spec, ds.D()), Config{
		Spec:        spec,
		QueryStride: 50,
		Warmup:      300,
		MaxQueries:  3,
		SkipTiming:  true,
	})
	for _, m := range ms {
		if m.Queries != 3 {
			t.Fatalf("%s: queries = %d, want 3", m.Label, m.Queries)
		}
		if m.NsPerUpdate != 0 {
			t.Fatalf("%s: timing should be skipped", m.Label)
		}
	}
}

func TestEvaluateValidation(t *testing.T) {
	ds := smallDataset()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for QueryStride=0")
		}
	}()
	Evaluate(ds, nil, Config{Spec: window.Seq(10), QueryStride: 0})
}

func TestMeasureUpdateCostPositive(t *testing.T) {
	ds := smallDataset()
	ns := MeasureUpdateCost(ds, func() core.WindowSketch {
		return core.NewSWR(window.Seq(300), 10, ds.D(), 2)
	})
	if ns <= 0 {
		t.Fatalf("ns/update = %v", ns)
	}
}

func TestMeasureUpdateCostEmptyDataset(t *testing.T) {
	empty := &data.Dataset{Name: "empty"}
	if ns := MeasureUpdateCost(empty, func() core.WindowSketch {
		return core.NewSWR(window.Seq(10), 2, 1, 3)
	}); ns != 0 {
		t.Fatalf("empty dataset ns = %v", ns)
	}
}

func TestGroupSeriesSortsByRows(t *testing.T) {
	ms := []Metrics{
		{Label: "B", MaxRows: 50},
		{Label: "A", MaxRows: 30},
		{Label: "A", MaxRows: 10},
	}
	ss := GroupSeries(ms)
	if len(ss) != 2 || ss[0].Label != "A" || ss[1].Label != "B" {
		t.Fatalf("series = %+v", ss)
	}
	if ss[0].Points[0].MaxRows != 10 || ss[0].Points[1].MaxRows != 30 {
		t.Fatal("points not sorted by MaxRows")
	}
}

func TestMetricSelectors(t *testing.T) {
	m := Metrics{AvgErr: 1, MaxErr: 2, NsPerUpdate: 3}
	if AvgErr.value(m) != 1 || MaxErr.value(m) != 2 || UpdateNs.value(m) != 3 {
		t.Fatal("metric selectors broken")
	}
	for _, mm := range []Metric{AvgErr, MaxErr, UpdateNs} {
		if mm.String() == "" || mm.short() == "" {
			t.Fatal("metric names broken")
		}
	}
}

func TestWriteFigureAndCSV(t *testing.T) {
	ms := []Metrics{
		{Label: "SWR", Param: "ell=10", MaxRows: 40, AvgErr: 0.1, MaxErr: 0.2, NsPerUpdate: 123},
		{Label: "LM-FD", Param: "ell=8,b=4", MaxRows: 30, AvgErr: 0.05, MaxErr: 0.1, NsPerUpdate: 45},
	}
	var fig bytes.Buffer
	WriteFigure(&fig, "Fig 3a SYNTHETIC", ms, AvgErr)
	out := fig.String()
	for _, want := range []string{"Fig 3a SYNTHETIC", "SWR", "LM-FD", "avg cova-err"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q:\n%s", want, out)
		}
	}
	var csvb bytes.Buffer
	WriteCSVSeries(&csvb, "fig3a", ms)
	lines := strings.Split(strings.TrimSpace(csvb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "fig3a,LM-FD,") {
		t.Fatalf("csv order/format: %q", lines[0])
	}
}

func TestCSVEscape(t *testing.T) {
	if csvEscape("a,b") != `"a,b"` || csvEscape(`x"y`) != `"x""y"` || csvEscape("plain") != "plain" {
		t.Fatal("csvEscape broken")
	}
}

func TestOfflineSampling(t *testing.T) {
	ds := data.PAMAP(data.PAMAPConfig{N: 3000, D: 8, SkewAt: 1000, SkewLen: 500, Seed: 3})
	pts := OfflineSampling(ds, 1000, 1500, []int{10, 40}, 5, 7)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.SWR < 0 || p.SWORPerRow < 0 || p.SWORUni < 0 {
			t.Fatalf("negative error: %+v", p)
		}
	}
	var buf bytes.Buffer
	WriteOffline(&buf, "Fig 6", pts)
	if !strings.Contains(buf.String(), "SWOR(per-row)") {
		t.Fatal("offline rendering missing columns")
	}
}

func TestOfflineSamplingValidation(t *testing.T) {
	ds := smallDataset()
	for _, f := range []func(){
		func() { OfflineSampling(ds, -1, 10, []int{1}, 1, 0) },
		func() { OfflineSampling(ds, 5, 5, []int{1}, 1, 0) },
		func() { OfflineSampling(ds, 0, ds.N()+1, []int{1}, 1, 0) },
		func() { OfflineSampling(ds, 0, 10, []int{1}, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestEvaluateBestRanksMonotone(t *testing.T) {
	ds := smallDataset()
	ms := EvaluateBestRanks(ds, []int{2, 4, 8}, Config{
		Spec:        window.Seq(300),
		QueryStride: 300,
		Warmup:      300,
	})
	if len(ms) != 3 {
		t.Fatalf("metrics = %d", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].AvgErr > ms[i-1].AvgErr+1e-12 {
			t.Fatalf("BEST error not monotone in k: %v then %v", ms[i-1].AvgErr, ms[i].AvgErr)
		}
	}
	for _, m := range ms {
		if m.Queries == 0 || m.Label != "BEST" {
			t.Fatalf("bad metrics: %+v", m)
		}
	}
}

func TestEvaluateBestRanksMatchesBestSketch(t *testing.T) {
	// The spectrum shortcut must agree with the explicit rank-k sketch.
	ds := smallDataset()
	spec := window.Seq(300)
	cfg := Config{Spec: spec, QueryStride: 500, Warmup: 300, MaxQueries: 2, SkipTiming: true}
	fast := EvaluateBestRanks(ds, []int{4}, cfg)
	slow := Evaluate(ds, []SketchSpec{{
		Label: "BEST", Param: "k=4",
		New: func() core.WindowSketch { return core.NewBest(spec, 4, ds.D()) },
	}}, cfg)
	if diff := fast[0].AvgErr - slow[0].AvgErr; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("spectrum shortcut %v vs explicit %v", fast[0].AvgErr, slow[0].AvgErr)
	}
}
