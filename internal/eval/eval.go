// Package eval is the experiment harness behind Section 8: it streams
// a dataset through a set of sliding-window sketches next to an exact
// window oracle, querying at a fixed stride, and reports the paper's
// three metrics per sketch — maximum sketch size (rows), average and
// maximum observed covariance error, and update cost (ns/row). The
// cmd/swbench binary composes these runs into the series behind every
// figure and table.
package eval

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"swsketch/internal/core"
	"swsketch/internal/data"
	"swsketch/internal/mat"
	"swsketch/internal/window"
)

// SketchSpec names a sketch configuration under evaluation and knows
// how to build a fresh instance.
type SketchSpec struct {
	// Label identifies the algorithm (e.g. "LM-FD").
	Label string
	// Param is the swept size parameter, recorded in the output (the
	// x-axis of the figures is the *measured* max sketch size, but the
	// sweep knob is reported for reproducibility).
	Param string
	// New builds a fresh sketch.
	New func() core.WindowSketch
}

// Config controls a run.
type Config struct {
	// Spec is the sliding window under evaluation.
	Spec window.Spec
	// QueryStride queries every k-th row (after Warmup rows).
	QueryStride int
	// Warmup delays the first query, letting the window fill.
	Warmup int
	// MaxQueries caps the number of evaluated windows (0 = unlimited);
	// the expensive exact-error computation dominates run time.
	MaxQueries int
	// SkipTiming disables the separate update-cost pass.
	SkipTiming bool
	// ProjK, when > 0, additionally measures the rank-ProjK projection
	// error at each query (the "different error metrics" extension).
	ProjK int
}

func (c Config) validate() Config {
	if c.QueryStride < 1 {
		panic(fmt.Sprintf("eval: QueryStride must be ≥ 1, got %d", c.QueryStride))
	}
	if c.Warmup < 0 {
		panic(fmt.Sprintf("eval: negative Warmup %d", c.Warmup))
	}
	return c
}

// Metrics is the outcome of evaluating one sketch configuration.
type Metrics struct {
	Label       string
	Param       string
	MaxRows     int     // maximum RowsStored observed over the run
	AvgErr      float64 // mean covariance error over queried windows
	MaxErr      float64 // maximum covariance error over queried windows
	AvgProjErr  float64 // mean rank-k projection error (Config.ProjK > 0)
	NsPerUpdate float64 // average update cost, ns per row
	Queries     int     // number of evaluated windows
}

// Evaluate runs every spec over the dataset and reports metrics. All
// sketches see the identical stream; errors are measured against one
// shared exact-window oracle. Update cost is measured in a separate
// pass over fresh sketch instances so query-time work and oracle costs
// do not pollute it.
func Evaluate(ds *data.Dataset, specs []SketchSpec, cfg Config) []Metrics {
	cfg = cfg.validate()
	if err := ds.Validate(); err != nil {
		panic(fmt.Sprintf("eval: invalid dataset: %v", err))
	}
	d := ds.D()

	sketches := make([]core.WindowSketch, len(specs))
	results := make([]Metrics, len(specs))
	for i, s := range specs {
		sketches[i] = s.New()
		results[i] = Metrics{Label: s.Label, Param: s.Param}
	}

	oracle := window.NewExact(cfg.Spec, d)
	queries := 0
	for i, row := range ds.Rows {
		t := ds.Times[i]
		oracle.Update(row, t)
		for j, sk := range sketches {
			sk.Update(row, t)
			if n := sk.RowsStored(); n > results[j].MaxRows {
				results[j].MaxRows = n
			}
		}
		if i < cfg.Warmup || (i-cfg.Warmup)%cfg.QueryStride != 0 {
			continue
		}
		if cfg.MaxQueries > 0 && queries >= cfg.MaxQueries {
			continue
		}
		queries++
		// One Gram snapshot serves every sketch at this query point.
		gram := oracle.Gram()
		froSq := oracle.FroSq()
		var aWin *mat.Dense
		var tailMass float64
		if cfg.ProjK > 0 {
			aWin = oracle.Matrix()
			sa := mat.SingularValues(aWin)
			for i := cfg.ProjK; i < len(sa); i++ {
				tailMass += sa[i] * sa[i]
			}
		}
		// The per-sketch query + spectral-norm work is independent;
		// spread it across cores (it dominates harness run time).
		evalSketchesParallel(sketches, results, t, gram, froSq, aWin, tailMass, cfg.ProjK)
	}
	for j := range results {
		if results[j].Queries > 0 {
			results[j].AvgErr /= float64(results[j].Queries)
			results[j].AvgProjErr /= float64(results[j].Queries)
		}
	}

	if !cfg.SkipTiming {
		for j, s := range specs {
			results[j].NsPerUpdate = MeasureUpdateCost(ds, s.New)
		}
	}
	return results
}

// MeasureUpdateCost streams the dataset through a fresh sketch and
// returns the average wall-clock cost per row in nanoseconds.
func MeasureUpdateCost(ds *data.Dataset, newSketch func() core.WindowSketch) float64 {
	sk := newSketch()
	start := time.Now()
	for i, row := range ds.Rows {
		sk.Update(row, ds.Times[i])
	}
	elapsed := time.Since(start)
	if len(ds.Rows) == 0 {
		return 0
	}
	return float64(elapsed.Nanoseconds()) / float64(len(ds.Rows))
}

// EvaluateBestRanks computes the BEST(offline) baseline's error curve
// in one pass: at each query point it eigendecomposes the exact window
// Gram matrix once, reading off the optimal rank-k covariance error
// σ²_{k+1}/‖A‖²_F for every requested k simultaneously — the identity
// the paper's lower envelope relies on. This is orders of magnitude
// cheaper than materialising a rank-k approximation per k.
func EvaluateBestRanks(ds *data.Dataset, ks []int, cfg Config) []Metrics {
	cfg = cfg.validate()
	if err := ds.Validate(); err != nil {
		panic(fmt.Sprintf("eval: invalid dataset: %v", err))
	}
	d := ds.D()
	results := make([]Metrics, len(ks))
	for i, k := range ks {
		results[i] = Metrics{Label: "BEST", Param: fmt.Sprintf("k=%d", k), MaxRows: k}
	}

	oracle := window.NewExact(cfg.Spec, d)
	queries := 0
	for i, row := range ds.Rows {
		t := ds.Times[i]
		oracle.Update(row, t)
		if i < cfg.Warmup || (i-cfg.Warmup)%cfg.QueryStride != 0 {
			continue
		}
		if cfg.MaxQueries > 0 && queries >= cfg.MaxQueries {
			continue
		}
		queries++
		froSq := oracle.FroSq()
		if froSq == 0 {
			continue
		}
		vals, _ := mat.EigenSym(oracle.Gram())
		for j, k := range ks {
			var e float64
			if k < len(vals) && vals[k] > 0 {
				e = vals[k] / froSq
			}
			results[j].AvgErr += e
			if e > results[j].MaxErr {
				results[j].MaxErr = e
			}
			results[j].Queries++
		}
	}
	for j := range results {
		if results[j].Queries > 0 {
			results[j].AvgErr /= float64(results[j].Queries)
		}
	}
	return results
}

// evalSketchesParallel queries every sketch at time t and accumulates
// its error metrics, fanning the independent per-sketch work across
// GOMAXPROCS workers.
func evalSketchesParallel(sketches []core.WindowSketch, results []Metrics, t float64,
	gram *mat.Dense, froSq float64, aWin *mat.Dense, tailMass float64, projK int) {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(sketches) {
		workers = len(sketches)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range next {
				b := sketches[j].Query(t)
				e := mat.CovarianceError(gram, froSq, b)
				results[j].AvgErr += e
				if e > results[j].MaxErr {
					results[j].MaxErr = e
				}
				if projK > 0 {
					results[j].AvgProjErr += mat.ProjectionErrorGivenTail(aWin, tailMass, b, projK)
				}
				results[j].Queries++
			}
		}()
	}
	for j := range sketches {
		next <- j
	}
	close(next)
	wg.Wait()
}
