package eval

import (
	"fmt"

	"swsketch/internal/core"
	"swsketch/internal/data"
	"swsketch/internal/window"
)

// EvaluateAMM is the exact-AᵀB ground-truth mode of the harness: every
// dataset row is the stacked pair [a|b] with an A-side width of dA,
// each spec builds a paired sketch over those rows, and the error
// columns report the windowed-AMM correlation error
//
//	‖AᵀB − XᵀY‖₂ / (‖A‖_F · ‖B‖_F)
//
// measured against an exact window oracle that recomputes AᵀB from the
// window's rows at every query. Sketches are queried through the
// stacked WindowSketch surface (Query returns [X|Y]); the product is
// read off with core.StackedProduct, so any sketch whose stacked
// answer factors that way — including the exact BEST baseline — can
// ride the same harness.
func EvaluateAMM(ds *data.Dataset, specs []SketchSpec, cfg Config, dA int) []Metrics {
	cfg = cfg.validate()
	if err := ds.Validate(); err != nil {
		panic(fmt.Sprintf("eval: invalid dataset: %v", err))
	}
	d := ds.D()
	if dA < 1 || dA >= d {
		panic(fmt.Sprintf("eval: AMM split dA=%d outside (0,%d)", dA, d))
	}
	dB := d - dA

	sketches := make([]core.WindowSketch, len(specs))
	results := make([]Metrics, len(specs))
	for i, s := range specs {
		sketches[i] = s.New()
		results[i] = Metrics{Label: s.Label, Param: s.Param}
	}

	oracle := window.NewExact(cfg.Spec, d)
	queries := 0
	for i, row := range ds.Rows {
		t := ds.Times[i]
		oracle.Update(row, t)
		for j, sk := range sketches {
			sk.Update(row, t)
			if n := sk.RowsStored(); n > results[j].MaxRows {
				results[j].MaxRows = n
			}
		}
		if i < cfg.Warmup || (i-cfg.Warmup)%cfg.QueryStride != 0 {
			continue
		}
		if cfg.MaxQueries > 0 && queries >= cfg.MaxQueries {
			continue
		}
		queries++
		for j, sk := range sketches {
			p := core.StackedProduct(sk.Query(t), dA, dB)
			e := oracle.AmmErr(dA, p)
			results[j].AvgErr += e
			if e > results[j].MaxErr {
				results[j].MaxErr = e
			}
			results[j].Queries++
		}
	}
	for j := range results {
		if results[j].Queries > 0 {
			results[j].AvgErr /= float64(results[j].Queries)
		}
	}

	if !cfg.SkipTiming {
		for j, s := range specs {
			results[j].NsPerUpdate = MeasureUpdateCost(ds, s.New)
		}
	}
	return results
}
