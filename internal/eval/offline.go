package eval

import (
	"fmt"
	"math/rand"

	"swsketch/internal/data"
	"swsketch/internal/mat"
	"swsketch/internal/stream"
)

// OfflinePoint is one point of the Figure 6 experiment: the average
// covariance error of the offline samplers at a given sample size ℓ.
type OfflinePoint struct {
	Ell                      int
	SWR, SWORPerRow, SWORUni float64
}

// OfflineSampling reproduces Figure 6: extract the window rows
// [from, to) of the dataset, then for each ℓ run the offline
// with-replacement sampler, the paper's per-row-rescaled
// without-replacement sampler, and the uniform-rescaled variant,
// averaging covariance error over trials.
func OfflineSampling(ds *data.Dataset, from, to int, ells []int, trials int, seed int64) []OfflinePoint {
	if from < 0 || to > ds.N() || from >= to {
		panic(fmt.Sprintf("eval: offline window [%d,%d) out of range n=%d", from, to, ds.N()))
	}
	if trials < 1 {
		panic(fmt.Sprintf("eval: trials must be ≥ 1, got %d", trials))
	}
	a := mat.FromRows(ds.Rows[from:to])
	gram := a.Gram()
	froSq := a.FrobeniusSq()
	rng := rand.New(rand.NewSource(seed))

	points := make([]OfflinePoint, 0, len(ells))
	for _, ell := range ells {
		p := OfflinePoint{Ell: ell}
		for tr := 0; tr < trials; tr++ {
			p.SWR += mat.CovarianceError(gram, froSq, stream.SampleOfflineWR(a, ell, rng))
			p.SWORPerRow += mat.CovarianceError(gram, froSq, stream.SampleOfflineWORPerRow(a, ell, rng))
			p.SWORUni += mat.CovarianceError(gram, froSq, stream.SampleOfflineWOR(a, ell, rng))
		}
		p.SWR /= float64(trials)
		p.SWORPerRow /= float64(trials)
		p.SWORUni /= float64(trials)
		points = append(points, p)
	}
	return points
}
