package data

import "fmt"

// RailConfig parameterises the crew-scheduling-like cost stream of
// Section 8.2. The paper's RAIL2586 matrix has 2586 trip columns and
// ~8.7 non-zeros per row with small integer costs (norm ratio R = 12);
// the paper adds synthetic Poisson(λ=0.5) timestamps to make it a
// time-based stream.
type RailConfig struct {
	// N is the number of rows (the paper used 923,269).
	N int
	// D is the number of trip columns (the paper used 2586).
	D int
	// MeanNnz is the mean non-zeros per row (paper ≈ 8.7).
	MeanNnz int
	// Lambda is the Poisson arrival rate (paper: 0.5, i.e. mean
	// inter-arrival gap 2 time units).
	Lambda float64
	// Seed keys the generator.
	Seed uint64
}

func (c RailConfig) withDefaults() RailConfig {
	if c.MeanNnz == 0 {
		c.MeanNnz = 9
	}
	if c.Lambda == 0 {
		c.Lambda = 0.5
	}
	return c
}

// Rail generates the cost stream: each row assigns small integer costs
// (1 or 2) to a handful of trips, with trip popularity Zipf-skewed so
// the covariance structure is non-trivial. Inter-arrival gaps are
// exponential with rate Lambda (a Poisson arrival process).
func Rail(cfg RailConfig) *Dataset {
	cfg = cfg.withDefaults()
	if cfg.N < 1 || cfg.D < 1 {
		panic(fmt.Sprintf("data: Rail needs N ≥ 1 and D ≥ 1, got %d, %d", cfg.N, cfg.D))
	}
	if cfg.Lambda <= 0 {
		panic(fmt.Sprintf("data: Rail needs Lambda > 0, got %v", cfg.Lambda))
	}
	r := newRNG(cfg.Seed)

	ds := &Dataset{Name: "RAIL", Rows: make([][]float64, cfg.N), Times: make([]float64, cfg.N)}
	t := 0.0
	for i := 0; i < cfg.N; i++ {
		nnz := 3 + r.Intn(2*cfg.MeanNnz-5) // 3 .. 2·MeanNnz−3, mean ≈ MeanNnz
		row := make([]float64, cfg.D)
		for k := 0; k < nnz; k++ {
			// Zipf-skewed trip popularity: low column indexes are hot.
			col := int(float64(cfg.D) * r.Float64() * r.Float64())
			if col >= cfg.D {
				col = cfg.D - 1
			}
			cost := 1.0
			if r.Float64() < 0.3 {
				cost = 2
			}
			row[col] = cost
		}
		ds.Rows[i] = row
		t += r.Exp() / cfg.Lambda
		ds.Times[i] = t
	}
	return ds
}
