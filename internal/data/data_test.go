package data

import (
	"bytes"
	"math"
	"testing"
)

func sq(row []float64) float64 {
	var s float64
	for _, v := range row {
		s += v * v
	}
	return s
}

func TestSyntheticShapeAndValidate(t *testing.T) {
	ds := Synthetic(SyntheticConfig{N: 500, D: 30, Seed: 1})
	if ds.N() != 500 || ds.D() != 30 {
		t.Fatalf("dims = %d×%d", ds.N(), ds.D())
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Name != "SYNTHETIC" {
		t.Fatal("name wrong")
	}
}

func TestSyntheticSignalDominatesNoise(t *testing.T) {
	// With ζ=10 the signal mass should dwarf the noise: the expected
	// squared row norm is ≈ Σ(1−(i−1)/k)² ≈ k/3 versus noise d/ζ².
	ds := Synthetic(SyntheticConfig{N: 2000, D: 30, Seed: 2})
	var mean float64
	for _, r := range ds.Rows {
		mean += sq(r)
	}
	mean /= float64(ds.N())
	signal := float64(30) / 3
	if mean < signal/2 || mean > signal*3 {
		t.Fatalf("mean squared norm %v far from signal level %v", mean, signal)
	}
}

func TestSyntheticSignalDimConcentration(t *testing.T) {
	// Low signal dim: covariance spectrum should drop sharply after k.
	ds := Synthetic(SyntheticConfig{N: 3000, D: 20, SignalDim: 3, Seed: 3})
	// Column second-moment matrix eigenvalue proxy: total mass should
	// sit mostly in a 3-dimensional subspace; compare top-3 column
	// norms of AᵀA... cheap proxy: mean squared norm ≈ Σ_{i≤3}(1−(i−1)/3)² + d/ζ².
	var mean float64
	for _, r := range ds.Rows {
		mean += sq(r)
	}
	mean /= float64(ds.N())
	want := (1.0 + 4.0/9 + 1.0/9) + 20.0/100
	if math.Abs(mean-want) > want/2 {
		t.Fatalf("mean squared norm %v, want ≈ %v", mean, want)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(SyntheticConfig{N: 10, D: 5, Seed: 7})
	b := Synthetic(SyntheticConfig{N: 10, D: 5, Seed: 7})
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatal("not deterministic")
			}
		}
	}
}

func TestSyntheticValidation(t *testing.T) {
	for _, cfg := range []SyntheticConfig{
		{N: 0, D: 5},
		{N: 5, D: 0},
		{N: 5, D: 5, SignalDim: 6},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %+v", cfg)
				}
			}()
			Synthetic(cfg)
		}()
	}
}

func TestBIBDConstantNorm(t *testing.T) {
	ds := BIBD(BIBDConfig{V: 22, K: 8, N: 300, Seed: 4})
	if ds.D() != 231 {
		t.Fatalf("D = %d, want C(22,2) = 231", ds.D())
	}
	want := float64(8 * 7 / 2)
	for i, r := range ds.Rows {
		if got := sq(r); got != want {
			t.Fatalf("row %d squared norm %v, want %v", i, got, want)
		}
		for _, v := range r {
			if v != 0 && v != 1 {
				t.Fatalf("row %d has non-binary entry %v", i, v)
			}
		}
	}
	ratio, _ := ds.NormRatio()
	if ratio != 1 {
		t.Fatalf("norm ratio = %v, want 1", ratio)
	}
}

func TestBIBDValidation(t *testing.T) {
	for _, cfg := range []BIBDConfig{
		{V: 1, K: 1, N: 5},
		{V: 5, K: 6, N: 5},
		{V: 5, K: 2, N: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %+v", cfg)
				}
			}()
			BIBD(cfg)
		}()
	}
}

func TestPAMAPNormRatioHuge(t *testing.T) {
	ds := PAMAP(PAMAPConfig{N: 20000, D: 35, SkewAt: 10000, Seed: 5})
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	ratio, _ := ds.NormRatio()
	if ratio < 1e3 {
		t.Fatalf("PAMAP norm ratio = %v, want heavy tail (≥ 10³)", ratio)
	}
}

func TestPAMAPSkewedSegment(t *testing.T) {
	// Inside the skewed segment there must be both huge and tiny rows.
	skewAt, skewLen := 5000, 1000
	ds := PAMAP(PAMAPConfig{N: 10000, D: 10, SkewAt: skewAt, SkewLen: skewLen, Seed: 6})
	var mx, mn float64
	mn = math.Inf(1)
	for i := skewAt; i < skewAt+skewLen; i++ {
		s := sq(ds.Rows[i])
		if s > mx {
			mx = s
		}
		if s < mn {
			mn = s
		}
	}
	if mx/mn < 1e3 {
		t.Fatalf("skewed segment ratio %v too mild", mx/mn)
	}
}

func TestWikiSparseAndAccelerating(t *testing.T) {
	ds := Wiki(WikiConfig{N: 3000, D: 400, Seed: 7})
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Sparsity: average nnz well below D.
	var nnz int
	for _, r := range ds.Rows {
		for _, v := range r {
			if v != 0 {
				nnz++
			}
		}
	}
	avg := float64(nnz) / float64(ds.N())
	if avg > float64(ds.D())/4 {
		t.Fatalf("rows too dense: avg nnz %v of %d", avg, ds.D())
	}
	// Acceleration: the last 10% of documents span less time than the
	// first 10%.
	n := ds.N()
	early := ds.Times[n/10] - ds.Times[0]
	late := ds.Times[n-1] - ds.Times[n-1-n/10]
	if late >= early {
		t.Fatalf("arrivals not accelerating: early span %v, late span %v", early, late)
	}
	// Non-negative tf-idf entries.
	for i, r := range ds.Rows[:100] {
		for _, v := range r {
			if v < 0 {
				t.Fatalf("row %d has negative tf-idf %v", i, v)
			}
		}
	}
}

func TestRailPoissonArrivalsAndIntegerCosts(t *testing.T) {
	ds := Rail(RailConfig{N: 5000, D: 200, Seed: 8})
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mean gap ≈ 1/λ = 2.
	gap := ds.Times[ds.N()-1] / float64(ds.N()-1)
	if gap < 1.5 || gap > 2.5 {
		t.Fatalf("mean arrival gap %v, want ≈ 2", gap)
	}
	for i, r := range ds.Rows[:200] {
		for _, v := range r {
			if v != 0 && v != 1 && v != 2 {
				t.Fatalf("row %d has non-integer cost %v", i, v)
			}
		}
	}
	ratio, _ := ds.NormRatio()
	if ratio < 2 || ratio > 100 {
		t.Fatalf("RAIL norm ratio %v outside the modest regime", ratio)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := Synthetic(SyntheticConfig{N: 20, D: 4, Seed: 9})
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("SYNTHETIC", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() || back.D() != ds.D() {
		t.Fatalf("round trip dims %d×%d vs %d×%d", back.N(), back.D(), ds.N(), ds.D())
	}
	for i := range ds.Rows {
		if back.Times[i] != ds.Times[i] {
			t.Fatalf("timestamp %d changed", i)
		}
		for j := range ds.Rows[i] {
			if back.Rows[i][j] != ds.Rows[i][j] {
				t.Fatalf("value (%d,%d) changed", i, j)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	for _, in := range []string{
		"notanumber,1,2\n",
		"1,notanumber\n",
		"1\n",
	} {
		if _, err := ReadCSV("x", bytes.NewBufferString(in)); err == nil {
			t.Fatalf("expected error for %q", in)
		}
	}
}

func TestNormRatioEdgeCases(t *testing.T) {
	empty := &Dataset{}
	if r, m := empty.NormRatio(); r != 0 || m != 0 {
		t.Fatal("empty dataset should have zero ratio")
	}
	zeros := &Dataset{Rows: [][]float64{{0, 0}}, Times: []float64{0}}
	if r, _ := zeros.NormRatio(); r != 0 {
		t.Fatal("all-zero dataset should have zero ratio")
	}
}

func TestValidateCatchesRagged(t *testing.T) {
	ds := &Dataset{Rows: [][]float64{{1, 2}, {3}}, Times: []float64{0, 1}}
	if ds.Validate() == nil {
		t.Fatal("expected ragged-row error")
	}
	ds2 := &Dataset{Rows: [][]float64{{1}, {2}}, Times: []float64{1, 0}}
	if ds2.Validate() == nil {
		t.Fatal("expected timestamp-order error")
	}
	ds3 := &Dataset{Rows: [][]float64{{1}}, Times: []float64{}}
	if ds3.Validate() == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestRNGStatistics(t *testing.T) {
	r := newRNG(123)
	var sum, sumSq float64
	n := 50000
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.05 {
		t.Fatalf("Norm() mean %v var %v", mean, variance)
	}
	var esum float64
	for i := 0; i < n; i++ {
		esum += r.Exp()
	}
	if m := esum / float64(n); math.Abs(m-1) > 0.05 {
		t.Fatalf("Exp() mean %v", m)
	}
}

func TestPAMAPSpikesKeepEveryWindowSkewed(t *testing.T) {
	// Sporadic transients must make every large window norm-skewed:
	// a handful of huge rows amid ordinary ones, with within-window
	// ratio at least two orders of magnitude.
	ds := PAMAP(PAMAPConfig{N: 20000, D: 35, SkewAt: -1, Seed: 7})
	for start := 0; start+2000 <= ds.N(); start += 2000 {
		mn, mx := math.Inf(1), 0.0
		for i := start; i < start+2000; i++ {
			s := sq(ds.Rows[i])
			if s < mn {
				mn = s
			}
			if s > mx {
				mx = s
			}
		}
		if mx/mn < 1e2 {
			t.Fatalf("window at %d has ratio %v, want ≥ 10²", start, mx/mn)
		}
	}
	// Spikes are sporadic, not the bulk (spike mass ≈ d·(30·O(1))²).
	var heavy int
	for _, r := range ds.Rows {
		if sq(r) > 3e4 {
			heavy++
		}
	}
	if heavy == 0 || heavy > ds.N()/10 {
		t.Fatalf("heavy rows = %d of %d; want sporadic", heavy, ds.N())
	}
}
