package data

import "fmt"

// BIBDConfig parameterises the balanced-incomplete-block-design
// incidence stream. The paper's bibd_22_8 matrix has v = 22 points and
// k = 8 points per block: columns are the C(22,2) = 231 point pairs
// and each row is the pair-incidence vector of one block, so every row
// has exactly C(8,2) = 28 ones — constant squared norm, ratio R = 1.
type BIBDConfig struct {
	// V is the number of design points (paper: 22).
	V int
	// K is the block size (paper: 8).
	K int
	// N is the number of rows (blocks) to emit.
	N int
	// Seed keys the block sampler.
	Seed uint64
}

// BIBD generates an incidence stream: each row corresponds to a
// uniformly random k-subset of [v] and marks the pairs it contains.
// The paper's matrix enumerates all C(22,8) blocks; sampling blocks
// uniformly preserves the properties the experiment exercises
// (0/1 entries, constant row norm, pair-covariance structure).
func BIBD(cfg BIBDConfig) *Dataset {
	if cfg.V < 2 || cfg.K < 2 || cfg.K > cfg.V {
		panic(fmt.Sprintf("data: BIBD needs 2 ≤ K ≤ V, got V=%d K=%d", cfg.V, cfg.K))
	}
	if cfg.N < 1 {
		panic(fmt.Sprintf("data: BIBD needs N ≥ 1, got %d", cfg.N))
	}
	r := newRNG(cfg.Seed)
	d := cfg.V * (cfg.V - 1) / 2

	// pairIndex maps point pair (i < j) to its column.
	pairIndex := make([][]int, cfg.V)
	col := 0
	for i := 0; i < cfg.V; i++ {
		pairIndex[i] = make([]int, cfg.V)
		for j := i + 1; j < cfg.V; j++ {
			pairIndex[i][j] = col
			col++
		}
	}

	ds := &Dataset{Name: "BIBD", Rows: make([][]float64, cfg.N), Times: make([]float64, cfg.N)}
	points := make([]int, cfg.V)
	for i := range points {
		points[i] = i
	}
	for n := 0; n < cfg.N; n++ {
		// Partial Fisher-Yates: the first K entries become the block.
		for i := 0; i < cfg.K; i++ {
			j := i + r.Intn(cfg.V-i)
			points[i], points[j] = points[j], points[i]
		}
		row := make([]float64, d)
		for a := 0; a < cfg.K; a++ {
			for b := a + 1; b < cfg.K; b++ {
				i, j := points[a], points[b]
				if i > j {
					i, j = j, i
				}
				row[pairIndex[i][j]] = 1
			}
		}
		ds.Rows[n] = row
		ds.Times[n] = float64(n)
	}
	return ds
}
