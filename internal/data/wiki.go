package data

import (
	"fmt"
	"math"
)

// WikiConfig parameterises the Wikipedia-like tf-idf document stream
// of Section 8.2: sparse non-negative rows (one per article) with
// real-valued tf-idf weights and timestamps that accelerate over the
// stream (articles are published more frequently in recent time, the
// effect behind Figure 9b).
type WikiConfig struct {
	// N is the number of documents (the paper used 68,319).
	N int
	// D is the vocabulary size (the paper used 7047).
	D int
	// Topics is the number of latent topics mixing the vocabulary.
	Topics int
	// MeanWords is the mean number of distinct terms per document.
	MeanWords int
	// Span is the total time horizon (the paper's stream spans years,
	// measured in days).
	Span float64
	// Acceleration ≥ 1 controls how much denser arrivals get toward
	// the end of the stream (1 = uniform; the paper's corpus is
	// strongly accelerating).
	Acceleration float64
	// Seed keys the generator.
	Seed uint64
}

func (c WikiConfig) withDefaults() WikiConfig {
	if c.Topics == 0 {
		c.Topics = 20
	}
	if c.MeanWords == 0 {
		c.MeanWords = 40
	}
	if c.Span == 0 {
		c.Span = 3000
	}
	if c.Acceleration == 0 {
		c.Acceleration = 3
	}
	return c
}

// Wiki generates the document stream. Each document draws a topic,
// then MeanWords-ish terms from that topic's Zipf-weighted term
// distribution; term weights are tf·idf-like (term frequency damped by
// log, scaled by an idf drawn per term). Document timestamps follow
// t(i) = Span·(i/N)^(1/Acceleration), so equal time windows hold few
// early documents and many late ones.
func Wiki(cfg WikiConfig) *Dataset {
	cfg = cfg.withDefaults()
	if cfg.N < 1 || cfg.D < 1 {
		panic(fmt.Sprintf("data: Wiki needs N ≥ 1 and D ≥ 1, got %d, %d", cfg.N, cfg.D))
	}
	if cfg.Acceleration < 1 {
		panic(fmt.Sprintf("data: Wiki needs Acceleration ≥ 1, got %v", cfg.Acceleration))
	}
	r := newRNG(cfg.Seed)

	// Per-term idf weights, drawn uniformly over the [0.5, 4.5] range
	// that log(N/df) spans for document frequencies between ~60% and
	// ~1% of the corpus.
	idf := make([]float64, cfg.D)
	for j := range idf {
		idf[j] = 0.5 + 4*r.Float64()
	}
	// Each topic concentrates on a random subset of terms with
	// Zipf-decaying emphasis.
	topicTerms := make([][]int, cfg.Topics)
	perm := make([]int, cfg.D)
	for j := range perm {
		perm[j] = j
	}
	for k := range topicTerms {
		// Partial shuffle: take a topic vocabulary of D/4 terms.
		size := cfg.D / 4
		if size < 1 {
			size = 1
		}
		for i := 0; i < size; i++ {
			j := i + r.Intn(cfg.D-i)
			perm[i], perm[j] = perm[j], perm[i]
		}
		terms := make([]int, size)
		copy(terms, perm[:size])
		topicTerms[k] = terms
	}

	ds := &Dataset{Name: "WIKI", Rows: make([][]float64, cfg.N), Times: make([]float64, cfg.N)}
	for i := 0; i < cfg.N; i++ {
		topic := topicTerms[r.Intn(cfg.Topics)]
		nWords := 1 + int(float64(cfg.MeanWords)*(0.25+1.5*r.Float64()))
		row := make([]float64, cfg.D)
		for w := 0; w < nWords; w++ {
			// Zipf-decaying rank within the topic vocabulary.
			rank := int(float64(len(topic)) * math.Pow(r.Float64(), 2.5))
			if rank >= len(topic) {
				rank = len(topic) - 1
			}
			term := topic[rank]
			tf := 1 + r.Intn(8)
			row[term] += (1 + math.Log(float64(tf))) * idf[term]
		}
		ds.Rows[i] = row
		frac := (float64(i) + 1) / float64(cfg.N)
		ds.Times[i] = cfg.Span * math.Pow(frac, 1/cfg.Acceleration)
	}
	return ds
}
