package data

import (
	"fmt"
	"math"
)

// PAMAPConfig parameterises the physical-activity-monitoring-like
// sensor stream. The paper's PAMAP subset has 35 raw sensor columns
// (heart rate, 3-axis IMU accelerations, gyroscope, magnetometer,
// temperatures) over 14 activities, with a squared-norm ratio around
// 9·10⁴ between rest and vigorous segments.
type PAMAPConfig struct {
	// N is the number of rows (the paper used 198,000).
	N int
	// D is the number of sensor columns (the paper used 35).
	D int
	// Activities is the number of distinct activity regimes (paper: 14).
	Activities int
	// SegmentLen is the mean activity segment length in rows.
	SegmentLen int
	// SkewAt, if ≥ 0, plants a strongly skewed segment (a handful of
	// huge rows amid tiny ones) starting at this row index — the
	// regime of the paper's Figure 6 window (rows 125,000–135,000).
	SkewAt int
	// SkewLen is the skewed segment's length (default N/20).
	SkewLen int
	// SpikeProb is the per-row probability of a high-amplitude
	// transient (sensor impact) regardless of the activity — the
	// property that makes real accelerometer windows norm-skewed:
	// a few huge rows amid ordinary ones. Default 0.02; set negative
	// to disable.
	SpikeProb float64
	// Seed keys the generator.
	Seed uint64
}

func (c PAMAPConfig) withDefaults() PAMAPConfig {
	if c.Activities == 0 {
		c.Activities = 14
	}
	if c.SegmentLen == 0 {
		c.SegmentLen = 800
	}
	if c.SkewLen == 0 {
		c.SkewLen = c.N / 20
	}
	if c.SpikeProb == 0 {
		c.SpikeProb = 0.02
	}
	return c
}

// PAMAP generates a piecewise-stationary multivariate sensor stream.
// Each activity has a mean vector, per-column oscillation frequencies,
// and an intensity scale drawn log-uniformly so the stream's squared
// norms span roughly five orders of magnitude (rest ≈ 0.1, vigorous ≈
// 30 per-column amplitude), matching the paper's R ≈ 9·10⁴. Rows are
// sampled at fixed 0.5-unit ticks like the real PAMAP (so the stream
// works naturally with sequence windows).
func PAMAP(cfg PAMAPConfig) *Dataset {
	cfg = cfg.withDefaults()
	if cfg.N < 1 || cfg.D < 1 {
		panic(fmt.Sprintf("data: PAMAP needs N ≥ 1 and D ≥ 1, got %d, %d", cfg.N, cfg.D))
	}
	r := newRNG(cfg.Seed)

	type activity struct {
		mean  []float64
		freq  []float64
		scale float64
	}
	acts := make([]activity, cfg.Activities)
	for a := range acts {
		mean := make([]float64, cfg.D)
		freq := make([]float64, cfg.D)
		for j := range mean {
			mean[j] = r.Norm() * 0.5
			freq[j] = 0.02 + 0.3*r.Float64()
		}
		// Intensity scales log-uniform over [0.1, 30]: squared-norm
		// ratio up to (300)² = 9·10⁴ across activities.
		logLo, logHi := math.Log(0.1), math.Log(30)
		acts[a] = activity{mean: mean, freq: freq, scale: math.Exp(logLo + (logHi-logLo)*r.Float64())}
	}

	ds := &Dataset{Name: "PAMAP", Rows: make([][]float64, cfg.N), Times: make([]float64, cfg.N)}
	cur := r.Intn(cfg.Activities)
	segLeft := 1 + r.Intn(2*cfg.SegmentLen)
	for i := 0; i < cfg.N; i++ {
		if segLeft == 0 {
			cur = r.Intn(cfg.Activities)
			segLeft = 1 + r.Intn(2*cfg.SegmentLen)
		}
		segLeft--

		act := acts[cur]
		scale := act.scale
		if cfg.SpikeProb > 0 && r.Float64() < cfg.SpikeProb {
			// High-amplitude transient: a sensor impact dwarfing the
			// surrounding activity. These sporadic heavy rows are what
			// keep every window norm-skewed, the regime behind the
			// paper's SWR-vs-SWOR ordering on PAMAP.
			scale = 30
		}
		if cfg.SkewAt >= 0 && i >= cfg.SkewAt && i < cfg.SkewAt+cfg.SkewLen {
			// Skewed segment: a few huge rows among near-silent ones.
			if r.Float64() < 0.03 {
				scale = 30
			} else {
				scale = 0.1
			}
		}
		row := make([]float64, cfg.D)
		phase := float64(i)
		for j := range row {
			row[j] = scale * (act.mean[j] + math.Sin(phase*act.freq[j]) + 0.3*r.Norm())
		}
		ds.Rows[i] = row
		ds.Times[i] = float64(i) // fixed 0.5 s ticks ⇒ index timestamps
	}
	return ds
}
