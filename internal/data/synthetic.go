package data

import (
	"fmt"
	"math"
)

// SyntheticConfig parameterises the Appendix D "random noisy" matrix
// A = S·D·U + N/ζ.
type SyntheticConfig struct {
	// N is the number of rows (the paper used 10⁶).
	N int
	// D is the number of columns (the paper used 300).
	D int
	// SignalDim is the rank k of the signal subspace; the appendix
	// uses k = D (a full-dimensional decaying spectrum). Values k < D
	// concentrate the signal, matching the "Random Noisy" setups of
	// Liberty and Ghashami et al.
	SignalDim int
	// Zeta is the noise attenuation ζ (the paper used 10).
	Zeta float64
	// Seed keys the generator.
	Seed uint64
}

func (c SyntheticConfig) withDefaults() SyntheticConfig {
	if c.SignalDim == 0 {
		c.SignalDim = c.D
	}
	if c.Zeta == 0 {
		c.Zeta = 10
	}
	return c
}

// Synthetic generates the Appendix D matrix: S is N×k i.i.d. standard
// normal, D = diag(1 − (i−1)/k) provides linearly decaying signal
// strength, U is a k×D matrix with orthonormal rows (UUᵀ = I_k), and
// the noise matrix has i.i.d. N(0, 1/ζ²) entries. Timestamps are the
// stream indices (the paper evaluates SYNTHETIC on sequence windows).
func Synthetic(cfg SyntheticConfig) *Dataset {
	cfg = cfg.withDefaults()
	if cfg.N < 1 || cfg.D < 1 {
		panic(fmt.Sprintf("data: Synthetic needs N ≥ 1 and D ≥ 1, got %d, %d", cfg.N, cfg.D))
	}
	if cfg.SignalDim < 1 || cfg.SignalDim > cfg.D {
		panic(fmt.Sprintf("data: SignalDim %d out of [1, %d]", cfg.SignalDim, cfg.D))
	}
	r := newRNG(cfg.Seed)
	k := cfg.SignalDim

	u := orthonormalRows(r, k, cfg.D)
	// Pre-scale U's rows by the diagonal D so each row of A is
	// (s·DU) + noise with s ~ N(0, I_k).
	for i := 0; i < k; i++ {
		f := 1 - float64(i)/float64(k)
		for j := 0; j < cfg.D; j++ {
			u[i][j] *= f
		}
	}

	ds := &Dataset{Name: "SYNTHETIC", Rows: make([][]float64, cfg.N), Times: make([]float64, cfg.N)}
	invZeta := 1 / cfg.Zeta
	for i := 0; i < cfg.N; i++ {
		row := make([]float64, cfg.D)
		for s := 0; s < k; s++ {
			c := r.Norm()
			if c == 0 {
				continue
			}
			us := u[s]
			for j := range row {
				row[j] += c * us[j]
			}
		}
		for j := range row {
			row[j] += r.Norm() * invZeta
		}
		ds.Rows[i] = row
		ds.Times[i] = float64(i)
	}
	return ds
}

// orthonormalRows returns a k×d matrix with orthonormal rows, built by
// modified Gram-Schmidt over Gaussian rows (k ≤ d required).
func orthonormalRows(r *rng, k, d int) [][]float64 {
	if k > d {
		panic(fmt.Sprintf("data: cannot build %d orthonormal rows in dimension %d", k, d))
	}
	rows := make([][]float64, k)
	for i := 0; i < k; i++ {
		for {
			v := make([]float64, d)
			for j := range v {
				v[j] = r.Norm()
			}
			for p := 0; p < i; p++ {
				var dot float64
				for j := range v {
					dot += v[j] * rows[p][j]
				}
				for j := range v {
					v[j] -= dot * rows[p][j]
				}
			}
			var nsq float64
			for _, x := range v {
				nsq += x * x
			}
			if nsq < 1e-12 { // degenerate draw; retry
				continue
			}
			inv := 1 / math.Sqrt(nsq)
			for j := range v {
				v[j] *= inv
			}
			rows[i] = v
			break
		}
	}
	return rows
}
