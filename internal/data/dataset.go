// Package data generates the evaluation datasets of Section 8. The
// paper's real datasets (BIBD from the UFlorida sparse collection,
// PAMAP activity monitoring, an English Wikipedia tf-idf corpus, and
// the RAIL2586 crew-scheduling matrix) cannot be shipped, so each
// generator reproduces the property that made its dataset interesting:
//
//   - Synthetic: the Appendix D "random noisy" matrix A = SDU + N/ζ.
//   - BIBD: exact balanced-incomplete-block-design incidence rows with
//     constant squared norm (ratio R = 1, where DI-FD shines).
//   - PAMAP: piecewise-stationary sensor rows with a squared-norm
//     ratio around 9·10⁴ and a heavily skewed segment (the regime that
//     breaks per-row-rescaled SWOR, Figure 6).
//   - WIKI: sparse tf-idf-like rows with accelerating arrival times
//     (bursty time windows, Figure 9b).
//   - RAIL: small-integer sparse cost rows with Poisson(λ=0.5)
//     arrivals (Table 3).
//
// All generators are deterministic given a seed.
package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Dataset is a fully materialised row stream with timestamps.
type Dataset struct {
	Name  string
	Rows  [][]float64
	Times []float64 // non-decreasing; stream index for sequence data
}

// N returns the number of rows.
func (ds *Dataset) N() int { return len(ds.Rows) }

// D returns the row dimension (0 for an empty dataset).
func (ds *Dataset) D() int {
	if len(ds.Rows) == 0 {
		return 0
	}
	return len(ds.Rows[0])
}

// NormRatio returns R = max‖a‖²/min‖a‖² over non-zero rows (the
// paper's "ratio R" column in Tables 2 and 3), and the max squared
// norm itself.
func (ds *Dataset) NormRatio() (ratio, maxSq float64) {
	minSq := math.Inf(1)
	for _, r := range ds.Rows {
		var s float64
		for _, v := range r {
			s += v * v
		}
		if s == 0 {
			continue
		}
		if s < minSq {
			minSq = s
		}
		if s > maxSq {
			maxSq = s
		}
	}
	if maxSq == 0 || math.IsInf(minSq, 1) {
		return 0, 0
	}
	return maxSq / minSq, maxSq
}

// Validate checks structural invariants: rectangular rows and
// non-decreasing timestamps of matching length.
func (ds *Dataset) Validate() error {
	if len(ds.Times) != len(ds.Rows) {
		return fmt.Errorf("data: %d rows but %d timestamps", len(ds.Rows), len(ds.Times))
	}
	d := ds.D()
	for i, r := range ds.Rows {
		if len(r) != d {
			return fmt.Errorf("data: row %d has %d columns, want %d", i, len(r), d)
		}
		if i > 0 && ds.Times[i] < ds.Times[i-1] {
			return fmt.Errorf("data: timestamp %d (%v) precedes %v", i, ds.Times[i], ds.Times[i-1])
		}
	}
	return nil
}

// WriteCSV writes the dataset as timestamp,v1,...,vd rows.
func (ds *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	rec := make([]string, ds.D()+1)
	for i, row := range ds.Rows {
		rec[0] = strconv.FormatFloat(ds.Times[i], 'g', -1, 64)
		for j, v := range row {
			rec[j+1] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("data: write csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a dataset written by WriteCSV (or any CSV whose first
// column is a timestamp and remaining columns are the row values).
func ReadCSV(name string, r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	ds := &Dataset{Name: name}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("data: read csv: %w", err)
		}
		if len(rec) < 2 {
			return nil, fmt.Errorf("data: csv record needs timestamp plus values, got %d fields", len(rec))
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("data: bad timestamp %q: %w", rec[0], err)
		}
		row := make([]float64, len(rec)-1)
		for j, f := range rec[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("data: bad value %q: %w", f, err)
			}
			row[j] = v
		}
		ds.Rows = append(ds.Rows, row)
		ds.Times = append(ds.Times, t)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// rng is a small deterministic PRNG (xorshift64*), local to the
// package so dataset bytes never change across Go releases the way
// math/rand's global stream could.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0, 1).
func (r *rng) Float64() float64 { return float64(r.next()>>11) / float64(1<<53) }

// Intn returns a uniform integer in [0, n).
func (r *rng) Intn(n int) int { return int(r.next() % uint64(n)) }

// Norm returns a standard normal variate (Box–Muller).
func (r *rng) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Exp returns an exponential variate with mean 1.
func (r *rng) Exp() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}
