package data

import (
	"strings"
	"testing"
)

func TestReadMatrixMarketReal(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 4 5
1 1 2.5
1 4 1
2 2 -3
3 1 7
3 3 0.5
`
	ds, err := ReadMatrixMarket("mm", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 3 || ds.D() != 4 {
		t.Fatalf("dims %d×%d", ds.N(), ds.D())
	}
	if ds.Rows[0][0] != 2.5 || ds.Rows[0][3] != 1 || ds.Rows[1][1] != -3 || ds.Rows[2][2] != 0.5 {
		t.Fatalf("entries wrong: %v", ds.Rows)
	}
	if ds.Times[2] != 2 {
		t.Fatalf("timestamps wrong: %v", ds.Times)
	}
}

func TestReadMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	ds, err := ReadMatrixMarket("p", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Rows[0][1] != 1 || ds.Rows[1][0] != 1 || ds.Rows[0][0] != 0 {
		t.Fatalf("pattern entries wrong: %v", ds.Rows)
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"not mm":         "hello\n1 1 1\n",
		"array":          "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"symmetric":      "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 1 1\n",
		"complex":        "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"bad size":       "%%MatrixMarket matrix coordinate real general\nx y z\n",
		"oob index":      "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
		"bad value":      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 zz\n",
		"missing fields": "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
		"nnz mismatch":   "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrixMarket("x", strings.NewReader(in)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestReadPAMAP(t *testing.T) {
	// Column 3 (sensor 1) has a NaN → dropped; sensors 0 and 2 kept.
	in := `8.38 0 104 30.1 2.4
8.39 0 105 NaN 2.5
8.40 1 106 30.3 2.6
`
	ds, err := ReadPAMAP("pamap", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 3 || ds.D() != 2 {
		t.Fatalf("dims %d×%d, want 3×2", ds.N(), ds.D())
	}
	if ds.Rows[0][0] != 104 || ds.Rows[0][1] != 2.4 || ds.Rows[2][1] != 2.6 {
		t.Fatalf("rows wrong: %v", ds.Rows)
	}
	if ds.Times[0] != 8.38 || ds.Times[2] != 8.40 {
		t.Fatalf("times wrong: %v", ds.Times)
	}
}

func TestReadPAMAPErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"short line":     "1.0 0\n",
		"ragged":         "1 0 2 3\n2 0 2\n",
		"bad timestamp":  "x 0 2\n",
		"bad value":      "1 0 zz\n",
		"all nan column": "1 0 NaN\n2 0 NaN\n",
	}
	for name, in := range cases {
		if _, err := ReadPAMAP("x", strings.NewReader(in)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestReadPAMAPAllColumnsClean(t *testing.T) {
	in := "1 0 5 6\n2 1 7 8\n"
	ds, err := ReadPAMAP("x", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds.D() != 2 || ds.Rows[1][1] != 8 {
		t.Fatalf("clean parse wrong: %v", ds.Rows)
	}
}
