package data

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ReadMatrixMarket parses a MatrixMarket coordinate file — the format
// the UFlorida Sparse Matrix Collection distributes bibd_22_8 and
// rail2586 in — into a row stream. Supported headers:
//
//	%%MatrixMarket matrix coordinate real    general
//	%%MatrixMarket matrix coordinate integer general
//	%%MatrixMarket matrix coordinate pattern general
//
// Pattern entries read as 1. Rows are emitted in row order with the
// row index as timestamp, matching how the paper streams these
// matrices. Symmetric/array variants are rejected explicitly.
func ReadMatrixMarket(name string, r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	if !sc.Scan() {
		return nil, fmt.Errorf("data: empty MatrixMarket input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("data: not a MatrixMarket file: %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("data: only coordinate MatrixMarket supported, got %q", header[2])
	}
	valueType := header[3]
	switch valueType {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("data: unsupported MatrixMarket value type %q", valueType)
	}
	if len(header) >= 5 && header[4] != "general" {
		return nil, fmt.Errorf("data: only general (non-symmetric) MatrixMarket supported, got %q", header[4])
	}

	// Skip comments, read the size line.
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("data: bad MatrixMarket size line %q: %w", line, err)
		}
		break
	}
	if rows <= 0 || cols <= 0 || nnz < 0 {
		return nil, fmt.Errorf("data: bad MatrixMarket dimensions %d×%d nnz=%d", rows, cols, nnz)
	}

	ds := &Dataset{Name: name, Rows: make([][]float64, rows), Times: make([]float64, rows)}
	for i := range ds.Rows {
		ds.Rows[i] = make([]float64, cols)
		ds.Times[i] = float64(i)
	}
	read := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		want := 3
		if valueType == "pattern" {
			want = 2
		}
		if len(fields) < want {
			return nil, fmt.Errorf("data: bad MatrixMarket entry %q", line)
		}
		i, err1 := strconv.Atoi(fields[0])
		j, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("data: bad MatrixMarket indices in %q", line)
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("data: MatrixMarket entry (%d,%d) outside %d×%d", i, j, rows, cols)
		}
		v := 1.0
		if valueType != "pattern" {
			v, err1 = strconv.ParseFloat(fields[2], 64)
			if err1 != nil {
				return nil, fmt.Errorf("data: bad MatrixMarket value in %q", line)
			}
		}
		ds.Rows[i-1][j-1] = v
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("data: reading MatrixMarket: %w", err)
	}
	if read != nnz {
		return nil, fmt.Errorf("data: MatrixMarket declared %d entries, found %d", nnz, read)
	}
	return ds, nil
}

// ReadPAMAP parses the space-separated PAMAP/PAMAP2 .dat format: one
// sample per line, first column a timestamp in seconds, second the
// activity ID, remaining columns raw sensor values with "NaN" for
// missing readings. Mirroring the paper's preprocessing, the timestamp
// and activity columns are dropped, columns with any missing value are
// removed entirely, and the surviving columns form the row stream
// (timestamps retained from column 0).
func ReadPAMAP(name string, r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	var raw [][]float64
	var times []float64
	width := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("data: PAMAP line has %d fields, need ≥ 3: %q", len(fields), line)
		}
		if width == -1 {
			width = len(fields)
		} else if len(fields) != width {
			return nil, fmt.Errorf("data: PAMAP line has %d fields, want %d", len(fields), width)
		}
		t, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("data: bad PAMAP timestamp %q", fields[0])
		}
		row := make([]float64, width-2)
		for j, f := range fields[2:] {
			if strings.EqualFold(f, "nan") {
				row[j] = math.NaN()
				continue
			}
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("data: bad PAMAP value %q", f)
			}
			row[j] = v
		}
		raw = append(raw, row)
		times = append(times, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("data: reading PAMAP: %w", err)
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("data: empty PAMAP input")
	}

	// Drop columns containing any missing value (the paper's rule).
	d := len(raw[0])
	keep := make([]bool, d)
	kept := 0
	for j := 0; j < d; j++ {
		keep[j] = true
		for _, row := range raw {
			if math.IsNaN(row[j]) {
				keep[j] = false
				break
			}
		}
		if keep[j] {
			kept++
		}
	}
	if kept == 0 {
		return nil, fmt.Errorf("data: every PAMAP column has missing values")
	}
	ds := &Dataset{Name: name, Rows: make([][]float64, len(raw)), Times: times}
	for i, row := range raw {
		out := make([]float64, 0, kept)
		for j, v := range row {
			if keep[j] {
				out = append(out, v)
			}
		}
		ds.Rows[i] = out
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}
