package eh

import (
	"math"
	"testing"
)

// FuzzEstimate drives the histogram with an arbitrary byte-derived
// schedule of adds and expiries, checking the estimate against an
// exact replay. Run with `go test -fuzz FuzzEstimate ./internal/eh`;
// the seed corpus executes in normal test runs.
func FuzzEstimate(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{255, 0, 255, 0, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Add([]byte{10, 10, 10, 10, 10, 10, 10, 10, 10, 10})
	f.Fuzz(func(t *testing.T, ops []byte) {
		h := New(4)
		type it struct{ t, w float64 }
		var items []it
		now := 0.0
		for _, b := range ops {
			now++
			w := 1 + float64(b%100)
			h.Add(now, w)
			items = append(items, it{now, w})

			cutoff := now - 16
			got := h.Estimate(cutoff)
			var want float64
			for _, x := range items {
				if x.t > cutoff {
					want += x.w
				}
			}
			if got < 0 {
				t.Fatalf("negative estimate %v", got)
			}
			if want == 0 {
				if got != 0 {
					t.Fatalf("estimate %v for empty window", got)
				}
				continue
			}
			// Generous bound: the class-merge EH with the adjacency
			// fallback guarantees roughly 2/k relative error; allow 1.
			if rel := math.Abs(got-want) / want; rel > 1.0 {
				t.Fatalf("estimate %v vs exact %v (rel %v)", got, want, rel)
			}
		}
	})
}
