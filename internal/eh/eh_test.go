package eh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// exactWindowSum is the reference: sum of weights with t in (cutoff, now].
type item struct{ t, w float64 }

func exactSum(items []item, cutoff float64) float64 {
	var s float64
	for _, it := range items {
		if it.t > cutoff {
			s += it.w
		}
	}
	return s
}

func TestNewPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	New(0)
}

func TestNewForError(t *testing.T) {
	h := NewForError(0.1)
	if h.k != 10 {
		t.Fatalf("k = %d, want 10", h.k)
	}
	for _, eps := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for eps=%v", eps)
				}
			}()
			NewForError(eps)
		}()
	}
}

func TestAddNegativeWeightPanics(t *testing.T) {
	h := New(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative weight")
		}
	}()
	h.Add(1, -1)
}

func TestAddOutOfOrderPanics(t *testing.T) {
	h := New(4)
	h.Add(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for decreasing timestamp")
		}
	}()
	h.Add(4, 1)
}

func TestZeroWeightIgnored(t *testing.T) {
	h := New(4)
	h.Add(1, 0)
	if h.Buckets() != 0 {
		t.Fatal("zero weight should not create a bucket")
	}
}

func TestExactWhenFewItems(t *testing.T) {
	// With fewer than k items per class, nothing merges: exact sums.
	h := New(100)
	var want float64
	for i := 0; i < 50; i++ {
		h.Add(float64(i), 2)
		want += 2
	}
	if got := h.Estimate(-1); got != want {
		t.Fatalf("Estimate = %v, want %v", got, want)
	}
}

func TestTotalTracksAllBuckets(t *testing.T) {
	h := New(3)
	var want float64
	for i := 0; i < 200; i++ {
		w := float64(1 + i%5)
		h.Add(float64(i), w)
		want += w
	}
	if math.Abs(h.Total()-want) > 1e-9 {
		t.Fatalf("Total = %v, want %v", h.Total(), want)
	}
}

func TestExpireDropsOldBuckets(t *testing.T) {
	h := New(2)
	for i := 0; i < 100; i++ {
		h.Add(float64(i), 1)
	}
	before := h.Buckets()
	h.Expire(90)
	if h.Buckets() >= before {
		t.Fatalf("Expire did not drop buckets: %d → %d", before, h.Buckets())
	}
	// Everything expired.
	h.Expire(1000)
	if h.Buckets() != 0 || h.Total() != 0 {
		t.Fatalf("full expiry left %d buckets, total %v", h.Buckets(), h.Total())
	}
	if h.Estimate(1000) != 0 {
		t.Fatal("estimate after full expiry should be 0")
	}
}

func TestSpaceIsLogarithmic(t *testing.T) {
	h := New(8)
	n := 100000
	for i := 0; i < n; i++ {
		h.Add(float64(i), 1)
	}
	// Expect O(k log n) buckets; generous bound.
	limit := 8 * (int(math.Log2(float64(n))) + 3)
	if h.Buckets() > limit {
		t.Fatalf("bucket count %d exceeds O(k log n) bound %d", h.Buckets(), limit)
	}
}

func TestRelativeErrorUnitWeights(t *testing.T) {
	// Sliding window of size 1000 over unit weights: estimate must be
	// within ~2/k relative error of the true count.
	k := 16
	h := New(k)
	window := 1000.0
	for i := 0; i < 20000; i++ {
		tt := float64(i)
		h.Add(tt, 1)
		if i > 2000 && i%77 == 0 {
			got := h.Estimate(tt - window)
			want := window
			rel := math.Abs(got-want) / want
			if rel > 2.5/float64(k) {
				t.Fatalf("at t=%v: estimate %v vs %v (rel %.4f > %.4f)", tt, got, want, rel, 2.5/float64(k))
			}
		}
	}
}

func TestRelativeErrorSkewedWeights(t *testing.T) {
	// Weights in [1, 1000], window 500 items.
	rng := rand.New(rand.NewSource(42))
	k := 32
	h := New(k)
	var items []item
	for i := 0; i < 8000; i++ {
		w := 1 + rng.Float64()*999
		tt := float64(i)
		items = append(items, item{tt, w})
		h.Add(tt, w)
		if i > 1000 && i%113 == 0 {
			cutoff := tt - 500
			got := h.Estimate(cutoff)
			want := exactSum(items, cutoff)
			rel := math.Abs(got-want) / want
			// Generous: real-weight EH with adjacent-merge fallback.
			if rel > 4.0/float64(k) {
				t.Fatalf("at t=%v: estimate %v vs %v (rel %.4f)", tt, got, want, rel)
			}
		}
	}
}

func TestTimeBasedIrregularArrivals(t *testing.T) {
	// Poisson-ish arrival gaps, time-based window of span 100.
	rng := rand.New(rand.NewSource(7))
	k := 24
	h := New(k)
	var items []item
	tt := 0.0
	for i := 0; i < 6000; i++ {
		tt += rng.ExpFloat64() * 0.5
		w := 1 + rng.Float64()*9
		items = append(items, item{tt, w})
		h.Add(tt, w)
		if i > 1000 && i%97 == 0 {
			cutoff := tt - 100
			got := h.Estimate(cutoff)
			want := exactSum(items, cutoff)
			if want == 0 {
				continue
			}
			rel := math.Abs(got-want) / want
			if rel > 4.0/float64(k) {
				t.Fatalf("at t=%v: estimate %v vs %v (rel %.4f)", tt, got, want, rel)
			}
		}
	}
}

func TestEstimateIdempotent(t *testing.T) {
	h := New(4)
	for i := 0; i < 500; i++ {
		h.Add(float64(i), 1)
	}
	a := h.Estimate(250)
	b := h.Estimate(250)
	if a != b {
		t.Fatalf("Estimate not idempotent: %v then %v", a, b)
	}
}

func TestBucketSpansStayOrdered(t *testing.T) {
	// Invariant: bucket spans are contiguous and time-ordered even with
	// wildly varying weights (the adjacency-preserving merge rule).
	rng := rand.New(rand.NewSource(99))
	h := New(4)
	for i := 0; i < 3000; i++ {
		w := math.Pow(10, rng.Float64()*4) // 1..10000
		h.Add(float64(i), w)
		for j := 1; j < len(h.buckets); j++ {
			if h.buckets[j].start < h.buckets[j-1].end {
				t.Fatalf("bucket %d span [%v,%v] overlaps previous end %v",
					j, h.buckets[j].start, h.buckets[j].end, h.buckets[j-1].end)
			}
		}
	}
}

// Property: the estimate never exceeds the total of live buckets and is
// never negative.
func TestEstimateBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New(1 + rng.Intn(8))
		n := 100 + rng.Intn(400)
		for i := 0; i < n; i++ {
			h.Add(float64(i), 1+rng.Float64()*50)
		}
		cutoff := float64(rng.Intn(n))
		est := h.Estimate(cutoff)
		return est >= 0 && est <= h.Total()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAddBatchMatchesAdd pins the batched ingest to repeated Add calls:
// the bucket *structure* may differ (one canonicalize per batch sees
// the whole run), but the invariant — at most k buckets per size class
// — and the total must hold, and the estimate must stay within the
// same 1/k band around the exact windowed sum.
func TestAddBatchMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, batchLen := range []int{1, 3, 16, 100} {
		one := New(4)
		bulk := New(4)
		var items []item
		ts := make([]float64, 0, batchLen)
		ws := make([]float64, 0, batchLen)
		for i := 0; i < 600; i++ {
			w := math.Pow(10, rng.Float64()*3)
			if rng.Intn(10) == 0 {
				w = 0 // zero weights are skipped on both paths
			}
			items = append(items, item{float64(i), w})
			one.Add(float64(i), w)
			ts = append(ts, float64(i))
			ws = append(ws, w)
			if len(ts) == batchLen {
				bulk.AddBatch(ts, ws)
				ts, ws = ts[:0], ws[:0]
			}
		}
		bulk.AddBatch(ts, ws)

		if a, b := one.Total(), bulk.Total(); math.Abs(a-b) > 1e-9*math.Abs(a) {
			t.Fatalf("batchLen=%d: totals diverge: %v vs %v", batchLen, a, b)
		}
		counts := map[int]int{}
		for _, b := range bulk.buckets {
			counts[sizeClass(b.sum)]++
			if counts[sizeClass(b.sum)] > bulk.k {
				t.Fatalf("batchLen=%d: size class %d over-full after AddBatch", batchLen, sizeClass(b.sum))
			}
		}
		for _, cutoff := range []float64{-1, 100, 450, 599} {
			exact := exactSum(items, cutoff)
			for name, h := range map[string]*Histogram{"add": one, "batch": bulk} {
				est := New(h.k) // estimate on a copy: Estimate expires
				est.buckets = append(est.buckets, h.buckets...)
				est.total = h.total
				got := est.Estimate(cutoff)
				if exact == 0 {
					if got != 0 {
						t.Fatalf("batchLen=%d %s: estimate %v for empty window", batchLen, name, got)
					}
					continue
				}
				if rel := math.Abs(got-exact) / exact; rel > 1.0/float64(h.k)+1e-9 {
					t.Fatalf("batchLen=%d %s: cutoff %v estimate %v vs exact %v (rel %v)", batchLen, name, cutoff, got, exact, rel)
				}
			}
		}
	}
}

func TestAddBatchPanics(t *testing.T) {
	for name, f := range map[string]func(*Histogram){
		"length mismatch": func(h *Histogram) { h.AddBatch([]float64{1, 2}, []float64{1}) },
		"negative weight": func(h *Histogram) { h.AddBatch([]float64{1}, []float64{-1}) },
		"time regression": func(h *Histogram) { h.AddBatch([]float64{2, 1}, []float64{1, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			h := New(2)
			h.Add(0, 1)
			f(h)
		}()
	}
}
