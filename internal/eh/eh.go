// Package eh implements an exponential histogram (Datar, Gionis,
// Indyk, Motwani; SICOMP 2002) for maintaining an ε-approximate sum of
// non-negative weights over a sliding window, generalised to real
// weights as in the paper's use of EH to track ‖A‖²_F (Section 5.1).
//
// The histogram keeps a queue of buckets, each covering a contiguous
// span of the stream and holding the sum of its weights. Buckets are
// grouped into geometric size classes; whenever a class holds more
// than k buckets the two oldest of the class merge. The estimate at
// query time is the sum of all fully-live buckets plus half of the
// single straddling bucket, giving relative error at most 1/k on the
// window sum provided every weight is at most the window sum / k
// (guaranteed here by also never letting a bucket contain more than
// one "oversized" item).
package eh

import (
	"fmt"
	"math"

	"swsketch/internal/trace"
)

// bucket covers rows with timestamps in (start, end]; sum is the total
// weight it holds, and count the number of items merged into it.
type bucket struct {
	start, end float64
	sum        float64
	count      int
}

// Histogram approximates the sum of weights inside a sliding window.
// It works for both sequence-based windows (use the row index as the
// timestamp) and time-based windows (use real timestamps).
type Histogram struct {
	k       int // buckets allowed per size class; rel. error ≈ 1/k
	buckets []bucket
	// total is the sum over all buckets, maintained incrementally so
	// Estimate is O(1) plus the straddling correction.
	total float64

	tr *trace.Tracer
}

// SetTracer attaches a tracer; bucket merges emit eh_merge events.
func (h *Histogram) SetTracer(tr *trace.Tracer) { h.tr = tr }

// New returns a histogram with relative error approximately 1/k.
// It panics if k < 1.
func New(k int) *Histogram {
	if k < 1 {
		panic(fmt.Sprintf("eh: k must be ≥ 1, got %d", k))
	}
	return &Histogram{k: k}
}

// NewForError returns a histogram targeting relative error eps,
// i.e. k = ⌈1/eps⌉. It panics if eps ≤ 0 or eps > 1.
func NewForError(eps float64) *Histogram {
	if eps <= 0 || eps > 1 {
		panic(fmt.Sprintf("eh: error parameter must be in (0,1], got %v", eps))
	}
	return New(int(math.Ceil(1 / eps)))
}

// Add records an item with the given weight (must be ≥ 0) arriving at
// timestamp t. Timestamps must be non-decreasing.
func (h *Histogram) Add(t, weight float64) {
	if weight < 0 {
		panic(fmt.Sprintf("eh: negative weight %v", weight))
	}
	if n := len(h.buckets); n > 0 && t < h.buckets[n-1].end {
		panic(fmt.Sprintf("eh: timestamp %v precedes previous %v", t, h.buckets[n-1].end))
	}
	if weight == 0 {
		return
	}
	h.buckets = append(h.buckets, bucket{start: t, end: t, sum: weight, count: 1})
	h.total += weight
	h.canonicalize()
}

// AddBatch records a run of items with non-decreasing timestamps,
// deferring the invariant restoration until the whole run is appended:
// one canonicalize pass replaces len(ts) of them. The resulting bucket
// structure may differ from repeated Add calls (merges see the whole
// run at once), but the estimate guarantee is identical — it depends
// only on the ≤ k buckets-per-class invariant, which holds on return.
func (h *Histogram) AddBatch(ts, weights []float64) {
	if len(ts) != len(weights) {
		panic(fmt.Sprintf("eh: batch of %d timestamps but %d weights", len(ts), len(weights)))
	}
	for i, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("eh: negative weight %v", w))
		}
		if n := len(h.buckets); n > 0 && ts[i] < h.buckets[n-1].end {
			panic(fmt.Sprintf("eh: timestamp %v precedes previous %v", ts[i], h.buckets[n-1].end))
		}
		if w == 0 {
			continue
		}
		h.buckets = append(h.buckets, bucket{start: ts[i], end: ts[i], sum: w, count: 1})
		h.total += w
	}
	h.canonicalize()
}

// canonicalize restores the ≤ k buckets-per-class invariant. Because
// weights are arbitrary reals (not created at class 0 as in classic
// DGIM), the two oldest buckets of an over-full class may not be
// adjacent; merging non-adjacent buckets would corrupt the time spans.
// We therefore merge the oldest *adjacent* same-class pair within the
// over-full class, falling back to merging the class's oldest bucket
// with its right neighbour (cross-class) when no such pair exists.
// Every step removes one bucket, so the total stays O(k·log(sum)).
func (h *Histogram) canonicalize() {
	for {
		over := h.overFullClass()
		if over == noClass {
			return
		}
		// Oldest adjacent same-class pair within the class.
		prev := -1
		mergedAt := -1
		for i, b := range h.buckets {
			if sizeClass(b.sum) != over {
				continue
			}
			if prev >= 0 && prev == i-1 {
				mergedAt = prev
				break
			}
			prev = i
		}
		if mergedAt < 0 {
			// Fallback: merge the class's oldest bucket rightward.
			for i, b := range h.buckets {
				if sizeClass(b.sum) == over {
					mergedAt = i
					break
				}
			}
			if mergedAt >= len(h.buckets)-1 {
				// Oldest-of-class is the newest bucket: merge leftward
				// instead (always possible since the class is over-full
				// only when ≥ 2 buckets exist).
				mergedAt--
			}
		}
		h.mergeWithNext(mergedAt)
	}
}

const noClass = math.MinInt32

// overFullClass returns a size class holding more than k buckets, or
// noClass when the invariant holds.
func (h *Histogram) overFullClass() int {
	counts := make(map[int]int, 8)
	for _, b := range h.buckets {
		c := sizeClass(b.sum)
		counts[c]++
		if counts[c] > h.k {
			return c
		}
	}
	return noClass
}

func sizeClass(sum float64) int {
	if sum < 1 {
		return 0
	}
	return int(math.Floor(math.Log2(sum)))
}

// mergeWithNext merges bucket i+1 into bucket i, preserving the
// contiguous, time-ordered span structure of the queue.
func (h *Histogram) mergeWithNext(i int) {
	j := i + 1
	h.buckets[i].end = h.buckets[j].end
	h.buckets[i].sum += h.buckets[j].sum
	h.buckets[i].count += h.buckets[j].count
	h.buckets = append(h.buckets[:j], h.buckets[j+1:]...)
	h.tr.Emit("EH", trace.KindEHMerge, h.buckets[i].end,
		float64(sizeClass(h.buckets[i].sum)), h.buckets[i].sum)
}

// Expire drops buckets that ended at or before the cutoff timestamp.
// A bucket straddling the cutoff (start ≤ cutoff < end) is retained;
// Estimate discounts it by half.
func (h *Histogram) Expire(cutoff float64) {
	drop := 0
	for drop < len(h.buckets) && h.buckets[drop].end <= cutoff {
		h.total -= h.buckets[drop].sum
		drop++
	}
	if drop > 0 {
		h.buckets = h.buckets[drop:]
	}
}

// Estimate returns the approximate sum of weights with timestamps in
// (cutoff, now]. It first expires buckets at or before cutoff, then
// returns all live bucket sums with the oldest (possibly straddling)
// bucket discounted by half when it straddles the cutoff.
func (h *Histogram) Estimate(cutoff float64) float64 {
	h.Expire(cutoff)
	if len(h.buckets) == 0 {
		return 0
	}
	est := h.total
	if b := h.buckets[0]; b.start <= cutoff && b.count > 1 {
		est -= b.sum / 2
	}
	return est
}

// Buckets returns the current number of buckets (the space used).
func (h *Histogram) Buckets() int { return len(h.buckets) }

// Total returns the sum over every live bucket (no straddling
// correction); useful when the caller knows nothing has expired.
func (h *Histogram) Total() float64 { return h.total }

// Stats exposes the histogram's internals for instrumentation: bucket
// count, the number of distinct size classes in use, total items
// merged into live buckets, and the maintained sum.
func (h *Histogram) Stats() map[string]float64 {
	classes := make(map[int]struct{}, 8)
	items := 0
	for _, b := range h.buckets {
		classes[sizeClass(b.sum)] = struct{}{}
		items += b.count
	}
	return map[string]float64{
		"k":       float64(h.k),
		"buckets": float64(len(h.buckets)),
		"classes": float64(len(classes)),
		"items":   float64(items),
		"total":   h.total,
	}
}
