package stream

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"swsketch/internal/mat"
)

var fastGrid = []FDOpts{
	{Buffer: 1, Alpha: 0.25},
	{Buffer: 1, Alpha: 0.5},
	{Buffer: 2, Alpha: 0.25},
	{Buffer: 2, Alpha: 0.5},
	{Buffer: 2, Alpha: 1},
	{Buffer: 4, Alpha: 0.5},
	{Buffer: 4, Alpha: 1},
}

func TestNewFDOptsValidation(t *testing.T) {
	for _, o := range []FDOpts{{Buffer: -1}, {Alpha: -0.5}, {Alpha: 1.5}, {Alpha: math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for opts %+v", o)
				}
			}()
			NewFDOpts(8, 4, o)
		}()
	}
	// Zero values normalize to the classic configuration.
	f := NewFDOpts(8, 4, FDOpts{})
	if f.BufferFactor() != 1 || f.Alpha() != 1 {
		t.Fatalf("zero opts → b=%d α=%v, want 1, 1", f.BufferFactor(), f.Alpha())
	}
}

// TestFDFastErrorBound verifies Liberty's covariance guarantee
// ‖AᵀA − BᵀB‖ ≤ 2‖A‖²_F/ℓ for every shipped (b, α) combination: the
// buffered shrink removes at least as much spectral mass per row as
// the classic cadence, so the bound is configuration-independent.
func TestFDFastErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, o := range fastGrid {
		for _, ell := range []int{8, 16} {
			f := NewFDOpts(ell, 10, o)
			a := feed(t, f, rng, 600, 10)
			errAbs := covaErr(a, f.Matrix()) * a.FrobeniusSq()
			bound := 2 * a.FrobeniusSq() / float64(ell)
			if errAbs > bound {
				t.Fatalf("b=%d α=%v ell=%d: error %v exceeds FD bound %v",
					o.Buffer, o.Alpha, ell, errAbs, bound)
			}
		}
	}
}

// TestFDClassicOptsBitIdentical pins the compatibility contract: a
// sketch built through NewFDOpts with the classic configuration must
// produce byte-for-byte the same state as the legacy constructor on
// the same stream — including snapshot bytes, which PR-5 era tenants
// persist.
func TestFDClassicOptsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	legacy := NewFD(8, 6)
	opts := NewFDOpts(8, 6, FDOpts{Buffer: 1, Alpha: 1})
	for i := 0; i < 300; i++ {
		row := randRow(rng, 6)
		legacy.Update(row)
		opts.Update(row)
	}
	lb, err := legacy.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ob, err := opts.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lb, ob) {
		t.Fatal("classic-config NewFDOpts snapshot differs from legacy NewFD")
	}
}

func TestFDBufferGrowsLazily(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := NewFDOpts(8, 5, FDOpts{Buffer: 4})
	if got := f.Matrix().Rows(); got != 0 {
		t.Fatalf("fresh sketch has %d rows", got)
	}
	if f.Stats()["buffer_cap"] != 32 {
		t.Fatalf("buffer_cap = %v, want 32", f.Stats()["buffer_cap"])
	}
	maxUsed := 0
	for i := 0; i < 400; i++ {
		f.Update(randRow(rng, 5))
		if u := f.Used(); u > maxUsed {
			maxUsed = u
		}
		if f.Used() > 32 {
			t.Fatalf("used %d exceeds b·ℓ = 32", f.Used())
		}
	}
	if maxUsed <= 8 {
		t.Fatalf("buffer never filled past ℓ (max used %d); doubled shrink not exercised", maxUsed)
	}
	// The paper's space measure is rows of sketch state per window,
	// which stays ℓ regardless of the working buffer.
	if f.RowsStored() != 8 {
		t.Fatalf("RowsStored = %d, want ℓ=8", f.RowsStored())
	}
	if f.Shrinks() == 0 {
		t.Fatal("no shrinks recorded")
	}
	st := f.Stats()
	for _, k := range []string{"ell", "used", "headroom", "shrinks", "buffer_cap", "buffer_factor", "alpha", "amortization"} {
		if _, ok := st[k]; !ok {
			t.Fatalf("Stats missing key %q", k)
		}
	}
	if st["amortization"] < 1 {
		t.Fatalf("amortization %v < 1 after shrinking", st["amortization"])
	}
}

func TestFDUpdateDenseMatchesUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, o := range []FDOpts{{}, {Buffer: 2}, {Buffer: 2, Alpha: 0.5}} {
		byRow := NewFDOpts(6, 4, o)
		byBlock := NewFDOpts(6, 4, o)
		for chunk := 0; chunk < 10; chunk++ {
			n := 1 + rng.Intn(17)
			block := mat.NewDense(n, 4)
			for i := 0; i < n; i++ {
				copy(block.Row(i), randRow(rng, 4))
			}
			for i := 0; i < n; i++ {
				byRow.Update(block.Row(i))
			}
			byBlock.UpdateDense(block)
		}
		a, b := byRow.Matrix(), byBlock.Matrix()
		if a.Rows() != b.Rows() {
			t.Fatalf("opts %+v: row-wise %d rows, dense %d rows", o, a.Rows(), b.Rows())
		}
		for i := range a.Data() {
			if a.Data()[i] != b.Data()[i] {
				t.Fatalf("opts %+v: state diverges at %d: %v vs %v", o, i, a.Data()[i], b.Data()[i])
			}
		}
	}
}

// TestFDUpdateSparseMatchesUpdate pins the sparse path to the buffered
// discipline: a widened sketch fed sparse rows must track the dense
// path bit-for-bit (this once panicked — UpdateSparse kept the
// pre-buffer shrink-at-ℓ logic).
func TestFDUpdateSparseMatchesUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, o := range []FDOpts{{}, {Buffer: 2}, {Buffer: 4, Alpha: 0.5}} {
		dense := NewFDOpts(8, 6, o)
		sparse := NewFDOpts(8, 6, o)
		for i := 0; i < 400; i++ {
			row := make([]float64, 6)
			// Mix dense, sparse, and empty rows.
			for j := 0; j < 6; j++ {
				if rng.Intn(3) == 0 {
					row[j] = rng.NormFloat64()
				}
			}
			dense.Update(row)
			sparse.UpdateSparse(mat.SparseFromDense(row))
		}
		a, b := dense.Matrix(), sparse.Matrix()
		if a.Rows() != b.Rows() {
			t.Fatalf("opts %+v: dense %d rows, sparse %d rows", o, a.Rows(), b.Rows())
		}
		for i := range a.Data() {
			if a.Data()[i] != b.Data()[i] {
				t.Fatalf("opts %+v: sparse path diverges at %d", o, i)
			}
		}
	}
}

func TestFDOptsCloneEmptyPreservesConfig(t *testing.T) {
	f := NewFDOpts(8, 5, FDOpts{Buffer: 4, Alpha: 0.5})
	c := f.CloneEmpty().(*FD)
	if c.BufferFactor() != 4 || c.Alpha() != 0.5 {
		t.Fatalf("CloneEmpty → b=%d α=%v, want 4, 0.5", c.BufferFactor(), c.Alpha())
	}
	if c.Used() != 0 {
		t.Fatalf("CloneEmpty used = %d", c.Used())
	}
}

func TestFDFastMergeWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := mat.NewDense(400, 8)
	for i := 0; i < 400; i++ {
		copy(a.Row(i), randRow(rng, 8))
	}
	left := NewFDOpts(16, 8, FDOpts{Buffer: 2})
	right := NewFDOpts(16, 8, FDOpts{Buffer: 2})
	for i := 0; i < 200; i++ {
		left.Update(a.Row(i))
		right.Update(a.Row(200 + i))
	}
	left.Merge(right)
	errAbs := covaErr(a, left.Matrix()) * a.FrobeniusSq()
	// Merging two FD sketches at most doubles the error mass.
	bound := 4 * a.FrobeniusSq() / 16
	if errAbs > bound {
		t.Fatalf("merged error %v exceeds %v", errAbs, bound)
	}
}
