package stream

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"swsketch/internal/mat"
)

// pairedStreams draws n correlated row pairs: both sides share a
// k-dimensional latent factor plus independent noise, so AᵀB carries
// real signal (the regime AMM sketches exist for).
func pairedStreams(rng *rand.Rand, n, dA, dB, k int) (a, b *mat.Dense) {
	ga := mat.NewDense(k, dA)
	gb := mat.NewDense(k, dB)
	for _, g := range []*mat.Dense{ga, gb} {
		data := g.Data()
		for i := range data {
			data[i] = rng.NormFloat64()
		}
	}
	a = mat.NewDense(n, dA)
	b = mat.NewDense(n, dB)
	z := make([]float64, k)
	for i := 0; i < n; i++ {
		for j := range z {
			z[j] = rng.NormFloat64()
		}
		ra, rb := a.Row(i), b.Row(i)
		for j := 0; j < dA; j++ {
			s := 0.25 * rng.NormFloat64()
			for l := 0; l < k; l++ {
				s += z[l] * ga.Row(l)[j]
			}
			ra[j] = s
		}
		for j := 0; j < dB; j++ {
			s := 0.25 * rng.NormFloat64()
			for l := 0; l < k; l++ {
				s += z[l] * gb.Row(l)[j]
			}
			rb[j] = s
		}
	}
	return a, b
}

// crossProduct computes the exact AᵀB.
func crossProduct(a, b *mat.Dense) *mat.Dense {
	p := mat.NewDense(a.Cols(), b.Cols())
	if a.Rows() > 0 {
		mat.MulTo(p, a.T(), b)
	}
	return p
}

// ammErr is the paired-stream error metric ‖AᵀB − P‖₂ / (‖A‖F·‖B‖F).
func ammErr(a, b, p *mat.Dense) float64 {
	exact := crossProduct(a, b)
	diff := exact.Clone()
	dd, pd := diff.Data(), p.Data()
	for i := range dd {
		dd[i] -= pd[i]
	}
	denom := math.Sqrt(a.FrobeniusSq()) * math.Sqrt(b.FrobeniusSq())
	if denom == 0 {
		return mat.SpectralNorm(diff)
	}
	return mat.SpectralNorm(diff) / denom
}

func feedPaired(c *COD, a, b *mat.Dense) {
	for i := 0; i < a.Rows(); i++ {
		c.UpdatePaired(a.Row(i), b.Row(i))
	}
}

func TestNewCODValidation(t *testing.T) {
	for _, c := range [][3]int{{1, 5, 5}, {0, 5, 5}, {4, 0, 5}, {4, 5, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for ell=%d dA=%d dB=%d", c[0], c[1], c[2])
				}
			}()
			NewCOD(c[0], c[1], c[2])
		}()
	}
}

func TestCODPairLengthPanics(t *testing.T) {
	c := NewCOD(4, 3, 2)
	for _, pair := range [][2][]float64{
		{{1, 2}, {1, 2}},       // short A side
		{{1, 2, 3}, {1, 2, 3}}, // long B side
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for pair lengths (%d,%d)", len(pair[0]), len(pair[1]))
				}
			}()
			c.UpdatePaired(pair[0], pair[1])
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for wrong stacked length")
			}
		}()
		c.Update([]float64{1, 2, 3})
	}()
}

func TestCODExactWhenUnderCapacity(t *testing.T) {
	// Fewer pairs than ℓ: COD stores them verbatim, so the product is
	// the exact AᵀB up to float accumulation order.
	rng := rand.New(rand.NewSource(1))
	a, b := pairedStreams(rng, 10, 6, 4, 3)
	c := NewCOD(16, 6, 4)
	feedPaired(c, a, b)
	if c.Used() != 10 || c.Shrinks() != 0 {
		t.Fatalf("used=%d shrinks=%d, want 10 and 0", c.Used(), c.Shrinks())
	}
	if e := ammErr(a, b, c.Product()); e > 1e-12 {
		t.Fatalf("under-capacity product error %g, want ~0", e)
	}
}

func TestCODErrorWithinCertifiedDelta(t *testing.T) {
	// Past capacity the spectral product error must stay within the
	// accumulated shrink charge Σδ — COD's certified bound — and Σδ
	// itself within the O(‖A‖F·‖B‖F/ℓ)-style envelope.
	for _, opts := range []FDOpts{{}, {Buffer: 2}, {Buffer: 2, Alpha: 0.5}} {
		rng := rand.New(rand.NewSource(7))
		a, b := pairedStreams(rng, 600, 12, 9, 4)
		c := NewCODOpts(24, 12, 9, opts)
		feedPaired(c, a, b)
		if c.Shrinks() == 0 {
			t.Fatalf("opts %+v: expected shrinks past capacity", opts)
		}
		exact := crossProduct(a, b)
		diff := exact.Clone()
		dd, pd := diff.Data(), c.Product().Data()
		for i := range dd {
			dd[i] -= pd[i]
		}
		specErr := mat.SpectralNorm(diff)
		if specErr > c.Delta()*(1+1e-9) {
			t.Errorf("opts %+v: spectral error %g exceeds certified Σδ=%g", opts, specErr, c.Delta())
		}
		denom := math.Sqrt(a.FrobeniusSq()) * math.Sqrt(b.FrobeniusSq())
		// Worst-case envelope: Σδ ≤ (‖A‖²F+‖B‖²F)/ℓ ≥ 2‖A‖F‖B‖F/ℓ
		// (AM–GM); allow a small slack for the α-tuned cut.
		bound := 2 * (a.FrobeniusSq() + b.FrobeniusSq()) / float64(c.Ell())
		if c.Delta() > bound {
			t.Errorf("opts %+v: Σδ=%g exceeds envelope %g", opts, c.Delta(), bound)
		}
		if e := specErr / denom; e > 0.25 {
			t.Errorf("opts %+v: relative AMM error %g unexpectedly large", opts, e)
		}
	}
}

func TestCODStackedMatchesPaired(t *testing.T) {
	// The Sketch-interface stacked path must be bit-identical to
	// UpdatePaired — it is the embedding the window frameworks drive.
	rng := rand.New(rand.NewSource(3))
	a, b := pairedStreams(rng, 300, 5, 4, 2)
	cp := NewCOD(12, 5, 4)
	cs := NewCOD(12, 5, 4)
	row := make([]float64, 9)
	for i := 0; i < a.Rows(); i++ {
		cp.UpdatePaired(a.Row(i), b.Row(i))
		copy(row[:5], a.Row(i))
		copy(row[5:], b.Row(i))
		cs.Update(row)
	}
	if !cp.Matrix().Equal(cs.Matrix(), 0) {
		t.Fatal("stacked Update diverged from UpdatePaired")
	}
}

func TestCODBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b := pairedStreams(rng, 257, 4, 3, 2)
	single := NewCODOpts(8, 4, 3, FDOpts{Buffer: 2})
	batch := NewCODOpts(8, 4, 3, FDOpts{Buffer: 2})
	rows := make([][]float64, a.Rows())
	for i := range rows {
		row := make([]float64, 7)
		copy(row[:4], a.Row(i))
		copy(row[4:], b.Row(i))
		rows[i] = row
		single.Update(row)
	}
	for lo := 0; lo < len(rows); lo += 37 {
		hi := lo + 37
		if hi > len(rows) {
			hi = len(rows)
		}
		batch.UpdateBatch(rows[lo:hi])
	}
	if !single.Matrix().Equal(batch.Matrix(), 0) {
		t.Fatal("UpdateBatch diverged from row-at-a-time Update")
	}
}

func TestCODMatrixIsAlignedStack(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, b := pairedStreams(rng, 6, 3, 2, 2)
	c := NewCOD(8, 3, 2)
	feedPaired(c, a, b)
	m := c.Matrix()
	if m.Rows() != 6 || m.Cols() != 5 {
		t.Fatalf("Matrix() is %dx%d, want 6x5", m.Rows(), m.Cols())
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 3; j++ {
			if m.Row(i)[j] != a.Row(i)[j] {
				t.Fatalf("X side row %d mismatches", i)
			}
		}
		for j := 0; j < 2; j++ {
			if m.Row(i)[3+j] != b.Row(i)[j] {
				t.Fatalf("Y side row %d mismatches", i)
			}
		}
	}
}

func TestCODMerge(t *testing.T) {
	// Merging two co-sketches must approximate the concatenated
	// streams' product within the combined certified charge.
	rng := rand.New(rand.NewSource(6))
	a1, b1 := pairedStreams(rng, 300, 6, 5, 3)
	a2, b2 := pairedStreams(rng, 200, 6, 5, 3)
	c1 := NewCOD(16, 6, 5)
	c2 := NewCOD(16, 6, 5)
	feedPaired(c1, a1, b1)
	feedPaired(c2, a2, b2)
	c1.Merge(c2)

	allA := mat.Stack(a1, a2)
	allB := mat.Stack(b1, b2)
	exact := crossProduct(allA, allB)
	diff := exact.Clone()
	dd, pd := diff.Data(), c1.Product().Data()
	for i := range dd {
		dd[i] -= pd[i]
	}
	if e := mat.SpectralNorm(diff); e > (c1.Delta()+c2.Delta())*(1+1e-9) {
		t.Fatalf("merged spectral error %g exceeds combined Σδ=%g", e, c1.Delta()+c2.Delta())
	}
}

func TestCODMergePanics(t *testing.T) {
	c := NewCOD(8, 4, 3)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic merging non-COD")
			}
		}()
		c.Merge(NewFD(8, 7))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic merging mismatched side dims")
			}
		}()
		c.Merge(NewCOD(8, 3, 4))
	}()
}

func TestCODCloneEmpty(t *testing.T) {
	c := NewCODOpts(8, 4, 3, FDOpts{Buffer: 2, Alpha: 0.5})
	cl := c.CloneEmpty().(*COD)
	if cl.Ell() != 8 || cl.DimA() != 4 || cl.DimB() != 3 ||
		cl.BufferFactor() != 2 || cl.Alpha() != 0.5 || cl.Used() != 0 {
		t.Fatalf("CloneEmpty lost configuration: %+v", cl.Stats())
	}
}

func TestCODZeroOneSide(t *testing.T) {
	// Zero rows on one side only must contribute nothing to the
	// product and never corrupt alignment.
	rng := rand.New(rand.NewSource(8))
	a, b := pairedStreams(rng, 120, 5, 4, 2)
	zeroA := make([]float64, 5)
	zeroB := make([]float64, 4)
	c := NewCOD(10, 5, 4)
	for i := 0; i < a.Rows(); i++ {
		c.UpdatePaired(a.Row(i), b.Row(i))
		if i%3 == 0 {
			c.UpdatePaired(zeroA, b.Row(i)) // contributes 0·bᵀ = 0
		}
		if i%5 == 0 {
			c.UpdatePaired(a.Row(i), zeroB)
		}
	}
	exact := crossProduct(a, b)
	diff := exact.Clone()
	dd, pd := diff.Data(), c.Product().Data()
	for i := range dd {
		dd[i] -= pd[i]
	}
	if e := mat.SpectralNorm(diff); e > c.Delta()*(1+1e-9) {
		t.Fatalf("one-sided zero rows broke the certified bound: err=%g Σδ=%g", e, c.Delta())
	}
}

func TestCODDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, b := pairedStreams(rng, 400, 6, 6, 3)
	c1 := NewCOD(12, 6, 6)
	c2 := NewCOD(12, 6, 6)
	feedPaired(c1, a, b)
	feedPaired(c2, a, b)
	if !c1.Matrix().Equal(c2.Matrix(), 0) {
		t.Fatal("identical streams produced different sketches")
	}
}

func TestCODMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a, b := pairedStreams(rng, 350, 7, 5, 3)
	c := NewCODOpts(14, 7, 5, FDOpts{Buffer: 2, Alpha: 0.75})
	feedPaired(c, a, b)

	blob, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewCOD(2, 1, 1)
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !c.Matrix().Equal(restored.Matrix(), 0) {
		t.Fatal("restored state differs")
	}
	// Re-marshal fixed point: restored snapshots byte-identically.
	blob2, err := restored.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-marshal is not a fixed point")
	}
	// Deterministic continuation: both copies fed the same suffix stay
	// bit-identical (the conformance suite's continuation property).
	a2, b2 := pairedStreams(rng, 200, 7, 5, 3)
	feedPaired(c, a2, b2)
	feedPaired(restored, a2, b2)
	if !c.Matrix().Equal(restored.Matrix(), 0) {
		t.Fatal("restored sketch diverged under continuation")
	}
}

func TestCODUnmarshalRejectsCorrupt(t *testing.T) {
	c := NewCOD(4, 3, 2)
	c.UpdatePaired([]float64{1, 2, 3}, []float64{4, 5})
	blob, _ := c.MarshalBinary()

	cases := map[string][]byte{
		"empty":     {},
		"magic":     append([]byte{0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 1}, blob[8:]...),
		"truncated": blob[:len(blob)-3],
		"trailing":  append(append([]byte{}, blob...), 0),
	}
	for name, data := range cases {
		fresh := NewCOD(2, 1, 1)
		if err := fresh.UnmarshalBinary(data); err == nil {
			t.Errorf("%s snapshot unexpectedly accepted", name)
		}
	}
}

func TestCODStats(t *testing.T) {
	c := NewCODOpts(8, 4, 3, FDOpts{Buffer: 2})
	rng := rand.New(rand.NewSource(11))
	a, b := pairedStreams(rng, 100, 4, 3, 2)
	feedPaired(c, a, b)
	st := c.Stats()
	for _, k := range []string{"ell", "d_a", "d_b", "used", "headroom", "shrinks", "buffer_cap", "buffer_factor", "alpha", "amortization", "delta"} {
		if _, ok := st[k]; !ok {
			t.Errorf("Stats missing %q", k)
		}
	}
	if st["ell"] != 8 || st["d_a"] != 4 || st["d_b"] != 3 || st["buffer_cap"] != 16 {
		t.Fatalf("Stats geometry wrong: %+v", st)
	}
	if c.RowsStored() != 8 {
		t.Fatalf("RowsStored=%d, want ℓ=8", c.RowsStored())
	}
}
